// Command macbench compares the power-saving MAC protocols from the
// paper's Section 1 survey — CAM (plain DCF), 802.11 PSM and EC-MAC — on a
// configurable downlink load, printing per-protocol client power,
// collisions and delivery statistics.
//
// Example:
//
//	macbench -stations 4 -rate 16 -duration 30
package main

import (
	"flag"
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/mac/ecmac"
	"repro/internal/mac/psm"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		stationsN = flag.Int("stations", 4, "number of client stations")
		rateKBs   = flag.Float64("rate", 16, "downlink KB/s per station")
		duration  = flag.Float64("duration", 30, "simulated seconds")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	chunk := 2000
	interval := sim.FromSeconds(float64(chunk) / (*rateKBs * 1024))
	dur := sim.FromSeconds(*duration)

	t := stats.NewTable(
		fmt.Sprintf("MAC comparison — %d stations, %.0f KB/s each, %.0fs",
			*stationsN, *rateKBs, *duration),
		"protocol", "client avg W", "collisions", "frames delivered")

	camW, camColl, camRecv := runDCF(*seed, *stationsN, chunk, interval, dur, false)
	t.AddRow("CAM (DCF)", fmt.Sprintf("%.3f", camW), fmt.Sprintf("%d", camColl), fmt.Sprintf("%d", camRecv))

	psmW, psmColl, psmRecv := runDCF(*seed, *stationsN, chunk, interval, dur, true)
	t.AddRow("802.11 PSM", fmt.Sprintf("%.3f", psmW), fmt.Sprintf("%d", psmColl), fmt.Sprintf("%d", psmRecv))

	ecW, ecRecv := runECMAC(*seed, *stationsN, chunk, interval, dur)
	t.AddRow("EC-MAC", fmt.Sprintf("%.3f", ecW), "0", fmt.Sprintf("%d", ecRecv))

	fmt.Println(t)
}

func runDCF(seed int64, n, chunk int, interval, dur sim.Time, ps bool) (float64, int, int) {
	s := sim.New(seed)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := psm.NewAP(s, m, apDev, psm.DefaultConfig())
	devs := make([]*radio.Device, n)
	recv := 0
	for i := 0; i < n; i++ {
		devs[i] = radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
		if ps {
			cl := psm.NewClient(s, m, devs[i], ap, i, psm.DefaultConfig())
			cl.OnData = func(*frame.Frame) { recv++ }
		} else {
			st := dcf.NewStation(i, m, devs[i])
			st.OnReceive = func(f *frame.Frame) {
				if f.Kind == frame.Data {
					recv++
				}
			}
		}
	}
	sim.NewTicker(s, interval, func() {
		for i := 0; i < n; i++ {
			ap.Deliver(i, chunk)
		}
	})
	s.RunUntil(dur)
	var w float64
	for _, d := range devs {
		w += d.Meter().AveragePower()
	}
	return w / float64(n), m.Stats().Collisions, recv
}

func runECMAC(seed int64, n, chunk int, interval, dur sim.Time) (float64, int) {
	s := sim.New(seed)
	bs := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	net := ecmac.NewNetwork(s, ecmac.DefaultConfig(), bs)
	for i := 0; i < n; i++ {
		net.Register(i, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	}
	net.Start()
	sim.NewTicker(s, interval, func() {
		for i := 0; i < n; i++ {
			net.Deliver(i, chunk)
		}
	})
	s.RunUntil(dur)
	var w float64
	for i := 0; i < n; i++ {
		w += net.StationEnergy(i)
	}
	return w / float64(n), net.Stats().PacketsDeliv
}
