// Command macbench compares the power-saving MAC protocols from the
// paper's Section 1 survey — CAM (plain DCF), 802.11 PSM and EC-MAC — on a
// configurable downlink load. The sweep runs on the scenario engine's
// Runner: with -seeds N each protocol is measured across N consecutive
// seeds on the backend selected by -backend (in-process pool, supervised
// worker subprocesses with retry/restart/degrade fault tolerance — see
// -max-retries, -chunk-timeout, -restart-backoff, -degrade-local and
// EXPERIMENTS.md "Fault tolerance" — or the on-disk result cache; results
// are identical for any backend and pool size) and reported as mean ±
// 95% CI. The shard backend reports its worker-health counters on stderr
// after the run.
//
// Example:
//
//	macbench -stations 4 -rate 16 -duration 30 -seeds 8 -parallel 8
//	macbench -stations 8 -seeds 64 -backend shard -workers 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/mac/ecmac"
	"repro/internal/mac/psm"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		stationsN = flag.Int("stations", 4, "number of client stations")
		rateKBs   = flag.Float64("rate", 16, "downlink KB/s per station")
		duration  = flag.Float64("duration", 30, "simulated seconds")
	)
	flag.Parse()

	chunk := 2000
	interval := sim.FromSeconds(float64(chunk) / (*rateKBs * 1024))
	dur := sim.FromSeconds(*duration)

	// The specs close over the CLI parameters, so Params records them
	// canonically: shard workers rebuild identical specs from the re-exec'd
	// command line, and the result cache keys on the parameterization.
	specs := protocolSpecs(*stationsN, chunk, interval, dur)
	params := fmt.Sprintf("stations=%d rate=%g duration=%g", *stationsN, *rateKBs, *duration)
	for i := range specs {
		specs[i].Params = params
	}
	if served, err := rf.ServeMode(specs...); served {
		if err != nil {
			fmt.Fprintf(os.Stderr, "macbench: worker: %v\n", err)
			os.Exit(2)
		}
		return
	}
	seeds := rf.Seeds()
	aggs, err := rf.Run(specs, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macbench: %v\n", err)
		os.Exit(2)
	}

	t := stats.NewTable(
		fmt.Sprintf("MAC comparison — %d stations, %.0f KB/s each, %.0fs, %d seed(s)",
			*stationsN, *rateKBs, *duration, len(seeds)),
		"protocol", "client avg W", "±95% CI", "collisions", "frames delivered")
	for _, a := range aggs {
		w := metric(a, "avgW")
		t.AddRow(a.Spec.Desc,
			fmt.Sprintf("%.3f", w.Mean), fmt.Sprintf("%.3f", w.CI95),
			fmt.Sprintf("%.1f", metric(a, "collisions").Mean),
			fmt.Sprintf("%.1f", metric(a, "delivered").Mean))
	}
	fmt.Println(t)
}

// protocolSpecs builds one scenario spec per MAC protocol, closed over the
// CLI's load parameters, so the generic Runner can sweep them.
func protocolSpecs(n, chunk int, interval, dur sim.Time) []scenario.Spec {
	return []scenario.Spec{
		{Name: "cam", Desc: "CAM (DCF)", Tags: []string{"mac"}, Run: func(seed int64) scenario.Result {
			w, coll, recv := runDCF(seed, n, chunk, interval, dur, false)
			return macResult("cam", w, coll, recv)
		}},
		{Name: "psm", Desc: "802.11 PSM", Tags: []string{"mac"}, Run: func(seed int64) scenario.Result {
			w, coll, recv := runDCF(seed, n, chunk, interval, dur, true)
			return macResult("psm", w, coll, recv)
		}},
		{Name: "ecmac", Desc: "EC-MAC", Tags: []string{"mac"}, Run: func(seed int64) scenario.Result {
			w, recv := runECMAC(seed, n, chunk, interval, dur)
			return macResult("ecmac", w, 0, recv)
		}},
	}
}

func macResult(name string, w float64, coll, recv int) scenario.Result {
	return scenario.Result{Name: name, Values: map[string]float64{
		"avgW": w, "collisions": float64(coll), "delivered": float64(recv),
	}}
}

// metric returns the named aggregated metric, or a zero Metric if the
// experiment did not emit it.
func metric(a scenario.AggResult, name string) scenario.Metric {
	for _, m := range a.Metrics {
		if m.Name == name {
			return m
		}
	}
	return scenario.Metric{Name: name}
}

func runDCF(seed int64, n, chunk int, interval, dur sim.Time, ps bool) (float64, int, int) {
	s := sim.New(seed)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := psm.NewAP(s, m, apDev, psm.DefaultConfig())
	devs := make([]*radio.Device, n)
	recv := 0
	for i := 0; i < n; i++ {
		devs[i] = radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
		if ps {
			cl := psm.NewClient(s, m, devs[i], ap, i, psm.DefaultConfig())
			cl.OnData = func(*frame.Frame) { recv++ }
		} else {
			st := dcf.NewStation(i, m, devs[i])
			st.OnReceive = func(f *frame.Frame) {
				if f.Kind == frame.Data {
					recv++
				}
			}
		}
	}
	sim.NewTicker(s, interval, func() {
		for i := 0; i < n; i++ {
			ap.Deliver(i, chunk)
		}
	})
	s.RunUntil(dur)
	var w float64
	for _, d := range devs {
		w += d.Meter().AveragePower()
	}
	return w / float64(n), m.Stats().Collisions, recv
}

func runECMAC(seed int64, n, chunk int, interval, dur sim.Time) (float64, int) {
	s := sim.New(seed)
	bs := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	net := ecmac.NewNetwork(s, ecmac.DefaultConfig(), bs)
	for i := 0; i < n; i++ {
		net.Register(i, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	}
	net.Start()
	sim.NewTicker(s, interval, func() {
		for i := 0; i < n; i++ {
			net.Deliver(i, chunk)
		}
	})
	s.RunUntil(dur)
	var w float64
	for i := 0; i < n; i++ {
		w += net.StationEnergy(i)
	}
	return w / float64(n), net.Stats().PacketsDeliv
}
