// Command hotspotsim runs a Hotspot resource-manager scenario with
// configurable clients, scheduler, interface policy and duration. A single
// seed prints the detailed per-client power/QoS report (and optionally the
// schedule); with -seeds N > 1 the scenario runs on the scenario engine's
// Runner across N consecutive seeds and reports each metric as mean ±
// 95% CI. The pool size defaults to runtime.NumCPU(); override with
// -parallel N (the output is identical for any pool size).
//
// Example:
//
//	hotspotsim -clients 3 -duration 120 -scheduler edf -policy adaptive -slots
//	hotspotsim -clients 3 -wlan-outage 40 -seeds 8 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		nClients  = flag.Int("clients", 3, "number of MP3-streaming clients")
		duration  = flag.Float64("duration", 120, "simulated seconds")
		schedName = flag.String("scheduler", "edf", "scheduler: edf | wfq | rr")
		polName   = flag.String("policy", "adaptive", "interface policy: adaptive | wlan | bt")
		epoch     = flag.Float64("epoch", 10, "scheduling epoch (burst period) in seconds")
		showSlots = flag.Bool("slots", false, "print the burst schedule (single seed only)")
		outageAt  = flag.Float64("wlan-outage", 0, "force a WLAN outage at this second (0 = none)")
		outageLen = flag.Float64("outage-len", 40, "outage length in seconds")
	)
	flag.Parse()

	// Validate the selector flags exactly once, before any simulation (and
	// before the Runner's workers start): mkConfig itself must stay
	// error-free because it runs per seed on pool goroutines.
	var mkSched func() core.Scheduler
	switch *schedName {
	case "edf":
		mkSched = func() core.Scheduler { return core.EDF{} }
	case "wfq":
		mkSched = func() core.Scheduler { return core.NewWFQ() }
	case "rr":
		mkSched = func() core.Scheduler { return core.RoundRobin{} }
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	var policy core.IfacePolicy
	switch *polName {
	case "adaptive":
		policy = core.PolicyAdaptive
	case "wlan":
		policy = core.PolicyWLANOnly
	case "bt":
		policy = core.PolicyBTOnly
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown policy %q\n", *polName)
		os.Exit(2)
	}
	mkConfig := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Epoch = sim.FromSeconds(*epoch)
		cfg.Scheduler = mkSched()
		cfg.Policy = policy
		return cfg
	}

	runOne := func(s int64) (*core.Hotspot, core.Report) {
		h := core.NewHotspot(s, mkConfig(), *nClients)
		if *outageAt > 0 {
			at := sim.FromSeconds(*outageAt)
			h.Sim().At(at, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
			h.Sim().At(at+sim.FromSeconds(*outageLen), func() {
				h.Channel(core.WLAN).ForceState(channel.Good)
			})
		}
		rep := h.Run(sim.FromSeconds(*duration))
		return h, rep
	}

	if rf.SeedsN <= 1 {
		// The single-seed path bypasses the Runner for its detailed report,
		// so bracket it with the profile hooks directly.
		stop, err := rf.StartProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
			os.Exit(2)
		}
		h, rep := runOne(rf.Seed)
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(rep)
		fmt.Printf("urgent top-ups: %d\n", h.RM().Urgents())
		if rep.QoSMaintained() {
			fmt.Println("QoS: maintained (no playout underruns)")
		} else {
			fmt.Printf("QoS: %d underruns, %.1fs total stall\n",
				rep.TotalUnderruns, rep.TotalStall.Seconds())
		}
		if *showSlots {
			fmt.Println("\nschedule:")
			for _, s := range rep.Slots {
				fmt.Printf("  %-9s %s\n", s.Kind, s)
			}
		}
		return
	}

	// Multi-seed: wrap the configured scenario as an ad-hoc spec and let
	// the Runner fan (seed) jobs across the pool and aggregate the CI.
	spec := scenario.Spec{
		Name: "hotspot",
		Desc: fmt.Sprintf("%d clients, %s/%s, epoch %.0fs", *nClients, *schedName, *polName, *epoch),
		Tags: []string{"hotspot"},
		Run: func(s int64) scenario.Result {
			h, rep := runOne(s)
			switches := 0
			for _, c := range h.RM().Clients() {
				switches += c.Switches()
			}
			return scenario.Result{Name: "hotspot", Values: map[string]float64{
				"meanW":     rep.MeanPowerW,
				"underruns": float64(rep.TotalUnderruns),
				"stallS":    rep.TotalStall.Seconds(),
				"urgents":   float64(h.RM().Urgents()),
				"switches":  float64(switches),
				"slots":     float64(len(rep.Slots)),
			}}
		},
	}
	aggs, err := rf.Run([]scenario.Spec{spec}, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(aggs[0].Table())
}
