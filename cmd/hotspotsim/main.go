// Command hotspotsim runs a Hotspot resource-manager scenario with
// configurable clients, scheduler, interface policy and duration. A single
// seed prints the detailed per-client power/QoS report (and optionally the
// schedule); with -seeds N > 1 the scenario runs on the scenario engine's
// Runner across N consecutive seeds — on the backend selected by -backend
// (in-process pool, supervised worker subprocesses with
// retry/restart/degrade fault tolerance, or the on-disk result cache) —
// and reports each metric as mean ± 95% CI. The output is identical for
// any backend and pool size; shard supervision knobs (-max-retries,
// -chunk-timeout, -restart-backoff, -degrade-local) and worker-health
// reporting are shared with figgen (see EXPERIMENTS.md, "Fault
// tolerance").
//
// Example:
//
//	hotspotsim -clients 3 -duration 120 -scheduler edf -policy adaptive -slots
//	hotspotsim -clients 3 -wlan-outage 40 -seeds 8 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		nClients  = flag.Int("clients", 3, "number of MP3-streaming clients")
		duration  = flag.Float64("duration", 120, "simulated seconds")
		schedName = flag.String("scheduler", "edf", "scheduler: edf | wfq | rr")
		polName   = flag.String("policy", "adaptive", "interface policy: adaptive | wlan | bt")
		epoch     = flag.Float64("epoch", 10, "scheduling epoch (burst period) in seconds")
		showSlots = flag.Bool("slots", false, "print the burst schedule (single seed only)")
		outageAt  = flag.Float64("wlan-outage", 0, "force a WLAN outage at this second (0 = none)")
		outageLen = flag.Float64("outage-len", 40, "outage length in seconds")
	)
	flag.Parse()

	// Validate the selector flags exactly once, before any simulation (and
	// before the Runner's workers start): mkConfig itself must stay
	// error-free because it runs per seed on pool goroutines.
	var mkSched func() core.Scheduler
	switch *schedName {
	case "edf":
		mkSched = func() core.Scheduler { return core.EDF{} }
	case "wfq":
		mkSched = func() core.Scheduler { return core.NewWFQ() }
	case "rr":
		mkSched = func() core.Scheduler { return core.RoundRobin{} }
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	var policy core.IfacePolicy
	switch *polName {
	case "adaptive":
		policy = core.PolicyAdaptive
	case "wlan":
		policy = core.PolicyWLANOnly
	case "bt":
		policy = core.PolicyBTOnly
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown policy %q\n", *polName)
		os.Exit(2)
	}
	mkConfig := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Epoch = sim.FromSeconds(*epoch)
		cfg.Scheduler = mkSched()
		cfg.Policy = policy
		return cfg
	}

	runOne := func(s int64) (*core.Hotspot, core.Report) {
		h := core.NewHotspot(s, mkConfig(), *nClients)
		if *outageAt > 0 {
			at := sim.FromSeconds(*outageAt)
			h.Sim().At(at, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
			h.Sim().At(at+sim.FromSeconds(*outageLen), func() {
				h.Channel(core.WLAN).ForceState(channel.Good)
			})
		}
		rep := h.Run(sim.FromSeconds(*duration))
		return h, rep
	}

	// The ad-hoc spec wraps the configured scenario so the generic Runner —
	// and shard workers rebuilding it from the same command line — can run
	// it by name. Params pins every flag that shapes the result, keying the
	// result cache to the exact configuration.
	spec := scenario.Spec{
		Name: "hotspot",
		Desc: fmt.Sprintf("%d clients, %s/%s, epoch %.0fs", *nClients, *schedName, *polName, *epoch),
		Tags: []string{"hotspot"},
		Params: fmt.Sprintf("clients=%d scheduler=%s policy=%s epoch=%g duration=%g outage=%g outage-len=%g",
			*nClients, *schedName, *polName, *epoch, *duration, *outageAt, *outageLen),
		Run: func(s int64) scenario.Result {
			h, rep := runOne(s)
			switches := 0
			for _, c := range h.RM().Clients() {
				switches += c.Switches()
			}
			return scenario.Result{Name: "hotspot", Values: map[string]float64{
				"meanW":     rep.MeanPowerW,
				"underruns": float64(rep.TotalUnderruns),
				"stallS":    rep.TotalStall.Seconds(),
				"urgents":   float64(h.RM().Urgents()),
				"switches":  float64(switches),
				"slots":     float64(len(rep.Slots)),
			}}
		},
	}

	if served, err := rf.ServeMode(spec); served {
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotspotsim: worker: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if rf.SeedsN <= 1 {
		// The single-seed path bypasses the Runner (and therefore the
		// execution backends) for its detailed report. Still validate the
		// backend selection so a typo'd -backend fails here exactly like it
		// does in every other command, and refuse the non-default backends
		// outright rather than silently computing without them.
		if rf.Backend != "" && rf.Backend != "local" {
			if _, err := rf.Executor(); err != nil {
				fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "hotspotsim: -backend %s applies to multi-seed runs; the single-seed report always runs locally (use -seeds N > 1)\n", rf.Backend)
			os.Exit(2)
		}
		// Bracket the direct run with the profile hooks.
		stop, err := rf.StartProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
			os.Exit(2)
		}
		h, rep := runOne(rf.Seed)
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(rep)
		fmt.Printf("urgent top-ups: %d\n", h.RM().Urgents())
		if rep.QoSMaintained() {
			fmt.Println("QoS: maintained (no playout underruns)")
		} else {
			fmt.Printf("QoS: %d underruns, %.1fs total stall\n",
				rep.TotalUnderruns, rep.TotalStall.Seconds())
		}
		if *showSlots {
			fmt.Println("\nschedule:")
			for _, s := range rep.Slots {
				fmt.Printf("  %-9s %s\n", s.Kind, s)
			}
		}
		return
	}

	// Multi-seed: the Runner fans (seed) jobs across the selected backend
	// and aggregates the CI.
	aggs, err := rf.Run([]scenario.Spec{spec}, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotspotsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(aggs[0].Table())
}
