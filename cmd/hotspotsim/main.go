// Command hotspotsim runs one Hotspot resource-manager scenario with
// configurable clients, scheduler, interface policy and duration, printing
// the per-client power/QoS report and optionally the schedule.
//
// Example:
//
//	hotspotsim -clients 3 -duration 120 -scheduler edf -policy adaptive -slots
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	var (
		nClients  = flag.Int("clients", 3, "number of MP3-streaming clients")
		duration  = flag.Float64("duration", 120, "simulated seconds")
		seed      = flag.Int64("seed", 1, "simulation seed")
		schedName = flag.String("scheduler", "edf", "scheduler: edf | wfq | rr")
		polName   = flag.String("policy", "adaptive", "interface policy: adaptive | wlan | bt")
		epoch     = flag.Float64("epoch", 10, "scheduling epoch (burst period) in seconds")
		showSlots = flag.Bool("slots", false, "print the burst schedule")
		outageAt  = flag.Float64("wlan-outage", 0, "force a WLAN outage at this second (0 = none)")
		outageLen = flag.Float64("outage-len", 40, "outage length in seconds")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Epoch = sim.FromSeconds(*epoch)
	switch *schedName {
	case "edf":
		cfg.Scheduler = core.EDF{}
	case "wfq":
		cfg.Scheduler = core.NewWFQ()
	case "rr":
		cfg.Scheduler = core.RoundRobin{}
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	switch *polName {
	case "adaptive":
		cfg.Policy = core.PolicyAdaptive
	case "wlan":
		cfg.Policy = core.PolicyWLANOnly
	case "bt":
		cfg.Policy = core.PolicyBTOnly
	default:
		fmt.Fprintf(os.Stderr, "hotspotsim: unknown policy %q\n", *polName)
		os.Exit(2)
	}

	h := core.NewHotspot(*seed, cfg, *nClients)
	if *outageAt > 0 {
		at := sim.FromSeconds(*outageAt)
		h.Sim().At(at, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
		h.Sim().At(at+sim.FromSeconds(*outageLen), func() {
			h.Channel(core.WLAN).ForceState(channel.Good)
		})
	}
	rep := h.Run(sim.FromSeconds(*duration))

	fmt.Println(rep)
	fmt.Printf("urgent top-ups: %d\n", h.RM().Urgents())
	if rep.QoSMaintained() {
		fmt.Println("QoS: maintained (no playout underruns)")
	} else {
		fmt.Printf("QoS: %d underruns, %.1fs total stall\n",
			rep.TotalUnderruns, rep.TotalStall.Seconds())
	}
	if *showSlots {
		fmt.Println("\nschedule:")
		for _, s := range rep.Slots {
			fmt.Printf("  %-9s %s\n", s.Kind, s)
		}
	}
}
