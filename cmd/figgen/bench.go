package main

// The benchmark emitters and the bench gate. figgen owns two trajectory
// files at the repository root:
//
//   - BENCH_kernel.json (-benchjson): the internal/sim kernel
//     microbenchmark suite, run via testing.Benchmark so the numbers come
//     from exactly the code paths `go test -bench` times.
//   - BENCH_macro.json (-macrojson): every registered experiment timed
//     end-to-end through its scenario Spec, so kernel changes are gated on
//     whole-simulation wall clock, not just microbenchmarks.
//
// Each PR that touches the kernel appends its before/after numbers under
// fresh labels, so the perf trajectory is machine-readable from PR 2
// onward. -benchgate LABEL additionally enforces the perf contracts
// against a committed baseline entry: for the kernel suite, any allocating
// steady-state benchmark fails the run and a >20% ns/op regression prints
// a warning; for the macro suite, a >1.30× geometric-mean ns/op regression
// across the experiments fails the run. With a gate label set, the run also
// prints the perf trajectory across every committed baseline (pr2 → pr3 →
// pr4 → …), so each PR shows its place on the trend, not just its delta
// against the latest baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchFile is the whole trajectory document.
type benchFile struct {
	Suite   string       `json:"suite"`
	Entries []benchEntry `json:"entries"`
}

// benchEntry is one labelled run of the suite. Entries labelled
// "autotune-<label>" are search traces from figgen -autotune rather than
// suite baselines: their Benchmarks are the measured (spec, tuning)
// points and Autotune summarizes the winners; trend reporting and gating
// skip them.
type benchEntry struct {
	Label      string           `json:"label"`
	Go         string           `json:"go"`
	Date       string           `json:"date"`
	Benchmarks []benchResult    `json:"benchmarks"`
	Autotune   []autotuneWinner `json:"autotune,omitempty"`
}

// benchResult is one benchmark's outcome in go-test units.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	N           int     `json:"n"`
}

// benchRounds is how many times each benchmark is repeated; the fastest
// round is recorded. ns/op is wall clock, so the minimum across rounds is
// the estimate least polluted by scheduler and machine interference —
// allocation counts are deterministic and identical in every round.
const benchRounds = 3

// best runs one benchmark benchRounds times and keeps the fastest round.
func best(name string, bench func(b *testing.B)) benchResult {
	var min benchResult
	for i := 0; i < benchRounds; i++ {
		r := toResult(name, testing.Benchmark(bench))
		if i == 0 || r.NsPerOp < min.NsPerOp {
			min = r
		}
	}
	return min
}

// collectKernel runs the internal/sim kernel microbenchmark suite.
func collectKernel() []benchResult {
	var results []benchResult
	for _, k := range sim.KernelBenchmarks() {
		k := k
		results = append(results, best(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			k.Run(b.N)
		}))
	}
	return results
}

// collectMacro times every registered experiment end-to-end on the given
// seed. One "op" is one full Spec.Execute — building the scenario (under
// the spec's kernel tuning, when it carries one), draining the event
// queue, rendering the result — so these numbers move with the whole
// stack, kernel included.
func collectMacro(seed int64) []benchResult {
	var results []benchResult
	for _, spec := range scenario.All() {
		spec := spec
		results = append(results, best(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec.Execute(seed)
			}
		}))
	}
	return results
}

func toResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}

// runBenchJSON executes the named suite ("sim-kernel", "macro" or
// "fabric"), merges
// the results into the trajectory file at path under the given label
// (replacing any existing entry with the same label), and prints a summary
// table to w. For the kernel suite a non-empty gateLabel enforces the
// bench gate against that baseline entry before the file is rewritten.
func runBenchJSON(w io.Writer, path, suite, label, gateLabel string, seed int64) error {
	var results []benchResult
	var err error
	switch suite {
	case "sim-kernel":
		results = collectKernel()
	case "macro":
		results = collectMacro(seed)
	case "fabric":
		if results, err = collectFabric(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown benchmark suite %q", suite)
	}

	doc, err := loadBenchFile(path, suite)
	if err != nil {
		return err
	}
	var gateErr error
	if gateLabel != "" {
		switch suite {
		case "sim-kernel":
			gateErr = gate(w, results, doc, gateLabel)
		case "fabric":
			gateErr = fabricGate(w, results, doc, gateLabel)
		default:
			gateErr = macroGate(w, results, doc, gateLabel)
		}
	}
	entry := benchEntry{
		Label:      label,
		Go:         runtime.Version(),
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: results,
	}
	replaced := false
	for i := range doc.Entries {
		if doc.Entries[i].Label == label {
			doc.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Entries = append(doc.Entries, entry)
	}
	if err := writeBenchFile(path, doc); err != nil {
		return err
	}

	t := stats.NewTable(fmt.Sprintf("%s benchmarks — %s", suite, label),
		"benchmark", "ns/op", "B/op", "allocs/op", "iters")
	for _, r := range results {
		t.AddRow(r.Name, fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp), fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.N))
	}
	fmt.Fprintln(w, t)
	if gateLabel != "" {
		trendTable(w, suite, doc)
	}
	fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(doc.Entries))
	return gateErr
}

// trendEntries filters a trajectory file down to its suite baselines,
// dropping the autotune-* search traces.
func trendEntries(doc benchFile) []benchEntry {
	out := make([]benchEntry, 0, len(doc.Entries))
	for _, e := range doc.Entries {
		if strings.HasPrefix(e.Label, "autotune-") {
			continue
		}
		out = append(out, e)
	}
	return out
}

// commonBenchmarks returns the sorted benchmark names present (with a
// positive ns/op) in every entry, and the sorted names that appear
// somewhere but not everywhere — the ones a trajectory over the common
// set necessarily drops.
func commonBenchmarks(entries []benchEntry) (common map[string]bool, dropped []string) {
	counts := map[string]int{}
	for _, e := range entries {
		for _, b := range e.Benchmarks {
			if b.NsPerOp > 0 {
				counts[b.Name]++
			}
		}
	}
	common = map[string]bool{}
	for name, n := range counts {
		if n == len(entries) {
			common[name] = true
		} else {
			dropped = append(dropped, name)
		}
	}
	sort.Strings(dropped)
	return common, dropped
}

// trendTable places every committed baseline — and the run just recorded —
// on the suite's perf trajectory (pr2 → pr3 → pr4 → …): per entry, the
// ns/op geometric-mean ratio against the previous entry and against the
// first. Ratios are computed over the benchmarks present in *every* entry,
// so a suite that grew along the way (MetroDense only exists from pr6 on)
// compares like against like at every step; benchmarks outside the common
// set are named in a warning instead of silently skewing the curve. The
// gate enforces only the chosen baseline; the trajectory shows whether a
// PR's "within gate" is a plateau or a slow slide. Entries usually come
// from different machines, so the ratios read as trends, not measurements.
func trendTable(w io.Writer, suite string, doc benchFile) {
	entries := trendEntries(doc)
	if len(entries) < 2 {
		return
	}
	common, dropped := commonBenchmarks(entries)
	if len(dropped) > 0 {
		fmt.Fprintf(w, "trend %s: geomeans cover the %d benchmarks shared by all %d entries; not in every entry (dropped): %s\n",
			suite, len(common), len(entries), strings.Join(dropped, ", "))
	}
	if len(common) == 0 {
		fmt.Fprintf(w, "trend %s: no benchmark appears in every entry; no trajectory to report\n", suite)
		return
	}
	t := stats.NewTable(fmt.Sprintf("%s perf trajectory (%d common benchmarks)", suite, len(common)),
		"entry", "date", "benchmarks", "vs prev", "vs first")
	for i, e := range entries {
		vsPrev, vsFirst := "—", "—"
		if i > 0 {
			if g, n := geomeanOver(entries[i-1].Benchmarks, e.Benchmarks, common); n > 0 {
				vsPrev = fmt.Sprintf("×%.3f", g)
			}
			if g, n := geomeanOver(entries[0].Benchmarks, e.Benchmarks, common); n > 0 {
				vsFirst = fmt.Sprintf("×%.3f", g)
			}
		}
		t.AddRow(e.Label, e.Date, fmt.Sprintf("%d", len(e.Benchmarks)), vsPrev, vsFirst)
	}
	fmt.Fprintln(w, t)
}

// geomeanOver returns the geometric mean of cur/base ns/op ratios over the
// named benchmarks (all benchmarks when names is nil), and how many
// contributed.
func geomeanOver(base, cur []benchResult, names map[string]bool) (float64, int) {
	m := make(map[string]float64, len(base))
	for _, b := range base {
		if b.NsPerOp > 0 && (names == nil || names[b.Name]) {
			m[b.Name] = b.NsPerOp
		}
	}
	var sumLog float64
	n := 0
	for _, r := range cur {
		if b, ok := m[r.Name]; ok && r.NsPerOp > 0 {
			sumLog += math.Log(r.NsPerOp / b)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(sumLog / float64(n)), n
}

// runTrend prints the perf trajectories of all three committed suites —
// kernel, macro and fabric — from their trajectory files, then the
// cross-suite summary placing every baseline label on every suite's
// curve. It is figgen -trend: read-only reporting, no benchmarks run, so
// CI can put the full trajectory in the job summary for free.
func runTrend(w io.Writer, o options) error {
	files := []struct{ suite, path, fallback string }{
		{"sim-kernel", o.benchJSON, "BENCH_kernel.json"},
		{"macro", o.macroJSON, "BENCH_macro.json"},
		{"fabric", o.fabricJSON, "BENCH_fabric.json"},
	}
	var docs []benchFile
	for _, f := range files {
		path := f.path
		if path == "" {
			path = f.fallback
		}
		if _, err := os.Stat(path); os.IsNotExist(err) {
			fmt.Fprintf(w, "trend: %s suite: no %s; skipping\n", f.suite, path)
			continue
		}
		doc, err := loadBenchFile(path, f.suite)
		if err != nil {
			return err
		}
		trendTable(w, f.suite, doc)
		docs = append(docs, doc)
	}
	if len(docs) == 0 {
		return fmt.Errorf("trend: no trajectory files found (run the bench suites first, or pass -benchjson/-macrojson/-fabricjson paths)")
	}
	crossSuiteTrend(w, docs)
	return nil
}

// crossSuiteTrend prints one table spanning every suite: rows are the
// union of baseline labels in canonical order (pr2-before, pr2-after,
// pr3-before, …), columns are the suites, cells are each entry's
// vs-first geomean over that suite's common benchmark set. A dash means
// the suite has no entry under that label — the fabric suite only exists
// from pr9 on, which is exactly the kind of gap this table makes visible
// instead of hiding.
func crossSuiteTrend(w io.Writer, docs []benchFile) {
	header := []string{"entry"}
	vsFirst := make([]map[string]string, len(docs))
	labelSet := map[string]bool{}
	for i, doc := range docs {
		header = append(header, doc.Suite)
		vsFirst[i] = map[string]string{}
		entries := trendEntries(doc)
		if len(entries) == 0 {
			continue
		}
		common, _ := commonBenchmarks(entries)
		for _, e := range entries {
			labelSet[e.Label] = true
			if g, n := geomeanOver(entries[0].Benchmarks, e.Benchmarks, common); n > 0 {
				vsFirst[i][e.Label] = fmt.Sprintf("×%.3f", g)
			}
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		ri, oki := labelRank(labels[i])
		rj, okj := labelRank(labels[j])
		if oki != okj {
			return oki // parseable pr labels first, ad-hoc labels last
		}
		if oki && ri != rj {
			return ri < rj
		}
		return labels[i] < labels[j]
	})
	t := stats.NewTable("cross-suite perf trajectory (geomean vs each suite's first entry)", header...)
	for _, l := range labels {
		row := []string{l}
		for i := range docs {
			cell, ok := vsFirst[i][l]
			if !ok {
				cell = "—"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(w, t)
}

// labelRank maps a canonical baseline label ("pr<N>-before" /
// "pr<N>-after") onto its trajectory position; ok is false for ad-hoc
// labels, which sort after all canonical ones.
func labelRank(label string) (rank int, ok bool) {
	var n int
	var phase string
	if _, err := fmt.Sscanf(label, "pr%d-%s", &n, &phase); err != nil {
		return 0, false
	}
	switch phase {
	case "before":
		return 2 * n, true
	case "after":
		return 2*n + 1, true
	}
	return 0, false
}

// gate enforces the kernel perf contract for a fresh suite run: zero
// allocations per op on every benchmark (hard failure — the zero-alloc
// guarantee is the kernel's core invariant), and ns/op within 20% of the
// baseline entry (warning only: CI machines are too noisy for a hard
// wall-clock gate, but the warning makes a creeping regression visible in
// the job log).
func gate(w io.Writer, results []benchResult, doc benchFile, baseLabel string) error {
	var base *benchEntry
	for i := range doc.Entries {
		if doc.Entries[i].Label == baseLabel {
			base = &doc.Entries[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("bench gate: baseline label %q not found in trajectory file", baseLabel)
	}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var failed bool
	for _, r := range results {
		if r.AllocsPerOp > 0 {
			failed = true
			fmt.Fprintf(w, "BENCH GATE FAIL: %s allocates %d allocs/op (%d B/op); the kernel contract is 0\n",
				r.Name, r.AllocsPerOp, r.BytesPerOp)
		}
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(w, "bench gate: %s has no %q baseline entry (new benchmark)\n", r.Name, baseLabel)
			continue
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*1.20 {
			fmt.Fprintf(w, "BENCH GATE WARN: %s %.1f ns/op is %.0f%% above the %q baseline (%.1f ns/op)\n",
				r.Name, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, baseLabel, b.NsPerOp)
		}
	}
	if failed {
		return fmt.Errorf("bench gate: allocating kernel benchmark (see above)")
	}
	return nil
}

// macroGate enforces the macro wall-clock contract: across the experiments
// shared with the baseline entry, the geometric mean of ns/op ratios must
// stay at or under 1.30×. A single experiment may legitimately trade away
// wall clock (PR 3's wheel did), but the suite as a whole regressing 30%
// means the scale path got slower and the run fails. The geomean weighs
// every experiment equally, so one noisy long experiment cannot mask — or
// fake — a broad regression.
func macroGate(w io.Writer, results []benchResult, doc benchFile, baseLabel string) error {
	var base *benchEntry
	for i := range doc.Entries {
		if doc.Entries[i].Label == baseLabel {
			base = &doc.Entries[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("macro gate: baseline label %q not found in trajectory file", baseLabel)
	}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var sumLog float64
	n := 0
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(w, "macro gate: %s has no %q baseline entry (new experiment)\n", r.Name, baseLabel)
			continue
		}
		if b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		sumLog += math.Log(r.NsPerOp / b.NsPerOp)
		n++
	}
	if n == 0 {
		return fmt.Errorf("macro gate: no experiments overlap with baseline %q", baseLabel)
	}
	geo := math.Exp(sumLog / float64(n))
	fmt.Fprintf(w, "MACRO GATE: geomean ×%.3f vs %q over %d experiments (fail threshold ×1.30)\n",
		geo, baseLabel, n)
	if geo > 1.30 {
		return fmt.Errorf("macro gate: geomean ×%.3f vs %q exceeds the 1.30× threshold", geo, baseLabel)
	}
	return nil
}

// loadBenchFile reads an existing trajectory file, or starts a fresh one if
// the path does not exist yet.
func loadBenchFile(path, suite string) (benchFile, error) {
	doc := benchFile{Suite: suite}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	if doc.Suite != suite {
		return doc, fmt.Errorf("%s holds suite %q, not %q", path, doc.Suite, suite)
	}
	return doc, nil
}

func writeBenchFile(path string, doc benchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
