package main

// The -benchjson emitter: runs the internal/sim kernel benchmark suite via
// testing.Benchmark and upserts a labelled entry into a JSON trajectory
// file (conventionally BENCH_kernel.json at the repository root). Each PR
// that touches the kernel appends its before/after numbers under fresh
// labels, so the perf trajectory is machine-readable from PR 2 onward.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// benchFile is the whole trajectory document.
type benchFile struct {
	Suite   string       `json:"suite"`
	Entries []benchEntry `json:"entries"`
}

// benchEntry is one labelled run of the suite.
type benchEntry struct {
	Label      string        `json:"label"`
	Go         string        `json:"go"`
	Date       string        `json:"date"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchResult is one benchmark's outcome in go-test units.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	N           int     `json:"n"`
}

// runBenchJSON executes the kernel suite, merges the results into the
// trajectory file at path under the given label (replacing any existing
// entry with the same label), and prints a summary table to w.
func runBenchJSON(w io.Writer, path, label string) error {
	var results []benchResult
	for _, k := range sim.KernelBenchmarks() {
		k := k
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			k.Run(b.N)
		})
		results = append(results, benchResult{
			Name:        k.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			N:           r.N,
		})
	}

	doc, err := loadBenchFile(path)
	if err != nil {
		return err
	}
	entry := benchEntry{
		Label:      label,
		Go:         runtime.Version(),
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: results,
	}
	replaced := false
	for i := range doc.Entries {
		if doc.Entries[i].Label == label {
			doc.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Entries = append(doc.Entries, entry)
	}
	if err := writeBenchFile(path, doc); err != nil {
		return err
	}

	t := stats.NewTable(fmt.Sprintf("sim kernel benchmarks — %s", label),
		"benchmark", "ns/op", "B/op", "allocs/op", "iters")
	for _, r := range results {
		t.AddRow(r.Name, fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp), fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.N))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(doc.Entries))
	return nil
}

// loadBenchFile reads an existing trajectory file, or starts a fresh one if
// the path does not exist yet.
func loadBenchFile(path string) (benchFile, error) {
	doc := benchFile{Suite: "sim-kernel"}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

func writeBenchFile(path string, doc benchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
