package main

import (
	"bytes"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// tuneTestSpec is a tiny tunable scenario: a burst of timers across the
// wheel span whose result is (deterministically) the number fired. Fast
// enough that a full grid search runs in test time.
func tuneTestSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name: name, Desc: "autotune test spec", Tags: []string{"test"},
		RunTuned: func(seed int64, tun sim.Tuning) scenario.Result {
			s := sim.NewTuned(seed, tun)
			fired := 0
			for i := 0; i < 200; i++ {
				d := sim.Time(s.Rand().Intn(1 << 14))
				s.Schedule(d, func() { fired++ })
			}
			s.Run()
			return scenario.Result{
				Name:   name,
				Table:  "fired",
				Values: map[string]float64{"fired": float64(fired)},
			}
		},
	}
}

func TestAutotuneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_macro.json")
	pin := filepath.Join(dir, "tunings_gen.go")
	pinned := sim.Tuning{TickShift: 3, WheelBits: 4, CompactMinDead: 8, WheelMinPending: 2}
	spec := tuneTestSpec("tunetest")
	spec.Tuning = &pinned

	var buf bytes.Buffer
	err := runAutotune(&buf, []scenario.Spec{spec}, autotuneOptions{
		out: out, pin: pin, rounds: 1, budget: 8, label: "test", seed: 1,
	})
	if err != nil {
		t.Fatalf("runAutotune: %v\n%s", err, buf.String())
	}

	// The trace entry must be valid macro-suite JSON carrying the default
	// tuning, the spec's pin, and a winner summary.
	doc, err := loadBenchFile(out, "macro")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 1 || doc.Entries[0].Label != "autotune-test" {
		t.Fatalf("unexpected entries: %+v", doc.Entries)
	}
	e := doc.Entries[0]
	if len(e.Benchmarks) != 8 {
		t.Errorf("trace has %d points, want the full budget of 8", len(e.Benchmarks))
	}
	names := map[string]bool{}
	for _, b := range e.Benchmarks {
		if !strings.HasPrefix(b.Name, "tunetest/") || b.NsPerOp <= 0 {
			t.Errorf("malformed trace point %+v", b)
		}
		names[b.Name] = true
	}
	if !names["tunetest/"+sim.DefaultTuning().Key()] {
		t.Error("trace missing the default tuning (the speedup baseline)")
	}
	if !names["tunetest/"+pinned.Key()] {
		t.Error("trace missing the spec's pinned tuning (the re-validation point)")
	}
	if len(e.Autotune) != 1 || e.Autotune[0].Spec != "tunetest" ||
		e.Autotune[0].Measured != 8 || e.Autotune[0].DefaultNs <= 0 {
		t.Errorf("malformed winner summary: %+v", e.Autotune)
	}
	if _, err := sim.ParseTuningKey(e.Autotune[0].Tuning); err != nil {
		t.Errorf("winner key does not parse: %v", err)
	}

	// The pin table must be parseable Go pinning the winner.
	src, err := os.ReadFile(pin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), pin, src, 0); err != nil {
		t.Fatalf("pin table does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{"package exp", "autotunedTunings", `"tunetest":`, "Code generated"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("pin table missing %q:\n%s", want, src)
		}
	}

	// Winner summary table and byte-identity confirmation in the output.
	for _, want := range []string{"autotune winners", "output byte-identical", "wrote pin table"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestAutotuneUpsertsTraceEntry(t *testing.T) {
	// Re-running a search replaces its own entry and leaves baselines alone.
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_macro.json")
	base := benchFile{Suite: "macro", Entries: []benchEntry{
		{Label: "pr3-after", Benchmarks: []benchResult{{Name: "e3", NsPerOp: 1}}},
	}}
	if err := writeBenchFile(out, base); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := autotuneOptions{out: out, rounds: 1, budget: 2, label: "test", seed: 1}
	for i := 0; i < 2; i++ {
		if err := runAutotune(&buf, []scenario.Spec{tuneTestSpec("tunetest")}, o); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := loadBenchFile(out, "macro")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 2 || doc.Entries[0].Label != "pr3-after" || doc.Entries[1].Label != "autotune-test" {
		t.Fatalf("unexpected entries after re-run: %+v", doc.Entries)
	}
}

func TestAutotuneDetectsOrderVisibleTuning(t *testing.T) {
	// A spec whose output depends on the tuning is a kernel ordering bug;
	// the harness must refuse to pin it.
	bad := scenario.Spec{
		Name: "badspec", Desc: "tuning leaks into output", Tags: []string{"test"},
		RunTuned: func(seed int64, tun sim.Tuning) scenario.Result {
			return scenario.Result{Name: "bad", Table: tun.Key(),
				Values: map[string]float64{"x": 1}}
		},
	}
	var buf bytes.Buffer
	err := runAutotune(&buf, []scenario.Spec{bad}, autotuneOptions{
		out: filepath.Join(t.TempDir(), "m.json"), rounds: 1, budget: 4, label: "test", seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "changed the experiment output") {
		t.Fatalf("order-visible tuning not detected, err = %v", err)
	}
}

func TestAutotuneRequiresTunableSpec(t *testing.T) {
	plain := scenario.Spec{Name: "plain", Desc: "d", Tags: []string{"t"},
		Run: func(seed int64) scenario.Result {
			return scenario.Result{Name: "plain", Values: map[string]float64{"x": 1}}
		}}
	var buf bytes.Buffer
	err := runAutotune(&buf, []scenario.Spec{plain}, autotuneOptions{
		out: filepath.Join(t.TempDir(), "m.json"), rounds: 1, budget: 4, label: "t", seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "RunTuned") {
		t.Fatalf("want no-tunable-spec error, got %v", err)
	}
}

func TestAutotuneModeGuards(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{autotunePin: "x.go"}); err == nil ||
		!strings.Contains(err.Error(), "-autotune") {
		t.Error("-autotune-pin without -autotune should error")
	}
	if err := run(&buf, options{autotune: "m.json", benchJSON: "k.json"}); err == nil ||
		!strings.Contains(err.Error(), "separate modes") {
		t.Error("-autotune with a bench suite should error")
	}
	if err := run(&buf, options{trend: true, names: []string{"e3"}}); err == nil ||
		!strings.Contains(err.Error(), "-trend") {
		t.Error("-trend with a selection should error")
	}
}

func TestTuningFlagOverrideIsOutputInvisible(t *testing.T) {
	// -tuning forces a kernel tuning onto every tunable spec; because
	// tunings are order-invisible the rendered output must not move by a
	// byte. This is the assertion the CI autotune smoke job makes through
	// the real binary.
	base := options{rf: cli.RunFlags{Seed: 1, SeedsN: 1, Parallel: 1}, pattern: "e3"}
	var def, tuned bytes.Buffer
	if err := run(&def, base); err != nil {
		t.Fatal(err)
	}
	base.rf.Tuning = "ts8-wb10-cd64-wmp0"
	if err := run(&tuned, base); err != nil {
		t.Fatal(err)
	}
	if def.String() != tuned.String() {
		t.Error("-tuning changed experiment output")
	}
	base.rf.Tuning = "not-a-key"
	if err := run(&tuned, base); err == nil {
		t.Error("invalid -tuning key should error")
	}
}

func TestTrendTableIntersection(t *testing.T) {
	doc := benchFile{Suite: "macro", Entries: []benchEntry{
		{Label: "pr3-after", Date: "2026-01-01", Benchmarks: []benchResult{
			{Name: "e3", NsPerOp: 100}, {Name: "e4", NsPerOp: 100},
		}},
		{Label: "pr6-after", Date: "2026-02-01", Benchmarks: []benchResult{
			{Name: "e3", NsPerOp: 50}, {Name: "e4", NsPerOp: 200},
			{Name: "e18", NsPerOp: 100}, // new since pr6: must not skew
		}},
		{Label: "autotune-x", Benchmarks: []benchResult{
			{Name: "e3/ts0-wb10-cd64-wmp16", NsPerOp: 1}, // search trace: excluded
		}},
	}}
	var buf bytes.Buffer
	trendTable(&buf, "macro", doc)
	out := buf.String()
	// Geomean over the intersection {e3, e4}: sqrt(0.5 × 2) = 1.000.
	if !strings.Contains(out, "×1.000") {
		t.Errorf("intersection geomean wrong:\n%s", out)
	}
	if !strings.Contains(out, "dropped") || !strings.Contains(out, "e18") {
		t.Errorf("missing dropped-benchmark warning naming e18:\n%s", out)
	}
	if strings.Contains(out, "autotune-x") {
		t.Errorf("search-trace entry leaked into the trajectory:\n%s", out)
	}
}

func TestCrossSuiteTrendOrdersLabels(t *testing.T) {
	mk := func(suite string, labels ...string) benchFile {
		f := benchFile{Suite: suite}
		for _, l := range labels {
			f.Entries = append(f.Entries, benchEntry{
				Label:      l,
				Benchmarks: []benchResult{{Name: "b", NsPerOp: 100}},
			})
		}
		return f
	}
	var buf bytes.Buffer
	crossSuiteTrend(&buf, []benchFile{
		mk("sim-kernel", "pr2-before", "pr2-after", "pr10-after"),
		mk("macro", "pr3-before", "pr10-after"),
		mk("fabric", "pr9-before", "pr9-after", "pr10-after"),
	})
	out := buf.String()
	// Canonical order, numeric: pr2 < pr3 < pr9 < pr10 (not lexical).
	order := []string{"pr2-before", "pr2-after", "pr3-before", "pr9-before", "pr9-after", "pr10-after"}
	last := -1
	for _, l := range order {
		i := strings.Index(out, l+" ")
		if i < 0 {
			i = strings.Index(out, l)
		}
		if i < 0 {
			t.Fatalf("missing label %s:\n%s", l, out)
		}
		if i < last {
			t.Errorf("label %s out of order:\n%s", l, out)
		}
		last = i
	}
	// A suite without the label shows a dash, not a fabricated number.
	if !strings.Contains(out, "—") {
		t.Errorf("missing dash for absent labels:\n%s", out)
	}
}

func TestLabelRank(t *testing.T) {
	for _, c := range []struct {
		label string
		rank  int
		ok    bool
	}{
		{"pr2-before", 4, true},
		{"pr2-after", 5, true},
		{"pr10-before", 20, true},
		{"dev", 0, false},
		{"autotune-pr10", 0, false},
		{"pr3-nope", 0, false},
	} {
		r, ok := labelRank(c.label)
		if ok != c.ok || (ok && r != c.rank) {
			t.Errorf("labelRank(%q) = %d, %v; want %d, %v", c.label, r, ok, c.rank, c.ok)
		}
	}
}

func TestRunTrendReadsCommittedFiles(t *testing.T) {
	dir := t.TempDir()
	kernel := filepath.Join(dir, "k.json")
	macro := filepath.Join(dir, "m.json")
	if err := writeBenchFile(kernel, benchFile{Suite: "sim-kernel", Entries: []benchEntry{
		{Label: "pr2-after", Benchmarks: []benchResult{{Name: "K", NsPerOp: 100}}},
		{Label: "pr3-after", Benchmarks: []benchResult{{Name: "K", NsPerOp: 50}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := writeBenchFile(macro, benchFile{Suite: "macro", Entries: []benchEntry{
		{Label: "pr3-after", Benchmarks: []benchResult{{Name: "e3", NsPerOp: 100}}},
	}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runTrend(&buf, options{benchJSON: kernel, macroJSON: macro,
		fabricJSON: filepath.Join(dir, "missing.json")})
	if err != nil {
		t.Fatalf("runTrend: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "sim-kernel perf trajectory") || !strings.Contains(out, "×0.500") {
		t.Errorf("missing kernel trajectory:\n%s", out)
	}
	if !strings.Contains(out, "fabric suite: no") {
		t.Errorf("missing-file note absent:\n%s", out)
	}
	if !strings.Contains(out, "cross-suite perf trajectory") {
		t.Errorf("missing cross-suite table:\n%s", out)
	}
}
