package main

import "testing"

func TestCatalogueWellFormed(t *testing.T) {
	cat := catalogue()
	if len(cat) < 17 {
		t.Fatalf("catalogue has %d entries, want ≥ 17 (figs + E3..E17 + ablations)", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Errorf("malformed entry %+v", e)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
	}
	for _, must := range []string{"fig1", "fig2", "e8", "e15", "e16", "e17", "ablation-margin"} {
		if !seen[must] {
			t.Errorf("catalogue missing %q", must)
		}
	}
}

func TestCatalogueEntriesProduceTables(t *testing.T) {
	// Spot-run the two fastest entries end to end.
	for _, name := range []string{"fig1", "e15"} {
		for _, e := range catalogue() {
			if e.name != name {
				continue
			}
			r := e.run(1)
			if r.Table == "" || r.Name == "" {
				t.Errorf("%s produced an empty result", name)
			}
		}
	}
}
