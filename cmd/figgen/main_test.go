package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/scenario"
)

// oldCatalogue is the experiment list the pre-registry figgen hard-coded;
// the registry must keep resolving every one of these names.
var oldCatalogue = []string{
	"fig1", "fig2",
	"e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
	"e13", "e14", "e15", "e16", "e17",
	"ablation-iface", "ablation-margin", "ablation-burst",
}

func TestRegistryResolvesOldCatalogue(t *testing.T) {
	for _, name := range oldCatalogue {
		s, ok := scenario.Lookup(name)
		if !ok {
			t.Errorf("registry missing old catalogue name %q", name)
			continue
		}
		if s.Desc == "" || !s.Runnable() || len(s.Tags) == 0 {
			t.Errorf("spec %q is incomplete: %+v", name, s)
		}
	}
	if got := len(scenario.All()); got < len(oldCatalogue) {
		t.Errorf("registry has %d specs, want ≥ %d", got, len(oldCatalogue))
	}
}

func TestListIsGeneratedFromRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{list: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(scenario.All()) {
		t.Fatalf("-list printed %d lines, registry has %d specs", len(lines), len(scenario.All()))
	}
	for i, s := range scenario.All() {
		if !strings.HasPrefix(lines[i], s.Name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], s.Name)
		}
		if !strings.Contains(lines[i], s.Desc) {
			t.Errorf("-list line for %q missing description", s.Name)
		}
	}
	// Paper ordering: figures first, then e3..e17, then ablations.
	if !strings.HasPrefix(lines[0], "fig1") || !strings.HasPrefix(lines[1], "fig2") {
		t.Errorf("-list should start with fig1, fig2; got %q, %q", lines[0], lines[1])
	}
}

func TestRunRegexSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1}, pattern: "e1[5-7]"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== e15", "=== e16", "=== e17"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "=== e3") || strings.Contains(out, "=== e14") {
		t.Error("regex selected experiments outside e15..e17")
	}
}

func TestTagSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1}, tags: "ablation"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== ablation-margin") {
		t.Error("tag selection missed ablation-margin")
	}
	if strings.Contains(out, "=== fig1") {
		t.Error("tag selection leaked untagged experiments")
	}
}

func TestUnknownExperimentIsError(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1}, names: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown name should error, got %v", err)
	}
}

func TestMultiSeedOutputParallelInvariant(t *testing.T) {
	opts := options{rf: cli.RunFlags{Seed: 1, SeedsN: 4}, pattern: "e17"}
	var seq, par bytes.Buffer
	opts.rf.Parallel = 1
	if err := run(&seq, opts); err != nil {
		t.Fatal(err)
	}
	opts.rf.Parallel = 8
	if err := run(&par, opts); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("-parallel changed output:\n--- parallel=1\n%s\n--- parallel=8\n%s", seq.String(), par.String())
	}
	if !strings.Contains(seq.String(), "±95% CI") {
		t.Error("multi-seed output missing CI column")
	}
}

func TestJSONOutput(t *testing.T) {
	// Multiple experiments must still form one valid JSON document.
	var buf bytes.Buffer
	if err := run(&buf, options{rf: cli.RunFlags{Seed: 1, SeedsN: 3, Parallel: 3}, pattern: "e1[67]", jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var docs []jsonExperiment
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(docs) != 2 || docs[0].Experiment != "e16" || docs[1].Experiment != "e17" {
		t.Fatalf("unexpected JSON documents: %+v", docs)
	}
	if len(docs[1].Seeds) != 3 || len(docs[1].Metrics) == 0 {
		t.Errorf("unexpected e17 document: %+v", docs[1])
	}
}

func TestJSONSingleSeedUsesValues(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1}, pattern: "e17", jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var docs []jsonExperiment
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(docs) != 1 || len(docs[0].Values) == 0 || len(docs[0].Metrics) != 0 {
		t.Errorf("single-seed JSON should carry raw values, not CI metrics: %+v", docs)
	}
}

func TestSingleSeedHonorsParallel(t *testing.T) {
	// -parallel must apply at -seeds 1 too (experiments fan across the
	// pool) without changing the classic table output.
	var seq, par bytes.Buffer
	if err := run(&seq, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1, Parallel: 1}, pattern: "e1[5-7]"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, options{rf: cli.RunFlags{Seed: 1, SeedsN: 1, Parallel: 8}, pattern: "e1[5-7]"}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Error("-parallel changed single-seed output")
	}
	if !strings.Contains(seq.String(), "=== e15") {
		t.Error("missing classic per-experiment table")
	}
}

func TestBenchJSONRejectsExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, options{benchJSON: "/tmp/should-not-exist.json", names: []string{"e10"}})
	if err == nil || !strings.Contains(err.Error(), "benchjson") {
		t.Fatalf("-benchjson with experiment selection should error, got %v", err)
	}
}

func TestBenchGateRequiresASuite(t *testing.T) {
	// A gate request must never be silently dropped: without a benchmark
	// suite to gate it is an error.
	var buf bytes.Buffer
	err := run(&buf, options{benchGate: "pr3-after"})
	if err == nil || !strings.Contains(err.Error(), "benchjson") {
		t.Fatalf("-benchgate without a suite should error, got %v", err)
	}
}

func TestMacroGateGeomean(t *testing.T) {
	baseline := benchFile{Suite: "macro", Entries: []benchEntry{{
		Label: "base",
		Benchmarks: []benchResult{
			{Name: "e1", NsPerOp: 100},
			{Name: "e2", NsPerOp: 200},
			{Name: "e3", NsPerOp: 50},
		},
	}}}
	fresh := []benchResult{
		{Name: "e1", NsPerOp: 100},
		{Name: "e2", NsPerOp: 200},
		{Name: "e3", NsPerOp: 50},
		{Name: "e-new", NsPerOp: 10}, // no baseline: reported, not gated
	}
	var buf bytes.Buffer
	if err := macroGate(&buf, fresh, baseline, "base"); err != nil {
		t.Fatalf("parity run failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "geomean ×1.000") {
		t.Errorf("missing geomean line: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "e-new") {
		t.Errorf("new experiment not reported: %s", buf.String())
	}

	// One experiment 2× slower: geomean ≈ 1.26 — under the threshold.
	fresh[0].NsPerOp = 200
	buf.Reset()
	if err := macroGate(&buf, fresh, baseline, "base"); err != nil {
		t.Fatalf("single-experiment trade failed the gate: %v", err)
	}

	// Everything 1.4× slower: geomean 1.4 — the gate must fail.
	for i := range fresh {
		fresh[i].NsPerOp *= 1.4
	}
	fresh[0].NsPerOp = 140
	buf.Reset()
	if err := macroGate(&buf, fresh, baseline, "base"); err == nil {
		t.Fatalf("broad 1.4× regression passed the gate:\n%s", buf.String())
	}

	if err := macroGate(&buf, fresh, baseline, "no-such-label"); err == nil {
		t.Error("missing baseline label should error")
	}
}
