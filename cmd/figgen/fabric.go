package main

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/scenario"
)

// The fabric benchmark suite (-fabricjson): how fast do (spec, seed) runs
// move through the distributed sweep fabric when the seed itself is nearly
// free? Real experiments are simulation-bound; this suite makes the wire
// protocol the bottleneck on purpose, so the recorded seeds/sec tracks
// codec and framing work — the part PR 9 optimizes — rather than kernel
// speed. Two transports are timed over loopback (worker subprocesses and
// TCP -addrs-style connections) plus the raw Result codec microbenchmarks,
// and the numbers land in BENCH_fabric.json next to the kernel and macro
// trajectories.

const (
	fabricSeeds   = 4096 // seeds per throughput round
	fabricWorkers = 4    // worker slots per transport leg
	fabricChunk   = 16   // seeds per lease (ChunkSeeds)
)

// fabricSpec is the near-zero-cost experiment the throughput legs sweep:
// a handful of seed-derived metrics and a small rendered table, shaped
// like a real Result but costing microseconds. It is passed to ServeMode
// as an extra spec so re-exec'd and -serve workers resolve it by name.
func fabricSpec() scenario.Spec {
	return scenario.Spec{
		Name:   "fabric-echo",
		Desc:   "near-zero-cost spec for fabric throughput benchmarks",
		Params: "fabric-bench-v1",
		Run: func(seed int64) scenario.Result {
			v := float64(seed)
			return scenario.Result{
				Name:  "fabric-echo",
				Table: fmt.Sprintf("fabric-echo seed %d\n  v %g\n", seed, v),
				Values: map[string]float64{
					"seed": v,
					"inv":  1 / (v + 1),
					"sq":   v * v,
					"neg":  -v,
				},
			}
		},
	}
}

// collectFabric runs the codec microbenchmarks and both loopback
// throughput legs.
func collectFabric() ([]benchResult, error) {
	var results []benchResult
	for _, k := range scenario.CodecBenchmarks() {
		k := k
		results = append(results, best(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			k.Run(b.N)
		}))
	}

	subproc, err := fabricThroughput("FabricSubproc", func() (*scenario.Shard, func(), error) {
		return &scenario.Shard{
			Workers: fabricWorkers,
			Policy:  scenario.FaultPolicy{ChunkSeeds: fabricChunk},
		}, func() {}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fabric subprocess leg: %w", err)
	}
	results = append(results, subproc)

	tcp, err := fabricThroughput("FabricTCP", func() (*scenario.Shard, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go scenario.ServeNet(ln, scenario.NetServeOptions{
			Extra: []scenario.Spec{fabricSpec()},
			Log:   io.Discard,
		})
		sh := &scenario.Shard{
			Workers: fabricWorkers,
			Addrs:   []string{ln.Addr().String()},
			Policy:  scenario.FaultPolicy{ChunkSeeds: fabricChunk},
		}
		return sh, func() { ln.Close() }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fabric tcp leg: %w", err)
	}
	results = append(results, tcp)
	return results, nil
}

// fabricThroughput sweeps fabricSeeds seeds of the echo spec through one
// shard transport, best wall clock of benchRounds rounds after a warm-up
// round (the warm-up absorbs spawn/dial and first-use costs, so the
// recorded number is steady-state protocol throughput). ns/op is ns per
// seed; seeds/sec is its reciprocal.
func fabricThroughput(name string, newShard func() (*scenario.Shard, func(), error)) (benchResult, error) {
	sh, cleanup, err := newShard()
	if err != nil {
		return benchResult{}, err
	}
	defer cleanup()
	defer sh.Close()
	spec := fabricSpec()
	seeds := scenario.Seeds(1, fabricSeeds)
	round := func() (time.Duration, error) {
		emitted := 0
		start := time.Now()
		if err := sh.Run(spec, seeds, func(ki int, res scenario.Result) { emitted++ }); err != nil {
			return 0, err
		}
		if emitted != len(seeds) {
			return 0, fmt.Errorf("emitted %d of %d seeds", emitted, len(seeds))
		}
		return time.Since(start), nil
	}
	if _, err := round(); err != nil {
		return benchResult{}, err
	}
	var bestD time.Duration
	for i := 0; i < benchRounds; i++ {
		d, err := round()
		if err != nil {
			return benchResult{}, err
		}
		if i == 0 || d < bestD {
			bestD = d
		}
	}
	if h := sh.Health(); h.Failures() > 0 {
		return benchResult{}, fmt.Errorf("unhealthy run: %s", h)
	}
	return benchResult{
		Name:    name,
		NsPerOp: float64(bestD.Nanoseconds()) / float64(fabricSeeds),
		N:       fabricSeeds,
	}, nil
}

// fabricGate enforces the fabric perf contract: the codec benchmarks must
// report zero allocations per op (the binary codec's scratch-reuse
// contract), and — like the kernel gate — ns/op regressions beyond 20%
// against the baseline entry warn without failing (throughput legs are
// wall-clock and machine-sensitive).
func fabricGate(w io.Writer, results []benchResult, doc benchFile, baseLabel string) error {
	var base *benchEntry
	for i := range doc.Entries {
		if doc.Entries[i].Label == baseLabel {
			base = &doc.Entries[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("fabric gate: baseline label %q not found in trajectory file", baseLabel)
	}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var failed []string
	for _, r := range results {
		if len(r.Name) >= 5 && r.Name[:5] == "Codec" && r.AllocsPerOp > 0 {
			failed = append(failed, fmt.Sprintf("%s allocates %d/op (codec must be alloc-free)", r.Name, r.AllocsPerOp))
		}
		if b, ok := baseline[r.Name]; ok && b.NsPerOp > 0 && r.NsPerOp > 1.20*b.NsPerOp {
			fmt.Fprintf(w, "FABRIC GATE WARN: %s %.1f ns/op vs %.1f baseline (%s): %+.0f%%\n",
				r.Name, r.NsPerOp, b.NsPerOp, baseLabel, 100*(r.NsPerOp/b.NsPerOp-1))
		}
		if b, ok := baseline[r.Name]; ok && b.NsPerOp > 0 && (r.Name == "FabricSubproc" || r.Name == "FabricTCP") {
			fmt.Fprintf(w, "fabric gate: %s %.0f seeds/s vs %.0f baseline (%s): ×%.2f\n",
				r.Name, 1e9/r.NsPerOp, 1e9/b.NsPerOp, baseLabel, b.NsPerOp/r.NsPerOp)
		}
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintf(w, "FABRIC GATE FAIL: %s\n", f)
		}
		return fmt.Errorf("fabric gate: %d benchmark(s) violate the zero-alloc codec contract", len(failed))
	}
	fmt.Fprintf(w, "FABRIC GATE OK: codec alloc-free, compared against %q\n", baseLabel)
	return nil
}
