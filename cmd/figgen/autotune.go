package main

// The autotune harness behind `figgen -autotune`: a measured-best search
// over the sim.Tuning space, per selected experiment. PR 4 and PR 6 pinned
// e3–e5's and the metro family's tunings by hand-measuring a few
// candidates; this automates that loop — a seeded coarse grid
// (sim.TuningGrid) followed by hill-climb refinement (Tuning.Neighbors),
// each point timed best-of-K — and emits the winners as a generated Go pin
// table (internal/exp/tunings_gen.go) plus the full search trace as an
// "autotune-<label>" entry in BENCH_macro.json.
//
// The search leans on the kernel's one hard guarantee: tunings are
// order-invisible (pop order is enforced against every queue structure, see
// TestRandomInterleavingCornerTunings), so any point in the space produces
// bit-identical experiment output and the golden, the result cache and the
// cross-backend equivalence all stay valid under whatever winner gets
// pinned. The harness re-proves it anyway: every measured point's Result is
// byte-compared against the default tuning's before anything is written.

import (
	"bytes"
	"fmt"
	"go/format"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// autotuneOptions carries the -autotune* flag values.
type autotuneOptions struct {
	out    string // bench JSON file recording the search trace (macro suite)
	pin    string // optional generated Go pin table path
	rounds int    // best-of-K timing rounds per tuning
	budget int    // max tunings measured per experiment
	label  string // bench entry label suffix: "autotune-<label>"
	seed   int64
}

// tuneSample is one measured point of a spec's search: a tuning and its
// best-of-K wall clock per execution.
type tuneSample struct {
	tun sim.Tuning
	ns  float64
}

// autotuneOutcome is one spec's finished search.
type autotuneOutcome struct {
	spec      scenario.Spec
	samples   []tuneSample // in measurement order — the search trace
	winner    tuneSample
	defaultNs float64 // the default tuning's best-of-K, for the speedup column
	pinnedNs  float64 // the spec's currently pinned tuning, 0 when unpinned
}

// runAutotune searches the tuning space for every selected tunable spec,
// records the traces into o.out under "autotune-<label>", optionally emits
// the pin table, and prints the measured-best summary.
func runAutotune(w io.Writer, specs []scenario.Spec, o autotuneOptions) error {
	if o.rounds < 1 {
		return fmt.Errorf("-autotune-rounds must be at least 1")
	}
	if o.budget < 2 {
		return fmt.Errorf("-autotune-budget must be at least 2 (the default tuning plus one candidate)")
	}
	var tunable []scenario.Spec
	for _, s := range specs {
		if s.RunTuned != nil {
			tunable = append(tunable, s)
		}
	}
	if len(tunable) == 0 {
		return fmt.Errorf("no selected experiment accepts a kernel tuning (RunTuned); see figgen -list")
	}
	if len(tunable) < len(specs) {
		fmt.Fprintf(w, "autotune: skipping %d selected experiment(s) without a tunable kernel\n",
			len(specs)-len(tunable))
	}

	var outcomes []autotuneOutcome
	for _, s := range tunable {
		out, err := autotuneSpec(w, s, o)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, out)
	}

	if err := recordAutotune(o, outcomes); err != nil {
		return err
	}
	if o.pin != "" {
		if err := writePinTable(o.pin, outcomes); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote pin table %s (%d experiments)\n", o.pin, len(outcomes))
	}

	t := stats.NewTable(fmt.Sprintf("autotune winners — seed %d, best of %d", o.seed, o.rounds),
		"experiment", "winner", "ns/op", "vs default", "vs pinned", "measured")
	for _, out := range outcomes {
		vsPinned := "—"
		if out.pinnedNs > 0 {
			vsPinned = fmt.Sprintf("%+.1f%%", 100*(out.winner.ns-out.pinnedNs)/out.pinnedNs)
		}
		t.AddRow(out.spec.Name, out.winner.tun.Key(),
			fmt.Sprintf("%.0f", out.winner.ns),
			fmt.Sprintf("%+.1f%%", 100*(out.winner.ns-out.defaultNs)/out.defaultNs),
			vsPinned,
			fmt.Sprintf("%d", len(out.samples)))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintf(w, "wrote %s (entry autotune-%s)\n", o.out, o.label)
	return nil
}

// autotuneSpec searches one spec: measure the seeded grid (budget
// permitting), then hill-climb from the best grid point until no neighbor
// improves or the budget runs out. Every measured point's output is
// verified byte-identical to the default tuning's as it is timed, so an
// order-visible tuning aborts the search no matter how it places.
func autotuneSpec(w io.Writer, s scenario.Spec, o autotuneOptions) (autotuneOutcome, error) {
	out := autotuneOutcome{spec: s}
	// Warm caches, capture the identity baseline, and size the timing
	// rounds: fast experiments run several executions per round so a round
	// is long enough to time stably.
	t0 := time.Now()
	defBytes, err := scenario.EncodeResult(s.RunTuned(o.seed, sim.DefaultTuning()))
	if err != nil {
		return out, fmt.Errorf("autotune %s: encode default result: %w", s.Name, err)
	}
	perExec := time.Since(t0)
	ops := 1
	if target := 20 * time.Millisecond; perExec < target && perExec > 0 {
		ops = int(target / perExec)
	}

	visited := map[string]bool{}
	var identityErr error
	measure := func(tun sim.Tuning) tuneSample {
		visited[tun.Key()] = true
		best := float64(0)
		var last scenario.Result
		for r := 0; r < o.rounds; r++ {
			start := time.Now()
			for i := 0; i < ops; i++ {
				last = s.RunTuned(o.seed, tun)
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
			if r == 0 || ns < best {
				best = ns
			}
		}
		if identityErr == nil {
			b, err := scenario.EncodeResult(last)
			switch {
			case err != nil:
				identityErr = fmt.Errorf("autotune %s: encode result under %s: %w", s.Name, tun.Key(), err)
			case !bytes.Equal(b, defBytes):
				identityErr = fmt.Errorf("autotune %s: tuning %s changed the experiment output — kernel ordering bug, do not pin",
					s.Name, tun.Key())
			}
		}
		sample := tuneSample{tun: tun, ns: best}
		out.samples = append(out.samples, sample)
		return sample
	}

	// Candidate order: the default (the speedup baseline, always measured),
	// the spec's currently pinned tuning (so "re-validate the pin" is part
	// of every search), then the rest of the grid.
	candidates := []sim.Tuning{sim.DefaultTuning()}
	if s.Tuning != nil {
		candidates = append(candidates, *s.Tuning)
	}
	candidates = append(candidates, sim.TuningGrid()...)

	incumbent := tuneSample{ns: 0}
	for _, tun := range candidates {
		if visited[tun.Key()] {
			continue
		}
		if len(out.samples) >= o.budget {
			break
		}
		sample := measure(tun)
		if identityErr != nil {
			return out, identityErr
		}
		if incumbent.ns == 0 || sample.ns < incumbent.ns {
			incumbent = sample
		}
	}

	// Hill-climb: measure the incumbent's unvisited neighbors; move while
	// something improves. The climb refines between grid lines — halving a
	// threshold, nudging the tick granularity — where the optimum usually
	// sits for workloads the coarse grid only brackets.
	for len(out.samples) < o.budget {
		best := incumbent
		for _, n := range incumbent.tun.Neighbors() {
			if visited[n.Key()] || len(out.samples) >= o.budget {
				continue
			}
			sample := measure(n)
			if identityErr != nil {
				return out, identityErr
			}
			if sample.ns < best.ns {
				best = sample
			}
		}
		if best.tun == incumbent.tun {
			break
		}
		incumbent = best
	}

	// The incumbent only ever improved, but take the global minimum over
	// the trace anyway — it is the definition of "measured best".
	out.winner = out.samples[0]
	for _, sample := range out.samples {
		if sample.ns < out.winner.ns {
			out.winner = sample
		}
		if sample.tun == sim.DefaultTuning() {
			out.defaultNs = sample.ns
		}
		if s.Tuning != nil && sample.tun == *s.Tuning {
			out.pinnedNs = sample.ns
		}
	}

	fmt.Fprintf(w, "autotune %s: %d tunings, winner %s at %.0f ns/op (default %.0f, %+.1f%%), output byte-identical\n",
		s.Name, len(out.samples), out.winner.tun.Key(), out.winner.ns, out.defaultNs,
		100*(out.winner.ns-out.defaultNs)/out.defaultNs)
	return out, nil
}

// autotuneWinner is the machine-readable winner summary stored alongside
// the trace in the bench entry.
type autotuneWinner struct {
	Spec      string  `json:"spec"`
	Tuning    string  `json:"tuning"`
	NsPerOp   float64 `json:"ns_op"`
	DefaultNs float64 `json:"default_ns_op"`
	Measured  int     `json:"measured"`
}

// recordAutotune upserts the full search trace into the macro trajectory
// file under "autotune-<label>": one benchResult per measured
// (spec, tuning) point, named "<spec>/<tuningKey>", plus the winners
// table. Trend reporting skips autotune-* entries — a search trace is not
// a suite baseline — but the entry rides in the same file so the search
// that justified a pin is committed next to the numbers it changed.
func recordAutotune(o autotuneOptions, outcomes []autotuneOutcome) error {
	doc, err := loadBenchFile(o.out, "macro")
	if err != nil {
		return err
	}
	entry := benchEntry{
		Label: "autotune-" + o.label,
		Go:    runtime.Version(),
		Date:  time.Now().UTC().Format("2006-01-02"),
	}
	for _, out := range outcomes {
		for _, sample := range out.samples {
			entry.Benchmarks = append(entry.Benchmarks, benchResult{
				Name:    out.spec.Name + "/" + sample.tun.Key(),
				NsPerOp: sample.ns,
				N:       o.rounds,
			})
		}
		entry.Autotune = append(entry.Autotune, autotuneWinner{
			Spec:      out.spec.Name,
			Tuning:    out.winner.tun.Key(),
			NsPerOp:   out.winner.ns,
			DefaultNs: out.defaultNs,
			Measured:  len(out.samples),
		})
	}
	replaced := false
	for i := range doc.Entries {
		if doc.Entries[i].Label == entry.Label {
			doc.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Entries = append(doc.Entries, entry)
	}
	return writeBenchFile(o.out, doc)
}

// writePinTable emits the measured winners as a generated Go source file —
// the map internal/exp applies over its catalogue at init. The file is
// gofmt-formatted and carries its own regeneration instructions, so a pin
// refresh is one command plus one diff review.
func writePinTable(path string, outcomes []autotuneOutcome) error {
	sorted := append([]autotuneOutcome(nil), outcomes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].spec.Name < sorted[j].spec.Name })

	var b bytes.Buffer
	fmt.Fprintf(&b, `// Code generated by figgen -autotune; DO NOT EDIT.
//
// Measured-best kernel tunings per experiment, from the grid +
// hill-climb search described in EXPERIMENTS.md ("Autotuning"). The
// matching search trace lives in BENCH_macro.json under the
// autotune-* entry. Regenerate (and re-verify byte-identity) with:
//
//	go run ./cmd/figgen -autotune BENCH_macro.json -benchlabel <label> \
//		-autotune-pin internal/exp/tunings_gen.go -tags <tags-or-other-selection>
//
// Tunings trade constant factors only, never event order, so these pins
// cannot change any experiment's output; the harness byte-compares every
// winner's result against the default tuning's before writing this file.

package exp

import "repro/internal/sim"

// autotunedTunings pins each experiment's measured-best kernel tuning.
var autotunedTunings = map[string]sim.Tuning{
`)
	for _, out := range sorted {
		t := out.winner.tun
		wmp := fmt.Sprintf("%d", t.WheelMinPending)
		if t.WheelMinPending == sim.WheelAdaptive {
			wmp = "sim.WheelAdaptive"
		}
		fmt.Fprintf(&b, "\t%q: {TickShift: %d, WheelBits: %d, CompactMinDead: %d, WheelMinPending: %s}, // %s\n",
			out.spec.Name, t.TickShift, t.WheelBits, t.CompactMinDead, wmp, t.Key())
	}
	fmt.Fprintf(&b, "}\n")

	src, err := format.Source(b.Bytes())
	if err != nil {
		return fmt.Errorf("autotune: pin table does not parse (internal bug): %w", err)
	}
	return os.WriteFile(path, src, 0o644)
}
