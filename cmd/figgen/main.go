// Command figgen regenerates every figure and experiment of the
// reproduction: the paper's Figure 1 (sample schedule) and Figure 2
// (average power bars), the survey experiments E3–E15 derived from the
// paper's Section 1 claims, and the design ablations.
//
// Usage:
//
//	figgen [-seed N] [-list] [experiment ...]
//
// With no arguments every experiment runs in order. Experiment names:
// fig1 fig2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 e17
// ablation-iface ablation-margin ablation-burst
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/sim"
)

type experiment struct {
	name string
	desc string
	run  func(seed int64) exp.Result
}

func catalogue() []experiment {
	return []experiment{
		{"fig1", "Figure 1: sample schedule (transfers + power levels)", exp.Figure1},
		{"fig2", "Figure 2: average WNIC power, 3 MP3 clients", func(s int64) exp.Result {
			return exp.Figure2(s, 5*sim.Minute)
		}},
		{"e3", "E3: unmanaged WLAN listens ~90% of the time", exp.E3ListenFraction},
		{"e4", "E4: 802.11 PSM vs CAM across loads", exp.E4PSMvsCAM},
		{"e5", "E5: CAM vs PSM vs EC-MAC", exp.E5MACComparison},
		{"e6", "E6: MAC-layer aggregation sweep", exp.E6Aggregation},
		{"e7", "E7: PAMAS overhearing avoidance + battery sleep", exp.E7PAMAS},
		{"e8", "E8: ARQ vs FEC energy crossover", exp.E8ARQvsFEC},
		{"e9", "E9: adaptive ARQ with channel prediction", exp.E9AdaptiveARQ},
		{"e10", "E10: end-to-end vs split TCP", exp.E10SplitTCP},
		{"e11", "E11: OS-level DPM policies", exp.E11DPM},
		{"e12", "E12: proxy content adaptation", exp.E12ProxyAdaptation},
		{"e13", "E13: EDF vs WFQ vs round-robin", exp.E13Schedulers},
		{"e14", "E14: burst-size sweep", exp.E14BurstSize},
		{"e15", "E15: seamless interface switching", exp.E15InterfaceSwitch},
		{"e16", "E16: energy-efficient ad-hoc routing", exp.E16Routing},
		{"e17", "E17: CPU voltage scaling under EDF", exp.E17DVS},
		{"ablation-iface", "ablation: interface selection off", exp.AblationInterfaceSelection},
		{"ablation-margin", "ablation: buffer margin", exp.AblationMargin},
		{"ablation-burst", "ablation: burst aggregation", exp.AblationBurstAggregation},
	}
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	cat := catalogue()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		return
	}

	want := flag.Args()
	selected := map[string]bool{}
	for _, w := range want {
		selected[w] = true
	}
	known := map[string]bool{}
	for _, e := range cat {
		known[e.name] = true
	}
	for _, w := range want {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "figgen: unknown experiment %q (use -list)\n", w)
			os.Exit(2)
		}
	}

	for _, e := range cat {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s — %s\n", e.name, e.desc)
		r := e.run(*seed)
		fmt.Println(r.Table)
	}
}
