// Command figgen regenerates the figures and experiments of the
// reproduction from the scenario registry: every experiment registered by
// internal/exp (the paper's figures, the Section 1 survey experiments and
// the design ablations) is available by name, regex or tag. Run
// `figgen -list` for the authoritative catalogue — it is generated from
// the registry, so it never drifts from the code.
//
// Usage:
//
//	figgen [-seed N] [-seeds N] [-parallel N] [-run REGEX] [-tags T1,T2]
//	       [-backend local|shard|cached] [-workers N] [-cache-dir DIR]
//	       [-addrs HOST:PORT,...] [-store HOST:PORT]
//	       [-max-retries N] [-chunk-timeout D] [-restart-backoff D]
//	       [-dial-timeout D] [-frame-timeout D]
//	       [-degrade-local] [-chaos SCHEDULE] [-health-json FILE]
//	       [-json] [-list] [-tuning KEY]
//	       [-cpuprofile FILE] [-memprofile FILE]
//	       [-benchjson FILE [-benchgate LABEL]] [-macrojson FILE]
//	       [-benchlabel L] [experiment ...]
//	figgen -autotune FILE [-autotune-pin FILE] [-autotune-rounds K]
//	       [-autotune-budget N] [-benchlabel L] [experiment ...]
//	figgen -trend [-benchjson FILE] [-macrojson FILE] [-fabricjson FILE]
//	figgen -serve ADDR [-chaos SCHEDULE]
//	figgen -serve-store ADDR [-cache-dir DIR]
//
// With no selection flags every experiment runs in order. All (experiment
// × seed) jobs run on the backend selected by -backend: the in-process
// pool sized by -parallel (default), -workers supervised subprocesses
// speaking the internal shard protocol (or, with -addrs, TCP connections
// to figgen -serve worker servers), or the local pool behind the
// on-disk result cache at -cache-dir (optionally shared across machines
// via -store pointing at a figgen -serve-store server; see EXPERIMENTS.md,
// "Execution backends" and "Distributed mode"). The output is identical
// for every backend, transport and pool size, only the wall clock changes
// — the shard backend retries, restarts and degrades around worker
// failures (tunable via -max-retries, -chunk-timeout, -restart-backoff,
// -dial-timeout and -frame-timeout; fault injection for testing via
// -chaos) without costing a single output bit (see EXPERIMENTS.md, "Fault
// tolerance"). With -seeds N > 1 each selected experiment runs on N
// consecutive seeds (base -seed) and figgen reports each metric's mean ±
// 95% confidence interval. After the tables, table mode appends the
// backend's run summary (shard worker health, cache hit/miss/write-error
// counters); -json keeps stdout machine-parseable and leaves the summary
// on stderr only; -health-json FILE ("-" for stdout) additionally writes
// the structured counters as JSON. -cpuprofile/-memprofile bracket
// whatever the command runs — so profiling the hot path of any registered
// experiment is one command.
//
// -benchjson FILE runs the internal/sim kernel benchmark suite instead of
// any experiments and upserts the results into FILE under -benchlabel;
// -macrojson FILE times every registered experiment end-to-end. -benchgate
// LABEL enforces the perf contract against that baseline entry: with
// -benchjson it fails the run if any kernel benchmark allocates and warns
// when ns/op regresses >20%; with -macrojson it fails the run when the
// geometric mean of per-experiment ns/op ratios exceeds 1.30× (see
// EXPERIMENTS.md, "Kernel benchmarks").
//
// -autotune FILE searches the sim.Tuning space for every selected tunable
// experiment — seeded grid plus hill-climb, each point timed best of
// -autotune-rounds, at most -autotune-budget points — and upserts the full
// search trace into FILE (the macro trajectory file) under
// "autotune-<benchlabel>"; -autotune-pin additionally writes the winners
// as the generated pin table internal/exp applies at init. Every measured
// point's output is byte-compared against the default tuning's, so a pin
// can never change an experiment's results. -tuning KEY (e.g.
// ts8-wb10-cd64-wmp0, or "default") forces one tuning onto every tunable
// experiment of a normal run — order-invisible, wall clock only. -trend
// prints the per-suite and cross-suite perf trajectories from the
// committed bench JSON files (override paths with -benchjson/-macrojson/
// -fabricjson). See EXPERIMENTS.md, "Autotuning".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	_ "repro/internal/exp" // register the experiment catalogue
	"repro/internal/scenario"
)

type options struct {
	rf             cli.RunFlags
	pattern        string
	tags           string
	jsonOut        bool
	list           bool
	benchJSON      string
	macroJSON      string
	fabricJSON     string
	benchLabel     string
	benchGate      string
	trend          bool
	autotune       string
	autotunePin    string
	autotuneRounds int
	autotuneBudget int
	names          []string
}

func main() {
	var o options
	o.rf.Register(flag.CommandLine)
	flag.StringVar(&o.pattern, "run", "", "run only experiments whose name matches this anchored regexp")
	flag.StringVar(&o.tags, "tags", "", "run only experiments carrying one of these comma-separated tags")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON instead of tables")
	flag.BoolVar(&o.list, "list", false, "list experiments and exit")
	flag.StringVar(&o.benchJSON, "benchjson", "", "run the sim kernel benchmarks and upsert results into this JSON file")
	flag.StringVar(&o.macroJSON, "macrojson", "", "time every registered experiment end-to-end and upsert results into this JSON file")
	flag.StringVar(&o.fabricJSON, "fabricjson", "", "run the sweep-fabric throughput + codec benchmarks and upsert results into this JSON file")
	flag.StringVar(&o.benchLabel, "benchlabel", "dev", "label for the -benchjson/-macrojson trajectory entry")
	flag.StringVar(&o.benchGate, "benchgate", "", "with -benchjson/-macrojson: enforce the bench gates against this baseline label")
	flag.BoolVar(&o.trend, "trend", false, "print the per-suite and cross-suite perf trajectories from the committed bench JSON files and exit")
	flag.StringVar(&o.autotune, "autotune", "", "search sim.Tuning per selected tunable experiment and record the trace into this macro bench JSON file")
	flag.StringVar(&o.autotunePin, "autotune-pin", "", "with -autotune: write the measured-best winners as a generated Go pin table to this file")
	flag.IntVar(&o.autotuneRounds, "autotune-rounds", 3, "with -autotune: timing rounds per tuning (the fastest round counts)")
	flag.IntVar(&o.autotuneBudget, "autotune-budget", 48, "with -autotune: max tunings measured per experiment (grid + hill-climb)")
	flag.Parse()
	o.names = flag.Args()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "figgen: %v\n", err)
		os.Exit(2)
	}
}

// run executes figgen against the global registry, writing all output to w.
func run(w io.Writer, o options) error {
	if served, err := o.rf.ServeMode(fabricSpec()); served {
		// Server modes — shard worker over stdin/stdout (-worker), TCP shard
		// worker (-serve), shared result store (-serve-store) — do nothing
		// else. Checked before any other mode so a re-exec'd command line can
		// carry whatever flags the parent had. The fabric benchmark's echo
		// spec rides along as an extra, so -fabricjson's re-exec'd workers
		// resolve it by name.
		return err
	}
	if o.list {
		list(w)
		return nil
	}
	if o.trend {
		// Trend mode reads the committed trajectory files only; mixing it
		// with a run or a suite would blur what the numbers are.
		if o.autotune != "" || o.pattern != "" || o.tags != "" || len(o.names) > 0 {
			return fmt.Errorf("-trend only reads the committed bench files; drop the other selections")
		}
		return runTrend(w, o)
	}
	if o.autotunePin != "" && o.autotune == "" {
		return fmt.Errorf("-autotune-pin requires -autotune")
	}
	if o.autotune != "" {
		// Autotune uses the normal experiment selection (-run/-tags/names;
		// everything tunable when unselected) but runs its own measurement
		// loop, so it excludes the benchmark-suite modes.
		if o.benchJSON != "" || o.macroJSON != "" || o.fabricJSON != "" {
			return fmt.Errorf("-autotune and the bench suites are separate modes; run them separately")
		}
		specs, err := selectSpecs(o)
		if err != nil {
			return err
		}
		if len(specs) == 0 {
			return fmt.Errorf("no experiments match (use -list)")
		}
		stop, err := o.rf.StartProfiles()
		if err != nil {
			return err
		}
		if err := runAutotune(w, specs, autotuneOptions{
			out:    o.autotune,
			pin:    o.autotunePin,
			rounds: o.autotuneRounds,
			budget: o.autotuneBudget,
			label:  o.benchLabel,
			seed:   o.rf.Seed,
		}); err != nil {
			stop()
			return err
		}
		return stop()
	}
	if o.benchJSON != "" || o.macroJSON != "" || o.fabricJSON != "" {
		// Benchmark mode runs no experiment selection; a selection alongside
		// it is a confused command line, not something to silently ignore.
		if o.pattern != "" || o.tags != "" || len(o.names) > 0 {
			return fmt.Errorf("-benchjson/-macrojson/-fabricjson run benchmark suites only; drop the experiment selection (-run/-tags/names)")
		}
		stop, err := o.rf.StartProfiles()
		if err != nil {
			return err
		}
		if o.benchJSON != "" {
			if err := runBenchJSON(w, o.benchJSON, "sim-kernel", o.benchLabel, o.benchGate, o.rf.Seed); err != nil {
				stop()
				return err
			}
		}
		if o.macroJSON != "" {
			if err := runBenchJSON(w, o.macroJSON, "macro", o.benchLabel, o.benchGate, o.rf.Seed); err != nil {
				stop()
				return err
			}
		}
		if o.fabricJSON != "" {
			if err := runBenchJSON(w, o.fabricJSON, "fabric", o.benchLabel, o.benchGate, o.rf.Seed); err != nil {
				stop()
				return err
			}
		}
		return stop()
	}
	if o.benchGate != "" {
		return fmt.Errorf("-benchgate requires -benchjson, -macrojson or -fabricjson")
	}
	specs, err := selectSpecs(o)
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("no experiments match (use -list)")
	}
	// Every run goes through the shared Runner setup so -parallel fans
	// (experiment × seed) jobs even at -seeds 1; single-seed output renders
	// the classic per-experiment tables from the lone per-seed result, so
	// only that case asks the (otherwise streaming) Runner to retain raw
	// Results.
	seeds := o.rf.Seeds()
	aggs, err := o.rf.Run(specs, len(seeds) == 1)
	if err != nil {
		return err
	}
	if o.jsonOut {
		docs := make([]jsonExperiment, 0, len(aggs))
		for _, agg := range aggs {
			if len(seeds) == 1 {
				docs = append(docs, jsonSingle(agg.Spec, seeds[0], agg.PerSeed[0]))
			} else {
				docs = append(docs, jsonAgg(agg))
			}
		}
		return writeJSON(w, docs)
	}
	for _, agg := range aggs {
		fmt.Fprintf(w, "=== %s — %s\n", agg.Spec.Name, agg.Spec.Desc)
		if len(seeds) == 1 {
			fmt.Fprintln(w, agg.PerSeed[0].Table)
		} else {
			fmt.Fprintln(w, agg.Table())
		}
	}
	printRunSummary(w, o.rf.LastRun)
	return nil
}

// printRunSummary appends the backend counters the run left behind —
// shard worker health, cache hit/miss/write-error totals — after the
// tables. The local backend keeps no counters, so single-process output
// is byte-identical to previous releases.
func printRunSummary(w io.Writer, s cli.RunSummary) {
	if s.Shard != nil {
		fmt.Fprintf(w, "--- run summary\n%s\n", s.Shard.Summary())
	}
	if s.Cache != nil {
		fmt.Fprintf(w, "--- run summary\n%s\n", s.Cache)
	}
}

// selectSpecs resolves the -run / -tags / positional-name selection.
func selectSpecs(o options) ([]scenario.Spec, error) {
	var tags []string
	for _, t := range strings.Split(o.tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	return scenario.Match(o.pattern, tags, o.names)
}

// list prints the registry-generated catalogue: names, descriptions, tags.
func list(w io.Writer) {
	for _, s := range scenario.All() {
		fmt.Fprintf(w, "%-16s %-55s [%s]\n", s.Name, s.Desc, strings.Join(s.Tags, ","))
	}
}

// jsonExperiment is figgen's -json document, one object per experiment.
type jsonExperiment struct {
	Experiment string             `json:"experiment"`
	Desc       string             `json:"desc"`
	Tags       []string           `json:"tags"`
	Seeds      []int64            `json:"seeds"`
	Values     map[string]float64 `json:"values,omitempty"`  // single seed
	Metrics    []jsonMetric       `json:"metrics,omitempty"` // multi seed
}

type jsonMetric struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

func jsonSingle(s scenario.Spec, seed int64, r scenario.Result) jsonExperiment {
	return jsonExperiment{
		Experiment: s.Name, Desc: s.Desc, Tags: s.Tags,
		Seeds: []int64{seed}, Values: r.Values,
	}
}

func jsonAgg(a scenario.AggResult) jsonExperiment {
	doc := jsonExperiment{
		Experiment: a.Spec.Name, Desc: a.Spec.Desc, Tags: a.Spec.Tags,
		Seeds: a.Seeds,
	}
	for _, m := range a.Metrics {
		doc.Metrics = append(doc.Metrics, jsonMetric{
			Name: m.Name, Mean: m.Mean, CI95: m.CI95, Min: m.Min, Max: m.Max, N: m.N,
		})
	}
	return doc
}

// writeJSON emits all selected experiments as one JSON array, so -json
// output is always a single valid document however many experiments ran.
func writeJSON(w io.Writer, docs []jsonExperiment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}
