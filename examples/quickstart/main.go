// Quickstart: build a Hotspot with three MP3-streaming clients, run two
// simulated minutes, and print the power/QoS report — the minimal use of
// the library's core API.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// A Hotspot scenario bundles the simulator, the per-interface channel
	// models, the server-side resource manager and the admitted clients.
	h := core.NewHotspot(42, core.DefaultConfig(), 3)

	// Run the scenario: the resource manager schedules one burst per
	// client per 10-second epoch; clients sleep their radios in between.
	report := h.Run(2 * sim.Minute)

	fmt.Println(report)

	// Compare with the unscheduled WLAN baseline.
	baseline := core.RunUnscheduled(42, core.WLAN, 3, 2*sim.Minute)
	fmt.Printf("unscheduled WLAN baseline: %.3f W per client\n", baseline.MeanPowerW)
	fmt.Printf("scheduled power:           %.3f W per client\n", report.MeanPowerW)
	fmt.Printf("WNIC power saving:         %.1f%%\n", report.SavingVs(baseline)*100)
	fmt.Printf("QoS maintained:            %v\n", report.QoSMaintained())
}
