// Ad-hoc routing: the energy-efficient routing protocols from the paper's
// survey, raced on the same grid topology. Watch min-energy routing drain
// its favourite relays while battery-aware routing spreads the load and
// keeps the network alive longer.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/route"
)

func main() {
	fmt.Println("5x5 grid, 10 m spacing, 15 m radio range, 0.03 J batteries")
	fmt.Println("cross traffic: 1 KB packets from the left edge to the right edge")
	fmt.Println()
	fmt.Printf("%-18s %18s %16s %10s %12s\n",
		"policy", "first death (pkt)", "delivered @40k", "mJ/pkt", "alive @40k")

	for _, policy := range []route.Policy{route.MinHop, route.MinEnergy,
		route.MaxMinBattery, route.Conditional} {
		rng := rand.New(rand.NewSource(3))
		n := route.NewGrid(5, 5, 10, 15, 0.03, route.DefaultRadioCost())
		firstDeath := math.MaxInt
		for i := 0; i < 40000; i++ {
			src := rng.Intn(5)
			dst := 20 + rng.Intn(5)
			n.Send(policy, src, dst, 8000)
			if _, _, _, death := n.Stats(); death != -1 && firstDeath == math.MaxInt {
				firstDeath = death
			}
		}
		delivered, _, energy, _ := n.Stats()
		perPkt := 0.0
		if delivered > 0 {
			perPkt = energy / float64(delivered) * 1e3
		}
		deathStr := "never"
		if firstDeath != math.MaxInt {
			deathStr = fmt.Sprintf("%d", firstDeath)
		}
		fmt.Printf("%-18s %18s %16d %10.3f %12d\n",
			policy, deathStr, delivered, perPkt, n.NumAlive())
	}

	fmt.Println()
	fmt.Println("min-energy is cheapest per packet but kills bottleneck relays first;")
	fmt.Println("battery-aware (max-min / conditional) routing trades joules for lifetime.")
}
