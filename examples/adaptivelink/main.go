// Adaptive link: the logical-link-layer trade-offs of the paper's Section 1
// made executable. Part 1 sweeps channel BER to find the ARQ-vs-FEC energy
// crossover; part 2 runs predictor-driven adaptive ARQ on a bursty channel
// and compares predictors against the oracle bound.
package main

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/link"
	"repro/internal/sim"
)

func main() {
	fmt.Println("Part 1 — energy per delivered bit vs channel BER")
	fmt.Printf("%-10s %12s %12s %12s\n", "BER", "ARQ (uJ)", "FEC (uJ)", "hybrid (uJ)")
	for _, ber := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		arq := transfer(ber, link.SelectiveRepeat, link.NoCode(1400))
		fec := transfer(ber, link.NoARQ, link.NewBCHLike(1400, 24))
		hyb := transfer(ber, link.SelectiveRepeat, link.NewBCHLike(1400, 12))
		fmt.Printf("%-10.0e %12.3f %12.3f %12.3f\n", ber, arq*1e6, fec*1e6, hyb*1e6)
	}
	fmt.Println("low BER: plain ARQ wins (no parity overhead); high BER: FEC wins (no retransmission storms)")
	fmt.Println()

	fmt.Println("Part 2 — adaptive ARQ with channel prediction (bursty channel)")
	fmt.Printf("%-22s %9s %14s %14s\n", "predictor", "accuracy", "energy/bit uJ", "goodput kb/s")
	preds := []channel.Predictor{
		channel.NewLastState(),
		channel.NewMarkov(),
		channel.NewWindow(5),
		channel.NewOracle(),
	}
	for _, p := range preds {
		s := sim.New(3)
		ch := channel.NewGilbertElliott(s, channel.GEParams{
			MeanGood: 1 * sim.Second, MeanBad: 500 * sim.Millisecond,
			BERGood: 1e-6, BERBad: 2e-4,
		})
		r := link.RunAdaptive(s, ch, p, link.DefaultAdaptiveConfig(3000))
		fmt.Printf("%-22s %9.2f %14.3f %14.0f\n",
			r.PredictorName, r.Accuracy, r.EnergyPerBitJ*1e6, r.GoodputBps/1e3)
	}
}

func transfer(ber float64, arq link.ARQKind, code link.Code) float64 {
	s := sim.New(1)
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: ber, BERBad: 0.5})
	ch.Freeze()
	p := link.DefaultParams()
	p.ARQ = arq
	p.PacketBytes = code.K
	p.Code = code
	return link.Transfer(s, ch, p, 400).EnergyPerBitJ
}
