// PSM survey: drive the MAC-level substrates directly — plain DCF (CAM),
// 802.11 power-save mode and EC-MAC — under an identical downlink load and
// print where each one's energy goes (state residency breakdown). This is
// the Section 1 MAC survey of the paper made executable.
package main

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/mac/ecmac"
	"repro/internal/mac/psm"
	"repro/internal/radio"
	"repro/internal/sim"
)

const (
	load     = 2000                  // bytes per delivery
	interval = 125 * sim.Millisecond // 16 KB/s
	duration = 30 * sim.Second
)

func main() {
	fmt.Println("Downlink 16 KB/s to one client for 30 s; where does the energy go?")
	fmt.Println()

	camDev := runCAM()
	report("CAM (plain DCF, always listening)", camDev)

	psmDev := runPSM()
	report("802.11 PSM (TIM-triggered doze)", psmDev)

	ecDev := runECMAC()
	report("EC-MAC (broadcast schedule, exact doze windows)", ecDev)
}

func report(name string, dev *radio.Device) {
	m := dev.Meter()
	fmt.Printf("%s\n", name)
	fmt.Printf("  average power: %.3f W (total %.1f J)\n", m.AveragePower(), m.TotalEnergy())
	for _, st := range radio.States() {
		frac := m.StateFraction(st)
		if frac < 0.0005 {
			continue
		}
		fmt.Printf("  %-6s %5.1f%% of time, %6.2f J\n", st, frac*100, m.StateEnergy(st))
	}
	fmt.Println()
}

func runCAM() *radio.Device {
	s := sim.New(1)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	ap := psm.NewAP(s, m, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle), psm.DefaultConfig())
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	st := dcf.NewStation(0, m, dev)
	_ = st
	sim.NewTicker(s, interval, func() { ap.Deliver(0, load) })
	s.RunUntil(duration)
	return dev
}

func runPSM() *radio.Device {
	s := sim.New(1)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	ap := psm.NewAP(s, m, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle), psm.DefaultConfig())
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	cl := psm.NewClient(s, m, dev, ap, 0, psm.DefaultConfig())
	recv := 0
	cl.OnData = func(*frame.Frame) { recv++ }
	sim.NewTicker(s, interval, func() { ap.Deliver(0, load) })
	s.RunUntil(duration)
	return dev
}

func runECMAC() *radio.Device {
	s := sim.New(1)
	bs := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	net := ecmac.NewNetwork(s, ecmac.DefaultConfig(), bs)
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	net.Register(0, dev)
	net.Start()
	sim.NewTicker(s, interval, func() { net.Deliver(0, load) })
	s.RunUntil(duration)
	return dev
}
