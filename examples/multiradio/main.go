// Multiradio: the paper's seamless interface-switching episode. Clients
// stream MP3 while the WLAN link suffers a scripted outage; the resource
// manager moves the fleet to Bluetooth and back, and the playout buffers
// never stall. The example prints a timeline of assignments and buffer
// levels around the handoffs.
package main

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	h := core.NewHotspot(11, cfg, 3)

	const outageStart = 40 * sim.Second
	const outageEnd = 85 * sim.Second
	h.Sim().At(outageStart, func() {
		fmt.Printf("t=%-8v WLAN link degrades (forced fade)\n", h.Sim().Now())
		h.Channel(core.WLAN).ForceState(channel.Bad)
	})
	h.Sim().At(outageEnd, func() {
		fmt.Printf("t=%-8v WLAN link recovers\n", h.Sim().Now())
		h.Channel(core.WLAN).ForceState(channel.Good)
	})

	// Narrate assignments and buffer health every 10 s.
	sim.NewTicker(h.Sim(), 10*sim.Second, func() {
		fmt.Printf("t=%-8v", h.Sim().Now())
		for _, c := range h.RM().Clients() {
			fmt.Printf("  client %d: %-9v buffer %5.1fs", c.ID(), c.Assigned(),
				c.Buffer().Level()/c.Spec().Stream.BytesPerSecond())
		}
		fmt.Println()
	})

	rep := h.Run(2 * sim.Minute)

	fmt.Println()
	fmt.Println(rep)
	switches := 0
	for _, c := range h.RM().Clients() {
		switches += c.Switches()
	}
	fmt.Printf("total interface switches: %d, recoveries: %d, urgent top-ups: %d\n",
		switches, rep.Recoveries, h.RM().Urgents())
	if rep.QoSMaintained() {
		fmt.Println("handoffs were seamless: no playout underruns")
	} else {
		fmt.Printf("QoS damage: %d underruns\n", rep.TotalUnderruns)
	}
}
