// MP3 streaming: the paper's Figure 2 scenario in full — three concurrent
// iPAQ-class clients receiving high-quality MP3 audio under each of the
// three delivery strategies, with a per-client breakdown and the schedule
// trace of the Hotspot run.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	const seed = 7
	const clients = 3
	const duration = 5 * sim.Minute

	fmt.Println("=== Strategy 1: standard WLAN, no scheduling (CAM) ===")
	wlan := core.RunUnscheduled(seed, core.WLAN, clients, duration)
	fmt.Println(wlan)

	fmt.Println("=== Strategy 2: standard Bluetooth, no scheduling ===")
	bt := core.RunUnscheduled(seed, core.BT, clients, duration)
	fmt.Println(bt)

	fmt.Println("=== Strategy 3: Hotspot scheduling ===")
	h := core.NewHotspot(seed, core.DefaultConfig(), clients)
	hs := h.Run(duration)
	fmt.Println(hs)

	fmt.Println("first scheduled bursts:")
	for i, s := range hs.Slots {
		if i >= 6 {
			break
		}
		fmt.Printf("  %s\n", s)
	}

	fmt.Println()
	fmt.Printf("%-22s %10s %10s\n", "strategy", "power (W)", "underruns")
	for _, r := range []core.Report{wlan, bt, hs} {
		fmt.Printf("%-22s %10.4f %10d\n", r.Strategy, r.MeanPowerW, r.TotalUnderruns)
	}
	fmt.Printf("\nWNIC power saving vs WLAN: %.1f%% (paper: 97%%)\n", hs.SavingVs(wlan)*100)
}
