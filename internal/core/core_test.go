package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.StartOffset = bad.Epoch
	if err := bad.Validate(); err == nil {
		t.Error("offset >= epoch accepted")
	}
	bad2 := DefaultConfig()
	bad2.Scheduler = nil
	if err := bad2.Validate(); err == nil {
		t.Error("nil scheduler accepted")
	}
}

func TestIfaceAndPolicyNames(t *testing.T) {
	if WLAN.String() != "wlan" || BT.String() != "bluetooth" {
		t.Error("iface names wrong")
	}
	for _, p := range []IfacePolicy{PolicyAdaptive, PolicyWLANOnly, PolicyBTOnly} {
		if p.String() == "" {
			t.Error("policy name missing")
		}
	}
}

func TestClientSpecValidate(t *testing.T) {
	ok := DefaultClientSpec(0)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultClientSpec(1)
	bad.HasWLAN, bad.HasBT = false, false
	if err := bad.Validate(); err == nil {
		t.Error("interface-less client accepted")
	}
}

func TestHotspotMaintainsQoS(t *testing.T) {
	h := NewHotspot(1, DefaultConfig(), 3)
	rep := h.Run(2 * sim.Minute)
	if !rep.QoSMaintained() {
		t.Errorf("underruns = %d; scheduled delivery must not stall playback", rep.TotalUnderruns)
	}
	for _, c := range rep.Clients {
		// 2 minutes at 16 KB/s ≈ 1.9 MB per client, ± one burst.
		if c.BytesReceived < 1_600_000 {
			t.Errorf("client %d received only %d bytes", c.ID, c.BytesReceived)
		}
	}
}

func TestHotspotPowerIsDeepSleepDominated(t *testing.T) {
	h := NewHotspot(2, DefaultConfig(), 3)
	rep := h.Run(2 * sim.Minute)
	// Expected floor: BT park 12 mW + WLAN off 0 mW + burst contributions.
	if rep.MeanPowerW > 0.08 {
		t.Errorf("hotspot mean power = %.4f W, want < 0.08 W", rep.MeanPowerW)
	}
	if rep.MeanPowerW < 0.012 {
		t.Errorf("hotspot mean power = %.4f W below the BT park floor — accounting broken", rep.MeanPowerW)
	}
}

func TestUnscheduledBaselines(t *testing.T) {
	wlan := RunUnscheduled(3, WLAN, 3, sim.Minute)
	bt := RunUnscheduled(3, BT, 3, sim.Minute)
	// Calibration: WLAN ≈ 1.36 W (idle-dominated), BT ≈ 0.40 W.
	if wlan.MeanPowerW < 1.30 || wlan.MeanPowerW > 1.45 {
		t.Errorf("WLAN baseline = %.3f W, want ≈ 1.36", wlan.MeanPowerW)
	}
	if bt.MeanPowerW < 0.38 || bt.MeanPowerW > 0.50 {
		t.Errorf("BT baseline = %.3f W, want ≈ 0.40", bt.MeanPowerW)
	}
	if wlan.TotalUnderruns != 0 || bt.TotalUnderruns != 0 {
		t.Error("baselines should not stall")
	}
}

func TestFigure2ShapeAndSaving(t *testing.T) {
	rows, saving := Figure2(4, 3, 5*sim.Minute)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	wlan, bt, hs := rows[0], rows[1], rows[2]
	// The paper's ordering: WLAN ≫ Bluetooth ≫ Hotspot scheduling.
	if !(wlan.MeanW > bt.MeanW && bt.MeanW > hs.MeanW) {
		t.Errorf("bar ordering broken: %.3f / %.3f / %.3f", wlan.MeanW, bt.MeanW, hs.MeanW)
	}
	// Headline claim: ≈ 97% WNIC power saving. Our calibration lands a
	// couple of points shy (the paper's exact radios are unavailable); the
	// reproduction band accepts ≥ 92%.
	if saving < 0.92 || saving > 0.995 {
		t.Errorf("saving = %.3f, want ≈ 0.97 (accept ≥ 0.92)", saving)
	}
	if hs.Underruns != 0 {
		t.Error("QoS not maintained in scheduled run")
	}
}

func TestSlotsDoNotOverlapPerIface(t *testing.T) {
	h := NewHotspot(5, DefaultConfig(), 3)
	rep := h.Run(sim.Minute)
	byIface := map[Iface][]Slot{}
	for _, s := range rep.Slots {
		byIface[s.Iface] = append(byIface[s.Iface], s)
	}
	for iface, slots := range byIface {
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].End {
				t.Errorf("%v slots overlap: %v then %v", iface, slots[i-1], slots[i])
			}
		}
	}
	if len(rep.Slots) == 0 {
		t.Fatal("no slots scheduled")
	}
}

func TestBurstSizesAreTensOfKBytes(t *testing.T) {
	// The paper: "larger bursts of data (10s of Kbytes at a time)". Our
	// initial bursts also prefill the switch-transient margin, so they run
	// from ~160 KB (steady refill) up to ~430 KB (admission prefill).
	h := NewHotspot(6, DefaultConfig(), 3)
	rep := h.Run(sim.Minute)
	for _, s := range rep.Slots[:3] {
		if s.Bytes < 100_000 || s.Bytes > 450_000 {
			t.Errorf("burst = %d bytes, want 100-450 KB (epoch of media + margin)", s.Bytes)
		}
	}
	// Steady-state bursts settle near one epoch of media (~160-230 KB).
	last := rep.Slots[len(rep.Slots)-1]
	if last.Bytes < 120_000 || last.Bytes > 260_000 {
		t.Errorf("steady burst = %d bytes, want ≈160-230 KB", last.Bytes)
	}
}

func TestAdaptiveStartsOnBluetooth(t *testing.T) {
	h := NewHotspot(7, DefaultConfig(), 3)
	h.RM().Start()
	h.Sim().RunUntil(5 * sim.Second)
	for _, c := range h.RM().Clients() {
		if c.Assigned() != BT {
			t.Errorf("client %d on %v, want bluetooth initially", c.ID(), c.Assigned())
		}
	}
}

func TestSeamlessSwitchToWLANOnBTDegradation(t *testing.T) {
	// The paper's scenario: conditions on the BT link change; the server
	// seamlessly moves clients to WLAN; QoS is maintained throughout.
	h := NewHotspot(8, DefaultConfig(), 3)
	h.Sim().Schedule(35*sim.Second, func() {
		h.Channel(BT).ForceState(channel.Bad)
	})
	rep := h.Run(2 * sim.Minute)
	switched := 0
	for _, c := range h.RM().Clients() {
		if c.Assigned() == WLAN {
			switched++
		}
	}
	if switched != 3 {
		t.Errorf("%d of 3 clients on WLAN after BT fade", switched)
	}
	if !rep.QoSMaintained() {
		t.Errorf("underruns = %d during handoff; switch was not seamless", rep.TotalUnderruns)
	}
}

func TestFallbackToBTWhenWLANDies(t *testing.T) {
	// Steady state serves bursts over WLAN (energy-optimal). If the WLAN
	// link goes bad, clients must fall back to Bluetooth, and return once
	// WLAN recovers.
	h := NewHotspot(9, DefaultConfig(), 2)
	h.Sim().Schedule(25*sim.Second, func() { h.Channel(WLAN).ForceState(channel.Bad) })
	h.Sim().Schedule(32*sim.Second, func() {
		for _, c := range h.RM().Clients() {
			if c.Assigned() != BT {
				t.Errorf("client %d on %v at 32s, want bluetooth fallback", c.ID(), c.Assigned())
			}
		}
	})
	h.Sim().Schedule(65*sim.Second, func() { h.Channel(WLAN).ForceState(channel.Good) })
	rep := h.Run(3 * sim.Minute)
	for _, c := range h.RM().Clients() {
		if c.Assigned() != WLAN {
			t.Errorf("client %d on %v at end, want WLAN after recovery", c.ID(), c.Assigned())
		}
		if c.Switches() < 3 {
			t.Errorf("client %d switched %d times, want ≥ 3 (to WLAN, to BT, back)", c.ID(), c.Switches())
		}
	}
	if !rep.QoSMaintained() {
		t.Errorf("underruns = %d across WLAN outage", rep.TotalUnderruns)
	}
}

func TestWLANOnlyPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyWLANOnly
	h := NewHotspot(10, cfg, 2)
	rep := h.Run(sim.Minute)
	for _, s := range rep.Slots {
		if s.Iface != WLAN {
			t.Errorf("slot on %v under wlan-only policy", s.Iface)
		}
	}
	// WLAN-off between bursts still beats CAM by orders of magnitude.
	if rep.MeanPowerW > 0.1 {
		t.Errorf("scheduled WLAN-only power %.4f W too high", rep.MeanPowerW)
	}
}

func TestBTOverloadSpillsToWLAN(t *testing.T) {
	// Enough clients to exceed the BT budget (560 kb/s × 0.85 ≈ 59 KB/s;
	// each MP3 client needs 16 KB/s, so at most 3 fit).
	h := NewHotspot(11, DefaultConfig(), 6)
	h.RM().Start()
	h.Sim().RunUntil(5 * sim.Second)
	bt, wlan := 0, 0
	for _, c := range h.RM().Clients() {
		switch c.Assigned() {
		case BT:
			bt++
		case WLAN:
			wlan++
		}
	}
	if bt == 0 || wlan == 0 {
		t.Errorf("bt=%d wlan=%d, want load split across interfaces", bt, wlan)
	}
	if bt > 3 {
		t.Errorf("bt=%d clients exceed the Bluetooth capacity budget", bt)
	}
}

func TestSchedulersProduceEquivalentQoSUnderLightLoad(t *testing.T) {
	for _, sched := range []Scheduler{EDF{}, NewWFQ(), RoundRobin{}} {
		cfg := DefaultConfig()
		cfg.Scheduler = sched
		h := NewHotspot(12, cfg, 3)
		rep := h.Run(sim.Minute)
		if !rep.QoSMaintained() {
			t.Errorf("%s: underruns under light load", sched.Name())
		}
	}
}

func TestReportString(t *testing.T) {
	h := NewHotspot(13, DefaultConfig(), 2)
	rep := h.Run(30 * sim.Second)
	out := rep.String()
	if out == "" {
		t.Error("empty report rendering")
	}
}

func TestRecoveryCountsOnMidEpochFade(t *testing.T) {
	h := NewHotspot(14, DefaultConfig(), 3)
	// Steady-state bursts ride WLAN (energy-optimal). Kill WLAN after the
	// epoch-1 schedule is built but before its slots execute: the scheduled
	// WLAN bursts fail and recovery bursts must fire on Bluetooth.
	h.Sim().Schedule(10*sim.Second+100*sim.Millisecond, func() {
		h.Channel(WLAN).ForceState(channel.Bad)
	})
	h.Sim().Schedule(25*sim.Second, func() {
		h.Channel(WLAN).ForceState(channel.Good)
	})
	rep := h.Run(40 * sim.Second)
	if rep.Recoveries == 0 {
		t.Error("no recovery bursts despite mid-epoch WLAN failure")
	}
	if !rep.QoSMaintained() {
		t.Errorf("underruns = %d; recovery should preserve QoS", rep.TotalUnderruns)
	}
}
