package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/sim"
)

// ClientSpec describes one mobile entering the Hotspot environment.
type ClientSpec struct {
	ID     int
	Stream qos.StreamSpec
	// HasWLAN/HasBT list the WNICs the mobile carries (the iPAQ 3970 of
	// the paper has both).
	HasWLAN, HasBT bool
	// BatteryJ, when positive, gives the client a finite battery that the
	// WNICs drain; the resource manager reports its level to the proxy
	// each epoch (the paper: the server "knows more about the clients …
	// such as their QoS needs, battery levels").
	BatteryJ float64
}

// DefaultClientSpec returns the paper's client: an iPAQ with both
// interfaces streaming high-quality MP3.
func DefaultClientSpec(id int) ClientSpec {
	return ClientSpec{ID: id, Stream: qos.MP3Stream(), HasWLAN: true, HasBT: true}
}

// Validate checks the spec.
func (c ClientSpec) Validate() error {
	if err := c.Stream.Validate(); err != nil {
		return err
	}
	if !c.HasWLAN && !c.HasBT {
		return fmt.Errorf("core: client %d has no interfaces", c.ID)
	}
	return nil
}

// Client is the client-side resource manager: it owns the WNIC devices and
// the playout buffer, and executes the schedule the server hands it by
// transitioning devices between deep-sleep and active states.
type Client struct {
	spec ClientSpec
	sim  *sim.Simulator

	devices [numIfaces]*radio.Device
	buffer  *qos.PlayoutBuffer
	battery *energy.Battery // nil when unmetered

	assigned Iface
	switches int
	received int
	slots    int
	partial  int  // slots that delivered less than demanded
	slotBusy bool // a burst is executing; overlapping slots are skipped

	// OnPower, if set, is invoked with the client's combined radio power
	// whenever any device changes state (used by the Figure 1 trace).
	OnPower func(t sim.Time, watts float64)
}

// newClient builds a client with its radios parked in deep states.
func newClient(s *sim.Simulator, spec ClientSpec, initial Iface) *Client {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	c := &Client{spec: spec, sim: s, assigned: initial}
	c.buffer = qos.NewPlayoutBuffer(s, spec.Stream)
	mk := func(i Iface) {
		p := profileFor(i)
		// Devices begin in their deep state: the client registered moments
		// ago and is waiting for its first scheduled burst.
		c.devices[i] = radio.NewDeviceInState(s, p, p.DeepState)
		c.devices[i].OnStateChange(func(t sim.Time, _ radio.State) {
			if c.OnPower != nil {
				c.OnPower(t, c.CurrentPower())
			}
		})
	}
	if spec.HasWLAN {
		mk(WLAN)
	}
	if spec.HasBT {
		mk(BT)
	}
	if c.devices[initial] == nil {
		panic(fmt.Sprintf("core: client %d assigned missing iface %v", spec.ID, initial))
	}
	if spec.BatteryJ > 0 {
		c.battery = energy.NewBattery(spec.BatteryJ)
		energy.NewTracker(s, clientEnergy{c}, c.battery, sim.Second)
	}
	return c
}

// clientEnergy adapts the client's combined radio meters to the battery
// tracker.
type clientEnergy struct{ c *Client }

// TotalEnergy implements energy.EnergySource.
func (ce clientEnergy) TotalEnergy() float64 { return ce.c.TotalEnergy() }

// Battery returns the client's battery, or nil when unmetered.
func (c *Client) Battery() *energy.Battery { return c.battery }

// BatteryLevel returns the remaining fraction (1.0 when unmetered).
func (c *Client) BatteryLevel() float64 {
	if c.battery == nil {
		return 1.0
	}
	return c.battery.Level()
}

// ID returns the client identifier.
func (c *Client) ID() int { return c.spec.ID }

// Spec returns the client's specification.
func (c *Client) Spec() ClientSpec { return c.spec }

// Buffer returns the playout buffer.
func (c *Client) Buffer() *qos.PlayoutBuffer { return c.buffer }

// Assigned returns the current serving interface.
func (c *Client) Assigned() Iface { return c.assigned }

// Switches counts interface reassignments.
func (c *Client) Switches() int { return c.switches }

// Device returns the WNIC for an interface (nil if absent).
func (c *Client) Device(i Iface) *radio.Device { return c.devices[i] }

// Has reports whether the client carries the interface.
func (c *Client) Has(i Iface) bool { return c.devices[i] != nil }

// CurrentPower returns the instantaneous combined radio draw in watts.
func (c *Client) CurrentPower() float64 {
	var w float64
	for _, d := range c.devices {
		if d != nil {
			w += d.Profile().Power[d.State()]
		}
	}
	return w
}

// TotalEnergy returns the combined radio energy in joules.
func (c *Client) TotalEnergy() float64 {
	var j float64
	for _, d := range c.devices {
		if d != nil {
			j += d.Meter().TotalEnergy()
		}
	}
	return j
}

// AveragePower returns combined energy over elapsed time.
func (c *Client) AveragePower() float64 {
	var j, el float64
	for _, d := range c.devices {
		if d != nil {
			j += d.Meter().TotalEnergy()
			if e := d.Meter().Elapsed().Seconds(); e > el {
				el = e
			}
		}
	}
	if el <= 0 {
		return 0
	}
	return j / el
}

// assign moves the client to a new serving interface (takes effect for
// subsequently scheduled slots).
func (c *Client) assign(i Iface) {
	if i == c.assigned {
		return
	}
	if !c.Has(i) {
		panic(fmt.Sprintf("core: client %d lacks %v", c.spec.ID, i))
	}
	c.assigned = i
	c.switches++
}

// wakeLatency returns how long before a slot the client must start waking
// the given interface.
func (c *Client) wakeLatency(i Iface) sim.Time {
	d := c.devices[i]
	return d.Profile().TransitionCost(d.Profile().DeepState, radio.Idle).Latency
}

// executeSlot runs one scheduled burst on the client: wake ahead of the
// slot, receive for the assessed duration, fill the playout buffer, then
// drop back into the deep state. assess runs at the slot start and returns
// the actual transfer duration and delivered bytes given the channel
// conditions at that instant; done is invoked with the delivered bytes.
// A client's radio can serve only one burst at a time: under overload or
// emergency preemption the schedule may hand it overlapping slots, and the
// later one is skipped (delivering nothing) rather than corrupting the
// radio state machine.
func (c *Client) executeSlot(slot Slot, assess func() (sim.Time, int), done func(got int)) {
	dev := c.devices[slot.Iface]
	lead := c.wakeLatency(slot.Iface)
	wakeAt := slot.Start - lead
	if wakeAt < c.sim.Now() {
		wakeAt = c.sim.Now()
	}
	c.sim.At(wakeAt, func() {
		// Wake only from a deep state; anything else means another slot is
		// mid-flight and this one will be skipped at its start.
		if c.slotBusy || dev.Transitioning() {
			return
		}
		if st := dev.State(); st == radio.Sleep || st == radio.Off {
			dev.SetState(radio.Idle, nil)
		}
	})
	c.sim.At(slot.Start, func() {
		if c.slotBusy || dev.State() != radio.Idle || dev.Transitioning() {
			// Radio missed its wake window (overlap or late reassignment):
			// nothing is received this slot.
			c.slots++
			c.partial++
			if done != nil {
				done(0)
			}
			return
		}
		actualDur, delivered := assess()
		c.slotBusy = true
		dev.OccupyFor(radio.RX, actualDur, radio.Idle, func() {
			c.buffer.Fill(delivered)
			c.received += delivered
			c.slots++
			if delivered < slot.Bytes {
				c.partial++
			}
			c.slotBusy = false
			if dev.State() == radio.Idle && !dev.Transitioning() {
				dev.SetState(dev.Profile().DeepState, nil)
			}
			if done != nil {
				done(delivered)
			}
		})
	})
}
