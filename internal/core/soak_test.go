package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// TestRandomOutageSoak throws randomized link outages at the scheduler for
// half an hour of simulated time and checks system-level invariants: the
// run completes (no state-machine panics), stalls stay bounded, buffers
// conserve bytes and the schedule remains well-formed.
func TestRandomOutageSoak(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		h := NewHotspot(seed, DefaultConfig(), 3)
		s := h.Sim()
		rng := s.Rand()

		// Random outage process on both links: every ~20 s one link fades
		// for 2-10 s. Both can be down simultaneously — QoS damage is then
		// legitimate, so the assertion is on bounded damage, not zero.
		var scheduleOutage func()
		scheduleOutage = func() {
			delay := sim.FromSeconds(8 + rng.Float64()*25)
			s.Schedule(delay, func() {
				iface := Iface(rng.Intn(int(numIfaces)))
				dur := sim.FromSeconds(2 + rng.Float64()*8)
				h.Channel(iface).ForceState(channel.Bad)
				s.Schedule(dur, func() { h.Channel(iface).ForceState(channel.Good) })
				scheduleOutage()
			})
		}
		scheduleOutage()

		rep := h.Run(30 * sim.Minute)

		// Bounded damage: across 30 min of repeated outages, stalls must
		// stay under 2% of playback time per client on average.
		maxStall := 0.02 * rep.Duration.Seconds() * float64(len(rep.Clients))
		if rep.TotalStall.Seconds() > maxStall {
			t.Errorf("seed %d: total stall %.1fs exceeds %.1fs budget",
				seed, rep.TotalStall.Seconds(), maxStall)
		}

		for _, c := range h.RM().Clients() {
			b := c.Buffer()
			// Conservation: received = consumed + level + overflow, up to
			// float accumulation error (~1e-7 relative over ~30 MB).
			got := b.ConsumedBytes() + b.Level() + float64(b.OverflowBytes())
			tol := 1e-6 * float64(b.ReceivedBytes())
			if tol < 1 {
				tol = 1
			}
			if diff := got - float64(b.ReceivedBytes()); diff > tol || diff < -tol {
				t.Errorf("seed %d client %d: buffer conservation off by %.1f", seed, c.ID(), diff)
			}
			if c.TotalEnergy() <= 0 {
				t.Errorf("seed %d client %d: no energy metered", seed, c.ID())
			}
			// Power must stay inside physical bounds.
			if p := c.AveragePower(); p < 0 || p > 2.2 {
				t.Errorf("seed %d client %d: avg power %.3f W out of bounds", seed, c.ID(), p)
			}
		}

		// Schedule well-formedness: every slot has positive span and
		// payload; bulk/rescue slots never overlap per interface.
		lastEnd := map[Iface]sim.Time{}
		for _, sl := range rep.Slots {
			if sl.End < sl.Start || sl.Bytes < 0 {
				t.Fatalf("seed %d: malformed slot %v", seed, sl)
			}
			if sl.Kind == SlotBulk || sl.Kind == SlotRescue {
				if sl.Start < lastEnd[sl.Iface] {
					t.Errorf("seed %d: %v overlaps previous on %v", seed, sl, sl.Iface)
				}
				lastEnd[sl.Iface] = sl.End
			}
		}
		if len(rep.Slots) < 3*25 {
			t.Errorf("seed %d: only %d slots in 30 min", seed, len(rep.Slots))
		}
	}
}

// TestBatteryReportingToProxy checks the paper's "server knows battery
// levels" loop: a finite-battery client drains and the registrar sees it.
func TestBatteryReportingToProxy(t *testing.T) {
	cfg := DefaultConfig()
	s := sim.New(7)
	chans := map[Iface]*channel.GilbertElliott{}
	for _, i := range Ifaces() {
		ch := channel.NewGilbertElliott(s, GoodChannelParams())
		ch.Freeze()
		chans[i] = ch
	}
	rm := NewResourceManager(s, cfg, chans)
	spec := DefaultClientSpec(0)
	spec.BatteryJ = 100
	c := rm.Admit(spec)
	rm.Start()
	s.RunUntil(5 * sim.Minute)

	if c.Battery() == nil {
		t.Fatal("battery not created")
	}
	level := c.BatteryLevel()
	if level >= 1 || level <= 0 {
		t.Errorf("battery level = %.3f after 5 min of streaming, want in (0,1)", level)
	}
	reg := rm.Registrar().Lookup(0)
	if reg == nil {
		t.Fatal("client not registered")
	}
	// The registrar's view lags by at most one epoch.
	if reg.BatteryLevel > level+0.05 || reg.BatteryLevel < level-0.05 {
		t.Errorf("registrar battery %.3f diverged from actual %.3f", reg.BatteryLevel, level)
	}
}

// TestUnmeteredClientReportsFullBattery covers the default (no battery).
func TestUnmeteredClientReportsFullBattery(t *testing.T) {
	h := NewHotspot(8, DefaultConfig(), 1)
	h.Run(30 * sim.Second)
	c := h.RM().Clients()[0]
	if c.Battery() != nil {
		t.Error("unmetered client grew a battery")
	}
	if c.BatteryLevel() != 1 {
		t.Error("unmetered level should be 1.0")
	}
}
