package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

func newRM(seed int64, cfg Config) (*sim.Simulator, *ResourceManager, map[Iface]*channel.GilbertElliott) {
	s := sim.New(seed)
	chans := map[Iface]*channel.GilbertElliott{}
	for _, i := range Ifaces() {
		ch := channel.NewGilbertElliott(s, GoodChannelParams())
		ch.Freeze()
		chans[i] = ch
	}
	return s, NewResourceManager(s, cfg, chans), chans
}

func TestEpochCostPrefersWLANForMP3(t *testing.T) {
	// The crux of the adaptive policy: one epoch of MP3 (160 KB) costs
	// less marginal energy as a WLAN burst (2% duty at 1.4 W plus wake
	// overhead) than as a Bluetooth burst (23% duty at 0.43 W).
	_, rm, _ := newRM(1, DefaultConfig())
	bytes := 160 * 1024
	wlan := rm.epochCost(WLAN, bytes)
	bt := rm.epochCost(BT, bytes)
	if wlan >= bt {
		t.Errorf("WLAN epoch cost %.3f J should undercut BT %.3f J for MP3 demand", wlan, bt)
	}
	// For a tiny demand the WLAN wake overhead dominates and BT wins —
	// the policy is a real trade-off, not a constant answer.
	smallW := rm.epochCost(WLAN, 2*1024)
	smallB := rm.epochCost(BT, 2*1024)
	if smallB >= smallW {
		t.Errorf("BT small-demand cost %.3f J should undercut WLAN %.3f J (wake overhead)", smallB, smallW)
	}
}

func TestInflationCappedOnDeadChannel(t *testing.T) {
	_, rm, chans := newRM(2, DefaultConfig())
	if inf := rm.inflation(WLAN); inf < 1 || inf > 1.1 {
		t.Errorf("good-channel inflation = %.3f, want ≈ 1", inf)
	}
	chans[WLAN].ForceState(channel.Bad)
	if inf := rm.inflation(WLAN); inf != rm.cfg.InflationCap {
		t.Errorf("bad-channel inflation = %.3f, want cap %.1f", inf, rm.cfg.InflationCap)
	}
}

func TestDemandForToppingUp(t *testing.T) {
	s, rm, _ := newRM(3, DefaultConfig())
	c := rm.Admit(DefaultClientSpec(0))
	d := rm.demandFor(c)
	// Empty buffer: demand = full target (epoch + margin of media).
	want := int(c.Spec().Stream.BytesPerSecond() * (rm.cfg.Epoch.Seconds() + rm.cfg.MarginSeconds))
	if d.Bytes < want-1 || d.Bytes > want+1 {
		t.Errorf("initial demand = %d, want ≈ %d", d.Bytes, want)
	}
	// Not yet playing: maximally urgent (deadline = now).
	if d.Deadline != s.Now() {
		t.Errorf("pre-playback deadline = %v, want now", d.Deadline)
	}
	// After a fill, demand shrinks by the level.
	c.Buffer().Fill(100_000)
	d2 := rm.demandFor(c)
	if d2.Bytes >= d.Bytes {
		t.Error("demand did not shrink after a fill")
	}
	if !c.Buffer().Playing() {
		t.Fatal("buffer should be playing after 100KB")
	}
	if d2.Deadline <= s.Now() {
		t.Error("playing client should have a future deadline")
	}
}

func TestAdmitAfterStartPanics(t *testing.T) {
	_, rm, _ := newRM(4, DefaultConfig())
	rm.Admit(DefaultClientSpec(0))
	rm.Start()
	defer func() {
		if recover() == nil {
			t.Error("late admission accepted")
		}
	}()
	rm.Admit(DefaultClientSpec(1))
}

func TestBTOnlyPolicyRequiresBT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyBTOnly
	_, rm, _ := newRM(5, cfg)
	spec := DefaultClientSpec(0)
	spec.HasBT = false
	defer func() {
		if recover() == nil {
			t.Error("BT-only policy accepted a BT-less client")
		}
	}()
	rm.Admit(spec)
}

func TestClientCurrentPowerSumsInterfaces(t *testing.T) {
	_, rm, _ := newRM(6, DefaultConfig())
	c := rm.Admit(DefaultClientSpec(0))
	// Fresh client: WLAN off (0 W) + BT park (0.005 W).
	if p := c.CurrentPower(); p < 0.004 || p > 0.006 {
		t.Errorf("initial combined power = %.4f W, want ≈ 0.005", p)
	}
}

func TestWLANOnlySpecWithoutBT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyWLANOnly
	s, rm, _ := newRM(7, cfg)
	spec := DefaultClientSpec(0)
	spec.HasBT = false
	c := rm.Admit(spec)
	rm.Start()
	s.RunUntil(30 * sim.Second)
	if c.Assigned() != WLAN {
		t.Errorf("assigned %v, want wlan", c.Assigned())
	}
	if c.Buffer().Underruns() != 0 {
		t.Error("single-interface client stalled on a clean channel")
	}
	// No BT device: power floor is WLAN off = 0 between bursts.
	if c.Has(BT) {
		t.Error("client should not have BT")
	}
}
