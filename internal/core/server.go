package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/proxy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config parameterizes the Hotspot resource manager.
type Config struct {
	// Epoch is the scheduling period: one burst per client per epoch, so
	// this is also the inter-burst sleep horizon ("10s of Kbytes at a
	// time" every Epoch).
	Epoch sim.Time
	// StartOffset delays the first slot of each epoch so that even a
	// WLAN-off client has time to wake (Off→Idle is 100 ms).
	StartOffset sim.Time
	// Guard separates consecutive slots on the same interface.
	Guard sim.Time
	// MarginSeconds of extra media buffered beyond one epoch's worth: the
	// slack that rides out slot jitter and interface switches.
	MarginSeconds float64
	// Scheduler orders each epoch's demands (EDF, WFQ, round-robin).
	Scheduler Scheduler
	// Policy selects serving interfaces.
	Policy IfacePolicy
	// ChunkBytes is the packet size used for loss-inflation estimates.
	ChunkBytes int
	// InflationCap bounds retransmission inflation before a slot is
	// declared failed and delivers only what survived.
	InflationCap float64
	// RecoveryFraction: a slot delivering less than this fraction of its
	// demand triggers an immediate recovery burst on the fallback
	// interface (the mechanism behind the paper's seamless BT→WLAN switch).
	RecoveryFraction float64
	// BTLoadFraction caps how much of Bluetooth's goodput the manager will
	// book per epoch before spilling clients to WLAN.
	BTLoadFraction float64
}

// DefaultConfig returns the configuration of the paper's experiment:
// 10-second bursts, EDF scheduling, adaptive interface selection.
func DefaultConfig() Config {
	return Config{
		Epoch:       10 * sim.Second,
		StartOffset: 150 * sim.Millisecond,
		Guard:       50 * sim.Millisecond,
		// The margin must ride out an interface-switch transient: after a
		// fleet-wide move to Bluetooth, the last of three clients is not
		// refilled for ~7.5 s (three serialized ~2.5 s bursts), so clients
		// hold 8 s of standing media beyond the per-epoch refill.
		MarginSeconds:    8,
		Scheduler:        EDF{},
		Policy:           PolicyAdaptive,
		ChunkBytes:       1460,
		InflationCap:     3,
		RecoveryFraction: 0.9,
		BTLoadFraction:   0.85,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Epoch <= 0 || c.StartOffset <= 0 || c.Guard < 0 {
		return fmt.Errorf("core: invalid epoch timing")
	}
	if c.StartOffset >= c.Epoch {
		return fmt.Errorf("core: start offset must be below epoch")
	}
	if c.Scheduler == nil {
		return fmt.Errorf("core: scheduler required")
	}
	if c.InflationCap < 1 {
		return fmt.Errorf("core: inflation cap below 1")
	}
	if c.RecoveryFraction < 0 || c.RecoveryFraction > 1 {
		return fmt.Errorf("core: recovery fraction outside [0,1]")
	}
	if c.BTLoadFraction <= 0 || c.BTLoadFraction > 1 {
		return fmt.Errorf("core: BT load fraction outside (0,1]")
	}
	return nil
}

// ResourceManager is the server-side Hotspot scheduler. It owns the epoch
// loop: gather client state, pick interfaces, build the burst schedule,
// and drive client-side execution.
type ResourceManager struct {
	sim *sim.Simulator
	cfg Config

	clients   []*Client
	channels  [numIfaces]*channel.GilbertElliott
	monitors  [numIfaces]*channel.Monitor
	registrar *proxy.Registrar

	epoch      int
	history    []Slot
	recoveries int
	urgents    int
	nextFill   map[int]sim.Time
	lastUrgent map[int]sim.Time
	started    bool
}

// NewResourceManager creates the manager over per-interface channels.
// channels[WLAN] and channels[BT] supply the respective link conditions.
func NewResourceManager(s *sim.Simulator, cfg Config, chans map[Iface]*channel.GilbertElliott) *ResourceManager {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rm := &ResourceManager{
		sim: s, cfg: cfg, registrar: proxy.NewRegistrar(s),
		nextFill:   make(map[int]sim.Time),
		lastUrgent: make(map[int]sim.Time),
	}
	for _, i := range Ifaces() {
		ch, ok := chans[i]
		if !ok || ch == nil {
			panic(fmt.Sprintf("core: missing channel for %v", i))
		}
		rm.channels[i] = ch
		rm.monitors[i] = channel.NewMonitor(s, ch, channel.DefaultMonitorConfig())
	}
	return rm
}

// Admit registers a client with the Hotspot proxy and attaches it to the
// scheduler. Must be called before Start.
func (rm *ResourceManager) Admit(spec ClientSpec) *Client {
	if rm.started {
		panic("core: admit before Start")
	}
	initial := rm.initialIface(spec)
	c := newClient(rm.sim, spec, initial)
	rm.clients = append(rm.clients, c)
	rm.registrar.Register(spec.ID, spec.Stream.RateBps, 1.0)
	rm.nextFill[spec.ID] = sim.MaxTime
	return c
}

// initialIface applies the policy's static preference at admission.
func (rm *ResourceManager) initialIface(spec ClientSpec) Iface {
	switch rm.cfg.Policy {
	case PolicyWLANOnly:
		if !spec.HasWLAN {
			panic(fmt.Sprintf("core: client %d lacks WLAN under wlan-only policy", spec.ID))
		}
		return WLAN
	case PolicyBTOnly:
		if !spec.HasBT {
			panic(fmt.Sprintf("core: client %d lacks BT under bt-only policy", spec.ID))
		}
		return BT
	default:
		if spec.HasBT {
			return BT // the paper: "the scheduler initially has only Bluetooth enabled"
		}
		return WLAN
	}
}

// Clients returns the admitted clients.
func (rm *ResourceManager) Clients() []*Client { return rm.clients }

// Registrar exposes the proxy registration table.
func (rm *ResourceManager) Registrar() *proxy.Registrar { return rm.registrar }

// History returns every slot scheduled so far (Figure 1's raw data).
func (rm *ResourceManager) History() []Slot { return rm.history }

// Recoveries counts reactive fallback bursts.
func (rm *ResourceManager) Recoveries() int { return rm.recoveries }

// Start begins the epoch loop and the QoS watchdog.
func (rm *ResourceManager) Start() {
	if rm.started {
		return
	}
	rm.started = true
	rm.runEpoch()
	sim.NewTicker(rm.sim, rm.cfg.Epoch, rm.runEpoch)
	sim.NewTicker(rm.sim, 500*sim.Millisecond, rm.watchdog)
}

// Urgents counts watchdog-triggered top-up bursts.
func (rm *ResourceManager) Urgents() int { return rm.urgents }

// watchdog guards QoS between epochs: the server knows exactly what it has
// delivered, so whenever a client's buffer will dry before its next planned
// fill — a switch transient, a truncated slot, a failed burst — it inserts
// an immediate top-up burst.
func (rm *ResourceManager) watchdog() {
	now := rm.sim.Now()
	for _, c := range rm.clients {
		tte := c.buffer.TimeToEmpty()
		if tte == sim.MaxTime || tte > 3*sim.Second {
			continue
		}
		if rm.nextFill[c.spec.ID] <= now+tte-sim.Second {
			continue // a fill will land in time
		}
		if last, ok := rm.lastUrgent[c.spec.ID]; ok && now-last < 4*sim.Second {
			continue
		}
		rm.urgentTopUp(c)
	}
}

// urgentTopUp schedules an immediate half-epoch burst for a client at risk.
func (rm *ResourceManager) urgentTopUp(c *Client) {
	iface := c.assigned
	// Only the adaptive policy may divert emergencies to the other
	// interface; pinned policies must live with their choice.
	if rm.cfg.Policy == PolicyAdaptive && rm.monitors[iface].Quality() == channel.QualityUnusable {
		switch {
		case iface == BT && c.Has(WLAN):
			iface = WLAN
		case iface == WLAN && c.Has(BT):
			iface = BT
		}
	}
	bytes := int(c.spec.Stream.BytesPerSecond() * rm.cfg.Epoch.Seconds() / 2)
	start := rm.sim.Now() + c.wakeLatency(iface) + rm.cfg.Guard
	slot := Slot{
		Client: c.spec.ID, Iface: iface,
		Start: start,
		End:   start + rm.estimateDur(iface, bytes),
		Bytes: bytes,
		Kind:  SlotUrgent,
	}
	rm.urgents++
	rm.lastUrgent[c.spec.ID] = rm.sim.Now()
	rm.history = append(rm.history, slot)
	rm.execute(slot, false)
}

// runEpoch is one scheduling round: interface selection, demand
// computation, ordering, layout, execution.
func (rm *ResourceManager) runEpoch() {
	now := rm.sim.Now()
	epochEnd := now + rm.cfg.Epoch

	// Clients report their battery levels at each epoch (the aggregated
	// state the paper says improves the server's policies).
	for _, c := range rm.clients {
		rm.registrar.UpdateBattery(c.spec.ID, c.BatteryLevel())
	}

	rm.selectInterfaces()

	// Demands per interface.
	demands := make(map[Iface][]Demand)
	for _, c := range rm.clients {
		d := rm.demandFor(c)
		if d.Bytes <= 0 {
			continue
		}
		demands[d.Iface] = append(demands[d.Iface], d)
	}

	// Order and lay out per interface, then execute. Layout is two-pass:
	// the first pass finds each client's fill instant, the second tops the
	// demand up by the media the client will consume between now and that
	// instant — without this, late-slot clients drift dry over epochs.
	durFor := func(d Demand, bytes int) sim.Time { return rm.estimateDur(d.Iface, bytes) }
	for _, iface := range Ifaces() {
		ds := demands[iface]
		if len(ds) == 0 {
			continue
		}
		ordered := rm.cfg.Scheduler.Order(rm.epoch, ds)
		prelim := layoutSlots(ordered, now+rm.cfg.StartOffset, epochEnd, rm.cfg.Guard, SlotBulk, durFor)
		fillAt := make(map[int]sim.Time, len(prelim))
		for _, sl := range prelim {
			fillAt[sl.Client] = sl.End
		}
		for i := range ordered {
			at, ok := fillAt[ordered[i].Client]
			if !ok {
				at = epochEnd
			}
			drain := ordered[i].Weight * (at - now).Seconds()
			ordered[i].Bytes += int(drain)
		}
		slots := layoutSlots(ordered, now+rm.cfg.StartOffset, epochEnd, rm.cfg.Guard, SlotBulk, durFor)
		slots = rm.rescuePass(ordered, slots, now, epochEnd, durFor)
		for _, slot := range slots {
			rm.history = append(rm.history, slot)
			rm.execute(slot, true)
		}
	}
	rm.epoch++
}

// rescuePass inserts small deadline-bridging bursts ahead of the bulk
// layout whenever a playing client's buffer would dry before its bulk fill
// completes (typically right after a fleet-wide switch to a slower
// interface). Rescues are ordered by deadline and sized to bridge from the
// deadline past the (shifted) bulk fill.
func (rm *ResourceManager) rescuePass(ordered []Demand, slots []Slot,
	now, epochEnd sim.Time, durFor func(Demand, int) sim.Time) []Slot {
	deadline := make(map[int]sim.Time, len(ordered))
	weight := make(map[int]float64, len(ordered))
	for _, d := range ordered {
		deadline[d.Client] = d.Deadline
		weight[d.Client] = d.Weight
	}
	var rescues []Demand
	for _, sl := range slots {
		c := rm.clientByID(sl.Client)
		if !c.buffer.Playing() {
			continue
		}
		dl := deadline[sl.Client]
		if dl >= sl.End+sim.Second {
			continue
		}
		bridge := (sl.End + 2*sim.Second) - dl
		rescues = append(rescues, Demand{
			Client:   sl.Client,
			Iface:    sl.Iface,
			Bytes:    int(weight[sl.Client] * bridge.Seconds()),
			Deadline: dl,
			Weight:   weight[sl.Client],
		})
	}
	if len(rescues) == 0 {
		return slots
	}
	// Rescues shift the bulk slots back; widen each bridge by the total
	// rescue airtime so the bridges still reach the shifted fills.
	var shift sim.Time
	for _, r := range rescues {
		shift += durFor(r, r.Bytes) + rm.cfg.Guard
	}
	for i := range rescues {
		rescues[i].Bytes += int(rescues[i].Weight * shift.Seconds())
	}
	rescueSlots := layoutSlots(EDF{}.Order(rm.epoch, rescues),
		now+rm.cfg.StartOffset, epochEnd, rm.cfg.Guard, SlotRescue, durFor)
	bulkStart := now + rm.cfg.StartOffset
	if n := len(rescueSlots); n > 0 {
		bulkStart = rescueSlots[n-1].End + rm.cfg.Guard
	}
	bulkSlots := layoutSlots(ordered, bulkStart, epochEnd, rm.cfg.Guard, SlotBulk, durFor)
	return append(rescueSlots, bulkSlots...)
}

// selectInterfaces applies the configured policy at an epoch boundary.
//
// The adaptive policy follows the paper's narrative in two stages. At
// admission clients ride the already-associated Bluetooth link (WLAN is
// off; waking it costs a re-association). From the first epoch boundary on,
// the server re-selects each client's interface by minimizing the marginal
// energy of delivering that client's epoch demand — burst receive energy
// plus wake/sleep transition overheads — subject to link quality and the
// Bluetooth capacity budget. For the paper's MP3 workload this moves bulk
// delivery onto WLAN bursts (2% duty at 1.4 W beats 23% duty at 0.43 W)
// while Bluetooth stays parked as the fallback, and it moves clients back
// off any interface whose link degrades.
func (rm *ResourceManager) selectInterfaces() {
	if rm.cfg.Policy != PolicyAdaptive {
		return // static policies fixed at admission
	}
	btBudget := profileFor(BT).Goodput / 8 * rm.cfg.Epoch.Seconds() * rm.cfg.BTLoadFraction
	btBooked := 0.0
	for _, c := range rm.clients {
		need := int(c.spec.Stream.BytesPerSecond() * rm.cfg.Epoch.Seconds())
		choice := rm.chooseIface(c, need, btBooked, btBudget)
		if choice == BT {
			btBooked += float64(need)
		}
		c.assign(choice)
	}
}

// chooseIface picks the serving interface for one client's epoch demand.
func (rm *ResourceManager) chooseIface(c *Client, needBytes int, btBooked, btBudget float64) Iface {
	type cand struct {
		iface Iface
		q     channel.Quality
		cost  float64
	}
	var cands []cand
	for _, i := range Ifaces() {
		if !c.Has(i) {
			continue
		}
		q := rm.monitors[i].Quality()
		if q == channel.QualityUnusable {
			continue
		}
		if i == BT && btBooked+float64(needBytes) > btBudget {
			continue
		}
		cands = append(cands, cand{iface: i, q: q, cost: rm.epochCost(i, needBytes)})
	}
	if len(cands) == 0 {
		return c.assigned // nowhere better to go; ride it out
	}
	// During the admission epoch stay on the already-connected link the
	// paper starts from, as long as it is usable.
	if rm.epoch == 0 {
		for _, cd := range cands {
			if cd.iface == c.assigned {
				return cd.iface
			}
		}
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		// A good link always beats a degraded one; energy breaks ties.
		if cd.q < best.q || (cd.q == best.q && cd.cost < best.cost) {
			best = cd
		}
	}
	return best.iface
}

// epochCost estimates the marginal radio energy of serving one epoch's
// demand on an interface: the (inflation-stretched) burst at RX power plus
// the deep→idle→deep transition overheads.
func (rm *ResourceManager) epochCost(iface Iface, bytes int) float64 {
	p := profileFor(iface)
	burst := p.BurstTime(bytes).Seconds() * rm.inflation(iface)
	j := burst * p.Power[radio.RX]
	up := p.TransitionCost(p.DeepState, radio.Idle)
	down := p.TransitionCost(radio.Idle, p.DeepState)
	j += up.Energy + down.Energy + up.Latency.Seconds()*p.Power[radio.Idle]
	return j
}

// demandFor computes a client's transfer requirement for this epoch: top the
// buffer up to one epoch of media plus the safety margin.
func (rm *ResourceManager) demandFor(c *Client) Demand {
	rate := c.spec.Stream.BytesPerSecond()
	target := rate * (rm.cfg.Epoch.Seconds() + rm.cfg.MarginSeconds)
	level := c.buffer.Level()
	bytes := int(target - level)
	if bytes < 0 {
		bytes = 0
	}
	// Deadline: when the buffer would run dry (EDF's urgency signal). A
	// client that has not started playing is maximally urgent.
	deadline := rm.sim.Now()
	if c.buffer.Playing() {
		deadline = rm.sim.Now() + c.buffer.TimeToEmpty()
	}
	return Demand{
		Client:   c.spec.ID,
		Iface:    c.assigned,
		Bytes:    bytes,
		Deadline: deadline,
		Weight:   rate,
		EstDur:   rm.estimateDur(c.assigned, bytes),
	}
}

// estimateDur predicts a burst's duration on an interface from the current
// channel state (scheduling-time estimate).
func (rm *ResourceManager) estimateDur(iface Iface, bytes int) sim.Time {
	p := profileFor(iface)
	inf := rm.inflation(iface)
	return sim.FromSeconds(p.BurstTime(bytes).Seconds() * inf)
}

// inflation returns the retransmission multiplier implied by the channel's
// instantaneous packet error rate, capped at the configured bound.
func (rm *ResourceManager) inflation(iface Iface) float64 {
	per := rm.channels[iface].PacketErrorProb(rm.cfg.ChunkBytes)
	if per >= 1 {
		return rm.cfg.InflationCap
	}
	inf := 1 / (1 - per)
	if inf > rm.cfg.InflationCap {
		inf = rm.cfg.InflationCap
	}
	return inf
}

// execute drives one slot on its client. allowRecovery guards against
// recursive recovery bursts.
func (rm *ResourceManager) execute(slot Slot, allowRecovery bool) {
	c := rm.clientByID(slot.Client)
	assess := func() (sim.Time, int) {
		p := profileFor(slot.Iface)
		per := rm.channels[slot.Iface].PacketErrorProb(rm.cfg.ChunkBytes)
		nominal := p.BurstTime(slot.Bytes)
		if per < 1-1/rm.cfg.InflationCap {
			// Retransmissions fit under the cap: everything arrives,
			// stretched by the inflation factor.
			return sim.FromSeconds(nominal.Seconds() / (1 - per)), slot.Bytes
		}
		// Channel effectively dead: the slot burns its capped window and
		// delivers only the surviving fraction.
		dur := sim.FromSeconds(nominal.Seconds() * rm.cfg.InflationCap)
		return dur, int(float64(slot.Bytes) * (1 - per) * rm.cfg.InflationCap)
	}
	if slot.End < rm.nextFill[slot.Client] {
		rm.nextFill[slot.Client] = slot.End
	}
	c.executeSlot(slot, assess, func(got int) {
		rm.nextFill[slot.Client] = sim.MaxTime
		if !allowRecovery {
			return
		}
		if float64(got) >= float64(slot.Bytes)*rm.cfg.RecoveryFraction {
			return
		}
		rm.recover(c, slot.Bytes-got)
	})
}

// recover schedules an immediate fallback burst on the client's other
// interface after a failed slot: this is the seamless mid-epoch switch.
func (rm *ResourceManager) recover(c *Client, missingBytes int) {
	if rm.cfg.Policy != PolicyAdaptive {
		return // pinned policies cannot divert to another interface
	}
	var fallback Iface
	switch {
	case c.assigned == BT && c.Has(WLAN):
		fallback = WLAN
	case c.assigned == WLAN && c.Has(BT):
		fallback = BT
	default:
		return // nowhere to go
	}
	// Only fall back onto a link that looks healthier.
	if rm.monitors[fallback].Quality() == channel.QualityUnusable {
		return
	}
	c.assign(fallback)
	rm.recoveries++
	start := rm.sim.Now() + c.wakeLatency(fallback) + rm.cfg.Guard
	slot := Slot{
		Client: c.spec.ID, Iface: fallback,
		Start: start,
		End:   start + rm.estimateDur(fallback, missingBytes),
		Bytes: missingBytes,
		Kind:  SlotRecovery,
	}
	rm.history = append(rm.history, slot)
	rm.execute(slot, false)
}

func (rm *ResourceManager) clientByID(id int) *Client {
	for _, c := range rm.clients {
		if c.spec.ID == id {
			return c
		}
	}
	panic(fmt.Sprintf("core: unknown client %d", id))
}
