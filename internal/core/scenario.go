package core

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/channel"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ClientReport summarizes one client's run.
type ClientReport struct {
	ID            int
	AvgPowerW     float64
	EnergyJ       float64
	Underruns     int
	StallTime     sim.Time
	BytesReceived int
	Switches      int
	SlotsServed   int
	SlotsPartial  int
}

// Report summarizes a complete scenario run. Figure 2 is three of these
// side by side; Figure 1 renders the Slots of one.
type Report struct {
	Strategy       string
	Duration       sim.Time
	Clients        []ClientReport
	MeanPowerW     float64
	TotalUnderruns int
	TotalStall     sim.Time
	Slots          []Slot
	Recoveries     int
}

// SavingVs returns the fractional power saving of r relative to a baseline
// (0.97 ⇒ 97 % lower mean WNIC power).
func (r Report) SavingVs(base Report) float64 {
	if base.MeanPowerW <= 0 {
		return 0
	}
	return 1 - r.MeanPowerW/base.MeanPowerW
}

// QoSMaintained reports whether no client ever stalled mid-playback.
func (r Report) QoSMaintained() bool { return r.TotalUnderruns == 0 }

// Hotspot is a ready-to-run scenario: simulator, per-interface channels,
// resource manager and admitted clients.
type Hotspot struct {
	sim      *sim.Simulator
	cfg      Config
	channels map[Iface]*channel.GilbertElliott
	rm       *ResourceManager
}

// GoodChannelParams returns a quiet link: fades are rare and brief, but a
// fade is a real outage (BER 1e-3 makes 1460-byte frames essentially
// undeliverable), which is what forces interface switching when one is
// scripted to persist.
func GoodChannelParams() channel.GEParams {
	return channel.GEParams{
		MeanGood: 5 * sim.Minute,
		MeanBad:  200 * sim.Millisecond,
		BERGood:  1e-7,
		BERBad:   1e-3,
	}
}

// NewHotspot builds the scenario with nClients default MP3 clients.
// Channels start in the Good state and are frozen for determinism; tests
// and experiments unfreeze or force states as needed.
func NewHotspot(seed int64, cfg Config, nClients int) *Hotspot {
	s := sim.New(seed)
	chans := map[Iface]*channel.GilbertElliott{}
	for _, i := range Ifaces() {
		ch := channel.NewGilbertElliott(s, GoodChannelParams())
		ch.Freeze()
		chans[i] = ch
	}
	rm := NewResourceManager(s, cfg, chans)
	for i := 0; i < nClients; i++ {
		rm.Admit(DefaultClientSpec(i))
	}
	return &Hotspot{sim: s, cfg: cfg, channels: chans, rm: rm}
}

// Sim returns the scenario's simulator.
func (h *Hotspot) Sim() *sim.Simulator { return h.sim }

// RM returns the resource manager.
func (h *Hotspot) RM() *ResourceManager { return h.rm }

// Channel returns the channel model for an interface.
func (h *Hotspot) Channel(i Iface) *channel.GilbertElliott { return h.channels[i] }

// Run starts the manager, simulates for the duration and builds the report.
func (h *Hotspot) Run(duration sim.Time) Report {
	h.rm.Start()
	h.sim.RunUntil(h.sim.Now() + duration)
	return h.rm.Report()
}

// Report builds a scenario report from the manager's current state. It can
// be called on a hand-assembled ResourceManager after driving the simulator
// directly.
func (rm *ResourceManager) Report() Report {
	return buildReport("hotspot-"+rm.cfg.Scheduler.Name(), rm.sim, rm.clients,
		rm.history, rm.recoveries)
}

func buildReport(strategy string, s *sim.Simulator, clients []*Client, slots []Slot, recoveries int) Report {
	rep := Report{Strategy: strategy, Duration: s.Now(), Slots: slots, Recoveries: recoveries}
	var power stats.Summary
	for _, c := range clients {
		cr := ClientReport{
			ID:            c.spec.ID,
			AvgPowerW:     c.AveragePower(),
			EnergyJ:       c.TotalEnergy(),
			Underruns:     c.buffer.Underruns(),
			StallTime:     c.buffer.StallTime(),
			BytesReceived: c.received,
			Switches:      c.switches,
			SlotsServed:   c.slots,
			SlotsPartial:  c.partial,
		}
		rep.Clients = append(rep.Clients, cr)
		rep.TotalUnderruns += cr.Underruns
		rep.TotalStall += cr.StallTime
		power.Add(cr.AvgPowerW)
	}
	rep.MeanPowerW = power.Mean()
	return rep
}

// RunUnscheduled simulates the Figure 2 baselines: clients streaming MP3
// over an always-connected interface with no burst scheduling. The WNIC
// never leaves its connected state; each media chunk is received as it
// arrives. This is what "first through standard WLAN and Bluetooth
// interfaces with no additional scheduling" measures.
func RunUnscheduled(seed int64, iface Iface, nClients int, duration sim.Time) Report {
	s := sim.New(seed)
	p := profileFor(iface)
	type ucli struct {
		dev *radio.Device
		buf *qos.PlayoutBuffer
		rec int
	}
	clis := make([]*ucli, nClients)
	headerBytes := 60 // per-chunk transport + MAC headers
	for i := 0; i < nClients; i++ {
		u := &ucli{
			dev: radio.NewDeviceInState(s, p, radio.Idle),
			buf: qos.NewPlayoutBuffer(s, qos.MP3Stream()),
		}
		clis[i] = u
		src := app.MP3CBR(s)
		src.Start(func(c app.Chunk) {
			// Receive the chunk as it arrives; if the radio is mid-chunk
			// (only possible at BT rates with jittered arrivals) the bytes
			// still land — we model the receive occupancy best-effort.
			air := p.TxTime(c.Bytes + headerBytes)
			if u.dev.State() == radio.Idle && !u.dev.Transitioning() {
				u.dev.OccupyFor(radio.RX, air, radio.Idle, nil)
			}
			u.buf.Fill(c.Bytes)
			u.rec += c.Bytes
		})
	}
	s.RunUntil(duration)

	rep := Report{Strategy: "unscheduled-" + iface.String(), Duration: s.Now()}
	var power stats.Summary
	for i, u := range clis {
		cr := ClientReport{
			ID:            i,
			AvgPowerW:     u.dev.Meter().AveragePower(),
			EnergyJ:       u.dev.Meter().TotalEnergy(),
			Underruns:     u.buf.Underruns(),
			StallTime:     u.buf.StallTime(),
			BytesReceived: u.rec,
		}
		rep.Clients = append(rep.Clients, cr)
		rep.TotalUnderruns += cr.Underruns
		rep.TotalStall += cr.StallTime
		power.Add(cr.AvgPowerW)
	}
	rep.MeanPowerW = power.Mean()
	return rep
}

// Figure2Row is one bar of the paper's Figure 2.
type Figure2Row struct {
	Strategy  string
	MeanW     float64
	Underruns int
}

// Figure2 runs the three delivery strategies of the paper's evaluation and
// returns their bars plus the headline saving. The shape to reproduce:
// WLAN ≫ Bluetooth ≫ Hotspot scheduling, with the scheduled system saving
// ≈ 97 % of WNIC power while maintaining QoS.
func Figure2(seed int64, nClients int, duration sim.Time) ([]Figure2Row, float64) {
	wlan := RunUnscheduled(seed, WLAN, nClients, duration)
	bt := RunUnscheduled(seed+1, BT, nClients, duration)
	hs := NewHotspot(seed+2, DefaultConfig(), nClients).Run(duration)
	rows := []Figure2Row{
		{Strategy: "WLAN", MeanW: wlan.MeanPowerW, Underruns: wlan.TotalUnderruns},
		{Strategy: "Bluetooth", MeanW: bt.MeanPowerW, Underruns: bt.TotalUnderruns},
		{Strategy: "Hotspot scheduling", MeanW: hs.MeanPowerW, Underruns: hs.TotalUnderruns},
	}
	return rows, hs.SavingVs(wlan)
}

// String renders a report as a table.
func (r Report) String() string {
	t := stats.NewTable(fmt.Sprintf("%s (%v)", r.Strategy, r.Duration),
		"client", "avg W", "energy J", "underruns", "stall", "KB recv", "switches")
	for _, c := range r.Clients {
		t.AddRow(
			fmt.Sprintf("%d", c.ID),
			fmt.Sprintf("%.4f", c.AvgPowerW),
			fmt.Sprintf("%.2f", c.EnergyJ),
			fmt.Sprintf("%d", c.Underruns),
			c.StallTime.String(),
			fmt.Sprintf("%d", c.BytesReceived/1024),
			fmt.Sprintf("%d", c.Switches),
		)
	}
	t.AddNote("mean power %.4f W, recoveries %d", r.MeanPowerW, r.Recoveries)
	return t.String()
}
