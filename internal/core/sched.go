package core

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Demand is one client's transfer requirement for an upcoming epoch.
type Demand struct {
	Client int
	Iface  Iface
	Bytes  int
	// Deadline is when the client's playout buffer would run dry; EDF
	// orders by it.
	Deadline sim.Time
	// Weight is the client's bandwidth share (its stream rate); WFQ orders
	// by weighted virtual finish times.
	Weight float64
	// EstDur is the estimated slot duration including guard time.
	EstDur sim.Time
}

// SlotKind distinguishes how a slot entered the schedule.
type SlotKind int

// Slot kinds.
const (
	// SlotBulk is a regular epoch-layout burst; bulk slots never overlap
	// on an interface.
	SlotBulk SlotKind = iota
	// SlotRescue is a deadline-bridging burst inserted at epoch layout.
	SlotRescue
	// SlotRecovery is a reactive burst after a failed slot; it may preempt
	// the AP's queue (modelled as permissible overlap).
	SlotRecovery
	// SlotUrgent is a watchdog top-up; like recovery it may preempt.
	SlotUrgent
)

// String names the kind.
func (k SlotKind) String() string {
	switch k {
	case SlotBulk:
		return "bulk"
	case SlotRescue:
		return "rescue"
	case SlotRecovery:
		return "recovery"
	default:
		return "urgent"
	}
}

// Slot is one scheduled burst: client, interface, time window, payload.
// Figure 1 is a rendering of a slice of these.
type Slot struct {
	Client int
	Iface  Iface
	Start  sim.Time
	End    sim.Time
	Bytes  int
	Kind   SlotKind
}

// String renders a slot compactly.
func (s Slot) String() string {
	return fmt.Sprintf("client %d on %v [%v, %v] %d B", s.Client, s.Iface, s.Start, s.End, s.Bytes)
}

// Scheduler orders demands for service within an epoch. The resource
// manager lays slots out sequentially per interface in the returned order.
// Implementations mirror the paper's menu: "ranging from standard real-time
// schedulers such as earliest deadline first, to well known packet level
// schedulers such as weighted fair queuing".
type Scheduler interface {
	Name() string
	// Order returns the service order for one interface's demands.
	Order(epoch int, demands []Demand) []Demand
}

// EDF is earliest-deadline-first: urgency wins, which minimizes deadline
// misses whenever the demand set is feasible.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "edf" }

// Order implements Scheduler.
func (EDF) Order(_ int, demands []Demand) []Demand {
	out := append([]Demand(nil), demands...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Deadline < out[j].Deadline })
	return out
}

// WFQ is weighted fair queuing at burst granularity: each client carries a
// virtual finish time advanced by bytes/weight, and service follows finish
// tags. Long-run throughput is proportional to weights regardless of burst
// sizes.
type WFQ struct {
	virtual map[int]float64
	vnow    float64
}

// NewWFQ creates a weighted-fair-queuing scheduler.
func NewWFQ() *WFQ { return &WFQ{virtual: make(map[int]float64)} }

// Name implements Scheduler.
func (w *WFQ) Name() string { return "wfq" }

// Order implements Scheduler.
func (w *WFQ) Order(_ int, demands []Demand) []Demand {
	type tagged struct {
		d      Demand
		finish float64
	}
	tags := make([]tagged, 0, len(demands))
	maxFinish := w.vnow
	for _, d := range demands {
		weight := d.Weight
		if weight <= 0 {
			weight = 1
		}
		start := w.virtual[d.Client]
		if start < w.vnow {
			start = w.vnow
		}
		finish := start + float64(d.Bytes)/weight
		w.virtual[d.Client] = finish
		if finish > maxFinish {
			maxFinish = finish
		}
		tags = append(tags, tagged{d: d, finish: finish})
	}
	w.vnow = maxFinish
	sort.SliceStable(tags, func(i, j int) bool { return tags[i].finish < tags[j].finish })
	out := make([]Demand, len(tags))
	for i, t := range tags {
		out[i] = t.d
	}
	return out
}

// RoundRobin rotates service order each epoch: the baseline that is fair in
// turns but blind to both deadlines and weights.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "round-robin" }

// Order implements Scheduler.
func (RoundRobin) Order(epoch int, demands []Demand) []Demand {
	out := append([]Demand(nil), demands...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	if len(out) == 0 {
		return out
	}
	k := epoch % len(out)
	return append(out[k:], out[:k]...)
}

// layoutSlots assigns sequential windows on one interface's timeline
// starting at start and ending no later than limit. Demands that do not fit
// are truncated to the remaining window (possibly to zero bytes): the
// scheduler's ordering therefore decides who suffers under overload.
func layoutSlots(ordered []Demand, start, limit sim.Time, guard sim.Time, kind SlotKind,
	durFor func(d Demand, bytes int) sim.Time) []Slot {
	var slots []Slot
	cursor := start
	for _, d := range ordered {
		if d.Bytes <= 0 {
			continue
		}
		if cursor >= limit {
			break
		}
		bytes := d.Bytes
		dur := durFor(d, bytes)
		if cursor+dur > limit {
			// Shrink proportionally to the window that remains.
			avail := limit - cursor
			frac := float64(avail) / float64(dur)
			bytes = int(float64(bytes) * frac)
			if bytes <= 0 {
				continue
			}
			dur = durFor(d, bytes)
		}
		slots = append(slots, Slot{
			Client: d.Client, Iface: d.Iface,
			Start: cursor, End: cursor + dur, Bytes: bytes, Kind: kind,
		})
		cursor += dur + guard
	}
	return slots
}
