// Package core implements the paper's contribution: a Hotspot resource
// manager that extends the application-level proxy with centralized,
// QoS-aware scheduling of client data transfers. The server aggregates each
// client's stream requirements, battery state and link conditions, selects
// the wireless interface (Bluetooth vs WLAN) per client, and schedules data
// in large bursts so that client WNICs spend the time between bursts in
// deep low-power states (park for Bluetooth, off for WLAN). Client-side
// resource managers execute the schedule by transitioning WNIC power states
// at exactly the right instants — Figure 1's "each client knows exactly
// when it needs to wake up its WNIC and when it can enter a low power
// state".
package core

import (
	"fmt"

	"repro/internal/radio"
)

// Iface identifies a wireless interface technology.
type Iface int

// The two interfaces of the paper's heterogeneous scenario.
const (
	WLAN Iface = iota
	BT
	numIfaces
)

// String names the interface.
func (i Iface) String() string {
	switch i {
	case WLAN:
		return "wlan"
	case BT:
		return "bluetooth"
	default:
		return fmt.Sprintf("iface(%d)", int(i))
	}
}

// Ifaces lists all modelled interfaces.
func Ifaces() []Iface { return []Iface{WLAN, BT} }

// profileFor returns the calibrated radio profile for an interface.
func profileFor(i Iface) *radio.Profile {
	switch i {
	case WLAN:
		return radio.WLAN80211b()
	case BT:
		return radio.Bluetooth()
	default:
		panic(fmt.Sprintf("core: unknown iface %d", int(i)))
	}
}

// IfacePolicy selects each client's serving interface at epoch boundaries.
type IfacePolicy int

// Interface-selection policies.
const (
	// PolicyAdaptive prefers Bluetooth while its link is good and its
	// aggregate load fits, switching clients to WLAN otherwise — the
	// paper's scenario ("initially has only Bluetooth enabled and as
	// conditions in the link change, seamlessly switches communication
	// over to WLAN").
	PolicyAdaptive IfacePolicy = iota
	// PolicyWLANOnly pins every client to WLAN.
	PolicyWLANOnly
	// PolicyBTOnly pins every client to Bluetooth.
	PolicyBTOnly
)

// String names the policy.
func (p IfacePolicy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyWLANOnly:
		return "wlan-only"
	case PolicyBTOnly:
		return "bt-only"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}
