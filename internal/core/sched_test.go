package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mkDemand(client int, bytes int, deadline sim.Time, weight float64) Demand {
	return Demand{Client: client, Iface: WLAN, Bytes: bytes, Deadline: deadline, Weight: weight}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	ds := []Demand{
		mkDemand(0, 100, 30*sim.Second, 1),
		mkDemand(1, 100, 10*sim.Second, 1),
		mkDemand(2, 100, 20*sim.Second, 1),
	}
	out := EDF{}.Order(0, ds)
	want := []int{1, 2, 0}
	for i, d := range out {
		if d.Client != want[i] {
			t.Fatalf("order = %v, want clients %v", out, want)
		}
	}
	// Input must not be mutated.
	if ds[0].Client != 0 {
		t.Error("EDF mutated its input")
	}
}

func TestEDFStableOnTies(t *testing.T) {
	ds := []Demand{
		mkDemand(5, 100, 10*sim.Second, 1),
		mkDemand(3, 100, 10*sim.Second, 1),
		mkDemand(8, 100, 10*sim.Second, 1),
	}
	out := EDF{}.Order(0, ds)
	for i, d := range out {
		if d.Client != ds[i].Client {
			t.Fatal("EDF tie-break not stable")
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	ds := []Demand{
		mkDemand(0, 100, 0, 1),
		mkDemand(1, 100, 0, 1),
		mkDemand(2, 100, 0, 1),
	}
	firstOf := func(epoch int) int { return RoundRobin{}.Order(epoch, ds)[0].Client }
	if firstOf(0) != 0 || firstOf(1) != 1 || firstOf(2) != 2 || firstOf(3) != 0 {
		t.Errorf("rotation wrong: %d %d %d %d", firstOf(0), firstOf(1), firstOf(2), firstOf(3))
	}
}

func TestWFQPrefersLightClients(t *testing.T) {
	// Equal weights, unequal bytes: the smaller request finishes first in
	// virtual time.
	w := NewWFQ()
	out := w.Order(0, []Demand{
		mkDemand(0, 10_000, 0, 1),
		mkDemand(1, 1_000, 0, 1),
	})
	if out[0].Client != 1 {
		t.Errorf("WFQ served heavy client first: %v", out)
	}
}

func TestWFQWeightsDominate(t *testing.T) {
	// Same bytes, 10x weight: the heavier-weighted client finishes first.
	w := NewWFQ()
	out := w.Order(0, []Demand{
		mkDemand(0, 10_000, 0, 1),
		mkDemand(1, 10_000, 0, 10),
	})
	if out[0].Client != 1 {
		t.Errorf("WFQ ignored weights: %v", out)
	}
}

func TestWFQLongRunProportionality(t *testing.T) {
	// Over many epochs with saturating demands, cumulative service order
	// frequency should track weights: the weight-2 client should be served
	// first about twice as often as each weight-1 client.
	w := NewWFQ()
	served := map[int]int{}
	for epoch := 0; epoch < 600; epoch++ {
		out := w.Order(epoch, []Demand{
			mkDemand(0, 1000, 0, 1),
			mkDemand(1, 1000, 0, 1),
			mkDemand(2, 1000, 0, 2),
		})
		served[out[0].Client]++
	}
	if served[2] < served[0]+served[1]-100 {
		t.Errorf("weight-2 client served first %d times vs %d+%d; want ≈ sum",
			served[2], served[0], served[1])
	}
}

// Property: layoutSlots never overlaps slots, never exceeds the window, and
// never outputs more bytes than demanded.
func TestLayoutSlotsInvariantsProperty(t *testing.T) {
	durFor := func(d Demand, bytes int) sim.Time {
		return sim.Time(bytes) * sim.Microsecond // 1 B/µs synthetic rate
	}
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 1
		var ds []Demand
		totalBytes := 0
		for i := 0; i < n; i++ {
			b := r.Intn(200_000)
			totalBytes += b
			ds = append(ds, mkDemand(i, b, sim.Time(r.Intn(100))*sim.Second, 1))
		}
		start := sim.Time(150) * sim.Millisecond
		limit := start + sim.Time(r.Intn(900)+100)*sim.Millisecond
		guard := 10 * sim.Millisecond
		slots := layoutSlots(ds, start, limit, guard, SlotBulk, durFor)
		var prevEnd sim.Time
		outBytes := 0
		for i, s := range slots {
			if s.Start < start || s.End > limit {
				return false
			}
			if i > 0 && s.Start < prevEnd {
				return false
			}
			if s.End < s.Start {
				return false
			}
			if s.Bytes <= 0 {
				return false
			}
			outBytes += s.Bytes
			prevEnd = s.End
		}
		return outBytes <= totalBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLayoutSlotsTruncatesToWindow(t *testing.T) {
	durFor := func(d Demand, bytes int) sim.Time {
		return sim.Time(bytes) * sim.Millisecond / 100 // 100 B/ms
	}
	ds := []Demand{
		mkDemand(0, 50_000, 0, 1), // 500 ms
		mkDemand(1, 50_000, 0, 1), // would need another 500 ms
	}
	slots := layoutSlots(ds, 0, 700*sim.Millisecond, 0, SlotBulk, durFor)
	if len(slots) != 2 {
		t.Fatalf("slots = %d, want 2 (second truncated)", len(slots))
	}
	if slots[1].Bytes >= 50_000 {
		t.Errorf("second slot not truncated: %d bytes", slots[1].Bytes)
	}
	if slots[1].End > 700*sim.Millisecond {
		t.Errorf("slot past window end: %v", slots[1].End)
	}
}

func TestLayoutSlotsSkipsZeroDemands(t *testing.T) {
	durFor := func(d Demand, bytes int) sim.Time { return sim.Millisecond }
	slots := layoutSlots([]Demand{
		mkDemand(0, 0, 0, 1),
		mkDemand(1, 100, 0, 1),
	}, 0, sim.Second, 0, SlotBulk, durFor)
	if len(slots) != 1 || slots[0].Client != 1 {
		t.Errorf("zero demand not skipped: %v", slots)
	}
}

func TestSlotKindString(t *testing.T) {
	for _, k := range []SlotKind{SlotBulk, SlotRescue, SlotRecovery, SlotUrgent} {
		if k.String() == "" {
			t.Error("missing slot kind name")
		}
	}
}

func TestSlotString(t *testing.T) {
	s := Slot{Client: 2, Iface: BT, Start: sim.Second, End: 2 * sim.Second, Bytes: 1000}
	if s.String() == "" {
		t.Error("slot renders empty")
	}
}

// Property: EDF output is a permutation of its input sorted by deadline.
func TestEDFPermutationProperty(t *testing.T) {
	prop := func(deadlines []uint16) bool {
		var ds []Demand
		for i, d := range deadlines {
			ds = append(ds, mkDemand(i, 100, sim.Time(d)*sim.Millisecond, 1))
		}
		out := EDF{}.Order(0, ds)
		if len(out) != len(ds) {
			return false
		}
		seen := map[int]bool{}
		for i, d := range out {
			if seen[d.Client] {
				return false
			}
			seen[d.Client] = true
			if i > 0 && out[i-1].Deadline > d.Deadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
