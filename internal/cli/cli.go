// Package cli holds the flag-parsing and Runner-setup boilerplate shared
// by the experiment frontends (figgen, macbench, hotspotsim), so the seed /
// seeds / parallel / profiling conventions are declared once and cannot
// drift between commands again.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/scenario"
)

// RunFlags is the shared frontend flag set: seeding, worker-pool sizing and
// optional CPU/heap profiling of the run.
type RunFlags struct {
	Seed       int64
	SeedsN     int
	Parallel   int
	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on fs with the repository-wide
// defaults (seed 1, one seed, NumCPU workers, no profiling).
func (f *RunFlags) Register(fs *flag.FlagSet) {
	fs.Int64Var(&f.Seed, "seed", 1, "base simulation seed")
	fs.IntVar(&f.SeedsN, "seeds", 1, "number of consecutive seeds per experiment")
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(), "worker pool size for (experiment × seed) jobs")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile at the end of the run to this file")
}

// Seeds returns the seed set selected by the flags: SeedsN consecutive
// seeds starting at Seed.
func (f *RunFlags) Seeds() []int64 { return scenario.Seeds(f.Seed, f.SeedsN) }

// Runner builds a scenario.Runner with the selected pool size.
func (f *RunFlags) Runner(keepPerSeed bool) *scenario.Runner {
	return &scenario.Runner{Parallel: f.Parallel, KeepPerSeed: keepPerSeed}
}

// Run executes specs across the selected seeds on a pool-sized Runner,
// bracketed by any requested profiles — so hot-path profiling of any
// registered experiment is one command:
//
//	figgen -cpuprofile cpu.out -run e5 -seeds 32
func (f *RunFlags) Run(specs []scenario.Spec, keepPerSeed bool) ([]scenario.AggResult, error) {
	stop, err := f.StartProfiles()
	if err != nil {
		return nil, err
	}
	aggs := f.Runner(keepPerSeed).Run(specs, f.Seeds())
	return aggs, stop()
}

// StartProfiles begins CPU profiling when -cpuprofile was given and returns
// a stop function that finalizes it and writes the -memprofile heap
// snapshot. The stop function is always non-nil and safe to call once.
// Frontends that bypass Run (single-seed direct paths) call this pair
// around their own run.
func (f *RunFlags) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // materialize the final live heap before snapshotting
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
