// Package cli holds the flag-parsing and Runner-setup boilerplate shared
// by the experiment frontends (figgen, macbench, hotspotsim), so the seed /
// seeds / backend / parallel / profiling conventions are declared once and
// cannot drift between commands again.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/scenario"
)

// RunFlags is the shared frontend flag set: seeding, execution backend
// selection, worker-pool sizing, shard fault-tolerance knobs, and
// optional CPU/heap profiling of the run.
type RunFlags struct {
	Seed     int64
	SeedsN   int
	Parallel int

	Backend  string // local | shard | cached
	Workers  int    // shard: worker subprocess count
	CacheDir string // cached: cache root directory
	Worker   bool   // internal: this process is a shard worker

	// Shard supervision knobs (see scenario.FaultPolicy) and the
	// fault-injection schedule exported to workers (see scenario.ParseChaos).
	MaxRetries     int
	ChunkTimeout   time.Duration
	RestartBackoff time.Duration
	DegradeLocal   bool
	Chaos          string

	CPUProfile string
	MemProfile string

	// LastRun is the summary of the most recent Run call: backend counters
	// frontends print after their tables. Nil fields mean the backend keeps
	// no such counters.
	LastRun RunSummary
}

// RunSummary carries the structured counters a Run left behind.
type RunSummary struct {
	Cache *scenario.CacheStats  // cached backend: hit/miss/write-error counters
	Shard *scenario.ShardHealth // shard backend: per-worker health + retry counters
}

// Register installs the shared flags on fs with the repository-wide
// defaults (seed 1, one seed, the in-process local backend with NumCPU
// workers, the default fault policy, no chaos, no profiling).
func (f *RunFlags) Register(fs *flag.FlagSet) {
	def := scenario.DefaultFaultPolicy()
	fs.Int64Var(&f.Seed, "seed", 1, "base simulation seed")
	fs.IntVar(&f.SeedsN, "seeds", 1, "number of consecutive seeds per experiment")
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(), "worker pool size for (experiment × seed) jobs")
	fs.StringVar(&f.Backend, "backend", "local", "execution backend: local | shard | cached (see EXPERIMENTS.md)")
	fs.IntVar(&f.Workers, "workers", runtime.NumCPU(), "worker subprocess count for -backend shard")
	fs.StringVar(&f.CacheDir, "cache-dir", ".repro-cache", "result cache directory for -backend cached")
	fs.BoolVar(&f.Worker, "worker", false, "internal: serve as a shard worker over stdin/stdout")
	fs.IntVar(&f.MaxRetries, "max-retries", def.MaxRetries, "shard: reassignments of a failed seed chunk before quarantine")
	fs.DurationVar(&f.ChunkTimeout, "chunk-timeout", def.ChunkTimeout, "shard: deadline per leased seed chunk (0 disables)")
	fs.DurationVar(&f.RestartBackoff, "restart-backoff", def.RestartBackoff, "shard: base worker restart backoff (exponential, jittered)")
	fs.BoolVar(&f.DegradeLocal, "degrade-local", def.DegradeToLocal, "shard: run exhausted chunks in-process instead of failing the run")
	fs.StringVar(&f.Chaos, "chaos", "", "shard: fault-injection schedule for workers, e.g. \"crash-after=2,gens=2\" (see EXPERIMENTS.md)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile at the end of the run to this file")
}

// Seeds returns the seed set selected by the flags: SeedsN consecutive
// seeds starting at Seed.
func (f *RunFlags) Seeds() []int64 { return scenario.Seeds(f.Seed, f.SeedsN) }

// Executor builds the execution backend selected by -backend. The caller
// owns the result; Run does the close-and-report bookkeeping, so frontends
// normally never call this directly.
func (f *RunFlags) Executor() (scenario.Executor, error) {
	if f.Chaos != "" {
		if f.Backend != "shard" {
			return nil, fmt.Errorf("-chaos requires -backend shard (got %q)", f.Backend)
		}
		if _, err := scenario.ParseChaos(f.Chaos, 0); err != nil {
			return nil, err
		}
	}
	switch f.Backend {
	case "", "local":
		return &scenario.Local{Parallel: f.Parallel}, nil
	case "shard":
		return &scenario.Shard{
			Workers: f.Workers,
			Chaos:   f.Chaos,
			Policy:  f.faultPolicy(),
		}, nil
	case "cached":
		return &scenario.Cache{Inner: &scenario.Local{Parallel: f.Parallel}, Dir: f.CacheDir}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want local, shard or cached)", f.Backend)
	}
}

// faultPolicy maps the flag values onto a FaultPolicy. Flags are literal —
// "-max-retries 0" means zero retries and "-chunk-timeout 0" means no
// deadline — so zero flag values become the policy's explicit negative
// "disabled" encoding rather than its zero-means-default one.
func (f *RunFlags) faultPolicy() scenario.FaultPolicy {
	p := scenario.FaultPolicy{
		MaxRetries:     f.MaxRetries,
		ChunkTimeout:   f.ChunkTimeout,
		RestartBackoff: f.RestartBackoff,
		DegradeToLocal: f.DegradeLocal,
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = -1
	}
	if p.ChunkTimeout == 0 {
		p.ChunkTimeout = -1
	}
	if p.RestartBackoff == 0 {
		p.RestartBackoff = -1
	}
	return p
}

// ServeWorker runs the shard worker protocol over this process's
// stdin/stdout. Frontends call it (before doing anything else with their
// parsed flags) when -worker is set; extra specs let commands that build
// ad-hoc flag-parameterized specs make them resolvable by name.
func (f *RunFlags) ServeWorker(extra ...scenario.Spec) error {
	return scenario.ServeWorker(os.Stdin, os.Stdout, extra...)
}

// Runner builds a scenario.Runner on the given backend.
func (f *RunFlags) Runner(exec scenario.Executor, keepPerSeed bool) *scenario.Runner {
	return &scenario.Runner{Parallel: f.Parallel, KeepPerSeed: keepPerSeed, Executor: exec}
}

// Run executes specs across the selected seeds on the selected backend,
// bracketed by any requested profiles — so hot-path profiling of any
// registered experiment is one command:
//
//	figgen -cpuprofile cpu.out -run e5 -seeds 32
//
// Backend resources (shard worker subprocesses) are released before Run
// returns, and backend counters are reported to stderr — a caching
// backend's hit/miss/write-error line, a shard backend's supervision
// health block — while stdout stays parseable (-json). The same counters
// land in LastRun for frontends that print a run summary. CI asserts on
// both.
func (f *RunFlags) Run(specs []scenario.Spec, keepPerSeed bool) ([]scenario.AggResult, error) {
	exec, err := f.Executor()
	if err != nil {
		return nil, err
	}
	stop, err := f.StartProfiles()
	if err != nil {
		return nil, err
	}
	aggs, runErr := f.Runner(exec, keepPerSeed).Run(specs, f.Seeds())
	if c, ok := exec.(io.Closer); ok {
		if err := c.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	f.LastRun = RunSummary{}
	switch e := exec.(type) {
	case *scenario.Cache:
		stats := e.Stats()
		f.LastRun.Cache = &stats
		fmt.Fprintln(os.Stderr, stats)
	case *scenario.Shard:
		health := e.Health()
		f.LastRun.Shard = &health
		fmt.Fprintln(os.Stderr, health.Summary())
	}
	if runErr != nil {
		stop()
		return nil, runErr
	}
	return aggs, stop()
}

// StartProfiles begins CPU profiling when -cpuprofile was given and returns
// a stop function that finalizes it and writes the -memprofile heap
// snapshot. The stop function is always non-nil and safe to call once.
// Frontends that bypass Run (single-seed direct paths) call this pair
// around their own run.
func (f *RunFlags) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // materialize the final live heap before snapshotting
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
