// Package cli holds the flag-parsing and Runner-setup boilerplate shared
// by the experiment frontends (figgen, macbench, hotspotsim), so the seed /
// seeds / backend / parallel / profiling conventions are declared once and
// cannot drift between commands again.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// RunFlags is the shared frontend flag set: seeding, execution backend
// selection, worker-pool sizing, shard fault-tolerance knobs, and
// optional CPU/heap profiling of the run.
type RunFlags struct {
	Seed     int64
	SeedsN   int
	Parallel int

	Backend    string // local | shard | cached
	Workers    int    // shard: worker subprocess count
	CacheDir   string // cached: cache root directory
	Worker     bool   // internal: this process is a shard worker
	Addrs      string // shard: comma-separated remote TCP worker addresses
	Serve      string // internal: serve as a TCP shard worker on this address
	Store      string // cached: remote result store address
	ServeStore string // serve the shared result store on this address
	HealthJSON string // write structured backend health counters here after a run

	// Shard supervision knobs (see scenario.FaultPolicy) and the
	// fault-injection schedule exported to workers (see scenario.ParseChaos).
	MaxRetries     int
	ChunkTimeout   time.Duration
	RestartBackoff time.Duration
	DegradeLocal   bool
	ChunkSeeds     int
	Window         int
	DialTimeout    time.Duration
	FrameTimeout   time.Duration
	Chaos          string

	// Tuning, when non-empty, forces this kernel tuning (a sim.Tuning key
	// such as "ts8-wb10-cd64-wmp0", or "default") onto every selected
	// experiment that accepts one, overriding the per-spec pins. Tunings
	// are order-invisible, so the override can change only the wall clock —
	// which is the point: it is how the autotune CI smoke job proves a
	// searched winner's output is byte-identical to the default's.
	Tuning string

	CPUProfile string
	MemProfile string

	// LastRun is the summary of the most recent Run call: backend counters
	// frontends print after their tables. Nil fields mean the backend keeps
	// no such counters.
	LastRun RunSummary

	fs *flag.FlagSet // the set the flags were registered on; nil before Register
}

// RunSummary carries the structured counters a Run left behind. It is
// also the -health-json document shape.
type RunSummary struct {
	Cache *scenario.CacheStats  `json:"cache,omitempty"` // cached backend: hit/miss/write-error counters
	Shard *scenario.ShardHealth `json:"shard,omitempty"` // shard backend: per-worker health + retry counters
}

// Register installs the shared flags on fs with the repository-wide
// defaults (seed 1, one seed, the in-process local backend with NumCPU
// workers, the default fault policy, no chaos, no profiling).
func (f *RunFlags) Register(fs *flag.FlagSet) {
	f.fs = fs
	def := scenario.DefaultFaultPolicy()
	fs.Int64Var(&f.Seed, "seed", 1, "base simulation seed")
	fs.IntVar(&f.SeedsN, "seeds", 1, "number of consecutive seeds per experiment")
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(), "worker pool size for (experiment × seed) jobs")
	fs.StringVar(&f.Backend, "backend", "local", "execution backend: local | shard | cached (see EXPERIMENTS.md)")
	fs.IntVar(&f.Workers, "workers", runtime.NumCPU(), "worker subprocess count for -backend shard")
	fs.StringVar(&f.CacheDir, "cache-dir", ".repro-cache", "result cache directory for -backend cached")
	fs.BoolVar(&f.Worker, "worker", false, "internal: serve as a shard worker over stdin/stdout")
	fs.StringVar(&f.Addrs, "addrs", "", "shard: comma-separated remote TCP worker addresses (host:port); empty means local subprocesses")
	fs.StringVar(&f.Serve, "serve", "", "serve as a TCP shard worker on this address (host:port) until killed")
	fs.StringVar(&f.Store, "store", "", "cached: remote result store address (host:port); -cache-dir becomes the outage fallback")
	fs.StringVar(&f.ServeStore, "serve-store", "", "serve the shared result store on this address, backed by -cache-dir")
	fs.StringVar(&f.HealthJSON, "health-json", "", "write the run's backend health counters as JSON to this file (\"-\" for stdout)")
	fs.IntVar(&f.MaxRetries, "max-retries", def.MaxRetries, "shard: reassignments of a failed seed chunk before quarantine")
	fs.DurationVar(&f.ChunkTimeout, "chunk-timeout", def.ChunkTimeout, "shard: deadline per leased seed chunk (0 disables)")
	fs.DurationVar(&f.RestartBackoff, "restart-backoff", def.RestartBackoff, "shard: base worker restart backoff (exponential, jittered)")
	fs.BoolVar(&f.DegradeLocal, "degrade-local", def.DegradeToLocal, "shard: run exhausted chunks in-process instead of failing the run")
	fs.IntVar(&f.ChunkSeeds, "chunk-seeds", def.ChunkSeeds, "shard: seeds per lease (one request frame covers the whole chunk)")
	fs.IntVar(&f.Window, "window", def.Window, "shard: leases pipelined per worker connection (1 disables pipelining)")
	fs.DurationVar(&f.DialTimeout, "dial-timeout", def.DialTimeout, "shard: TCP worker dial timeout for -addrs (0 disables)")
	fs.DurationVar(&f.FrameTimeout, "frame-timeout", def.FrameTimeout, "shard: per-frame read deadline on TCP worker connections (0 disables)")
	fs.StringVar(&f.Chaos, "chaos", "", "shard/serve: fault-injection schedule for workers, e.g. \"crash-after=2,gens=2\" (see EXPERIMENTS.md)")
	fs.StringVar(&f.Tuning, "tuning", "", "force this kernel tuning key (e.g. ts8-wb10-cd64-wmp0, or \"default\") on every tunable experiment; order-invisible, changes wall clock only")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile at the end of the run to this file")
}

// Seeds returns the seed set selected by the flags: SeedsN consecutive
// seeds starting at Seed.
func (f *RunFlags) Seeds() []int64 { return scenario.Seeds(f.Seed, f.SeedsN) }

// Executor builds the execution backend selected by -backend. The caller
// owns the result; Run does the close-and-report bookkeeping, so frontends
// normally never call this directly.
func (f *RunFlags) Executor() (scenario.Executor, error) {
	if f.Chaos != "" {
		if f.Backend != "shard" {
			return nil, fmt.Errorf("-chaos requires -backend shard (got %q)", f.Backend)
		}
		if f.Addrs != "" {
			return nil, fmt.Errorf("-chaos cannot reach remote workers; pass it to the -serve process instead")
		}
		if _, err := scenario.ParseChaos(f.Chaos, 0); err != nil {
			return nil, err
		}
	}
	if f.Addrs != "" && f.Backend != "shard" {
		return nil, fmt.Errorf("-addrs requires -backend shard (got %q)", f.Backend)
	}
	if f.Store != "" && f.Backend != "cached" {
		return nil, fmt.Errorf("-store requires -backend cached (got %q)", f.Backend)
	}
	switch f.Backend {
	case "", "local":
		return &scenario.Local{Parallel: f.Parallel}, nil
	case "shard":
		sh := &scenario.Shard{
			Workers: f.Workers,
			Chaos:   f.Chaos,
			Policy:  f.faultPolicy(),
		}
		if f.Addrs != "" {
			sh.Addrs = strings.Split(f.Addrs, ",")
			if !f.flagSet("workers") {
				sh.Workers = 0 // default the slot count to the fleet size, not NumCPU
			}
		}
		return sh, nil
	case "cached":
		return &scenario.Cache{Inner: &scenario.Local{Parallel: f.Parallel}, Dir: f.CacheDir, Addr: f.Store}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want local, shard or cached)", f.Backend)
	}
}

// faultPolicy maps the flag values onto a FaultPolicy. Flags are literal —
// "-max-retries 0" means zero retries and "-chunk-timeout 0" means no
// deadline — so zero flag values become the policy's explicit negative
// "disabled" encoding rather than its zero-means-default one.
func (f *RunFlags) faultPolicy() scenario.FaultPolicy {
	p := scenario.FaultPolicy{
		MaxRetries:     f.MaxRetries,
		ChunkTimeout:   f.ChunkTimeout,
		RestartBackoff: f.RestartBackoff,
		DegradeToLocal: f.DegradeLocal,
		ChunkSeeds:     f.ChunkSeeds,
		Window:         f.Window,
		DialTimeout:    f.DialTimeout,
		FrameTimeout:   f.FrameTimeout,
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = -1
	}
	if p.ChunkTimeout == 0 {
		p.ChunkTimeout = -1
	}
	if p.RestartBackoff == 0 {
		p.RestartBackoff = -1
	}
	if p.DialTimeout == 0 {
		p.DialTimeout = -1
	}
	if p.FrameTimeout == 0 {
		p.FrameTimeout = -1
	}
	if p.Window == 0 {
		p.Window = -1 // "-window 0" means no pipelining, like "-window 1"
	}
	return p
}

// flagSet reports whether the named flag was explicitly set on the
// command line.
func (f *RunFlags) flagSet(name string) bool {
	if f.fs == nil {
		return false
	}
	set := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// ServeWorker runs the shard worker protocol over this process's
// stdin/stdout. Frontends call it (before doing anything else with their
// parsed flags) when -worker is set; extra specs let commands that build
// ad-hoc flag-parameterized specs make them resolvable by name.
func (f *RunFlags) ServeWorker(extra ...scenario.Spec) error {
	return scenario.ServeWorker(os.Stdin, os.Stdout, extra...)
}

// ServeMode runs whichever server mode the flags request — -worker (stdio
// shard worker), -serve (TCP shard worker), -serve-store (shared result
// store on -cache-dir) — and reports whether one ran. Frontends call it
// first thing after flag parsing; when it reports true the process was a
// server and must exit with the returned error.
func (f *RunFlags) ServeMode(extra ...scenario.Spec) (bool, error) {
	switch {
	case f.Worker:
		return true, f.ServeWorker(extra...)
	case f.Serve != "":
		return true, scenario.ListenAndServeNet(f.Serve, scenario.NetServeOptions{
			ChaosSpec: f.Chaos,
			Extra:     extra,
		})
	case f.ServeStore != "":
		return true, scenario.ListenAndServeStore(f.ServeStore, f.CacheDir)
	}
	return false, nil
}

// Runner builds a scenario.Runner on the given backend.
func (f *RunFlags) Runner(exec scenario.Executor, keepPerSeed bool) *scenario.Runner {
	return &scenario.Runner{Parallel: f.Parallel, KeepPerSeed: keepPerSeed, Executor: exec}
}

// Run executes specs across the selected seeds on the selected backend,
// bracketed by any requested profiles — so hot-path profiling of any
// registered experiment is one command:
//
//	figgen -cpuprofile cpu.out -run e5 -seeds 32
//
// Backend resources (shard worker subprocesses) are released before Run
// returns, and backend counters are reported to stderr — a caching
// backend's hit/miss/write-error line, a shard backend's supervision
// health block — while stdout stays parseable (-json). The same counters
// land in LastRun for frontends that print a run summary. CI asserts on
// both.
func (f *RunFlags) Run(specs []scenario.Spec, keepPerSeed bool) ([]scenario.AggResult, error) {
	specs, err := f.applyTuning(specs)
	if err != nil {
		return nil, err
	}
	exec, err := f.Executor()
	if err != nil {
		return nil, err
	}
	stop, err := f.StartProfiles()
	if err != nil {
		return nil, err
	}
	aggs, runErr := f.Runner(exec, keepPerSeed).Run(specs, f.Seeds())
	if c, ok := exec.(io.Closer); ok {
		if err := c.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	f.LastRun = RunSummary{}
	switch e := exec.(type) {
	case *scenario.Cache:
		stats := e.Stats()
		f.LastRun.Cache = &stats
		fmt.Fprintln(os.Stderr, stats)
	case *scenario.Shard:
		health := e.Health()
		f.LastRun.Shard = &health
		fmt.Fprintln(os.Stderr, health.Summary())
	}
	if f.HealthJSON != "" {
		if err := f.writeHealthJSON(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		stop()
		return nil, runErr
	}
	return aggs, stop()
}

// applyTuning rewrites the specs' kernel tunings when -tuning is set,
// leaving the caller's slice untouched. Only the local process sees the
// override — a remote shard worker runs its own registry's pins — which is
// fine because tunings cannot change a single output bit either way.
func (f *RunFlags) applyTuning(specs []scenario.Spec) ([]scenario.Spec, error) {
	if f.Tuning == "" {
		return specs, nil
	}
	tun, err := sim.ParseTuningKey(f.Tuning)
	if err != nil {
		return nil, fmt.Errorf("-tuning: %w", err)
	}
	out := append([]scenario.Spec(nil), specs...)
	for i := range out {
		if out[i].RunTuned != nil {
			out[i].Tuning = &tun
		}
	}
	return out, nil
}

// writeHealthJSON emits LastRun's structured counters as JSON — the
// machine-readable twin of the stderr health block, so CI asserts on
// counters instead of grepping log text.
func (f *RunFlags) writeHealthJSON() error {
	data, err := json.MarshalIndent(f.LastRun, "", "  ")
	if err != nil {
		return fmt.Errorf("health-json: %w", err)
	}
	data = append(data, '\n')
	if f.HealthJSON == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(f.HealthJSON, data, 0o644); err != nil {
		return fmt.Errorf("health-json: %w", err)
	}
	return nil
}

// StartProfiles begins CPU profiling when -cpuprofile was given and returns
// a stop function that finalizes it and writes the -memprofile heap
// snapshot. The stop function is always non-nil and safe to call once.
// Frontends that bypass Run (single-seed direct paths) call this pair
// around their own run.
func (f *RunFlags) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // materialize the final live heap before snapshotting
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
