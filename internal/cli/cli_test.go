package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

func testSpec() scenario.Spec {
	return scenario.Spec{
		Name: "t", Desc: "test spec",
		Run: func(seed int64) scenario.Result {
			return scenario.Result{Name: "t", Values: map[string]float64{"seed": float64(seed)}}
		},
	}
}

func TestRegisterDefaults(t *testing.T) {
	var f RunFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-seed", "7", "-seeds", "3", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if f.Seed != 7 || f.SeedsN != 3 || f.Parallel != 2 {
		t.Fatalf("parsed flags %+v", f)
	}
	seeds := f.Seeds()
	if len(seeds) != 3 || seeds[0] != 7 || seeds[2] != 9 {
		t.Fatalf("Seeds() = %v, want [7 8 9]", seeds)
	}
}

func TestRunAggregatesAcrossSeeds(t *testing.T) {
	f := RunFlags{Seed: 1, SeedsN: 4, Parallel: 2}
	aggs, err := f.Run([]scenario.Spec{testSpec()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || len(aggs[0].Metrics) != 1 {
		t.Fatalf("unexpected aggregate shape: %+v", aggs)
	}
	if m := aggs[0].Metrics[0]; m.N != 4 || m.Mean != 2.5 {
		t.Fatalf("seed metric = %+v, want mean 2.5 over 4 seeds", m)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := RunFlags{
		Seed: 1, SeedsN: 2, Parallel: 1,
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
	}
	if _, err := f.Run([]scenario.Spec{testSpec()}, false); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesErrorOnBadPath(t *testing.T) {
	f := RunFlags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.StartProfiles(); err == nil {
		t.Fatal("StartProfiles accepted an unwritable path")
	}
}
