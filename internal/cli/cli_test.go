package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
)

func testSpec() scenario.Spec {
	return scenario.Spec{
		Name: "t", Desc: "test spec",
		Run: func(seed int64) scenario.Result {
			return scenario.Result{Name: "t", Values: map[string]float64{"seed": float64(seed)}}
		},
	}
}

func TestRegisterDefaults(t *testing.T) {
	var f RunFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-seed", "7", "-seeds", "3", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if f.Seed != 7 || f.SeedsN != 3 || f.Parallel != 2 {
		t.Fatalf("parsed flags %+v", f)
	}
	if f.Backend != "local" || f.Workers < 1 || f.CacheDir != ".repro-cache" || f.Worker {
		t.Fatalf("backend defaults wrong: %+v", f)
	}
	def := scenario.DefaultFaultPolicy()
	if f.MaxRetries != def.MaxRetries || f.ChunkTimeout != def.ChunkTimeout ||
		f.RestartBackoff != def.RestartBackoff || f.DegradeLocal != def.DegradeToLocal || f.Chaos != "" {
		t.Fatalf("fault-policy defaults wrong: %+v", f)
	}
	if f.ChunkSeeds != def.ChunkSeeds || f.Window != def.Window {
		t.Fatalf("batching defaults wrong: %+v (want ChunkSeeds %d, Window %d)", f, def.ChunkSeeds, def.Window)
	}
	seeds := f.Seeds()
	if len(seeds) != 3 || seeds[0] != 7 || seeds[2] != 9 {
		t.Fatalf("Seeds() = %v, want [7 8 9]", seeds)
	}
}

func TestChaosFlagValidation(t *testing.T) {
	// -chaos needs the shard backend.
	f := RunFlags{Backend: "local", Chaos: "crash-after=1"}
	if _, err := f.Executor(); err == nil {
		t.Error("-chaos with local backend accepted")
	}
	// A malformed schedule fails at Executor construction, not in a worker.
	f = RunFlags{Backend: "shard", Workers: 1, Chaos: "no-such-key=1"}
	if _, err := f.Executor(); err == nil {
		t.Error("malformed -chaos schedule accepted")
	}
	f = RunFlags{Backend: "shard", Workers: 1, Chaos: "crash-after=1,gens=1"}
	if _, err := f.Executor(); err != nil {
		t.Errorf("valid -chaos schedule rejected: %v", err)
	}
}

// TestFaultPolicyFlagsAreLiteral pins the flag→policy mapping: zero flag
// values mean "disabled", not "use the default" (the policy's zero-means-
// default convention is for programmatic construction only).
func TestFaultPolicyFlagsAreLiteral(t *testing.T) {
	f := RunFlags{MaxRetries: 0, ChunkTimeout: 0, RestartBackoff: 0, DegradeLocal: false}
	p := f.faultPolicy()
	if p.MaxRetries >= 0 || p.ChunkTimeout >= 0 || p.RestartBackoff >= 0 || p.DegradeToLocal {
		t.Errorf("zero flags should map to the disabled encoding: %+v", p)
	}
	if p.DialTimeout >= 0 || p.FrameTimeout >= 0 {
		t.Errorf("zero timeout flags should map to the disabled encoding: %+v", p)
	}
	if p.Window >= 0 {
		t.Errorf("\"-window 0\" should map to the disabled (no pipelining) encoding: %+v", p)
	}
	f = RunFlags{
		MaxRetries: 5, ChunkTimeout: time.Minute, RestartBackoff: time.Second, DegradeLocal: true,
		ChunkSeeds: 16, Window: 8,
		DialTimeout: 2 * time.Second, FrameTimeout: 3 * time.Second,
	}
	p = f.faultPolicy()
	if p.MaxRetries != 5 || p.ChunkTimeout != time.Minute || p.RestartBackoff != time.Second || !p.DegradeToLocal ||
		p.ChunkSeeds != 16 || p.Window != 8 ||
		p.DialTimeout != 2*time.Second || p.FrameTimeout != 3*time.Second {
		t.Errorf("non-zero flags should pass through: %+v", p)
	}
}

// TestDistributedFlagValidation pins the cross-flag rules for the TCP
// transport: -addrs needs the shard backend, -store needs the cached
// backend, and -chaos cannot reach a remote fleet (it belongs on the
// -serve process).
func TestDistributedFlagValidation(t *testing.T) {
	f := RunFlags{Backend: "local", Addrs: "127.0.0.1:1"}
	if _, err := f.Executor(); err == nil {
		t.Error("-addrs with local backend accepted")
	}
	f = RunFlags{Backend: "local", Store: "127.0.0.1:1"}
	if _, err := f.Executor(); err == nil {
		t.Error("-store with local backend accepted")
	}
	f = RunFlags{Backend: "shard", Workers: 1, Addrs: "127.0.0.1:1", Chaos: "crash-after=1"}
	if _, err := f.Executor(); err == nil {
		t.Error("-chaos with -addrs accepted")
	}

	f = RunFlags{Backend: "shard", Workers: 2, Addrs: "10.0.0.1:7401,10.0.0.2:7401"}
	exec, err := f.Executor()
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := exec.(*scenario.Shard)
	if !ok {
		t.Fatalf("-addrs built %T, want *scenario.Shard", exec)
	}
	if len(sh.Addrs) != 2 || sh.Addrs[0] != "10.0.0.1:7401" {
		t.Errorf("Addrs = %v", sh.Addrs)
	}

	// Without an explicit -workers the slot count defaults to the fleet
	// size (Workers 0 → one slot per address), not NumCPU.
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var g RunFlags
	g.Register(fs)
	if err := fs.Parse([]string{"-backend", "shard", "-addrs", "10.0.0.1:7401,10.0.0.2:7401"}); err != nil {
		t.Fatal(err)
	}
	exec, err = g.Executor()
	if err != nil {
		t.Fatal(err)
	}
	if sh := exec.(*scenario.Shard); sh.Workers != 0 {
		t.Errorf("implicit -workers should defer to fleet size, got Workers=%d", sh.Workers)
	}

	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	var h RunFlags
	h.Register(fs)
	if err := fs.Parse([]string{"-backend", "shard", "-addrs", "10.0.0.1:7401", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
	exec, err = h.Executor()
	if err != nil {
		t.Fatal(err)
	}
	if sh := exec.(*scenario.Shard); sh.Workers != 4 {
		t.Errorf("explicit -workers should win, got Workers=%d", sh.Workers)
	}
}

func TestBackendSelection(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var f RunFlags
	f.Register(fs)
	if err := fs.Parse([]string{"-backend", "shard", "-workers", "3", "-cache-dir", "/tmp/c", "-worker"}); err != nil {
		t.Fatal(err)
	}
	if f.Backend != "shard" || f.Workers != 3 || f.CacheDir != "/tmp/c" || !f.Worker {
		t.Fatalf("parsed flags %+v", f)
	}

	for backend, want := range map[string]any{
		"":       &scenario.Local{},
		"local":  &scenario.Local{},
		"shard":  &scenario.Shard{},
		"cached": &scenario.Cache{},
	} {
		g := RunFlags{Backend: backend, Parallel: 2, Workers: 2, CacheDir: t.TempDir()}
		exec, err := g.Executor()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		if gotT, wantT := fmt.Sprintf("%T", exec), fmt.Sprintf("%T", want); gotT != wantT {
			t.Errorf("backend %q built %s, want %s", backend, gotT, wantT)
		}
	}
	if _, err := (&RunFlags{Backend: "quantum"}).Executor(); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestRunCachedBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := RunFlags{Seed: 1, SeedsN: 3, Parallel: 2, Backend: "cached", CacheDir: dir}
	cold, err := f.Run([]scenario.Spec{testSpec()}, false)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := f.Run([]scenario.Spec{testSpec()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 1 || len(warm) != 1 {
		t.Fatalf("aggregate shapes: %d / %d", len(cold), len(warm))
	}
	if !reflect.DeepEqual(cold[0].Metrics, warm[0].Metrics) {
		t.Errorf("warm run diverged:\ncold %+v\nwarm %+v", cold[0].Metrics, warm[0].Metrics)
	}
}

func TestRunAggregatesAcrossSeeds(t *testing.T) {
	f := RunFlags{Seed: 1, SeedsN: 4, Parallel: 2}
	aggs, err := f.Run([]scenario.Spec{testSpec()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || len(aggs[0].Metrics) != 1 {
		t.Fatalf("unexpected aggregate shape: %+v", aggs)
	}
	if m := aggs[0].Metrics[0]; m.N != 4 || m.Mean != 2.5 {
		t.Fatalf("seed metric = %+v, want mean 2.5 over 4 seeds", m)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := RunFlags{
		Seed: 1, SeedsN: 2, Parallel: 1,
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
	}
	if _, err := f.Run([]scenario.Spec{testSpec()}, false); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesErrorOnBadPath(t *testing.T) {
	f := RunFlags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.StartProfiles(); err == nil {
		t.Fatal("StartProfiles accepted an unwritable path")
	}
}
