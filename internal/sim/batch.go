package sim

import "math/bits"

// Batch groups events that share a lifecycle — one station's contention
// timers, one transfer's in-flight packets, one beacon cycle's wakeups — so
// the owner can schedule them as a group and cancel whatever is still
// pending in one call. Scheduling through a Batch is exactly Simulator.At /
// Simulator.Schedule (same sequence numbers, same firing order, same
// handles); the batch only records membership, so adopting it never changes
// a simulation's event order.
//
// Cancellation cost is O(1) amortized per member: CancelAll walks the
// member list and lazily cancels each pending event (an O(1) mark), and the
// list is reused across cycles, so a steady schedule/cancel loop performs
// no allocations. Batch is not safe for concurrent use, like the Simulator
// it feeds.
type Batch struct {
	s       *Simulator
	handles []Handle
	slots   int // the first slots entries are fixed, slot-addressed members
}

// NewBatch creates a batch expecting about n concurrently pending events.
// n only sizes the initial reservation; the batch grows as needed.
func (s *Simulator) NewBatch(n int) *Batch {
	b := &Batch{s: s}
	if n > 0 {
		b.Reserve(n)
	}
	return b
}

// NewSlotBatch creates a batch of n fixed, index-addressed slots — the
// "reserve N slots" form for owners whose event group has a known shape
// (a station's DIFS and slot-countdown timers, a client's wakeup and doze
// poll). Slot scheduling is a single handle store: no append, no
// compaction, no growth — the cheapest possible group membership.
// AtSlot/ScheduleSlot address the slots; At/Schedule still append dynamic
// members behind them.
func (s *Simulator) NewSlotBatch(n int) *Batch {
	s.Reserve(n)
	return &Batch{s: s, handles: make([]Handle, n), slots: n}
}

// AtSlot schedules fn at absolute time t in the given slot, cancelling any
// event still pending there (a slot behaves like Timer: one occupant).
func (b *Batch) AtSlot(slot int, t Time, fn func()) Handle {
	b.s.Cancel(b.handles[slot])
	h := b.s.At(t, fn)
	b.handles[slot] = h
	return h
}

// ScheduleSlot schedules fn after delay in the given slot, cancelling any
// event still pending there.
func (b *Batch) ScheduleSlot(slot int, delay Time, fn func()) Handle {
	b.s.Cancel(b.handles[slot])
	h := b.s.Schedule(delay, fn)
	b.handles[slot] = h
	return h
}

// Slot returns the handle currently occupying a slot (possibly inert).
func (b *Batch) Slot(slot int) Handle { return b.handles[slot] }

// Reserve ensures capacity for n more members without reallocation, and
// grows the simulator's event slab alongside so the scheduling hot path
// stays allocation-free even on first use.
func (b *Batch) Reserve(n int) {
	if free := cap(b.handles) - len(b.handles); free < n {
		grown := make([]Handle, len(b.handles), nextPow2(len(b.handles)+n))
		copy(grown, b.handles)
		b.handles = grown
	}
	b.s.Reserve(n)
}

// nextPow2 rounds n up to the next power of two, so repeated small
// reservations grow a slice geometrically — O(log n) copies total —
// instead of copying the whole backing array on every call.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Reserve grows the event slab's spare capacity to at least n slots so a
// coming burst of schedules will not reallocate it. Recycled free-list
// slots count toward the guarantee, so repeated reservations on a warmed
// simulator (one transfer per adaptive-ARQ epoch, say) are no-ops.
// Callers that only need the capacity guarantee use this directly;
// batches layer group membership on top.
//
// Capacity is rounded up to the next power of two: a model attaching many
// small groups one at a time (metro-scale station churn, one Reserve per
// association) performs O(log n) slab copies across its lifetime instead of
// one full copy per Reserve.
func (s *Simulator) Reserve(n int) {
	need := n - s.nFree // append capacity needed beyond recycled slots
	if need > 0 && cap(s.slab)-len(s.slab) < need {
		grown := make([]event, len(s.slab), nextPow2(len(s.slab)+need))
		copy(grown, s.slab)
		s.slab = grown
	}
}

// At schedules fn at absolute time t as a member of the batch.
func (b *Batch) At(t Time, fn func()) Handle {
	h := b.s.At(t, fn)
	b.add(h)
	return h
}

// Schedule schedules fn after delay as a member of the batch.
func (b *Batch) Schedule(delay Time, fn func()) Handle {
	h := b.s.Schedule(delay, fn)
	b.add(h)
	return h
}

// add records a member, compacting fired/cancelled members out of the list
// when it is about to grow — so the list length tracks the number of
// concurrently pending events, not the number ever scheduled. The compact
// pass lives out of line to keep add itself inlineable into the
// At/Schedule wrappers.
func (b *Batch) add(h Handle) {
	if len(b.handles) == cap(b.handles) {
		b.compact()
	}
	b.handles = append(b.handles, h)
}

// compact drops fired/cancelled dynamic members from the list; fixed slots
// keep their positions.
func (b *Batch) compact() {
	kept := b.handles[:b.slots]
	for _, m := range b.handles[b.slots:] {
		if m.Pending() {
			kept = append(kept, m)
		}
	}
	b.handles = kept
}

// Len returns the number of members still pending.
func (b *Batch) Len() int {
	n := 0
	for _, m := range b.handles {
		if m.Pending() {
			n++
		}
	}
	return n
}

// CancelAll cancels every still-pending member — fixed slots in slot
// order, then dynamic members in scheduling order — and empties the batch
// (slots stay reserved, but vacant). Members that already fired or were
// cancelled individually are skipped (Cancel is a no-op on them).
func (b *Batch) CancelAll() {
	for i, m := range b.handles {
		b.s.Cancel(m)
		if i < b.slots {
			b.handles[i] = Handle{}
		}
	}
	b.handles = b.handles[:b.slots]
}

// Forget empties the batch without cancelling anything: pending members
// keep their own handles and fire normally. Use it when a group's events
// have been handed off to another owner.
func (b *Batch) Forget() {
	for i := 0; i < b.slots; i++ {
		b.handles[i] = Handle{}
	}
	b.handles = b.handles[:b.slots]
}
