// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulated subsystems in this repository (radios, MAC protocols,
// channels, schedulers) are driven by a single Simulator instance. Time is
// represented as an integer count of microseconds so that event ordering is
// exact and runs are bit-reproducible for a given seed.
package sim

import "fmt"

// Time is a simulated instant or duration, measured in microseconds from the
// start of the simulation. Using an integer representation keeps event
// ordering exact across platforms.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulation time. It is used as an
// "infinitely far in the future" sentinel by schedulers and timers.
const MaxTime Time = 1<<63 - 1

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as an integer number of microseconds.
func (t Time) Microseconds() int64 { return int64(t) }

// FromSeconds builds a Time from floating-point seconds, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time {
	if s < 0 {
		return Time(s*float64(Second) - 0.5)
	}
	return Time(s*float64(Second) + 0.5)
}

// String renders the time with a unit that keeps the value readable.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "+inf"
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Millisecond:
		return fmt.Sprintf("%dus", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t < Minute:
		return fmt.Sprintf("%.3fs", t.Seconds())
	default:
		return fmt.Sprintf("%.1fs", t.Seconds())
	}
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
