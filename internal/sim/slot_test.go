package sim

import (
	"testing"
	"unsafe"
)

// TestEventSlotPacked pins the slab slot size: 32 bytes on 64-bit platforms
// (two slots per cache line). The generation/state packing exists for this;
// a field added carelessly would silently cost 25% more slab memory and
// halve the slots per cache line at metro-scale populations.
func TestEventSlotPacked(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("slot size target is specified for 64-bit platforms")
	}
	if got := unsafe.Sizeof(event{}); got != 32 {
		t.Fatalf("event slot is %d bytes, want 32", got)
	}
}

// TestPackedGenerationState exercises the gs packing through a slot's
// lifecycle: generations survive state flips, stale handles go inert, and
// the state constants round-trip through the 2-bit field.
func TestPackedGenerationState(t *testing.T) {
	s := New(1)
	nop := func() {}
	h1 := s.Schedule(Microsecond, nop)
	if !h1.Pending() {
		t.Fatal("fresh handle not pending")
	}
	s.Cancel(h1)
	if !h1.Cancelled() || h1.Pending() {
		t.Fatal("cancelled handle misreports")
	}
	// Reuse the slot many times; each lease must invalidate prior handles.
	prev := h1
	for i := 0; i < 100; i++ {
		h := s.Schedule(Microsecond, nop)
		if h.idx == prev.idx && h.gen == prev.gen {
			t.Fatalf("lease %d: generation not bumped on slot reuse", i)
		}
		if prev.Pending() || prev.Cancelled() {
			t.Fatalf("lease %d: stale handle still answers", i)
		}
		s.Run()
		if !h.lease().isFired() {
			t.Fatalf("lease %d: fired state lost", i)
		}
		prev = h
	}
}

// isFired is a test helper reading the packed state.
func (e *event) isFired() bool { return e.state() == stateFired }

// TestReserveGrowthPattern pins the power-of-two slab growth: n repeated
// small reserves must trigger O(log n) reallocations, not one per call.
// Before the rounding fix, 4096 Reserve(4)+drain cycles on a growing slab
// copied the whole slab on every call — O(n²) bytes moved.
func TestReserveGrowthPattern(t *testing.T) {
	s := New(1)
	nop := func() {}
	caps := map[int]bool{}
	const rounds = 4096
	for i := 0; i < rounds; i++ {
		s.Reserve(4)
		caps[cap(s.slab)] = true
		// Keep the slots occupied so the free list cannot satisfy the next
		// reserve and the slab genuinely has to keep growing.
		for j := 0; j < 4; j++ {
			s.Schedule(Time(i*4+j+1), nop)
		}
	}
	// Every observed capacity must be a power of two, and there must be
	// logarithmically few of them.
	for c := range caps {
		if c&(c-1) != 0 {
			t.Errorf("slab capacity %d is not a power of two", c)
		}
	}
	if len(caps) > 20 {
		t.Errorf("%d distinct slab capacities over %d reserves; want O(log n)", len(caps), rounds)
	}

	// The batch handle list must grow the same way.
	b := s.NewBatch(0)
	bcaps := map[int]bool{}
	for i := 0; i < rounds; i++ {
		b.Reserve(1)
		b.Schedule(Time(rounds*4+i+1), nop)
		bcaps[cap(b.handles)] = true
	}
	for c := range bcaps {
		if c&(c-1) != 0 {
			t.Errorf("batch capacity %d is not a power of two", c)
		}
	}
	if len(bcaps) > 20 {
		t.Errorf("%d distinct batch capacities over %d reserves; want O(log n)", len(bcaps), rounds)
	}
	s.Run()
}

// TestAdaptiveRoutingZeroAlloc extends the zero-allocation guarantee to the
// adaptive WheelMinPending mode: the depth filter is pure integer state, so
// adaptive routing must not cost a single allocation in steady state.
func TestAdaptiveRoutingZeroAlloc(t *testing.T) {
	tun := DefaultTuning()
	tun.WheelMinPending = WheelAdaptive
	s := NewTuned(1, tun)
	nop := func() {}
	for i := 0; i < 256; i++ {
		s.Schedule(Time(i%13+1)*Microsecond, nop)
	}
	s.Run()
	if a := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			s.Schedule(Time(i%13+1)*Microsecond, nop)
		}
		s.Run()
	}); a != 0 {
		t.Errorf("adaptive steady state allocates %v per op, want 0", a)
	}
}

// TestAdaptiveEngagesWheelWhenDense checks the routing policy itself: a
// sparse phase stays off the wheel (no bucket array allocated), a sustained
// dense phase engages it. Policy only — order equivalence is covered by the
// reference-model sweep in model_test.go.
func TestAdaptiveEngagesWheelWhenDense(t *testing.T) {
	tun := DefaultTuning()
	tun.WheelMinPending = WheelAdaptive
	s := NewTuned(1, tun)
	nop := func() {}

	// Sparse phase: one aggregated-process event in flight at a time, with
	// occasional 4-deep bursts. The filter must stay below the threshold
	// and the wheel must never materialize.
	for i := 0; i < 500; i++ {
		s.Schedule(Time(i%7+1)*Microsecond, nop)
		if i%50 == 0 {
			for j := 0; j < 4; j++ {
				s.Schedule(Time(j+2)*Microsecond, nop)
			}
		}
		s.RunUntil(s.Now() + 20*Microsecond)
	}
	if s.wheel != nil {
		t.Fatal("sparse phase materialized the wheel")
	}

	// Dense phase: 64 chains pending at once, sustained. The filter must
	// cross the threshold and route into buckets.
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i%13+1)*Microsecond, nop)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 64; j++ {
			s.Schedule(Time(j%13+1)*Microsecond, nop)
		}
		s.RunUntil(s.Now() + 5*Microsecond)
	}
	if s.wheel == nil {
		t.Fatal("sustained dense phase did not engage the wheel")
	}
	s.Run()
}
