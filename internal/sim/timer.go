package sim

// Timer is a resettable one-shot timer bound to a Simulator. It is the
// building block for MAC timeouts, ARQ retransmission timers and OS-level
// inactivity timeouts: all of those are "fire unless something resets me
// first" patterns.
type Timer struct {
	sim   *Simulator
	fn    func()
	event *Event
}

// NewTimer creates a stopped timer that will invoke fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire after d, cancelling any pending expiry.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.event = t.sim.Schedule(d, func() {
		t.event = nil
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.event = t.sim.At(at, func() {
		t.event = nil
		t.fn()
	})
}

// Stop cancels the pending expiry, if any. It reports whether a pending
// expiry was actually cancelled.
func (t *Timer) Stop() bool {
	if t.event == nil {
		return false
	}
	t.sim.Cancel(t.event)
	t.event = nil
	return true
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.event != nil }

// Deadline returns the pending expiry instant, or MaxTime when stopped.
func (t *Timer) Deadline() Time {
	if t.event == nil {
		return MaxTime
	}
	return t.event.At()
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
// The callback runs first at start+period.
type Ticker struct {
	sim    *Simulator
	period Time
	fn     func()
	event  *Event
	live   bool
}

// NewTicker creates and starts a ticker with the given period.
func NewTicker(s *Simulator, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if fn == nil {
		panic("sim: nil ticker function")
	}
	t := &Ticker{sim: s, period: period, fn: fn, live: true}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.event = t.sim.Schedule(t.period, func() {
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	})
}

// Stop halts the ticker; no further callbacks run.
func (t *Ticker) Stop() {
	if !t.live {
		return
	}
	t.live = false
	t.sim.Cancel(t.event)
	t.event = nil
}
