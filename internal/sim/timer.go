package sim

// Timer is a resettable one-shot timer bound to a Simulator. It is the
// building block for MAC timeouts, ARQ retransmission timers and OS-level
// inactivity timeouts: all of those are "fire unless something resets me
// first" patterns.
//
// The expiry closure is created once at construction; Reset rearms the
// timer by lazily cancelling the previous pooled event and leasing a new
// one, so an arbitrarily long reset storm performs no allocations.
type Timer struct {
	sim   *Simulator
	fn    func()
	fire  func() // hoisted expiry thunk, created once in NewTimer
	event Handle
}

// NewTimer creates a stopped timer that will invoke fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	t := &Timer{sim: s, fn: fn}
	t.fire = func() {
		t.event = Handle{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after d, cancelling any pending expiry.
func (t *Timer) Reset(d Time) {
	t.sim.Cancel(t.event)
	t.event = t.sim.Schedule(d, t.fire)
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.sim.Cancel(t.event)
	t.event = t.sim.At(at, t.fire)
}

// Stop cancels the pending expiry, if any. It reports whether a pending
// expiry was actually cancelled.
func (t *Timer) Stop() bool {
	armed := t.event.Pending()
	t.sim.Cancel(t.event)
	t.event = Handle{}
	return armed
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.event.Pending() }

// Deadline returns the pending expiry instant, or MaxTime when stopped.
func (t *Timer) Deadline() Time {
	if !t.event.Pending() {
		return MaxTime
	}
	return t.event.At()
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
// The callback runs first at start+period. Like Timer, the tick closure is
// created once and each period rearms a pooled event, so a steady ticker
// allocates nothing.
type Ticker struct {
	sim    *Simulator
	period Time
	fn     func()
	tick   func() // hoisted tick thunk, created once in NewTicker
	event  Handle
	live   bool
}

// NewTicker creates and starts a ticker with the given period.
func NewTicker(s *Simulator, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if fn == nil {
		panic("sim: nil ticker function")
	}
	t := &Ticker{sim: s, period: period, fn: fn, live: true}
	t.tick = func() {
		t.event = Handle{}
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.event = t.sim.Schedule(t.period, t.tick)
}

// Stop halts the ticker; no further callbacks run.
func (t *Ticker) Stop() {
	if !t.live {
		return
	}
	t.live = false
	t.sim.Cancel(t.event)
	t.event = Handle{}
}
