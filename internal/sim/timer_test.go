package sim

import "testing"

func TestTimerFires(t *testing.T) {
	s := New(1)
	var firedAt Time = -1
	tm := NewTimer(s, func() { firedAt = s.Now() })
	tm.Reset(5 * Millisecond)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.Deadline() != 5*Millisecond {
		t.Errorf("Deadline() = %v, want 5ms", tm.Deadline())
	}
	s.Run()
	if firedAt != 5*Millisecond {
		t.Errorf("fired at %v, want 5ms", firedAt)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerResetPushesDeadline(t *testing.T) {
	s := New(1)
	var fires []Time
	tm := NewTimer(s, func() { fires = append(fires, s.Now()) })
	tm.Reset(5 * Millisecond)
	s.Schedule(3*Millisecond, func() { tm.Reset(5 * Millisecond) })
	s.Run()
	if len(fires) != 1 || fires[0] != 8*Millisecond {
		t.Errorf("fires = %v, want [8ms]", fires)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := NewTimer(s, func() { fired = true })
	tm.Reset(Millisecond)
	if !tm.Stop() {
		t.Error("Stop() = false on armed timer")
	}
	if tm.Stop() {
		t.Error("Stop() = true on stopped timer")
	}
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Deadline() != MaxTime {
		t.Errorf("Deadline() of stopped timer = %v, want MaxTime", tm.Deadline())
	}
}

func TestTimerResetAt(t *testing.T) {
	s := New(1)
	var firedAt Time = -1
	tm := NewTimer(s, func() { firedAt = s.Now() })
	tm.ResetAt(7 * Millisecond)
	s.Run()
	if firedAt != 7*Millisecond {
		t.Errorf("fired at %v, want 7ms", firedAt)
	}
}

func TestTimerRearmInCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tm *Timer
	tm = NewTimer(s, func() {
		count++
		if count < 3 {
			tm.Reset(Millisecond)
		}
	})
	tm.Reset(Millisecond)
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if s.Now() != 3*Millisecond {
		t.Errorf("Now() = %v, want 3ms", s.Now())
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := New(1)
	var ticks []Time
	tk := NewTicker(s, 10*Millisecond, func() { ticks = append(ticks, s.Now()) })
	s.Schedule(35*Millisecond, func() { tk.Stop() })
	s.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(s, Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestTickerDoubleStop(t *testing.T) {
	s := New(1)
	tk := NewTicker(s, Millisecond, func() {})
	tk.Stop()
	tk.Stop() // must not panic
	s.Run()
}

func TestNewTickerInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(New(1), 0, func() {})
}
