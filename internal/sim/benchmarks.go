package sim

// Kernel microbenchmark workloads, shared between the go-test benchmarks in
// bench_test.go and figgen's -benchjson emitter so the numbers committed to
// BENCH_kernel.json come from exactly the code paths `go test -bench` times.
//
// Each workload performs n operations of its steady-state pattern against a
// fresh Simulator, with all closures hoisted out of the hot loop: what is
// being measured is the kernel's schedule/fire/cancel machinery, not
// caller-side allocation.

// KernelBenchmark is one microbenchmark of the event kernel.
type KernelBenchmark struct {
	Name string
	Doc  string
	Run  func(n int) // executes n operations of the workload
}

// KernelBenchmarks returns the kernel benchmark suite in a fixed order.
func KernelBenchmarks() []KernelBenchmark {
	return []KernelBenchmark{
		{
			Name: "ScheduleFire",
			Doc:  "one event in flight: each op schedules one event and fires it",
			Run:  benchScheduleFire,
		},
		{
			Name: "ResetStorm",
			Doc:  "timer rearmed far more often than it fires (ARQ/µNap pattern)",
			Run:  benchResetStorm,
		},
		{
			Name: "CancelHeavy",
			Doc:  "batches of events where half are cancelled before they fire",
			Run:  benchCancelHeavy,
		},
		{
			Name: "MixedMAC",
			Doc:  "MAC-like mix: one-shot frames, a beacon ticker, a rearmed ARQ timer",
			Run:  benchMixedMAC,
		},
		{
			Name: "DenseStorm",
			Doc:  "64 interleaved short-timer chains: the dense near-future wheel regime",
			Run:  benchDenseStorm,
		},
		{
			Name: "BucketBoundary",
			Doc:  "coarse-tick chains straddling bucket boundaries (intra-tick ordering)",
			Run:  benchBucketBoundary,
		},
		{
			Name: "OverflowMigrate",
			Doc:  "far-future events staged from the overflow heap as their tick arrives",
			Run:  benchOverflowMigrate,
		},
		{
			Name: "MetroDense",
			Doc:  "metro mix under adaptive routing: a few aggregated streams, sparse queue",
			Run:  benchMetroDense,
		},
		{
			Name: "MetroChurn",
			Doc:  "metro mix plus churn: a rearmed death timer alongside the streams",
			Run:  benchMetroChurn,
		},
	}
}

// benchScheduleFire keeps exactly one event in flight: the callback
// schedules its successor, so every iteration is one schedule plus one fire.
func benchScheduleFire(n int) {
	s := New(1)
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < n {
			s.Schedule(Microsecond, fn)
		}
	}
	s.Schedule(Microsecond, fn)
	s.Run()
}

// benchResetStorm rearms a single timer on every operation, advancing the
// clock just often enough that the deadline keeps receding and the timer
// almost never fires — the arm/cancel-dominated pattern of retransmission
// timers and micro-sleep policies.
func benchResetStorm(n int) {
	s := New(1)
	t := NewTimer(s, func() {})
	for i := 0; i < n; i++ {
		t.Reset(10 * Microsecond)
		if i%8 == 7 {
			s.RunUntil(s.Now() + Microsecond)
		}
	}
	t.Stop()
	s.Run()
}

// benchCancelHeavy schedules events in batches and cancels every other one
// before draining the rest, stressing the cancellation path and the
// dead-entry handling of the queue.
func benchCancelHeavy(n int) {
	s := New(1)
	nop := func() {}
	const batch = 64
	handles := make([]Handle, batch)
	for ops := 0; ops < n; ops += batch {
		for i := range handles {
			handles[i] = s.Schedule(Time(i+1)*Microsecond, nop)
		}
		for i := 0; i < batch; i += 2 {
			s.Cancel(handles[i])
		}
		s.RunUntil(s.Now() + Time(batch+1)*Microsecond)
	}
}

// benchDenseStorm keeps 64 event chains in flight with staggered 1–13 µs
// gaps — the dense-AP / micro-sleep regime the timing wheel exists for.
// With dozens of events always pending, the front register stays out of the
// way and every operation exercises bucket insertion, the occupancy-bitmap
// scan and the single-event-bucket firing path.
func benchDenseStorm(n int) {
	s := New(1)
	const chains = 64
	fired := 0
	var fns [chains]func()
	for i := range fns {
		i := i
		fns[i] = func() {
			fired++
			if fired < n {
				s.Schedule(Time(i%13+1), fns[i])
			}
		}
	}
	for i := range fns {
		s.Schedule(Time(i%13+1), fns[i])
	}
	s.Run()
}

// benchBucketBoundary runs two dozen chains at a coarse 16 µs tick whose
// gaps keep landing events on both sides of tick boundaries, so buckets
// hold multiple events with distinct timestamps and the intra-tick due heap
// does real (at, seq) ordering work on every staging.
func benchBucketBoundary(n int) {
	s := NewTuned(1, Tuning{TickShift: 4, WheelBits: 6, CompactMinDead: 64})
	const chains = 24
	gaps := [8]Time{13, 16, 19, 32, 15, 17, 1, 47}
	fired := 0
	var fns [chains]func()
	for i := range fns {
		i := i
		fns[i] = func() {
			fired++
			if fired < n {
				s.Schedule(gaps[(fired+i)%len(gaps)], fns[i])
			}
		}
	}
	for i := range fns {
		s.Schedule(gaps[i%len(gaps)]+Time(i), fns[i])
	}
	s.Run()
}

// benchOverflowMigrate keeps 16 events in flight far beyond the wheel span,
// so every event lives in the overflow heap until the clock closes in and
// the staging path hands it to the due heap — the migration cost a
// hierarchical wheel pays for far-future timers (beacons, DTIM cycles).
func benchOverflowMigrate(n int) {
	s := New(1)
	const lead = 4096 * Microsecond // 4× the default wheel span
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < n {
			s.Schedule(lead, fn)
		}
	}
	for i := 0; i < 16; i++ {
		s.Schedule(lead+Time(i), fn)
	}
	s.Run()
}

// benchMetroDense runs the metro-scale event mix: a handful of aggregated
// processes (downlink streams, a beacon, a slow scan) instead of per-station
// timers, under the adaptive WheelMinPending mode. The queue holds ~4
// events, so the adaptive depth filter keeps everything off the wheel and
// the kernel runs in its sparse heap regime — the shape 10⁵-station metro
// scenarios put through it.
func benchMetroDense(n int) {
	tun := DefaultTuning()
	tun.WheelMinPending = WheelAdaptive
	s := NewTuned(1, tun)
	fired := 0
	gaps := [4]Time{37, 53, 811, 100_000} // two downlink streams, a scan, a beacon
	var fns [4]func()
	for i := range fns {
		i := i
		fns[i] = func() {
			fired++
			if fired < n {
				s.Schedule(gaps[i], fns[i])
			}
		}
	}
	for i := range fns {
		s.Schedule(gaps[i], fns[i])
	}
	s.Run()
}

// benchMetroChurn adds association churn to the metro mix: a join stream
// that rearms an aggregated death timer on every event (the thinned-rate
// update as the population shifts), alongside a downlink stream — the
// schedule/cancel-heavy sparse pattern of a churning metro population.
func benchMetroChurn(n int) {
	tun := DefaultTuning()
	tun.WheelMinPending = WheelAdaptive
	s := NewTuned(1, tun)
	fired := 0
	death := NewTimer(s, func() {})
	var join func()
	join = func() {
		fired++
		death.Reset(Time(fired%977 + 200))
		if fired < n {
			s.Schedule(Time(fired%149+25), join)
		}
	}
	var frames func()
	frames = func() {
		fired++
		if fired < n {
			s.Schedule(Time(fired%43+11), frames)
		}
	}
	s.Schedule(25, join)
	s.Schedule(11, frames)
	s.Run()
	death.Stop()
	s.Run()
}

// benchMixedMAC approximates a station's event mix: a chain of one-shot
// frame events, a periodic beacon ticker and an ARQ timer that is rearmed on
// every frame and essentially never expires.
func benchMixedMAC(n int) {
	s := New(1)
	beacons := 0
	retx := NewTimer(s, func() {})
	NewTicker(s, 100*Microsecond, func() { beacons++ })
	delivered := 0
	var onTx func()
	onTx = func() {
		delivered++
		retx.Reset(30 * Microsecond)
		if delivered < n {
			s.Schedule(Time(delivered%7+1)*Microsecond, onTx)
		} else {
			s.Stop()
		}
	}
	s.Schedule(Microsecond, onTx)
	s.Run()
}
