package sim

// Kernel microbenchmark workloads, shared between the go-test benchmarks in
// bench_test.go and figgen's -benchjson emitter so the numbers committed to
// BENCH_kernel.json come from exactly the code paths `go test -bench` times.
//
// Each workload performs n operations of its steady-state pattern against a
// fresh Simulator, with all closures hoisted out of the hot loop: what is
// being measured is the kernel's schedule/fire/cancel machinery, not
// caller-side allocation.

// KernelBenchmark is one microbenchmark of the event kernel.
type KernelBenchmark struct {
	Name string
	Doc  string
	Run  func(n int) // executes n operations of the workload
}

// KernelBenchmarks returns the kernel benchmark suite in a fixed order.
func KernelBenchmarks() []KernelBenchmark {
	return []KernelBenchmark{
		{
			Name: "ScheduleFire",
			Doc:  "one event in flight: each op schedules one event and fires it",
			Run:  benchScheduleFire,
		},
		{
			Name: "ResetStorm",
			Doc:  "timer rearmed far more often than it fires (ARQ/µNap pattern)",
			Run:  benchResetStorm,
		},
		{
			Name: "CancelHeavy",
			Doc:  "batches of events where half are cancelled before they fire",
			Run:  benchCancelHeavy,
		},
		{
			Name: "MixedMAC",
			Doc:  "MAC-like mix: one-shot frames, a beacon ticker, a rearmed ARQ timer",
			Run:  benchMixedMAC,
		},
	}
}

// benchScheduleFire keeps exactly one event in flight: the callback
// schedules its successor, so every iteration is one schedule plus one fire.
func benchScheduleFire(n int) {
	s := New(1)
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < n {
			s.Schedule(Microsecond, fn)
		}
	}
	s.Schedule(Microsecond, fn)
	s.Run()
}

// benchResetStorm rearms a single timer on every operation, advancing the
// clock just often enough that the deadline keeps receding and the timer
// almost never fires — the arm/cancel-dominated pattern of retransmission
// timers and micro-sleep policies.
func benchResetStorm(n int) {
	s := New(1)
	t := NewTimer(s, func() {})
	for i := 0; i < n; i++ {
		t.Reset(10 * Microsecond)
		if i%8 == 7 {
			s.RunUntil(s.Now() + Microsecond)
		}
	}
	t.Stop()
	s.Run()
}

// benchCancelHeavy schedules events in batches and cancels every other one
// before draining the rest, stressing the cancellation path and the
// dead-entry handling of the queue.
func benchCancelHeavy(n int) {
	s := New(1)
	nop := func() {}
	const batch = 64
	handles := make([]Handle, batch)
	for ops := 0; ops < n; ops += batch {
		for i := range handles {
			handles[i] = s.Schedule(Time(i+1)*Microsecond, nop)
		}
		for i := 0; i < batch; i += 2 {
			s.Cancel(handles[i])
		}
		s.RunUntil(s.Now() + Time(batch+1)*Microsecond)
	}
}

// benchMixedMAC approximates a station's event mix: a chain of one-shot
// frame events, a periodic beacon ticker and an ARQ timer that is rearmed on
// every frame and essentially never expires.
func benchMixedMAC(n int) {
	s := New(1)
	beacons := 0
	retx := NewTimer(s, func() {})
	NewTicker(s, 100*Microsecond, func() { beacons++ })
	delivered := 0
	var onTx func()
	onTx = func() {
		delivered++
		retx.Reset(30 * Microsecond)
		if delivered < n {
			s.Schedule(Time(delivered%7+1)*Microsecond, onTx)
		} else {
			s.Stop()
		}
	}
	s.Schedule(Microsecond, onTx)
	s.Run()
}
