package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2.0", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
	if got := FromSeconds(-0.001); got != -Millisecond {
		t.Errorf("FromSeconds(-0.001) = %v, want -1ms", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Microsecond, "500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
		{90 * Second, "90.0s"},
		{MaxTime, "+inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(Second, Millisecond) != Millisecond {
		t.Error("Min wrong")
	}
	if Max(Second, Millisecond) != Second {
		t.Error("Max wrong")
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*Microsecond, func() { order = append(order, 3) })
	s.Schedule(10*Microsecond, func() { order = append(order, 1) })
	s.Schedule(20*Microsecond, func() { order = append(order, 2) })
	s.Run()
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*Microsecond {
		t.Errorf("Now() = %v, want 30us", s.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	s := New(1)
	var fired []Time
	s.Schedule(Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	want := []Time{Millisecond, 2 * Millisecond}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("fired = %v, want %v", fired, want)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.Schedule(Millisecond, func() { ran = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel must be safe
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelFromAnotherEvent(t *testing.T) {
	s := New(1)
	ran := false
	victim := s.Schedule(2*Millisecond, func() { ran = true })
	s.Schedule(Millisecond, func() { s.Cancel(victim) })
	s.Run()
	if ran {
		t.Error("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired int
	s.Schedule(Millisecond, func() { fired++ })
	s.Schedule(10*Millisecond, func() { fired++ })
	s.RunUntil(5 * Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 5*Millisecond {
		t.Errorf("Now() = %v, want 5ms (clock advances to horizon)", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.RunUntil(20 * Millisecond)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	var fired int
	s.Schedule(Millisecond, func() {
		fired++
		s.Stop()
	})
	s.Schedule(2*Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d after Stop, want 1", fired)
	}
	// Run again resumes.
	s.Run()
	if fired != 2 {
		t.Errorf("fired = %d after resume, want 2", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New(1).Schedule(-1, func() {})
}

func TestNilFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	New(1).Schedule(Millisecond, nil)
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.SetEventLimit(100)
	var rearm func()
	rearm = func() { s.Schedule(Microsecond, rearm) }
	s.Schedule(Microsecond, rearm)
	defer func() {
		if recover() == nil {
			t.Error("event limit exceeded without panic")
		}
	}()
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var vals []float64
		for i := 0; i < 50; i++ {
			d := Time(s.Rand().Intn(1000)) * Microsecond
			s.Schedule(d, func() { vals = append(vals, s.Rand().Float64()) })
		}
		s.Run()
		return vals
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs with the same seed diverged")
	}
}

func TestFiredCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i)*Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", s.Fired())
	}
}

// Property: events always fire in nondecreasing timestamp order, regardless
// of insertion order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := New(7)
		var fired []Time
		for _, d := range delaysRaw {
			s.Schedule(Time(d)*Microsecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		sorted := make([]Time, len(fired))
		copy(sorted, fired)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return reflect.DeepEqual(fired, sorted)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestCancelSubsetProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		count := int(n%64) + 1
		s := New(1)
		r := rand.New(rand.NewSource(seed))
		firedSet := make(map[int]bool)
		events := make([]Handle, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = s.Schedule(Time(r.Intn(100))*Microsecond, func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if r.Intn(2) == 0 {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			if cancelled[i] == firedSet[i] {
				return false // cancelled must not fire; uncancelled must fire
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
