package sim

import (
	"fmt"
	"testing"
)

func TestTuningKeyRoundTrip(t *testing.T) {
	// Every tuning the autotune search can visit — the grid and one ring of
	// hill-climb moves around it — must round-trip through its Key.
	seen := map[string]Tuning{}
	for _, tun := range TuningGrid() {
		seen[tun.Key()] = tun
		for _, n := range tun.Neighbors() {
			seen[n.Key()] = n
		}
	}
	for key, tun := range seen {
		got, err := ParseTuningKey(key)
		if err != nil {
			t.Fatalf("ParseTuningKey(%q): %v", key, err)
		}
		if got != tun {
			t.Errorf("ParseTuningKey(%q) = %+v, want %+v", key, got, tun)
		}
	}
	if def, err := ParseTuningKey("default"); err != nil || def != DefaultTuning() {
		t.Errorf("ParseTuningKey(\"default\") = %+v, %v", def, err)
	}
}

func TestParseTuningKeyRejectsGarbage(t *testing.T) {
	for _, key := range []string{
		"", "ts0", "ts0-wb10-cd64", "ts0-wb10-cd64-wmp16-extra",
		"tsx-wb10-cd64-wmp16", "ts0-wb10-cd64-wmpB", "ts0-wb10-cd64-wmp-3",
		"wb10-ts0-cd64-wmp16", // prefixes are positional
		"ts0-wb0-cd64-wmp16",  // fails Tuning.Validate
		"ts0-wb10-cd0-wmp16",
	} {
		if tun, err := ParseTuningKey(key); err == nil {
			t.Errorf("ParseTuningKey(%q) = %+v, want error", key, tun)
		}
	}
}

func TestTuningGridValidDistinctDefaultFirst(t *testing.T) {
	grid := TuningGrid()
	if len(grid) < 10 {
		t.Fatalf("grid has %d points; too small to seed a search", len(grid))
	}
	if grid[0] != DefaultTuning() {
		t.Errorf("grid[0] = %+v, want the default tuning", grid[0])
	}
	seen := map[string]bool{}
	for _, tun := range grid {
		if err := tun.Validate(); err != nil {
			t.Errorf("grid point %s invalid: %v", tun.Key(), err)
		}
		if seen[tun.Key()] {
			t.Errorf("duplicate grid point %s", tun.Key())
		}
		seen[tun.Key()] = true
	}
}

func TestNeighborsValidAndDistinct(t *testing.T) {
	for _, tun := range TuningGrid() {
		ns := tun.Neighbors()
		if len(ns) == 0 {
			t.Errorf("%s has no neighbors; hill-climb would stall", tun.Key())
		}
		for _, n := range ns {
			if n == tun {
				t.Errorf("%s lists itself as a neighbor", tun.Key())
			}
			if err := n.Validate(); err != nil {
				t.Errorf("%s neighbor %s invalid: %v", tun.Key(), n.Key(), err)
			}
		}
	}
	// The adaptive mode must be reachable from fixed thresholds and leave
	// back to one, or the search could never cross between the two regimes.
	fixed := DefaultTuning()
	if !containsWMP(fixed.Neighbors(), WheelAdaptive) {
		t.Error("default tuning has no adaptive neighbor")
	}
	adaptive := fixed
	adaptive.WheelMinPending = WheelAdaptive
	if !containsWMP(adaptive.Neighbors(), fixed.WheelMinPending) {
		t.Error("adaptive tuning has no fixed-threshold neighbor")
	}
}

func containsWMP(ts []Tuning, wmp int) bool {
	for _, t := range ts {
		if t.WheelMinPending == wmp {
			return true
		}
	}
	return false
}

// cornerTunings are the extreme points of the autotune search space: the
// grid's smallest and largest wheel (bits and tick granularity), the
// adaptive mode at both geometry extremes, and routing switched off
// entirely (pure heap). These are the shapes a search is most likely to
// emit for unusual workloads, and the shapes where a wheel-ordering bug
// would hide.
func cornerTunings() []Tuning {
	grid := TuningGrid()
	minWB, maxWB := grid[0], grid[0]
	minTS, maxTS := grid[0], grid[0]
	for _, tun := range grid {
		if tun.WheelBits < minWB.WheelBits {
			minWB = tun
		}
		if tun.WheelBits > maxWB.WheelBits {
			maxWB = tun
		}
		if tun.TickShift < minTS.TickShift {
			minTS = tun
		}
		if tun.TickShift > maxTS.TickShift {
			maxTS = tun
		}
	}
	adaptiveCoarse := maxTS
	adaptiveCoarse.WheelMinPending = WheelAdaptive
	adaptiveTiny := minWB
	adaptiveTiny.WheelMinPending = WheelAdaptive
	pureHeap := DefaultTuning()
	pureHeap.WheelMinPending = 1 << 20
	return []Tuning{minWB, maxWB, minTS, maxTS, adaptiveCoarse, adaptiveTiny, pureHeap}
}

// TestRandomInterleavingCornerTunings pins the order-invisibility property
// the autotune harness relies on — any tuning produces the identical fire
// order — at the corners of the search space, with the same reference
// model as TestRandomInterleavingMatchesModel. Cache entries and the
// seed-1 golden stay valid under any pinned winner precisely because this
// holds.
func TestRandomInterleavingCornerTunings(t *testing.T) {
	for _, tun := range cornerTunings() {
		tun := tun
		t.Run(tun.Key(), func(t *testing.T) {
			span := int(1) << (tun.TickShift + tun.WheelBits)
			for trial := 0; trial < 60; trial++ {
				runModelTrial(t, tun, span, trial)
			}
		})
	}
}

func TestTuningKeyExamples(t *testing.T) {
	// The documented spellings are load-bearing: BENCH_macro.json traces,
	// the pin table comments and the CI smoke job all quote them.
	for _, c := range []struct {
		tun  Tuning
		want string
	}{
		{DefaultTuning(), "ts0-wb10-cd64-wmp16"},
		{Tuning{TickShift: 8, WheelBits: 10, CompactMinDead: 64, WheelMinPending: 0}, "ts8-wb10-cd64-wmp0"},
		{Tuning{TickShift: 0, WheelBits: 10, CompactMinDead: 64, WheelMinPending: WheelAdaptive}, "ts0-wb10-cd64-wmpA"},
	} {
		if got := c.tun.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
	}
	if fmt.Sprintf("%s", DefaultTuning().Key()) != "ts0-wb10-cd64-wmp16" {
		t.Error("default tuning key drifted; update EXPERIMENTS.md if intentional")
	}
}
