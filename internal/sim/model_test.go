package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// modelEvent is the reference model's view of one scheduled callback: the
// old-heap semantics are simply "non-cancelled events fire in (at, seq)
// order", with seq allocated per schedule call.
type modelEvent struct {
	at        Time
	seq       int
	id        int
	cancelled bool
	fired     bool
}

// TestRandomInterleavingMatchesModel drives the kernel with random
// interleavings of At, Schedule, Cancel, Timer.Reset, Timer.Stop and
// partial RunUntil drains, and checks the observed fire sequence against a
// reference model implementing the pre-pool heap semantics (stable
// (at, seq) order, eager cancellation). This pins the refactored kernel —
// pooling, lazy cancellation, compaction, closure-free timers — to the old
// observable behavior.
func TestRandomInterleavingMatchesModel(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		s := New(1)

		var model []*modelEvent
		var handles []Handle // handles[i] belongs to model[i]; zero for timer arms
		var got []int        // event ids in kernel fire order
		seq := 0
		nextID := 0

		// One timer participates: each arm is a model event like any other,
		// with at most one arm live. timerArmID is what the kernel-side
		// callback records; timerIdx is the model's index of the live arm.
		timerArmID := -1
		timerIdx := -1
		timer := NewTimer(s, func() { got = append(got, timerArmID) })

		// modelFire returns, in old-heap order, the ids of every live model
		// event due at or before horizon, marking them fired.
		modelFire := func(horizon Time) []int {
			var ready []*modelEvent
			for _, m := range model {
				if !m.cancelled && !m.fired && m.at <= horizon {
					ready = append(ready, m)
				}
			}
			sort.Slice(ready, func(i, j int) bool {
				return ready[i].at < ready[j].at ||
					(ready[i].at == ready[j].at && ready[i].seq < ready[j].seq)
			})
			var ids []int
			for _, m := range ready {
				m.fired = true
				ids = append(ids, m.id)
			}
			return ids
		}

		var want []int
		for op := 0; op < 300; op++ {
			switch k := r.Intn(10); {
			case k < 4: // schedule a one-shot
				id := nextID
				nextID++
				at := s.Now() + Time(r.Intn(50))
				h := s.At(at, func() { got = append(got, id) })
				handles = append(handles, h)
				model = append(model, &modelEvent{at: at, seq: seq, id: id})
				seq++
			case k < 6: // cancel a random earlier event
				if len(handles) == 0 {
					continue
				}
				i := r.Intn(len(handles))
				if handles[i] == (Handle{}) {
					continue // a timer arm; not externally cancellable
				}
				s.Cancel(handles[i])
				if !model[i].fired {
					model[i].cancelled = true
				}
			case k < 8: // rearm the timer
				d := Time(r.Intn(40) + 1)
				timer.Reset(d)
				if timerIdx >= 0 && !model[timerIdx].fired {
					model[timerIdx].cancelled = true
				}
				id := nextID
				nextID++
				timerArmID = id
				handles = append(handles, Handle{}) // keep indices aligned
				model = append(model, &modelEvent{at: s.Now() + d, seq: seq, id: id})
				timerIdx = len(model) - 1
				seq++
			case k == 8: // stop the timer
				timer.Stop()
				if timerIdx >= 0 && !model[timerIdx].fired {
					model[timerIdx].cancelled = true
				}
				timerIdx = -1
			default: // drain part of the queue
				horizon := s.Now() + Time(r.Intn(30))
				want = append(want, modelFire(horizon)...)
				s.RunUntil(horizon)
			}
		}
		want = append(want, modelFire(MaxTime)...)
		s.Run()

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fire order diverged from old-heap model\n got: %v\nwant: %v",
				trial, got, want)
		}
	}
}
