package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// modelEvent is the reference model's view of one scheduled callback: the
// old-heap semantics are simply "non-cancelled events fire in (at, seq)
// order", with seq allocated per schedule call.
type modelEvent struct {
	at        Time
	seq       int
	id        int
	cancelled bool
	fired     bool
}

// modelTunings are the kernel tunings the reference-model test sweeps. The
// non-default entries are chosen to be hostile to the timing wheel: a
// 4-bucket wheel rotates constantly and pushes most events through the
// overflow heap; coarse ticks force the intra-tick due heap to do real
// ordering work; a tiny CompactMinDead makes compaction fire mid-run.
func modelTunings() []Tuning {
	return []Tuning{
		DefaultTuning(),
		{TickShift: 0, WheelBits: 2, CompactMinDead: 4},                                   // constant rotation + overflow
		{TickShift: 3, WheelBits: 4, CompactMinDead: 8},                                   // coarse ticks, mid-run compaction
		{TickShift: 5, WheelBits: 1, CompactMinDead: 64},                                  // 2-bucket wheel
		{TickShift: 0, WheelBits: 10, CompactMinDead: 64, WheelMinPending: 1 << 20},       // routing off: pure heap mode
		{TickShift: 0, WheelBits: 10, CompactMinDead: 64, WheelMinPending: WheelAdaptive}, // adaptive routing, default geometry
		{TickShift: 3, WheelBits: 2, CompactMinDead: 4, WheelMinPending: WheelAdaptive},   // adaptive + constant rotation + compaction
	}
}

// TestRandomInterleavingMatchesModel drives the kernel with random
// interleavings of At, Schedule, Cancel, Timer.Reset, Timer.Stop and
// partial RunUntil drains, and checks the observed fire sequence against a
// reference model implementing the pre-pool heap semantics (stable
// (at, seq) order, eager cancellation). This pins the refactored kernel —
// pooling, lazy cancellation, compaction, and now the timing wheel with
// its front register, per-tick buckets and overflow heap — to the old
// observable behavior, across tunings that exercise every wheel shape.
//
// The random delays deliberately straddle each tuning's wheel span: short
// delays land in buckets (including the current tick), mid delays cross
// bucket-boundary and rotation edges, and long delays go through the
// overflow heap and migrate back when their tick comes up.
func TestRandomInterleavingMatchesModel(t *testing.T) {
	for _, tun := range modelTunings() {
		tun := tun
		name := fmt.Sprintf("shift%d_bits%d_mp%d", tun.TickShift, tun.WheelBits, tun.WheelMinPending)
		t.Run(name, func(t *testing.T) {
			span := int(1) << (tun.TickShift + tun.WheelBits)
			for trial := 0; trial < 100; trial++ {
				runModelTrial(t, tun, span, trial)
			}
		})
	}
}

func runModelTrial(t *testing.T, tun Tuning, span, trial int) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(trial)))
	s := NewTuned(1, tun)

	var model []*modelEvent
	var handles []Handle // handles[i] belongs to model[i]; zero for timer arms
	var got []int        // event ids in kernel fire order
	seq := 0
	nextID := 0

	// One timer participates: each arm is a model event like any other,
	// with at most one arm live. timerArmID is what the kernel-side
	// callback records; timerIdx is the model's index of the live arm.
	timerArmID := -1
	timerIdx := -1
	timer := NewTimer(s, func() { got = append(got, timerArmID) })

	// modelFire returns, in old-heap order, the ids of every live model
	// event due at or before horizon, marking them fired.
	modelFire := func(horizon Time) []int {
		var ready []*modelEvent
		for _, m := range model {
			if !m.cancelled && !m.fired && m.at <= horizon {
				ready = append(ready, m)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			return ready[i].at < ready[j].at ||
				(ready[i].at == ready[j].at && ready[i].seq < ready[j].seq)
		})
		var ids []int
		for _, m := range ready {
			m.fired = true
			ids = append(ids, m.id)
		}
		return ids
	}

	// delay draws a scheduling offset that lands in the current tick, in a
	// near-future bucket, just past a wheel-span boundary, or deep in the
	// overflow heap with roughly equal probability.
	delay := func() Time {
		switch r.Intn(4) {
		case 0: // same-tick and near-bucket (includes 0: the current instant)
			return Time(r.Intn(1 << tun.TickShift * 2))
		case 1: // inside the wheel span
			return Time(r.Intn(span))
		case 2: // straddle the wheel-rotation boundary
			return Time(span - span/4 + r.Intn(span/2+1))
		default: // far future: overflow heap territory
			return Time(span + r.Intn(span*4))
		}
	}

	var want []int
	for op := 0; op < 300; op++ {
		switch k := r.Intn(12); {
		case k < 4: // schedule a one-shot
			id := nextID
			nextID++
			at := s.Now() + delay()
			h := s.At(at, func() { got = append(got, id) })
			handles = append(handles, h)
			model = append(model, &modelEvent{at: at, seq: seq, id: id})
			seq++
		case k < 6: // cancel a random earlier event (wheel, overflow or front)
			if len(handles) == 0 {
				continue
			}
			i := r.Intn(len(handles))
			if handles[i] == (Handle{}) {
				continue // a timer arm; not externally cancellable
			}
			s.Cancel(handles[i])
			if !model[i].fired {
				model[i].cancelled = true
			}
		case k < 8: // rearm the timer, migrating it between wheel and overflow
			d := delay() + 1
			timer.Reset(d)
			if timerIdx >= 0 && !model[timerIdx].fired {
				model[timerIdx].cancelled = true
			}
			id := nextID
			nextID++
			timerArmID = id
			handles = append(handles, Handle{}) // keep indices aligned
			model = append(model, &modelEvent{at: s.Now() + d, seq: seq, id: id})
			timerIdx = len(model) - 1
			seq++
		case k == 8: // stop the timer
			timer.Stop()
			if timerIdx >= 0 && !model[timerIdx].fired {
				model[timerIdx].cancelled = true
			}
			timerIdx = -1
		case k == 9: // long drain: advance across at least one full rotation
			horizon := s.Now() + Time(span+r.Intn(span*2))
			want = append(want, modelFire(horizon)...)
			s.RunUntil(horizon)
		default: // drain part of the queue
			horizon := s.Now() + Time(r.Intn(2*span/3+1))
			want = append(want, modelFire(horizon)...)
			s.RunUntil(horizon)
		}
	}
	want = append(want, modelFire(MaxTime)...)
	s.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trial %d: fire order diverged from old-heap model\n got: %v\nwant: %v",
			trial, got, want)
	}
	if s.Pending() != 0 {
		t.Fatalf("trial %d: %d events still pending after full drain", trial, s.Pending())
	}
}
