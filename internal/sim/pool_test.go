package sim

import "testing"

// TestZeroAllocSteadyState pins the kernel's core guarantee: once the slab
// and queue have warmed up, scheduling, firing, cancelling and timer resets
// allocate nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	s := New(1)
	nop := func() {}

	// Warm up slab and heap capacity.
	for i := 0; i < 256; i++ {
		s.Schedule(Time(i+1)*Microsecond, nop)
	}
	s.Run()

	if a := testing.AllocsPerRun(200, func() {
		s.Schedule(Microsecond, nop)
		s.RunUntil(s.Now() + Microsecond)
	}); a != 0 {
		t.Errorf("schedule/fire allocates %v per op, want 0", a)
	}

	if a := testing.AllocsPerRun(200, func() {
		h := s.Schedule(Microsecond, nop)
		s.Cancel(h)
		s.RunUntil(s.Now() + Microsecond)
	}); a != 0 {
		t.Errorf("schedule/cancel allocates %v per op, want 0", a)
	}

	tm := NewTimer(s, nop)
	if a := testing.AllocsPerRun(200, func() {
		tm.Reset(10 * Microsecond)
	}); a != 0 {
		t.Errorf("Timer.Reset allocates %v per op, want 0", a)
	}
	tm.Stop()

	tk := NewTicker(s, Microsecond, nop)
	if a := testing.AllocsPerRun(200, func() {
		s.RunUntil(s.Now() + Microsecond)
	}); a != 0 {
		t.Errorf("ticker steady state allocates %v per op, want 0", a)
	}
	tk.Stop()
}

// TestCancelAfterFireIsNoOp pins the fixed semantics: cancelling an event
// that already fired must not make Cancelled() report true.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New(1)
	ran := false
	h := s.Schedule(Millisecond, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	s.Cancel(h)
	if h.Cancelled() {
		t.Error("Cancelled() = true for a fired event")
	}
	if h.Pending() {
		t.Error("Pending() = true for a fired event")
	}
}

// TestStaleHandleIsInert verifies generation counting: once a slot is
// reused, handles from the previous lease neither report state nor cancel
// the new occupant.
func TestStaleHandleIsInert(t *testing.T) {
	s := New(1)
	first := s.Schedule(Microsecond, func() {})
	s.Run() // fires and releases the slot

	ran := false
	second := s.Schedule(Microsecond, func() { ran = true }) // reuses the slot
	if second.idx != first.idx {
		t.Fatalf("slot not reused: first idx %d, second idx %d", first.idx, second.idx)
	}
	s.Cancel(first) // stale: must not cancel the new occupant
	if first.Pending() || first.Cancelled() {
		t.Error("stale handle reports state")
	}
	s.Run()
	if !ran {
		t.Error("stale Cancel hit the slot's new occupant")
	}
}

// TestZeroHandle checks that the zero Handle is safely inert everywhere.
func TestZeroHandle(t *testing.T) {
	s := New(1)
	var h Handle
	s.Cancel(h) // no-op, no panic
	if h.Pending() || h.Cancelled() || h.At() != 0 {
		t.Error("zero handle is not inert")
	}
}

// TestCrossSimulatorCancelIsNoOp guards against cancelling a handle on the
// wrong simulator.
func TestCrossSimulatorCancelIsNoOp(t *testing.T) {
	a, b := New(1), New(2)
	ran := false
	h := a.Schedule(Microsecond, func() { ran = true })
	b.Cancel(h)
	if !h.Pending() {
		t.Error("foreign Cancel cancelled the event")
	}
	a.Run()
	if !ran {
		t.Error("event did not fire")
	}
}

// TestLazyCancellationCompaction drives the queue into heavy-cancellation
// territory and checks that dead entries are collected (Pending stays
// truthful) and survivors still fire in order.
func TestLazyCancellationCompaction(t *testing.T) {
	s := New(1)
	const n = 1000
	var fired []int
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		i := i
		handles[i] = s.Schedule(Time(i+1)*Microsecond, func() { fired = append(fired, i) })
	}
	// Cancel 90%: far past the dead>live compaction threshold.
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			s.Cancel(handles[i])
		}
	}
	if got := s.Pending(); got != n/10 {
		t.Errorf("Pending() = %d after mass cancel, want %d", got, n/10)
	}
	s.Run()
	if len(fired) != n/10 {
		t.Fatalf("%d events fired, want %d", len(fired), n/10)
	}
	for k, id := range fired {
		if id != k*10 {
			t.Fatalf("fire order broken at %d: got id %d, want %d", k, id, k*10)
		}
	}
}

// TestResetStormPoolReuse verifies that an arbitrarily long reset storm
// keeps the slab bounded: lazy-cancelled arms are recycled, not leaked.
func TestResetStormPoolReuse(t *testing.T) {
	s := New(1)
	tm := NewTimer(s, func() {})
	for i := 0; i < 100000; i++ {
		tm.Reset(10 * Microsecond)
		if i%8 == 7 {
			s.RunUntil(s.Now() + Microsecond)
		}
	}
	if got := len(s.slab); got > 4096 {
		t.Errorf("slab grew to %d slots under a reset storm; recycling is broken", got)
	}
	tm.Stop()
	s.Run()
}
