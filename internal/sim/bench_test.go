package sim

import "testing"

// BenchmarkKernel runs the shared kernel workloads (see benchmarks.go) as
// standard sub-benchmarks; figgen -benchjson times the same functions when
// writing BENCH_kernel.json.
func BenchmarkKernel(b *testing.B) {
	for _, k := range KernelBenchmarks() {
		b.Run(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			k.Run(b.N)
		})
	}
}
