package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Event states. A slot's state outlives its stay in the queue: after an
// event fires or its cancellation is collected, the slot keeps the final
// state (and its generation) until the free list hands it out again, so
// stale Handles still answer Pending/Cancelled correctly in the meantime.
const (
	statePending uint32 = iota + 1
	stateFired
	stateCancelled

	// stateBits is how many low bits of event.gs hold the state; the
	// remaining 30 bits hold the lease generation.
	stateBits = 2
	stateMask = 1<<stateBits - 1
	genStep   = 1 << stateBits // adding genStep to gs bumps the generation
)

// event is one pooled slot in the simulator's slab. Slots are recycled
// through a free list; the generation counts leases so that Handles from a
// previous lease go inert instead of acting on the slot's new occupant. The
// next field doubles as the free-list link while the slot is released and as
// the FIFO bucket link while the event waits in the timing wheel.
//
// The slot is exactly 32 bytes on 64-bit platforms — two per cache line —
// with the sort keys (at, seq) inline so heap sifting and bucket staging
// never touch a second cache line per entry. The generation and state are
// packed into one word (gs = generation<<stateBits | state): they are always
// read and written together on the lease/release path, and the packing is
// what gets the slot from 40 to 32 bytes. At metro scale (10⁵–10⁶ station
// populations) the slab is the kernel's dominant working set, so the 20%
// shrink is directly more slots per cache line and per TLB page.
type event struct {
	at   Time
	fn   func()
	seq  uint64
	next int32  // free-list link when released; bucket FIFO link when queued
	gs   uint32 // generation<<stateBits | state
}

// state extracts the slot's lifecycle state from the packed word.
func (e *event) state() uint32 { return e.gs & stateMask }

// setState replaces the state bits, leaving the generation untouched.
func (e *event) setState(st uint32) { e.gs = e.gs&^stateMask | st }

// gen extracts the slot's lease generation from the packed word.
func (e *event) gen() uint32 { return e.gs >> stateBits }

// Handle identifies one scheduled event. It is a small value (copy freely;
// the zero Handle refers to no event) carrying the slot index and the lease
// generation: once the event has fired or its cancellation has been
// collected and the slot reused, the generation no longer matches and the
// Handle becomes inert — Cancel is a no-op and the predicates return false.
type Handle struct {
	s   *Simulator
	idx int32
	gen uint32
}

// lease returns the slot if the handle still refers to its own lease.
func (h Handle) lease() *event {
	if h.s == nil {
		return nil
	}
	e := &h.s.slab[h.idx]
	if e.gen() != h.gen {
		return nil
	}
	return e
}

// Pending reports whether the event is still queued to fire.
func (h Handle) Pending() bool {
	e := h.lease()
	return e != nil && e.state() == statePending
}

// Cancelled reports whether the event was cancelled before it fired. A
// fired event reports false. Once the kernel reuses the underlying slot the
// handle is inert and also reports false.
func (h Handle) Cancelled() bool {
	e := h.lease()
	return e != nil && e.state() == stateCancelled
}

// At returns the instant the event is (or was) scheduled to fire, or 0 for
// an inert handle. Guard with Pending when the distinction matters.
func (h Handle) At() Time {
	if e := h.lease(); e != nil {
		return e.at
	}
	return 0
}

// heapEntry is one element of the due/overflow heaps, ordered by (at, seq).
// The sort keys are stored inline so heap sifting never chases slab
// pointers.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// bucketRef is one timing-wheel bucket: a FIFO of slab indices linked
// through the events' next fields. Indices are stored biased by +1 so the
// zero value means empty — a fresh wheel needs no initialization pass.
type bucketRef struct {
	head, tail int32 // slab index + 1; 0 = empty
}

// Tuning exposes the kernel's performance knobs. The defaults are what the
// committed BENCH_kernel.json numbers were measured at; see EXPERIMENTS.md
// ("Kernel tuning knobs") for how to choose other values. Every tuning
// produces the identical event order — these knobs trade memory for speed,
// never determinism.
type Tuning struct {
	// TickShift is log2 of the wheel tick in microseconds: events whose
	// firing tick (at >> TickShift) is within the wheel span go into O(1)
	// FIFO buckets instead of the overflow heap. 0 means 1 µs ticks —
	// exact bucketing with no intra-tick sorting work. Larger values
	// widen the span at the cost of a small per-tick ordering heap.
	TickShift uint
	// WheelBits is log2 of the bucket count; the wheel spans
	// 2^(WheelBits+TickShift) microseconds of near future. Default 10
	// (1024 buckets ≈ 1 ms at TickShift 0): MAC-scale timers — SIFS/DIFS
	// gaps, slot countdowns, ACK timeouts — stay in the wheel, while
	// beacon-scale events ride the overflow heap.
	WheelBits uint
	// CompactMinDead keeps tiny queues from compacting on every few
	// cancels; below this many dead entries the staging-time skip handles
	// them cheaply. Compaction triggers once dead entries both reach this
	// floor and outnumber the live ones.
	CompactMinDead int
	// WheelMinPending is the queue depth at which near-future events
	// start using the wheel. Below it everything rides the plain binary
	// heap: for a handful of pending events the heap fits in one or two
	// cache lines and beats touching an 8 KB bucket array, while the
	// wheel's O(1) buckets win once many short timers are in flight.
	// Routing is a pure policy choice — pop order is enforced against
	// every structure, so any value produces the identical simulation.
	//
	// The sentinel WheelAdaptive selects adaptive routing: the kernel
	// tracks a decaying filter of the queue depth and engages the wheel
	// only when the depth is *sustained* above the default threshold.
	// Workloads that alternate sparse phases (a handful of aggregated
	// process events) with dense bursts skip all wheel maintenance in the
	// sparse phases without being flipped into wheel mode by a lone
	// burst, and without the caller having to guess a fixed threshold.
	WheelMinPending int
}

// WheelAdaptive is the WheelMinPending sentinel that turns on adaptive
// wheel routing. Like every tuning value it changes constant factors only:
// pop order is enforced against all structures, so the adaptive and any
// fixed setting produce bit-identical simulations.
const WheelAdaptive = -1

// adaptiveFiltShift is the decay of the adaptive depth filter: on every
// near-future insert the filter moves 1/8th of the way toward the current
// queue depth, so roughly the last two dozen inserts dominate it.
const adaptiveFiltShift = 3

// DefaultTuning returns the tuning the kernel benchmarks are recorded at.
func DefaultTuning() Tuning {
	return Tuning{TickShift: 0, WheelBits: 10, CompactMinDead: 64, WheelMinPending: 16}
}

// Validate checks the tuning for representable, non-degenerate values.
func (t Tuning) Validate() error {
	if t.WheelBits < 1 || t.WheelBits > 20 {
		return fmt.Errorf("sim: WheelBits %d outside [1, 20]", t.WheelBits)
	}
	if t.TickShift > 30 {
		return fmt.Errorf("sim: TickShift %d outside [0, 30]", t.TickShift)
	}
	if t.CompactMinDead < 1 {
		return fmt.Errorf("sim: CompactMinDead must be positive")
	}
	if t.WheelMinPending < 0 && t.WheelMinPending != WheelAdaptive {
		return fmt.Errorf("sim: WheelMinPending must be non-negative or WheelAdaptive")
	}
	return nil
}

// Simulator is a deterministic discrete-event simulation kernel. It owns the
// virtual clock, the pending-event queue and a seeded random source shared by
// all stochastic models so runs reproduce exactly for a given seed.
//
// The pending queue is a hierarchical timing wheel. The next event to fire
// sits in a front register; near-future events (within the wheel span) live
// in per-tick FIFO buckets linked through the slab, with an occupancy
// bitmap locating the next non-empty tick; far-future events wait in an
// overflow heap and are staged into the wheel's firing path when their tick
// comes up. Everything fires in exact (at, seq) order — the wheel is
// invisible to the simulation, it only changes the constant factors.
//
// The kernel performs no steady-state allocations: event slots live in a
// slab recycled through a free list, and cancellation is lazy — Cancel
// marks the slot dead in O(1) and the queue drops dead entries when they
// surface (or in a bulk compaction once they outnumber the live ones),
// instead of an O(log n) removal per cancel.
//
// Simulator is not safe for concurrent use; the entire simulation executes on
// a single goroutine, which is what makes determinism cheap.
type Simulator struct {
	now   Time
	slab  []event
	free  int32 // head of the released-slot list, -1 when empty
	nFree int   // length of the released-slot list

	// front is the cached next-to-fire entry: it is always ≤ every entry
	// in due/wheel/overflow, so the single-event-in-flight patterns
	// (timers, tickers, event chains) never touch the wheel at all.
	front    heapEntry
	hasFront bool

	due      []heapEntry // (at, seq) heap of the tick currently being fired
	wheel    []bucketRef // near-future FIFO buckets, one per tick; lazily allocated
	occ      []uint64    // occupancy bitmap over wheel buckets
	overflow []heapEntry // (at, seq) heap of events beyond the wheel span
	nWheel   int         // entries (live + dead) currently in wheel buckets
	size     int64       // bucket count (1 << Tuning.WheelBits)

	// wheelHint is a lower bound on the earliest live wheel tick, so the
	// occupancy scan starts where the events are instead of walking empty
	// buckets from the current tick — the difference between O(1) and
	// O(span/64) per staging when wheel residents are sparse (a lone
	// millisecond ticker, say). Inserts lower it, scans tighten it.
	wheelHint int64

	tickShift       uint
	mask            int64 // size - 1
	compactMinDead  int
	wheelMinPending int
	adaptive        bool // WheelAdaptive routing: threshold on filtered depth
	depthFilt       int  // decaying depth filter ≈ 2^adaptiveFiltShift × depth

	dead    int // cancelled entries still sitting in due/wheel/overflow
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	limit   uint64 // safety valve against runaway event loops; 0 = unlimited
}

// New creates a simulator with the default tuning, seeded with seed.
func New(seed int64) *Simulator {
	return NewTuned(seed, DefaultTuning())
}

// NewTuned creates a simulator with explicit kernel tuning. Invalid tunings
// panic: a tuning is build-time configuration, not runtime input.
func NewTuned(seed int64, t Tuning) *Simulator {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	size := int64(1) << t.WheelBits
	minPending, adaptive := t.WheelMinPending, false
	if minPending == WheelAdaptive {
		// Adaptive routing compares the depth filter against the default
		// threshold instead of the instantaneous depth.
		minPending, adaptive = DefaultTuning().WheelMinPending, true
	}
	// The bucket array and bitmap are allocated on the first near-future
	// insert: sparse workloads whose events all live beyond the wheel span
	// run pure heap and never pay for the wheel.
	return &Simulator{
		rng:             rand.New(rand.NewSource(seed)),
		free:            -1,
		size:            size,
		tickShift:       t.TickShift,
		mask:            size - 1,
		compactMinDead:  t.CompactMinDead,
		wheelMinPending: minPending,
		adaptive:        adaptive,
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulator's deterministic random source. All model
// randomness must come from here; do not use the global rand functions.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of live (non-cancelled) events currently
// queued.
func (s *Simulator) Pending() int {
	n := len(s.due) + s.nWheel + len(s.overflow) - s.dead
	if s.hasFront {
		n++
	}
	return n
}

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety valve: Run panics after firing more than n
// events, which turns accidental infinite event loops into a loud failure.
// n = 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// acquire leases a slot for a new pending event, reusing a released slot
// when one is available. The steady-state (free-list) path must stay
// inlineable — the cold slab-append lives in acquireSlow to keep it so.
func (s *Simulator) acquire(at Time, fn func()) (int32, uint32) {
	idx := s.free
	if idx < 0 {
		return s.acquireSlow(at, fn)
	}
	e := &s.slab[idx]
	s.free = e.next
	s.nFree--
	// One write bumps the generation and installs the pending state.
	gs := e.gs&^stateMask + genStep | statePending
	e.gs = gs
	e.at, e.fn, e.seq = at, fn, s.seq
	return idx, gs >> stateBits
}

// acquireSlow grows the slab when the free list is empty.
func (s *Simulator) acquireSlow(at Time, fn func()) (int32, uint32) {
	s.slab = append(s.slab, event{at: at, fn: fn, seq: s.seq, gs: statePending})
	return int32(len(s.slab) - 1), 0
}

// release retires a slot that has left the queue. The final state stays
// readable through old Handles until the slot is leased again.
func (s *Simulator) release(idx int32, final uint32) {
	e := &s.slab[idx]
	e.setState(final)
	e.fn = nil // drop the closure so it can be collected
	e.next = s.free
	s.free = idx
	s.nFree++
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because silently reordering events would
// corrupt causality.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	idx, gen := s.acquire(t, fn)
	en := heapEntry{at: t, seq: s.seq, idx: idx}
	s.seq++
	if s.hasFront {
		if entryLess(en, s.front) {
			// The new event precedes the cached minimum: swap them. The
			// displaced front is still ≤ everything already queued, so the
			// front invariant survives in both directions.
			en, s.front = s.front, en
			s.push(en)
		} else {
			s.push(en)
		}
	} else if len(s.due) == 0 && s.nWheel == 0 && len(s.overflow) == 0 {
		s.front, s.hasFront = en, true
	} else {
		// The front register is only trustworthy as the queue minimum when
		// it was populated against an empty queue; with entries already in
		// the structures it stays vacant until the queue drains.
		s.push(en)
	}
	return Handle{s: s, idx: idx, gen: gen}
}

// Schedule schedules fn to run delay after the current time.
func (s *Simulator) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// push routes a pending entry into the due heap, a wheel bucket or the
// overflow heap according to how far ahead its tick lies.
func (s *Simulator) push(en heapEntry) {
	tick := int64(en.at) >> s.tickShift
	nowTick := int64(s.now) >> s.tickShift
	switch d := tick - nowTick; {
	case d == 0:
		// The event lands in the tick currently being fired. Anything for
		// this tick still waiting in its bucket or atop the overflow heap
		// must be staged first, or the due heap would hide it.
		s.stageTick(tick)
		s.heapPush(&s.due, en)
	case d <= s.mask:
		if s.nWheel == 0 {
			// Sparse queue: the plain heap is cache-tighter than the
			// bucket array. Routing is policy only — order is enforced
			// at pop time against every structure. In adaptive mode the
			// threshold tests a decaying depth filter instead of the
			// instantaneous depth, so sparse phases skip all wheel
			// maintenance even across short bursts, and sustained dense
			// phases engage the wheel and stay on it.
			depth := len(s.overflow) + len(s.due)
			if s.adaptive {
				s.depthFilt += depth - s.depthFilt>>adaptiveFiltShift
				depth = s.depthFilt >> adaptiveFiltShift
			}
			if depth < s.wheelMinPending {
				s.heapPush(&s.overflow, en)
				return
			}
		}
		if s.wheel == nil {
			s.wheel = make([]bucketRef, s.size)
			s.occ = make([]uint64, (s.size+63)/64)
		}
		if s.nWheel == 0 || tick < s.wheelHint {
			s.wheelHint = tick
		}
		b := tick & s.mask
		e := &s.slab[en.idx]
		e.next = -1
		if bkt := &s.wheel[b]; bkt.head == 0 {
			bkt.head, bkt.tail = en.idx+1, en.idx+1
			s.occ[b>>6] |= 1 << uint(b&63)
		} else {
			s.slab[bkt.tail-1].next = en.idx
			bkt.tail = en.idx + 1
		}
		s.nWheel++
	default:
		s.heapPush(&s.overflow, en)
	}
}

// Cancel marks a pending event dead in O(1); the queue discards the entry
// when it surfaces, or earlier during a bulk compaction. Cancelling an
// already-fired, already-cancelled or inert handle is a no-op, so callers
// can cancel defensively.
func (s *Simulator) Cancel(h Handle) {
	if h.s != s { // covers the zero Handle and cross-simulator misuse
		return
	}
	e := &s.slab[h.idx]
	if e.gen() != h.gen || e.state() != statePending {
		return
	}
	if s.hasFront && s.front.idx == h.idx {
		// The front register is a single entry, so eager removal is O(1).
		s.hasFront = false
		s.release(h.idx, stateCancelled)
		return
	}
	e.setState(stateCancelled)
	s.dead++
	s.maybeCompact()
}

// maybeCompact rebuilds the queue structures without their dead entries
// once they outnumber the live ones. Compaction preserves nothing about the
// internal layout, but pop order is the total (at, seq) order either way,
// so it is invisible to the simulation.
func (s *Simulator) maybeCompact() {
	if s.dead < s.compactMinDead || s.dead*2 <= len(s.due)+s.nWheel+len(s.overflow) {
		return
	}
	s.compactHeap(&s.due)
	s.compactHeap(&s.overflow)
	for w, word := range s.occ {
		for word != 0 {
			b := int64(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			s.compactBucket(b)
		}
	}
	s.dead = 0
}

// compactHeap filters a heap's dead entries in place and restores the heap
// property over the survivors.
func (s *Simulator) compactHeap(h *[]heapEntry) {
	kept := (*h)[:0]
	for _, en := range *h {
		if s.slab[en.idx].state() == statePending {
			kept = append(kept, en)
		} else {
			s.release(en.idx, stateCancelled)
		}
	}
	*h = kept
	for i := len(*h)/2 - 1; i >= 0; i-- {
		s.siftDown(*h, i)
	}
}

// compactBucket relinks a wheel bucket keeping only pending events.
func (s *Simulator) compactBucket(b int64) {
	bkt := &s.wheel[b]
	head, tail := int32(-1), int32(-1)
	for idx := bkt.head - 1; idx >= 0; {
		next := s.slab[idx].next
		if s.slab[idx].state() == statePending {
			s.slab[idx].next = -1
			if head < 0 {
				head, tail = idx, idx
			} else {
				s.slab[tail].next = idx
				tail = idx
			}
		} else {
			s.nWheel--
			s.release(idx, stateCancelled)
		}
		idx = next
	}
	bkt.head, bkt.tail = head+1, tail+1
	if head < 0 {
		s.occ[b>>6] &^= 1 << uint(b&63)
	}
}

// Stop makes Run/RunUntil return after the currently executing event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// nextWheelTick scans the occupancy bitmap circularly and returns the tick
// of the nearest non-empty bucket. The caller has already established
// nWheel > 0, so a set bit exists. The scan starts at wheelHint — a proven
// lower bound on the earliest live tick — and tightens the hint to what it
// finds, so repeated stagings of a sparse wheel stay O(1).
func (s *Simulator) nextWheelTick() (int64, bool) {
	base := int64(s.now) >> s.tickShift
	if s.wheelHint > base {
		base = s.wheelHint
	}
	p0 := base & s.mask
	w0 := int(p0 >> 6)
	off := uint(p0 & 63)
	// Fast path: the nearest occupied bucket shares the scan origin's
	// bitmap word — true for every MAC-scale gap under the default tuning.
	if word := s.occ[w0] >> off; word != 0 {
		t := base + int64(bits.TrailingZeros64(word))
		s.wheelHint = t
		return t, true
	}
	words := len(s.occ)
	for k := 1; k <= words; k++ {
		wi := w0 + k
		if wi >= words {
			wi -= words
		}
		word := s.occ[wi]
		if k == words {
			word &= (1 << off) - 1
		}
		if word == 0 {
			continue
		}
		p := int64(wi<<6 + bits.TrailingZeros64(word))
		t := base + ((p - p0) & s.mask)
		s.wheelHint = t
		return t, true
	}
	return 0, false
}

// purgeOverflowDead pops cancelled entries off the overflow heap's top so
// the top is either live or the heap is empty.
func (s *Simulator) purgeOverflowDead() {
	for len(s.overflow) > 0 {
		top := s.overflow[0]
		if s.slab[top.idx].state() == statePending {
			return
		}
		s.heapPopTop(&s.overflow)
		s.dead--
		s.release(top.idx, stateCancelled)
	}
}

// stageTick moves every queued entry of tick t — its wheel bucket FIFO plus
// any overflow-heap entries that have come into range — onto the due heap.
// Dead entries are collected instead of staged.
func (s *Simulator) stageTick(t int64) {
	b := t & s.mask
	if s.nWheel > 0 && s.occ[b>>6]&(1<<uint(b&63)) != 0 {
		bkt := &s.wheel[b]
		idx := bkt.head - 1
		for idx >= 0 {
			e := &s.slab[idx]
			next := e.next
			s.nWheel--
			if e.state() == statePending {
				s.heapPush(&s.due, heapEntry{at: e.at, seq: e.seq, idx: idx})
			} else {
				s.dead--
				s.release(idx, stateCancelled)
			}
			idx = next
		}
		bkt.head, bkt.tail = 0, 0
		s.occ[b>>6] &^= 1 << uint(b&63)
	}
	if len(s.overflow) == 0 {
		return
	}
	for {
		s.purgeOverflowDead()
		if len(s.overflow) == 0 {
			return
		}
		top := s.overflow[0]
		if int64(top.at)>>s.tickShift != t {
			return
		}
		s.heapPopTop(&s.overflow)
		s.heapPush(&s.due, top)
	}
}

// limitExceeded is the event-limit panic, kept out of line so the firing
// path in step stays small.
func (s *Simulator) limitExceeded() {
	panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
}

// step pops and fires the next event. It reports false when the queue is
// empty or only holds events after horizon. Dead entries that surface are
// collected without firing (and without advancing the clock), each counting
// as one step.
func (s *Simulator) step(horizon Time) bool {
	for {
		var en heapEntry // the live entry to fire, set by one of the branches
		if s.hasFront {
			if s.front.at > horizon {
				return false
			}
			en = s.front
			s.hasFront = false
		} else if len(s.due) > 0 {
			top := s.due[0]
			if s.slab[top.idx].state() != statePending {
				s.heapPopTop(&s.due)
				s.dead--
				s.release(top.idx, stateCancelled)
				return true
			}
			if top.at > horizon {
				return false
			}
			s.heapPopTop(&s.due)
			en = top
		} else if s.nWheel == 0 && len(s.overflow) > 0 &&
			s.slab[s.overflow[0].idx].state() == statePending {
			// Overflow-only fast path: the live heap top is the global
			// minimum (front, due and wheel are all empty), so sparse
			// second-scale workloads fire straight off the heap exactly
			// like the plain heap this kernel replaced.
			top := s.overflow[0]
			if top.at > horizon {
				return false
			}
			s.heapPopTop(&s.overflow)
			en = top
		} else if !s.stageNext(horizon, &en) {
			return false
		} else if en.idx < 0 {
			// stageNext made progress (collected a dead entry or staged a
			// tick) without producing a live entry; go around again.
			continue
		}
		// Fire: release the slot first so the callback can schedule into it.
		e := &s.slab[en.idx]
		fn := e.fn
		s.release(en.idx, stateFired)
		s.now = en.at
		s.fired++
		if s.limit != 0 && s.fired > s.limit {
			s.limitExceeded()
		}
		fn()
		return true
	}
}

// stageNext advances the queue when nothing is staged for firing: it finds
// the next tick holding events — the nearest occupied wheel bucket or the
// overflow top, whichever is earlier — and stages it, gated on the horizon
// so a bounded run never pulls future ticks into the due heap ahead of
// order. It reports false when the queue is empty or entirely beyond the
// horizon. On true, *en is either a live entry to fire (single-event
// bucket fast path) or remains {idx: -1} when only staging/collection
// happened.
func (s *Simulator) stageNext(horizon Time, en *heapEntry) bool {
	en.idx = -1
	if len(s.overflow) > 0 && s.slab[s.overflow[0].idx].state() != statePending {
		s.purgeOverflowDead()
	}
	if s.nWheel == 0 {
		// Overflow-only. A live top is fired by step's inline fast path,
		// so reaching here means the top was dead (purged above) or the
		// heap is empty; report whether anything remains and let step
		// loop back into its fast path.
		return len(s.overflow) > 0
	}
	wt, _ := s.nextWheelTick()
	if len(s.overflow) > 0 {
		switch ot := int64(s.overflow[0].at) >> s.tickShift; {
		case ot < wt:
			// Every live wheel entry sits at tick ≥ wt > ot, i.e. at or
			// after (ot+1)<<shift, which bounds the overflow top's time
			// from above — the top is the global minimum. Fire it.
			top := s.overflow[0]
			if top.at > horizon {
				return false
			}
			s.heapPopTop(&s.overflow)
			*en = top
			return true
		case ot == wt:
			// Bucket and overflow entries share the tick: merge them in
			// the due heap, which restores exact (at, seq) order.
			if Time(wt<<s.tickShift) > horizon {
				return false
			}
			s.stageTick(wt)
			return true
		}
		// ot > wt: the wheel bucket strictly precedes every overflow
		// entry; fall through to the bucket paths.
	}
	if Time(wt<<s.tickShift) > horizon {
		return false
	}
	b := wt & s.mask
	bkt := &s.wheel[b]
	if idx := bkt.head - 1; idx >= 0 && bkt.head == bkt.tail {
		// Single-event bucket — the dominant shape at 1 µs ticks — skips
		// the due heap and hands its event straight to the firing path
		// (or collects it, if it was cancelled).
		e := &s.slab[idx]
		bkt.head, bkt.tail = 0, 0
		s.occ[b>>6] &^= 1 << uint(b&63)
		s.nWheel--
		if e.state() != statePending {
			s.dead--
			s.release(idx, stateCancelled)
			return true
		}
		if e.at > horizon {
			// Mid-tick horizon (coarse ticks only): park the entry on the
			// due heap for the next run to pick up.
			s.heapPush(&s.due, heapEntry{at: e.at, seq: e.seq, idx: idx})
			return false
		}
		*en = heapEntry{at: e.at, seq: e.seq, idx: idx}
		return true
	}
	// The staged tick may have held only dead entries; the caller loops to
	// either fire from the refilled due heap or stage the next tick.
	s.stageTick(wt)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(MaxTime) {
	}
}

// RunUntil executes events with timestamps ≤ horizon, then advances the clock
// to horizon. Events scheduled after horizon remain queued.
func (s *Simulator) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && s.step(horizon) {
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// --- (at, seq) binary heaps shared by the due and overflow queues ---

func (s *Simulator) heapPush(h *[]heapEntry, en heapEntry) {
	*h = append(*h, en)
	s.siftUp(*h, len(*h)-1)
}

// heapPopTop removes the root entry.
func (s *Simulator) heapPopTop(h *[]heapEntry) {
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	if n > 0 {
		s.siftDown(*h, 0)
	}
}

func (s *Simulator) siftUp(h []heapEntry, i int) {
	en := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(en, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = en
}

func (s *Simulator) siftDown(h []heapEntry, i int) {
	n := len(h)
	en := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && entryLess(h[r], h[c]) {
			c = r
		}
		if !entryLess(h[c], en) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = en
}
