package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are created through Simulator.At and
// Simulator.Schedule and may be cancelled before they fire.
type Event struct {
	at        Time
	seq       uint64 // tiebreaker: FIFO among events at the same instant
	fn        func()
	index     int // position in the heap, -1 once popped
	cancelled bool
}

// At returns the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event simulation kernel. It owns the
// virtual clock, the pending-event queue and a seeded random source shared by
// all stochastic models so runs reproduce exactly for a given seed.
//
// Simulator is not safe for concurrent use; the entire simulation executes on
// a single goroutine, which is what makes determinism cheap.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	limit   uint64 // safety valve against runaway event loops; 0 = unlimited
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulator's deterministic random source. All model
// randomness must come from here; do not use the global rand functions.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.events) }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety valve: Run panics after firing more than n
// events, which turns accidental infinite event loops into a loud failure.
// n = 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because silently reordering events would
// corrupt causality.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// Schedule schedules fn to run delay after the current time.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&s.events, e.index)
	}
}

// Stop makes Run/RunUntil return after the currently executing event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and fires the next event. It reports false when the queue is
// empty or only holds events after horizon.
func (s *Simulator) step(horizon Time) bool {
	if len(s.events) == 0 {
		return false
	}
	next := s.events[0]
	if next.at > horizon {
		return false
	}
	heap.Pop(&s.events)
	if next.cancelled {
		return true
	}
	s.now = next.at
	s.fired++
	if s.limit != 0 && s.fired > s.limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
	}
	next.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(MaxTime) {
	}
}

// RunUntil executes events with timestamps ≤ horizon, then advances the clock
// to horizon. Events scheduled after horizon remain queued.
func (s *Simulator) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && s.step(horizon) {
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}
