package sim

import (
	"fmt"
	"math/rand"
)

// Event states. A slot's state outlives its stay in the queue: after an
// event fires or its cancellation is collected, the slot keeps the final
// state (and its generation) until the free list hands it out again, so
// stale Handles still answer Pending/Cancelled correctly in the meantime.
const (
	statePending uint8 = iota + 1
	stateFired
	stateCancelled
)

// event is one pooled slot in the simulator's slab. Slots are recycled
// through a free list; gen counts leases so that Handles from a previous
// lease go inert instead of acting on the slot's new occupant.
type event struct {
	at    Time
	fn    func()
	next  int32 // free-list link while released
	gen   uint32
	state uint8
}

// Handle identifies one scheduled event. It is a small value (copy freely;
// the zero Handle refers to no event) carrying the slot index and the lease
// generation: once the event has fired or its cancellation has been
// collected and the slot reused, the generation no longer matches and the
// Handle becomes inert — Cancel is a no-op and the predicates return false.
type Handle struct {
	s   *Simulator
	idx int32
	gen uint32
}

// lease returns the slot if the handle still refers to its own lease.
func (h Handle) lease() *event {
	if h.s == nil {
		return nil
	}
	e := &h.s.slab[h.idx]
	if e.gen != h.gen {
		return nil
	}
	return e
}

// Pending reports whether the event is still queued to fire.
func (h Handle) Pending() bool {
	e := h.lease()
	return e != nil && e.state == statePending
}

// Cancelled reports whether the event was cancelled before it fired. A
// fired event reports false. Once the kernel reuses the underlying slot the
// handle is inert and also reports false.
func (h Handle) Cancelled() bool {
	e := h.lease()
	return e != nil && e.state == stateCancelled
}

// At returns the instant the event is (or was) scheduled to fire, or 0 for
// an inert handle. Guard with Pending when the distinction matters.
func (h Handle) At() Time {
	if e := h.lease(); e != nil {
		return e.at
	}
	return 0
}

// heapEntry is one element of the pending queue, ordered by (at, seq). The
// sort keys are stored inline so heap sifting never chases slab pointers.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Simulator is a deterministic discrete-event simulation kernel. It owns the
// virtual clock, the pending-event queue and a seeded random source shared by
// all stochastic models so runs reproduce exactly for a given seed.
//
// The kernel performs no steady-state allocations: event slots live in a
// slab recycled through a free list, and cancellation is lazy — Cancel
// marks the slot dead in O(1) and the queue drops dead entries when they
// surface (or in a bulk compaction once they outnumber the live ones),
// instead of an O(log n) removal per cancel.
//
// Simulator is not safe for concurrent use; the entire simulation executes on
// a single goroutine, which is what makes determinism cheap.
type Simulator struct {
	now     Time
	slab    []event
	free    int32 // head of the released-slot list, -1 when empty
	entries []heapEntry
	dead    int // cancelled entries still sitting in the queue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	limit   uint64 // safety valve against runaway event loops; 0 = unlimited
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), free: -1}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulator's deterministic random source. All model
// randomness must come from here; do not use the global rand functions.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of live (non-cancelled) events currently
// queued.
func (s *Simulator) Pending() int { return len(s.entries) - s.dead }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety valve: Run panics after firing more than n
// events, which turns accidental infinite event loops into a loud failure.
// n = 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// acquire leases a slot for a new pending event, reusing a released slot
// when one is available.
func (s *Simulator) acquire(at Time, fn func()) (int32, uint32) {
	if s.free >= 0 {
		idx := s.free
		e := &s.slab[idx]
		s.free = e.next
		e.gen++
		e.at, e.fn, e.state = at, fn, statePending
		return idx, e.gen
	}
	s.slab = append(s.slab, event{at: at, fn: fn, state: statePending})
	return int32(len(s.slab) - 1), 0
}

// release retires a slot that has left the queue. The final state stays
// readable through old Handles until the slot is leased again.
func (s *Simulator) release(idx int32, final uint8) {
	e := &s.slab[idx]
	e.state = final
	e.fn = nil // drop the closure so it can be collected
	e.next = s.free
	s.free = idx
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because silently reordering events would
// corrupt causality.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	idx, gen := s.acquire(t, fn)
	s.heapPush(heapEntry{at: t, seq: s.seq, idx: idx})
	s.seq++
	return Handle{s: s, idx: idx, gen: gen}
}

// Schedule schedules fn to run delay after the current time.
func (s *Simulator) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel marks a pending event dead in O(1); the queue discards the entry
// when it reaches the front, or earlier during a bulk compaction. Cancelling
// an already-fired, already-cancelled or inert handle is a no-op, so callers
// can cancel defensively.
func (s *Simulator) Cancel(h Handle) {
	if h.s != s { // covers the zero Handle and cross-simulator misuse
		return
	}
	e := &s.slab[h.idx]
	if e.gen != h.gen || e.state != statePending {
		return
	}
	e.state = stateCancelled
	s.dead++
	s.maybeCompact()
}

// compactMinDead keeps tiny queues from compacting on every few cancels;
// below this many dead entries the pop-time skip handles them cheaply.
const compactMinDead = 64

// maybeCompact rebuilds the queue without its dead entries once they
// outnumber the live ones. Filtering preserves nothing about the internal
// heap layout, but pop order is the total (at, seq) order either way, so
// compaction is invisible to the simulation.
func (s *Simulator) maybeCompact() {
	if s.dead < compactMinDead || s.dead*2 <= len(s.entries) {
		return
	}
	kept := s.entries[:0]
	for _, en := range s.entries {
		if s.slab[en.idx].state == statePending {
			kept = append(kept, en)
		} else {
			s.release(en.idx, stateCancelled)
		}
	}
	s.entries = kept
	s.dead = 0
	for i := len(s.entries)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Stop makes Run/RunUntil return after the currently executing event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and fires the next event. It reports false when the queue is
// empty or only holds events after horizon. Dead entries at the front are
// collected without firing (and without advancing the clock), each counting
// as one step.
func (s *Simulator) step(horizon Time) bool {
	if len(s.entries) == 0 {
		return false
	}
	top := s.entries[0]
	e := &s.slab[top.idx]
	if e.state == stateCancelled {
		s.heapPopTop()
		s.dead--
		s.release(top.idx, stateCancelled)
		return true
	}
	if top.at > horizon {
		return false
	}
	s.heapPopTop()
	fn := e.fn
	s.release(top.idx, stateFired)
	s.now = top.at
	s.fired++
	if s.limit != 0 && s.fired > s.limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
	}
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(MaxTime) {
	}
}

// RunUntil executes events with timestamps ≤ horizon, then advances the clock
// to horizon. Events scheduled after horizon remain queued.
func (s *Simulator) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && s.step(horizon) {
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// --- pending queue: a hand-rolled binary heap over (at, seq) ---

func (s *Simulator) heapPush(en heapEntry) {
	s.entries = append(s.entries, en)
	s.siftUp(len(s.entries) - 1)
}

// heapPopTop removes the root entry.
func (s *Simulator) heapPopTop() {
	n := len(s.entries) - 1
	s.entries[0] = s.entries[n]
	s.entries = s.entries[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

func (s *Simulator) siftUp(i int) {
	en := s.entries[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(en, s.entries[parent]) {
			break
		}
		s.entries[i] = s.entries[parent]
		i = parent
	}
	s.entries[i] = en
}

func (s *Simulator) siftDown(i int) {
	n := len(s.entries)
	en := s.entries[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && entryLess(s.entries[r], s.entries[c]) {
			c = r
		}
		if !entryLess(s.entries[c], en) {
			break
		}
		s.entries[i] = s.entries[c]
		i = c
	}
	s.entries[i] = en
}
