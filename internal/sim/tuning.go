package sim

// Tuning enumeration and naming for the autotune harness (figgen
// -autotune). The search space is the cross product of the kernel's
// performance knobs; every point produces the identical event order (pop
// order is enforced against all queue structures), so a search harness is
// free to measure any of them against any workload and pin the winner
// without re-validating a single output bit.

import (
	"fmt"
	"strconv"
	"strings"
)

// Key returns the canonical compact label of a tuning, e.g.
// "ts0-wb10-cd64-wmp16", with adaptive routing spelled "wmpA". Keys
// round-trip through ParseTuningKey; they are the identifiers the autotune
// harness records in BENCH_macro.json and the -tuning flag accepts.
func (t Tuning) Key() string {
	wmp := strconv.Itoa(t.WheelMinPending)
	if t.WheelMinPending == WheelAdaptive {
		wmp = "A"
	}
	return fmt.Sprintf("ts%d-wb%d-cd%d-wmp%s", t.TickShift, t.WheelBits, t.CompactMinDead, wmp)
}

// ParseTuningKey parses a Key back into a validated Tuning. The spelling
// "default" resolves to DefaultTuning.
func ParseTuningKey(s string) (Tuning, error) {
	if s == "default" {
		return DefaultTuning(), nil
	}
	var t Tuning
	bad := func() (Tuning, error) {
		return Tuning{}, fmt.Errorf("sim: tuning key %q: want ts<n>-wb<n>-cd<n>-wmp<n|A> or \"default\"", s)
	}
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return bad()
	}
	for i, prefix := range []string{"ts", "wb", "cd", "wmp"} {
		v, ok := strings.CutPrefix(parts[i], prefix)
		if !ok {
			return bad()
		}
		if prefix == "wmp" && v == "A" {
			t.WheelMinPending = WheelAdaptive
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return bad()
		}
		switch prefix {
		case "ts":
			t.TickShift = uint(n)
		case "wb":
			t.WheelBits = uint(n)
		case "cd":
			t.CompactMinDead = n
		case "wmp":
			t.WheelMinPending = n
		}
	}
	if err := t.Validate(); err != nil {
		return Tuning{}, err
	}
	return t, nil
}

// TuningGrid returns the autotune search's seeded coarse grid: the
// default tuning first, then the cross product of tick granularities
// (exact 1 µs up to 256 µs buckets), wheel sizes (cache-tight up to
// second-scale span) and routing thresholds (always-wheel, low and
// default fixed thresholds, and the adaptive mode). The grid brackets
// every regime the committed workloads have hit — dense MAC contention,
// aggregated metro beacons, sparse second-scale process events — and
// hill-climbing from its best point (Neighbors) refines between the
// lattice lines.
func TuningGrid() []Tuning {
	def := DefaultTuning()
	grid := []Tuning{def}
	for _, ts := range []uint{0, 4, 8} {
		for _, wb := range []uint{8, 10, 14} {
			for _, wmp := range []int{0, 4, 16, WheelAdaptive} {
				t := Tuning{TickShift: ts, WheelBits: wb, CompactMinDead: def.CompactMinDead, WheelMinPending: wmp}
				if t != def {
					grid = append(grid, t)
				}
			}
		}
	}
	return grid
}

// Neighbors returns the hill-climb moves from t: each knob stepped one
// notch in each direction (shift/bits ±2, the count knobs halved and
// doubled, adaptive routing toggled). Every returned tuning validates;
// moves that would leave the representable range are omitted.
func (t Tuning) Neighbors() []Tuning {
	var out []Tuning
	add := func(n Tuning) {
		if n != t && n.Validate() == nil {
			out = append(out, n)
		}
	}
	for _, d := range []int{-2, 2} {
		if ts := int(t.TickShift) + d; ts >= 0 {
			n := t
			n.TickShift = uint(ts)
			add(n)
		}
	}
	for _, d := range []int{-2, 2} {
		if wb := int(t.WheelBits) + d; wb >= 1 {
			n := t
			n.WheelBits = uint(wb)
			add(n)
		}
	}
	for _, cd := range []int{t.CompactMinDead / 2, t.CompactMinDead * 2} {
		if cd >= 1 {
			n := t
			n.CompactMinDead = cd
			add(n)
		}
	}
	if t.WheelMinPending == WheelAdaptive {
		// The adaptive mode's only neighbor is the fixed threshold it
		// adapts around.
		n := t
		n.WheelMinPending = DefaultTuning().WheelMinPending
		add(n)
		return out
	}
	down, up := t.WheelMinPending/2, t.WheelMinPending*2
	if t.WheelMinPending == 0 {
		down, up = 0, 2 // 0 halves to itself; restart the ladder at 2
	}
	for _, wmp := range []int{down, up, WheelAdaptive} {
		n := t
		n.WheelMinPending = wmp
		add(n)
	}
	return out
}
