package sim

import (
	"testing"
)

// TestSameTickOrderingAcrossBucketBoundaries pins the (at, seq) contract
// where the wheel is weakest: coarse ticks put events with different
// timestamps in one bucket (the due heap must order them by at, then seq),
// and timestamps one microsecond apart can land in adjacent buckets (the
// bitmap scan must visit both in order).
func TestSameTickOrderingAcrossBucketBoundaries(t *testing.T) {
	s := NewTuned(1, Tuning{TickShift: 3, WheelBits: 4, CompactMinDead: 64}) // 8 µs ticks
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	// Interleave insertions so bucket FIFO order differs from (at, seq)
	// order: ats 15, 9, 14, 9 share tick 1; ats 16, 17 sit in tick 2.
	s.At(15, rec(0))
	s.At(9, rec(1))
	s.At(17, rec(2))
	s.At(14, rec(3))
	s.At(9, rec(4))
	s.At(16, rec(5))
	s.Run()

	want := []int{1, 4, 3, 0, 5, 2} // at 9(seq1), 9(seq4), 14, 15, 16, 17
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestResetMigratesBetweenWheelAndOverflow rearms one timer back and forth
// across the wheel span, so each Reset lazily kills an arm in one structure
// and leases a new one in the other.
func TestResetMigratesBetweenWheelAndOverflow(t *testing.T) {
	s := NewTuned(1, Tuning{TickShift: 0, WheelBits: 4, CompactMinDead: 64}) // span 16 µs
	fired := 0
	tm := NewTimer(s, func() { fired++ })

	tm.Reset(5)    // wheel
	tm.Reset(1000) // overflow, wheel arm dead
	tm.Reset(7)    // wheel again, overflow arm dead
	tm.Reset(500)  // overflow again
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after reset chain, want 1", got)
	}
	s.RunUntil(499)
	if fired != 0 {
		t.Fatal("timer fired before its final deadline")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want exactly 1", fired)
	}
	if s.Now() != 500 {
		t.Fatalf("final arm fired at %v, want 500", s.Now())
	}
}

// TestCancelOverflowEntries cancels far-future events sitting in the
// overflow heap — both below and above the compaction threshold — and
// checks they neither fire nor linger.
func TestCancelOverflowEntries(t *testing.T) {
	s := NewTuned(1, Tuning{TickShift: 0, WheelBits: 4, CompactMinDead: 8})
	const n = 64
	var fired []int
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		i := i
		handles[i] = s.At(Time(1000+i), func() { fired = append(fired, i) })
	}
	// Cancel 3 of every 4: with CompactMinDead 8 this drives the overflow
	// heap through compaction while cancelled tops also surface at staging.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			s.Cancel(handles[i])
		}
	}
	if got := s.Pending(); got != n/4 {
		t.Fatalf("Pending() = %d after mass cancel, want %d", got, n/4)
	}
	s.Run()
	if len(fired) != n/4 {
		t.Fatalf("%d events fired, want %d", len(fired), n/4)
	}
	for k, id := range fired {
		if id != k*4 {
			t.Fatalf("fire order broken at %d: got id %d, want %d", k, id, k*4)
		}
	}
	for i := range handles {
		if handles[i].Pending() {
			t.Fatalf("handle %d still pending after drain", i)
		}
	}
}

// TestClockAdvanceAcrossFullRotation jumps the clock over several complete
// wheel rotations — with cancelled events stranded behind the jumps — and
// checks that later events still fire in order and the stale dead entries
// are eventually collected rather than corrupting their reused buckets.
func TestClockAdvanceAcrossFullRotation(t *testing.T) {
	s := NewTuned(1, Tuning{TickShift: 0, WheelBits: 3, CompactMinDead: 1024}) // span 8 µs
	var got []Time
	rec := func() { got = append(got, s.Now()) }

	// A live event every 3 full rotations, plus a cancelled one in between
	// whose bucket the later events must be able to reuse.
	var fireAts []Time
	for k := 1; k <= 5; k++ {
		at := Time(k * 24)
		s.At(at, rec)
		fireAts = append(fireAts, at)
		h := s.At(at+4, func() { t.Error("cancelled event fired") })
		s.Cancel(h)
	}
	// Jump in horizon strides wider than the span so whole rotations pass
	// without any staging.
	for h := Time(10); h < 200; h += 17 {
		s.RunUntil(h)
	}
	s.Run()
	if len(got) != len(fireAts) {
		t.Fatalf("fired %d events, want %d", len(got), len(fireAts))
	}
	for i, at := range fireAts {
		if got[i] != at {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], at)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events pending after drain", s.Pending())
	}
}

// TestTuningValidate rejects degenerate knob settings.
func TestTuningValidate(t *testing.T) {
	for _, tun := range []Tuning{
		{TickShift: 0, WheelBits: 0, CompactMinDead: 64},
		{TickShift: 0, WheelBits: 21, CompactMinDead: 64},
		{TickShift: 31, WheelBits: 10, CompactMinDead: 64},
		{TickShift: 0, WheelBits: 10, CompactMinDead: 0},
	} {
		if err := tun.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", tun)
		}
	}
	if err := DefaultTuning().Validate(); err != nil {
		t.Errorf("default tuning invalid: %v", err)
	}
}

// TestBatchCancelAll checks the group-cancel contract: pending members die,
// fired members are untouched, and the batch is reusable afterwards.
func TestBatchCancelAll(t *testing.T) {
	s := New(1)
	b := s.NewBatch(4)
	var fired []int
	for i := 0; i < 4; i++ {
		i := i
		b.Schedule(Time(10+i), func() { fired = append(fired, i) })
	}
	s.RunUntil(11) // fires members 0 and 1
	if got := b.Len(); got != 2 {
		t.Fatalf("Len() = %d with two members fired, want 2", got)
	}
	b.CancelAll()
	if got := b.Len(); got != 0 {
		t.Fatalf("Len() = %d after CancelAll, want 0", got)
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("%d members fired, want 2 (the pre-cancel ones)", len(fired))
	}

	// The batch must be reusable with the same backing storage.
	ran := false
	b.Schedule(5, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("member scheduled after CancelAll did not fire")
	}
}

// TestSlotBatch checks the fixed-slot form: slot scheduling replaces the
// previous occupant (cancelling it if still pending), Slot exposes the
// current handle, and CancelAll vacates every slot while keeping them
// reserved for reuse.
func TestSlotBatch(t *testing.T) {
	s := New(1)
	b := s.NewSlotBatch(2)
	var fired []string
	b.ScheduleSlot(0, 10, func() { fired = append(fired, "a") })
	b.ScheduleSlot(1, 20, func() { fired = append(fired, "b") })
	if !b.Slot(0).Pending() || !b.Slot(1).Pending() {
		t.Fatal("slots not pending after scheduling")
	}
	// Rescheduling an occupied slot cancels the occupant.
	b.ScheduleSlot(0, 5, func() { fired = append(fired, "a2") })
	s.Run()
	if got := len(fired); got != 2 || fired[0] != "a2" || fired[1] != "b" {
		t.Fatalf("fired %v, want [a2 b]", fired)
	}

	b.ScheduleSlot(0, 10, func() { t.Error("cancelled slot member fired") })
	b.ScheduleSlot(1, 10, func() { t.Error("cancelled slot member fired") })
	b.CancelAll()
	if b.Len() != 0 {
		t.Fatalf("Len() = %d after CancelAll, want 0", b.Len())
	}
	s.Run()

	// Slots stay addressable after CancelAll.
	ran := false
	b.ScheduleSlot(1, 3, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("slot unusable after CancelAll")
	}
}

// TestSlotBatchSteadyStateAllocs pins the cost model that justifies using
// slot batches on the MAC hot path: rearming a slot is allocation-free.
func TestSlotBatchSteadyStateAllocs(t *testing.T) {
	s := New(1)
	b := s.NewSlotBatch(2)
	nop := func() {}
	b.ScheduleSlot(0, 1, nop)
	b.ScheduleSlot(1, 2, nop)
	s.Run()
	if a := testing.AllocsPerRun(200, func() {
		b.ScheduleSlot(0, 1, nop)
		b.ScheduleSlot(1, 2, nop)
		b.CancelAll()
		s.RunUntil(s.Now() + 3)
	}); a != 0 {
		t.Errorf("slot rearm cycle allocates %v per run, want 0", a)
	}
}

// TestBatchSchedulingIsOrderNeutral pins the adoption guarantee: scheduling
// through a Batch produces the same firing order as scheduling directly,
// because Batch.At/Schedule are the plain Simulator calls plus bookkeeping.
func TestBatchSchedulingIsOrderNeutral(t *testing.T) {
	direct := New(1)
	var dOrder []int
	direct.At(5, func() { dOrder = append(dOrder, 0) })
	direct.At(5, func() { dOrder = append(dOrder, 1) })
	direct.At(3, func() { dOrder = append(dOrder, 2) })
	direct.Run()

	batched := New(1)
	b := batched.NewBatch(3)
	var bOrder []int
	b.At(5, func() { bOrder = append(bOrder, 0) })
	b.At(5, func() { bOrder = append(bOrder, 1) })
	b.At(3, func() { bOrder = append(bOrder, 2) })
	batched.Run()

	if len(dOrder) != len(bOrder) {
		t.Fatal("event counts diverge")
	}
	for i := range dOrder {
		if dOrder[i] != bOrder[i] {
			t.Fatalf("order diverges: direct %v, batched %v", dOrder, bOrder)
		}
	}
}

// TestBatchSteadyStateAllocs pins the zero-allocation property of the
// schedule/cancel group cycle once the batch and slab have warmed up.
func TestBatchSteadyStateAllocs(t *testing.T) {
	s := New(1)
	b := s.NewBatch(8)
	nop := func() {}
	// Warm up.
	for i := 0; i < 8; i++ {
		b.Schedule(Time(i+1), nop)
	}
	b.CancelAll()
	s.Run()

	if a := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			b.Schedule(Time(i+1), nop)
		}
		b.CancelAll()
		s.RunUntil(s.Now() + 10)
	}); a != 0 {
		t.Errorf("batch schedule/cancel cycle allocates %v per run, want 0", a)
	}
}

// TestBatchReserveGrowsSlab checks that Reserve pre-leases enough slab
// capacity that a burst of first-time schedules does not allocate.
func TestBatchReserveGrowsSlab(t *testing.T) {
	s := New(1)
	b := s.NewBatch(0)
	nop := func() {}
	if a := testing.AllocsPerRun(5, func() {
		b.Reserve(64) // no-op once the first call has grown the capacity
		for i := 0; i < 64; i++ {
			b.Schedule(Time(i+1), nop)
		}
		b.CancelAll()
		s.Run() // collect the lazily-cancelled slots back onto the free list
	}); a != 0 {
		t.Errorf("reserved burst allocates %v per run, want 0", a)
	}
}
