package app

import (
	"testing"

	"repro/internal/sim"
)

func TestCBREmitsAtRate(t *testing.T) {
	s := sim.New(1)
	src := MP3CBR(s) // 16 KB/s in 4096-byte chunks: every 256 ms
	var total int
	src.Start(func(c Chunk) { total += c.Bytes })
	s.RunUntil(10 * sim.Second)
	want := int(10*16000/4096) * 4096 // 39 chunks
	if total != want {
		t.Errorf("emitted %d bytes in 10s, want %d", total, want)
	}
	if src.Emitted() != total {
		t.Error("Emitted() disagrees with sink")
	}
}

func TestCBRStops(t *testing.T) {
	s := sim.New(2)
	src := NewCBR(s, 80e3, 1000)
	n := 0
	src.Start(func(Chunk) { n++ })
	s.RunUntil(sim.Second)
	src.Stop()
	before := n
	s.RunUntil(2 * sim.Second)
	if n != before {
		t.Error("source kept emitting after Stop")
	}
}

func TestCBRDoubleStartPanics(t *testing.T) {
	s := sim.New(3)
	src := NewCBR(s, 80e3, 1000)
	src.Start(func(Chunk) {})
	defer func() {
		if recover() == nil {
			t.Error("double start accepted")
		}
	}()
	src.Start(func(Chunk) {})
}

func TestLayeredSplitsLayers(t *testing.T) {
	s := sim.New(4)
	src := NewLayered(s, 128e3, 768e3)
	var audio, video int
	src.Start(func(c Chunk) {
		if c.Layer == 0 {
			audio += c.Bytes
		} else {
			video += c.Bytes
		}
	})
	s.RunUntil(10 * sim.Second)
	if audio == 0 || video == 0 {
		t.Fatalf("audio=%d video=%d, want both nonzero", audio, video)
	}
	// Video at 6x audio rate: ratio should be near 6.
	ratio := float64(video) / float64(audio)
	if ratio < 4 || ratio > 8 {
		t.Errorf("video/audio ratio = %.1f, want ≈ 6", ratio)
	}
}

func TestLayeredVideoToggle(t *testing.T) {
	s := sim.New(5)
	src := NewLayered(s, 128e3, 768e3)
	var video int
	src.Start(func(c Chunk) {
		if c.Layer == 1 {
			video += c.Bytes
		}
	})
	s.RunUntil(2 * sim.Second)
	src.SetVideo(false)
	if src.VideoOn() {
		t.Error("toggle failed")
	}
	snapshot := video
	s.RunUntil(10 * sim.Second)
	if video != snapshot {
		t.Error("video kept flowing after SetVideo(false)")
	}
	src.SetVideo(true)
	s.RunUntil(12 * sim.Second)
	if video == snapshot {
		t.Error("video did not resume")
	}
}

func TestOnOffAlternates(t *testing.T) {
	s := sim.New(6)
	src := NewOnOff(s, 2*sim.Second, 2*sim.Second, 1e6)
	var total int
	src.Start(func(c Chunk) { total += c.Bytes })
	s.RunUntil(60 * sim.Second)
	src.Stop()
	if total == 0 {
		t.Fatal("on/off source emitted nothing")
	}
	// ~50% duty cycle at 1 Mb/s over 60 s ≈ 3.75 MB; accept a wide band.
	mean := 60.0 / 2 * 1e6 / 8
	if float64(total) < mean*0.4 || float64(total) > mean*1.6 {
		t.Errorf("emitted %d bytes, want around %.0f", total, mean)
	}
}

func TestOnOffStops(t *testing.T) {
	s := sim.New(7)
	src := NewOnOff(s, sim.Second, sim.Second, 1e6)
	n := 0
	src.Start(func(Chunk) { n++ })
	s.RunUntil(5 * sim.Second)
	src.Stop()
	before := n
	s.RunUntil(10 * sim.Second)
	if n != before {
		t.Error("emitted after Stop")
	}
}

func TestFileEmitsExactly(t *testing.T) {
	s := sim.New(8)
	src := NewFile(s, 200_000)
	var total, chunks int
	src.Start(func(c Chunk) { total += c.Bytes; chunks++ })
	if total != 200_000 {
		t.Errorf("emitted %d, want 200000", total)
	}
	if chunks != 4 { // 3 × 64 KB + 1 × remainder
		t.Errorf("chunks = %d, want 4", chunks)
	}
}

func TestSourcesDeterministic(t *testing.T) {
	run := func() int {
		s := sim.New(42)
		src := NewOnOff(s, sim.Second, 3*sim.Second, 2e6)
		total := 0
		src.Start(func(c Chunk) { total += c.Bytes })
		s.RunUntil(30 * sim.Second)
		src.Stop()
		return total
	}
	if run() != run() {
		t.Error("same seed produced different traffic")
	}
}
