// Package app provides the traffic workloads the experiments stream through
// the system: CBR audio (the paper's MP3 scenario), layered audio+video for
// proxy adaptation, ON/OFF web-like traffic and bulk file transfers. All
// sources are deterministic for a given simulator seed.
package app

import (
	"fmt"

	"repro/internal/sim"
)

// Chunk is one emitted unit of application data.
type Chunk struct {
	Bytes int
	// Layer tags layered streams: 0 = base (audio), 1 = enhancement
	// (video). Single-layer sources always emit layer 0.
	Layer int
	At    sim.Time
}

// Sink consumes emitted chunks.
type Sink func(c Chunk)

// Source is anything that can start emitting into a sink and be stopped.
type Source interface {
	Start(sink Sink)
	Stop()
	// Emitted returns total bytes emitted so far.
	Emitted() int
}

// CBR emits fixed-size chunks at a constant interval: the shape of the
// paper's "high-quality MP3 audio" stream.
type CBR struct {
	sim        *sim.Simulator
	ChunkBytes int
	Interval   sim.Time
	ticker     *sim.Ticker
	emitted    int
}

// NewCBR creates a constant-bit-rate source. rateBps/chunkBytes determine
// the emission interval.
func NewCBR(s *sim.Simulator, rateBps float64, chunkBytes int) *CBR {
	if rateBps <= 0 || chunkBytes <= 0 {
		panic(fmt.Sprintf("app: invalid CBR rate=%g chunk=%d", rateBps, chunkBytes))
	}
	interval := sim.FromSeconds(float64(chunkBytes*8) / rateBps)
	return &CBR{sim: s, ChunkBytes: chunkBytes, Interval: interval}
}

// MP3CBR returns the paper's 128 kb/s audio source in 4 KB chunks
// (16 KB/s ⇒ one chunk every 250 ms).
func MP3CBR(s *sim.Simulator) *CBR { return NewCBR(s, 128e3, 4096) }

// Start implements Source.
func (c *CBR) Start(sink Sink) {
	if c.ticker != nil {
		panic("app: CBR already started")
	}
	c.ticker = sim.NewTicker(c.sim, c.Interval, func() {
		c.emitted += c.ChunkBytes
		sink(Chunk{Bytes: c.ChunkBytes, At: c.sim.Now()})
	})
}

// Stop implements Source.
func (c *CBR) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// Emitted implements Source.
func (c *CBR) Emitted() int { return c.emitted }

// Layered emits a base audio layer plus a video enhancement layer. The
// enhancement layer can be toggled off by a proxy adapter ("dropping video
// content and delivering only audio in adverse conditions").
type Layered struct {
	sim       *sim.Simulator
	audio     *CBR
	videoRate float64
	videoSize int
	ticker    *sim.Ticker
	videoOn   bool
	emitted   int
	sink      Sink
}

// NewLayered creates a layered source: audioRate base + videoRate
// enhancement (bits/second each).
func NewLayered(s *sim.Simulator, audioRate, videoRate float64) *Layered {
	l := &Layered{
		sim:       s,
		audio:     NewCBR(s, audioRate, 4096),
		videoRate: videoRate,
		videoSize: 8192,
		videoOn:   true,
	}
	return l
}

// Start implements Source.
func (l *Layered) Start(sink Sink) {
	l.sink = sink
	l.audio.Start(func(c Chunk) {
		l.emitted += c.Bytes
		sink(c)
	})
	interval := sim.FromSeconds(float64(l.videoSize*8) / l.videoRate)
	l.ticker = sim.NewTicker(l.sim, interval, func() {
		if !l.videoOn {
			return
		}
		l.emitted += l.videoSize
		sink(Chunk{Bytes: l.videoSize, Layer: 1, At: l.sim.Now()})
	})
}

// Stop implements Source.
func (l *Layered) Stop() {
	l.audio.Stop()
	if l.ticker != nil {
		l.ticker.Stop()
		l.ticker = nil
	}
}

// Emitted implements Source.
func (l *Layered) Emitted() int { return l.emitted }

// SetVideo enables or disables the enhancement layer.
func (l *Layered) SetVideo(on bool) { l.videoOn = on }

// VideoOn reports whether the enhancement layer is emitting.
func (l *Layered) VideoOn() bool { return l.videoOn }

// OnOff is a web-like source: exponential ON periods emitting at a rate,
// exponential OFF periods of silence.
type OnOff struct {
	sim     *sim.Simulator
	MeanOn  sim.Time
	MeanOff sim.Time
	RateBps float64
	Chunk   int
	on      bool
	stopped bool
	emitted int
	sink    Sink
	ticker  *sim.Ticker
}

// NewOnOff creates an ON/OFF source.
func NewOnOff(s *sim.Simulator, meanOn, meanOff sim.Time, rateBps float64) *OnOff {
	if meanOn <= 0 || meanOff <= 0 || rateBps <= 0 {
		panic("app: invalid on/off parameters")
	}
	return &OnOff{sim: s, MeanOn: meanOn, MeanOff: meanOff, RateBps: rateBps, Chunk: 1460}
}

// Start implements Source.
func (o *OnOff) Start(sink Sink) {
	o.sink = sink
	o.enterOff()
}

func (o *OnOff) expDur(mean sim.Time) sim.Time {
	d := sim.FromSeconds(o.sim.Rand().ExpFloat64() * mean.Seconds())
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

func (o *OnOff) enterOn() {
	if o.stopped {
		return
	}
	o.on = true
	interval := sim.FromSeconds(float64(o.Chunk*8) / o.RateBps)
	o.ticker = sim.NewTicker(o.sim, interval, func() {
		o.emitted += o.Chunk
		o.sink(Chunk{Bytes: o.Chunk, At: o.sim.Now()})
	})
	o.sim.Schedule(o.expDur(o.MeanOn), func() {
		if o.ticker != nil {
			o.ticker.Stop()
			o.ticker = nil
		}
		o.enterOff()
	})
}

func (o *OnOff) enterOff() {
	if o.stopped {
		return
	}
	o.on = false
	o.sim.Schedule(o.expDur(o.MeanOff), o.enterOn)
}

// Stop implements Source.
func (o *OnOff) Stop() {
	o.stopped = true
	if o.ticker != nil {
		o.ticker.Stop()
		o.ticker = nil
	}
}

// Emitted implements Source.
func (o *OnOff) Emitted() int { return o.emitted }

// On reports whether the source is currently in an ON period.
func (o *OnOff) On() bool { return o.on }

// File emits one bulk transfer as fixed-size chunks back to back.
type File struct {
	sim     *sim.Simulator
	Total   int
	Chunk   int
	emitted int
	stopped bool
}

// NewFile creates a bulk source of total bytes in 64 KB chunks.
func NewFile(s *sim.Simulator, total int) *File {
	if total <= 0 {
		panic("app: file size must be positive")
	}
	return &File{sim: s, Total: total, Chunk: 64 * 1024}
}

// Start implements Source: the whole file is offered immediately.
func (f *File) Start(sink Sink) {
	for off := 0; off < f.Total && !f.stopped; off += f.Chunk {
		n := f.Chunk
		if off+n > f.Total {
			n = f.Total - off
		}
		f.emitted += n
		sink(Chunk{Bytes: n, At: f.sim.Now()})
	}
}

// Stop implements Source.
func (f *File) Stop() { f.stopped = true }

// Emitted implements Source.
func (f *File) Emitted() int { return f.emitted }
