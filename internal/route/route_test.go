package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds a 1×n chain with the given spacing: forced linear topology.
func line(n int, spacing, rng, battery float64) *Network {
	return NewGrid(n, 1, spacing, rng, battery, DefaultRadioCost())
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{MinHop, MinEnergy, MaxMinBattery, Conditional} {
		if p.String() == "" {
			t.Error("missing name")
		}
	}
}

func TestRadioCostModel(t *testing.T) {
	c := DefaultRadioCost()
	// TX over 0 m = electronics only; grows with d².
	if got := c.TxEnergy(8, 0); math.Abs(got-8*50e-9) > 1e-15 {
		t.Errorf("TxEnergy(8,0) = %v", got)
	}
	if c.TxEnergy(8, 100) <= c.TxEnergy(8, 10) {
		t.Error("amplifier cost not increasing with distance")
	}
	if got := c.RxEnergy(8); math.Abs(got-8*50e-9) > 1e-15 {
		t.Errorf("RxEnergy = %v", got)
	}
}

func TestMinHopOnChain(t *testing.T) {
	// 5-node chain, range covers 2 hops: min-hop should take the long steps.
	n := line(5, 10, 25, 1)
	p := n.Route(MinHop, 0, 4)
	if len(p) != 3 { // 0 → 2 → 4
		t.Fatalf("path = %v, want 3 nodes", p)
	}
}

func TestMinEnergyPrefersShortHops(t *testing.T) {
	// With amplifier cost ∝ d², two 10 m hops beat one 20 m hop when
	// d² dominates: 2×(e+100p·100) vs (e+100p·400)+e.
	// Use a higher amp constant so the effect is decisive.
	cost := RadioCost{ElecJPerBit: 10e-9, AmpJPerBitM2: 1e-9}
	n := NewGrid(3, 1, 10, 25, 1, cost)
	p := n.Route(MinEnergy, 0, 2)
	if len(p) != 3 { // 0 → 1 → 2
		t.Fatalf("min-energy path = %v, want relaying through middle", p)
	}
	hop := n.Route(MinHop, 0, 2)
	if len(hop) != 2 {
		t.Fatalf("min-hop path = %v, want direct", hop)
	}
}

func TestNoPathWhenOutOfRange(t *testing.T) {
	n := line(3, 50, 25, 1) // gaps larger than range
	if p := n.Route(MinHop, 0, 2); p != nil {
		t.Errorf("found impossible path %v", p)
	}
	if n.Send(MinHop, 0, 2, 1000) {
		t.Error("send succeeded without a path")
	}
	_, failed, _, _ := n.Stats()
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
}

func TestSendDrainsBatteries(t *testing.T) {
	n := line(3, 10, 15, 1)
	before := n.Node(1).Battery
	if !n.Send(MinEnergy, 0, 2, 1e6) {
		t.Fatal("send failed")
	}
	if n.Node(1).Battery >= before {
		t.Error("relay node not drained")
	}
	delivered, _, energy, _ := n.Stats()
	if delivered != 1 || energy <= 0 {
		t.Errorf("delivered=%d energy=%v", delivered, energy)
	}
}

func TestDeadNodesExcluded(t *testing.T) {
	n := line(3, 10, 15, 1)
	n.Node(1).Battery = 0 // kill the only relay
	if p := n.Route(MinHop, 0, 2); p != nil {
		t.Errorf("routed through dead node: %v", p)
	}
}

func TestMaxMinAvoidsDepletedRelay(t *testing.T) {
	// Two parallel relays; one nearly drained. Max-min must pick the
	// healthy one, min-energy is indifferent (symmetric geometry) but
	// deterministic — so force asymmetry via battery only.
	cost := DefaultRadioCost()
	net := &Network{rang: 15, cost: cost, BatteryThreshold: 0.2, firstDeathPkt: -1}
	mk := func(id int, x, y, level float64) *Node {
		nd := &Node{ID: id, X: x, Y: y, Battery: level, capacity: 1}
		net.nodes = append(net.nodes, nd)
		return nd
	}
	mk(0, 0, 0, 1)      // src
	mk(1, 10, 5, 0.9)   // healthy relay
	mk(2, 10, -5, 0.05) // depleted relay
	mk(3, 20, 0, 1)     // dst
	p := net.Route(MaxMinBattery, 0, 3)
	if len(p) != 3 || p[1] != 1 {
		t.Errorf("max-min path = %v, want through healthy relay 1", p)
	}
}

func TestConditionalSwitchesAtThreshold(t *testing.T) {
	// A short-hop chain (min-energy route) whose middle node drains below
	// threshold: conditional must divert to the widest path even if it is
	// longer/more expensive.
	cost := RadioCost{ElecJPerBit: 10e-9, AmpJPerBitM2: 1e-9}
	net := &Network{rang: 30, cost: cost, BatteryThreshold: 0.2, firstDeathPkt: -1}
	mk := func(id int, x, y, level float64) {
		net.nodes = append(net.nodes, &Node{ID: id, X: x, Y: y, Battery: level, capacity: 1})
	}
	mk(0, 0, 0, 1)
	mk(1, 10, 0, 1) // cheap relay, healthy for now
	mk(2, 10, 8, 1) // detour relay
	mk(3, 20, 0, 1) // dst
	p1 := net.Route(Conditional, 0, 3)
	if len(p1) != 3 || p1[1] != 1 {
		t.Fatalf("healthy conditional path = %v, want through 1", p1)
	}
	net.nodes[1].Battery = 0.1 // below threshold
	p2 := net.Route(Conditional, 0, 3)
	if len(p2) >= 3 && p2[1] == 1 {
		t.Errorf("conditional kept using depleted relay: %v", p2)
	}
}

func TestLifetimeOrderingAcrossPolicies(t *testing.T) {
	// Cross-traffic over a grid: battery-aware routing should survive
	// longer (packets before first death) than pure min-energy, which
	// hammers the cheapest relays.
	run := func(policy Policy) int {
		rng := rand.New(rand.NewSource(5))
		n := NewGrid(5, 5, 10, 15, 0.02, DefaultRadioCost())
		for i := 0; i < 40000; i++ {
			src := rng.Intn(5)              // left edge-ish
			dst := 20 + rng.Intn(5)         // right edge-ish
			n.Send(policy, src, dst, 8_000) // 1 KB packets
			if _, _, _, death := n.Stats(); death != -1 {
				return death
			}
		}
		return math.MaxInt
	}
	minEnergy := run(MinEnergy)
	maxMin := run(MaxMinBattery)
	cond := run(Conditional)
	if maxMin <= minEnergy {
		t.Errorf("max-min first death at pkt %d, min-energy %d: battery-awareness should extend it",
			maxMin, minEnergy)
	}
	if cond <= minEnergy {
		t.Errorf("conditional first death at pkt %d should beat min-energy %d", cond, minEnergy)
	}
}

func TestEnergyOrderingAcrossPolicies(t *testing.T) {
	// Min-energy routing spends the least energy per delivered packet.
	perPkt := func(policy Policy) float64 {
		rng := rand.New(rand.NewSource(7))
		n := NewGrid(5, 5, 10, 25, 10, DefaultRadioCost())
		for i := 0; i < 2000; i++ {
			n.Send(policy, rng.Intn(25), rng.Intn(25), 8_000)
		}
		delivered, _, energy, _ := n.Stats()
		if delivered == 0 {
			t.Fatal("nothing delivered")
		}
		return energy / float64(delivered)
	}
	me := perPkt(MinEnergy)
	mh := perPkt(MinHop)
	if me > mh {
		t.Errorf("min-energy %.3e J/pkt should not exceed min-hop %.3e", me, mh)
	}
}

// Property: any returned route starts at src, ends at dst, uses only alive
// nodes, respects radio range, and has no repeated nodes.
func TestRouteWellFormedProperty(t *testing.T) {
	prop := func(seed int64, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewRandom(rng, 25, 50, 18, 1, DefaultRadioCost())
		// Randomly deplete some nodes.
		for i := 0; i < 5; i++ {
			n.Node(rng.Intn(25)).Battery = 0
		}
		policy := Policy(policyRaw % 4)
		src, dst := rng.Intn(25), rng.Intn(25)
		if src == dst {
			return true
		}
		p := n.Route(policy, src, dst)
		if p == nil {
			return true // no path is a legal answer
		}
		if p[0] != src || p[len(p)-1] != dst {
			return false
		}
		seen := map[int]bool{}
		for i, id := range p {
			if seen[id] || !n.Node(id).Alive() {
				return false
			}
			seen[id] = true
			if i > 0 && n.dist(n.Node(p[i-1]), n.Node(id)) > n.rang+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNumAliveAndLevels(t *testing.T) {
	n := line(4, 10, 15, 1)
	if n.NumAlive() != 4 {
		t.Error("wrong alive count")
	}
	n.Node(2).Battery = 0
	if n.NumAlive() != 3 {
		t.Error("alive count after death wrong")
	}
	if n.Node(0).Level() != 1 {
		t.Error("full battery level wrong")
	}
	if n.Node(2).Level() != 0 {
		t.Error("dead battery level wrong")
	}
	if n.Size() != 4 {
		t.Error("size wrong")
	}
}
