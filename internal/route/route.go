// Package route implements the energy-efficient ad-hoc routing protocols
// the paper's link-layer survey points to: minimum-hop routing as the
// baseline, minimum-transmission-energy routing (MTPR-style), battery-aware
// max-min routing (MMBCR-style) and the conditional hybrid (CMMBCR-style)
// that uses minimum energy while every node on the path is healthy and
// switches to battery protection below a threshold.
//
// The radio cost model is the standard first-order one: transmitting b bits
// over distance d costs b·(Eelec + Eamp·d²); receiving costs b·Eelec.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Policy selects a path objective.
type Policy int

// Routing policies.
const (
	// MinHop minimizes hop count (energy-oblivious baseline).
	MinHop Policy = iota
	// MinEnergy minimizes total transmission+reception energy.
	MinEnergy
	// MaxMinBattery maximizes the minimum residual battery on the path.
	MaxMinBattery
	// Conditional uses MinEnergy while all nodes on that path are above
	// the battery threshold, otherwise MaxMinBattery (CMMBCR).
	Conditional
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinHop:
		return "min-hop"
	case MinEnergy:
		return "min-energy"
	case MaxMinBattery:
		return "max-min-battery"
	case Conditional:
		return "conditional"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// RadioCost holds the first-order radio model constants, in joules per bit.
type RadioCost struct {
	ElecJPerBit  float64 // electronics cost, paid at TX and RX
	AmpJPerBitM2 float64 // amplifier cost per square meter
}

// DefaultRadioCost returns the customary 50 nJ/bit electronics and
// 100 pJ/bit/m² amplifier constants.
func DefaultRadioCost() RadioCost {
	return RadioCost{ElecJPerBit: 50e-9, AmpJPerBitM2: 100e-12}
}

// TxEnergy returns the cost of transmitting bits over distance d.
func (r RadioCost) TxEnergy(bits int, d float64) float64 {
	return float64(bits) * (r.ElecJPerBit + r.AmpJPerBitM2*d*d)
}

// RxEnergy returns the cost of receiving bits.
func (r RadioCost) RxEnergy(bits int) float64 {
	return float64(bits) * r.ElecJPerBit
}

// Node is one network participant.
type Node struct {
	ID       int
	X, Y     float64
	Battery  float64 // joules remaining
	capacity float64
}

// Alive reports whether the node has energy left.
func (n *Node) Alive() bool { return n.Battery > 0 }

// Level returns the battery fraction remaining.
func (n *Node) Level() float64 {
	if n.capacity <= 0 {
		return 0
	}
	l := n.Battery / n.capacity
	if l < 0 {
		return 0
	}
	return l
}

// Network is an ad-hoc topology with per-node batteries.
type Network struct {
	nodes []*Node
	rang  float64 // radio range, meters
	cost  RadioCost
	// BatteryThreshold is the Conditional policy's protection level.
	BatteryThreshold float64

	deliveredPkts int
	failedPkts    int
	totalEnergyJ  float64
	firstDeathPkt int // packet count at first node death, -1 while none
	deaths        int
}

// NewGrid builds a w×h grid network with the given spacing, radio range and
// per-node battery capacity in joules.
func NewGrid(w, h int, spacing, radioRange, batteryJ float64, cost RadioCost) *Network {
	if w <= 0 || h <= 0 || spacing <= 0 || radioRange <= 0 || batteryJ <= 0 {
		panic("route: invalid grid parameters")
	}
	n := &Network{rang: radioRange, cost: cost, BatteryThreshold: 0.2, firstDeathPkt: -1}
	id := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			n.nodes = append(n.nodes, &Node{
				ID: id, X: float64(x) * spacing, Y: float64(y) * spacing,
				Battery: batteryJ, capacity: batteryJ,
			})
			id++
		}
	}
	return n
}

// NewRandom builds a network of n nodes placed uniformly in a side×side
// square.
func NewRandom(rng *rand.Rand, n int, side, radioRange, batteryJ float64, cost RadioCost) *Network {
	if n <= 0 || side <= 0 || radioRange <= 0 || batteryJ <= 0 {
		panic("route: invalid random parameters")
	}
	net := &Network{rang: radioRange, cost: cost, BatteryThreshold: 0.2, firstDeathPkt: -1}
	for i := 0; i < n; i++ {
		net.nodes = append(net.nodes, &Node{
			ID: i, X: rng.Float64() * side, Y: rng.Float64() * side,
			Battery: batteryJ, capacity: batteryJ,
		})
	}
	return net
}

// Node returns node i.
func (n *Network) Node(i int) *Node { return n.nodes[i] }

// Size returns the node count.
func (n *Network) Size() int { return len(n.nodes) }

// NumAlive counts nodes with energy.
func (n *Network) NumAlive() int {
	alive := 0
	for _, nd := range n.nodes {
		if nd.Alive() {
			alive++
		}
	}
	return alive
}

// Stats returns delivery and energy counters: delivered and failed packet
// counts, total energy spent, packet count at first death (-1 if none).
func (n *Network) Stats() (delivered, failed int, energyJ float64, firstDeathPkt int) {
	return n.deliveredPkts, n.failedPkts, n.totalEnergyJ, n.firstDeathPkt
}

func (n *Network) dist(a, b *Node) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// neighbors yields alive nodes within radio range of a.
func (n *Network) neighbors(a *Node) []*Node {
	var out []*Node
	for _, b := range n.nodes {
		if b == a || !b.Alive() {
			continue
		}
		if n.dist(a, b) <= n.rang {
			out = append(out, b)
		}
	}
	return out
}

// linkEnergy returns the per-bit cost of the a→b link (TX at a + RX at b).
func (n *Network) linkEnergy(a, b *Node) float64 {
	d := n.dist(a, b)
	return n.cost.TxEnergy(1, d) + n.cost.RxEnergy(1)
}

// Route computes a path from src to dst under the policy, or nil when no
// path exists among alive nodes.
func (n *Network) Route(policy Policy, src, dst int) []int {
	s, d := n.nodes[src], n.nodes[dst]
	if !s.Alive() || !d.Alive() {
		return nil
	}
	switch policy {
	case MinHop:
		return n.dijkstra(src, dst, func(a, b *Node) float64 { return 1 })
	case MinEnergy:
		return n.dijkstra(src, dst, n.linkEnergy)
	case MaxMinBattery:
		return n.widest(src, dst)
	case Conditional:
		p := n.dijkstra(src, dst, n.linkEnergy)
		if p == nil {
			return nil
		}
		for _, id := range p {
			if n.nodes[id].Level() < n.BatteryThreshold {
				return n.widest(src, dst)
			}
		}
		return p
	default:
		panic(fmt.Sprintf("route: unknown policy %d", int(policy)))
	}
}

// Send routes one packet of the given bit count and drains energy along the
// path. It reports whether delivery succeeded.
func (n *Network) Send(policy Policy, src, dst, bits int) bool {
	path := n.Route(policy, src, dst)
	if path == nil {
		n.failedPkts++
		return false
	}
	for i := 0; i+1 < len(path); i++ {
		a, b := n.nodes[path[i]], n.nodes[path[i+1]]
		d := n.dist(a, b)
		tx := n.cost.TxEnergy(bits, d)
		rx := n.cost.RxEnergy(bits)
		n.drain(a, tx)
		n.drain(b, rx)
		n.totalEnergyJ += tx + rx
	}
	n.deliveredPkts++
	return true
}

func (n *Network) drain(nd *Node, j float64) {
	if !nd.Alive() {
		return
	}
	nd.Battery -= j
	if nd.Battery <= 0 {
		nd.Battery = 0
		n.deaths++
		if n.firstDeathPkt == -1 {
			n.firstDeathPkt = n.deliveredPkts
		}
	}
}

// --- shortest path machinery ---

type pqItem struct {
	id    int
	prio  float64
	index int
}

type pq struct {
	items []*pqItem
	max   bool // max-heap for widest path
}

func (q pq) Len() int { return len(q.items) }
func (q pq) Less(i, j int) bool {
	if q.max {
		return q.items[i].prio > q.items[j].prio
	}
	return q.items[i].prio < q.items[j].prio
}
func (q pq) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
func (q *pq) Push(x any) {
	it := x.(*pqItem)
	it.index = len(q.items)
	q.items = append(q.items, it)
}
func (q *pq) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// dijkstra finds the min-cost path under an additive edge weight.
func (n *Network) dijkstra(src, dst int, weight func(a, b *Node) float64) []int {
	const inf = math.MaxFloat64
	dist := make([]float64, len(n.nodes))
	prev := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, &pqItem{id: src, prio: 0})
	visited := make([]bool, len(n.nodes))
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.id
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == dst {
			break
		}
		for _, b := range n.neighbors(n.nodes[u]) {
			w := weight(n.nodes[u], b)
			if nd := dist[u] + w; nd < dist[b.ID] {
				dist[b.ID] = nd
				prev[b.ID] = u
				heap.Push(q, &pqItem{id: b.ID, prio: nd})
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	return unwind(prev, src, dst)
}

// widest finds the path maximizing the minimum battery level of
// intermediate and endpoint nodes (bottleneck shortest path).
func (n *Network) widest(src, dst int) []int {
	width := make([]float64, len(n.nodes))
	prev := make([]int, len(n.nodes))
	for i := range width {
		width[i] = -1
		prev[i] = -1
	}
	width[src] = n.nodes[src].Level()
	q := &pq{max: true}
	heap.Push(q, &pqItem{id: src, prio: width[src]})
	visited := make([]bool, len(n.nodes))
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.id
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == dst {
			break
		}
		for _, b := range n.neighbors(n.nodes[u]) {
			w := math.Min(width[u], b.Level())
			if w > width[b.ID] {
				width[b.ID] = w
				prev[b.ID] = u
				heap.Push(q, &pqItem{id: b.ID, prio: w})
			}
		}
	}
	if width[dst] < 0 {
		return nil
	}
	return unwind(prev, src, dst)
}

func unwind(prev []int, src, dst int) []int {
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	out := make([]int, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
