package transport

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

func cleanChannel(s *sim.Simulator) *channel.GilbertElliott {
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: 0, BERBad: 1e-3})
	ch.Freeze()
	return ch
}

func lossyChannel(s *sim.Simulator, ber float64) *channel.GilbertElliott {
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: ber, BERBad: 1e-2})
	ch.Freeze()
	return ch
}

func TestLinkSerializes(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 1e6, sim.Millisecond) // 1 Mb/s, 1 ms
	var arrivals []sim.Time
	// Two 1040-wire-byte packets: 8.32 ms airtime each.
	for i := 0; i < 2; i++ {
		l.Send(&Packet{Seq: i, Len: 1000}, func(*Packet) {
			arrivals = append(arrivals, s.Now())
		})
	}
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	want := sim.FromSeconds(1040 * 8 / 1e6)
	if gap != want {
		t.Errorf("serialization gap = %v, want %v", gap, want)
	}
}

func TestLinkLoss(t *testing.T) {
	s := sim.New(2)
	l := NewLink(s, 1e6, 0)
	l.Loss = func(int) bool { return true }
	delivered := false
	l.Send(&Packet{Len: 100}, func(*Packet) { delivered = true })
	s.Run()
	if delivered {
		t.Error("lost packet delivered")
	}
	if l.Lost != 1 {
		t.Errorf("Lost = %d, want 1", l.Lost)
	}
}

func TestTCPTransfersCleanly(t *testing.T) {
	s := sim.New(3)
	fwd := NewLink(s, 10e6, 5*sim.Millisecond)
	rev := NewLink(s, 10e6, 5*sim.Millisecond)
	c := NewTCPConn(s, DefaultTCPConfig(), fwd, rev)
	done := false
	c.OnComplete = func(sim.Time) { done = true; s.Stop() }
	c.AddData(500_000)
	c.Close()
	s.Run()
	if !done {
		t.Fatal("transfer never completed")
	}
	if c.Delivered() != 500_000 {
		t.Errorf("delivered %d, want 500000", c.Delivered())
	}
	st := c.Stats()
	if st.Retransmissions != 0 {
		t.Errorf("retransmissions = %d on clean path", st.Retransmissions)
	}
}

func TestTCPSlowStartGrowsWindow(t *testing.T) {
	s := sim.New(4)
	fwd := NewLink(s, 10e6, 10*sim.Millisecond)
	rev := NewLink(s, 10e6, 10*sim.Millisecond)
	cfg := DefaultTCPConfig()
	c := NewTCPConn(s, cfg, fwd, rev)
	start := c.Cwnd()
	c.OnComplete = func(sim.Time) { s.Stop() }
	c.AddData(200_000)
	c.Close()
	s.Run()
	if c.Cwnd() <= start {
		t.Errorf("cwnd did not grow: %v -> %v", start, c.Cwnd())
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	s := sim.New(5)
	fwd := NewLink(s, 10e6, 5*sim.Millisecond)
	rev := NewLink(s, 10e6, 5*sim.Millisecond)
	// Deterministic loss of every 20th data packet.
	n := 0
	fwd.Loss = func(int) bool {
		n++
		return n%20 == 0
	}
	c := NewTCPConn(s, DefaultTCPConfig(), fwd, rev)
	done := false
	c.OnComplete = func(sim.Time) { done = true; s.Stop() }
	c.AddData(1_000_000)
	c.Close()
	s.Run()
	if !done {
		t.Fatal("lossy transfer never completed")
	}
	st := c.Stats()
	if st.Retransmissions == 0 {
		t.Error("no retransmissions despite forced loss")
	}
	if c.Delivered() != 1_000_000 {
		t.Errorf("delivered %d, want all", c.Delivered())
	}
}

func TestTCPTimeoutPath(t *testing.T) {
	s := sim.New(6)
	fwd := NewLink(s, 10e6, 5*sim.Millisecond)
	rev := NewLink(s, 10e6, 5*sim.Millisecond)
	// Lose a long run of packets to defeat fast retransmit.
	n := 0
	fwd.Loss = func(int) bool {
		n++
		return n >= 3 && n <= 9
	}
	c := NewTCPConn(s, DefaultTCPConfig(), fwd, rev)
	done := false
	c.OnComplete = func(sim.Time) { done = true; s.Stop() }
	c.AddData(50_000)
	c.Close()
	s.Run()
	if !done {
		t.Fatal("transfer stalled")
	}
	if c.Stats().Timeouts == 0 {
		t.Error("expected at least one RTO with a loss burst")
	}
}

func TestEndToEndVsSplitOnLossyWireless(t *testing.T) {
	const bytes = 2_000_000
	run := func(split bool) TransferResult {
		s := sim.New(7)
		ch := lossyChannel(s, 2e-6) // PER ≈ 2.4% on 1500B frames
		cfg := DefaultPathConfig(ch)
		if split {
			return SplitTransfer(s, cfg, bytes)
		}
		return EndToEndTransfer(s, cfg, bytes)
	}
	e2e := run(false)
	split := run(true)
	if split.GoodputBps <= e2e.GoodputBps {
		t.Errorf("split goodput %.0f should beat end-to-end %.0f under wireless loss",
			split.GoodputBps, e2e.GoodputBps)
	}
	if split.EnergyPerByteJ >= e2e.EnergyPerByteJ {
		t.Errorf("split energy/byte %.3e should beat end-to-end %.3e",
			split.EnergyPerByteJ, e2e.EnergyPerByteJ)
	}
}

func TestSplitMatchesEndToEndOnCleanPath(t *testing.T) {
	const bytes = 1_000_000
	run := func(split bool) TransferResult {
		s := sim.New(8)
		ch := cleanChannel(s)
		cfg := DefaultPathConfig(ch)
		if split {
			return SplitTransfer(s, cfg, bytes)
		}
		return EndToEndTransfer(s, cfg, bytes)
	}
	e2e := run(false)
	split := run(true)
	// On a clean path the two should be in the same ballpark (split may
	// even win slightly from pipelining the two hops).
	ratio := split.Duration.Seconds() / e2e.Duration.Seconds()
	if ratio > 1.4 {
		t.Errorf("split %.3fs much slower than e2e %.3fs on clean path",
			split.Duration.Seconds(), e2e.Duration.Seconds())
	}
}

func TestUDPStreamLoss(t *testing.T) {
	s := sim.New(9)
	ch := lossyChannel(s, 5e-6)
	cfg := DefaultPathConfig(ch)
	res := UDPStream(s, cfg, 2000, 1000, 5*sim.Millisecond)
	if res.Delivered == res.Sent {
		t.Error("UDP lost nothing on a lossy channel")
	}
	if res.Delivered == 0 {
		t.Error("UDP delivered nothing")
	}
	if res.LossRate <= 0 || res.LossRate > 0.2 {
		t.Errorf("loss rate = %.4f, want small but positive", res.LossRate)
	}
}

func TestUDPCleanDeliversAll(t *testing.T) {
	s := sim.New(10)
	ch := cleanChannel(s)
	cfg := DefaultPathConfig(ch)
	res := UDPStream(s, cfg, 500, 1000, sim.Millisecond)
	if res.Delivered != 500 {
		t.Errorf("delivered %d of 500 on clean channel", res.Delivered)
	}
}

func TestAddDataAfterClosePanics(t *testing.T) {
	s := sim.New(11)
	c := NewTCPConn(s, DefaultTCPConfig(), NewLink(s, 1e6, 0), NewLink(s, 1e6, 0))
	c.Close()
	defer func() {
		if recover() == nil {
			t.Error("AddData after Close accepted")
		}
	}()
	c.AddData(10)
}
