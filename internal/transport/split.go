package transport

import (
	"repro/internal/channel"
	"repro/internal/sim"
)

// PathConfig describes the two-hop server→proxy→client path used by the
// E10 experiment: a fast, clean wired segment and a lossy wireless segment.
type PathConfig struct {
	WiredRate     float64
	WiredDelay    sim.Time
	WirelessRate  float64
	WirelessDelay sim.Time
	// Channel supplies the wireless loss process.
	Channel *channel.GilbertElliott
	TCP     TCPConfig

	// Client radio power model for energy accounting.
	RxPower, TxPower, IdlePower float64
}

// DefaultPathConfig returns the E10 topology: 10 Mb/s / 20 ms wired,
// 5.8 Mb/s / 2 ms wireless.
func DefaultPathConfig(ch *channel.GilbertElliott) PathConfig {
	return PathConfig{
		WiredRate:     10e6,
		WiredDelay:    20 * sim.Millisecond,
		WirelessRate:  5.8e6,
		WirelessDelay: 2 * sim.Millisecond,
		Channel:       ch,
		TCP:           DefaultTCPConfig(),
		RxPower:       1.40,
		TxPower:       1.65,
		IdlePower:     1.35,
	}
}

// TransferResult reports an end-to-end or split transfer.
type TransferResult struct {
	Strategy        string
	Bytes           int
	Duration        sim.Time
	GoodputBps      float64
	Retransmissions int
	Timeouts        int
	ClientEnergyJ   float64
	EnergyPerByteJ  float64
}

// lossFromChannel adapts the Gilbert–Elliott channel to a link loss process.
func lossFromChannel(ch *channel.GilbertElliott) func(int) bool {
	if ch == nil {
		return nil
	}
	return func(bytes int) bool { return ch.SamplePacketError(bytes) }
}

// clientEnergy estimates the client WNIC energy for a transfer: RX airtime
// for received data, TX airtime for ACKs, idle listening otherwise.
func clientEnergy(cfg PathConfig, wireless *Link, ackLink *Link, dur sim.Time) float64 {
	rx := wireless.BusyTime.Seconds()
	tx := ackLink.BusyTime.Seconds()
	idle := dur.Seconds() - rx - tx
	if idle < 0 {
		idle = 0
	}
	return rx*cfg.RxPower + tx*cfg.TxPower + idle*cfg.IdlePower
}

// EndToEndTransfer runs one TCP connection across both hops: the wireless
// loss is indistinguishable from congestion to the sender, so every wireless
// drop halves the window and may strand the RTO.
func EndToEndTransfer(s *sim.Simulator, cfg PathConfig, totalBytes int) TransferResult {
	// Model the concatenated path as one link pair whose forward leg has
	// the bottleneck rate and combined delay, with wireless losses.
	fwd := NewLink(s, minRate(cfg.WiredRate, cfg.WirelessRate), cfg.WiredDelay+cfg.WirelessDelay)
	fwd.Loss = lossFromChannel(cfg.Channel)
	rev := NewLink(s, minRate(cfg.WiredRate, cfg.WirelessRate), cfg.WiredDelay+cfg.WirelessDelay)

	conn := NewTCPConn(s, cfg.TCP, fwd, rev)
	var doneAt sim.Time
	conn.OnComplete = func(at sim.Time) { doneAt = at; s.Stop() }
	conn.AddData(totalBytes)
	conn.Close()
	s.Run()

	st := conn.Stats()
	res := TransferResult{
		Strategy:        "end-to-end",
		Bytes:           totalBytes,
		Duration:        doneAt,
		Retransmissions: st.Retransmissions,
		Timeouts:        st.Timeouts,
	}
	finishTransfer(&res, cfg, fwd, rev, doneAt, totalBytes)
	return res
}

// SplitTransfer terminates TCP at the proxy: a clean wired connection feeds
// the proxy buffer, and an independent wireless connection with a short RTT
// drains it to the client. Wireless losses recover locally in milliseconds
// and never disturb the wired sender.
func SplitTransfer(s *sim.Simulator, cfg PathConfig, totalBytes int) TransferResult {
	wiredFwd := NewLink(s, cfg.WiredRate, cfg.WiredDelay)
	wiredRev := NewLink(s, cfg.WiredRate, cfg.WiredDelay)
	wlFwd := NewLink(s, cfg.WirelessRate, cfg.WirelessDelay)
	wlFwd.Loss = lossFromChannel(cfg.Channel)
	wlRev := NewLink(s, cfg.WirelessRate, cfg.WirelessDelay)

	wired := NewTCPConn(s, cfg.TCP, wiredFwd, wiredRev)
	wireless := NewTCPConn(s, cfg.TCP, wlFwd, wlRev)

	// The proxy relays in-order wired bytes into the wireless connection.
	wired.OnDeliver = func(n int) { wireless.AddData(n) }
	wired.OnComplete = func(sim.Time) { wireless.Close() }

	var doneAt sim.Time
	wireless.OnComplete = func(at sim.Time) { doneAt = at; s.Stop() }

	wired.AddData(totalBytes)
	wired.Close()
	s.Run()

	st := wireless.Stats()
	res := TransferResult{
		Strategy:        "split",
		Bytes:           totalBytes,
		Duration:        doneAt,
		Retransmissions: st.Retransmissions + wired.Stats().Retransmissions,
		Timeouts:        st.Timeouts + wired.Stats().Timeouts,
	}
	finishTransfer(&res, cfg, wlFwd, wlRev, doneAt, totalBytes)
	return res
}

// SnoopTransfer keeps the TCP connection end-to-end but places a snoop
// agent at the base station: wireless losses are repaired by local
// retransmission before the sender's control loop can react, so corruption
// surfaces as delay jitter rather than congestion signals — the "supporting
// links" family of mitigations in the paper's transport survey.
func SnoopTransfer(s *sim.Simulator, cfg PathConfig, totalBytes int) TransferResult {
	fwd := NewLink(s, minRate(cfg.WiredRate, cfg.WirelessRate), cfg.WiredDelay+cfg.WirelessDelay)
	fwd.Loss = lossFromChannel(cfg.Channel)
	fwd.Snoop = true
	fwd.RepairDelay = 2*cfg.WirelessDelay + sim.Millisecond
	rev := NewLink(s, minRate(cfg.WiredRate, cfg.WirelessRate), cfg.WiredDelay+cfg.WirelessDelay)

	conn := NewTCPConn(s, cfg.TCP, fwd, rev)
	var doneAt sim.Time
	conn.OnComplete = func(at sim.Time) { doneAt = at; s.Stop() }
	conn.AddData(totalBytes)
	conn.Close()
	s.Run()

	st := conn.Stats()
	res := TransferResult{
		Strategy:        "snoop",
		Bytes:           totalBytes,
		Duration:        doneAt,
		Retransmissions: st.Retransmissions + fwd.Repairs,
		Timeouts:        st.Timeouts,
	}
	finishTransfer(&res, cfg, fwd, rev, doneAt, totalBytes)
	return res
}

// UDPStreamResult reports a datagram streaming run.
type UDPStreamResult struct {
	Sent      int
	Delivered int
	LossRate  float64
}

// UDPStream sends count datagrams of the given size over the wireless hop
// with no recovery: the baseline "standard UDP" behaviour.
func UDPStream(s *sim.Simulator, cfg PathConfig, count, bytes int, interval sim.Time) UDPStreamResult {
	wl := NewLink(s, cfg.WirelessRate, cfg.WirelessDelay)
	wl.Loss = lossFromChannel(cfg.Channel)
	delivered := 0
	for i := 0; i < count; i++ {
		s.At(sim.Time(i)*interval, func() {
			wl.SendDatagram(bytes, func() { delivered++ })
		})
	}
	s.RunUntil(sim.Time(count)*interval + sim.Second)
	res := UDPStreamResult{Sent: count, Delivered: delivered}
	if count > 0 {
		res.LossRate = 1 - float64(delivered)/float64(count)
	}
	return res
}

func finishTransfer(res *TransferResult, cfg PathConfig, wirelessFwd, ackLink *Link, doneAt sim.Time, totalBytes int) {
	if doneAt > 0 {
		res.GoodputBps = float64(totalBytes*8) / doneAt.Seconds()
		res.ClientEnergyJ = clientEnergy(cfg, wirelessFwd, ackLink, doneAt)
		res.EnergyPerByteJ = res.ClientEnergyJ / float64(totalBytes)
	}
}

func minRate(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
