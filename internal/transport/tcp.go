package transport

import (
	"fmt"

	"repro/internal/sim"
)

// TCPConfig tunes the reduced TCP implementation.
type TCPConfig struct {
	MSS        int
	InitialRTO sim.Time
	MinRTO     sim.Time
	MaxCwnd    int // bytes; models the receive window
}

// DefaultTCPConfig returns conventional values scaled for simulation.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		MSS:        1460,
		InitialRTO: 300 * sim.Millisecond,
		MinRTO:     60 * sim.Millisecond,
		MaxCwnd:    64 * 1024,
	}
}

// TCPStats reports a connection's behaviour.
type TCPStats struct {
	Segments        int
	Retransmissions int
	FastRetransmits int
	Timeouts        int
	AcksReceived    int
	Done            bool
	FinishedAt      sim.Time
}

// TCPConn is a one-directional reduced TCP connection: a sender pushing a
// byte stream over a forward link, with ACKs returning on a reverse link.
// The receiver side lives inside the same object (it has no independent
// behaviour beyond cumulative ACKs and out-of-order buffering).
type TCPConn struct {
	sim *sim.Simulator
	cfg TCPConfig
	fwd *Link
	rev *Link

	// Sender state.
	total    int // bytes the application wants to send (grows via AddData)
	closed   bool
	sndUna   int
	sndNxt   int
	cwnd     float64
	ssthresh float64
	dupAcks  int
	rto      sim.Time
	rtoTimer *sim.Timer
	srtt     float64
	rttvar   float64
	haveSRTT bool

	// Receiver state.
	rcvNxt int
	ooo    map[int]int // seq -> len

	stats TCPStats

	// OnDeliver is invoked as in-order bytes become available at the
	// receiver (the proxy uses this to feed a chained connection).
	OnDeliver func(n int)
	// OnComplete fires once when every byte of a closed stream is ACKed.
	OnComplete func(at sim.Time)
}

// NewTCPConn creates a connection over the given forward/reverse links.
func NewTCPConn(s *sim.Simulator, cfg TCPConfig, fwd, rev *Link) *TCPConn {
	if cfg.MSS <= 0 || cfg.MaxCwnd < cfg.MSS {
		panic(fmt.Sprintf("transport: bad TCP config %+v", cfg))
	}
	c := &TCPConn{
		sim: s, cfg: cfg, fwd: fwd, rev: rev,
		cwnd:     float64(cfg.MSS),
		ssthresh: float64(cfg.MaxCwnd),
		rto:      cfg.InitialRTO,
		ooo:      make(map[int]int),
	}
	c.rtoTimer = sim.NewTimer(s, c.onTimeout)
	return c
}

// AddData appends n bytes to the stream (the application write).
func (c *TCPConn) AddData(n int) {
	if c.closed {
		panic("transport: AddData after Close")
	}
	c.total += n
	c.pump()
}

// Close marks the stream complete: when all queued bytes are ACKed the
// connection reports completion.
func (c *TCPConn) Close() {
	c.closed = true
	c.maybeComplete()
}

// Stats returns a copy of the connection counters.
func (c *TCPConn) Stats() TCPStats { return c.stats }

// Cwnd returns the current congestion window in bytes.
func (c *TCPConn) Cwnd() float64 { return c.cwnd }

// Delivered returns the bytes delivered in order at the receiver.
func (c *TCPConn) Delivered() int { return c.rcvNxt }

// Acked returns the bytes acknowledged back to the sender.
func (c *TCPConn) Acked() int { return c.sndUna }

// pump transmits as much as the window and available data allow.
func (c *TCPConn) pump() {
	for {
		window := int(c.cwnd)
		if window > c.cfg.MaxCwnd {
			window = c.cfg.MaxCwnd
		}
		inFlight := c.sndNxt - c.sndUna
		if inFlight >= window {
			return
		}
		avail := c.total - c.sndNxt
		if avail <= 0 {
			return
		}
		segLen := c.cfg.MSS
		if segLen > avail {
			segLen = avail
		}
		if segLen > window-inFlight {
			segLen = window - inFlight
		}
		if segLen <= 0 {
			return
		}
		c.sendSegment(c.sndNxt, segLen)
		c.sndNxt += segLen
	}
}

func (c *TCPConn) sendSegment(seq, length int) {
	c.stats.Segments++
	p := &Packet{Seq: seq, Len: length, SentAt: c.sim.Now()}
	c.fwd.Send(p, c.onDataArrival)
	if !c.rtoTimer.Armed() {
		c.rtoTimer.Reset(c.rto)
	}
}

// onDataArrival is the receiver side: in-order delivery, out-of-order
// buffering and cumulative ACK generation.
func (c *TCPConn) onDataArrival(p *Packet) {
	if p.Seq == c.rcvNxt {
		c.advance(p.Len)
		// Drain any contiguous buffered segments.
		for {
			l, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.advance(l)
		}
	} else if p.Seq > c.rcvNxt {
		c.ooo[p.Seq] = p.Len
	}
	ack := &Packet{Ack: c.rcvNxt, IsAck: true, SentAt: p.SentAt}
	c.rev.Send(ack, c.onAck)
}

func (c *TCPConn) advance(n int) {
	c.rcvNxt += n
	if c.OnDeliver != nil && n > 0 {
		c.OnDeliver(n)
	}
}

// onAck is the sender reaction: window advance, RTT estimation, congestion
// control, fast retransmit.
func (c *TCPConn) onAck(p *Packet) {
	c.stats.AcksReceived++
	if p.Ack > c.sndUna {
		c.sndUna = p.Ack
		c.dupAcks = 0
		c.updateRTT(c.sim.Now() - p.SentAt)
		// Congestion window growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(c.cfg.MSS) // slow start
		} else {
			c.cwnd += float64(c.cfg.MSS) * float64(c.cfg.MSS) / c.cwnd
		}
		if c.cwnd > float64(c.cfg.MaxCwnd) {
			c.cwnd = float64(c.cfg.MaxCwnd)
		}
		if c.sndUna >= c.sndNxt {
			c.rtoTimer.Stop()
		} else {
			c.rtoTimer.Reset(c.rto)
		}
		c.maybeComplete()
		c.pump()
		return
	}
	// Duplicate ACK.
	if c.sndUna < c.sndNxt {
		c.dupAcks++
		if c.dupAcks == 3 {
			c.fastRetransmit()
		}
	}
}

func (c *TCPConn) fastRetransmit() {
	c.stats.FastRetransmits++
	c.stats.Retransmissions++
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if c.ssthresh < float64(2*c.cfg.MSS) {
		c.ssthresh = float64(2 * c.cfg.MSS)
	}
	c.cwnd = c.ssthresh
	c.retransmitHead()
}

func (c *TCPConn) onTimeout() {
	if c.sndUna >= c.sndNxt {
		return
	}
	c.stats.Timeouts++
	c.stats.Retransmissions++
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if c.ssthresh < float64(2*c.cfg.MSS) {
		c.ssthresh = float64(2 * c.cfg.MSS)
	}
	c.cwnd = float64(c.cfg.MSS) // collapse to one segment
	c.dupAcks = 0
	c.rto *= 2 // Karn backoff
	if c.rto > 8*sim.Second {
		c.rto = 8 * sim.Second
	}
	c.retransmitHead()
}

// retransmitHead resends the first unacknowledged segment.
func (c *TCPConn) retransmitHead() {
	length := c.cfg.MSS
	if c.sndUna+length > c.sndNxt {
		length = c.sndNxt - c.sndUna
	}
	if length <= 0 {
		return
	}
	c.stats.Segments++
	p := &Packet{Seq: c.sndUna, Len: length, SentAt: c.sim.Now()}
	c.fwd.Send(p, c.onDataArrival)
	c.rtoTimer.Reset(c.rto)
}

// updateRTT applies Jacobson/Karels smoothing.
func (c *TCPConn) updateRTT(sample sim.Time) {
	r := sample.Seconds()
	if !c.haveSRTT {
		c.srtt = r
		c.rttvar = r / 2
		c.haveSRTT = true
	} else {
		alpha, beta := 0.125, 0.25
		d := r - c.srtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (1-beta)*c.rttvar + beta*d
		c.srtt = (1-alpha)*c.srtt + alpha*r
	}
	rto := sim.FromSeconds(c.srtt + 4*c.rttvar)
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	c.rto = rto
}

func (c *TCPConn) maybeComplete() {
	if c.closed && !c.stats.Done && c.sndUna >= c.total {
		c.stats.Done = true
		c.stats.FinishedAt = c.sim.Now()
		if c.OnComplete != nil {
			c.OnComplete(c.sim.Now())
		}
	}
}
