package transport

import (
	"testing"

	"repro/internal/sim"
)

func TestSnoopRepairsLocally(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 1e6, sim.Millisecond)
	n := 0
	l.Loss = func(int) bool {
		n++
		return n == 1 // first attempt lost, repair succeeds
	}
	l.Snoop = true
	l.RepairDelay = 2 * sim.Millisecond
	delivered := false
	l.Send(&Packet{Len: 1000}, func(*Packet) { delivered = true })
	s.Run()
	if !delivered {
		t.Fatal("snoop did not repair the loss")
	}
	if l.Repairs != 1 {
		t.Errorf("repairs = %d, want 1", l.Repairs)
	}
}

func TestSnoopGivesUpAtLimit(t *testing.T) {
	s := sim.New(2)
	l := NewLink(s, 1e6, sim.Millisecond)
	l.Loss = func(int) bool { return true } // hopeless
	l.Snoop = true
	l.RepairLimit = 3
	delivered := false
	l.Send(&Packet{Len: 1000}, func(*Packet) { delivered = true })
	s.Run()
	if delivered {
		t.Error("delivered through a dead link")
	}
	if l.Repairs != 3 {
		t.Errorf("repairs = %d, want limit 3", l.Repairs)
	}
}

func TestSnoopBeatsEndToEndUnderLoss(t *testing.T) {
	const bytes = 2_000_000
	run := func(kind string) TransferResult {
		s := sim.New(7)
		ch := lossyChannel(s, 2e-6)
		cfg := DefaultPathConfig(ch)
		switch kind {
		case "snoop":
			return SnoopTransfer(s, cfg, bytes)
		case "split":
			return SplitTransfer(s, cfg, bytes)
		default:
			return EndToEndTransfer(s, cfg, bytes)
		}
	}
	e2e := run("e2e")
	snoop := run("snoop")
	if snoop.GoodputBps <= e2e.GoodputBps {
		t.Errorf("snoop goodput %.0f should beat end-to-end %.0f under loss",
			snoop.GoodputBps, e2e.GoodputBps)
	}
	// Snoop hides losses from the sender: far fewer end-to-end timeouts.
	if snoop.Timeouts > e2e.Timeouts {
		t.Errorf("snoop timeouts %d should not exceed end-to-end %d",
			snoop.Timeouts, e2e.Timeouts)
	}
}

func TestSnoopNeutralOnCleanPath(t *testing.T) {
	const bytes = 1_000_000
	s1 := sim.New(8)
	e2e := EndToEndTransfer(s1, DefaultPathConfig(cleanChannel(s1)), bytes)
	s2 := sim.New(8)
	snoop := SnoopTransfer(s2, DefaultPathConfig(cleanChannel(s2)), bytes)
	ratio := snoop.Duration.Seconds() / e2e.Duration.Seconds()
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("snoop should be a no-op on a clean path: ratio %.3f", ratio)
	}
}
