// Package transport implements a reduced TCP (slow start, congestion
// avoidance, fast retransmit, RTO backoff), UDP-style datagram delivery and
// the split-connection proxy arrangement the paper lists among transport
// mitigations for wireless links. The experiments show the classic
// pathology: end-to-end TCP misreads wireless corruption as congestion,
// while a split connection confines recovery to the short wireless hop.
package transport

import (
	"fmt"

	"repro/internal/sim"
)

// Packet is one transport segment on a link.
type Packet struct {
	Seq    int // first payload byte offset
	Len    int // payload length (0 for pure ACKs)
	Ack    int // cumulative acknowledgement (next expected byte)
	IsAck  bool
	SentAt sim.Time
}

// wireBytes is the on-air size: payload plus TCP/IP-ish header.
func (p *Packet) wireBytes() int { return p.Len + 40 }

// Link is a unidirectional serialized pipe with a rate, a propagation delay
// and a per-packet loss process.
type Link struct {
	sim   *sim.Simulator
	rate  float64 // bits/second
	delay sim.Time
	// Loss, if non-nil, samples whether a packet of n wire bytes is lost.
	Loss func(bytes int) bool

	// Snoop enables base-station local repair: a lost packet is locally
	// retransmitted (re-sampling the loss process, paying airtime and
	// RepairDelay per attempt) instead of surfacing as an end-to-end drop.
	// This models a snoop agent's effect on the TCP sender: loss becomes
	// delay jitter.
	Snoop       bool
	RepairDelay sim.Time
	// RepairLimit bounds local retransmissions; a packet that fails them
	// all is finally dropped (default 6 when Snoop is set).
	RepairLimit int

	busyUntil sim.Time

	// Counters for energy/goodput accounting.
	Packets  int
	Bytes    int
	Lost     int
	Repairs  int
	BusyTime sim.Time
}

// NewLink creates a link with the given rate (bits/s) and one-way delay.
func NewLink(s *sim.Simulator, rate float64, delay sim.Time) *Link {
	if rate <= 0 || delay < 0 {
		panic(fmt.Sprintf("transport: invalid link rate=%g delay=%v", rate, delay))
	}
	return &Link{sim: s, rate: rate, delay: delay}
}

// Delay returns the link's one-way propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// Send serializes the packet onto the link and schedules delivery. Packets
// queue behind in-flight ones (FIFO); lost packets still consume airtime.
func (l *Link) Send(p *Packet, deliver func(*Packet)) {
	tx := sim.FromSeconds(float64(p.wireBytes()*8) / l.rate)
	start := sim.Max(l.sim.Now(), l.busyUntil)
	end := start + tx
	l.busyUntil = end
	l.Packets++
	l.Bytes += p.wireBytes()
	l.BusyTime += tx
	lost := l.Loss != nil && l.Loss(p.wireBytes())
	if lost {
		l.Lost++
		if !l.Snoop {
			return
		}
		// Local repair: retransmit until the loss process relents or the
		// attempt budget runs out. Each attempt pays airtime and the
		// repair round trip; the end-to-end sender only sees added delay.
		limit := l.RepairLimit
		if limit <= 0 {
			limit = 6
		}
		for attempt := 1; attempt <= limit; attempt++ {
			l.Repairs++
			l.BusyTime += tx
			l.busyUntil += tx
			end = l.busyUntil + sim.Time(attempt)*l.RepairDelay
			if l.Loss == nil || !l.Loss(p.wireBytes()) {
				l.sim.At(end+l.delay, func() { deliver(p) })
				return
			}
		}
		return // finally dropped; the end-to-end RTO recovers
	}
	l.sim.At(end+l.delay, func() { deliver(p) })
}

// SendDatagram provides UDP semantics: fire-and-forget with the same
// serialization and loss process. It reports whether the datagram survived
// (known only to the simulator, as in real UDP).
func (l *Link) SendDatagram(bytes int, deliver func()) bool {
	p := &Packet{Len: bytes - 40}
	if p.Len < 0 {
		p.Len = 0
	}
	survived := true
	prevLoss := l.Loss
	tx := sim.FromSeconds(float64(bytes*8) / l.rate)
	start := sim.Max(l.sim.Now(), l.busyUntil)
	end := start + tx
	l.busyUntil = end
	l.Packets++
	l.Bytes += bytes
	l.BusyTime += tx
	if prevLoss != nil && prevLoss(bytes) {
		l.Lost++
		survived = false
	} else if deliver != nil {
		l.sim.At(end+l.delay, deliver)
	}
	return survived
}
