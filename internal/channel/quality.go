package channel

import (
	"repro/internal/sim"
)

// Quality grades a link for the resource manager's interface-selection
// policy. It is deliberately coarse: the paper's server switches interfaces
// on "conditions in the link", not on raw SNR.
type Quality int

// Link quality grades.
const (
	QualityGood Quality = iota
	QualityDegraded
	QualityUnusable
)

// String names the grade.
func (q Quality) String() string {
	switch q {
	case QualityGood:
		return "good"
	case QualityDegraded:
		return "degraded"
	default:
		return "unusable"
	}
}

// Monitor observes a Gilbert–Elliott channel through periodic probes and
// exposes a smoothed quality grade plus loss statistics. The resource
// manager owns one Monitor per (client, interface) pair.
type Monitor struct {
	sim     *sim.Simulator
	ch      *GilbertElliott
	period  sim.Time
	ewma    float64 // smoothed bad-state indicator in [0,1]
	alpha   float64
	probes  int
	badSeen int
	ticker  *sim.Ticker
}

// MonitorConfig tunes a link monitor.
type MonitorConfig struct {
	// Period is the probe interval.
	Period sim.Time
	// Alpha is the EWMA smoothing weight for new observations (0,1].
	Alpha float64
}

// DefaultMonitorConfig returns the configuration used by the Hotspot
// scenarios: 250 ms probes, EWMA weight 0.3.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{Period: 250 * sim.Millisecond, Alpha: 0.3}
}

// NewMonitor attaches a probe-based monitor to a channel and starts probing.
func NewMonitor(s *sim.Simulator, ch *GilbertElliott, cfg MonitorConfig) *Monitor {
	if cfg.Period <= 0 {
		cfg = DefaultMonitorConfig()
	}
	m := &Monitor{sim: s, ch: ch, period: cfg.Period, alpha: cfg.Alpha}
	m.ticker = sim.NewTicker(s, cfg.Period, m.probe)
	return m
}

func (m *Monitor) probe() {
	m.probes++
	obs := 0.0
	if m.ch.State() == Bad {
		obs = 1.0
		m.badSeen++
	}
	m.ewma = m.alpha*obs + (1-m.alpha)*m.ewma
}

// Stop halts probing.
func (m *Monitor) Stop() { m.ticker.Stop() }

// BadFraction returns the smoothed bad-state indicator in [0,1].
func (m *Monitor) BadFraction() float64 { return m.ewma }

// Probes returns the number of probes taken.
func (m *Monitor) Probes() int { return m.probes }

// Quality maps the smoothed indicator to a grade. Thresholds chosen so that
// a single isolated fade degrades but does not condemn a link, while a
// persistent fade marks it unusable.
func (m *Monitor) Quality() Quality {
	switch {
	case m.ewma < 0.15:
		return QualityGood
	case m.ewma < 0.6:
		return QualityDegraded
	default:
		return QualityUnusable
	}
}
