// Package channel models the wireless channel: a two-state Gilbert–Elliott
// error process, bit-error-rate to packet-error-rate conversion, channel
// predictors of varying sophistication, and the link-quality monitor the
// Hotspot resource manager consults when deciding which interface a client
// should use.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// LinkState identifies the Gilbert–Elliott channel state.
type LinkState int

const (
	// Good is the low-error channel state.
	Good LinkState = iota
	// Bad is the high-error (deep fade / interference) state.
	Bad
)

// String names the state.
func (s LinkState) String() string {
	if s == Good {
		return "good"
	}
	return "bad"
}

// GEParams configures a Gilbert–Elliott channel.
type GEParams struct {
	// MeanGood and MeanBad are the mean sojourn times of the two states.
	// State holding times are exponentially distributed.
	MeanGood sim.Time
	MeanBad  sim.Time
	// BERGood and BERBad are the bit error rates within each state.
	BERGood float64
	BERBad  float64
}

// Validate checks the parameter set.
func (p GEParams) Validate() error {
	if p.MeanGood <= 0 || p.MeanBad <= 0 {
		return fmt.Errorf("channel: sojourn times must be positive")
	}
	for _, b := range []float64{p.BERGood, p.BERBad} {
		if b < 0 || b > 0.5 {
			return fmt.Errorf("channel: BER %g outside [0, 0.5]", b)
		}
	}
	if p.BERBad < p.BERGood {
		return fmt.Errorf("channel: bad-state BER below good-state BER")
	}
	return nil
}

// DefaultGE returns a typical indoor-WLAN channel: long good periods with
// occasional half-second fades two orders of magnitude worse.
func DefaultGE() GEParams {
	return GEParams{
		MeanGood: 10 * sim.Second,
		MeanBad:  500 * sim.Millisecond,
		BERGood:  1e-6,
		BERBad:   1e-3,
	}
}

// GilbertElliott is a time-driven two-state Markov channel. State changes
// are scheduled on the simulator; packet-error sampling consults the state
// at transmission time.
type GilbertElliott struct {
	sim    *sim.Simulator
	params GEParams
	rng    *rand.Rand

	state     LinkState
	changes   int
	listeners []func(t sim.Time, s LinkState)

	timeGood sim.Time
	timeBad  sim.Time
	lastAt   sim.Time

	frozen bool       // when scripted control takes over, stop autonomous flips
	flips  *sim.Batch // the autonomous state-transition events (one live at a time)
}

// NewGilbertElliott creates the channel in the Good state and schedules its
// autonomous state process.
func NewGilbertElliott(s *sim.Simulator, p GEParams) *GilbertElliott {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := &GilbertElliott{sim: s, params: p, rng: s.Rand(), state: Good, lastAt: s.Now()}
	c.flips = s.NewBatch(1)
	c.scheduleFlip()
	return c
}

// State returns the current channel state.
func (c *GilbertElliott) State() LinkState { return c.state }

// Params returns the channel parameters.
func (c *GilbertElliott) Params() GEParams { return c.params }

// Changes returns the number of state transitions so far.
func (c *GilbertElliott) Changes() int { return c.changes }

// OnChange registers a callback invoked on every state transition.
func (c *GilbertElliott) OnChange(fn func(t sim.Time, s LinkState)) {
	c.listeners = append(c.listeners, fn)
}

// BER returns the bit error rate of the current state.
func (c *GilbertElliott) BER() float64 {
	if c.state == Good {
		return c.params.BERGood
	}
	return c.params.BERBad
}

// PacketErrorProb returns the probability that a packet of n bytes suffers at
// least one uncorrected bit error in the current state: 1-(1-ber)^(8n).
func (c *GilbertElliott) PacketErrorProb(bytes int) float64 {
	return PERFromBER(c.BER(), bytes)
}

// SamplePacketError samples whether a packet of n bytes is corrupted.
func (c *GilbertElliott) SamplePacketError(bytes int) bool {
	return c.rng.Float64() < c.PacketErrorProb(bytes)
}

// SampleBitErrors samples how many bit errors land in a block of n bytes,
// using a binomial draw (exact for small n·ber via inversion, normal
// approximation for large counts).
func (c *GilbertElliott) SampleBitErrors(bytes int) int {
	return sampleBinomial(c.rng, bytes*8, c.BER())
}

// Freeze stops the autonomous state process so tests and scripted scenarios
// can control the state explicitly with ForceState.
func (c *GilbertElliott) Freeze() {
	c.frozen = true
	c.flips.CancelAll()
}

// ForceState sets the channel state directly (for scripted scenarios such as
// the paper's "conditions in the link change" episode).
func (c *GilbertElliott) ForceState(s LinkState) {
	if s != c.state {
		c.transitionTo(s)
	}
}

// TimeIn returns cumulative time spent in the given state.
func (c *GilbertElliott) TimeIn(s LinkState) sim.Time {
	c.accrue()
	if s == Good {
		return c.timeGood
	}
	return c.timeBad
}

func (c *GilbertElliott) accrue() {
	now := c.sim.Now()
	dt := now - c.lastAt
	if dt > 0 {
		if c.state == Good {
			c.timeGood += dt
		} else {
			c.timeBad += dt
		}
	}
	c.lastAt = now
}

func (c *GilbertElliott) scheduleFlip() {
	mean := c.params.MeanGood
	if c.state == Bad {
		mean = c.params.MeanBad
	}
	hold := sim.FromSeconds(c.rng.ExpFloat64() * mean.Seconds())
	if hold < sim.Microsecond {
		hold = sim.Microsecond
	}
	c.flips.Schedule(hold, func() {
		if c.frozen {
			return
		}
		if c.state == Good {
			c.transitionTo(Bad)
		} else {
			c.transitionTo(Good)
		}
		c.scheduleFlip()
	})
}

func (c *GilbertElliott) transitionTo(s LinkState) {
	c.accrue()
	c.state = s
	c.changes++
	for _, fn := range c.listeners {
		fn(c.sim.Now(), s)
	}
}

// PERFromBER converts a bit error rate into the packet error probability for
// a packet of the given byte length, assuming independent bit errors.
func PERFromBER(ber float64, bytes int) float64 {
	if ber <= 0 || bytes <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// 1 - (1-ber)^(8*bytes), computed in log space for numerical stability.
	return -math.Expm1(float64(8*bytes) * math.Log1p(-ber))
}

// sampleBinomial draws Binomial(n, p). For small expected counts it uses
// exact inversion; otherwise the normal approximation with clamping.
func sampleBinomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 30 {
		// Inversion by counting exponential gaps between successes.
		count := 0
		logq := math.Log1p(-p)
		i := 0
		for {
			gap := int(math.Floor(math.Log(1-rng.Float64()) / logq))
			i += gap + 1
			if i > n {
				break
			}
			count++
		}
		return count
	}
	sd := math.Sqrt(mean * (1 - p))
	x := int(math.Round(mean + sd*rng.NormFloat64()))
	if x < 0 {
		x = 0
	}
	if x > n {
		x = n
	}
	return x
}
