package channel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGEParamsValidate(t *testing.T) {
	good := DefaultGE()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []GEParams{
		{MeanGood: 0, MeanBad: sim.Second, BERGood: 1e-6, BERBad: 1e-3},
		{MeanGood: sim.Second, MeanBad: sim.Second, BERGood: 0.7, BERBad: 0.7},
		{MeanGood: sim.Second, MeanBad: sim.Second, BERGood: 1e-3, BERBad: 1e-6},
		{MeanGood: sim.Second, MeanBad: sim.Second, BERGood: -1, BERBad: 1e-3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPERFromBER(t *testing.T) {
	if got := PERFromBER(0, 1500); got != 0 {
		t.Errorf("PER(ber=0) = %v, want 0", got)
	}
	if got := PERFromBER(1, 1500); got != 1 {
		t.Errorf("PER(ber=1) = %v, want 1", got)
	}
	// Small-ber approximation: PER ≈ 8n·ber for tiny ber.
	got := PERFromBER(1e-9, 1500)
	want := 8 * 1500 * 1e-9
	if math.Abs(got-want)/want > 1e-3 {
		t.Errorf("PER = %v, want ≈%v", got, want)
	}
	// Monotonic in length.
	if PERFromBER(1e-5, 100) >= PERFromBER(1e-5, 1000) {
		t.Error("PER not monotonic in packet length")
	}
}

// Property: PER is within [0,1] and monotonic in BER.
func TestPERBoundsProperty(t *testing.T) {
	prop := func(berRaw uint32, bytesRaw uint16) bool {
		ber := float64(berRaw%1000000) / 2e6 // [0, 0.5)
		bytes := int(bytesRaw%2304) + 1
		p := PERFromBER(ber, bytes)
		if p < 0 || p > 1 {
			return false
		}
		return PERFromBER(ber/2, bytes) <= p+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGEStationaryDistribution(t *testing.T) {
	// Empirical state residency should match the analytic stationary
	// distribution: P(good) = meanGood / (meanGood + meanBad).
	p := GEParams{MeanGood: 900 * sim.Millisecond, MeanBad: 100 * sim.Millisecond,
		BERGood: 1e-6, BERBad: 1e-3}
	s := sim.New(3)
	ch := NewGilbertElliott(s, p)
	s.RunUntil(2000 * sim.Second)
	total := ch.TimeIn(Good) + ch.TimeIn(Bad)
	fracGood := float64(ch.TimeIn(Good)) / float64(total)
	if math.Abs(fracGood-0.9) > 0.03 {
		t.Errorf("good fraction = %.3f, want 0.9±0.03", fracGood)
	}
	if ch.Changes() < 100 {
		t.Errorf("only %d changes in 2000s; state process seems stuck", ch.Changes())
	}
}

func TestGEFreezeAndForce(t *testing.T) {
	s := sim.New(1)
	ch := NewGilbertElliott(s, DefaultGE())
	ch.Freeze()
	var transitions []LinkState
	ch.OnChange(func(_ sim.Time, st LinkState) { transitions = append(transitions, st) })
	s.Schedule(sim.Second, func() { ch.ForceState(Bad) })
	s.Schedule(2*sim.Second, func() { ch.ForceState(Bad) }) // no-op, same state
	s.Schedule(3*sim.Second, func() { ch.ForceState(Good) })
	s.RunUntil(100 * sim.Second)
	if len(transitions) != 2 {
		t.Fatalf("transitions = %v, want exactly [bad good]", transitions)
	}
	if transitions[0] != Bad || transitions[1] != Good {
		t.Errorf("transitions = %v", transitions)
	}
	if ch.TimeIn(Bad) != 2*sim.Second {
		t.Errorf("TimeIn(Bad) = %v, want 2s", ch.TimeIn(Bad))
	}
}

func TestGEPacketErrorRates(t *testing.T) {
	s := sim.New(5)
	p := GEParams{MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: 1e-5, BERBad: 1e-3}
	ch := NewGilbertElliott(s, p)
	ch.Freeze() // stay in Good
	n, errs := 20000, 0
	for i := 0; i < n; i++ {
		if ch.SamplePacketError(1500) {
			errs++
		}
	}
	want := PERFromBER(1e-5, 1500)
	got := float64(errs) / float64(n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical PER = %.4f, want %.4f±0.01", got, want)
	}
	ch.ForceState(Bad)
	errs = 0
	for i := 0; i < n; i++ {
		if ch.SamplePacketError(1500) {
			errs++
		}
	}
	if float64(errs)/float64(n) < 0.9 {
		t.Errorf("bad-state PER = %.3f, want ≈1 for ber=1e-3", float64(errs)/float64(n))
	}
}

func TestSampleBitErrorsMatchesMean(t *testing.T) {
	s := sim.New(7)
	ch := NewGilbertElliott(s, GEParams{MeanGood: sim.Hour, MeanBad: sim.Second,
		BERGood: 1e-3, BERBad: 1e-2})
	ch.Freeze()
	const trials = 5000
	const bytes = 1250 // 10000 bits, mean 10 errors
	var total int
	for i := 0; i < trials; i++ {
		e := ch.SampleBitErrors(bytes)
		if e < 0 || e > bytes*8 {
			t.Fatalf("bit errors %d out of range", e)
		}
		total += e
	}
	mean := float64(total) / trials
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("mean bit errors = %.2f, want 10±0.5", mean)
	}
}

func TestPredictorsBasic(t *testing.T) {
	ls := NewLastState()
	if ls.Predict() != Good {
		t.Error("fresh last-state should predict Good")
	}
	ls.Observe(Bad)
	if ls.Predict() != Bad {
		t.Error("last-state should follow observation")
	}
	if ls.Name() == "" || ls.Cost() <= 0 {
		t.Error("metadata missing")
	}
}

func TestMarkovLearnsPersistence(t *testing.T) {
	m := NewMarkov()
	// A strongly persistent channel: long runs of each state.
	seq := []LinkState{}
	for i := 0; i < 50; i++ {
		seq = append(seq, Good)
	}
	seq = append(seq, Bad, Bad, Bad, Bad, Bad)
	for i := 0; i < 50; i++ {
		seq = append(seq, Good)
	}
	for _, s := range seq {
		m.Observe(s)
	}
	m.Observe(Good)
	if m.Predict() != Good {
		t.Error("markov should predict persistence after long good runs")
	}
	if p := m.TransitionProb(Good, Good); p < 0.9 {
		t.Errorf("P(good->good) = %.3f, want > 0.9", p)
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	m := NewMarkov()
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			m.Observe(Good)
		} else {
			m.Observe(Bad)
		}
	}
	// After observing Bad at i=99, an alternating channel goes Good next.
	if m.Predict() != Good {
		t.Error("markov failed to learn alternation")
	}
}

func TestWindowMajority(t *testing.T) {
	w := NewWindow(5)
	if w.Predict() != Good {
		t.Error("empty window should default to Good")
	}
	for _, s := range []LinkState{Bad, Bad, Bad, Good, Good} {
		w.Observe(s)
	}
	if w.Predict() != Bad {
		t.Error("window majority should be Bad (3/5)")
	}
	// Rolling over: three more Goods displace the Bads.
	w.Observe(Good)
	w.Observe(Good)
	w.Observe(Good)
	if w.Predict() != Good {
		t.Error("window should have rolled to Good majority")
	}
}

func TestWindowInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	o.Prime(Bad)
	if o.Predict() != Bad {
		t.Error("oracle ignored priming")
	}
	if o.Cost() != 0 {
		t.Error("oracle should be free")
	}
}

func TestAccuracyAccounting(t *testing.T) {
	var a Accuracy
	a.Record(Good, Good)
	a.Record(Bad, Good)
	a.Record(Bad, Bad)
	if a.Hits != 2 || a.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", a.Hits, a.Misses)
	}
	if math.Abs(a.Rate()-2.0/3.0) > 1e-12 {
		t.Errorf("rate = %v", a.Rate())
	}
	var empty Accuracy
	if empty.Rate() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestPredictorAccuracyOnPersistentChannel(t *testing.T) {
	// On a highly persistent channel every predictor beats coin-flipping,
	// and the oracle is perfect.
	s := sim.New(11)
	ch := NewGilbertElliott(s, GEParams{MeanGood: 5 * sim.Second,
		MeanBad: 1 * sim.Second, BERGood: 1e-6, BERBad: 1e-3})
	preds := []Predictor{NewLastState(), NewMarkov(), NewWindow(3)}
	accs := make([]Accuracy, len(preds))
	epoch := 100 * sim.Millisecond
	for step := 0; step < 5000; step++ {
		for i, p := range preds {
			pred := p.Predict()
			s.RunUntil(sim.Time(step+1) * epoch)
			actual := ch.State()
			accs[i].Record(pred, actual)
			p.Observe(actual)
		}
	}
	for i, p := range preds {
		if accs[i].Rate() < 0.75 {
			t.Errorf("%s accuracy %.3f, want ≥ 0.75 on persistent channel",
				p.Name(), accs[i].Rate())
		}
	}
}

func TestMonitorGradesChannel(t *testing.T) {
	s := sim.New(1)
	ch := NewGilbertElliott(s, DefaultGE())
	ch.Freeze()
	mon := NewMonitor(s, ch, DefaultMonitorConfig())
	s.RunUntil(10 * sim.Second)
	if mon.Quality() != QualityGood {
		t.Errorf("quality on good channel = %v, want good", mon.Quality())
	}
	ch.ForceState(Bad)
	s.RunUntil(20 * sim.Second)
	if mon.Quality() != QualityUnusable {
		t.Errorf("quality after persistent fade = %v, want unusable", mon.Quality())
	}
	ch.ForceState(Good)
	s.RunUntil(30 * sim.Second)
	if mon.Quality() != QualityGood {
		t.Errorf("quality after recovery = %v, want good", mon.Quality())
	}
	if mon.Probes() == 0 {
		t.Error("monitor took no probes")
	}
	mon.Stop()
	before := mon.Probes()
	s.RunUntil(31 * sim.Second)
	if mon.Probes() != before {
		t.Error("monitor still probing after Stop")
	}
}

func TestQualityString(t *testing.T) {
	if QualityGood.String() != "good" || QualityDegraded.String() != "degraded" ||
		QualityUnusable.String() != "unusable" {
		t.Error("quality names wrong")
	}
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Error("link state names wrong")
	}
}
