package channel

import "fmt"

// Predictor forecasts the channel state one observation epoch ahead. The
// paper notes the trade-off between "cost and the accuracy of prediction
// versus the energy savings given predicted conditions"; the three
// implementations below span that cost axis.
type Predictor interface {
	// Observe feeds the actual state seen in the epoch that just ended.
	Observe(s LinkState)
	// Predict returns the forecast for the next epoch.
	Predict() LinkState
	// Name identifies the predictor in experiment tables.
	Name() string
	// Cost is an abstract per-epoch computation/energy cost unit used by
	// experiment E9 to weigh accuracy against prediction expense.
	Cost() float64
}

// Accuracy pairs a predictor with hit/miss accounting.
type Accuracy struct {
	Hits, Misses int
}

// Record scores one prediction against the realized state.
func (a *Accuracy) Record(predicted, actual LinkState) {
	if predicted == actual {
		a.Hits++
	} else {
		a.Misses++
	}
}

// Rate returns the fraction of correct predictions.
func (a *Accuracy) Rate() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Hits) / float64(total)
}

// LastState predicts that the next epoch repeats the last observed state.
// It is the cheapest possible predictor and surprisingly strong on channels
// with long sojourn times.
type LastState struct {
	last LinkState
}

// NewLastState returns a persistence predictor initialized to Good.
func NewLastState() *LastState { return &LastState{last: Good} }

// Observe records the realized state.
func (p *LastState) Observe(s LinkState) { p.last = s }

// Predict returns the previous state.
func (p *LastState) Predict() LinkState { return p.last }

// Name implements Predictor.
func (p *LastState) Name() string { return "last-state" }

// Cost implements Predictor; persistence costs one unit.
func (p *LastState) Cost() float64 { return 1 }

// Markov estimates the 2x2 transition matrix online (with Laplace smoothing)
// and predicts the maximum-likelihood next state.
type Markov struct {
	last   LinkState
	seeded bool
	counts [2][2]float64
}

// NewMarkov returns an online Markov transition-matrix predictor.
func NewMarkov() *Markov { return &Markov{} }

// Observe updates the transition counts.
func (p *Markov) Observe(s LinkState) {
	if p.seeded {
		p.counts[p.last][s]++
	}
	p.last = s
	p.seeded = true
}

// Predict returns the most likely successor of the last state.
func (p *Markov) Predict() LinkState {
	stay := p.counts[p.last][p.last] + 1 // Laplace smoothing
	leave := p.counts[p.last][1-p.last] + 1
	if stay >= leave {
		return p.last
	}
	return 1 - p.last
}

// Name implements Predictor.
func (p *Markov) Name() string { return "markov" }

// Cost implements Predictor; matrix maintenance costs four units.
func (p *Markov) Cost() float64 { return 4 }

// TransitionProb returns the estimated probability of moving from state a to
// state b (with Laplace smoothing).
func (p *Markov) TransitionProb(a, b LinkState) float64 {
	total := p.counts[a][Good] + p.counts[a][Bad] + 2
	return (p.counts[a][b] + 1) / total
}

// Window predicts the majority state over the most recent w observations.
// It smooths noise but reacts slowly — the "accuracy vs cost vs agility"
// corner of the design space.
type Window struct {
	size int
	buf  []LinkState
	pos  int
	full bool
}

// NewWindow returns a sliding-majority predictor with the given window size.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic(fmt.Sprintf("channel: window size %d must be positive", size))
	}
	return &Window{size: size, buf: make([]LinkState, size)}
}

// Observe appends an observation to the window.
func (p *Window) Observe(s LinkState) {
	p.buf[p.pos] = s
	p.pos = (p.pos + 1) % p.size
	if p.pos == 0 {
		p.full = true
	}
}

// Predict returns the majority state in the window (ties predict Good).
func (p *Window) Predict() LinkState {
	n := p.size
	if !p.full {
		n = p.pos
	}
	if n == 0 {
		return Good
	}
	bad := 0
	for i := 0; i < n; i++ {
		if p.buf[i] == Bad {
			bad++
		}
	}
	if bad*2 > n {
		return Bad
	}
	return Good
}

// Name implements Predictor.
func (p *Window) Name() string { return fmt.Sprintf("window-%d", p.size) }

// Cost implements Predictor; cost scales with window size.
func (p *Window) Cost() float64 { return float64(p.size) }

// Oracle is a perfect predictor used as the upper bound in E9. The caller
// feeds it the future via Prime before asking for predictions.
type Oracle struct {
	next LinkState
}

// NewOracle returns an oracle predictor.
func NewOracle() *Oracle { return &Oracle{} }

// Prime tells the oracle the state of the upcoming epoch.
func (p *Oracle) Prime(s LinkState) { p.next = s }

// Observe implements Predictor (the oracle ignores history).
func (p *Oracle) Observe(LinkState) {}

// Predict returns the primed state.
func (p *Oracle) Predict() LinkState { return p.next }

// Name implements Predictor.
func (p *Oracle) Name() string { return "oracle" }

// Cost implements Predictor. The oracle is free — it bounds achievable
// savings, not a realizable policy.
func (p *Oracle) Cost() float64 { return 0 }
