package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dvs"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// osCatalogue lists this file's experiments: the OS/network-layer survey
// topics (ad-hoc routing and CPU voltage scaling).
func osCatalogue() []scenario.Spec {
	return []scenario.Spec{
		{Name: "e16", Desc: "E16: energy-efficient ad-hoc routing",
			Tags: []string{"survey", "routing"}, Run: E16Routing},
		{Name: "e17", Desc: "E17: CPU voltage scaling under EDF",
			Tags: []string{"survey", "os"}, Run: E17DVS},
	}
}

// E16Routing compares the energy-efficient ad-hoc routing disciplines the
// paper's survey points to: min-hop, min-energy (MTPR), battery-aware
// max-min (MMBCR) and the conditional hybrid (CMMBCR). Cross-traffic over a
// 5×5 grid drains batteries; the metrics are network lifetime and energy
// per delivered packet.
func E16Routing(seed int64) Result {
	t := stats.NewTable("E16 — energy-efficient ad-hoc routing (5x5 grid, cross traffic)",
		"policy", "first death (pkts)", "delivered @40k", "mJ/pkt", "alive @40k")
	vals := map[string]float64{}
	for _, policy := range []route.Policy{route.MinHop, route.MinEnergy,
		route.MaxMinBattery, route.Conditional} {
		rng := rand.New(rand.NewSource(seed))
		n := route.NewGrid(5, 5, 10, 15, 0.03, route.DefaultRadioCost())
		firstDeath := math.MaxInt
		for i := 0; i < 40000; i++ {
			src := rng.Intn(5)
			dst := 20 + rng.Intn(5)
			n.Send(policy, src, dst, 8000)
			if _, _, _, death := n.Stats(); death != -1 && firstDeath == math.MaxInt {
				firstDeath = death
			}
		}
		delivered, _, energy, _ := n.Stats()
		perPkt := 0.0
		if delivered > 0 {
			perPkt = energy / float64(delivered) * 1e3
		}
		deathStr := "-"
		deathVal := float64(firstDeath)
		if firstDeath == math.MaxInt {
			deathVal = -1
		} else {
			deathStr = fmt.Sprintf("%d", firstDeath)
		}
		t.AddRow(policy.String(), deathStr, fmt.Sprintf("%d", delivered),
			fmt.Sprintf("%.3f", perPkt), fmt.Sprintf("%d", n.NumAlive()))
		vals["death-"+policy.String()] = deathVal
		vals["delivered-"+policy.String()] = float64(delivered)
		vals["mjpkt-"+policy.String()] = perPkt
	}
	t.AddNote("min-energy hammers the cheapest relays; battery-aware routing trades per-packet energy for lifetime")
	return Result{Name: "e16-routing", Table: t.String(), Values: vals}
}

// E17DVS evaluates CPU dynamic voltage scaling under EDF at several
// utilizations: the OS-level technique the paper lists alongside device
// shutdown.
func E17DVS(seed int64) Result {
	t := stats.NewTable("E17 — CPU voltage scaling under EDF (10 s, jobs use 50% of WCET)",
		"utilization", "no-DVS (J)", "static (J)", "cycle-conserving (J)", "misses")
	vals := map[string]float64{}
	cpu := dvs.DefaultCPU()
	mkSet := func(util float64) []dvs.Task {
		f := cpu.FMax()
		return []dvs.Task{
			{Name: "a", Period: 20 * sim.Millisecond, WCETCycles: util / 3 * 0.020 * f, UsageFactor: 0.5},
			{Name: "b", Period: 50 * sim.Millisecond, WCETCycles: util / 3 * 0.050 * f, UsageFactor: 0.5},
			{Name: "c", Period: 100 * sim.Millisecond, WCETCycles: util / 3 * 0.100 * f, UsageFactor: 0.5},
		}
	}
	for _, util := range []float64{0.3, 0.5, 0.8} {
		set := mkSet(util)
		no := dvs.Run(sim.New(seed), cpu, dvs.NoDVS, set, 10*sim.Second)
		st := dvs.Run(sim.New(seed), cpu, dvs.StaticDVS, set, 10*sim.Second)
		cc := dvs.Run(sim.New(seed), cpu, dvs.CycleConserving, set, 10*sim.Second)
		misses := no.DeadlineMisses + st.DeadlineMisses + cc.DeadlineMisses
		t.AddRow(fmt.Sprintf("%.0f%%", util*100),
			fmt.Sprintf("%.2f", no.EnergyJ), fmt.Sprintf("%.2f", st.EnergyJ),
			fmt.Sprintf("%.2f", cc.EnergyJ), fmt.Sprintf("%d", misses))
		vals[fmt.Sprintf("no-%.1f", util)] = no.EnergyJ
		vals[fmt.Sprintf("st-%.1f", util)] = st.EnergyJ
		vals[fmt.Sprintf("cc-%.1f", util)] = cc.EnergyJ
		vals[fmt.Sprintf("miss-%.1f", util)] = float64(misses)
	}
	t.AddNote("P ∝ f³: running at the utilization-matched clock wins; reclaiming unused WCET wins more")
	return Result{Name: "e17-dvs", Table: t.String(), Values: vals}
}
