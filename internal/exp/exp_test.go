package exp

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// These tests pin the qualitative shape of every reproduced experiment: who
// wins, in which regime, and by roughly what kind of factor. They are the
// executable form of EXPERIMENTS.md.

func TestFigure1ProducesSchedule(t *testing.T) {
	r := Figure1(1)
	if r.Values["slots"] < 6 {
		t.Errorf("only %v slots in 45s for 3 clients", r.Values["slots"])
	}
	if r.Values["underruns"] != 0 {
		t.Error("figure-1 scenario stalled")
	}
	for _, want := range []string{"Data transfer", "Power levels", "#", "_"} {
		if !strings.Contains(r.Table, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r := Figure2(2, 3*sim.Minute)
	if !(r.Values["wlanW"] > r.Values["btW"] && r.Values["btW"] > r.Values["hsW"]) {
		t.Errorf("ordering broken: %v", r.Values)
	}
	if r.Values["saving"] < 0.92 {
		t.Errorf("saving %.3f, want ≥ 0.92", r.Values["saving"])
	}
	if r.Values["underhs"] != 0 {
		t.Error("scheduled run stalled")
	}
}

func TestE3ListenDominates(t *testing.T) {
	r := E3ListenFraction(3, sim.DefaultTuning())
	if r.Values["idleFraction"] < 0.85 {
		t.Errorf("idle fraction %.3f, want ≥ 0.85 (paper: ~90%%)", r.Values["idleFraction"])
	}
	if r.Values["idleEnergyShare"] < 0.8 {
		t.Errorf("idle energy share %.3f, want ≥ 0.8", r.Values["idleEnergyShare"])
	}
}

func TestE4PSMBeatsCAMAtLowLoad(t *testing.T) {
	r := E4PSMvsCAM(4, sim.DefaultTuning())
	if r.Values["psm100-0.5"] > r.Values["cam-0.5"]/4 {
		t.Errorf("PSM %.3f W vs CAM %.3f W at 0.5 pkt/s: want ≥4x saving",
			r.Values["psm100-0.5"], r.Values["cam-0.5"])
	}
	// The PSM advantage shrinks as load rises.
	low := r.Values["cam-0.5"] - r.Values["psm100-0.5"]
	high := r.Values["cam-8.0"] - r.Values["psm100-8.0"]
	if high > low {
		t.Errorf("PSM saving should shrink with load: low %.3f, high %.3f", low, high)
	}
}

func TestE5ECMACLowestPowerNoCollisions(t *testing.T) {
	r := E5MACComparison(5, sim.DefaultTuning())
	if r.Values["ecmacW"] >= r.Values["camW"] {
		t.Error("EC-MAC should beat CAM")
	}
	if r.Values["camCollisions"] == 0 {
		t.Error("CAM with 4 contending stations should collide sometimes")
	}
}

func TestE6AggregationMonotone(t *testing.T) {
	r := E6Aggregation(6)
	if !(r.Values["epb-16"] < r.Values["epb-4"] && r.Values["epb-4"] < r.Values["epb-1"]) {
		t.Errorf("energy/bit not falling with factor: %v", r.Values)
	}
	if !(r.Values["delay-16"] > r.Values["delay-1"]) {
		t.Error("delay should grow with factor")
	}
}

func TestE7PAMASExtendsLifetime(t *testing.T) {
	r := E7PAMAS(7)
	base := r.Values["death-always-listen"]
	pam := r.Values["death-pamas"]
	bat := r.Values["death-pamas+battery"]
	if base <= 0 {
		t.Fatal("baseline never died; capacity too large for horizon")
	}
	if pam <= base {
		t.Errorf("PAMAS first death %.0f should beat baseline %.0f", pam, base)
	}
	if bat != -1 && bat <= pam {
		t.Errorf("battery-aware first death %.0f should beat plain PAMAS %.0f", bat, pam)
	}
}

func TestE8CrossoverExists(t *testing.T) {
	r := E8ARQvsFEC(8)
	if !(r.Values["arq-1e-07"] < r.Values["hyb-1e-07"]) {
		t.Error("ARQ should win at BER 1e-7")
	}
	if !(r.Values["hyb-1e-04"] < r.Values["arq-1e-04"]) {
		t.Error("hybrid should win at BER 1e-4")
	}
}

func TestE9AdaptiveBeatsStaticLarge(t *testing.T) {
	r := E9AdaptiveARQ(9)
	if !(r.Values["epb-adaptive/last-state"] < r.Values["epb-static-large"]) {
		t.Error("adaptation should beat static-large on a bursty channel")
	}
	if r.Values["acc-adaptive/oracle"] != 1 {
		t.Error("oracle accuracy must be 1")
	}
	if r.Values["epb-adaptive/oracle"] > r.Values["epb-adaptive/last-state"]*1.1 {
		t.Error("oracle should bound realizable predictors")
	}
}

func TestE10SplitAndSnoopWinUnderLoss(t *testing.T) {
	r := E10SplitTCP(10)
	if !(r.Values["split-3e-06"] > r.Values["e2e-3e-06"]) {
		t.Error("split should beat end-to-end at high loss")
	}
	if !(r.Values["snoop-3e-06"] > r.Values["split-3e-06"]) {
		t.Error("snoop (loss fully hidden) should beat split at high loss")
	}
	// At negligible loss they are comparable (within 2x either way).
	ratio := r.Values["split-1e-08"] / r.Values["e2e-1e-08"]
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("clean-path ratio %.2f out of band", ratio)
	}
}

func TestE16LifetimeOrdering(t *testing.T) {
	r := E16Routing(16)
	minHop := r.Values["death-min-hop"]
	minEnergy := r.Values["death-min-energy"]
	maxMin := r.Values["death-max-min-battery"]
	cond := r.Values["death-conditional"]
	if minEnergy > 0 && maxMin > 0 && maxMin <= minEnergy {
		t.Errorf("max-min first death %v should exceed min-energy %v", maxMin, minEnergy)
	}
	if cond > 0 && minHop > 0 && cond <= minHop {
		t.Errorf("conditional first death %v should exceed min-hop %v", cond, minHop)
	}
	// Min-energy remains the cheapest per delivered packet.
	if r.Values["mjpkt-min-energy"] > r.Values["mjpkt-max-min-battery"] {
		t.Error("min-energy should cost least per packet")
	}
}

func TestE17DVSSavesEnergyWithoutMisses(t *testing.T) {
	r := E17DVS(17)
	for _, u := range []string{"0.3", "0.5", "0.8"} {
		if r.Values["miss-"+u] != 0 {
			t.Errorf("deadline misses at utilization %s", u)
		}
		if r.Values["cc-"+u] > r.Values["no-"+u] {
			t.Errorf("cycle-conserving worse than no-DVS at %s", u)
		}
		if r.Values["cc-"+u] > r.Values["st-"+u] {
			t.Errorf("cycle-conserving worse than static at %s", u)
		}
	}
	// The cubic power law makes low-utilization savings large.
	if r.Values["cc-0.3"] > r.Values["no-0.3"]*0.6 {
		t.Error("CC-EDF should save ≥40% at 30% utilization")
	}
}

func TestE11OracleBoundsAndTimeoutsSave(t *testing.T) {
	r := E11DPM(11)
	on := r.Values["energy-always-on"]
	for _, k := range []string{"energy-timeout-50.000ms", "energy-adaptive-timeout",
		"energy-predictive", "energy-oracle"} {
		if r.Values[k] >= on {
			t.Errorf("%s (%.1f J) did not beat always-on (%.1f J)", k, r.Values[k], on)
		}
	}
	if r.Values["energy-oracle"] > r.Values["energy-adaptive-timeout"]*1.05 {
		t.Error("oracle should be at or below adaptive timeout")
	}
}

func TestE12AdaptationSavesEnergyKeepsAudio(t *testing.T) {
	r := E12ProxyAdaptation(12)
	if r.Values["energyAdapt"] >= r.Values["energyFull"] {
		t.Error("adaptation should cut client energy")
	}
	if r.Values["videoAdapt"] >= r.Values["videoFull"] {
		t.Error("adaptation should drop video bytes")
	}
	// Audio keeps flowing within 2% either way.
	ratio := r.Values["audioAdapt"] / r.Values["audioFull"]
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("audio changed by ratio %.3f under adaptation", ratio)
	}
}

func TestE13EDFLeastStallWFQFairest(t *testing.T) {
	r := E13Schedulers(13)
	// EDF recovers the most urgent buffers first after the capacity
	// squeeze, cutting total stall well below the deadline-blind policies.
	if r.Values["stall-edf"] > r.Values["stall-round-robin"]*0.9 {
		t.Errorf("EDF stall %.1f should be well below round-robin %.1f",
			r.Values["stall-edf"], r.Values["stall-round-robin"])
	}
	if r.Values["fair-wfq"] < r.Values["fair-round-robin"]-0.005 {
		t.Errorf("WFQ fairness %.4f should be at least round-robin %.4f",
			r.Values["fair-wfq"], r.Values["fair-round-robin"])
	}
}

func TestE14PowerFallsWithBurstSize(t *testing.T) {
	r := E14BurstSize(14)
	if !(r.Values["power-40s"] < r.Values["power-5s"] && r.Values["power-5s"] < r.Values["power-2s"]) {
		t.Errorf("power not decreasing with epoch: %v", r.Values)
	}
}

func TestE15SwitchesWithoutUnderruns(t *testing.T) {
	r := E15InterfaceSwitch(15)
	if r.Values["switches"] < 6 {
		t.Errorf("switches = %v, want ≥ 6 (3 clients out and back)", r.Values["switches"])
	}
	if r.Values["underruns"] != 0 {
		t.Errorf("underruns = %v during scripted outage", r.Values["underruns"])
	}
}

func TestAblations(t *testing.T) {
	ifsel := AblationInterfaceSelection(16)
	if ifsel.Values["adaptiveUnder"] > 0 {
		t.Error("adaptive policy should survive the outage")
	}
	if ifsel.Values["pinnedUnder"] == 0 && ifsel.Values["pinnedStall"] == 0 {
		t.Error("pinned-WLAN should visibly suffer during the outage")
	}

	margin := AblationMargin(17)
	if margin.Values["wideUnder"] > 0 {
		t.Error("default margin should cover the switch transient")
	}
	if margin.Values["wideUrgents"] > 2 {
		t.Errorf("default margin needed %v emergency bursts", margin.Values["wideUrgents"])
	}
	if margin.Values["thinUnder"] == 0 && margin.Values["thinUrgents"] < 5 {
		t.Error("1s margin should either stall or degenerate into emergency bursts")
	}

	burst := AblationBurstAggregation(18)
	if burst.Values["bigW"] >= burst.Values["smallW"] {
		t.Errorf("10s bursts (%.4f W) should beat 1s bursts (%.4f W)",
			burst.Values["bigW"], burst.Values["smallW"])
	}
}
