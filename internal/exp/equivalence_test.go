package exp_test

import (
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/scenario"
)

// workerSentinel re-enters this test binary as a shard worker: the shard
// executor spawns `exp.test -run-as-scenario-worker` and the worker
// resolves experiments from the registry, which the exp import below
// populated exactly as it does in the real binaries.
const workerSentinel = "-run-as-scenario-worker"

func TestMain(m *testing.M) {
	for _, a := range os.Args[1:] {
		if a == workerSentinel {
			if err := scenario.ServeWorker(os.Stdin, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

// TestCrossBackendEquivalence is the acceptance gate for the pluggable
// execution backends: for every registered experiment, the local pool, the
// multi-process shard backend (workers=2, faults disabled — its health
// counters must stay all-zero), a chaos-injected shard backend (worker
// crashes, corrupt frames and mid-chunk hangs on schedule — retries and
// restarts must not cost a single bit), the TCP-loopback shard backend
// (clean, then under injected network chaos: dropped connections, stale
// replays, blackholed sessions, a slow link) and the caching backend
// (cold, then warm from disk with an inner executor that must never run)
// produce bit-identical merged Results — per-seed values, rendered
// tables, and every aggregated metric.
func TestCrossBackendEquivalence(t *testing.T) {
	specs := scenario.All()
	if len(specs) < 20 {
		t.Fatalf("registry has only %d specs", len(specs))
	}
	seeds := scenario.Seeds(1, 2)

	run := func(name string, exec scenario.Executor) []scenario.AggResult {
		t.Helper()
		r := &scenario.Runner{Parallel: runtime.NumCPU(), KeepPerSeed: true, Executor: exec}
		aggs, err := r.Run(specs, seeds)
		if err != nil {
			t.Fatalf("%s backend: %v", name, err)
		}
		return aggs
	}

	local := run("local", nil)

	sh := &scenario.Shard{Workers: 2, Argv: []string{os.Args[0], workerSentinel}}
	sharded := run("shard", sh)
	if err := sh.Close(); err != nil {
		t.Fatalf("shard close: %v", err)
	}
	// With all faults disabled the supervision layer must be invisible:
	// zero retries, restarts, failures and quarantines.
	if h := sh.Health(); h.Failures() != 0 || h.Retries != 0 || h.Restarts() != 0 ||
		h.Quarantined != 0 || h.DegradedSeeds != 0 {
		t.Errorf("fault-free shard run tripped the supervisor: %s", h.Summary())
	} else if h.Chunks() != int64(len(specs)*len(seeds)) {
		t.Errorf("fault-free shard run completed %d chunks, want %d", h.Chunks(), len(specs)*len(seeds))
	}

	// Chaos-injected shard: each worker slot's first process crashes on its
	// 3rd request, its second emits a corrupt frame, its third hangs until
	// the chunk deadline reaps it, its fourth delays benignly, and later
	// generations run clean. All three failure detectors fire; the results
	// must still be bit-identical to Local.
	chaosSh := &scenario.Shard{
		Workers: 2,
		Argv:    []string{os.Args[0], workerSentinel},
		Chaos:   "gen0:crash-after=3;gen1:corrupt-after=2;gen2:hang-after=2;gen3:delay-every=5,delay-ms=2",
		Policy: scenario.FaultPolicy{
			MaxRetries:     3,
			ChunkTimeout:   5 * time.Second,
			RestartBackoff: 5 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			DegradeToLocal: true,
			ChunkSeeds:     2,
		},
	}
	chaotic := run("shard-chaos", chaosSh)
	if err := chaosSh.Close(); err != nil {
		t.Fatalf("chaos shard close: %v", err)
	}
	if h := chaosSh.Health(); h.Failures() == 0 || h.Retries == 0 || h.Restarts() == 0 {
		t.Errorf("chaos schedule injected no faults (test is vacuous): %s", h.Summary())
	}

	// TCP-loopback shard: the same coordinator over the network transport,
	// served in-process by ServeNet. Clean first — the connection-level
	// supervision (deadlines, heartbeats, epochs) must be invisible on a
	// healthy network: all-zero failure counters, every chunk accounted.
	cleanLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go scenario.ServeNet(cleanLn, scenario.NetServeOptions{Heartbeat: 50 * time.Millisecond, Log: io.Discard})
	tcpSh := &scenario.Shard{Workers: 2, Addrs: []string{cleanLn.Addr().String()}}
	tcp := run("shard-tcp", tcpSh)
	if err := tcpSh.Close(); err != nil {
		t.Fatalf("tcp shard close: %v", err)
	}
	cleanLn.Close()
	if h := tcpSh.Health(); h.Failures() != 0 || h.Retries != 0 || h.Restarts() != 0 ||
		h.Quarantined != 0 || h.DegradedSeeds != 0 || h.Stales() != 0 || h.StaleReplies != 0 {
		t.Errorf("fault-free TCP shard run tripped the supervisor: %s", h.Summary())
	} else if h.Chunks() != int64(len(specs)*len(seeds)) {
		t.Errorf("fault-free TCP shard run completed %d chunks, want %d", h.Chunks(), len(specs)*len(seeds))
	}

	// Network-chaos TCP shard: the first accepted connection is dropped
	// mid-sweep, the second replays a stale frame (wrong epoch — must be
	// discarded, not double-emitted), the third blackholes (accepts, then
	// stalls responses and heartbeats until the frame deadline reaps it),
	// the fourth serves over a slow link where only heartbeats keep the
	// deadline fed, and later connections run clean. Reconnects, retries
	// and epoch checks must not cost a single output bit.
	chaosLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go scenario.ServeNet(chaosLn, scenario.NetServeOptions{
		ChaosSpec: "gen0:drop-conn-after=3;gen1:replay-after=2;gen2:blackhole-after=2;gen3:slowlink-ms=50",
		Heartbeat: 25 * time.Millisecond,
		Log:       io.Discard,
	})
	tcpChaosSh := &scenario.Shard{
		Workers: 2,
		Addrs:   []string{chaosLn.Addr().String()},
		Policy: scenario.FaultPolicy{
			MaxRetries:     3,
			ChunkTimeout:   10 * time.Second,
			RestartBackoff: 5 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			DegradeToLocal: true,
			ChunkSeeds:     2,
			FrameTimeout:   500 * time.Millisecond,
		},
	}
	tcpChaotic := run("shard-tcp-chaos", tcpChaosSh)
	if err := tcpChaosSh.Close(); err != nil {
		t.Fatalf("tcp chaos shard close: %v", err)
	}
	chaosLn.Close()
	if h := tcpChaosSh.Health(); h.Failures() == 0 || h.Retries == 0 || h.Restarts() == 0 || h.Stales() == 0 {
		t.Errorf("TCP chaos schedule injected no faults (test is vacuous): %s", h.Summary())
	}

	dir := t.TempDir()
	coldCache := &scenario.Cache{Inner: &scenario.Local{Parallel: runtime.NumCPU()}, Dir: dir}
	cold := run("cache-cold", coldCache)
	if s := coldCache.Stats(); s.Hits != 0 || s.Misses != int64(len(specs)*len(seeds)) || s.WriteErrs != 0 {
		t.Errorf("cold cache stats %+v, want 0 hits / %d misses", s, len(specs)*len(seeds))
	}
	warmCache := &scenario.Cache{Inner: scenario.FailExecutor("cache missed on warm run"), Dir: dir}
	warm := run("cache-warm", warmCache)
	if s := warmCache.Stats(); s.Hits != int64(len(specs)*len(seeds)) || s.Misses != 0 {
		t.Errorf("warm cache stats %+v, want all hits", s)
	}

	for name, aggs := range map[string][]scenario.AggResult{
		"shard": sharded, "shard-chaos": chaotic,
		"shard-tcp": tcp, "shard-tcp-chaos": tcpChaotic,
		"cache-cold": cold, "cache-warm": warm,
	} {
		requireAggsBitIdentical(t, name, local, aggs)
	}
}

// requireAggsBitIdentical demands full bit-identity between two backend
// runs: metric floats compare by bit pattern (reflect.DeepEqual would both
// reject equal NaNs and accept -0 == +0).
func requireAggsBitIdentical(t *testing.T, backend string, want, got []scenario.AggResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d aggregates, want %d", backend, len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		name := a.Spec.Name
		if b.Spec.Name != name {
			t.Fatalf("%s: aggregate %d is %q, want %q", backend, i, b.Spec.Name, name)
		}
		if len(a.Metrics) != len(b.Metrics) {
			t.Errorf("%s/%s: %d metrics, want %d", backend, name, len(b.Metrics), len(a.Metrics))
			continue
		}
		for j := range a.Metrics {
			ma, mb := a.Metrics[j], b.Metrics[j]
			if ma.Name != mb.Name || ma.N != mb.N ||
				math.Float64bits(ma.Mean) != math.Float64bits(mb.Mean) ||
				math.Float64bits(ma.CI95) != math.Float64bits(mb.CI95) ||
				math.Float64bits(ma.Min) != math.Float64bits(mb.Min) ||
				math.Float64bits(ma.Max) != math.Float64bits(mb.Max) {
				t.Errorf("%s/%s: metric %s diverged: %+v vs %+v", backend, name, ma.Name, ma, mb)
			}
		}
		if a.Table() != b.Table() {
			t.Errorf("%s/%s: rendered aggregate tables not byte-identical", backend, name)
		}
		if len(a.PerSeed) != len(b.PerSeed) {
			t.Errorf("%s/%s: %d per-seed results, want %d", backend, name, len(b.PerSeed), len(a.PerSeed))
			continue
		}
		for k := range a.PerSeed {
			pa, pb := a.PerSeed[k], b.PerSeed[k]
			if pa.Name != pb.Name || pa.Table != pb.Table {
				t.Errorf("%s/%s: seed %d name/table diverged", backend, name, a.Seeds[k])
			}
			if len(pa.Values) != len(pb.Values) {
				t.Errorf("%s/%s: seed %d value sets differ", backend, name, a.Seeds[k])
				continue
			}
			for key, va := range pa.Values {
				vb, ok := pb.Values[key]
				if !ok || math.Float64bits(va) != math.Float64bits(vb) {
					t.Errorf("%s/%s: seed %d value %q: %v vs %v", backend, name, a.Seeds[k], key, va, vb)
				}
			}
		}
	}
}
