package exp_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	_ "repro/internal/exp" // register the experiment catalogue
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestGoldenSeed1BitIdenticalUnderAdaptiveTuning re-runs every tunable
// experiment with WheelMinPending forced to the adaptive mode (keeping the
// spec's other tuning fields) and asserts the seed-1 values stay
// bit-identical to the golden file. Adaptive routing decides only which
// queue structure holds an event; pop order is enforced against all
// structures, so the filter must be invisible to every experiment — dense
// DCF contention and sparse aggregated metros alike.
func TestGoldenSeed1BitIdenticalUnderAdaptiveTuning(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_seed1.json")
	if err != nil {
		t.Fatal(err)
	}
	var docs []goldenDoc
	if err := json.Unmarshal(data, &docs); err != nil {
		t.Fatal(err)
	}

	golden := map[string]map[string]float64{}
	for _, doc := range docs {
		golden[doc.Experiment] = doc.Values
	}

	ran := 0
	for _, spec := range scenario.All() {
		if spec.RunTuned == nil {
			continue
		}
		want, ok := golden[spec.Name]
		if !ok {
			t.Errorf("tunable experiment %q not in golden file", spec.Name)
			continue
		}
		ran++
		tun := sim.DefaultTuning()
		if spec.Tuning != nil {
			tun = *spec.Tuning
		}
		tun.WheelMinPending = sim.WheelAdaptive
		res := spec.RunTuned(1, tun)
		for k, w := range want {
			got, ok := res.Values[k]
			if !ok {
				t.Errorf("%s: value %q missing under adaptive tuning", spec.Name, k)
				continue
			}
			if math.Float64bits(got) != math.Float64bits(w) {
				t.Errorf("%s: adaptive tuning changed %s: %v (bits %#x), golden %v (bits %#x)",
					spec.Name, k, got, math.Float64bits(got), w, math.Float64bits(w))
			}
		}
	}
	if ran == 0 {
		t.Fatal("no tunable experiments registered")
	}
}
