// Package exp contains one runnable function per reproduced figure, table
// and survey experiment (FIG1, FIG2, E3–E15, plus ablations). Both the
// figgen command and the benchmark harness call into this package, so the
// terminal output and the benchmarked code paths are identical.
package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result bundles an experiment's rendered table with machine-readable
// key figures used by tests and EXPERIMENTS.md assertions.
type Result struct {
	Name   string
	Table  string
	Values map[string]float64
}

// Figure1 reproduces the paper's Figure 1: a sample schedule for three
// concurrent clients, transfer slots above, WNIC power levels beneath.
func Figure1(seed int64) Result {
	h := core.NewHotspot(seed, core.DefaultConfig(), 3)
	traces := map[int]*trace.PowerTrace{}
	for _, c := range h.RM().Clients() {
		c := c
		tr := &trace.PowerTrace{}
		traces[c.ID()] = tr
		tr.Record(0, c.CurrentPower())
		c.OnPower = func(t sim.Time, w float64) { tr.Record(t, w) }
	}
	rep := h.Run(45 * sim.Second)

	var windows []trace.Window
	for _, s := range rep.Slots {
		windows = append(windows, trace.Window{Lane: s.Client, Start: s.Start, End: s.End})
	}
	g := trace.NewGantt(0, 45*sim.Second, 90)
	g.MaxPower = 1.5
	fig := trace.Figure1(g, []int{0, 1, 2}, windows, traces)

	return Result{
		Name:  "figure-1-sample-schedule",
		Table: fig,
		Values: map[string]float64{
			"slots":     float64(len(rep.Slots)),
			"underruns": float64(rep.TotalUnderruns),
		},
	}
}

// Figure2 reproduces the paper's Figure 2: average WNIC power for three
// concurrent MP3 clients under unscheduled WLAN, unscheduled Bluetooth, and
// Hotspot scheduling. The paper reports ≈1.4 W / ≈0.5 W / ≈0.04 W and a
// 97 % saving with QoS maintained.
func Figure2(seed int64, duration sim.Time) Result {
	rows, saving := core.Figure2(seed, 3, duration)
	t := stats.NewTable("Figure 2 — average iPAQ WNIC power, 3 clients streaming 128 kb/s MP3",
		"strategy", "power (W)", "underruns", "paper (W)")
	paper := []string{"1.40", "0.50", "0.04"}
	for i, r := range rows {
		t.AddRow(r.Strategy, fmt.Sprintf("%.4f", r.MeanW), fmt.Sprintf("%d", r.Underruns), paper[i])
	}
	t.AddNote("measured WNIC power saving vs unscheduled WLAN: %.1f%% (paper: 97%%)", saving*100)
	t.AddNote("QoS maintained: no playout underruns in the scheduled run")
	return Result{
		Name:  "figure-2-average-power",
		Table: t.String(),
		Values: map[string]float64{
			"wlanW":   rows[0].MeanW,
			"btW":     rows[1].MeanW,
			"hsW":     rows[2].MeanW,
			"saving":  saving,
			"underhs": float64(rows[2].Underruns),
		},
	}
}
