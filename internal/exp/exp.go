// Package exp contains one runnable function per reproduced figure, table
// and survey experiment (FIG1, FIG2, E3–E15, plus ablations). Both the
// figgen command and the benchmark harness call into this package, so the
// terminal output and the benchmarked code paths are identical.
package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result bundles an experiment's rendered table with machine-readable
// key figures used by tests and EXPERIMENTS.md assertions. It is an alias
// of scenario.Result, so every function below registers directly as a
// scenario Spec run function.
type Result = scenario.Result

// Each file in this package contributes its experiments through a
// *Catalogue() slice; init() merges them and registers everything in paper
// order (figures, then E3–E17 numerically, then ablations), which is the
// order `figgen -list` and the registry report.
func init() {
	var all []scenario.Spec
	all = append(all, figureCatalogue()...)
	all = append(all, surveyCatalogue()...)
	all = append(all, hotspotCatalogue()...)
	all = append(all, osCatalogue()...)
	all = append(all, metroCatalogue()...)
	// Apply the autotuned kernel-tuning pins (tunings_gen.go, written by
	// figgen -autotune) over the catalogue's hand-pinned fallbacks. A pin
	// can only change wall clock — tunings are order-invisible — so this
	// rewrite is invisible to the golden, the cache and every backend.
	for i := range all {
		if all[i].RunTuned == nil {
			continue
		}
		if t, ok := autotunedTunings[all[i].Name]; ok {
			t := t
			all[i].Tuning = &t
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		ri, ni := catalogueRank(all[i].Name)
		rj, nj := catalogueRank(all[j].Name)
		if ri != rj {
			return ri < rj
		}
		if ni != nj {
			return ni < nj
		}
		return all[i].Name < all[j].Name
	})
	for _, s := range all {
		scenario.Register(s)
	}
}

// catalogueRank orders experiment names the way the paper presents them:
// figures first, then the numbered survey experiments, then ablations.
func catalogueRank(name string) (class, num int) {
	switch {
	case strings.HasPrefix(name, "fig"):
		n, _ := strconv.Atoi(name[3:])
		return 0, n
	case strings.HasPrefix(name, "e"):
		if n, err := strconv.Atoi(name[1:]); err == nil {
			return 1, n
		}
	}
	return 2, 0
}

// figureCatalogue lists this file's experiments: the paper's two figures.
func figureCatalogue() []scenario.Spec {
	return []scenario.Spec{
		{Name: "fig1", Desc: "Figure 1: sample schedule (transfers + power levels)",
			Tags: []string{"figure", "hotspot"}, Run: Figure1},
		{Name: "fig2", Desc: "Figure 2: average WNIC power, 3 MP3 clients",
			Tags: []string{"figure", "hotspot"}, Run: func(seed int64) Result {
				return Figure2(seed, 5*sim.Minute)
			}},
	}
}

// Figure1 reproduces the paper's Figure 1: a sample schedule for three
// concurrent clients, transfer slots above, WNIC power levels beneath.
func Figure1(seed int64) Result {
	h := core.NewHotspot(seed, core.DefaultConfig(), 3)
	traces := map[int]*trace.PowerTrace{}
	for _, c := range h.RM().Clients() {
		c := c
		tr := &trace.PowerTrace{}
		traces[c.ID()] = tr
		tr.Record(0, c.CurrentPower())
		c.OnPower = func(t sim.Time, w float64) { tr.Record(t, w) }
	}
	rep := h.Run(45 * sim.Second)

	var windows []trace.Window
	for _, s := range rep.Slots {
		windows = append(windows, trace.Window{Lane: s.Client, Start: s.Start, End: s.End})
	}
	g := trace.NewGantt(0, 45*sim.Second, 90)
	g.MaxPower = 1.5
	fig := trace.Figure1(g, []int{0, 1, 2}, windows, traces)

	return Result{
		Name:  "figure-1-sample-schedule",
		Table: fig,
		Values: map[string]float64{
			"slots":     float64(len(rep.Slots)),
			"underruns": float64(rep.TotalUnderruns),
		},
	}
}

// Figure2 reproduces the paper's Figure 2: average WNIC power for three
// concurrent MP3 clients under unscheduled WLAN, unscheduled Bluetooth, and
// Hotspot scheduling. The paper reports ≈1.4 W / ≈0.5 W / ≈0.04 W and a
// 97 % saving with QoS maintained.
func Figure2(seed int64, duration sim.Time) Result {
	rows, saving := core.Figure2(seed, 3, duration)
	t := stats.NewTable("Figure 2 — average iPAQ WNIC power, 3 clients streaming 128 kb/s MP3",
		"strategy", "power (W)", "underruns", "paper (W)")
	paper := []string{"1.40", "0.50", "0.04"}
	for i, r := range rows {
		t.AddRow(r.Strategy, fmt.Sprintf("%.4f", r.MeanW), fmt.Sprintf("%d", r.Underruns), paper[i])
	}
	t.AddNote("measured WNIC power saving vs unscheduled WLAN: %.1f%% (paper: 97%%)", saving*100)
	t.AddNote("QoS maintained: no playout underruns in the scheduled run")
	return Result{
		Name:  "figure-2-average-power",
		Table: t.String(),
		Values: map[string]float64{
			"wlanW":   rows[0].MeanW,
			"btW":     rows[1].MeanW,
			"hsW":     rows[2].MeanW,
			"saving":  saving,
			"underhs": float64(rows[2].Underruns),
		},
	}
}
