package exp_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	_ "repro/internal/exp" // register the experiment catalogue
	"repro/internal/scenario"
)

// goldenDoc mirrors the fields of figgen's -json output that the golden
// comparison needs; testdata/golden_seed1.json was generated with
//
//	go run ./cmd/figgen -json -seed 1
//
// on the pre-pool event kernel (PR 1 + the deterministic station-notification
// order in dcf.Medium). The kernel rewrite — slab pooling, lazy cancellation,
// closure-free timers — must be invisible to every experiment: same seed,
// bit-identical values.
type goldenDoc struct {
	Experiment string             `json:"experiment"`
	Values     map[string]float64 `json:"values"`
}

func TestGoldenSeed1BitIdentical(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_seed1.json")
	if err != nil {
		t.Fatal(err)
	}
	var docs []goldenDoc
	if err := json.Unmarshal(data, &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("golden file is empty")
	}

	covered := map[string]bool{}
	for _, doc := range docs {
		spec, ok := scenario.Lookup(doc.Experiment)
		if !ok {
			t.Errorf("golden experiment %q no longer registered", doc.Experiment)
			continue
		}
		covered[doc.Experiment] = true
		res := spec.Execute(1)
		if len(res.Values) != len(doc.Values) {
			t.Errorf("%s: %d values, golden has %d", doc.Experiment, len(res.Values), len(doc.Values))
		}
		for k, want := range doc.Values {
			got, ok := res.Values[k]
			if !ok {
				t.Errorf("%s: value %q missing", doc.Experiment, k)
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: %s = %v (bits %#x), golden %v (bits %#x)",
					doc.Experiment, k, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
	// Every registered experiment must be pinned: a new experiment means the
	// golden file needs regenerating (and reviewing) alongside it.
	for _, s := range scenario.All() {
		if !covered[s.Name] {
			t.Errorf("experiment %q not covered by golden file; regenerate testdata/golden_seed1.json", s.Name)
		}
	}
}
