package exp

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

// TestAnalyticAgreement asserts, for every spec carrying the [analytic]
// tag, that the simulated aggregates in its Values agree with the recorded
// closed-form expectations within the spec's own tolerance. The pairs are
// matched by key convention: simX is checked against modelX, with tolPct
// the allowed relative error in percent.
func TestAnalyticAgreement(t *testing.T) {
	specs := scenario.All()
	ran := 0
	for _, sp := range specs {
		if !sp.HasTag("analytic") {
			continue
		}
		sp := sp
		ran++
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			res := sp.Execute(1)
			tol, ok := res.Values["tolPct"]
			if !ok || tol <= 0 {
				t.Fatalf("[analytic] spec %s records no tolPct", sp.Name)
			}
			pairs := 0
			for key, simV := range res.Values {
				if len(key) < 4 || key[:3] != "sim" {
					continue
				}
				modV, ok := res.Values["model"+key[3:]]
				if !ok {
					continue
				}
				pairs++
				if modV == 0 {
					t.Errorf("%s: closed form %s is zero", sp.Name, key)
					continue
				}
				if e := math.Abs(simV-modV) / math.Abs(modV) * 100; e > tol {
					t.Errorf("%s: %s=%g vs model %g: %.2f%% exceeds %.1f%%",
						sp.Name, key, simV, modV, e, tol)
				}
			}
			if pairs == 0 {
				t.Fatalf("[analytic] spec %s records no sim/model value pairs", sp.Name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no [analytic] specs registered")
	}
}
