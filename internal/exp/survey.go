package exp

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/link"
	"repro/internal/mac/aggregate"
	"repro/internal/mac/dcf"
	"repro/internal/mac/ecmac"
	"repro/internal/mac/pamas"
	"repro/internal/mac/psm"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// denseDCFTuning is the kernel tuning override for the contention-heavy
// DCF experiments (e3–e5), chosen by measurement (best-of-5 ×
// testing.Benchmark sweeps over heap-leaning, wheel-leaning and tick-width
// variants; see BENCH_macro.json pr4-before/pr4-after). The ROADMAP's
// guess that these sims wanted the wheel *off* was wrong — the pure-heap
// sentinel (WheelMinPending 1<<20) ran e3/e5 ~5% slower. What actually
// pays is engaging the wheel earlier and shrinking it: MinPending 4 routes
// the short SIFS/DIFS/ACK chains into O(1) buckets even at the modest
// queue depths a handful of stations produce, and 2^8 buckets (2 KB vs the
// default 8 KB) keep the bucket array cache-resident. Measured: e5 (the
// densest, ~60% of the trio’s wall clock) gains a consistent ~6%, e3/e4 parity within
// noise. Tuning changes constant factors only, never event order, so the
// seed-1 golden is untouched.
var denseDCFTuning = sim.Tuning{TickShift: 0, WheelBits: 8, CompactMinDead: 64, WheelMinPending: 4}

// surveyCatalogue lists this file's experiments: the Section 1 survey
// claims about MAC, link and OS-level power management.
func surveyCatalogue() []scenario.Spec {
	return []scenario.Spec{
		{Name: "e3", Desc: "E3: unmanaged WLAN listens ~90% of the time",
			Tags: []string{"survey", "mac"}, RunTuned: E3ListenFraction, Tuning: &denseDCFTuning},
		{Name: "e4", Desc: "E4: 802.11 PSM vs CAM across loads",
			Tags: []string{"survey", "mac"}, RunTuned: E4PSMvsCAM, Tuning: &denseDCFTuning},
		{Name: "e5", Desc: "E5: CAM vs PSM vs EC-MAC",
			Tags: []string{"survey", "mac"}, RunTuned: E5MACComparison, Tuning: &denseDCFTuning},
		{Name: "e6", Desc: "E6: MAC-layer aggregation sweep",
			Tags: []string{"survey", "mac"}, Run: E6Aggregation},
		{Name: "e7", Desc: "E7: PAMAS overhearing avoidance + battery sleep",
			Tags: []string{"survey", "mac"}, Run: E7PAMAS},
		{Name: "e8", Desc: "E8: ARQ vs FEC energy crossover",
			Tags: []string{"survey", "link"}, Run: E8ARQvsFEC},
		{Name: "e9", Desc: "E9: adaptive ARQ with channel prediction",
			Tags: []string{"survey", "link"}, Run: E9AdaptiveARQ},
		{Name: "e11", Desc: "E11: OS-level DPM policies",
			Tags: []string{"survey", "os"}, Run: E11DPM},
		{Name: "e12", Desc: "E12: proxy content adaptation",
			Tags: []string{"survey", "app"}, Run: E12ProxyAdaptation},
	}
}

// E3ListenFraction verifies the paper's motivating claim: "WLANs spend as
// much as 90% of their time listening", so transmit-power control alone
// cannot save much.
func E3ListenFraction(seed int64, tun sim.Tuning) Result {
	s := sim.NewTuned(seed, tun)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	ap := dcf.NewStation(frame.AP, m, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	sta := dcf.NewStation(0, m, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	_ = ap
	// Interactive-style load: ~10 uplink frames/s of 1 KB.
	seq := 0
	sim.NewTicker(s, 100*sim.Millisecond, func() {
		seq++
		sta.Enqueue(frame.NewData(0, frame.AP, seq, 1000))
	})
	s.RunUntil(60 * sim.Second)
	meter := sta.Device().Meter()
	idle := meter.StateFraction(radio.Idle)
	rx := meter.StateFraction(radio.RX)
	tx := meter.StateFraction(radio.TX)
	idleEnergy := meter.StateEnergy(radio.Idle) / meter.TotalEnergy()

	t := stats.NewTable("E3 — unmanaged WLAN station time/energy budget (60 s, 10 pkt/s uplink)",
		"state", "time share", "energy share")
	t.AddRow("idle (listening)", fmt.Sprintf("%.1f%%", idle*100), fmt.Sprintf("%.1f%%", idleEnergy*100))
	t.AddRow("rx", fmt.Sprintf("%.1f%%", rx*100), "-")
	t.AddRow("tx", fmt.Sprintf("%.1f%%", tx*100), "-")
	t.AddNote("paper claim: WLANs listen up to ~90%% of the time; measured %.1f%%", idle*100)
	return Result{Name: "e3-listen-fraction", Table: t.String(), Values: map[string]float64{
		"idleFraction": idle, "idleEnergyShare": idleEnergy,
	}}
}

// E4PSMvsCAM compares 802.11 power-save mode to continuously-active mode
// across offered loads and beacon intervals.
func E4PSMvsCAM(seed int64, tun sim.Tuning) Result {
	t := stats.NewTable("E4 — 802.11 PSM vs CAM (client avg power, W)",
		"load (pkt/s)", "CAM", "PSM bi=100ms", "PSM bi=300ms", "saving @100ms")
	vals := map[string]float64{}
	for _, load := range []float64{0.5, 2, 8} {
		cam := runCAMClient(seed, tun, load, 40*sim.Second)
		psm100 := runPSMClient(seed, tun, load, 100*sim.Millisecond, 40*sim.Second)
		psm300 := runPSMClient(seed, tun, load, 300*sim.Millisecond, 40*sim.Second)
		saving := 1 - psm100/cam
		t.AddRow(fmt.Sprintf("%.1f", load),
			fmt.Sprintf("%.3f", cam), fmt.Sprintf("%.3f", psm100),
			fmt.Sprintf("%.3f", psm300), fmt.Sprintf("%.0f%%", saving*100))
		vals[fmt.Sprintf("cam-%.1f", load)] = cam
		vals[fmt.Sprintf("psm100-%.1f", load)] = psm100
	}
	t.AddNote("doze between beacons makes PSM's draw nearly load-proportional; CAM pays ~1.35 W regardless")
	return Result{Name: "e4-psm-vs-cam", Table: t.String(), Values: vals}
}

func runCAMClient(seed int64, tun sim.Tuning, pktPerSec float64, dur sim.Time) float64 {
	s := sim.NewTuned(seed, tun)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := psm.NewAP(s, m, apDev, psm.DefaultConfig())
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	dcf.NewStation(0, m, dev)
	interval := sim.FromSeconds(1 / pktPerSec)
	sim.NewTicker(s, interval, func() { ap.Deliver(0, 1000) })
	s.RunUntil(dur)
	return dev.Meter().AveragePower()
}

func runPSMClient(seed int64, tun sim.Tuning, pktPerSec float64, beacon sim.Time, dur sim.Time) float64 {
	s := sim.NewTuned(seed, tun)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	cfg := psm.DefaultConfig()
	cfg.BeaconInterval = beacon
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := psm.NewAP(s, m, apDev, cfg)
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	psm.NewClient(s, m, dev, ap, 0, cfg)
	interval := sim.FromSeconds(1 / pktPerSec)
	sim.NewTicker(s, interval, func() { ap.Deliver(0, 1000) })
	s.RunUntil(dur)
	return dev.Meter().AveragePower()
}

// E5MACComparison pits CAM, 802.11 PSM and EC-MAC against the same downlink
// load: EC-MAC's broadcast schedule eliminates contention and gives exact
// doze windows.
func E5MACComparison(seed int64, tun sim.Tuning) Result {
	const nSta = 4
	const dur = 30 * sim.Second
	loadBytes, loadEvery := 2000, 125*sim.Millisecond // 16 KB/s per station

	camW, camColl := runDCFDownlink(seed, tun, nSta, loadBytes, loadEvery, dur, false)
	psmW, psmColl := runDCFDownlink(seed, tun, nSta, loadBytes, loadEvery, dur, true)

	s := sim.NewTuned(seed, tun)
	bs := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	net := ecmac.NewNetwork(s, ecmac.DefaultConfig(), bs)
	for i := 0; i < nSta; i++ {
		net.Register(i, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	}
	net.Start()
	sim.NewTicker(s, loadEvery, func() {
		for i := 0; i < nSta; i++ {
			net.Deliver(i, loadBytes)
		}
	})
	s.RunUntil(dur)
	var ecW float64
	for i := 0; i < nSta; i++ {
		ecW += net.StationEnergy(i)
	}
	ecW /= nSta

	t := stats.NewTable("E5 — MAC protocol comparison (4 stations, 16 KB/s each downlink)",
		"protocol", "client avg W", "collisions", "property")
	t.AddRow("CAM (DCF)", fmt.Sprintf("%.3f", camW), fmt.Sprintf("%d", camColl), "always listening")
	t.AddRow("802.11 PSM", fmt.Sprintf("%.3f", psmW), fmt.Sprintf("%d", psmColl), "TIM-triggered doze")
	t.AddRow("EC-MAC", fmt.Sprintf("%.3f", ecW), "0", "scheduled: exact doze windows")
	t.AddNote("EC-MAC is collision-free by construction; PSM still contends for PS-Polls")
	return Result{Name: "e5-mac-comparison", Table: t.String(), Values: map[string]float64{
		"camW": camW, "psmW": psmW, "ecmacW": ecW,
		"camCollisions": float64(camColl), "psmCollisions": float64(psmColl),
	}}
}

func runDCFDownlink(seed int64, tun sim.Tuning, n int, bytes int, every, dur sim.Time, ps bool) (float64, int) {
	s := sim.NewTuned(seed, tun)
	m := dcf.NewMedium(s, dcf.Default80211b(), nil)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := psm.NewAP(s, m, apDev, psm.DefaultConfig())
	devs := make([]*radio.Device, n)
	stations := make([]*dcf.Station, n)
	for i := 0; i < n; i++ {
		devs[i] = radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
		if ps {
			stations[i] = psm.NewClient(s, m, devs[i], ap, i, psm.DefaultConfig()).Station()
		} else {
			stations[i] = dcf.NewStation(i, m, devs[i])
		}
	}
	sim.NewTicker(s, every, func() {
		for i := 0; i < n; i++ {
			ap.Deliver(i, bytes)
		}
	})
	// Uplink status reports create genuine contention: stations that wake
	// at the same instant draw backoffs from the same window and sometimes
	// pick the same slot.
	seq := 0
	sim.NewTicker(s, 250*sim.Millisecond, func() {
		seq++
		for i := 0; i < n; i++ {
			stations[i].Enqueue(frame.NewData(i, frame.AP, seq, 200))
		}
	})
	s.RunUntil(dur)
	var w float64
	for _, d := range devs {
		w += d.Meter().AveragePower()
	}
	return w / float64(n), m.Stats().Collisions
}

// E6Aggregation sweeps the MAC aggregation factor: energy per bit falls and
// doze fraction rises as per-frame overheads amortize; delay is the price.
func E6Aggregation(seed int64) Result {
	factors := []int{1, 2, 4, 8, 16}
	results := aggregate.Sweep(seed, factors, 60*sim.Second)
	t := stats.NewTable("E6 — MAC-layer aggregation (320 B packets every 20 ms)",
		"factor", "energy/bit (uJ)", "mean delay (ms)", "sleep %", "avg W")
	vals := map[string]float64{}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%d", r.Factor),
			fmt.Sprintf("%.2f", r.EnergyPerBitJ*1e6),
			fmt.Sprintf("%.1f", r.MeanDelay.Milliseconds()),
			fmt.Sprintf("%.1f", r.SleepFraction*100),
			fmt.Sprintf("%.3f", r.AvgPowerW))
		vals[fmt.Sprintf("epb-%d", r.Factor)] = r.EnergyPerBitJ
		vals[fmt.Sprintf("delay-%d", r.Factor)] = r.MeanDelay.Seconds()
	}
	t.AddNote("paper: 'longer mobile sleep periods can be created by aggregating MAC layer packets'")
	return Result{Name: "e6-aggregation", Table: t.String(), Values: vals}
}

// E7PAMAS compares always-listening CSMA against PAMAS overhearing
// avoidance and battery-level-driven sleep, measuring bystander energy and
// network lifetime.
func E7PAMAS(seed int64) Result {
	t := stats.NewTable("E7 — PAMAS power-aware MAC (6 nodes, random flows)",
		"mode", "first death (s)", "alive @160s", "delivered pkts", "pkts/J")
	vals := map[string]float64{}
	for _, mode := range []pamas.Mode{pamas.AlwaysListen, pamas.Pamas, pamas.PamasBattery} {
		s := sim.New(seed)
		cfg := pamas.DefaultConfig(mode)
		cfg.BatteryCapacity = 120
		n := pamas.NewNetwork(s, cfg, 6)
		sim.NewTicker(s, 1500*sim.Millisecond, func() {
			src := s.Rand().Intn(6)
			dst := (src + 1 + s.Rand().Intn(5)) % 6
			n.Send(src, dst, 30000)
		})
		alive160 := 0
		s.At(160*sim.Second, func() { alive160 = n.NumAlive() })
		s.RunUntil(400 * sim.Second)
		pkts, _ := n.Delivered()
		death := n.FirstDeath()
		deathS := death.Seconds()
		if death == sim.MaxTime {
			deathS = -1
		}
		perJ := float64(pkts) / (6 * cfg.BatteryCapacity)
		t.AddRow(mode.String(), fmt.Sprintf("%.0f", deathS),
			fmt.Sprintf("%d", alive160), fmt.Sprintf("%d", pkts),
			fmt.Sprintf("%.3f", perJ))
		vals["death-"+mode.String()] = deathS
		vals["pkts-"+mode.String()] = float64(pkts)
		vals["alive-"+mode.String()] = float64(alive160)
	}
	t.AddNote("paper: 'with PAMAS nodes independently enter sleep state based on their battery levels'")
	return Result{Name: "e7-pamas", Table: t.String(), Values: vals}
}

// E8ARQvsFEC sweeps channel BER and reports energy per delivered bit for
// plain ARQ, FEC-only, and hybrid ARQ+FEC — the link-layer trade-off the
// paper describes ("trading off retransmissions with ARQ against longer
// packet sizes due to FEC").
func E8ARQvsFEC(seed int64) Result {
	bers := []float64{1e-7, 1e-6, 1e-5, 4e-5, 1e-4}
	t := stats.NewTable("E8 — energy per delivered bit (uJ) vs channel BER",
		"BER", "ARQ only", "FEC only", "hybrid", "winner")
	vals := map[string]float64{}
	for _, ber := range bers {
		arq := e8transfer(seed, ber, link.SelectiveRepeat, link.NoCode(1400))
		fec := e8transfer(seed, ber, link.NoARQ, link.NewBCHLike(1400, 24))
		hyb := e8transfer(seed, ber, link.SelectiveRepeat, link.NewBCHLike(1400, 12))
		winner := "ARQ"
		best := arq
		if fec < best {
			best, winner = fec, "FEC"
		}
		if hyb < best {
			winner = "hybrid"
		}
		t.AddRow(fmt.Sprintf("%.0e", ber),
			fmt.Sprintf("%.3f", arq*1e6), fmt.Sprintf("%.3f", fec*1e6),
			fmt.Sprintf("%.3f", hyb*1e6), winner)
		vals[fmt.Sprintf("arq-%.0e", ber)] = arq
		vals[fmt.Sprintf("hyb-%.0e", ber)] = hyb
	}
	t.AddNote("low BER: parity overhead is wasted → ARQ wins; high BER: retransmissions explode → FEC/hybrid wins")
	return Result{Name: "e8-arq-vs-fec", Table: t.String(), Values: vals}
}

func e8transfer(seed int64, ber float64, arq link.ARQKind, code link.Code) float64 {
	s := sim.New(seed)
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: ber, BERBad: 0.5})
	ch.Freeze()
	p := link.DefaultParams()
	p.ARQ = arq
	p.PacketBytes = code.K
	p.Code = code
	r := link.Transfer(s, ch, p, 300)
	return r.EnergyPerBitJ
}

// E9AdaptiveARQ measures the prediction-accuracy / energy trade-off: static
// parameter sets vs predictor-driven adaptation vs the oracle bound.
func E9AdaptiveARQ(seed int64) Result {
	t := stats.NewTable("E9 — adaptive ARQ with channel prediction (bursty channel)",
		"policy", "accuracy", "pred. cost", "energy/bit (uJ)", "goodput (kb/s)")
	vals := map[string]float64{}
	run := func(name string, pred channel.Predictor, static *link.Params) {
		s := sim.New(seed)
		// Harsh fades (BER 5e-4 kills 1400-byte packets) on a channel with
		// ~75% good time: static-large burns energy in fades, static-robust
		// wastes parity in the clear — only adaptation gets both regimes.
		ch := channel.NewGilbertElliott(s, channel.GEParams{
			MeanGood: 2 * sim.Second, MeanBad: 700 * sim.Millisecond,
			BERGood: 1e-6, BERBad: 5e-4,
		})
		// 3000 packets ≈ 18 s of transfer: long enough to see many
		// good/bad transitions, which is where adaptation differentiates.
		cfg := link.DefaultAdaptiveConfig(3000)
		if static != nil {
			cfg.GoodParams = *static
			cfg.BadParams = *static
		}
		r := link.RunAdaptive(s, ch, pred, cfg)
		acc := "-"
		if static == nil {
			acc = fmt.Sprintf("%.2f", r.Accuracy)
		}
		t.AddRow(name, acc, fmt.Sprintf("%.0f", r.PredictionCost),
			fmt.Sprintf("%.3f", r.EnergyPerBitJ*1e6),
			fmt.Sprintf("%.0f", r.GoodputBps/1e3))
		vals["epb-"+name] = r.EnergyPerBitJ
		vals["acc-"+name] = r.Accuracy
	}
	big := link.DefaultParams()
	small := link.DefaultParams()
	small.PacketBytes = 300
	small.Code = link.NewBCHLike(300, 12)
	run("static-large", channel.NewLastState(), &big)
	run("static-robust", channel.NewLastState(), &small)
	run("adaptive/last-state", channel.NewLastState(), nil)
	run("adaptive/markov", channel.NewMarkov(), nil)
	run("adaptive/window-5", channel.NewWindow(5), nil)
	run("adaptive/oracle", channel.NewOracle(), nil)
	t.AddNote("paper: 'prediction of future channel conditions has a tradeoff on cost and accuracy versus the energy savings'")
	return Result{Name: "e9-adaptive-arq", Table: t.String(), Values: vals}
}

// E11DPM evaluates OS-level device power management policies on a bursty
// request trace.
func E11DPM(seed int64) Result {
	profile := radio.WLAN80211b()
	var trace []power.Request
	s0 := sim.New(seed)
	tgen := sim.Second
	for b := 0; b < 40; b++ {
		n := 3 + s0.Rand().Intn(10)
		for i := 0; i < n; i++ {
			trace = append(trace, power.Request{Arrival: tgen, Service: 2 * sim.Millisecond})
			tgen += sim.FromSeconds(0.004 + s0.Rand().Float64()*0.05)
		}
		tgen += sim.FromSeconds(0.5 + s0.Rand().ExpFloat64()*3)
	}
	policies := []power.Policy{
		power.AlwaysOn{},
		&power.FixedTimeout{Timeout: 50 * sim.Millisecond},
		&power.FixedTimeout{Timeout: sim.Second},
		power.NewAdaptiveTimeout(profile, 10*sim.Millisecond, sim.Second),
		power.NewPredictive(profile, 0.3),
		power.NewOracle(profile),
	}
	t := stats.NewTable("E11 — OS-level WNIC power management (bursty trace)",
		"policy", "energy (J)", "avg W", "mean delay (ms)", "sleeps")
	vals := map[string]float64{}
	for _, p := range policies {
		r := power.Run(sim.New(seed), profile, p, trace)
		t.AddRow(r.Policy, fmt.Sprintf("%.1f", r.EnergyJ), fmt.Sprintf("%.3f", r.AvgPowerW),
			fmt.Sprintf("%.2f", r.MeanDelay.Milliseconds()), fmt.Sprintf("%d", r.Sleeps))
		vals["energy-"+r.Policy] = r.EnergyJ
		vals["delay-"+r.Policy] = r.MeanDelay.Seconds()
	}
	t.AddNote("paper: OS-level decisions 'must rely on the quality of the predictive techniques'")
	return Result{Name: "e11-dpm", Table: t.String(), Values: vals}
}

// E12ProxyAdaptation shows the application-level proxy dropping the video
// layer in adverse conditions: the audio keeps flowing and the client radio
// saves the video's receive energy.
func E12ProxyAdaptation(seed int64) Result {
	run := func(adapt bool) (audio, video int, energy float64) {
		s := sim.New(seed)
		ch := channel.NewGilbertElliott(s, channel.GEParams{
			MeanGood: 4 * sim.Second, MeanBad: 2 * sim.Second,
			BERGood: 1e-7, BERBad: 1e-3,
		})
		mon := channel.NewMonitor(s, ch, channel.DefaultMonitorConfig())
		dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
		p := dev.Profile()
		// Chunks queue at the AP and are received back-to-back; the client
		// dozes whenever its queue is empty (power-save delivery), so every
		// byte the proxy drops converts directly into sleep time.
		var backlog []app.Chunk
		receiving := false
		var drain func()
		drain = func() {
			if receiving || dev.Transitioning() {
				return
			}
			if len(backlog) == 0 {
				if dev.State() == radio.Idle {
					dev.SetState(radio.Sleep, nil)
				}
				return
			}
			if dev.State() == radio.Sleep {
				dev.SetState(radio.Idle, func() { drain() })
				return
			}
			if dev.State() != radio.Idle {
				return
			}
			c := backlog[0]
			backlog = backlog[1:]
			receiving = true
			dev.OccupyFor(radio.RX, p.TxTime(c.Bytes+60), radio.Idle, func() {
				if c.Layer == 0 {
					audio += c.Bytes
				} else {
					video += c.Bytes
				}
				receiving = false
				drain()
			})
		}
		src := app.NewLayered(s, 128e3, 768e3)
		src.Start(func(c app.Chunk) {
			backlog = append(backlog, c)
			drain()
		})
		if adapt {
			adapter := channelAdapter{src: src, mon: mon}
			sim.NewTicker(s, 500*sim.Millisecond, adapter.tick)
		}
		s.RunUntil(60 * sim.Second)
		return audio, video, dev.Meter().TotalEnergy()
	}
	aFull, vFull, eFull := run(false)
	aAd, vAd, eAd := run(true)

	t := stats.NewTable("E12 — proxy content adaptation on a fading link (60 s)",
		"policy", "audio KB", "video KB", "client energy J")
	t.AddRow("full stream", fmt.Sprintf("%d", aFull/1024), fmt.Sprintf("%d", vFull/1024), fmt.Sprintf("%.1f", eFull))
	t.AddRow("adaptive (audio-only in fades)", fmt.Sprintf("%d", aAd/1024), fmt.Sprintf("%d", vAd/1024), fmt.Sprintf("%.1f", eAd))
	t.AddNote("paper: proxies 'dropping video content and delivering only audio in adverse conditions'")
	return Result{Name: "e12-proxy-adaptation", Table: t.String(), Values: map[string]float64{
		"audioFull": float64(aFull), "audioAdapt": float64(aAd),
		"videoFull": float64(vFull), "videoAdapt": float64(vAd),
		"energyFull": eFull, "energyAdapt": eAd,
	}}
}

// channelAdapter toggles a layered source's video layer from link quality.
type channelAdapter struct {
	src *app.Layered
	mon *channel.Monitor
}

func (a channelAdapter) tick() {
	a.src.SetVideo(a.mon.Quality() == channel.QualityGood)
}
