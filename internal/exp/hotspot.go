package exp

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// hotspotCatalogue lists this file's experiments: the transport-layer
// comparison plus the Hotspot resource-manager scenarios and ablations.
func hotspotCatalogue() []scenario.Spec {
	return []scenario.Spec{
		{Name: "e10", Desc: "E10: end-to-end vs split TCP",
			Tags: []string{"survey", "transport"}, Run: E10SplitTCP},
		{Name: "e13", Desc: "E13: EDF vs WFQ vs round-robin",
			Tags: []string{"survey", "hotspot"}, Run: E13Schedulers},
		{Name: "e14", Desc: "E14: burst-size sweep",
			Tags: []string{"survey", "hotspot"}, Run: E14BurstSize},
		{Name: "e15", Desc: "E15: seamless interface switching",
			Tags: []string{"survey", "hotspot"}, Run: E15InterfaceSwitch},
		{Name: "ablation-iface", Desc: "ablation: interface selection off",
			Tags: []string{"ablation", "hotspot"}, Run: AblationInterfaceSelection},
		{Name: "ablation-margin", Desc: "ablation: buffer margin",
			Tags: []string{"ablation", "hotspot"}, Run: AblationMargin},
		{Name: "ablation-burst", Desc: "ablation: burst aggregation",
			Tags: []string{"ablation", "hotspot"}, Run: AblationBurstAggregation},
	}
}

// E10SplitTCP compares end-to-end TCP against a split connection across a
// lossy wireless hop — the paper's transport-layer mitigation ("splitting a
// connection").
func E10SplitTCP(seed int64) Result {
	const bytes = 2_000_000
	bers := []float64{1e-8, 1e-6, 3e-6}
	t := stats.NewTable("E10 — 2 MB transfer over wired+wireless path (goodput kb/s)",
		"wireless BER", "end-to-end", "split", "snoop", "e2e J/KB", "split J/KB", "udp loss")
	vals := map[string]float64{}
	for _, ber := range bers {
		mk := func(s *sim.Simulator) transport.PathConfig {
			ch := channel.NewGilbertElliott(s, channel.GEParams{
				MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: ber, BERBad: 1e-2})
			ch.Freeze()
			return transport.DefaultPathConfig(ch)
		}
		s1 := sim.New(seed)
		e2e := transport.EndToEndTransfer(s1, mk(s1), bytes)
		s2 := sim.New(seed)
		split := transport.SplitTransfer(s2, mk(s2), bytes)
		s4 := sim.New(seed)
		snoop := transport.SnoopTransfer(s4, mk(s4), bytes)
		s3 := sim.New(seed)
		udp := transport.UDPStream(s3, mk(s3), 2000, 1000, 2*sim.Millisecond)

		t.AddRow(fmt.Sprintf("%.0e", ber),
			fmt.Sprintf("%.0f", e2e.GoodputBps/1e3),
			fmt.Sprintf("%.0f", split.GoodputBps/1e3),
			fmt.Sprintf("%.0f", snoop.GoodputBps/1e3),
			fmt.Sprintf("%.3f", e2e.EnergyPerByteJ*1024),
			fmt.Sprintf("%.3f", split.EnergyPerByteJ*1024),
			fmt.Sprintf("%.2f%%", udp.LossRate*100))
		vals[fmt.Sprintf("e2e-%.0e", ber)] = e2e.GoodputBps
		vals[fmt.Sprintf("split-%.0e", ber)] = split.GoodputBps
		vals[fmt.Sprintf("snoop-%.0e", ber)] = snoop.GoodputBps
	}
	t.AddNote("end-to-end TCP reads wireless corruption as congestion; split and snoop confine recovery to the wireless hop")
	return Result{Name: "e10-split-tcp", Table: t.String(), Values: vals}
}

// E13Schedulers compares the resource manager's scheduler menu under a
// transient Bluetooth capacity squeeze (a 25 s fade cuts effective goodput
// to a third): EDF chases deadlines, WFQ shares by weight, round-robin is
// oblivious to both. Results are averaged across five seeds.
func E13Schedulers(seed int64) Result {
	t := stats.NewTable("E13 — scheduler comparison (4 clients on Bluetooth, 25 s capacity squeeze, 5-seed mean)",
		"scheduler", "underruns", "stall (s)", "fairness (recv/weight)", "mean W")
	vals := map[string]float64{}
	const seeds = 5
	// Heterogeneous client rates totalling 56 KB/s: feasible on a clean
	// Bluetooth link, infeasible during the squeeze. Per-client state is
	// kept as columns indexed by client id — one admission column and one
	// received-per-weight column, reused across every scheduler × seed run —
	// rather than per-run appended slices.
	rates := []float64{64e3, 96e3, 128e3, 160e3}
	clients := make([]*core.Client, len(rates))
	perWeight := make([]float64, len(rates))
	for _, sched := range []core.Scheduler{core.EDF{}, core.NewWFQ(), core.RoundRobin{}} {
		var under, stall, fair, meanW stats.Summary
		for k := int64(0); k < seeds; k++ {
			cfg := core.DefaultConfig()
			cfg.Scheduler = sched
			cfg.Policy = core.PolicyBTOnly
			s := sim.New(seed + k)
			chans := map[core.Iface]*channel.GilbertElliott{}
			for _, i := range core.Ifaces() {
				ch := channel.NewGilbertElliott(s, core.GoodChannelParams())
				ch.Freeze()
				chans[i] = ch
			}
			rm := core.NewResourceManager(s, cfg, chans)
			for i, r := range rates {
				spec := core.DefaultClientSpec(i)
				spec.Stream = qos.StreamSpec{RateBps: r, PrebufferBytes: int(r / 8 * 2), CapacityBytes: int(r / 8 * 40)}
				clients[i] = rm.Admit(spec)
			}
			// Degraded-but-usable BT for 25 s: inflation triples burst
			// durations, cutting usable capacity below aggregate demand.
			s.Schedule(40*sim.Second, func() {
				chans[core.BT].ForceState(channel.Bad)
			})
			s.Schedule(65*sim.Second, func() {
				chans[core.BT].ForceState(channel.Good)
			})
			rm.Start()
			s.RunUntil(3 * sim.Minute)

			u, st := 0, sim.Time(0)
			var w stats.Summary
			for i, c := range clients {
				u += c.Buffer().Underruns()
				st += c.Buffer().StallTime()
				perWeight[i] = float64(c.Buffer().ReceivedBytes()) / rates[i]
				w.Add(c.AveragePower())
			}
			under.Add(float64(u))
			stall.Add(st.Seconds())
			fair.Add(stats.JainFairness(perWeight))
			meanW.Add(w.Mean())
		}
		t.AddRow(sched.Name(), fmt.Sprintf("%.1f", under.Mean()),
			fmt.Sprintf("%.1f", stall.Mean()), fmt.Sprintf("%.4f", fair.Mean()),
			fmt.Sprintf("%.3f", meanW.Mean()))
		vals["under-"+sched.Name()] = under.Mean()
		vals["stall-"+sched.Name()] = stall.Mean()
		vals["fair-"+sched.Name()] = fair.Mean()
	}
	t.AddNote("paper: schedulers 'ranging from standard real-time schedulers such as EDF to packet level schedulers such as WFQ'")
	return Result{Name: "e13-schedulers", Table: t.String(), Values: vals}
}

// E14BurstSize sweeps the scheduling epoch (and hence burst size): larger
// bursts amortize wake overheads into lower average power at the cost of
// client buffer memory — the knob behind "10s of Kbytes at a time".
func E14BurstSize(seed int64) Result {
	t := stats.NewTable("E14 — burst size sweep (3 MP3 clients, 4 min)",
		"epoch (s)", "burst (KB)", "mean W", "buffer need (KB)", "underruns")
	vals := map[string]float64{}
	for _, epoch := range []sim.Time{2 * sim.Second, 5 * sim.Second, 10 * sim.Second,
		20 * sim.Second, 40 * sim.Second} {
		cfg := core.DefaultConfig()
		cfg.Epoch = epoch
		spec := qos.MP3Stream()
		burstKB := spec.BytesPerSecond() * epoch.Seconds() / 1024
		bufferKB := spec.BytesPerSecond() * (epoch.Seconds() + cfg.MarginSeconds) / 1024
		// Client buffer capacity scales with the burst size (the sweep's
		// real cost axis): twice the standing target.
		s := sim.New(seed)
		chans := map[core.Iface]*channel.GilbertElliott{}
		for _, i := range core.Ifaces() {
			ch := channel.NewGilbertElliott(s, core.GoodChannelParams())
			ch.Freeze()
			chans[i] = ch
		}
		rm := core.NewResourceManager(s, cfg, chans)
		for i := 0; i < 3; i++ {
			cs := core.DefaultClientSpec(i)
			cs.Stream.CapacityBytes = int(2 * bufferKB * 1024)
			rm.Admit(cs)
		}
		rm.Start()
		s.RunUntil(4 * sim.Minute)
		rep := rm.Report()
		t.AddRow(fmt.Sprintf("%.0f", epoch.Seconds()),
			fmt.Sprintf("%.0f", burstKB),
			fmt.Sprintf("%.4f", rep.MeanPowerW),
			fmt.Sprintf("%.0f", bufferKB),
			fmt.Sprintf("%d", rep.TotalUnderruns))
		vals[fmt.Sprintf("power-%.0fs", epoch.Seconds())] = rep.MeanPowerW
	}
	t.AddNote("larger bursts → longer deep-sleep stretches → lower power, but linearly more client buffering")
	return Result{Name: "e14-burst-size", Table: t.String(), Values: vals}
}

// E15InterfaceSwitch scripts the paper's link episode: Bluetooth serves
// initially, its conditions degrade, the server switches clients to WLAN,
// and QoS holds throughout.
func E15InterfaceSwitch(seed int64) Result {
	cfg := core.DefaultConfig()
	h := core.NewHotspot(seed, cfg, 3)
	// Keep everyone on BT initially by making WLAN look unattractive?
	// No — the energy model already moves bulk delivery to WLAN. Script
	// instead the other observable episode: WLAN dies mid-run, the fleet
	// falls back to Bluetooth, then returns when WLAN recovers.
	h.Sim().Schedule(40*sim.Second, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
	h.Sim().Schedule(80*sim.Second, func() { h.Channel(core.WLAN).ForceState(channel.Good) })
	rep := h.Run(2 * sim.Minute)

	switches := 0
	for _, c := range h.RM().Clients() {
		switches += c.Switches()
	}
	t := stats.NewTable("E15 — seamless interface switching (WLAN outage 40-80 s)",
		"metric", "value")
	t.AddRow("interface switches (total)", fmt.Sprintf("%d", switches))
	t.AddRow("reactive recoveries", fmt.Sprintf("%d", rep.Recoveries))
	t.AddRow("urgent top-ups", fmt.Sprintf("%d", h.RM().Urgents()))
	t.AddRow("underruns", fmt.Sprintf("%d", rep.TotalUnderruns))
	t.AddRow("mean power (W)", fmt.Sprintf("%.4f", rep.MeanPowerW))
	t.AddNote("paper: 'as conditions in the link change, it seamlessly switches communication over' — QoS holds across both handoffs")
	return Result{Name: "e15-interface-switch", Table: t.String(), Values: map[string]float64{
		"switches": float64(switches), "underruns": float64(rep.TotalUnderruns),
		"meanW": rep.MeanPowerW,
	}}
}

// AblationInterfaceSelection removes dynamic interface selection: clients
// pinned to WLAN ride out a WLAN fade with inflated (capped) retransmission
// energy and QoS damage, while the adaptive policy sidesteps it via BT.
func AblationInterfaceSelection(seed int64) Result {
	run := func(policy core.IfacePolicy) core.Report {
		cfg := core.DefaultConfig()
		cfg.Policy = policy
		h := core.NewHotspot(seed, cfg, 3)
		h.Sim().Schedule(30*sim.Second, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
		h.Sim().Schedule(70*sim.Second, func() { h.Channel(core.WLAN).ForceState(channel.Good) })
		return h.Run(2 * sim.Minute)
	}
	adaptive := run(core.PolicyAdaptive)
	pinned := run(core.PolicyWLANOnly)
	t := stats.NewTable("Ablation — interface selection during a WLAN outage (30-70 s)",
		"policy", "underruns", "stall (s)", "mean W")
	t.AddRow("adaptive (paper)", fmt.Sprintf("%d", adaptive.TotalUnderruns),
		fmt.Sprintf("%.1f", adaptive.TotalStall.Seconds()), fmt.Sprintf("%.4f", adaptive.MeanPowerW))
	t.AddRow("pinned WLAN", fmt.Sprintf("%d", pinned.TotalUnderruns),
		fmt.Sprintf("%.1f", pinned.TotalStall.Seconds()), fmt.Sprintf("%.4f", pinned.MeanPowerW))
	return Result{Name: "ablation-iface-selection", Table: t.String(), Values: map[string]float64{
		"adaptiveUnder": float64(adaptive.TotalUnderruns),
		"pinnedUnder":   float64(pinned.TotalUnderruns),
		"pinnedStall":   pinned.TotalStall.Seconds(),
	}}
}

// AblationMargin shrinks the standing buffer margin below the watchdog's
// guard band: scheduled delivery degenerates into a stream of emergency
// top-up bursts (and, without them, into underruns) — the margin is what
// lets delivery stay on the planned burst schedule.
func AblationMargin(seed int64) Result {
	run := func(margin float64) (core.Report, int) {
		cfg := core.DefaultConfig()
		cfg.MarginSeconds = margin
		h := core.NewHotspot(seed, cfg, 3)
		h.Sim().Schedule(40*sim.Second, func() { h.Channel(core.WLAN).ForceState(channel.Bad) })
		rep := h.Run(100 * sim.Second)
		return rep, h.RM().Urgents()
	}
	wide, wideUrg := run(8)
	thin, thinUrg := run(1)
	t := stats.NewTable("Ablation — buffer margin vs switch transient (WLAN outage at 40 s)",
		"margin (s)", "underruns", "stall (s)", "urgent bursts")
	t.AddRow("8 (default)", fmt.Sprintf("%d", wide.TotalUnderruns),
		fmt.Sprintf("%.1f", wide.TotalStall.Seconds()), fmt.Sprintf("%d", wideUrg))
	t.AddRow("1", fmt.Sprintf("%d", thin.TotalUnderruns),
		fmt.Sprintf("%.1f", thin.TotalStall.Seconds()), fmt.Sprintf("%d", thinUrg))
	t.AddNote("a thin margin survives only by constant emergency bursts; the sized margin keeps delivery on schedule")
	return Result{Name: "ablation-margin", Table: t.String(), Values: map[string]float64{
		"wideUnder": float64(wide.TotalUnderruns), "thinUnder": float64(thin.TotalUnderruns),
		"wideUrgents": float64(wideUrg), "thinUrgents": float64(thinUrg),
	}}
}

// AblationBurstAggregation compares the default 10 s epochs against
// near-continuous 1 s epochs: scheduling without large bursts loses most of
// the saving to wake overheads.
func AblationBurstAggregation(seed int64) Result {
	run := func(epoch sim.Time) core.Report {
		cfg := core.DefaultConfig()
		cfg.Epoch = epoch
		h := core.NewHotspot(seed, cfg, 3)
		return h.Run(2 * sim.Minute)
	}
	big := run(10 * sim.Second)
	small := run(1 * sim.Second)
	t := stats.NewTable("Ablation — burst aggregation", "epoch", "mean W", "underruns")
	t.AddRow("10 s (paper-scale bursts)", fmt.Sprintf("%.4f", big.MeanPowerW), fmt.Sprintf("%d", big.TotalUnderruns))
	t.AddRow("1 s (small bursts)", fmt.Sprintf("%.4f", small.MeanPowerW), fmt.Sprintf("%d", small.TotalUnderruns))
	t.AddNote("paper: 'larger data burst sizes mean that clients can have longer periods of sleep time'")
	return Result{Name: "ablation-burst-aggregation", Table: t.String(), Values: map[string]float64{
		"bigW": big.MeanPowerW, "smallW": small.MeanPowerW,
	}}
}
