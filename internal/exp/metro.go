package exp

import (
	"fmt"

	"repro/internal/mac/metro"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// metroCatalogue lists the metro-scale scenario family (E18+): city-of-APs
// populations of power-save stations, far beyond the tens-of-stations
// experiments that reproduce the paper's own figures. Every spec carries
// the [analytic] tag: its Values embed both the simulated aggregates and
// the closed-form expectations (analytic.go in internal/mac/metro), and
// the analytic test asserts their agreement within the model's tolerance.
func metroCatalogue() []scenario.Spec {
	return []scenario.Spec{
		{Name: "e18", Desc: "E18: metro-dense — 20k stations, 8 APs, PSM downlink",
			Tags: []string{"metro", "analytic"}, RunTuned: E18MetroDense, Tuning: &metroTuning},
		{Name: "e19", Desc: "E19: metro-churn — Poisson association churn, M/M/∞ population",
			Tags: []string{"metro", "analytic"}, RunTuned: E19MetroChurn, Tuning: &metroTuning},
		{Name: "e20", Desc: "E20: metro-100k — 10⁵ stations, 60 s, cache-resident kernel",
			Tags: []string{"metro", "analytic", "scale"}, RunTuned: E20Metro100k, Tuning: &metroTuning},
	}
}

// metroTuning is the kernel tuning for the metro family: the aggregated
// processes keep only a handful of events pending, so the adaptive
// WheelMinPending mode routes everything through the overflow heap and
// never pays wheel maintenance. Tuning changes constant factors only,
// never event order, so results are bit-identical to the default tuning.
var metroTuning = sim.Tuning{TickShift: 0, WheelBits: 10, CompactMinDead: 64,
	WheelMinPending: sim.WheelAdaptive}

// metroDense is the shared dense-cell parameter set: 802.11b PSM stations
// waking every 8th 100 ms beacon, 0.2 heavy-tailed downlink frames/s each.
func metroDense(stations, aps int, horizon sim.Time) metro.Config {
	return metro.Config{
		APs:            aps,
		Stations:       stations,
		BeaconInterval: 100 * sim.Millisecond,
		ListenInterval: 8,
		WakeLead:       2 * sim.Millisecond,
		BeaconAir:      1 * sim.Millisecond,
		PollAir:        200 * sim.Microsecond,
		OverheadBytes:  28,
		RatePerStation: 0.2,
		Frame:          metro.Pareto{Alpha: 1.5, MinBytes: 200, MaxBytes: 15000},
		Horizon:        horizon,
		Profile:        radio.WLAN80211b(),
	}
}

// runMetro executes a metro config under the given kernel tuning and
// renders the sim-vs-closed-form comparison. The Values carry both sides
// so the [analytic] agreement is asserted from recorded results (and
// golden-pinned across kernels and backends).
func runMetro(name, title string, seed int64, tun sim.Tuning, cfg metro.Config) Result {
	s := sim.NewTuned(seed, tun)
	m := metro.New(s, cfg)
	m.Start()
	s.RunUntil(cfg.Horizon)
	rep := m.Finish()
	pred := metro.Predict(cfg)

	t := stats.NewTable(title, "aggregate", "simulated", "closed form", "err")
	row := func(label string, simV, modV float64, format string) {
		t.AddRow(label, fmt.Sprintf(format, simV), fmt.Sprintf(format, modV),
			fmt.Sprintf("%.2f%%", relPct(simV, modV)))
	}
	row("energy (J)", rep.EnergyJ, pred.EnergyJ, "%.1f")
	row("avg power (W/station)", rep.AvgPowerW, pred.AvgPowerW, "%.5f")
	row("delivered (Mb/s)", rep.DeliveredGoodputBps/1e6, pred.ThroughputBps/1e6, "%.3f")
	row("station-time (s)", rep.StationSec, pred.StationSec, "%.0f")
	t.AddRow("attended beacons", fmt.Sprintf("%d", rep.AttendedBeacons), "—", "")
	if rep.Arrivals > 0 || rep.Departures > 0 {
		t.AddRow("churn (join/leave)", fmt.Sprintf("%d/%d", rep.Arrivals, rep.Departures), "—", "")
	}
	t.AddNote("closed form: Agrawal-style PSM expectation (internal/mac/metro/analytic.go), tolerance %.0f%%", pred.TolerancePct)

	return Result{
		Name:  name,
		Table: t.String(),
		Values: map[string]float64{
			"simJ":        rep.EnergyJ,
			"modelJ":      pred.EnergyJ,
			"simW":        rep.AvgPowerW,
			"modelW":      pred.AvgPowerW,
			"simBps":      rep.DeliveredGoodputBps,
			"modelBps":    pred.ThroughputBps,
			"simStaSec":   rep.StationSec,
			"modelStaSec": pred.StationSec,
			"tolPct":      pred.TolerancePct,
			"live":        float64(rep.Live),
			"frames":      float64(rep.DeliveredFrames),
		},
	}
}

func relPct(simV, modV float64) float64 {
	if modV == 0 {
		return 0
	}
	d := (simV - modV) / modV * 100
	if d < 0 {
		return -d
	}
	return d
}

// E18MetroDense runs a dense metro cell cluster: 20k immortal stations on
// 8 APs for 30 s — the smallest member of the family, also used as the CI
// smoke scenario across execution backends.
func E18MetroDense(seed int64, tun sim.Tuning) Result {
	return runMetro("e18-metro-dense",
		"E18 — metro-dense: 20k PSM stations, 8 APs, 30 s",
		seed, tun, metroDense(20_000, 8, 30*sim.Second))
}

// E19MetroChurn adds association churn: an M/M/∞ population around 2000
// stations (80 joins/s, 25 s mean lifetime) on a 4096-id space, checking
// the swap-remove/attach-order machinery and the steady-state closed form.
func E19MetroChurn(seed int64, tun sim.Tuning) Result {
	cfg := metroDense(2000, 8, 30*sim.Second)
	cfg.MaxStations = 4096
	cfg.ArrivalRate = 80
	cfg.MeanLifetime = 25 * sim.Second
	return runMetro("e19-metro-churn",
		"E19 — metro-churn: M/M/∞ population (n̄=2000, τ=25 s), 30 s",
		seed, tun, cfg)
}

// E20Metro100k is the scale acceptance spec: 10⁵ stations on 20 APs for
// 60 simulated seconds — ~7.5M TIM attendances and ~1.2M downlink frames
// through a queue of four aggregated events, in seconds of wall time at
// zero steady-state allocations.
func E20Metro100k(seed int64, tun sim.Tuning) Result {
	return runMetro("e20-metro-100k",
		"E20 — metro-100k: 10⁵ stations, 20 APs, 60 s",
		seed, tun, metroDense(100_000, 20, 60*sim.Second))
}
