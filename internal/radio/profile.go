// Package radio models wireless network interface cards (WNICs) as power
// state machines with calibrated per-state power draw, state-transition
// latencies and energies, and energy metering.
//
// The paper's Figure 2 compares the *average power* of an iPAQ 3970's WNIC
// under three delivery strategies; average power is fully determined by how
// long the WNIC resides in each state times that state's power, which is
// exactly what this package accounts for.
package radio

import (
	"fmt"

	"repro/internal/sim"
)

// State identifies a WNIC power state.
type State int

// WNIC power states, ordered roughly by increasing power draw. Sleep doubles
// as 802.11 "doze" and Bluetooth "park": a state retaining the association at
// very low power. Off is fully powered down and must pay a re-association
// cost to come back.
const (
	Off State = iota
	Sleep
	Idle // powered, listening to the medium
	RX
	TX
	numStates
)

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case Sleep:
		return "sleep"
	case Idle:
		return "idle"
	case RX:
		return "rx"
	case TX:
		return "tx"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// States lists all modelled states in ascending power order.
func States() []State { return []State{Off, Sleep, Idle, RX, TX} }

// NumStates is the number of modelled power states, exported so other
// packages can size per-state accounting arrays (struct-of-arrays
// time-in-state ledgers and the like) without a map or a slice header per
// station.
const NumStates = int(numStates)

// Transition describes the cost of moving between two power states.
type Transition struct {
	Latency sim.Time // time during which the WNIC is unusable
	Energy  float64  // joules consumed by the transition itself
}

// TransitionTable holds the cost of every (from, to) state change as a
// dense array indexed by the two states. The zero value — every entry
// instantaneous and free — is a valid table. A dense array instead of a
// map keeps TransitionCost a two-index load: the lookup sits on the
// per-station beacon path of the metro experiments (millions of calls per
// run), where hashing a 16-byte map key was ~30% of the whole simulation.
type TransitionTable [numStates][numStates]Transition

// MakeTransitions builds a TransitionTable from the sparse map form, for
// callers that want to list only the transitions with nonzero cost.
func MakeTransitions(m map[[2]State]Transition) TransitionTable {
	var t TransitionTable
	for k, tr := range m {
		t[k[0]][k[1]] = tr
	}
	return t
}

// Profile is the calibration data for one WNIC technology: state power draw,
// transition costs and link-speed characteristics.
type Profile struct {
	Name string

	// Power holds the draw of each state in watts.
	Power [numStates]float64

	// Transitions holds the cost of each (from, to) state change. Entries
	// left zero are instantaneous and free.
	Transitions TransitionTable

	// BitRate is the nominal PHY rate in bits/second.
	BitRate float64

	// Goodput is the effective application-level throughput in bits/second
	// once MAC/transport overheads are paid; used by burst-level models.
	Goodput float64

	// PerBurstOverhead is the fixed time cost of starting a burst transfer
	// (polling, scheduling grant, transport ramp-up).
	PerBurstOverhead sim.Time

	// DeepState is the state the technology uses for long-term inactivity
	// under scheduled delivery: Off for WLAN (re-association is affordable
	// between multi-second bursts), Sleep (= park) for Bluetooth.
	DeepState State
}

// TransitionCost returns the latency/energy to move between two states.
// Unlisted transitions are instantaneous and free.
func (p *Profile) TransitionCost(from, to State) Transition {
	return p.Transitions[from][to]
}

// TxTime returns the time to transmit n bytes at the nominal PHY rate.
func (p *Profile) TxTime(bytes int) sim.Time {
	return sim.FromSeconds(float64(bytes*8) / p.BitRate)
}

// BurstTime returns the time to deliver n bytes at effective goodput,
// including the fixed per-burst overhead.
func (p *Profile) BurstTime(bytes int) sim.Time {
	return p.PerBurstOverhead + sim.FromSeconds(float64(bytes*8)/p.Goodput)
}

// Validate checks internal consistency of the calibration data.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("radio: profile missing name")
	}
	if p.BitRate <= 0 {
		return fmt.Errorf("radio: profile %s: non-positive bit rate", p.Name)
	}
	if p.Goodput <= 0 || p.Goodput > p.BitRate {
		return fmt.Errorf("radio: profile %s: goodput %.0f outside (0, bitrate]", p.Name, p.Goodput)
	}
	for _, s := range States() {
		if p.Power[s] < 0 {
			return fmt.Errorf("radio: profile %s: negative power for %v", p.Name, s)
		}
	}
	if p.Power[Off] != 0 {
		return fmt.Errorf("radio: profile %s: Off state must draw zero power", p.Name)
	}
	if p.Power[Sleep] > p.Power[Idle] {
		return fmt.Errorf("radio: profile %s: sleep draws more than idle", p.Name)
	}
	for from := range p.Transitions {
		for to, t := range p.Transitions[from] {
			if t.Latency < 0 || t.Energy < 0 {
				return fmt.Errorf("radio: profile %s: negative transition cost %v->%v",
					p.Name, State(from), State(to))
			}
		}
	}
	return nil
}

// WLAN80211b returns the calibrated 802.11b CF-card profile used for the
// iPAQ 3970 reproduction. Values follow published measurements of that era's
// hardware: idle listening costs nearly as much as receiving, which is the
// paper's motivating observation ("WLANs spend as much as 90% of their time
// listening").
func WLAN80211b() *Profile {
	return &Profile{
		Name: "wlan-802.11b",
		Power: [numStates]float64{
			Off:   0,
			Sleep: 0.045, // 802.11 doze, association kept
			Idle:  1.35,  // awake, listening
			RX:    1.40,
			TX:    1.65,
		},
		Transitions: MakeTransitions(map[[2]State]Transition{
			{Off, Idle}:   {Latency: 100 * sim.Millisecond, Energy: 0.135}, // power-up + re-associate
			{Idle, Off}:   {Latency: 10 * sim.Millisecond, Energy: 0.005},
			{Sleep, Idle}: {Latency: 2 * sim.Millisecond, Energy: 0.002},
			{Idle, Sleep}: {Latency: 1 * sim.Millisecond, Energy: 0.001},
		}),
		BitRate:          11e6,
		Goodput:          5.8e6, // MAC+TCP efficiency of 802.11b bulk transfer
		PerBurstOverhead: 8 * sim.Millisecond,
		DeepState:        Off,
	}
}

// Bluetooth returns the calibrated Bluetooth 1.1 module profile. Bluetooth's
// low-power "park" mode maps to Sleep; exiting park is much cheaper than a
// WLAN re-association, but active throughput is ~15x lower.
func Bluetooth() *Profile {
	return &Profile{
		Name: "bluetooth",
		Power: [numStates]float64{
			Off:   0,
			Sleep: 0.005, // park with a slow beacon train: a few mW
			Idle:  0.39,  // connected, no traffic
			RX:    0.425,
			TX:    0.465,
		},
		Transitions: MakeTransitions(map[[2]State]Transition{
			{Off, Idle}:   {Latency: 2 * sim.Second, Energy: 0.6}, // inquiry+page: why BT uses park, not off
			{Idle, Off}:   {Latency: 5 * sim.Millisecond, Energy: 0.001},
			{Sleep, Idle}: {Latency: 20 * sim.Millisecond, Energy: 0.004},
			{Idle, Sleep}: {Latency: 10 * sim.Millisecond, Energy: 0.002},
		}),
		BitRate:          723.2e3,
		Goodput:          560e3,
		PerBurstOverhead: 25 * sim.Millisecond,
		DeepState:        Sleep,
	}
}
