package radio

import (
	"repro/internal/sim"
)

// Meter integrates a device's power draw over simulated time, keeping both
// the total and a per-state breakdown. All Figure 2 style numbers come out
// of Meters.
type Meter struct {
	sim     *sim.Simulator
	profile *Profile

	state     State
	since     sim.Time // when the current state was entered
	startedAt sim.Time

	stateTime   [numStates]sim.Time
	stateEnergy [numStates]float64
	transEnergy float64
}

func newMeter(s *sim.Simulator, p *Profile, initial State) *Meter {
	return &Meter{sim: s, profile: p, state: initial, since: s.Now(), startedAt: s.Now()}
}

// setState closes the accounting period for the old state and opens one for
// the new state.
func (m *Meter) setState(s State) {
	m.settle()
	m.state = s
}

// settle accrues time/energy for the current state up to now.
func (m *Meter) settle() {
	now := m.sim.Now()
	dt := now - m.since
	if dt > 0 {
		m.stateTime[m.state] += dt
		m.stateEnergy[m.state] += m.profile.Power[m.state] * dt.Seconds()
	}
	m.since = now
}

// addTransitionEnergy charges a one-off transition energy cost.
func (m *Meter) addTransitionEnergy(j float64) { m.transEnergy += j }

// TotalEnergy returns the joules consumed since metering began, including
// transition energies.
func (m *Meter) TotalEnergy() float64 {
	m.settle()
	total := m.transEnergy
	for _, e := range m.stateEnergy {
		total += e
	}
	return total
}

// StateEnergy returns the joules consumed while in state s.
func (m *Meter) StateEnergy(s State) float64 {
	m.settle()
	return m.stateEnergy[s]
}

// StateTime returns the cumulative time spent in state s.
func (m *Meter) StateTime(s State) sim.Time {
	m.settle()
	return m.stateTime[s]
}

// TransitionEnergy returns the joules consumed by state transitions alone.
func (m *Meter) TransitionEnergy() float64 { return m.transEnergy }

// Elapsed returns the wall-clock (simulated) observation window so far.
func (m *Meter) Elapsed() sim.Time { return m.sim.Now() - m.startedAt }

// AveragePower returns total energy divided by elapsed time, in watts. This
// is the quantity Figure 2 plots.
func (m *Meter) AveragePower() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return m.TotalEnergy() / el.Seconds()
}

// StateFraction returns the fraction of elapsed time spent in state s.
func (m *Meter) StateFraction(s State) float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.StateTime(s)) / float64(el)
}

// Reset zeroes all accumulated statistics and restarts the observation
// window at the current simulation time, keeping the current state.
func (m *Meter) Reset() {
	m.settle()
	m.stateTime = [numStates]sim.Time{}
	m.stateEnergy = [numStates]float64{}
	m.transEnergy = 0
	m.startedAt = m.sim.Now()
	m.since = m.sim.Now()
}
