package radio

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{WLAN80211b(), Bluetooth()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateCatchesErrors(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BitRate = 0 },
		func(p *Profile) { p.Goodput = p.BitRate * 2 },
		func(p *Profile) { p.Power[RX] = -1 },
		func(p *Profile) { p.Power[Off] = 0.5 },
		func(p *Profile) { p.Power[Sleep] = p.Power[Idle] + 1 },
		func(p *Profile) {
			p.Transitions[Off][Idle] = Transition{Latency: -1}
		},
	}
	for i, mutate := range cases {
		p := WLAN80211b()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: corrupted profile validated", i)
		}
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Off: "off", Sleep: "sleep", Idle: "idle", RX: "rx", TX: "tx"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestTxTime(t *testing.T) {
	p := WLAN80211b()
	// 11 Mb/s: 1375 bytes = 11000 bits = 1 ms
	if got := p.TxTime(1375); got != sim.Millisecond {
		t.Errorf("TxTime(1375) = %v, want 1ms", got)
	}
}

func TestBurstTime(t *testing.T) {
	p := WLAN80211b()
	got := p.BurstTime(0)
	if got != p.PerBurstOverhead {
		t.Errorf("BurstTime(0) = %v, want overhead %v", got, p.PerBurstOverhead)
	}
	bytes := 160 * 1024
	want := p.PerBurstOverhead + sim.FromSeconds(float64(bytes*8)/p.Goodput)
	if got := p.BurstTime(bytes); got != want {
		t.Errorf("BurstTime = %v, want %v", got, want)
	}
}

func TestDeviceInitialState(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	if d.State() != Off {
		t.Errorf("initial state = %v, want off", d.State())
	}
	if d.Meter().TotalEnergy() != 0 {
		t.Error("fresh device consumed energy")
	}
}

func TestFreeTransitionIsImmediate(t *testing.T) {
	s := sim.New(1)
	p := WLAN80211b()
	d := NewDevice(s, p)
	done := false
	lat := d.SetState(Idle, func() { done = true })
	// Off->Idle has latency per profile, so pick one without cost:
	_ = lat
	s.Run()
	if !done {
		t.Error("done callback never ran")
	}
}

func TestTransitionLatencyHonored(t *testing.T) {
	s := sim.New(1)
	p := WLAN80211b()
	d := NewDevice(s, p)
	var doneAt sim.Time = -1
	lat := d.SetState(Idle, func() { doneAt = s.Now() })
	if lat != p.TransitionCost(Off, Idle).Latency {
		t.Errorf("returned latency %v, want %v", lat, p.TransitionCost(Off, Idle).Latency)
	}
	if !d.Transitioning() {
		t.Error("device should be transitioning")
	}
	s.Run()
	if doneAt != 100*sim.Millisecond {
		t.Errorf("transition completed at %v, want 100ms", doneAt)
	}
	if d.Transitioning() {
		t.Error("device still transitioning after completion")
	}
}

func TestSetStateDuringTransitionPanics(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	d.SetState(Idle, nil) // starts 100ms transition
	defer func() {
		if recover() == nil {
			t.Error("SetState during transition did not panic")
		}
	}()
	d.SetState(Off, nil)
}

func TestSetStateSameStateNoop(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	called := false
	if lat := d.SetState(Off, func() { called = true }); lat != 0 {
		t.Errorf("same-state latency = %v, want 0", lat)
	}
	if !called {
		t.Error("done callback skipped for no-op transition")
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := sim.New(1)
	p := WLAN80211b()
	d := NewDevice(s, p)
	d.SetState(Idle, nil)
	s.Run() // completes transition at 100ms; idle power charged over that window
	s.RunUntil(1100 * sim.Millisecond)
	m := d.Meter()
	// 1.1s in idle state (including transition window at target-state power)
	// plus off->idle transition energy 0.135 J.
	wantIdle := p.Power[Idle] * 1.1
	if !almostEq(m.StateEnergy(Idle), wantIdle, 1e-9) {
		t.Errorf("idle energy = %v, want %v", m.StateEnergy(Idle), wantIdle)
	}
	wantTotal := wantIdle + 0.135
	if !almostEq(m.TotalEnergy(), wantTotal, 1e-9) {
		t.Errorf("total energy = %v, want %v", m.TotalEnergy(), wantTotal)
	}
	if !almostEq(m.AveragePower(), wantTotal/1.1, 1e-9) {
		t.Errorf("avg power = %v, want %v", m.AveragePower(), wantTotal/1.1)
	}
}

func TestTransmitOccupiesTxThenRestores(t *testing.T) {
	s := sim.New(1)
	p := WLAN80211b()
	d := NewDevice(s, p)
	d.SetState(Idle, nil)
	s.Run()
	start := s.Now()
	var doneAt sim.Time = -1
	air := d.Transmit(1375, Idle, func() { doneAt = s.Now() })
	if air != sim.Millisecond {
		t.Errorf("airtime = %v, want 1ms", air)
	}
	if d.State() != TX {
		t.Errorf("state during transmit = %v, want tx", d.State())
	}
	s.Run()
	if doneAt != start+sim.Millisecond {
		t.Errorf("done at %v, want %v", doneAt, start+sim.Millisecond)
	}
	if d.State() != Idle {
		t.Errorf("state after transmit = %v, want idle", d.State())
	}
	if !almostEq(d.Meter().StateEnergy(TX), p.Power[TX]*0.001, 1e-12) {
		t.Errorf("tx energy = %v", d.Meter().StateEnergy(TX))
	}
}

func TestReceiveOccupiesRx(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	d.SetState(Idle, nil)
	s.Run()
	d.Receive(2750, Idle, nil)
	if d.State() != RX {
		t.Errorf("state = %v, want rx", d.State())
	}
	s.Run()
	if got := d.Meter().StateTime(RX); got != 2*sim.Millisecond {
		t.Errorf("rx time = %v, want 2ms", got)
	}
}

func TestOccupyFromSleepPanics(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	defer func() {
		if recover() == nil {
			t.Error("transmit from off did not panic")
		}
	}()
	d.Transmit(100, Idle, nil)
}

func TestStateChangeListeners(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	var states []State
	d.OnStateChange(func(_ sim.Time, st State) { states = append(states, st) })
	d.SetState(Idle, nil)
	s.Run()
	d.OccupyFor(RX, sim.Millisecond, Idle, nil)
	s.Run()
	want := []State{Idle, RX, Idle}
	if len(states) != len(want) {
		t.Fatalf("listener saw %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("listener[%d] = %v, want %v", i, states[i], want[i])
		}
	}
}

func TestMeterStateFractionAndReset(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, WLAN80211b())
	s.RunUntil(1 * sim.Second) // 1s in Off
	d.SetState(Idle, nil)
	s.Run()
	s.RunUntil(2 * sim.Second) // 1s in Idle (incl. transition)
	m := d.Meter()
	if f := m.StateFraction(Off); !almostEq(f, 0.5, 1e-9) {
		t.Errorf("off fraction = %v, want 0.5", f)
	}
	m.Reset()
	if m.TotalEnergy() != 0 {
		t.Error("energy nonzero after reset")
	}
	s.RunUntil(3 * sim.Second)
	if f := m.StateFraction(Idle); !almostEq(f, 1.0, 1e-9) {
		t.Errorf("idle fraction after reset = %v, want 1", f)
	}
}

func TestSleepPowerOrdering(t *testing.T) {
	// The entire premise of scheduled delivery: deep states draw orders of
	// magnitude less than listening.
	for _, p := range []*Profile{WLAN80211b(), Bluetooth()} {
		if p.Power[Sleep] >= p.Power[Idle]/10 {
			t.Errorf("%s: sleep %.3f not ≪ idle %.3f", p.Name, p.Power[Sleep], p.Power[Idle])
		}
		if p.Power[Idle] > p.Power[RX] {
			t.Errorf("%s: idle draws more than RX", p.Name)
		}
	}
}

func TestWLANIdleNearRX(t *testing.T) {
	// Paper: "Power consumption of WLAN hardware is similar in transmit and
	// receive modes" and idle listening is nearly as expensive as RX.
	p := WLAN80211b()
	if p.Power[Idle]/p.Power[RX] < 0.9 {
		t.Errorf("WLAN idle/rx ratio %.2f should be ≥0.9 to match hardware", p.Power[Idle]/p.Power[RX])
	}
}

func TestTransitionLatencyQuery(t *testing.T) {
	s := sim.New(1)
	p := WLAN80211b()
	d := NewDevice(s, p)
	if got := d.TransitionLatency(Idle); got != 100*sim.Millisecond {
		t.Errorf("TransitionLatency(Idle) = %v, want 100ms", got)
	}
	if d.State() != Off {
		t.Error("TransitionLatency must not change state")
	}
}
