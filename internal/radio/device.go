package radio

import (
	"fmt"

	"repro/internal/sim"
)

// Device is a WNIC instance bound to a simulator: a power state machine that
// meters its own energy. State changes that the Profile lists with a
// transition cost take simulated time, during which the device is in a
// transitional condition drawing the *target* state's power plus the
// transition energy.
type Device struct {
	sim     *sim.Simulator
	profile *Profile
	meter   *Meter

	state         State
	transitioning bool
	transEnd      sim.Time
	pendingDone   []func()

	// listeners are notified after every completed state change; the trace
	// package uses this to build Figure 1's power-level lanes.
	listeners []func(t sim.Time, s State)
}

// NewDevice creates a WNIC in the Off state.
func NewDevice(s *sim.Simulator, p *Profile) *Device {
	return NewDeviceInState(s, p, Off)
}

// NewDeviceInState creates a WNIC already in the given state without paying
// any transition cost. MAC models use this for stations that are already
// associated when the simulation starts.
func NewDeviceInState(s *sim.Simulator, p *Profile, initial State) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &Device{sim: s, profile: p, state: initial}
	d.meter = newMeter(s, p, initial)
	return d
}

// Profile returns the device's calibration profile.
func (d *Device) Profile() *Profile { return d.profile }

// State returns the current power state. During a transition this is already
// the target state (the hardware is committed), but the device is unusable
// until the transition completes.
func (d *Device) State() State { return d.state }

// Transitioning reports whether a state change is still in flight.
func (d *Device) Transitioning() bool { return d.transitioning && d.sim.Now() < d.transEnd }

// Meter returns the device's energy meter.
func (d *Device) Meter() *Meter { return d.meter }

// OnStateChange registers fn to run after every completed state change.
func (d *Device) OnStateChange(fn func(t sim.Time, s State)) {
	d.listeners = append(d.listeners, fn)
}

// SetState initiates a change to the target state and returns the latency
// until the device is usable in that state. If done is non-nil it runs when
// the transition completes (immediately for free transitions).
//
// Requesting a change while a previous transition is still in flight is a
// modelling error — real firmware serializes these — and panics so tests
// catch protocol bugs.
func (d *Device) SetState(target State, done func()) sim.Time {
	if d.Transitioning() {
		panic(fmt.Sprintf("radio: %s: SetState(%v) during transition to %v (ends %v)",
			d.profile.Name, target, d.state, d.transEnd))
	}
	if target == d.state {
		if done != nil {
			done()
		}
		return 0
	}
	cost := d.profile.TransitionCost(d.state, target)
	d.state = target
	d.meter.setState(target)
	d.meter.addTransitionEnergy(cost.Energy)
	for _, fn := range d.listeners {
		fn(d.sim.Now(), target)
	}
	if cost.Latency == 0 {
		if done != nil {
			done()
		}
		return 0
	}
	d.transitioning = true
	d.transEnd = d.sim.Now() + cost.Latency
	d.sim.At(d.transEnd, func() {
		d.transitioning = false
		if done != nil {
			done()
		}
	})
	return cost.Latency
}

// TransitionLatency reports the latency of switching from the current state
// to target without performing the switch.
func (d *Device) TransitionLatency(target State) sim.Time {
	return d.profile.TransitionCost(d.state, target).Latency
}

// Transmit models occupying the radio in TX for the airtime of n bytes at
// PHY rate, then returning to the restore state. done runs when the radio
// has returned. The device must be usable (not mid-transition).
func (d *Device) Transmit(bytes int, restore State, done func()) sim.Time {
	airtime := d.profile.TxTime(bytes)
	d.occupy(TX, airtime, restore, done)
	return airtime
}

// Receive models occupying the radio in RX for the airtime of n bytes.
func (d *Device) Receive(bytes int, restore State, done func()) sim.Time {
	airtime := d.profile.TxTime(bytes)
	d.occupy(RX, airtime, restore, done)
	return airtime
}

// OccupyFor holds the radio in state s for duration dur then returns it to
// restore. It is the low-level primitive behind Transmit/Receive and is also
// used directly by MAC models that compute their own airtimes.
func (d *Device) OccupyFor(s State, dur sim.Time, restore State, done func()) {
	d.occupy(s, dur, restore, done)
}

func (d *Device) occupy(s State, dur sim.Time, restore State, done func()) {
	if d.Transitioning() {
		panic(fmt.Sprintf("radio: %s: occupy(%v) during transition", d.profile.Name, s))
	}
	if d.state == Off || d.state == Sleep {
		panic(fmt.Sprintf("radio: %s: occupy(%v) from %v: radio not awake", d.profile.Name, s, d.state))
	}
	d.state = s
	d.meter.setState(s)
	for _, fn := range d.listeners {
		fn(d.sim.Now(), s)
	}
	d.sim.Schedule(dur, func() {
		d.state = restore
		d.meter.setState(restore)
		for _, fn := range d.listeners {
			fn(d.sim.Now(), restore)
		}
		if done != nil {
			done()
		}
	})
}
