// Package qos models quality-of-service for streaming delivery: stream
// specifications and a continuously draining playout buffer whose underruns
// are precisely what "QoS is maintained" means in the paper's Hotspot
// experiment — the audio never stalls even though the WNIC sleeps between
// bursts.
package qos

import (
	"fmt"

	"repro/internal/sim"
)

// StreamSpec describes a client's streaming requirement.
type StreamSpec struct {
	// RateBps is the playback consumption rate in bits per second.
	RateBps float64
	// PrebufferBytes must accumulate before playback (re)starts.
	PrebufferBytes int
	// CapacityBytes bounds the buffer; overflow is dropped and counted.
	CapacityBytes int
}

// MP3Stream returns the paper's workload: high-quality 128 kb/s MP3 audio
// with a two-second prebuffer and a capacity comfortably above one
// scheduling burst.
func MP3Stream() StreamSpec {
	return StreamSpec{
		RateBps:        128e3,
		PrebufferBytes: 32 * 1024,  // 2 s at 16 KB/s
		CapacityBytes:  512 * 1024, // several bursts
	}
}

// Validate checks the specification.
func (s StreamSpec) Validate() error {
	if s.RateBps <= 0 {
		return fmt.Errorf("qos: rate must be positive")
	}
	if s.PrebufferBytes < 0 || s.CapacityBytes <= s.PrebufferBytes {
		return fmt.Errorf("qos: capacity must exceed prebuffer")
	}
	return nil
}

// BytesPerSecond returns the drain rate in bytes/second.
func (s StreamSpec) BytesPerSecond() float64 { return s.RateBps / 8 }

// PlayoutBuffer is a continuously draining media buffer. Between events the
// level is computed analytically; an "empty" event is kept scheduled for the
// moment the buffer would run dry, so underruns are detected exactly.
type PlayoutBuffer struct {
	sim  *sim.Simulator
	spec StreamSpec

	level      float64 // bytes, settled at lastAt
	lastAt     sim.Time
	playing    bool
	started    bool // playback has begun at least once
	emptyEvent sim.Handle

	underruns  int
	stallStart sim.Time
	stallTotal sim.Time
	overflow   int
	received   int
	consumed   float64

	// OnUnderrun is invoked when the buffer runs dry during playback.
	OnUnderrun func(at sim.Time)
	// OnStart is invoked each time playback (re)starts.
	OnStart func(at sim.Time)
}

// NewPlayoutBuffer creates an empty, stalled buffer (waiting for prebuffer).
func NewPlayoutBuffer(s *sim.Simulator, spec StreamSpec) *PlayoutBuffer {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &PlayoutBuffer{sim: s, spec: spec, lastAt: s.Now(), stallStart: s.Now()}
}

// Spec returns the stream specification.
func (b *PlayoutBuffer) Spec() StreamSpec { return b.spec }

// settle advances the analytic drain to the current instant.
func (b *PlayoutBuffer) settle() {
	now := b.sim.Now()
	dt := (now - b.lastAt).Seconds()
	if dt > 0 && b.playing {
		drained := b.spec.BytesPerSecond() * dt
		if drained >= b.level {
			drained = b.level
		}
		b.level -= drained
		b.consumed += drained
	}
	b.lastAt = now
}

// Level returns the current buffer level in bytes.
func (b *PlayoutBuffer) Level() float64 {
	b.settle()
	return b.level
}

// Playing reports whether playback is currently running.
func (b *PlayoutBuffer) Playing() bool { return b.playing }

// Underruns returns the number of mid-playback stalls.
func (b *PlayoutBuffer) Underruns() int { return b.underruns }

// OverflowBytes returns bytes dropped to the capacity bound.
func (b *PlayoutBuffer) OverflowBytes() int { return b.overflow }

// ReceivedBytes returns total bytes accepted into the buffer.
func (b *PlayoutBuffer) ReceivedBytes() int { return b.received }

// ConsumedBytes returns total bytes played out.
func (b *PlayoutBuffer) ConsumedBytes() float64 {
	b.settle()
	return b.consumed
}

// StallTime returns cumulative time spent stalled after first start.
func (b *PlayoutBuffer) StallTime() sim.Time {
	if !b.playing && b.started {
		return b.stallTotal + (b.sim.Now() - b.stallStart)
	}
	return b.stallTotal
}

// Fill adds delivered bytes, possibly starting playback, and reschedules the
// dry-out watchdog.
func (b *PlayoutBuffer) Fill(bytes int) {
	if bytes < 0 {
		panic("qos: negative fill")
	}
	b.settle()
	space := float64(b.spec.CapacityBytes) - b.level
	add := float64(bytes)
	if add > space {
		b.overflow += int(add - space)
		add = space
	}
	b.level += add
	b.received += bytes
	if !b.playing && b.level >= float64(b.spec.PrebufferBytes) {
		b.playing = true
		if b.started {
			b.stallTotal += b.sim.Now() - b.stallStart
		}
		b.started = true
		if b.OnStart != nil {
			b.OnStart(b.sim.Now())
		}
	}
	b.rearmEmptyWatchdog()
}

// rearmEmptyWatchdog schedules detection of the exact dry-out instant.
func (b *PlayoutBuffer) rearmEmptyWatchdog() {
	b.sim.Cancel(b.emptyEvent)
	b.emptyEvent = sim.Handle{}
	if !b.playing {
		return
	}
	dry := sim.FromSeconds(b.level / b.spec.BytesPerSecond())
	b.emptyEvent = b.sim.Schedule(dry, func() {
		b.emptyEvent = sim.Handle{}
		b.settle()
		if b.playing && b.level <= 1e-9 {
			b.playing = false
			b.level = 0
			b.underruns++
			b.stallStart = b.sim.Now()
			if b.OnUnderrun != nil {
				b.OnUnderrun(b.sim.Now())
			}
		}
	})
}

// TimeToEmpty returns how long playback can continue without another fill
// (MaxTime when not playing).
func (b *PlayoutBuffer) TimeToEmpty() sim.Time {
	b.settle()
	if !b.playing {
		return sim.MaxTime
	}
	return sim.FromSeconds(b.level / b.spec.BytesPerSecond())
}
