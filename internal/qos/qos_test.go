package qos

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func spec() StreamSpec {
	return StreamSpec{RateBps: 80e3, PrebufferBytes: 10000, CapacityBytes: 100000}
	// 10 KB/s drain
}

func TestSpecValidate(t *testing.T) {
	if err := MP3Stream().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := StreamSpec{RateBps: 0, PrebufferBytes: 0, CapacityBytes: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	bad2 := StreamSpec{RateBps: 1, PrebufferBytes: 10, CapacityBytes: 10}
	if err := bad2.Validate(); err == nil {
		t.Error("capacity == prebuffer accepted")
	}
}

func TestMP3StreamRate(t *testing.T) {
	s := MP3Stream()
	if s.BytesPerSecond() != 16000 {
		t.Errorf("MP3 drain = %v B/s, want 16000", s.BytesPerSecond())
	}
}

func TestPlaybackStartsAtPrebuffer(t *testing.T) {
	s := sim.New(1)
	b := NewPlayoutBuffer(s, spec())
	var startedAt sim.Time = -1
	b.OnStart = func(at sim.Time) { startedAt = at }
	b.Fill(5000)
	if b.Playing() {
		t.Error("started below prebuffer")
	}
	s.RunUntil(sim.Second)
	b.Fill(5000)
	if !b.Playing() {
		t.Error("did not start at prebuffer")
	}
	if startedAt != sim.Second {
		t.Errorf("started at %v, want 1s", startedAt)
	}
}

func TestDrainRate(t *testing.T) {
	s := sim.New(2)
	b := NewPlayoutBuffer(s, spec())
	b.Fill(50000)
	s.RunUntil(2 * sim.Second) // drains 20000
	if got := b.Level(); math.Abs(got-30000) > 1 {
		t.Errorf("level = %v, want 30000", got)
	}
	if got := b.ConsumedBytes(); math.Abs(got-20000) > 1 {
		t.Errorf("consumed = %v, want 20000", got)
	}
}

func TestUnderrunDetectedExactly(t *testing.T) {
	s := sim.New(3)
	b := NewPlayoutBuffer(s, spec())
	var dryAt sim.Time = -1
	b.OnUnderrun = func(at sim.Time) { dryAt = at }
	b.Fill(20000) // plays for exactly 2 s
	s.RunUntil(10 * sim.Second)
	if b.Underruns() != 1 {
		t.Fatalf("underruns = %d, want 1", b.Underruns())
	}
	if dryAt != 2*sim.Second {
		t.Errorf("dry at %v, want exactly 2s", dryAt)
	}
	if b.Playing() {
		t.Error("still playing after underrun")
	}
}

func TestRebufferAfterUnderrun(t *testing.T) {
	s := sim.New(4)
	b := NewPlayoutBuffer(s, spec())
	b.Fill(20000)
	s.RunUntil(5 * sim.Second) // dry at 2s, stalled 3s
	b.Fill(4000)               // below prebuffer: stays stalled
	if b.Playing() {
		t.Error("restarted below prebuffer")
	}
	b.Fill(6000) // reaches prebuffer: restart
	if !b.Playing() {
		t.Error("did not restart at prebuffer")
	}
	if got := b.StallTime(); got != 3*sim.Second {
		t.Errorf("stall time = %v, want 3s", got)
	}
}

func TestStallTimeWhileStillStalled(t *testing.T) {
	s := sim.New(5)
	b := NewPlayoutBuffer(s, spec())
	b.Fill(20000)
	s.RunUntil(4 * sim.Second) // dry at 2s
	if got := b.StallTime(); got != 2*sim.Second {
		t.Errorf("ongoing stall = %v, want 2s", got)
	}
}

func TestInitialWaitIsNotAStall(t *testing.T) {
	s := sim.New(6)
	b := NewPlayoutBuffer(s, spec())
	s.RunUntil(30 * sim.Second)
	if b.StallTime() != 0 {
		t.Error("pre-start waiting counted as stall")
	}
	if b.Underruns() != 0 {
		t.Error("pre-start waiting counted as underrun")
	}
}

func TestOverflowDropsExcess(t *testing.T) {
	s := sim.New(7)
	b := NewPlayoutBuffer(s, spec())
	b.Fill(150000) // capacity 100000
	if b.OverflowBytes() != 50000 {
		t.Errorf("overflow = %d, want 50000", b.OverflowBytes())
	}
	if got := b.Level(); math.Abs(got-100000) > 1e-9 {
		t.Errorf("level = %v, want capacity", got)
	}
}

func TestSteadyRefillsNeverUnderrun(t *testing.T) {
	s := sim.New(8)
	b := NewPlayoutBuffer(s, spec())
	b.Fill(20000)
	// Refill 10 KB every second — exactly the drain rate.
	sim.NewTicker(s, sim.Second, func() { b.Fill(10000) })
	s.RunUntil(60 * sim.Second)
	if b.Underruns() != 0 {
		t.Errorf("underruns = %d on a balanced refill", b.Underruns())
	}
	if !b.Playing() {
		t.Error("stopped playing")
	}
}

func TestTimeToEmpty(t *testing.T) {
	s := sim.New(9)
	b := NewPlayoutBuffer(s, spec())
	if b.TimeToEmpty() != sim.MaxTime {
		t.Error("stalled buffer should report MaxTime")
	}
	b.Fill(20000)
	if got := b.TimeToEmpty(); got != 2*sim.Second {
		t.Errorf("TimeToEmpty = %v, want 2s", got)
	}
}

func TestNegativeFillPanics(t *testing.T) {
	s := sim.New(10)
	b := NewPlayoutBuffer(s, spec())
	defer func() {
		if recover() == nil {
			t.Error("negative fill accepted")
		}
	}()
	b.Fill(-1)
}

func TestByteConservation(t *testing.T) {
	s := sim.New(11)
	b := NewPlayoutBuffer(s, spec())
	total := 0
	sim.NewTicker(s, 700*sim.Millisecond, func() {
		b.Fill(8000)
		total += 8000
	})
	s.RunUntil(30 * sim.Second)
	// received = consumed + level + overflow
	got := b.ConsumedBytes() + b.Level() + float64(b.OverflowBytes())
	if math.Abs(got-float64(b.ReceivedBytes())) > 1 {
		t.Errorf("conservation violated: consumed+level+overflow=%v received=%d",
			got, b.ReceivedBytes())
	}
}
