package energy

import (
	"fmt"

	"repro/internal/sim"
)

// Bank is a struct-of-arrays battery population: one drained column and one
// death-time column indexed by station id, replacing a *Battery (struct,
// callback, two bools) per station. Network-lifetime questions at metro
// scale — how many stations died, when did the first die — become dense
// scans instead of pointer chases, and recycling a churned-out id is a
// constant-time row reset.
//
// Unlike Battery there is no per-cell OnDeath callback: a callback field
// per station is exactly the pointer-heavy layout the bank exists to avoid.
// Callers that need death notifications check Drain's return value at the
// charge site, where the station id is already in hand.
type Bank struct {
	capacity float64
	drained  []float64
	deadAt   []sim.Time // sim.MaxTime while alive
	deaths   int
}

// NewBank creates a bank of n full batteries, each of the given capacity in
// joules. The bank grows on Ensure, so n is just the initial guess.
func NewBank(capacityJ float64, n int) *Bank {
	if capacityJ <= 0 {
		panic(fmt.Sprintf("energy: capacity %g must be positive", capacityJ))
	}
	b := &Bank{capacity: capacityJ}
	b.Ensure(n)
	return b
}

// Len returns the number of battery rows currently allocated.
func (b *Bank) Len() int { return len(b.drained) }

// Capacity returns the per-battery capacity in joules.
func (b *Bank) Capacity() float64 { return b.capacity }

// Ensure grows the bank to cover station ids [0, n), new cells full.
func (b *Bank) Ensure(n int) {
	for len(b.drained) < n {
		b.drained = append(b.drained, 0)
		b.deadAt = append(b.deadAt, sim.MaxTime)
	}
}

// Reset refills station id's battery (a churn-recycled id gets a fresh
// cell). Resetting a dead cell decrements the death count: the id's new
// occupant is alive.
func (b *Bank) Reset(id int32) {
	if b.deadAt[id] != sim.MaxTime {
		b.deaths--
	}
	b.drained[id] = 0
	b.deadAt[id] = sim.MaxTime
}

// Drain removes j joules from station id's battery at time at, reporting
// whether the cell could supply the full amount. Draining a dead cell is a
// no-op returning false, mirroring Battery.Drain.
func (b *Bank) Drain(id int32, j float64, at sim.Time) bool {
	if j < 0 {
		panic("energy: negative drain")
	}
	if b.deadAt[id] != sim.MaxTime {
		return false
	}
	b.drained[id] += j
	if b.drained[id] >= b.capacity {
		b.drained[id] = b.capacity
		b.deadAt[id] = at
		b.deaths++
		return false
	}
	return true
}

// Remaining returns station id's remaining energy in joules.
func (b *Bank) Remaining(id int32) float64 {
	r := b.capacity - b.drained[id]
	if r < 0 {
		return 0
	}
	return r
}

// Level returns station id's remaining fraction in [0, 1].
func (b *Bank) Level(id int32) float64 { return b.Remaining(id) / b.capacity }

// Dead reports whether station id's battery has emptied.
func (b *Bank) Dead(id int32) bool { return b.deadAt[id] != sim.MaxTime }

// DeadAt returns when station id's battery emptied (sim.MaxTime if alive).
func (b *Bank) DeadAt(id int32) sim.Time { return b.deadAt[id] }

// Deaths returns how many cells are currently dead.
func (b *Bank) Deaths() int { return b.deaths }

// FirstDeath returns the earliest death time across the population, or
// sim.MaxTime if every cell is alive — the network-lifetime metric.
func (b *Bank) FirstDeath() sim.Time {
	first := sim.MaxTime
	for _, t := range b.deadAt {
		if t < first {
			first = t
		}
	}
	return first
}
