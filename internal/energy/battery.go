// Package energy provides battery modelling and device-to-battery drain
// tracking. PAMAS-style protocols make sleep decisions from battery levels,
// and network-lifetime experiments need to know when the first node dies.
package energy

import (
	"fmt"

	"repro/internal/sim"
)

// Battery is a finite energy reservoir measured in joules.
type Battery struct {
	capacity float64
	drained  float64
	dead     bool
	deadAt   sim.Time

	// OnDeath is invoked exactly once when the battery empties.
	OnDeath func(at sim.Time)
}

// NewBattery creates a full battery of the given capacity in joules.
func NewBattery(capacityJ float64) *Battery {
	if capacityJ <= 0 {
		panic(fmt.Sprintf("energy: capacity %g must be positive", capacityJ))
	}
	return &Battery{capacity: capacityJ}
}

// Capacity returns the battery's full capacity in joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Remaining returns the remaining energy in joules.
func (b *Battery) Remaining() float64 {
	r := b.capacity - b.drained
	if r < 0 {
		return 0
	}
	return r
}

// Level returns the remaining fraction in [0, 1].
func (b *Battery) Level() float64 { return b.Remaining() / b.capacity }

// Dead reports whether the battery has emptied.
func (b *Battery) Dead() bool { return b.dead }

// DeadAt returns when the battery emptied (sim.MaxTime if alive).
func (b *Battery) DeadAt() sim.Time {
	if !b.dead {
		return sim.MaxTime
	}
	return b.deadAt
}

// Drain removes j joules at time at. It reports whether the battery could
// supply the full amount; draining a dead battery is a no-op returning false.
func (b *Battery) Drain(j float64, at sim.Time) bool {
	if j < 0 {
		panic("energy: negative drain")
	}
	if b.dead {
		return false
	}
	b.drained += j
	if b.drained >= b.capacity {
		b.drained = b.capacity
		b.dead = true
		b.deadAt = at
		if b.OnDeath != nil {
			b.OnDeath(at)
		}
		return false
	}
	return true
}

// EnergySource is anything whose cumulative energy consumption can be read,
// e.g. a radio meter.
type EnergySource interface {
	TotalEnergy() float64
}

// Tracker periodically transfers a source's consumption into a battery.
// It decouples devices (which meter freely) from batteries (which enforce
// a finite budget) at a configurable sampling period.
type Tracker struct {
	battery *Battery
	source  EnergySource
	last    float64
	ticker  *sim.Ticker
}

// NewTracker starts draining battery by the source's consumption, sampled
// every period.
func NewTracker(s *sim.Simulator, src EnergySource, b *Battery, period sim.Time) *Tracker {
	t := &Tracker{battery: b, source: src, last: src.TotalEnergy()}
	t.ticker = sim.NewTicker(s, period, func() {
		cur := src.TotalEnergy()
		delta := cur - t.last
		t.last = cur
		if delta > 0 {
			b.Drain(delta, s.Now())
		}
		if b.Dead() {
			t.ticker.Stop()
		}
	})
	return t
}

// Stop halts tracking.
func (t *Tracker) Stop() { t.ticker.Stop() }
