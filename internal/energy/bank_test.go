package energy

import (
	"testing"

	"repro/internal/sim"
)

func TestBankDrainAndDeath(t *testing.T) {
	b := NewBank(10, 3)
	if b.Len() != 3 || b.Capacity() != 10 {
		t.Fatalf("bank shape: Len=%d Cap=%g", b.Len(), b.Capacity())
	}
	if !b.Drain(1, 4, sim.Second) {
		t.Fatal("partial drain reported failure")
	}
	if got := b.Remaining(1); got != 6 {
		t.Fatalf("Remaining(1) = %g, want 6", got)
	}
	if got := b.Level(1); got != 0.6 {
		t.Fatalf("Level(1) = %g, want 0.6", got)
	}
	if b.Drain(1, 7, 2*sim.Second) {
		t.Fatal("over-drain reported success")
	}
	if !b.Dead(1) || b.DeadAt(1) != 2*sim.Second || b.Deaths() != 1 {
		t.Fatalf("death bookkeeping: dead=%v at=%v deaths=%d", b.Dead(1), b.DeadAt(1), b.Deaths())
	}
	if b.Drain(1, 1, 3*sim.Second) {
		t.Fatal("draining a dead cell reported success")
	}
	if b.Remaining(1) != 0 {
		t.Fatalf("dead cell Remaining = %g", b.Remaining(1))
	}

	// Untouched neighbours are unaffected.
	if b.Dead(0) || b.Dead(2) || b.Remaining(0) != 10 {
		t.Fatal("drain leaked into neighbouring cells")
	}
	if got := b.FirstDeath(); got != 2*sim.Second {
		t.Fatalf("FirstDeath = %v, want 2s", got)
	}
}

func TestBankEnsureAndReset(t *testing.T) {
	b := NewBank(5, 1)
	b.Ensure(8)
	if b.Len() != 8 {
		t.Fatalf("after Ensure(8) Len = %d", b.Len())
	}
	if b.Dead(7) || b.Remaining(7) != 5 {
		t.Fatal("grown cells not full")
	}

	// A recycled dead id comes back alive and full, and the death count
	// follows the living population.
	b.Drain(7, 5, sim.Second)
	if b.Deaths() != 1 {
		t.Fatalf("Deaths = %d, want 1", b.Deaths())
	}
	b.Reset(7)
	if b.Dead(7) || b.Remaining(7) != 5 || b.Deaths() != 0 {
		t.Fatalf("reset cell: dead=%v rem=%g deaths=%d", b.Dead(7), b.Remaining(7), b.Deaths())
	}
	if b.FirstDeath() != sim.MaxTime {
		t.Fatalf("FirstDeath after reset = %v, want MaxTime", b.FirstDeath())
	}
}

// TestBankDrainZeroAlloc pins the hot path: draining ensured cells must not
// allocate.
func TestBankDrainZeroAlloc(t *testing.T) {
	b := NewBank(1e9, 64)
	if a := testing.AllocsPerRun(100, func() {
		for id := int32(0); id < 64; id++ {
			b.Drain(id, 0.001, sim.Second)
		}
	}); a != 0 {
		t.Errorf("bank drain path allocates %v per op, want 0", a)
	}
}
