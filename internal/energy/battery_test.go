package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/radio"
	"repro/internal/sim"
)

func TestBatteryBasics(t *testing.T) {
	b := NewBattery(100)
	if b.Capacity() != 100 || b.Remaining() != 100 || b.Level() != 1 {
		t.Error("fresh battery wrong")
	}
	if !b.Drain(30, sim.Second) {
		t.Error("drain within capacity reported failure")
	}
	if b.Remaining() != 70 || math.Abs(b.Level()-0.7) > 1e-12 {
		t.Errorf("remaining = %v", b.Remaining())
	}
	if b.Dead() {
		t.Error("battery dead too early")
	}
}

func TestBatteryDeath(t *testing.T) {
	b := NewBattery(10)
	var diedAt sim.Time = -1
	b.OnDeath = func(at sim.Time) { diedAt = at }
	if b.Drain(15, 3*sim.Second) {
		t.Error("over-drain reported success")
	}
	if !b.Dead() || b.Remaining() != 0 {
		t.Error("battery should be dead and empty")
	}
	if diedAt != 3*sim.Second || b.DeadAt() != 3*sim.Second {
		t.Errorf("death time = %v/%v, want 3s", diedAt, b.DeadAt())
	}
	// Further drains are no-ops.
	if b.Drain(1, 4*sim.Second) {
		t.Error("drain on dead battery succeeded")
	}
}

func TestBatteryAliveDeadAt(t *testing.T) {
	b := NewBattery(5)
	if b.DeadAt() != sim.MaxTime {
		t.Error("alive battery DeadAt should be MaxTime")
	}
}

func TestNegativeDrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative drain accepted")
		}
	}()
	NewBattery(1).Drain(-1, 0)
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewBattery(0)
}

// Property: monotone non-increasing remaining energy under arbitrary drains.
func TestBatteryMonotoneProperty(t *testing.T) {
	prop := func(drains []uint16) bool {
		b := NewBattery(1000)
		prev := b.Remaining()
		for i, d := range drains {
			b.Drain(float64(d)/100, sim.Time(i))
			cur := b.Remaining()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return b.Remaining() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrackerDrainsFromDevice(t *testing.T) {
	s := sim.New(1)
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	b := NewBattery(1000)
	NewTracker(s, dev.Meter(), b, 100*sim.Millisecond)
	s.RunUntil(10 * sim.Second)
	// 10 s idle at 1.35 W = 13.5 J
	want := 1000 - 13.5
	if math.Abs(b.Remaining()-want) > 0.2 {
		t.Errorf("remaining = %.2f, want ≈ %.2f", b.Remaining(), want)
	}
}

func TestTrackerStopsAtDeath(t *testing.T) {
	s := sim.New(2)
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	b := NewBattery(1.35) // exactly 1 second of idle
	died := false
	b.OnDeath = func(sim.Time) { died = true }
	NewTracker(s, dev.Meter(), b, 100*sim.Millisecond)
	s.RunUntil(5 * sim.Second)
	if !died {
		t.Error("battery did not die")
	}
	at := b.DeadAt()
	if at < 900*sim.Millisecond || at > 1200*sim.Millisecond {
		t.Errorf("died at %v, want ≈ 1s", at)
	}
}
