package stats

import "math"

// tCrit95 holds two-sided 95% critical values of Student's t distribution
// for 1..30 degrees of freedom; beyond the table the normal quantile is an
// adequate approximation.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student's t critical value for the
// given degrees of freedom (≤ 0 returns 0).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.960
	}
}

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean, t·s/√n. With fewer than two samples the interval is undefined
// and the half-width is 0.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(int(s.n-1)) * s.StdDev() / math.Sqrt(float64(s.n))
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval: the slice-shaped companion of Summary.CI95 (which
// the scenario Runner uses for its streaming multi-seed aggregation).
func MeanCI95(xs []float64) (mean, half float64) {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.Mean(), s.CI95()
}
