package stats

import (
	"math"
	"testing"
)

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 12.706}, {4, 2.776}, {10, 2.228}, {30, 2.042},
		{31, 1.960}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5) // t(4)·s/√n
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("half-width = %v, want %v", half, want)
	}
}

func TestMeanCI95Degenerate(t *testing.T) {
	if mean, half := MeanCI95(nil); mean != 0 || half != 0 {
		t.Errorf("empty input: mean %v half %v, want 0, 0", mean, half)
	}
	if mean, half := MeanCI95([]float64{7}); mean != 7 || half != 0 {
		t.Errorf("single sample: mean %v half %v, want 7, 0", mean, half)
	}
	// Identical samples: zero variance, zero interval.
	if mean, half := MeanCI95([]float64{2, 2, 2, 2}); mean != 2 || half != 0 {
		t.Errorf("constant samples: mean %v half %v, want 2, 0", mean, half)
	}
}

func TestSummaryCI95MatchesMeanCI95(t *testing.T) {
	xs := []float64{0.3, 1.7, 2.9, 0.4, 5.5, 3.1, 2.2}
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	_, half := MeanCI95(xs)
	if math.Abs(s.CI95()-half) > 1e-12 {
		t.Errorf("Summary.CI95 %v != MeanCI95 %v", s.CI95(), half)
	}
	// The interval should cover the true mean for a well-behaved sample:
	// sanity-check width is positive and below the full range.
	if !(half > 0 && half < s.Max()-s.Min()) {
		t.Errorf("implausible half-width %v for range [%v, %v]", half, s.Min(), s.Max())
	}
}
