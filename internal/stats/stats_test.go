package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// population variance is 4; sample variance = 32/7
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if !almostEq(s.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Error("AddN disagrees with repeated Add")
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestSummaryProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow artifacts.
			if math.Abs(x) > 1e12 {
				x = math.Mod(x, 1e12)
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = ok && s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6
			ok = ok && s.Variance() >= -1e-9
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10)  // 10 for 2s
	w.Set(2, 0)   // 0 for 3s
	w.Set(5, 100) // 100 for 5s
	mean := w.Finish(10)
	// (10*2 + 0*3 + 100*5) / 10 = 52
	if !almostEq(mean, 52, 1e-12) {
		t.Errorf("mean = %v, want 52", mean)
	}
	if !almostEq(w.Integral(), 520, 1e-12) {
		t.Errorf("Integral = %v, want 520", w.Integral())
	}
	if w.Min() != 0 || w.Max() != 100 {
		t.Errorf("Min/Max = %v/%v, want 0/100", w.Min(), w.Max())
	}
	if !almostEq(w.Elapsed(), 10, 1e-12) {
		t.Errorf("Elapsed = %v, want 10", w.Elapsed())
	}
}

func TestTimeWeightedEmptyAndSingle(t *testing.T) {
	var w TimeWeighted
	if w.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	w.Set(3, 7)
	if got := w.Finish(5); !almostEq(got, 7, 1e-12) {
		t.Errorf("single-level mean = %v, want 7", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Set(5, 1)
	w.Set(4, 1)
}

func TestHistogramBinsAndQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d, want 100", h.N())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 10 {
			t.Errorf("bin %d = %d, want 10", i, h.Bin(i))
		}
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median = %v, want ~50", med)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %v, want 0", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v, want 100", q)
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-5)
	h.Add(15)
	h.Add(10) // boundary: hi is exclusive
	h.Add(5)
	if h.N() != 4 {
		t.Errorf("N = %d, want 4", h.N())
	}
	total := h.under + h.over
	if total != 3 {
		t.Errorf("under+over = %d, want 3", total)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(2)
	h.Add(4)
	if !almostEq(h.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 1); p != 9 {
		t.Errorf("p100 = %v, want 9", p)
	}
	if p := Percentile(xs, 0.5); !almostEq(p, 5, 1e-12) {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{1, 1, 1, 1}); !almostEq(f, 1, 1e-12) {
		t.Errorf("equal allocations fairness = %v, want 1", f)
	}
	if f := JainFairness([]float64{1, 0, 0, 0}); !almostEq(f, 0.25, 1e-12) {
		t.Errorf("maximally unfair = %v, want 0.25", f)
	}
	if f := JainFairness(nil); f != 0 {
		t.Errorf("empty fairness = %v, want 0", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Errorf("all-zero fairness = %v, want 1", f)
	}
}

// Property: Jain's index always lies in [1/n, 1] for non-negative inputs.
func TestJainFairnessBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		f := JainFairness(xs)
		n := float64(len(xs))
		return f >= 1/n-1e-9 && f <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 2", "strategy", "power (W)")
	tb.AddRow("WLAN", "1.40")
	tb.AddRow("Bluetooth", "0.45")
	tb.AddRowf("Hotspot", "%.2f", 0.04)
	tb.AddNote("saving %.0f%%", 97.0)
	out := tb.String()
	for _, want := range []string{"Figure 2", "strategy", "WLAN", "Bluetooth", "0.04", "note: saving 97%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 3 rows + note
	if len(lines) != 7 {
		t.Errorf("table has %d lines, want 7:\n%s", len(lines), out)
	}
}

func TestTableExtraCells(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "z") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}
