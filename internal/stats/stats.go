// Package stats provides the small statistics toolkit used by every
// experiment in this repository: streaming summaries, histograms,
// time-weighted averages (the right mean for power traces) and plain-text
// table rendering for reproducing the paper's figures as terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a streaming mean/variance/min/max using Welford's
// algorithm, so experiments can record millions of samples without storing
// them.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records the same sample value n times.
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// N returns the number of samples recorded.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sum returns mean*n, the total of all samples.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// TimeWeighted integrates a piecewise-constant signal over time. It is the
// correct way to average a power trace: each level contributes in proportion
// to how long it was held, not how often it changed.
type TimeWeighted struct {
	started   bool
	lastT     float64
	lastV     float64
	integral  float64
	elapsed   float64
	min, max  float64
	haveLevel bool
}

// Set records that the signal changed to value v at time t (seconds).
// The previous value is integrated over [lastT, t].
func (w *TimeWeighted) Set(t, v float64) {
	if w.started {
		if t < w.lastT {
			panic("stats: TimeWeighted time went backwards")
		}
		w.integral += w.lastV * (t - w.lastT)
		w.elapsed += t - w.lastT
	}
	if !w.haveLevel {
		w.min, w.max = v, v
		w.haveLevel = true
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	w.started = true
	w.lastT = t
	w.lastV = v
}

// Finish integrates the current value up to time t and returns the
// time-weighted mean over the whole observation window.
func (w *TimeWeighted) Finish(t float64) float64 {
	if w.started && t > w.lastT {
		w.integral += w.lastV * (t - w.lastT)
		w.elapsed += t - w.lastT
		w.lastT = t
	}
	return w.Mean()
}

// Mean returns the time-weighted mean observed so far.
func (w *TimeWeighted) Mean() float64 {
	if w.elapsed == 0 {
		return 0
	}
	return w.integral / w.elapsed
}

// Integral returns the accumulated value·time product (e.g. joules for a
// power trace measured in watts and seconds).
func (w *TimeWeighted) Integral() float64 { return w.integral }

// Elapsed returns the observed duration in seconds.
func (w *TimeWeighted) Elapsed() float64 { return w.elapsed }

// Min returns the smallest level observed.
func (w *TimeWeighted) Min() float64 { return w.min }

// Max returns the largest level observed.
func (w *TimeWeighted) Max() float64 { return w.max }

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// outside the range land in saturating under/overflow bins so no data is
// silently dropped.
type Histogram struct {
	lo, hi float64
	bins   []int64
	under  int64
	over   int64
	n      int64
	sum    float64
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i == len(h.bins) { // guard float rounding at the upper edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the number of samples recorded.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of interior bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Quantile returns an approximate q-quantile (0 ≤ q ≤ 1) assuming samples are
// uniform within each bin. Under/overflow samples clamp to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if cum >= target {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		if cum+float64(c) >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.lo + (float64(i)+frac)*width
		}
		cum += float64(c)
	}
	return h.hi
}

// Percentile computes an exact percentile of a sample slice (q in [0,1]),
// using linear interpolation between closest ranks. The input is not
// modified.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// JainFairness computes Jain's fairness index over per-entity allocations:
// (Σx)² / (n·Σx²). It is 1.0 for perfectly equal allocations and approaches
// 1/n under maximal unfairness.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
