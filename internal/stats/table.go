package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables. Every figure and experiment in
// this reproduction reports its results through a Table so terminal output
// lines up with the rows the paper prints.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept and widen the
// table; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is built with fmt.Sprintf over one
// value, using a shared verb such as "%.3f" for numeric columns.
func (t *Table) AddRowf(label string, verb string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.rows = append(t.rows, cells)
}

// AddNote attaches a footnote line rendered after the table body.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of body rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.headers) > 0 {
		line(t.headers)
		seps := make([]string, ncols)
		for i := range seps {
			seps[i] = strings.Repeat("-", widths[i])
		}
		line(seps)
	}
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
