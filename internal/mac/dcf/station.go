package dcf

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/radio"
	"repro/internal/sim"
)

// StationStats aggregates per-station MAC counters.
type StationStats struct {
	Sent      int // frames successfully acknowledged (or fire-and-forget done)
	Dropped   int // frames dropped after retry limit
	Retries   int
	Received  int // data frames received (excludes ACKs)
	BytesSent int
	BytesRecv int
}

// Station is one 802.11 DCF node (an access point is simply the station with
// id frame.AP). It owns a radio device for energy accounting and implements
// CSMA/CA: DIFS sensing, slotted binary-exponential backoff with freezing,
// ACK-based retransmission, and doze control for power saving.
type Station struct {
	id  int
	med *Medium
	sim *sim.Simulator
	dev *radio.Device
	cfg Config

	queue     []*frame.Frame
	awake     bool
	inTx      bool
	trackedTx bool // in-flight frame is head-of-queue data awaiting ACK handling
	waitAck   bool
	attempts  int
	cw        int
	slots     int // remaining backoff slots
	haveBO    bool

	// contention is a two-slot batch grouping the DIFS and slot-countdown
	// events, so leaving the listening state (doze, our own transmission)
	// is one group cancel. The individual handles stay alongside for the
	// selective freeze path, which must leave same-instant events alive
	// to model DCF collisions.
	contention *sim.Batch
	difsEvent  sim.Handle
	slotEvent  sim.Handle
	ackTimer   *sim.Timer

	lastSeq      map[int]int // per-sender dedup of MAC retransmissions
	pendingSends int         // SendAfter responses not yet on the air

	stats StationStats

	// OnReceive is invoked for every successfully received data/beacon/poll
	// frame (not ACKs, which the MAC consumes internally).
	OnReceive func(f *frame.Frame)
	// OnSent is invoked when a frame leaves the queue: ok=true after a
	// successful (acknowledged or broadcast) transmission, false on drop.
	OnSent func(f *frame.Frame, ok bool)
	// NoAck disables the ACK/retry machinery for this station's frames
	// (used for broadcast-like flows and by EC-MAC-style experiments).
	NoAck bool
}

// NewStation attaches a new station to the medium. The radio must already be
// awake in the Idle state (use radio.NewDeviceInState): stations model
// already-associated devices, not ones paying a power-up cost mid-protocol.
func NewStation(id int, m *Medium, dev *radio.Device) *Station {
	if dev.State() != radio.Idle {
		panic(fmt.Sprintf("dcf: station %d radio must start in Idle, got %v", id, dev.State()))
	}
	st := &Station{id: id, med: m, sim: m.sim, dev: dev, cfg: m.cfg, awake: true,
		cw: m.cfg.CWMin, lastSeq: make(map[int]int)}
	st.contention = m.sim.NewSlotBatch(2) // slot 0: DIFS, slot 1: backoff countdown
	st.ackTimer = sim.NewTimer(m.sim, st.onAckTimeout)
	m.attach(st)
	return st
}

// ID returns the station identifier.
func (st *Station) ID() int { return st.id }

// Device returns the station's radio.
func (st *Station) Device() *radio.Device { return st.dev }

// Stats returns a copy of the station counters.
func (st *Station) Stats() StationStats { return st.stats }

// QueueLen returns the number of frames waiting (including one in flight).
func (st *Station) QueueLen() int { return len(st.queue) }

// Awake reports whether the station is listening to the medium.
func (st *Station) Awake() bool { return st.awake }

// Enqueue appends a frame to the transmit queue and starts contention if the
// station is awake and idle.
func (st *Station) Enqueue(f *frame.Frame) {
	st.queue = append(st.queue, f)
	if st.awake && !st.inTx && !st.waitAck && len(st.queue) == 1 {
		st.startContention()
	}
}

// Doze puts the station to sleep: the radio enters Sleep, pending contention
// is cancelled, queued frames stay queued. A dozing station hears nothing.
func (st *Station) Doze() {
	if !st.awake {
		return
	}
	if st.inTx || st.waitAck {
		panic(fmt.Sprintf("dcf: station %d dozing mid-exchange", st.id))
	}
	st.awake = false
	st.cancelContention()
	st.dev.SetState(radio.Sleep, nil)
}

// WakeUp transitions the radio out of Sleep; done runs when the radio is
// usable again, after which contention resumes for any queued frames.
func (st *Station) WakeUp(done func()) {
	if st.awake {
		if done != nil {
			done()
		}
		return
	}
	st.dev.SetState(radio.Idle, func() {
		st.awake = true
		if st.med.Busy() {
			st.dev.SetState(radio.RX, nil)
		}
		if len(st.queue) > 0 {
			st.startContention()
		}
		if done != nil {
			done()
		}
	})
}

// SendAfter transmits a frame after a fixed gap without contention. It is
// used for SIFS-separated responses (ACKs, poll responses) and beacons: they
// bypass backoff because the standard grants them priority access.
func (st *Station) SendAfter(gap sim.Time, f *frame.Frame) {
	st.pendingSends++
	st.sim.Schedule(gap, func() {
		st.pendingSends--
		if !st.awake {
			return
		}
		st.transmit(f, false)
	})
}

// CanDoze reports whether the station is quiescent: awake with nothing on
// the air, nothing awaiting an ACK, an empty queue and no pending
// SIFS-responses. Power-save logic must only doze a quiescent station —
// dozing with an ACK still owed would break the peer's retry machinery.
func (st *Station) CanDoze() bool {
	return st.awake && !st.inTx && !st.waitAck && len(st.queue) == 0 && st.pendingSends == 0
}

// --- CSMA/CA engine ---

func (st *Station) startContention() {
	if st.difsEvent.Pending() || st.slotEvent.Pending() || st.inTx {
		return
	}
	if !st.haveBO {
		st.slots = st.sim.Rand().Intn(st.cw + 1)
		st.haveBO = true
	}
	if st.med.Busy() {
		return // mediumIdle() will restart us
	}
	st.difsEvent = st.contention.ScheduleSlot(0, st.cfg.DIFS, func() {
		st.difsEvent = sim.Handle{}
		st.countDown()
	})
}

func (st *Station) countDown() {
	if st.slots == 0 {
		st.beginDataTx()
		return
	}
	st.slotEvent = st.contention.ScheduleSlot(1, st.cfg.SlotTime, func() {
		st.slotEvent = sim.Handle{}
		st.slots--
		if st.slots == 0 {
			// Reached zero in this slot: transmit even if another station
			// started at the same instant — that is exactly how same-slot
			// DCF collisions happen (CCA cannot sense a same-slot start).
			st.beginDataTx()
			return
		}
		if st.med.Busy() {
			return // freeze; mediumIdle will resume the countdown
		}
		st.countDown()
	})
}

// cancelContention hard-cancels all pending contention events as a group
// (used when the station leaves the listening state entirely, e.g. dozing
// or transmitting).
func (st *Station) cancelContention() {
	st.contention.CancelAll()
	st.difsEvent = sim.Handle{}
	st.slotEvent = sim.Handle{}
}

// freezeContention cancels only strictly-future contention events. Events
// scheduled for the current instant are left to fire so that two stations
// whose backoff expires in the same slot collide, as in real DCF.
func (st *Station) freezeContention() {
	now := st.sim.Now()
	if st.difsEvent.Pending() && st.difsEvent.At() > now {
		st.sim.Cancel(st.difsEvent)
		st.difsEvent = sim.Handle{}
	}
	if st.slotEvent.Pending() && st.slotEvent.At() > now {
		st.sim.Cancel(st.slotEvent)
		st.slotEvent = sim.Handle{}
	}
}

// mediumBusy freezes backoff and moves the radio to RX while others talk.
func (st *Station) mediumBusy() {
	if !st.awake {
		return
	}
	st.freezeContention()
	if !st.inTx && st.dev.State() == radio.Idle {
		st.dev.SetState(radio.RX, nil)
	}
}

// mediumIdle resumes contention after the channel frees up.
func (st *Station) mediumIdle() {
	if !st.awake {
		return
	}
	if !st.inTx && st.dev.State() == radio.RX {
		st.dev.SetState(radio.Idle, nil)
	}
	if len(st.queue) > 0 && !st.inTx && !st.waitAck {
		st.startContention()
	}
}

func (st *Station) beginDataTx() {
	if len(st.queue) == 0 {
		return
	}
	st.transmit(st.queue[0], true)
}

// transmit puts f on the air. tracked indicates head-of-queue data subject
// to the ACK/retry machinery; untracked frames (ACKs, beacons) are
// fire-and-forget.
func (st *Station) transmit(f *frame.Frame, tracked bool) {
	st.cancelContention() // our own transmission must not race our countdown
	st.inTx = true
	st.trackedTx = tracked
	dur := st.cfg.AirTime(f.Size())
	st.dev.SetState(radio.TX, nil)
	st.sim.Schedule(dur, func() {
		st.inTx = false
		if st.awake {
			if st.med.Busy() {
				st.dev.SetState(radio.RX, nil)
			} else {
				st.dev.SetState(radio.Idle, nil)
			}
		}
		// Untracked sends (ACKs, beacons) do not go through txDone's
		// continuation, so restart contention for queued data here.
		if !tracked && len(st.queue) > 0 && st.awake && !st.waitAck && !st.inTx {
			st.startContention()
		}
	})
	st.med.begin(st, f)
}

// txDone is called by the medium when our transmission left the air.
// delivered reports whether the frame arrived uncorrupted and uncollided.
func (st *Station) txDone(f *frame.Frame, delivered bool) {
	if !st.trackedTx {
		return
	}
	if f.To == frame.Broadcast || st.NoAck {
		// No ACK expected: treat air-done as sent.
		st.completeHead(f, true)
		return
	}
	if delivered {
		// Expect an ACK after SIFS; allow for its airtime.
		st.waitAck = true
		st.ackTimer.Reset(st.cfg.SIFS + st.cfg.AirTime(frame.AckSize) + st.cfg.AckTimeout)
	} else {
		// Collision or corruption: the receiver never saw it; schedule retry.
		st.retry(f)
	}
}

func (st *Station) onAckTimeout() {
	if !st.waitAck {
		return
	}
	st.waitAck = false
	st.retry(st.queue[0])
}

func (st *Station) retry(f *frame.Frame) {
	st.attempts++
	st.stats.Retries++
	if st.attempts > st.cfg.RetryLimit {
		st.completeHead(f, false)
		return
	}
	if st.cw < st.cfg.CWMax {
		st.cw = st.cw*2 + 1
		if st.cw > st.cfg.CWMax {
			st.cw = st.cfg.CWMax
		}
	}
	st.haveBO = false
	st.startContention()
}

// completeHead finishes the head-of-queue frame (success or drop) and starts
// contention for the next.
func (st *Station) completeHead(f *frame.Frame, ok bool) {
	if len(st.queue) > 0 && st.queue[0] == f {
		st.queue = st.queue[1:]
	}
	st.attempts = 0
	st.cw = st.cfg.CWMin
	st.haveBO = false
	if ok {
		st.stats.Sent++
		st.stats.BytesSent += f.Payload
	} else {
		st.stats.Dropped++
	}
	if st.OnSent != nil {
		st.OnSent(f, ok)
	}
	if len(st.queue) > 0 && st.awake {
		st.startContention()
	}
}

// receive handles a frame addressed to (or broadcast at) this station.
func (st *Station) receive(f *frame.Frame) {
	if f.Kind == frame.Ack && f.To == st.id {
		if st.waitAck {
			st.waitAck = false
			st.ackTimer.Stop()
			st.completeHead(st.queue[0], true)
		}
		return
	}
	// Unicast data and PS-Polls get a SIFS-separated ACK — including
	// MAC-level retransmissions, whose original ACK may have been lost.
	if (f.Kind == frame.Data || f.Kind == frame.PSPoll) && f.To == st.id {
		st.SendAfter(st.cfg.SIFS, frame.NewAck(st.id, f.From))
		if last, seen := st.lastSeq[f.From]; seen && last == f.Seq {
			return // duplicate retransmission: ACKed but not re-delivered
		}
		st.lastSeq[f.From] = f.Seq
	}
	st.stats.Received++
	st.stats.BytesRecv += f.Payload
	if st.OnReceive != nil {
		st.OnReceive(f)
	}
}
