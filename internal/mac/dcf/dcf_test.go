package dcf

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/radio"
	"repro/internal/sim"
)

func newTestMedium(s *sim.Simulator, ch *channel.GilbertElliott) *Medium {
	return NewMedium(s, Default80211b(), ch)
}

func addStation(s *sim.Simulator, m *Medium, id int) *Station {
	return NewStation(id, m, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
}

func TestConfigValidate(t *testing.T) {
	if err := Default80211b().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default80211b()
	bad.DIFS = bad.SIFS // DIFS must exceed SIFS
	if err := bad.Validate(); err == nil {
		t.Error("invalid IFS accepted")
	}
	bad2 := Default80211b()
	bad2.CWMax = 1
	if err := bad2.Validate(); err == nil {
		t.Error("invalid CW accepted")
	}
}

func TestAirTime(t *testing.T) {
	cfg := Default80211b()
	// 1375 bytes at 11 Mb/s = 1 ms + 192 us preamble
	want := sim.Millisecond + 192*sim.Microsecond
	if got := cfg.AirTime(1375); got != want {
		t.Errorf("AirTime = %v, want %v", got, want)
	}
}

func TestSingleFrameDelivery(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)

	var got []*frame.Frame
	ap.OnReceive = func(f *frame.Frame) { got = append(got, f) }
	sentOK := false
	sta.OnSent = func(_ *frame.Frame, ok bool) { sentOK = ok }

	sta.Enqueue(frame.NewData(0, frame.AP, 1, 1000))
	s.Run()

	if len(got) != 1 || got[0].Payload != 1000 {
		t.Fatalf("AP received %d frames, want 1", len(got))
	}
	if !sentOK {
		t.Error("sender did not observe success")
	}
	st := sta.Stats()
	if st.Sent != 1 || st.Dropped != 0 || st.Retries != 0 {
		t.Errorf("station stats = %+v", st)
	}
	ms := m.Stats()
	if ms.Collisions != 0 {
		t.Errorf("collisions = %d on a single-station medium", ms.Collisions)
	}
	// data + ack
	if ms.Transmissions != 2 {
		t.Errorf("transmissions = %d, want 2", ms.Transmissions)
	}
}

func TestMultipleFramesInOrder(t *testing.T) {
	s := sim.New(2)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	var seqs []int
	ap.OnReceive = func(f *frame.Frame) { seqs = append(seqs, f.Seq) }
	for i := 0; i < 20; i++ {
		sta.Enqueue(frame.NewData(0, frame.AP, i, 500))
	}
	s.Run()
	if len(seqs) != 20 {
		t.Fatalf("received %d, want 20", len(seqs))
	}
	for i, q := range seqs {
		if q != i {
			t.Fatalf("out of order: %v", seqs)
		}
	}
}

func TestContentionBetweenStations(t *testing.T) {
	s := sim.New(3)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	recv := 0
	ap.OnReceive = func(*frame.Frame) { recv++ }
	const n = 5
	const per = 40
	for id := 0; id < n; id++ {
		sta := addStation(s, m, id)
		for k := 0; k < per; k++ {
			sta.Enqueue(frame.NewData(id, frame.AP, k, 700))
		}
	}
	s.Run()
	if recv != n*per {
		t.Errorf("delivered %d, want %d (retries should recover all collisions)", recv, n*per)
	}
	if m.Stats().Collisions == 0 {
		t.Error("expected some collisions among 5 saturated stations")
	}
}

func TestRetryOnChannelErrors(t *testing.T) {
	s := sim.New(4)
	// Moderately lossy channel: every frame has a visible chance of
	// corruption, retries must recover.
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: 2e-5, BERBad: 1e-3})
	ch.Freeze()
	m := newTestMedium(s, ch)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	recv := 0
	ap.OnReceive = func(*frame.Frame) { recv++ }
	const n = 200
	for i := 0; i < n; i++ {
		sta.Enqueue(frame.NewData(0, frame.AP, i, 1400))
	}
	s.Run()
	st := sta.Stats()
	if st.Retries == 0 {
		t.Error("expected retries on a lossy channel")
	}
	if recv != n {
		t.Errorf("delivered %d, want %d", recv, n)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d frames at PER≈20%%; retry limit 7 should recover all", st.Dropped)
	}
}

func TestDropAfterRetryLimit(t *testing.T) {
	s := sim.New(5)
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Second, MeanBad: sim.Hour, BERGood: 1e-6, BERBad: 0.5})
	ch.Freeze()
	ch.ForceState(channel.Bad) // every frame corrupted
	m := newTestMedium(s, ch)
	addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	dropped := false
	sta.OnSent = func(_ *frame.Frame, ok bool) { dropped = !ok }
	sta.Enqueue(frame.NewData(0, frame.AP, 1, 1000))
	s.Run()
	if !dropped {
		t.Error("frame not dropped on a dead channel")
	}
	st := sta.Stats()
	if st.Dropped != 1 || st.Sent != 0 {
		t.Errorf("stats = %+v, want 1 drop", st)
	}
	if st.Retries != m.Config().RetryLimit+1 {
		t.Errorf("retries = %d, want %d", st.Retries, m.Config().RetryLimit+1)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	s := sim.New(6)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	recv := 0
	ap.OnReceive = func(*frame.Frame) { recv++ }
	// Same sequence number twice models a MAC retransmission whose ACK was
	// lost: the receiver must ACK both but deliver once.
	sta.Enqueue(frame.NewData(0, frame.AP, 7, 100))
	sta.Enqueue(frame.NewData(0, frame.AP, 7, 100))
	s.Run()
	if recv != 1 {
		t.Errorf("delivered %d, want 1 (duplicate suppressed)", recv)
	}
	if got := sta.Stats().Sent; got != 2 {
		t.Errorf("sender Sent = %d, want 2 (both ACKed)", got)
	}
}

func TestDozeMissesTraffic(t *testing.T) {
	s := sim.New(7)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	recv := 0
	sta.OnReceive = func(*frame.Frame) { recv++ }
	sta.Doze()
	if sta.Awake() {
		t.Fatal("station still awake after Doze")
	}
	ap.NoAck = true // nobody will ACK a sleeping station
	ap.Enqueue(frame.NewData(frame.AP, 0, 1, 500))
	s.Run()
	if recv != 0 {
		t.Error("dozing station received a frame")
	}
	if sta.Device().State() != radio.Sleep {
		t.Errorf("radio state = %v, want sleep", sta.Device().State())
	}
}

func TestWakeResumesQueuedTraffic(t *testing.T) {
	s := sim.New(8)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	recv := 0
	ap.OnReceive = func(*frame.Frame) { recv++ }
	sta.Doze()
	sta.Enqueue(frame.NewData(0, frame.AP, 1, 100)) // queued while asleep
	s.RunUntil(50 * sim.Millisecond)
	if recv != 0 {
		t.Fatal("frame sent while asleep")
	}
	woke := false
	sta.WakeUp(func() { woke = true })
	s.Run()
	if !woke {
		t.Error("wake callback missing")
	}
	if recv != 1 {
		t.Errorf("delivered %d after wake, want 1", recv)
	}
}

func TestDozeDuringExchangePanics(t *testing.T) {
	s := sim.New(9)
	m := newTestMedium(s, nil)
	addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	_ = sta
	panicked := false
	ap := m.Station(frame.AP)
	ap.OnReceive = func(*frame.Frame) {
		// The sender is now waiting for our ACK; dozing must be rejected.
		s.Schedule(sim.Microsecond, func() {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			sta.Doze()
		})
	}
	sta.Enqueue(frame.NewData(0, frame.AP, 1, 1000))
	s.Run()
	if !panicked {
		t.Error("doze while awaiting ACK did not panic")
	}
}

func TestIdleListeningDominatesLightTraffic(t *testing.T) {
	// The paper's phy-layer observation: with light traffic an unmanaged
	// WLAN station spends ~90% of its time (and energy) listening.
	s := sim.New(10)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	sta := addStation(s, m, 0)
	_ = ap
	// One 1000-byte frame every 100 ms for 10 s — a light interactive load.
	var send func(i int)
	send = func(i int) {
		if i >= 100 {
			return
		}
		sta.Enqueue(frame.NewData(0, frame.AP, i, 1000))
		s.Schedule(100*sim.Millisecond, func() { send(i + 1) })
	}
	send(0)
	s.RunUntil(10 * sim.Second)
	meter := sta.Device().Meter()
	idleFrac := meter.StateFraction(radio.Idle)
	if idleFrac < 0.9 {
		t.Errorf("idle fraction = %.3f, want ≥ 0.9 under light traffic", idleFrac)
	}
	if meter.AveragePower() < 1.0 {
		t.Errorf("avg power = %.2f W; CAM listening should cost >1 W", meter.AveragePower())
	}
}

func TestBroadcastReachesAllAwake(t *testing.T) {
	s := sim.New(11)
	m := newTestMedium(s, nil)
	ap := addStation(s, m, frame.AP)
	var got [3]int
	for id := 0; id < 3; id++ {
		id := id
		sta := addStation(s, m, id)
		sta.OnReceive = func(*frame.Frame) { got[id]++ }
		if id == 2 {
			sta.Doze()
		}
	}
	ap.Enqueue(&frame.Frame{Kind: frame.Data, From: frame.AP, To: frame.Broadcast, Payload: 200})
	s.Run()
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("awake stations got %v, want 1 each", got)
	}
	if got[2] != 0 {
		t.Error("dozing station heard a broadcast")
	}
}

func TestDuplicateStationIDPanics(t *testing.T) {
	s := sim.New(12)
	m := newTestMedium(s, nil)
	addStation(s, m, 3)
	defer func() {
		if recover() == nil {
			t.Error("duplicate id accepted")
		}
	}()
	addStation(s, m, 3)
}

func TestMediumStationLookup(t *testing.T) {
	s := sim.New(13)
	m := newTestMedium(s, nil)
	sta := addStation(s, m, 4)
	if m.Station(4) != sta {
		t.Error("Station lookup failed")
	}
	if m.Station(99) != nil {
		t.Error("missing station should be nil")
	}
}

func TestSendAfterSkippedWhenAsleep(t *testing.T) {
	s := sim.New(14)
	m := newTestMedium(s, nil)
	sta := addStation(s, m, 0)
	sta.SendAfter(sim.Millisecond, frame.NewAck(0, 1))
	s.Schedule(500*sim.Microsecond, func() { sta.Doze() })
	s.Run()
	if m.Stats().Transmissions != 0 {
		t.Error("sleeping station transmitted")
	}
}
