// Package dcf implements the 802.11 distributed coordination function:
// CSMA/CA with binary-exponential backoff over a shared broadcast medium,
// SIFS-separated acknowledgements, retries and collision accounting.
//
// It is the substrate beneath the 802.11 power-save model (package psm) and
// the baseline "continuously active mode" (CAM) measurements that motivate
// the paper: an unmanaged WLAN station spends nearly all of its time — and
// therefore nearly all of its energy — listening to an idle medium.
package dcf

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Config holds 802.11b DCF timing parameters.
type Config struct {
	SlotTime     sim.Time
	SIFS         sim.Time
	DIFS         sim.Time
	CWMin        int // initial contention window (slots - 1), e.g. 31
	CWMax        int
	RetryLimit   int
	AckTimeout   sim.Time
	PLCPOverhead sim.Time // preamble + PLCP header airtime per frame
	BitRate      float64  // MAC payload rate, bits/second
}

// Default80211b returns standard 802.11b long-preamble timings.
func Default80211b() Config {
	return Config{
		SlotTime:     20 * sim.Microsecond,
		SIFS:         10 * sim.Microsecond,
		DIFS:         50 * sim.Microsecond,
		CWMin:        31,
		CWMax:        1023,
		RetryLimit:   7,
		AckTimeout:   300 * sim.Microsecond,
		PLCPOverhead: 192 * sim.Microsecond,
		BitRate:      11e6,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SlotTime <= 0 || c.SIFS <= 0 || c.DIFS <= c.SIFS {
		return fmt.Errorf("dcf: invalid IFS timing")
	}
	if c.CWMin <= 0 || c.CWMax < c.CWMin {
		return fmt.Errorf("dcf: invalid contention window")
	}
	if c.BitRate <= 0 {
		return fmt.Errorf("dcf: invalid bit rate")
	}
	return nil
}

// AirTime returns the on-air duration of a frame of n bytes.
func (c Config) AirTime(bytes int) sim.Time {
	return c.PLCPOverhead + sim.FromSeconds(float64(bytes*8)/c.BitRate)
}

// transmission is one in-flight frame on the medium.
type transmission struct {
	f        *frame.Frame
	from     *Station
	end      sim.Time
	collided bool
}

// Stats aggregates medium-level counters.
type Stats struct {
	Transmissions int
	Collisions    int
	Corrupted     int
	Delivered     int
	AcksSent      int
}

// Medium is the shared broadcast channel all stations attach to. It detects
// collisions (any temporal overlap destroys all frames involved, no capture)
// and applies channel bit errors to otherwise-successful receptions.
type Medium struct {
	sim    *sim.Simulator
	cfg    Config
	ch     *channel.GilbertElliott // may be nil for an error-free medium
	nodes  map[int]*Station
	order  []*Station // attach order: deterministic notification sequence
	active []*transmission
	stats  Stats

	idleSince sim.Time
}

// NewMedium creates an empty medium. ch may be nil for a perfect channel.
func NewMedium(s *sim.Simulator, cfg Config, ch *channel.GilbertElliott) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Medium{sim: s, cfg: cfg, ch: ch, nodes: make(map[int]*Station)}
}

// Config returns the medium's timing configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// Busy reports whether any transmission is in flight.
func (m *Medium) Busy() bool { return len(m.active) > 0 }

// IdleSince returns when the medium last became idle (valid only when idle).
func (m *Medium) IdleSince() sim.Time { return m.idleSince }

func (m *Medium) attach(st *Station) {
	if _, dup := m.nodes[st.id]; dup {
		panic(fmt.Sprintf("dcf: duplicate station id %d", st.id))
	}
	m.nodes[st.id] = st
	m.order = append(m.order, st)
}

// Station returns the attached station with the given id, or nil.
func (m *Medium) Station(id int) *Station { return m.nodes[id] }

// begin puts a frame on the air. Any overlap collides every frame involved.
func (m *Medium) begin(st *Station, f *frame.Frame) {
	dur := m.cfg.AirTime(f.Size())
	tx := &transmission{f: f, from: st, end: m.sim.Now() + dur}
	if len(m.active) > 0 {
		tx.collided = true
		for _, other := range m.active {
			if !other.collided {
				other.collided = true
				m.stats.Collisions++
			}
		}
		m.stats.Collisions++
	}
	wasIdle := len(m.active) == 0
	m.active = append(m.active, tx)
	m.stats.Transmissions++
	if wasIdle {
		// Attach order, not map order: busy/idle notifications reach
		// stations in a fixed sequence, so shared-RNG draws (e.g. backoff
		// sampling in startContention) consume the stream deterministically.
		for _, n := range m.order {
			if n != st {
				n.mediumBusy()
			}
		}
	}
	m.sim.Schedule(dur, func() { m.finish(tx) })
}

func (m *Medium) finish(tx *transmission) {
	// Remove from active set.
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	nowIdle := len(m.active) == 0
	if nowIdle {
		m.idleSince = m.sim.Now()
	}

	delivered := false
	if !tx.collided {
		corrupted := false
		if m.ch != nil && m.ch.SamplePacketError(tx.f.Size()) {
			corrupted = true
			m.stats.Corrupted++
		}
		if !corrupted {
			m.deliver(tx)
			delivered = true
		}
	}
	if delivered {
		m.stats.Delivered++
	}
	tx.from.txDone(tx.f, delivered)

	if nowIdle {
		for _, n := range m.order {
			n.mediumIdle()
		}
	}
}

func (m *Medium) deliver(tx *transmission) {
	if tx.f.To == frame.Broadcast {
		for _, n := range m.order {
			if n != tx.from && n.Awake() {
				n.receive(tx.f)
			}
		}
		return
	}
	if dst, ok := m.nodes[tx.f.To]; ok && dst.Awake() {
		dst.receive(tx.f)
	}
}
