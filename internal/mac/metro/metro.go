// Package metro simulates metropolitan-scale populations of 802.11
// power-save stations — 10⁵–10⁶ clients across many APs in one process —
// at event and memory costs per station low enough to run on one core.
//
// Two structural decisions buy the scale:
//
//   - Aggregation: instead of per-station timers, the model runs one global
//     beacon event, one aggregated Poisson downlink stream (rate n·λ,
//     thinned uniformly over live stations) and one aggregated death
//     process. The event queue holds a handful of events regardless of
//     population size — exactly the sparse regime the kernel's adaptive
//     WheelMinPending mode keeps off the timing wheel.
//
//   - Struct-of-arrays state: every per-station quantity is a column
//     indexed by station id (pending frames, pending bytes, AP, listen
//     phase, accounting watermark), not a struct per station. Beacon
//     processing walks stations of one listen phase sequentially through
//     dense arrays; churn recycles ids with O(1) row resets.
//
// The PSM semantics follow the paper's legacy-PSM model: a station sleeps
// between beacons, wakes every ListenInterval-th beacon a WakeLead early,
// receives the beacon, and if the TIM announces buffered frames it stays
// awake, waits for the stations polled before it (attach order within its
// AP), then PS-Polls each frame and receives it. Everything is charged to a
// power.Ledger against the radio profile's calibration.
//
// Every aggregate the simulation produces has a closed-form expectation in
// the style of Agrawal et al.'s analytical PSM energy models; see
// analytic.go. Experiments tagged [analytic] assert sim-vs-model agreement.
package metro

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Pareto is a bounded Pareto frame-size distribution in bytes — the
// heavy-tailed mix (many small frames, occasional large ones) of metro
// downlink traffic.
type Pareto struct {
	Alpha    float64 // shape; must be > 0 and ≠ 1
	MinBytes float64
	MaxBytes float64
}

// Mean returns the distribution's expected value in closed form.
func (p Pareto) Mean() float64 {
	a, l, h := p.Alpha, p.MinBytes, p.MaxBytes
	return math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(math.Pow(l, 1-a) - math.Pow(h, 1-a))
}

// Sample inverts the CDF at u ∈ [0, 1).
func (p Pareto) Sample(u float64) float64 {
	a, l, h := p.Alpha, p.MinBytes, p.MaxBytes
	return l * math.Pow(1-u*(1-math.Pow(l/h, a)), -1/a)
}

// Config parameterizes one metro scenario.
type Config struct {
	APs      int // access points; stations associate round-robin
	Stations int // initial population

	// MaxStations caps the id space under churn (0 = Stations). The
	// aggregated arrival/death processes are thinned against this cap, so
	// it also bounds memory: every column is allocated to MaxStations once,
	// up front.
	MaxStations int

	BeaconInterval sim.Time
	ListenInterval int      // station wakes every K-th beacon
	WakeLead       sim.Time // idle time before the beacon (radio settling)
	BeaconAir      sim.Time // beacon reception time (RX)
	PollAir        sim.Time // one PS-Poll transmission (TX)
	OverheadBytes  int      // per-frame MAC/PHY overhead on the data frame

	RatePerStation float64 // downlink frames/s per live station (Poisson)
	Frame          Pareto  // frame payload size distribution

	// Churn: stations join as a Poisson process of ArrivalRate stations/s
	// and stay for an exponential MeanLifetime. Zero ArrivalRate disables
	// churn (the initial population is immortal).
	ArrivalRate  float64
	MeanLifetime sim.Time

	Horizon sim.Time
	Profile *radio.Profile
}

func (c Config) cap() int {
	if c.MaxStations > 0 {
		return c.MaxStations
	}
	return c.Stations
}

// Validate rejects configurations the model (and its closed form) cannot
// represent.
func (c Config) Validate() error {
	switch {
	case c.APs <= 0:
		return fmt.Errorf("metro: APs must be positive")
	case c.Stations < 0 || c.cap() < c.Stations:
		return fmt.Errorf("metro: Stations %d outside [0, MaxStations %d]", c.Stations, c.cap())
	case c.BeaconInterval <= 0 || c.ListenInterval <= 0:
		return fmt.Errorf("metro: beacon/listen intervals must be positive")
	case c.RatePerStation < 0:
		return fmt.Errorf("metro: negative traffic rate")
	case c.Frame.Alpha <= 0 || c.Frame.Alpha == 1 || c.Frame.MinBytes <= 0 || c.Frame.MaxBytes <= c.Frame.MinBytes:
		return fmt.Errorf("metro: bounded Pareto needs 0<alpha≠1 and 0<min<max")
	case c.ArrivalRate > 0 && c.MeanLifetime <= 0:
		return fmt.Errorf("metro: churn needs a positive MeanLifetime")
	case c.Horizon <= 0:
		return fmt.Errorf("metro: Horizon must be positive")
	case c.Profile == nil:
		return fmt.Errorf("metro: missing radio profile")
	}
	return nil
}

// Report carries a run's aggregates.
type Report struct {
	Live       int // stations alive at the horizon
	Arrivals   int // stations that joined (excluding the initial population)
	Departures int // stations that churned out

	EnergyJ             float64
	StationSec          float64 // ∫ live-population dt: per-station-time normalizer
	AvgPowerW           float64 // EnergyJ / StationSec
	DeliveredBytes      float64
	DeliveredGoodputBps float64 // DeliveredBytes·8 / Horizon
	DeliveredFrames     int64
	AttendedBeacons     int64
}

// Model is one metro population wired into a simulator. New builds it,
// Start arms the aggregated processes, and Finish (after running the
// simulator to the horizon) closes the books and returns the Report.
type Model struct {
	cfg Config
	s   *sim.Simulator
	led *power.Ledger

	// Per-station columns, indexed by station id ∈ [0, cap).
	apOf       []int32
	phaseOf    []int32
	pendFrames []int32
	pendBytes  []float64
	accounted  []sim.Time // time up to which the ledger row is charged
	attachedAt []sim.Time
	livePos    []int32 // index into live, -1 when dead

	live    []int32 // live ids; swap-remove order for O(1) uniform picks
	freeIDs []int32 // recycled ids, LIFO

	// groups[ap·K+phase] lists that group's live station ids in attach
	// order — the deterministic service order within an attended beacon.
	// groupPos[id] is the station's index in its group.
	groups   [][]int32
	groupPos []int32

	attachSeq int   // drives the ap/phase assignment lattice
	beaconIdx int64 // beacons fired so far

	rep Report
}

// Run executes the configuration on a fresh default-tuned simulator — the
// one-call form used by tests. Experiments embed the model in their own
// simulator via New for tuning control.
func Run(seed int64, cfg Config) Report {
	s := sim.New(seed)
	m := New(s, cfg)
	m.Start()
	s.RunUntil(cfg.Horizon)
	return m.Finish()
}

// New builds the population and allocates every column up front: after
// Start, the steady state performs no allocations.
func New(s *sim.Simulator, cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.cap()
	m := &Model{
		cfg:        cfg,
		s:          s,
		led:        power.NewLedger(cfg.Profile, n),
		apOf:       make([]int32, n),
		phaseOf:    make([]int32, n),
		pendFrames: make([]int32, n),
		pendBytes:  make([]float64, n),
		accounted:  make([]sim.Time, n),
		attachedAt: make([]sim.Time, n),
		livePos:    make([]int32, n),
		groupPos:   make([]int32, n),
		live:       make([]int32, 0, n),
		freeIDs:    make([]int32, 0, n),
		groups:     make([][]int32, cfg.APs*cfg.ListenInterval),
	}
	// Group capacity covers the whole population landing in one group, so
	// churn-driven appends never allocate. At metro scale groups stay near
	// n/(APs·K); the slack is a few MB of int32s at the 10⁶ cap.
	per := n/(cfg.APs*cfg.ListenInterval) + 1
	if cfg.ArrivalRate > 0 {
		per = n // churn can skew groups; reserve the worst case
	}
	for i := range m.groups {
		m.groups[i] = make([]int32, 0, per)
	}
	for id := n - 1; id >= 0; id-- {
		m.livePos[id] = -1
		m.freeIDs = append(m.freeIDs, int32(id))
	}
	for i := 0; i < cfg.Stations; i++ {
		m.attach()
	}
	return m
}

// attach brings one station online: recycle an id, reset its rows, assign
// it a (ap, phase) cell from the round-robin lattice, and append it to its
// group in attach order.
func (m *Model) attach() {
	id := m.freeIDs[len(m.freeIDs)-1]
	m.freeIDs = m.freeIDs[:len(m.freeIDs)-1]
	k := m.cfg.ListenInterval
	ap := int32(m.attachSeq % m.cfg.APs)
	phase := int32(m.attachSeq / m.cfg.APs % k)
	m.attachSeq++

	m.led.Reset(id)
	m.apOf[id], m.phaseOf[id] = ap, phase
	m.pendFrames[id], m.pendBytes[id] = 0, 0
	now := m.s.Now()
	m.accounted[id], m.attachedAt[id] = now, now
	m.livePos[id] = int32(len(m.live))
	m.live = append(m.live, id)
	g := int(ap)*k + int(phase)
	m.groupPos[id] = int32(len(m.groups[g]))
	m.groups[g] = append(m.groups[g], id)
}

// detach finalizes a station at the current time and recycles its id.
// Pending frames are dropped (buffered at the AP, never retrieved). The
// group removal is order-preserving — attach order of the survivors is the
// service order invariant — so it shifts the tail down one slot.
func (m *Model) detach(id int32) {
	now := m.s.Now()
	if d := now - m.accounted[id]; d > 0 {
		m.led.Dwell(id, radio.Sleep, d)
	}
	m.rep.EnergyJ += m.led.EnergyJ(id)
	m.rep.StationSec += (now - m.attachedAt[id]).Seconds()

	last := int32(len(m.live) - 1)
	if p := m.livePos[id]; p != last {
		moved := m.live[last]
		m.live[p] = moved
		m.livePos[moved] = p
	}
	m.live = m.live[:last]
	m.livePos[id] = -1

	g := int(m.apOf[id])*m.cfg.ListenInterval + int(m.phaseOf[id])
	grp := m.groups[g]
	p := m.groupPos[id]
	copy(grp[p:], grp[p+1:])
	grp = grp[:len(grp)-1]
	for _, other := range grp[p:] {
		m.groupPos[other]--
	}
	m.groups[g] = grp

	m.freeIDs = append(m.freeIDs, id)
}

// frameAir returns the on-air time of frames data frames totalling bytes of
// payload at the profile's PHY rate.
func (m *Model) frameAir(frames int32, bytes float64) sim.Time {
	total := float64(frames)*float64(m.cfg.OverheadBytes) + bytes
	return sim.FromSeconds(total * 8 / m.cfg.Profile.BitRate)
}

// Start arms the aggregated processes: the beacon, the downlink stream and
// (under churn) the station arrival and death streams. The pending-event
// count stays at 3–4 for any population size.
func (m *Model) Start() {
	cfg := m.cfg
	m.s.Reserve(4)

	var onBeacon func()
	onBeacon = func() {
		m.beacon()
		if m.s.Now()+cfg.BeaconInterval <= cfg.Horizon {
			m.s.Schedule(cfg.BeaconInterval, onBeacon)
		}
	}
	m.s.Schedule(cfg.BeaconInterval, onBeacon)

	if cfg.RatePerStation > 0 {
		// The downlink stream runs at the cap's aggregate rate and thins:
		// the drawn slot is accepted only if it indexes a live station, so
		// the accepted process is exactly Poisson(n·λ) with a uniform
		// station mark, at any live count n.
		maxRate := float64(cfg.cap()) * cfg.RatePerStation
		r := m.s.Rand()
		var onFrame func()
		onFrame = func() {
			if j := r.Intn(cfg.cap()); j < len(m.live) {
				id := m.live[j]
				m.pendFrames[id]++
				m.pendBytes[id] += cfg.Frame.Sample(r.Float64())
			}
			m.s.Schedule(expDelay(r.ExpFloat64(), maxRate), onFrame)
		}
		m.s.Schedule(expDelay(r.ExpFloat64(), maxRate), onFrame)
	}

	if cfg.ArrivalRate > 0 {
		r := m.s.Rand()
		var onJoin func()
		onJoin = func() {
			if len(m.live) < cfg.cap() {
				m.attach()
				m.rep.Arrivals++
			}
			m.s.Schedule(expDelay(r.ExpFloat64(), cfg.ArrivalRate), onJoin)
		}
		m.s.Schedule(expDelay(r.ExpFloat64(), cfg.ArrivalRate), onJoin)

		// Deaths: each live station dies at rate 1/τ, so the population's
		// death process runs at n/τ — thinned against cap/τ like the
		// downlink stream.
		maxDeath := float64(cfg.cap()) / cfg.MeanLifetime.Seconds()
		var onDeath func()
		onDeath = func() {
			if j := r.Intn(cfg.cap()); j < len(m.live) {
				m.detach(m.live[j])
				m.rep.Departures++
			}
			m.s.Schedule(expDelay(r.ExpFloat64(), maxDeath), onDeath)
		}
		m.s.Schedule(expDelay(r.ExpFloat64(), maxDeath), onDeath)
	}
}

// expDelay converts a unit-mean exponential draw into a sim.Time gap for a
// process of the given rate, at least 1 time unit so the process always
// advances the clock.
func expDelay(unit, rate float64) sim.Time {
	d := sim.FromSeconds(unit / rate)
	if d < 1 {
		d = 1
	}
	return d
}

// beacon serves one TBTT: stations of the due listen phase, AP by AP in
// attach order. Stations with no buffered frames hear the beacon and sleep
// again; stations with frames wait out the polls ahead of them, then
// PS-Poll each frame. All dwell is charged to the ledger here, including
// the sleep stretch since the station's previous accounting watermark.
func (m *Model) beacon() {
	m.beaconIdx++
	cfg := m.cfg
	k := cfg.ListenInterval
	phase := int(m.beaconIdx % int64(k))
	t := m.s.Now()
	for ap := 0; ap < cfg.APs; ap++ {
		var cum sim.Time // polls served so far in this AP's beacon
		for _, id := range m.groups[ap*k+phase] {
			if d := t - cfg.WakeLead - m.accounted[id]; d > 0 {
				m.led.Dwell(id, radio.Sleep, d)
			}
			m.led.Transition(id, radio.Sleep, radio.Idle)
			m.led.Dwell(id, radio.Idle, cfg.WakeLead)
			m.led.Dwell(id, radio.RX, cfg.BeaconAir)
			end := t + cfg.BeaconAir
			if f := m.pendFrames[id]; f > 0 {
				m.led.Dwell(id, radio.Idle, cum) // wait for earlier polls
				tx := sim.Time(f) * cfg.PollAir
				rx := m.frameAir(f, m.pendBytes[id])
				m.led.Dwell(id, radio.TX, tx)
				m.led.Dwell(id, radio.RX, rx)
				end += cum + tx + rx
				cum += tx + rx
				m.rep.DeliveredBytes += m.pendBytes[id]
				m.rep.DeliveredFrames += int64(f)
				m.pendFrames[id], m.pendBytes[id] = 0, 0
			}
			m.led.Transition(id, radio.Idle, radio.Sleep)
			m.accounted[id] = end
			m.rep.AttendedBeacons++
		}
	}
}

// Finish settles every live station's account at the current time and
// returns the report. The simulator must have been run to the horizon.
func (m *Model) Finish() Report {
	now := m.s.Now()
	for _, id := range m.live {
		if d := now - m.accounted[id]; d > 0 {
			m.led.Dwell(id, radio.Sleep, d)
			m.accounted[id] = now
		}
		m.rep.EnergyJ += m.led.EnergyJ(id)
		m.rep.StationSec += (now - m.attachedAt[id]).Seconds()
	}
	m.rep.Live = len(m.live)
	if m.rep.StationSec > 0 {
		m.rep.AvgPowerW = m.rep.EnergyJ / m.rep.StationSec
	}
	m.rep.DeliveredGoodputBps = m.rep.DeliveredBytes * 8 / m.cfg.Horizon.Seconds()
	return m.rep
}
