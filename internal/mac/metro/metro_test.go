package metro

import (
	"math"
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

// testConfig is a small dense metro cell: 4 APs × 2000 stations, 30 s.
func testConfig() Config {
	return Config{
		APs:            4,
		Stations:       2000,
		BeaconInterval: 100 * sim.Millisecond,
		ListenInterval: 8,
		WakeLead:       2 * sim.Millisecond,
		BeaconAir:      1 * sim.Millisecond,
		PollAir:        200 * sim.Microsecond,
		OverheadBytes:  28,
		RatePerStation: 0.2,
		Frame:          Pareto{Alpha: 1.5, MinBytes: 200, MaxBytes: 15000},
		Horizon:        30 * sim.Second,
		Profile:        radio.WLAN80211b(),
	}
}

func churnConfig() Config {
	c := testConfig()
	c.Stations = 1000
	c.MaxStations = 4096
	c.ArrivalRate = 40 // n̄ = 40 × 25 s = 1000: stationary from t=0
	c.MeanLifetime = 25 * sim.Second
	return c
}

func relErr(sim, model float64) float64 {
	return math.Abs(sim-model) / model * 100
}

// TestDenseMatchesClosedForm pins the simulation to the analytic oracle:
// with 2000 stations over 30 s, the law of large numbers puts every
// aggregate within the advertised tolerance of its exact expectation.
func TestDenseMatchesClosedForm(t *testing.T) {
	cfg := testConfig()
	rep := Run(1, cfg)
	pred := Predict(cfg)

	if rep.Live != cfg.Stations || rep.Arrivals != 0 || rep.Departures != 0 {
		t.Fatalf("population drifted without churn: %+v", rep)
	}
	if got := rep.StationSec; got != pred.StationSec {
		t.Fatalf("StationSec = %g, want %g", got, pred.StationSec)
	}
	checks := []struct {
		name       string
		sim, model float64
	}{
		{"EnergyJ", rep.EnergyJ, pred.EnergyJ},
		{"AvgPowerW", rep.AvgPowerW, pred.AvgPowerW},
		{"ThroughputBps", rep.DeliveredGoodputBps, pred.ThroughputBps},
	}
	for _, c := range checks {
		if e := relErr(c.sim, c.model); e > pred.TolerancePct {
			t.Errorf("%s: sim %g vs model %g (%.2f%% > %.1f%%)",
				c.name, c.sim, c.model, e, pred.TolerancePct)
		} else {
			t.Logf("%s: sim %g vs model %g (%.2f%%)", c.name, c.sim, c.model, e)
		}
	}
}

// TestChurnMatchesClosedForm does the same for the churning population
// against the M/M/∞ steady-state form, at its looser tolerance.
func TestChurnMatchesClosedForm(t *testing.T) {
	cfg := churnConfig()
	rep := Run(1, cfg)
	pred := Predict(cfg)

	if rep.Arrivals == 0 || rep.Departures == 0 {
		t.Fatalf("churn processes did not run: %+v", rep)
	}
	checks := []struct {
		name       string
		sim, model float64
	}{
		{"StationSec", rep.StationSec, pred.StationSec},
		{"AvgPowerW", rep.AvgPowerW, pred.AvgPowerW},
		{"ThroughputBps", rep.DeliveredGoodputBps, pred.ThroughputBps},
	}
	for _, c := range checks {
		if e := relErr(c.sim, c.model); e > pred.TolerancePct {
			t.Errorf("%s: sim %g vs model %g (%.2f%% > %.1f%%)",
				c.name, c.sim, c.model, e, pred.TolerancePct)
		} else {
			t.Logf("%s: sim %g vs model %g (%.2f%%)", c.name, c.sim, c.model, e)
		}
	}
}

// TestDeterministic pins bit-identical reruns: same seed → identical
// report, different seed → different (the model actually uses the RNG).
func TestDeterministic(t *testing.T) {
	for _, cfg := range []Config{testConfig(), churnConfig()} {
		a, b := Run(7, cfg), Run(7, cfg)
		if a != b {
			t.Fatalf("same-seed reruns diverged:\n%+v\n%+v", a, b)
		}
		c := Run(8, cfg)
		if a.EnergyJ == c.EnergyJ && a.DeliveredBytes == c.DeliveredBytes {
			t.Fatalf("different seeds produced identical aggregates")
		}
	}
}

// TestTuningInvariant checks that kernel tuning — including the adaptive
// wheel mode the metro event mix is designed for — is invisible to the
// model's results.
func TestTuningInvariant(t *testing.T) {
	cfg := churnConfig()
	cfg.Horizon = 10 * sim.Second
	run := func(tun sim.Tuning) Report {
		s := sim.NewTuned(3, tun)
		m := New(s, cfg)
		m.Start()
		s.RunUntil(cfg.Horizon)
		return m.Finish()
	}
	base := run(sim.DefaultTuning())
	adaptive := sim.DefaultTuning()
	adaptive.WheelMinPending = sim.WheelAdaptive
	heap := sim.DefaultTuning()
	heap.WheelMinPending = 1 << 20
	if got := run(adaptive); got != base {
		t.Fatalf("adaptive tuning changed results:\n%+v\n%+v", got, base)
	}
	if got := run(heap); got != base {
		t.Fatalf("pure-heap tuning changed results:\n%+v\n%+v", got, base)
	}
}

// TestSteadyStateZeroAlloc pins the tentpole's memory claim: once built and
// warmed, advancing the metro population — beacons, downlink stream, churn,
// TIM service — performs zero allocations per simulated second.
func TestSteadyStateZeroAlloc(t *testing.T) {
	cfg := churnConfig()
	cfg.Horizon = sim.Hour // never reached; the test advances manually
	tun := sim.DefaultTuning()
	tun.WheelMinPending = sim.WheelAdaptive
	s := sim.NewTuned(1, tun)
	m := New(s, cfg)
	m.Start()
	s.RunUntil(2 * sim.Second) // warm: slab, groups, thinning all exercised
	next := s.Now()
	if a := testing.AllocsPerRun(5, func() {
		next += sim.Second
		s.RunUntil(next)
	}); a != 0 {
		t.Errorf("metro steady state allocates %v per simulated second, want 0", a)
	}
}

// TestParetoMoments sanity-checks the bounded Pareto helpers: samples stay
// in range and their mean converges to the closed form.
func TestParetoMoments(t *testing.T) {
	p := Pareto{Alpha: 1.5, MinBytes: 200, MaxBytes: 15000}
	s := sim.New(1)
	r := s.Rand()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := p.Sample(r.Float64())
		if x < p.MinBytes || x > p.MaxBytes {
			t.Fatalf("sample %g outside [%g, %g]", x, p.MinBytes, p.MaxBytes)
		}
		sum += x
	}
	mean := sum / n
	if e := relErr(mean, p.Mean()); e > 2 {
		t.Errorf("sample mean %g vs closed form %g (%.2f%%)", mean, p.Mean(), e)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.APs = 0 },
		func(c *Config) { c.Stations = -1 },
		func(c *Config) { c.MaxStations = 10 }, // below Stations
		func(c *Config) { c.ListenInterval = 0 },
		func(c *Config) { c.Frame.Alpha = 1 },
		func(c *Config) { c.Frame.MaxBytes = 100 },
		func(c *Config) { c.ArrivalRate = 5; c.MeanLifetime = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Profile = nil },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
