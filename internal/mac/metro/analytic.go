package metro

import (
	"math"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Closed-form expectations for the metro model, in the style of the
// analytical 802.11 PSM energy models of Agrawal et al.: every aggregate
// the simulation measures is the sum of per-attendance expectations that
// have exact closed forms, because the model's randomness is fully
// specified — Poisson(λ) downlink arrivals per station, bounded-Pareto
// frame sizes, deterministic beacon attendance.
//
// Per attended beacon with arrival window w (time since the station's
// previous attended beacon):
//
//	F(w)    = λw                      expected buffered frames
//	q(w)    = 1 − e^(−λw)             P(TIM bit set)
//	E[tx]   = F·PollAir               PS-Poll airtime (TX)
//	E[rx]   = F·(OH+E[L])·8/rate      data airtime (RX), E[L] the Pareto mean
//	t̄       = PollAir + (OH+E[L])·8/rate   expected airtime of one delivery
//	E[wait] = q·pos·F·t̄              wait at attach position pos: the polls
//	                                  of the pos earlier stations, each an
//	                                  unconditional F·t̄, incurred only when
//	                                  the station itself stays awake (q)
//
// and the cycle's remaining time is slept. Summing per-station expectations
// over a 10⁵-station population, the law of large numbers puts the
// simulation within a fraction of a percent of these values; the [analytic]
// experiment tags assert the agreement.
//
// Under churn the population is an M/M/∞ queue (Poisson joins at rate a,
// exponential lifetimes τ): E[n(t)] = n̄ + (n₀−n̄)e^(−t/τ) with n̄ = aτ, and
// the per-station steady-state cycle above prices each station-second.
// Edge effects (partial windows at join, death and horizon) are corrected
// to first order; Predict.TolerancePct reflects the looser agreement.

// Prediction is the closed-form expectation of a Report.
type Prediction struct {
	EnergyJ        float64
	AvgPowerW      float64
	DeliveredBytes float64
	ThroughputBps  float64
	StationSec     float64

	// TolerancePct is the relative sim-vs-model agreement the [analytic]
	// tests assert, in percent: tight for the exact no-churn form, looser
	// for the first-order churn corrections.
	TolerancePct float64
}

// Predict evaluates the closed form for a configuration.
func Predict(cfg Config) Prediction {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ArrivalRate > 0 {
		return predictChurn(cfg)
	}
	return predictDense(cfg)
}

// perAttendance bundles the window-dependent expectations above.
type perAttendance struct {
	f, q, txSec, rxSec, waitUnitSec float64 // waitUnitSec = q·F·t̄: wait per unit position
}

func (cfg Config) attendance(w sim.Time) perAttendance {
	lam := cfg.RatePerStation
	f := lam * w.Seconds()
	q := 1 - math.Exp(-f)
	perFrameRx := (float64(cfg.OverheadBytes) + cfg.Frame.Mean()) * 8 / cfg.Profile.BitRate
	tbar := cfg.PollAir.Seconds() + perFrameRx
	return perAttendance{
		f: f, q: q,
		txSec:       f * cfg.PollAir.Seconds(),
		rxSec:       f * perFrameRx,
		waitUnitSec: q * f * tbar,
	}
}

// predictDense mirrors the simulation's accounting recursion in
// expectation, group by group: for each (AP, phase) cell it walks the
// attended beacons once at the group's mean attach position and multiplies
// by the group size — exact, because every per-station quantity is linear
// in the position.
func predictDense(cfg Config) Prediction {
	p := cfg.Profile
	k := cfg.ListenInterval
	bsec := cfg.BeaconInterval.Seconds()
	hsec := cfg.Horizon.Seconds()
	nb := int64(cfg.Horizon / cfg.BeaconInterval)
	wake := p.TransitionCost(radio.Sleep, radio.Idle).Energy
	doze := p.TransitionCost(radio.Idle, radio.Sleep).Energy

	// Group sizes from the attach lattice.
	sizes := make([]int, cfg.APs*k)
	for i := 0; i < cfg.Stations; i++ {
		sizes[i%cfg.APs*k+i/cfg.APs%k]++
	}

	var pred Prediction
	for g, m := range sizes {
		if m == 0 {
			continue
		}
		phase := g % k
		mean := float64(m-1) / 2 // mean attach position in the group

		// Arrivals accumulate continuously and are flushed at every
		// attended beacon, so window b's length is exactly t_b − t_prev
		// (with t_0 = 0: the first window runs from the start of the run).
		var energy, sleepSec, delivered float64
		accEnd := 0.0 // expected accounting watermark, at the mean position
		prevT := 0.0
		for b := int64(1); b <= nb; b++ {
			if int(b%int64(k)) != phase {
				continue
			}
			t := float64(b) * bsec
			att := cfg.attendance(sim.FromSeconds(t - prevT))
			wait := att.waitUnitSec * mean
			sleepSec += math.Max(0, t-cfg.WakeLead.Seconds()-accEnd)
			energy += wake + doze +
				(cfg.WakeLead.Seconds()+wait)*p.Power[radio.Idle] +
				(cfg.BeaconAir.Seconds()+att.rxSec)*p.Power[radio.RX] +
				att.txSec*p.Power[radio.TX]
			accEnd = t + cfg.BeaconAir.Seconds() + wait + att.txSec + att.rxSec
			delivered += att.f * cfg.Frame.Mean()
			prevT = t
		}
		sleepSec += math.Max(0, hsec-accEnd)
		energy += sleepSec * p.Power[radio.Sleep]

		pred.EnergyJ += float64(m) * energy
		pred.DeliveredBytes += float64(m) * delivered
	}
	pred.StationSec = float64(cfg.Stations) * hsec
	if pred.StationSec > 0 {
		pred.AvgPowerW = pred.EnergyJ / pred.StationSec
	}
	pred.ThroughputBps = pred.DeliveredBytes * 8 / hsec
	pred.TolerancePct = 3
	return pred
}

// predictChurn prices M/M/∞ station-time with the steady-state cycle and
// corrects delivery for the partial windows lost at death and horizon.
func predictChurn(cfg Config) Prediction {
	p := cfg.Profile
	k := cfg.ListenInterval
	cycle := cfg.BeaconInterval.Seconds() * float64(k)
	hsec := cfg.Horizon.Seconds()
	tau := cfg.MeanLifetime.Seconds()
	nbar := cfg.ArrivalRate * tau
	n0 := float64(cfg.Stations)
	wakeE := p.TransitionCost(radio.Sleep, radio.Idle).Energy
	dozeE := p.TransitionCost(radio.Idle, radio.Sleep).Energy

	// ∫₀ᴴ E[n(t)] dt with E[n(t)] = n̄ + (n₀−n̄)e^(−t/τ).
	stationSec := nbar*hsec + (n0-nbar)*tau*(1-math.Exp(-hsec/tau))

	// Steady-state per-station cycle at the mean group occupancy.
	att := cfg.attendance(sim.FromSeconds(cycle))
	meanPos := math.Max(0, nbar/float64(cfg.APs*k)-1) / 2
	wait := att.waitUnitSec * meanPos
	awake := cfg.WakeLead.Seconds() + wait + cfg.BeaconAir.Seconds() + att.txSec + att.rxSec
	cycleJ := wakeE + dozeE +
		(cfg.WakeLead.Seconds()+wait)*p.Power[radio.Idle] +
		(cfg.BeaconAir.Seconds()+att.rxSec)*p.Power[radio.RX] +
		att.txSec*p.Power[radio.TX] +
		math.Max(0, cycle-awake)*p.Power[radio.Sleep]
	avgW := cycleJ / cycle

	// Delivery: arrivals are flushed at attended beacons, so each station's
	// final partial window — at death or at the horizon — goes undelivered.
	// Stations terminating at a phase-uniform instant lose cycle/2 of
	// arrival time on average; every station ever alive terminates once.
	everAlive := n0 + cfg.ArrivalRate*hsec
	covered := math.Max(0, stationSec-everAlive*cycle/2)
	delivered := cfg.RatePerStation * cfg.Frame.Mean() * covered

	return Prediction{
		EnergyJ:        avgW * stationSec,
		AvgPowerW:      avgW,
		DeliveredBytes: delivered,
		ThroughputBps:  delivered * 8 / hsec,
		StationSec:     stationSec,
		TolerancePct:   7,
	}
}
