// Package pamas models a PAMAS-style power-aware MAC for ad-hoc networks:
// RTS/CTS exchanges on a separate signalling channel announce transmission
// durations, letting every node that is neither sender nor receiver power
// its data radio down for exactly that long — eliminating overhearing cost.
// On top of that, nodes "independently enter sleep state based on their
// battery levels" (the paper's characterization): the lower a node's
// battery, the more aggressively it sleeps through idle periods, trading
// latency for lifetime.
package pamas

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Mode selects the node sleeping discipline.
type Mode int

const (
	// AlwaysListen is the baseline: nodes keep their data radio listening
	// during every transmission (classic CSMA overhearing).
	AlwaysListen Mode = iota
	// Pamas powers the data radio down during others' transmissions.
	Pamas
	// PamasBattery adds battery-level-driven idle sleeping to Pamas.
	PamasBattery
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case AlwaysListen:
		return "always-listen"
	case Pamas:
		return "pamas"
	default:
		return "pamas+battery"
	}
}

// Config parameterizes a PAMAS network.
type Config struct {
	// Mode selects the sleeping discipline.
	Mode Mode
	// BitRate is the data-channel rate in bits/second.
	BitRate float64
	// ControlPower is the constant draw of the signalling receiver in
	// watts. It is always on in every mode (PAMAS's control channel is how
	// nodes learn transmission durations).
	ControlPower float64
	// BatteryCapacity is each node's initial energy in joules.
	BatteryCapacity float64
	// LowBattery is the level below which PamasBattery nodes begin idle
	// sleeping.
	LowBattery float64
	// IdleSleepQuantum is how long a low-battery node sleeps per idle
	// sleep episode.
	IdleSleepQuantum sim.Time
	// TrackerPeriod is the battery-drain sampling period.
	TrackerPeriod sim.Time
}

// DefaultConfig returns the E7 experiment parameters.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:             mode,
		BitRate:          2e6, // 2 Mb/s ad-hoc radios
		ControlPower:     0.010,
		BatteryCapacity:  200, // joules: small sensor-class battery
		LowBattery:       0.4,
		IdleSleepQuantum: 500 * sim.Millisecond,
		TrackerPeriod:    250 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BitRate <= 0 || c.BatteryCapacity <= 0 {
		return fmt.Errorf("pamas: rate and capacity must be positive")
	}
	if c.LowBattery < 0 || c.LowBattery > 1 {
		return fmt.Errorf("pamas: low-battery threshold outside [0,1]")
	}
	return nil
}

// Node is one ad-hoc network participant.
type Node struct {
	id      int
	dev     *radio.Device
	battery *energy.Battery
	net     *Network

	sleepUntil sim.Time // data radio forced asleep through here
	idleSleeps int
	sent       int
	recv       int
	alive      bool
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Battery returns the node's battery.
func (n *Node) Battery() *energy.Battery { return n.battery }

// Alive reports whether the node still has energy.
func (n *Node) Alive() bool { return n.alive }

// IdleSleeps counts battery-driven idle sleep episodes.
func (n *Node) IdleSleeps() int { return n.idleSleeps }

// Stats returns packets sent and received.
func (n *Node) Stats() (sent, recv int) { return n.sent, n.recv }

// Network is a single-collision-domain ad-hoc network. The signalling
// channel serializes data transmissions (RTS/CTS wins the channel), so data
// frames never collide; what differs between modes is what *third parties*
// do while a transmission is in the air.
type Network struct {
	sim   *sim.Simulator
	cfg   Config
	nodes []*Node

	busy     bool
	backlog  []func()
	deaths   int
	firstDie sim.Time

	delivered      int
	deliveredBytes int
	controlEnergy  float64
	lastControlAcc sim.Time
}

// NewNetwork creates a PAMAS network with n nodes.
func NewNetwork(s *sim.Simulator, cfg Config, n int) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	net := &Network{sim: s, cfg: cfg, firstDie: sim.MaxTime}
	for i := 0; i < n; i++ {
		dev := radio.NewDeviceInState(s, adHocProfile(cfg.BitRate), radio.Idle)
		b := energy.NewBattery(cfg.BatteryCapacity)
		node := &Node{id: i, dev: dev, battery: b, net: net, alive: true}
		b.OnDeath = func(at sim.Time) {
			node.alive = false
			net.deaths++
			if at < net.firstDie {
				net.firstDie = at
			}
			if dev.State() != radio.Off && !dev.Transitioning() {
				dev.SetState(radio.Off, nil)
			}
		}
		energy.NewTracker(s, &nodeEnergy{node: node, net: net}, b, cfg.TrackerPeriod)
		net.nodes = append(net.nodes, node)
	}
	return net
}

// adHocProfile builds the sensor-class data radio used by E7.
func adHocProfile(bitRate float64) *radio.Profile {
	return &radio.Profile{
		Name: "adhoc-2mbps",
		Power: [5]float64{
			radio.Off:   0,
			radio.Sleep: 0.005,
			radio.Idle:  0.75,
			radio.RX:    0.90,
			radio.TX:    1.20,
		},
		Transitions: radio.MakeTransitions(map[[2]radio.State]radio.Transition{
			{radio.Sleep, radio.Idle}: {Latency: 800 * sim.Microsecond, Energy: 0.0005},
			{radio.Idle, radio.Sleep}: {Latency: 400 * sim.Microsecond, Energy: 0.0002},
		}),
		BitRate:          bitRate,
		Goodput:          bitRate * 0.8,
		PerBurstOverhead: sim.Millisecond,
		DeepState:        radio.Sleep,
	}
}

// nodeEnergy adapts a node's full draw (data radio + control receiver) to
// the battery tracker.
type nodeEnergy struct {
	node *Node
	net  *Network
}

// TotalEnergy implements energy.EnergySource: radio energy plus the constant
// control-channel draw integrated over elapsed time.
func (ne *nodeEnergy) TotalEnergy() float64 {
	ctl := ne.net.cfg.ControlPower * ne.net.sim.Now().Seconds()
	return ne.node.dev.Meter().TotalEnergy() + ctl
}

// Node returns node i.
func (n *Network) Node(i int) *Node { return n.nodes[i] }

// NumAlive counts nodes with remaining energy.
func (n *Network) NumAlive() int {
	alive := 0
	for _, nd := range n.nodes {
		if nd.alive {
			alive++
		}
	}
	return alive
}

// FirstDeath returns when the first node died, or sim.MaxTime.
func (n *Network) FirstDeath() sim.Time { return n.firstDie }

// Delivered returns total delivered packets and bytes.
func (n *Network) Delivered() (packets, bytes int) {
	return n.delivered, n.deliveredBytes
}

// Send queues a data transfer from src to dst. The RTS/CTS handshake on the
// signalling channel wins the data channel; when busy the request backlogs.
func (n *Network) Send(src, dst int, bytes int) {
	if src == dst || src < 0 || dst < 0 || src >= len(n.nodes) || dst >= len(n.nodes) {
		panic(fmt.Sprintf("pamas: bad flow %d->%d", src, dst))
	}
	attempt := func() { n.tryTransmit(src, dst, bytes) }
	if n.busy {
		n.backlog = append(n.backlog, attempt)
		return
	}
	attempt()
}

func (n *Network) tryTransmit(src, dst int, bytes int) {
	s, d := n.nodes[src], n.nodes[dst]
	if !s.alive || !d.alive {
		return
	}
	if n.busy {
		n.backlog = append(n.backlog, func() { n.tryTransmit(src, dst, bytes) })
		return
	}
	now := n.sim.Now()
	// A sleeping party (PAMAS idle-sleep) defers the exchange until it is
	// listening again; the RTS would not be answered.
	wakeAt := sim.Max(s.sleepUntil, d.sleepUntil)
	if wakeAt > now {
		n.sim.At(wakeAt, func() { n.tryTransmit(src, dst, bytes) })
		return
	}
	n.busy = true
	dur := sim.FromSeconds(float64(bytes*8) / n.cfg.BitRate)
	done := 2 // sender + receiver completions
	finish := func() {
		done--
		if done > 0 {
			return
		}
		n.busy = false
		n.delivered++
		n.deliveredBytes += bytes
		s.sent++
		d.recv++
		n.maybeIdleSleep()
		n.drainBacklog()
	}
	n.occupy(s, radio.TX, dur, finish)
	n.occupy(d, radio.RX, dur, finish)

	// Third parties: the defining PAMAS behaviour.
	for _, other := range n.nodes {
		if other == s || other == d || !other.alive {
			continue
		}
		switch n.cfg.Mode {
		case AlwaysListen:
			// Overhearing: radio in RX for the whole transmission.
			n.occupy(other, radio.RX, dur, nil)
		case Pamas, PamasBattery:
			n.sleepFor(other, dur)
		}
	}
}

// occupy wraps Device.OccupyFor with liveness and state guards.
func (n *Network) occupy(node *Node, st radio.State, dur sim.Time, done func()) {
	if !node.alive || node.dev.Transitioning() || node.dev.State() == radio.Off {
		if done != nil {
			done()
		}
		return
	}
	if node.dev.State() == radio.Sleep {
		// Wake first, shortening the active period by the wake latency.
		lat := node.dev.TransitionLatency(radio.Idle)
		node.dev.SetState(radio.Idle, func() {
			rem := dur - lat
			if rem <= 0 {
				if done != nil {
					done()
				}
				return
			}
			node.dev.OccupyFor(st, rem, radio.Idle, done)
		})
		return
	}
	node.dev.OccupyFor(st, dur, radio.Idle, done)
}

// sleepFor puts a third party's data radio to sleep for the announced
// transmission duration (it learned the duration from the RTS/CTS).
func (n *Network) sleepFor(node *Node, dur sim.Time) {
	if !node.alive || node.dev.Transitioning() || node.dev.State() != radio.Idle {
		return
	}
	wake := n.sim.Now() + dur
	if wake <= node.sleepUntil {
		return // already sleeping past that point
	}
	node.sleepUntil = wake
	node.dev.SetState(radio.Sleep, nil)
	n.sim.At(wake, func() {
		if node.alive && node.dev.State() == radio.Sleep && !node.dev.Transitioning() &&
			n.sim.Now() >= node.sleepUntil {
			node.dev.SetState(radio.Idle, nil)
		}
	})
}

// maybeIdleSleep lets low-battery nodes opportunistically sleep after a
// transmission completes (PamasBattery mode only).
func (n *Network) maybeIdleSleep() {
	if n.cfg.Mode != PamasBattery {
		return
	}
	for _, node := range n.nodes {
		if !node.alive || node.battery.Level() > n.cfg.LowBattery {
			continue
		}
		if node.dev.State() != radio.Idle || node.dev.Transitioning() {
			continue
		}
		// Sleep aggressiveness grows as the battery drains: quantum scaled
		// by (threshold - level)/threshold.
		frac := (n.cfg.LowBattery - node.battery.Level()) / n.cfg.LowBattery
		dur := sim.FromSeconds(n.cfg.IdleSleepQuantum.Seconds() * (0.5 + frac))
		node.idleSleeps++
		n.sleepFor(node, dur)
	}
}

func (n *Network) drainBacklog() {
	if len(n.backlog) == 0 || n.busy {
		return
	}
	next := n.backlog[0]
	n.backlog = n.backlog[1:]
	next()
}
