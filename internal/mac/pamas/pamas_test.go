package pamas

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	for _, m := range []Mode{AlwaysListen, Pamas, PamasBattery} {
		if err := DefaultConfig(m).Validate(); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
	bad := DefaultConfig(Pamas)
	bad.LowBattery = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestModeString(t *testing.T) {
	if AlwaysListen.String() == "" || Pamas.String() == "" || PamasBattery.String() == "" {
		t.Error("mode names missing")
	}
}

func TestSingleTransfer(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, DefaultConfig(Pamas), 4)
	n.Send(0, 1, 25000) // 0.1 s at 2 Mb/s
	s.RunUntil(sim.Second)
	pkts, bytes := n.Delivered()
	if pkts != 1 || bytes != 25000 {
		t.Fatalf("delivered %d/%d, want 1/25000", pkts, bytes)
	}
	sent, _ := n.Node(0).Stats()
	_, recv := n.Node(1).Stats()
	if sent != 1 || recv != 1 {
		t.Errorf("sent/recv = %d/%d", sent, recv)
	}
}

func TestThirdPartiesSleepInPamasMode(t *testing.T) {
	run := func(mode Mode) float64 {
		s := sim.New(2)
		n := NewNetwork(s, DefaultConfig(mode), 5)
		// Nodes 0->1 exchange steadily; nodes 2-4 are bystanders.
		sim.NewTicker(s, 300*sim.Millisecond, func() { n.Send(0, 1, 50000) })
		s.RunUntil(30 * sim.Second)
		return n.Node(3).dev.Meter().TotalEnergy()
	}
	listen := run(AlwaysListen)
	pamas := run(Pamas)
	if pamas >= listen {
		t.Errorf("bystander energy with PAMAS (%.1f J) should be below always-listen (%.1f J)", pamas, listen)
	}
	// Overhearing avoidance is worth a visible fraction during active
	// periods (~20% of time active here).
	if (listen-pamas)/listen < 0.02 {
		t.Errorf("savings only %.1f%%; expected measurable overhearing avoidance",
			100*(listen-pamas)/listen)
	}
}

func TestBacklogSerializesTransfers(t *testing.T) {
	s := sim.New(3)
	n := NewNetwork(s, DefaultConfig(Pamas), 6)
	// Two simultaneous sends: the second must wait.
	n.Send(0, 1, 250000) // 1 s
	n.Send(2, 3, 250000)
	s.RunUntil(1500 * sim.Millisecond)
	pkts, _ := n.Delivered()
	if pkts != 1 {
		t.Errorf("delivered %d at 1.5s, want 1 (second transfer serialized)", pkts)
	}
	s.RunUntil(3 * sim.Second)
	pkts, _ = n.Delivered()
	if pkts != 2 {
		t.Errorf("delivered %d at 3s, want 2", pkts)
	}
}

func TestBatteryModeExtendsLifetime(t *testing.T) {
	run := func(mode Mode) sim.Time {
		s := sim.New(4)
		cfg := DefaultConfig(mode)
		cfg.BatteryCapacity = 60 // die within the horizon
		n := NewNetwork(s, cfg, 4)
		sim.NewTicker(s, 2*sim.Second, func() {
			src := s.Rand().Intn(4)
			dst := (src + 1 + s.Rand().Intn(3)) % 4
			n.Send(src, dst, 20000)
		})
		s.RunUntil(300 * sim.Second)
		return n.FirstDeath()
	}
	baseline := run(AlwaysListen)
	battery := run(PamasBattery)
	if baseline == sim.MaxTime {
		t.Fatal("baseline nodes never died; shrink capacity")
	}
	if battery <= baseline {
		t.Errorf("first death with battery-aware sleep at %v, baseline %v: lifetime should extend",
			battery, baseline)
	}
}

func TestLowBatteryNodesIdleSleep(t *testing.T) {
	s := sim.New(5)
	cfg := DefaultConfig(PamasBattery)
	cfg.BatteryCapacity = 100
	n := NewNetwork(s, cfg, 3)
	sim.NewTicker(s, sim.Second, func() { n.Send(0, 1, 10000) })
	s.RunUntil(200 * sim.Second)
	total := 0
	for i := 0; i < 3; i++ {
		total += n.Node(i).IdleSleeps()
	}
	if total == 0 {
		t.Error("no idle sleeps despite depleted batteries")
	}
}

func TestDeadNodesStopParticipating(t *testing.T) {
	s := sim.New(6)
	cfg := DefaultConfig(AlwaysListen)
	cfg.BatteryCapacity = 5 // dies in ~6 s of idle at 0.75+0.01 W
	n := NewNetwork(s, cfg, 2)
	s.RunUntil(60 * sim.Second)
	if n.NumAlive() != 0 {
		t.Fatalf("alive = %d, want 0", n.NumAlive())
	}
	if n.Node(0).dev.State() != radio.Off {
		t.Error("dead node radio should be off")
	}
	before, _ := n.Delivered()
	n.Send(0, 1, 1000)
	s.RunUntil(70 * sim.Second)
	after, _ := n.Delivered()
	if after != before {
		t.Error("dead nodes completed a transfer")
	}
}

func TestSendValidation(t *testing.T) {
	s := sim.New(7)
	n := NewNetwork(s, DefaultConfig(Pamas), 2)
	defer func() {
		if recover() == nil {
			t.Error("self-send accepted")
		}
	}()
	n.Send(1, 1, 100)
}

func TestFirstDeathMaxTimeWhenAlive(t *testing.T) {
	s := sim.New(8)
	n := NewNetwork(s, DefaultConfig(Pamas), 2)
	s.RunUntil(sim.Second)
	if n.FirstDeath() != sim.MaxTime {
		t.Error("FirstDeath should be MaxTime while all alive")
	}
}
