// Package aggregate models MAC-layer packet aggregation: batching several
// MAC service data units into one over-the-air burst so a power-saving
// station pays the per-frame overhead (preamble, header, ACK, wake
// transition) once per batch instead of once per packet, and sleeps through
// the gaps — the paper's "longer mobile sleep periods can be created by
// aggregating MAC layer packets".
package aggregate

import (
	"fmt"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Config parameterizes an aggregation run.
type Config struct {
	// PacketBytes is the size of one application packet (MSDU).
	PacketBytes int
	// PacketInterval is the CBR source spacing.
	PacketInterval sim.Time
	// Factor is the aggregation factor k: packets per over-the-air burst.
	Factor int
	// SubframeOverhead is the per-MSDU delimiter inside an aggregate.
	SubframeOverhead int
	// MACHeader is the single MAC header per burst.
	MACHeader int
	// AckBytes is the acknowledgement size (one per burst).
	AckBytes int
	// BitRate is the PHY rate.
	BitRate float64
	// PLCPOverhead is the preamble airtime paid once per burst.
	PLCPOverhead sim.Time
	// SIFS separates burst and ACK.
	SIFS sim.Time
}

// DefaultConfig returns the E6 experiment parameters: a 128 kb/s audio-like
// stream of 320-byte packets every 20 ms over 802.11b.
func DefaultConfig(factor int) Config {
	return Config{
		PacketBytes:      320,
		PacketInterval:   20 * sim.Millisecond,
		Factor:           factor,
		SubframeOverhead: 4,
		MACHeader:        34,
		AckBytes:         14,
		BitRate:          11e6,
		PLCPOverhead:     192 * sim.Microsecond,
		SIFS:             10 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PacketBytes <= 0 || c.PacketInterval <= 0 {
		return fmt.Errorf("aggregate: invalid source parameters")
	}
	if c.Factor <= 0 {
		return fmt.Errorf("aggregate: factor must be ≥ 1")
	}
	if c.BitRate <= 0 {
		return fmt.Errorf("aggregate: invalid bit rate")
	}
	return nil
}

// BurstAirtime returns the on-air time of one aggregated burst of k packets
// including its single preamble, header and SIFS-separated ACK.
func (c Config) BurstAirtime() sim.Time {
	payload := c.MACHeader + c.Factor*(c.PacketBytes+c.SubframeOverhead)
	data := c.PLCPOverhead + sim.FromSeconds(float64(payload*8)/c.BitRate)
	ack := c.PLCPOverhead + sim.FromSeconds(float64(c.AckBytes*8)/c.BitRate)
	return data + c.SIFS + ack
}

// Result reports the outcome of an aggregation run.
type Result struct {
	Factor        int
	Packets       int
	Bursts        int
	EnergyJ       float64
	AvgPowerW     float64
	EnergyPerBitJ float64
	MeanDelay     sim.Time
	SleepFraction float64
}

// Run simulates a power-saving station receiving an aggregated CBR stream
// for the given duration and returns its energy/delay profile. The
// aggregation point (the AP) is assumed mains-powered; only the client radio
// is metered, mirroring the paper's mobile-centric accounting.
func Run(s *sim.Simulator, cfg Config, duration sim.Time) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	dev.Meter().Reset()
	dev.SetState(radio.Sleep, nil)

	var (
		pending    []sim.Time // emit times of packets waiting in the aggregator
		totalDelay sim.Time
		packets    int
		bursts     int
		busy       bool
	)

	air := cfg.BurstAirtime()

	var deliver func()
	deliver = func() {
		if busy || len(pending) < cfg.Factor {
			return
		}
		batch := pending[:cfg.Factor]
		pending = pending[cfg.Factor:]
		busy = true
		// Wake → receive burst + send ACK → sleep.
		dev.SetState(radio.Idle, func() {
			dev.OccupyFor(radio.RX, air, radio.Idle, func() {
				now := s.Now()
				for _, emit := range batch {
					totalDelay += now - emit
					packets++
				}
				bursts++
				dev.SetState(radio.Sleep, func() {
					busy = false
					deliver() // a full batch may have accumulated meanwhile
				})
			})
		})
	}

	ticker := sim.NewTicker(s, cfg.PacketInterval, func() {
		pending = append(pending, s.Now())
		deliver()
	})
	start := s.Now()
	s.RunUntil(start + duration)
	ticker.Stop()
	// Let any in-flight burst finish so accounting is complete.
	s.Run()

	m := dev.Meter()
	res := Result{
		Factor:        cfg.Factor,
		Packets:       packets,
		Bursts:        bursts,
		EnergyJ:       m.TotalEnergy(),
		AvgPowerW:     m.AveragePower(),
		SleepFraction: m.StateFraction(radio.Sleep),
	}
	if packets > 0 {
		bits := float64(packets * cfg.PacketBytes * 8)
		res.EnergyPerBitJ = res.EnergyJ / bits
		res.MeanDelay = totalDelay / sim.Time(packets)
	}
	return res
}

// Sweep runs the aggregation experiment across factors and returns one
// result per factor, using an independent simulator per run for isolation.
func Sweep(seed int64, factors []int, duration sim.Time) []Result {
	out := make([]Result, 0, len(factors))
	for _, k := range factors {
		s := sim.New(seed)
		out = append(out, Run(s, DefaultConfig(k), duration))
	}
	return out
}
