package aggregate

import (
	"testing"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestBurstAirtimeGrowsSublinearly(t *testing.T) {
	// Aggregating k packets must cost less airtime than k separate bursts:
	// that is the whole point of amortizing preamble/header/ACK.
	one := DefaultConfig(1).BurstAirtime()
	eight := DefaultConfig(8).BurstAirtime()
	if eight >= 8*one {
		t.Errorf("airtime(8)=%v not sublinear vs 8x airtime(1)=%v", eight, 8*one)
	}
}

func TestRunDeliversAllPackets(t *testing.T) {
	s := sim.New(1)
	res := Run(s, DefaultConfig(4), 10*sim.Second)
	// 500 packets emitted in 10 s; all full batches of 4 delivered.
	if res.Packets < 496 || res.Packets > 500 {
		t.Errorf("packets = %d, want ≈ 500", res.Packets)
	}
	if res.Bursts != res.Packets/4 {
		t.Errorf("bursts = %d, want packets/4 = %d", res.Bursts, res.Packets/4)
	}
}

func TestEnergyPerBitDecreasesWithFactor(t *testing.T) {
	results := Sweep(7, []int{1, 2, 4, 8, 16}, 30*sim.Second)
	for i := 1; i < len(results); i++ {
		if results[i].EnergyPerBitJ >= results[i-1].EnergyPerBitJ {
			t.Errorf("energy/bit did not fall: k=%d %.3e vs k=%d %.3e",
				results[i].Factor, results[i].EnergyPerBitJ,
				results[i-1].Factor, results[i-1].EnergyPerBitJ)
		}
	}
}

func TestDelayIncreasesWithFactor(t *testing.T) {
	results := Sweep(7, []int{1, 4, 16}, 30*sim.Second)
	for i := 1; i < len(results); i++ {
		if results[i].MeanDelay <= results[i-1].MeanDelay {
			t.Errorf("delay did not rise: k=%d %v vs k=%d %v",
				results[i].Factor, results[i].MeanDelay,
				results[i-1].Factor, results[i-1].MeanDelay)
		}
	}
}

func TestSleepFractionGrowsWithFactor(t *testing.T) {
	results := Sweep(7, []int{1, 16}, 30*sim.Second)
	if results[1].SleepFraction <= results[0].SleepFraction {
		t.Errorf("sleep fraction k=16 (%.3f) not above k=1 (%.3f)",
			results[1].SleepFraction, results[0].SleepFraction)
	}
	if results[1].SleepFraction < 0.8 {
		t.Errorf("sleep fraction at k=16 = %.3f, want ≥ 0.8", results[1].SleepFraction)
	}
}

func TestMeanDelayBounded(t *testing.T) {
	s := sim.New(2)
	cfg := DefaultConfig(8)
	res := Run(s, cfg, 20*sim.Second)
	// Worst case: first packet of a batch waits (k-1) intervals plus the
	// burst service time; mean is about half that.
	upper := cfg.PacketInterval * sim.Time(cfg.Factor)
	if res.MeanDelay <= 0 || res.MeanDelay > upper {
		t.Errorf("mean delay = %v, want in (0, %v]", res.MeanDelay, upper)
	}
}
