package ecmac

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

func newNet(seed int64, nStations int, cfg Config) (*sim.Simulator, *Network) {
	s := sim.New(seed)
	bs := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	n := NewNetwork(s, cfg, bs)
	for i := 0; i < nStations; i++ {
		n.Register(i, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
	}
	return s, n
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.SlotTime = bad.SuperframeLen
	if err := bad.Validate(); err == nil {
		t.Error("slot >= superframe accepted")
	}
}

func TestBytesPerSlot(t *testing.T) {
	cfg := DefaultConfig()
	// 2 ms at 11 Mb/s = 2750 bytes
	if got := cfg.BytesPerSlot(); got != 2750 {
		t.Errorf("BytesPerSlot = %d, want 2750", got)
	}
}

func TestDownlinkDelivery(t *testing.T) {
	s, n := newNet(1, 2, DefaultConfig())
	n.Start()
	n.Deliver(0, 5000)
	n.Deliver(1, 2000)
	s.RunUntil(200 * sim.Millisecond)
	if got := n.StationRecvBytes(0); got != 5000 {
		t.Errorf("station 0 received %d, want 5000", got)
	}
	if got := n.StationRecvBytes(1); got != 2000 {
		t.Errorf("station 1 received %d, want 2000", got)
	}
	st := n.Stats()
	if st.PacketsDeliv != 2 {
		t.Errorf("packets delivered = %d, want 2", st.PacketsDeliv)
	}
	if st.Collisions != 0 {
		t.Error("TDMA produced collisions")
	}
}

func TestUplinkNeedsReservationRoundTrip(t *testing.T) {
	s, n := newNet(2, 1, DefaultConfig())
	n.Start()
	n.SendUplink(0, 3000)
	// Frame 1 (50ms): request sent. Frame 2 (100ms): granted and drained.
	s.RunUntil(90 * sim.Millisecond)
	if got := n.StationSentBytes(0); got != 0 {
		t.Errorf("uplink drained before grant: %d bytes", got)
	}
	s.RunUntil(160 * sim.Millisecond)
	if got := n.StationSentBytes(0); got != 3000 {
		t.Errorf("uplink delivered %d, want 3000", got)
	}
}

func TestStationsSleepMostOfIdleFrames(t *testing.T) {
	s, n := newNet(3, 4, DefaultConfig())
	n.Start()
	s.RunUntil(10 * sim.Second)
	for i := 0; i < 4; i++ {
		p := n.StationEnergy(i)
		if p > 0.25 {
			t.Errorf("station %d avg power %.3f W, want < 0.25 W when idle", i, p)
		}
	}
}

func TestECMACBeatsIdleListening(t *testing.T) {
	// A station with light periodic traffic should still spend most of its
	// time asleep: energy far below CAM's ~1.35 W idle floor.
	cfg := DefaultConfig()
	s, n := newNet(4, 3, cfg)
	n.Start()
	sim.NewTicker(s, 500*sim.Millisecond, func() { n.Deliver(0, 16000) })
	s.RunUntil(20 * sim.Second)
	if p := n.StationEnergy(0); p > 0.4 {
		t.Errorf("avg power %.3f W under light load, want well below CAM 1.35 W", p)
	}
	if got := n.StationRecvBytes(0); got < 16000*35 {
		t.Errorf("delivered %d bytes, want ≥ %d", got, 16000*35)
	}
}

func TestLargeBacklogSpreadsAcrossFrames(t *testing.T) {
	cfg := DefaultConfig()
	s, n := newNet(5, 1, cfg)
	n.Start()
	// More than one frame's worth of slots: must take multiple superframes.
	avail := int((cfg.SuperframeLen - 100*sim.Microsecond) / cfg.SlotTime)
	big := cfg.BytesPerSlot() * avail * 3
	n.Deliver(0, big)
	s.RunUntil(120 * sim.Millisecond) // ~2 frames: not yet done
	if n.StationRecvBytes(0) >= big {
		t.Error("oversized burst finished too fast")
	}
	s.RunUntil(500 * sim.Millisecond)
	if got := n.StationRecvBytes(0); got != big {
		t.Errorf("delivered %d, want %d", got, big)
	}
}

func TestFairnessUnderContention(t *testing.T) {
	cfg := DefaultConfig()
	s, n := newNet(6, 3, cfg)
	n.Start()
	// Saturate: everyone always has a large backlog.
	for i := 0; i < 3; i++ {
		n.Deliver(i, 10_000_000)
	}
	s.RunUntil(5 * sim.Second)
	var lo, hi int
	for i := 0; i < 3; i++ {
		b := n.StationRecvBytes(i)
		if i == 0 || b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if lo == 0 {
		t.Fatal("a station was starved")
	}
	if float64(hi)/float64(lo) > 1.5 {
		t.Errorf("rotation unfair: hi=%d lo=%d", hi, lo)
	}
}

func TestMeanDelayReported(t *testing.T) {
	s, n := newNet(7, 1, DefaultConfig())
	n.Start()
	n.Deliver(0, 1000)
	s.RunUntil(200 * sim.Millisecond)
	st := n.Stats()
	if st.MeanDelay <= 0 || st.MeanDelay > 200*sim.Millisecond {
		t.Errorf("mean delay = %v, want within (0, 200ms]", st.MeanDelay)
	}
}

func TestRegisterAfterStartPanics(t *testing.T) {
	s, n := newNet(8, 1, DefaultConfig())
	n.Start()
	defer func() {
		if recover() == nil {
			t.Error("late register accepted")
		}
	}()
	n.Register(9, radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle))
}

func TestDeliverUnknownStationPanics(t *testing.T) {
	_, n := newNet(9, 1, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("unknown station accepted")
		}
	}()
	n.Deliver(42, 100)
}

func TestLongRunStability(t *testing.T) {
	// Soak: mixed up/downlink over many superframes without panics and with
	// conservation of bytes.
	cfg := DefaultConfig()
	s, n := newNet(10, 5, cfg)
	n.Start()
	var sentDown, sentUp int
	sim.NewTicker(s, 120*sim.Millisecond, func() {
		n.Deliver(s.Rand().Intn(5), 4000)
		sentDown += 4000
	})
	sim.NewTicker(s, 180*sim.Millisecond, func() {
		n.SendUplink(s.Rand().Intn(5), 1500)
		sentUp += 1500
	})
	s.RunUntil(60 * sim.Second)
	st := n.Stats()
	if st.BytesDownlink > sentDown {
		t.Errorf("delivered more downlink (%d) than sent (%d)", st.BytesDownlink, sentDown)
	}
	if st.BytesUplink > sentUp {
		t.Errorf("delivered more uplink (%d) than sent (%d)", st.BytesUplink, sentUp)
	}
	// Nearly everything should drain (load ≪ capacity).
	if float64(st.BytesDownlink) < 0.95*float64(sentDown)-8000 {
		t.Errorf("downlink drained %d of %d", st.BytesDownlink, sentDown)
	}
	if st.Superframes < 1000 {
		t.Errorf("superframes = %d, want ≥ 1000", st.Superframes)
	}
}
