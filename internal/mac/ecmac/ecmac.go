// Package ecmac implements an EC-MAC-style energy-conserving MAC: a base
// station broadcasts a centrally determined TDMA schedule at the start of
// every superframe, stations announce uplink demand in collision-free
// reservation minislots, and data flows in assigned slots. Because every
// station learns the exact schedule, it knows precisely when to wake and can
// sleep the rest of the superframe — the property the paper highlights:
// "EC-MAC extends this by broadcasting a centrally determined schedule of
// data transmission times to reduce collisions and to provide exact times
// for entry into doze state."
package ecmac

import (
	"fmt"
	"sort"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Config holds EC-MAC superframe parameters.
type Config struct {
	// SuperframeLen is the TDMA frame period.
	SuperframeLen sim.Time
	// SlotTime is the duration of one data slot.
	SlotTime sim.Time
	// ReqSlotTime is the duration of one reservation minislot.
	ReqSlotTime sim.Time
	// ScheduleBytes is the base size of the schedule beacon; it grows by
	// PerEntryBytes per scheduled station.
	ScheduleBytes int
	// PerEntryBytes is the per-station schedule entry size.
	PerEntryBytes int
	// RequestBytes is the size of an uplink reservation request.
	RequestBytes int
	// BitRate is the PHY rate in bits/second.
	BitRate float64
	// WakeLead is how long before a scheduled activity a station begins its
	// sleep→idle transition.
	WakeLead sim.Time
}

// DefaultConfig returns the parameters used in experiment E5: 50 ms
// superframes of 2 ms slots at 11 Mb/s.
func DefaultConfig() Config {
	return Config{
		SuperframeLen: 50 * sim.Millisecond,
		SlotTime:      2 * sim.Millisecond,
		ReqSlotTime:   200 * sim.Microsecond,
		ScheduleBytes: 60,
		PerEntryBytes: 6,
		RequestBytes:  40,
		BitRate:       11e6,
		WakeLead:      3 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SuperframeLen <= 0 || c.SlotTime <= 0 || c.ReqSlotTime <= 0 {
		return fmt.Errorf("ecmac: durations must be positive")
	}
	if c.SlotTime >= c.SuperframeLen {
		return fmt.Errorf("ecmac: slot longer than superframe")
	}
	if c.BitRate <= 0 {
		return fmt.Errorf("ecmac: invalid bit rate")
	}
	if c.WakeLead <= 0 {
		return fmt.Errorf("ecmac: wake lead must be positive")
	}
	return nil
}

// BytesPerSlot returns the payload capacity of one data slot.
func (c Config) BytesPerSlot() int {
	return int(c.SlotTime.Seconds() * c.BitRate / 8)
}

// packet is one queued application payload.
type packet struct {
	bytes     int
	remaining int
	enqueued  sim.Time
}

// stationState is the base station's view of one registered client.
type stationState struct {
	id       int
	dev      *radio.Device
	downlink []*packet
	uplink   []*packet
	// uplinkGranted is the uplink demand (bytes) the BS learned from the
	// most recent reservation phase.
	uplinkGranted int

	recvBytes int
	sentBytes int
}

// Stats aggregates network-wide EC-MAC counters.
type Stats struct {
	Superframes    int
	PacketsDeliv   int
	BytesDownlink  int
	BytesUplink    int
	Collisions     int // always 0: TDMA is collision-free by construction
	MeanDelay      sim.Time
	totalDelay     sim.Time
	delayedPackets int
}

// Network is a complete EC-MAC cell: one base station plus registered
// stations, self-driving once started.
type Network struct {
	sim *sim.Simulator
	cfg Config
	bs  *radio.Device

	stations []*stationState
	byID     map[int]*stationState
	rotation int
	stats    Stats
	started  bool
}

// NewNetwork creates an EC-MAC cell. The base-station device models the
// AP-side radio (mains powered; metered anyway for completeness).
func NewNetwork(s *sim.Simulator, cfg Config, bsDev *radio.Device) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if bsDev.State() != radio.Idle {
		panic("ecmac: base station radio must start Idle")
	}
	return &Network{sim: s, cfg: cfg, bs: bsDev, byID: make(map[int]*stationState)}
}

// Register adds a station; its radio must start Idle (it will be put to
// sleep until the first superframe). Must be called before Start.
func (n *Network) Register(id int, dev *radio.Device) {
	if n.started {
		panic("ecmac: register before Start")
	}
	if _, dup := n.byID[id]; dup {
		panic(fmt.Sprintf("ecmac: duplicate station %d", id))
	}
	if dev.State() != radio.Idle {
		panic("ecmac: station radio must start Idle")
	}
	st := &stationState{id: id, dev: dev}
	n.stations = append(n.stations, st)
	n.byID[id] = st
	sort.Slice(n.stations, func(i, j int) bool { return n.stations[i].id < n.stations[j].id })
}

// Start begins superframe processing. Stations doze until the first frame.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, st := range n.stations {
		st.dev.SetState(radio.Sleep, nil)
	}
	first := n.cfg.SuperframeLen
	n.sim.At(first-n.cfg.WakeLead, n.wakeAll)
	n.sim.At(first, n.runSuperframe)
}

// Deliver queues downlink payload for a station.
func (n *Network) Deliver(to int, bytes int) {
	st, ok := n.byID[to]
	if !ok {
		panic(fmt.Sprintf("ecmac: unknown station %d", to))
	}
	st.downlink = append(st.downlink, &packet{bytes: bytes, remaining: bytes, enqueued: n.sim.Now()})
}

// SendUplink queues uplink payload at a station.
func (n *Network) SendUplink(from int, bytes int) {
	st, ok := n.byID[from]
	if !ok {
		panic(fmt.Sprintf("ecmac: unknown station %d", from))
	}
	st.uplink = append(st.uplink, &packet{bytes: bytes, remaining: bytes, enqueued: n.sim.Now()})
}

// Stats returns aggregate counters with the mean delay computed.
func (n *Network) Stats() Stats {
	s := n.stats
	if s.delayedPackets > 0 {
		s.MeanDelay = s.totalDelay / sim.Time(s.delayedPackets)
	}
	return s
}

// StationEnergy returns the average power of one station's radio.
func (n *Network) StationEnergy(id int) float64 {
	return n.byID[id].dev.Meter().AveragePower()
}

// StationRecvBytes returns delivered downlink bytes for a station.
func (n *Network) StationRecvBytes(id int) int { return n.byID[id].recvBytes }

// StationSentBytes returns delivered uplink bytes for a station.
func (n *Network) StationSentBytes(id int) int { return n.byID[id].sentBytes }

// wakeAll begins every station's sleep→idle transition ahead of the beacon.
func (n *Network) wakeAll() {
	for _, st := range n.stations {
		if st.dev.State() == radio.Sleep && !st.dev.Transitioning() {
			st.dev.SetState(radio.Idle, nil)
		}
	}
}

// dozeStation puts a station to sleep if it is idle and the sleep transition
// completes before nextWake (otherwise sleeping would race the wakeup).
func (n *Network) dozeStation(st *stationState, nextWake sim.Time) {
	trans := st.dev.Profile().TransitionCost(radio.Idle, radio.Sleep).Latency
	if n.sim.Now()+trans >= nextWake {
		return
	}
	if st.dev.State() == radio.Idle && !st.dev.Transitioning() {
		st.dev.SetState(radio.Sleep, nil)
	}
}

// airTime converts bytes to on-air time at the configured rate.
func (n *Network) airTime(bytes int) sim.Time {
	return sim.FromSeconds(float64(bytes*8) / n.cfg.BitRate)
}

// runSuperframe executes one complete TDMA frame: schedule beacon,
// reservation phase, contiguous per-station data allocations, then doze.
//
// Event-ordering contract: base-station state changes are scheduled in
// chronological order within this body, so FIFO tie-breaking at shared
// boundaries yields end-of-phase → start-of-phase sequencing. Station-side
// activity is chained through occupancy done-callbacks, so a station never
// overlaps its own radio operations.
func (n *Network) runSuperframe() {
	cfg := n.cfg
	frameStart := n.sim.Now()
	nextWake := frameStart + cfg.SuperframeLen - cfg.WakeLead
	n.stats.Superframes++

	// --- Build the schedule ---
	beaconBytes := cfg.ScheduleBytes + cfg.PerEntryBytes*len(n.stations)
	beaconDur := n.airTime(beaconBytes)
	reqPhase := cfg.ReqSlotTime * sim.Time(len(n.stations))
	dataStart := beaconDur + reqPhase
	avail := int((cfg.SuperframeLen - dataStart - cfg.WakeLead) / cfg.SlotTime)
	if avail < 0 {
		avail = 0
	}
	bps := cfg.BytesPerSlot()

	// Rotate service order each frame for long-run fairness.
	order := make([]*stationState, len(n.stations))
	for i := range n.stations {
		order[i] = n.stations[(i+n.rotation)%len(n.stations)]
	}
	n.rotation++

	type window struct {
		st         *stationState
		start, end sim.Time
		down, up   int // slots
	}
	var windows []window
	remaining := avail
	slotCursor := 0
	for _, st := range order {
		if remaining == 0 {
			break
		}
		down := (queuedBytes(st.downlink) + bps - 1) / bps
		up := (st.uplinkGranted + bps - 1) / bps
		if down > remaining {
			down = remaining
		}
		remaining -= down
		if up > remaining {
			up = remaining
		}
		remaining -= up
		if down+up == 0 {
			continue
		}
		start := frameStart + dataStart + cfg.SlotTime*sim.Time(slotCursor)
		slotCursor += down + up
		windows = append(windows, window{
			st: st, start: start,
			end:  start + cfg.SlotTime*sim.Time(down+up),
			down: down, up: up,
		})
	}
	hasWindow := make(map[int]bool, len(windows))
	for _, w := range windows {
		hasWindow[w.st.id] = true
	}
	requesting := make(map[int]bool, len(n.stations))
	for _, st := range n.stations {
		if queuedBytes(st.uplink) > 0 {
			requesting[st.id] = true
		}
	}

	// --- Base-station radio timeline (chronological scheduling order) ---
	n.bs.SetState(radio.TX, nil) // beacon
	n.sim.At(frameStart+beaconDur, func() { n.bs.SetState(radio.Idle, nil) })
	reqDur := n.airTime(cfg.RequestBytes)
	if reqDur > cfg.ReqSlotTime {
		reqDur = cfg.ReqSlotTime
	}
	for i, st := range n.stations {
		if !requesting[st.id] {
			continue
		}
		slotAt := frameStart + beaconDur + cfg.ReqSlotTime*sim.Time(i)
		n.sim.At(slotAt, func() { n.bs.SetState(radio.RX, nil) })
		n.sim.At(slotAt+reqDur, func() { n.bs.SetState(radio.Idle, nil) })
	}
	for _, w := range windows {
		w := w
		downEnd := w.start + cfg.SlotTime*sim.Time(w.down)
		if w.down > 0 {
			n.sim.At(w.start, func() { n.bs.SetState(radio.TX, nil) })
		}
		if w.up > 0 {
			n.sim.At(downEnd, func() { n.bs.SetState(radio.RX, nil) })
		}
		n.sim.At(w.end, func() { n.bs.SetState(radio.Idle, nil) })
	}

	// --- Station radio timelines ---
	for _, st := range n.stations {
		st := st
		if st.dev.State() != radio.Idle || st.dev.Transitioning() {
			continue // missed wakeup; sits out this frame, retried next wakeAll
		}
		afterBeacon := func() {
			// Idle until minislot / window; doze immediately if neither.
			if !requesting[st.id] && !hasWindow[st.id] {
				n.dozeStation(st, nextWake)
			}
		}
		st.dev.OccupyFor(radio.RX, beaconDur, radio.Idle, afterBeacon)
	}
	for i, st := range n.stations {
		st := st
		if !requesting[st.id] {
			continue
		}
		slotAt := frameStart + beaconDur + cfg.ReqSlotTime*sim.Time(i)
		n.sim.At(slotAt, func() {
			st.uplinkGranted = queuedBytes(st.uplink)
			st.dev.OccupyFor(radio.TX, reqDur, radio.Idle, func() {
				if !hasWindow[st.id] {
					n.dozeStation(st, nextWake)
				}
			})
		})
	}
	for _, w := range windows {
		w := w
		st := w.st
		n.sim.At(w.start, func() {
			downDur := cfg.SlotTime * sim.Time(w.down)
			upDur := cfg.SlotTime * sim.Time(w.up)
			finish := func() { n.dozeStation(st, nextWake) }
			runUp := func() {
				if w.up == 0 {
					finish()
					return
				}
				st.dev.OccupyFor(radio.TX, upDur, radio.Idle, func() {
					n.drain(st, &st.uplink, w.up*bps, false)
					st.uplinkGranted = 0
					finish()
				})
			}
			if w.down > 0 {
				st.dev.OccupyFor(radio.RX, downDur, radio.Idle, func() {
					n.drain(st, &st.downlink, w.down*bps, true)
					runUp()
				})
			} else {
				runUp()
			}
		})
	}

	// --- Next frame ---
	next := frameStart + cfg.SuperframeLen
	n.sim.At(nextWake, n.wakeAll)
	n.sim.At(next, n.runSuperframe)
}

// drain moves up to budget bytes out of a packet queue, recording delivery
// delays for packets that complete.
func (n *Network) drain(st *stationState, q *[]*packet, budget int, downlink bool) {
	now := n.sim.Now()
	for budget > 0 && len(*q) > 0 {
		p := (*q)[0]
		take := p.remaining
		if take > budget {
			take = budget
		}
		p.remaining -= take
		budget -= take
		if downlink {
			st.recvBytes += take
			n.stats.BytesDownlink += take
		} else {
			st.sentBytes += take
			n.stats.BytesUplink += take
		}
		if p.remaining == 0 {
			*q = (*q)[1:]
			n.stats.PacketsDeliv++
			n.stats.totalDelay += now - p.enqueued
			n.stats.delayedPackets++
		}
	}
}

func queuedBytes(q []*packet) int {
	total := 0
	for _, p := range q {
		total += p.remaining
	}
	return total
}
