// Package psm implements the 802.11 power-save mode on top of the DCF
// substrate: the access point buffers traffic for dozing stations and
// advertises it in the beacon's traffic indication map (TIM); stations wake
// for beacons, retrieve buffered frames with PS-Poll, and doze whenever the
// TIM holds nothing for them — exactly the mechanism the paper summarizes as
// "802.11 power saving standard has a device entering doze mode whenever
// there is no traffic for it in the traffic indication map sent by the
// access point".
package psm

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config holds PSM parameters.
type Config struct {
	// BeaconInterval is the TBTT spacing (default 100 ms).
	BeaconInterval sim.Time
	// DTIMPeriod is the DTIM interval in beacons.
	DTIMPeriod int
	// ListenInterval is how many beacon intervals a station may skip
	// between wakeups (1 = wake for every beacon).
	ListenInterval int
	// WakeLead is how long before TBTT a station starts its doze→idle
	// transition so it is listening when the beacon airs.
	WakeLead sim.Time
	// BufferLimit caps per-station AP-side buffering; overflow drops.
	BufferLimit int
	// RetrieveTimeout bounds how long a station stays awake waiting for a
	// poll response before giving up until the next beacon.
	RetrieveTimeout sim.Time
}

// DefaultConfig returns standard-profile PSM parameters.
func DefaultConfig() Config {
	return Config{
		BeaconInterval:  100 * sim.Millisecond,
		DTIMPeriod:      3,
		ListenInterval:  1,
		WakeLead:        3 * sim.Millisecond,
		BufferLimit:     64,
		RetrieveTimeout: 40 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BeaconInterval <= 0 || c.DTIMPeriod <= 0 || c.ListenInterval <= 0 {
		return fmt.Errorf("psm: intervals must be positive")
	}
	if c.WakeLead <= 0 || c.WakeLead >= c.BeaconInterval {
		return fmt.Errorf("psm: wake lead must be in (0, beacon interval)")
	}
	if c.BufferLimit <= 0 {
		return fmt.Errorf("psm: buffer limit must be positive")
	}
	return nil
}

// APStats counts access-point-side PSM activity.
type APStats struct {
	Beacons        int
	Buffered       int
	BufferDrops    int
	PollsServed    int
	DirectSends    int // frames sent to CAM (non-PS) stations
	BroadcastsSent int
}

// AP is a power-save-aware access point. Downlink traffic for stations in PS
// mode is buffered and advertised via the TIM; PS-Polls release it one frame
// at a time with the More bit chaining further retrievals.
type AP struct {
	sim *sim.Simulator
	cfg Config
	sta *dcf.Station

	psMode   map[int]bool
	buffers  map[int][]*frame.Frame
	bcastBuf []*frame.Frame
	inFlight map[int]bool
	beaconN  int
	seq      int
	stats    APStats
}

// NewAP creates the access point on the given medium and starts beaconing.
func NewAP(s *sim.Simulator, m *dcf.Medium, dev *radio.Device, cfg Config) *AP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ap := &AP{
		sim:      s,
		cfg:      cfg,
		psMode:   make(map[int]bool),
		buffers:  make(map[int][]*frame.Frame),
		inFlight: make(map[int]bool),
	}
	ap.sta = dcf.NewStation(frame.AP, m, dev)
	ap.sta.OnReceive = ap.onReceive
	ap.sta.OnSent = ap.onSent
	sim.NewTicker(s, cfg.BeaconInterval, ap.sendBeacon)
	return ap
}

// Station exposes the AP's underlying DCF station (for stats and tests).
func (ap *AP) Station() *dcf.Station { return ap.sta }

// Stats returns a copy of the AP counters.
func (ap *AP) Stats() APStats { return ap.stats }

// SetPSMode marks a station as power-saving (true) or CAM (false).
// In a real network the station signals this with the power-management bit;
// here registration is explicit.
func (ap *AP) SetPSMode(sta int, on bool) { ap.psMode[sta] = on }

// Buffered returns the number of frames currently buffered for a station.
func (ap *AP) Buffered(sta int) int { return len(ap.buffers[sta]) }

// Deliver hands the AP a downlink payload for a station. PS stations get it
// buffered for TIM-announced retrieval; CAM stations get it sent directly.
func (ap *AP) Deliver(to int, payload int) {
	ap.seq++
	f := frame.NewData(frame.AP, to, ap.seq, payload)
	if !ap.psMode[to] {
		ap.stats.DirectSends++
		ap.sta.Enqueue(f)
		return
	}
	if len(ap.buffers[to]) >= ap.cfg.BufferLimit {
		ap.stats.BufferDrops++
		return
	}
	ap.buffers[to] = append(ap.buffers[to], f)
	ap.stats.Buffered++
}

// DeliverBroadcast queues a broadcast payload; it airs right after the next
// DTIM beacon, when every power-saving station is awake to hear it.
func (ap *AP) DeliverBroadcast(payload int) {
	ap.seq++
	f := frame.NewData(frame.AP, frame.Broadcast, ap.seq, payload)
	ap.bcastBuf = append(ap.bcastBuf, f)
}

func (ap *AP) sendBeacon() {
	tim := frame.NewTIM(ap.cfg.DTIMPeriod)
	tim.DTIMCount = ap.beaconN % ap.cfg.DTIMPeriod
	tim.Broadcast = len(ap.bcastBuf) > 0
	for sta, buf := range ap.buffers {
		if len(buf) > 0 {
			tim.Set(sta)
		}
	}
	isDTIM := tim.DTIMCount == 0
	ap.beaconN++
	ap.stats.Beacons++
	ap.sta.Enqueue(frame.NewBeacon(tim))
	// Broadcast traffic follows DTIM beacons while all PS stations listen.
	if isDTIM {
		for _, f := range ap.bcastBuf {
			ap.stats.BroadcastsSent++
			ap.sta.Enqueue(f)
		}
		ap.bcastBuf = nil
	}
}

func (ap *AP) onReceive(f *frame.Frame) {
	if f.Kind != frame.PSPoll {
		return
	}
	ap.servePoll(f.From)
}

// servePoll releases the head buffered frame for a station in response to a
// PS-Poll, setting the More bit when further frames wait.
func (ap *AP) servePoll(sta int) {
	buf := ap.buffers[sta]
	if len(buf) == 0 || ap.inFlight[sta] {
		return
	}
	head := buf[0]
	head.More = len(buf) > 1
	ap.inFlight[sta] = true
	ap.stats.PollsServed++
	ap.sta.Enqueue(head)
}

// onSent retires a successfully delivered buffered frame, or re-queues the
// head for the next poll on failure.
func (ap *AP) onSent(f *frame.Frame, ok bool) {
	if f.Kind != frame.Data || !ap.psMode[f.To] {
		return
	}
	ap.inFlight[f.To] = false
	if ok {
		buf := ap.buffers[f.To]
		if len(buf) > 0 && buf[0] == f {
			ap.buffers[f.To] = buf[1:]
		}
	}
	// On failure the frame stays at the head; the station's TIM bit remains
	// set and the next beacon/poll retries it.
}
