package psm

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/radio"
	"repro/internal/sim"
)

type rig struct {
	s  *sim.Simulator
	m  *dcf.Medium
	ap *AP
}

func newRig(seed int64, cfg Config, ch *channel.GilbertElliott) *rig {
	s := sim.New(seed)
	m := dcf.NewMedium(s, dcf.Default80211b(), ch)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := NewAP(s, m, apDev, cfg)
	return &rig{s: s, m: m, ap: ap}
}

func (r *rig) addClient(id int, cfg Config) *Client {
	dev := radio.NewDeviceInState(r.s, radio.WLAN80211b(), radio.Idle)
	return NewClient(r.s, r.m, dev, r.ap, id, cfg)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.WakeLead = bad.BeaconInterval
	if err := bad.Validate(); err == nil {
		t.Error("wake lead >= beacon interval accepted")
	}
	bad2 := DefaultConfig()
	bad2.ListenInterval = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero listen interval accepted")
	}
}

func TestBeaconsAreSent(t *testing.T) {
	r := newRig(1, DefaultConfig(), nil)
	r.s.RunUntil(1050 * sim.Millisecond)
	if got := r.ap.Stats().Beacons; got != 10 {
		t.Errorf("beacons = %d in 1.05s, want 10", got)
	}
}

func TestBufferedDeliveryViaTIMAndPoll(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(2, cfg, nil)
	cl := r.addClient(0, cfg)
	var got []int
	cl.OnData = func(f *frame.Frame) { got = append(got, f.Payload) }

	// Deliver while the client dozes: must be buffered, TIM-announced,
	// polled out after the next beacon.
	r.s.Schedule(20*sim.Millisecond, func() { r.ap.Deliver(0, 1200) })
	r.s.RunUntil(300 * sim.Millisecond)

	if len(got) != 1 || got[0] != 1200 {
		t.Fatalf("client got %v, want [1200]", got)
	}
	st := cl.Stats()
	if st.PollsSent != 1 {
		t.Errorf("polls = %d, want 1", st.PollsSent)
	}
	if r.ap.Buffered(0) != 0 {
		t.Errorf("AP still buffers %d frames", r.ap.Buffered(0))
	}
}

func TestMoreBitChainsRetrievals(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(3, cfg, nil)
	cl := r.addClient(0, cfg)
	count := 0
	cl.OnData = func(*frame.Frame) { count++ }
	r.s.Schedule(10*sim.Millisecond, func() {
		for i := 0; i < 5; i++ {
			r.ap.Deliver(0, 800)
		}
	})
	r.s.RunUntil(400 * sim.Millisecond)
	if count != 5 {
		t.Fatalf("client got %d frames, want 5 in one beacon cycle chain", count)
	}
	if polls := cl.Stats().PollsSent; polls != 5 {
		t.Errorf("polls = %d, want 5 (one per frame)", polls)
	}
}

func TestClientDozesWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(4, cfg, nil)
	cl := r.addClient(0, cfg)
	r.s.RunUntil(10 * sim.Second)
	m := cl.Station().Device().Meter()
	sleepFrac := m.StateFraction(radio.Sleep)
	if sleepFrac < 0.9 {
		t.Errorf("sleep fraction = %.3f, want ≥ 0.9 with no traffic", sleepFrac)
	}
	if heard := cl.Stats().BeaconsHeard; heard < 95 {
		t.Errorf("beacons heard = %d of ~100", heard)
	}
	// PSM with no traffic should cost well under a tenth of CAM idle power.
	if p := m.AveragePower(); p > 0.15 {
		t.Errorf("avg power = %.3f W, want < 0.15 W while dozing", p)
	}
}

func TestPSMSavesEnergyVsCAM(t *testing.T) {
	// Same light downlink load; PS client must use far less energy than a
	// CAM client while still receiving everything.
	cfg := DefaultConfig()
	run := func(psMode bool) (avgW float64, frames int) {
		r := newRig(5, cfg, nil)
		var recv int
		if psMode {
			cl := r.addClient(0, cfg)
			cl.OnData = func(*frame.Frame) { recv++ }
			deliverEvery(r, 0, 500*sim.Millisecond, 1000)
			r.s.RunUntil(20 * sim.Second)
			return cl.Station().Device().Meter().AveragePower(), recv
		}
		dev := radio.NewDeviceInState(r.s, radio.WLAN80211b(), radio.Idle)
		sta := dcf.NewStation(0, r.m, dev)
		sta.OnReceive = func(f *frame.Frame) {
			if f.Kind == frame.Data {
				recv++
			}
		}
		deliverEvery(r, 0, 500*sim.Millisecond, 1000)
		r.s.RunUntil(20 * sim.Second)
		return dev.Meter().AveragePower(), recv
	}
	psW, psFrames := run(true)
	camW, camFrames := run(false)
	if psFrames != camFrames {
		t.Errorf("PS client received %d, CAM %d — PSM must not lose traffic", psFrames, camFrames)
	}
	if psW > camW/5 {
		t.Errorf("PSM avg power %.3f W vs CAM %.3f W: expected ≥5x saving", psW, camW)
	}
}

func deliverEvery(r *rig, to int, period sim.Time, payload int) {
	sim.NewTicker(r.s, period, func() { r.ap.Deliver(to, payload) })
}

func TestCAMStationGetsDirectDelivery(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(6, cfg, nil)
	dev := radio.NewDeviceInState(r.s, radio.WLAN80211b(), radio.Idle)
	sta := dcf.NewStation(7, r.m, dev)
	recv := 0
	sta.OnReceive = func(f *frame.Frame) {
		if f.Kind == frame.Data {
			recv++
		}
	}
	r.ap.Deliver(7, 900)
	r.s.RunUntil(50 * sim.Millisecond)
	if recv != 1 {
		t.Errorf("CAM station received %d, want 1 (no beacon wait)", recv)
	}
	if r.ap.Stats().DirectSends != 1 {
		t.Errorf("DirectSends = %d, want 1", r.ap.Stats().DirectSends)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferLimit = 3
	r := newRig(7, cfg, nil)
	r.addClient(0, cfg)
	for i := 0; i < 10; i++ {
		r.ap.Deliver(0, 100)
	}
	if r.ap.Buffered(0) != 3 {
		t.Errorf("buffered = %d, want 3", r.ap.Buffered(0))
	}
	if r.ap.Stats().BufferDrops != 7 {
		t.Errorf("drops = %d, want 7", r.ap.Stats().BufferDrops)
	}
}

func TestListenIntervalSkipsBeacons(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ListenInterval = 5
	r := newRig(8, cfg, nil)
	cl := r.addClient(0, cfg)
	r.s.RunUntil(5 * sim.Second) // 50 beacons
	heard := cl.Stats().BeaconsHeard
	if heard < 8 || heard > 12 {
		t.Errorf("heard %d beacons with listen interval 5 over 50, want ~10", heard)
	}
}

func TestLossyChannelStillDelivers(t *testing.T) {
	cfg := DefaultConfig()
	s := sim.New(9)
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second, BERGood: 1e-5, BERBad: 1e-3})
	ch.Freeze()
	m := dcf.NewMedium(s, dcf.Default80211b(), ch)
	apDev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	ap := NewAP(s, m, apDev, cfg)
	dev := radio.NewDeviceInState(s, radio.WLAN80211b(), radio.Idle)
	cl := NewClient(s, m, dev, ap, 0, cfg)
	recv := 0
	cl.OnData = func(*frame.Frame) { recv++ }
	const n = 30
	for i := 0; i < n; i++ {
		d := sim.Time(i) * 300 * sim.Millisecond
		s.At(d+sim.Millisecond, func() { ap.Deliver(0, 1200) })
	}
	s.RunUntil(30 * sim.Second)
	if recv != n {
		t.Errorf("delivered %d of %d on lossy channel (beacon retries must recover)", recv, n)
	}
}

func TestTwoClientsIndependentBuffers(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(10, cfg, nil)
	c0 := r.addClient(0, cfg)
	c1 := r.addClient(1, cfg)
	var got0, got1 int
	c0.OnData = func(*frame.Frame) { got0++ }
	c1.OnData = func(*frame.Frame) { got1++ }
	r.s.Schedule(5*sim.Millisecond, func() {
		r.ap.Deliver(0, 500)
		r.ap.Deliver(0, 500)
		r.ap.Deliver(1, 700)
	})
	r.s.RunUntil(500 * sim.Millisecond)
	if got0 != 2 || got1 != 1 {
		t.Errorf("client deliveries = %d/%d, want 2/1", got0, got1)
	}
}

func TestBroadcastDeliveredAfterDTIM(t *testing.T) {
	cfg := DefaultConfig() // DTIM period 3
	r := newRig(20, cfg, nil)
	c0 := r.addClient(0, cfg)
	c1 := r.addClient(1, cfg)
	var got0, got1 int
	c0.OnData = func(f *frame.Frame) {
		if f.To == frame.Broadcast {
			got0++
		}
	}
	c1.OnData = func(f *frame.Frame) {
		if f.To == frame.Broadcast {
			got1++
		}
	}
	r.s.Schedule(10*sim.Millisecond, func() { r.ap.DeliverBroadcast(600) })
	// Worst case: wait out a full DTIM period plus slack.
	r.s.RunUntil(700 * sim.Millisecond)
	if got0 != 1 || got1 != 1 {
		t.Fatalf("broadcast receipt = %d/%d, want 1/1", got0, got1)
	}
	if r.ap.Stats().BroadcastsSent != 1 {
		t.Errorf("BroadcastsSent = %d, want 1", r.ap.Stats().BroadcastsSent)
	}
	if c0.Stats().BroadcastsRecv != 1 {
		t.Errorf("client stats missed the broadcast")
	}
}

func TestBroadcastWaitsForDTIMBeacon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DTIMPeriod = 5
	r := newRig(21, cfg, nil)
	cl := r.addClient(0, cfg)
	got := 0
	cl.OnData = func(f *frame.Frame) {
		if f.To == frame.Broadcast {
			got++
		}
	}
	// Queue right after a DTIM beacon (beacon 0 at 100 ms is DTIM since
	// beaconN starts at 0): the broadcast must wait for the NEXT DTIM.
	r.s.Schedule(110*sim.Millisecond, func() { r.ap.DeliverBroadcast(600) })
	r.s.RunUntil(400 * sim.Millisecond) // beacons 1,2,3 are non-DTIM
	if got != 0 {
		t.Fatalf("broadcast delivered before DTIM")
	}
	r.s.RunUntil(800 * sim.Millisecond) // beacon at 600 ms is DTIM (count 0)
	if got != 1 {
		t.Errorf("broadcast not delivered after DTIM: got %d", got)
	}
}

func TestBroadcastWindowDoesNotCountAsMissedBeacon(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(22, cfg, nil)
	cl := r.addClient(0, cfg)
	r.s.Schedule(10*sim.Millisecond, func() { r.ap.DeliverBroadcast(600) })
	r.s.RunUntil(2 * sim.Second)
	if missed := cl.Stats().BeaconsMissed; missed != 0 {
		t.Errorf("broadcast wait recorded %d missed beacons", missed)
	}
}
