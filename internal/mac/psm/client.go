package psm

import (
	"repro/internal/frame"
	"repro/internal/mac/dcf"
	"repro/internal/radio"
	"repro/internal/sim"
)

// ClientStats counts station-side PSM activity.
type ClientStats struct {
	BeaconsHeard   int
	BeaconsMissed  int
	PollsSent      int
	FramesRecv     int
	BytesRecv      int
	BroadcastsRecv int
}

// Client is a power-saving 802.11 station. Its lifecycle is a loop:
// doze → wake shortly before TBTT → hear beacon → if the TIM indicates
// buffered traffic, PS-Poll it out frame by frame (the More bit chains
// retrievals) → doze again.
type Client struct {
	sim *sim.Simulator
	cfg Config
	ap  *AP
	sta *dcf.Station
	id  int

	retrieving bool
	bcastWait  bool
	// cycle groups the client's beacon-cycle events — the pre-TBTT wakeup
	// and the doze-retry polls — per station, so a future protocol change
	// (listen-interval renegotiation, association teardown) can drop a
	// whole cycle in one CancelAll. The retrieve timeout stays a Timer:
	// its rearm-or-fire lifecycle is already a self-cancelling group.
	cycle   *sim.Batch
	timeout *sim.Timer
	seq     int
	stats   ClientStats

	// OnData is invoked for every retrieved data frame.
	OnData func(f *frame.Frame)
}

// NewClient creates a PS-mode station and schedules its first beacon wakeup.
// The station starts awake (radio Idle) and dozes immediately.
func NewClient(s *sim.Simulator, m *dcf.Medium, dev *radio.Device, ap *AP, id int, cfg Config) *Client {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Client{sim: s, cfg: cfg, ap: ap, id: id}
	c.sta = dcf.NewStation(id, m, dev)
	c.sta.OnReceive = c.onReceive
	c.cycle = s.NewSlotBatch(2) // slot 0: pre-TBTT wakeup, slot 1: doze retry
	c.timeout = sim.NewTimer(s, c.onRetrieveTimeout)
	ap.SetPSMode(id, true)
	c.sta.Doze()
	c.scheduleWake()
	return c
}

// Station exposes the underlying DCF station.
func (c *Client) Station() *dcf.Station { return c.sta }

// Stats returns a copy of the client counters.
func (c *Client) Stats() ClientStats { return c.stats }

// nextTBTT returns the next target beacon transmission time this client
// attends, honoring its listen interval.
func (c *Client) nextTBTT() sim.Time {
	interval := c.cfg.BeaconInterval * sim.Time(c.cfg.ListenInterval)
	now := c.sim.Now()
	k := now/interval + 1
	return k * interval
}

func (c *Client) scheduleWake() {
	target := c.nextTBTT()
	wakeAt := target - c.cfg.WakeLead
	if wakeAt <= c.sim.Now() {
		wakeAt = c.sim.Now()
	}
	c.cycle.AtSlot(0, wakeAt, func() {
		if !c.sta.Awake() {
			c.sta.WakeUp(nil)
		}
		// If no beacon shows up shortly after TBTT (lost to collision or
		// corruption), give up and doze until the next one.
		c.timeout.ResetAt(target + c.cfg.RetrieveTimeout)
	})
}

func (c *Client) onRetrieveTimeout() {
	if c.bcastWait {
		// The post-DTIM broadcast window closed; this is the normal end of
		// a broadcast wait, not a missed beacon.
		c.bcastWait = false
		c.dozeUntilNext()
		return
	}
	c.stats.BeaconsMissed++
	c.retrieving = false
	c.dozeUntilNext()
}

// dozeUntilNext ends the current beacon cycle: schedule the next wakeup and
// doze as soon as the station is quiescent (any owed ACK must go out first).
func (c *Client) dozeUntilNext() {
	c.scheduleWake()
	c.attemptDoze()
}

func (c *Client) attemptDoze() {
	// Not worth dozing if the next wakeup is imminent.
	nextWake := c.nextTBTT() - c.cfg.WakeLead
	if c.sim.Now() >= nextWake-2*sim.Millisecond {
		return
	}
	if c.sta.CanDoze() {
		c.sta.Doze()
		return
	}
	c.cycle.ScheduleSlot(1, sim.Millisecond, c.attemptDoze)
}

func (c *Client) onReceive(f *frame.Frame) {
	switch f.Kind {
	case frame.Beacon:
		c.stats.BeaconsHeard++
		c.timeout.Stop()
		c.bcastWait = f.TIM != nil && f.TIM.Broadcast && f.TIM.DTIMCount == 0
		switch {
		case f.TIM != nil && f.TIM.Indicated(c.id):
			c.retrieving = true
			c.poll()
		case c.bcastWait:
			// Stay awake through the post-DTIM broadcast window.
			c.timeout.Reset(c.cfg.RetrieveTimeout)
		default:
			c.dozeUntilNext()
		}
	case frame.Data:
		if f.To == frame.Broadcast {
			c.stats.BroadcastsRecv++
			c.stats.BytesRecv += f.Payload
			if c.OnData != nil {
				c.OnData(f)
			}
			return
		}
		if !c.retrieving {
			return
		}
		c.stats.FramesRecv++
		c.stats.BytesRecv += f.Payload
		if c.OnData != nil {
			c.OnData(f)
		}
		c.timeout.Stop()
		if f.More {
			c.poll()
		} else {
			c.retrieving = false
			c.dozeUntilNext()
		}
	}
}

func (c *Client) poll() {
	c.stats.PollsSent++
	c.seq++
	c.sta.Enqueue(frame.NewPSPoll(c.id, c.seq))
	c.timeout.Reset(c.cfg.RetrieveTimeout)
}
