// Package link implements the logical-link-layer energy trade-offs the
// paper surveys: ARQ retransmission schemes (stop-and-wait, go-back-N,
// selective repeat), block forward error correction, hybrid combinations,
// and channel-prediction-driven adaptive ARQ. Its experiments answer the
// question the paper poses — when is it cheaper to retransmit, and when to
// pay constant FEC overhead for longer packets?
package link

import (
	"fmt"
	"math"
)

// Code is a block FEC code model: K payload bytes are expanded to N coded
// bytes and any pattern of at most T bit errors per block is correctable.
// Parity cost follows the BCH rule of thumb: correcting t bit errors in an
// n-bit block needs ≈ ceil(log2(n))·t parity bits.
type Code struct {
	K int // data bytes per block
	N int // coded bytes per block
	T int // correctable bit errors per block
}

// NoCode returns the identity (no-FEC) code for the given block size.
func NoCode(k int) Code { return Code{K: k, N: k, T: 0} }

// NewBCHLike builds a code correcting t bit errors on k-byte blocks with
// BCH-style parity overhead.
func NewBCHLike(k, t int) Code {
	if k <= 0 || t < 0 {
		panic(fmt.Sprintf("link: invalid code parameters k=%d t=%d", k, t))
	}
	if t == 0 {
		return NoCode(k)
	}
	nBits := float64(k * 8)
	m := int(math.Ceil(math.Log2(nBits))) + 1
	parityBits := m * t
	return Code{K: k, N: k + (parityBits+7)/8, T: t}
}

// Overhead returns the expansion ratio N/K (≥ 1).
func (c Code) Overhead() float64 { return float64(c.N) / float64(c.K) }

// Corrects reports whether a block with the given number of bit errors
// decodes successfully.
func (c Code) Corrects(bitErrors int) bool { return bitErrors <= c.T }

// Validate checks the code's internal consistency.
func (c Code) Validate() error {
	if c.K <= 0 || c.N < c.K || c.T < 0 {
		return fmt.Errorf("link: inconsistent code %+v", c)
	}
	return nil
}

// BlockErrorProb returns the probability that a block fails to decode under
// independent bit errors at the given BER: P(#errors > T) over N·8 bits.
func (c Code) BlockErrorProb(ber float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	n := c.N * 8
	// Sum the binomial tail: 1 - Σ_{i=0..T} C(n,i) p^i (1-p)^(n-i),
	// computed in log space to survive large n.
	logP := math.Log(ber)
	logQ := math.Log1p(-ber)
	cum := 0.0
	logC := 0.0 // log C(n, 0)
	for i := 0; i <= c.T; i++ {
		if i > 0 {
			logC += math.Log(float64(n-i+1)) - math.Log(float64(i))
		}
		cum += math.Exp(logC + float64(i)*logP + float64(n-i)*logQ)
	}
	if cum > 1 {
		cum = 1
	}
	return 1 - cum
}
