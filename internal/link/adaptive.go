package link

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
)

// AdaptiveConfig drives epoch-based adaptive ARQ: at the start of each
// epoch a channel predictor forecasts the link state and the link layer
// switches between a good-channel parameter set (long packets, little or no
// FEC) and a bad-channel set (short packets, strong FEC) — the paper's
// "adaptation of ARQ to the current channel state".
type AdaptiveConfig struct {
	// Epoch is the adaptation granularity.
	Epoch sim.Time
	// GoodParams is used when the predictor forecasts a good channel.
	GoodParams Params
	// BadParams is used when the predictor forecasts a bad channel.
	BadParams Params
	// TotalPackets is the number of GoodParams-sized payload units to move.
	// (BadParams epochs move the same payload in more, smaller packets.)
	TotalPackets int
}

// DefaultAdaptiveConfig returns the E9 setup.
func DefaultAdaptiveConfig(total int) AdaptiveConfig {
	good := DefaultParams()
	good.PacketBytes = 1400
	good.Code = NoCode(1400)
	bad := DefaultParams()
	bad.PacketBytes = 300
	bad.Code = NewBCHLike(300, 12)
	return AdaptiveConfig{
		Epoch:        500 * sim.Millisecond,
		GoodParams:   good,
		BadParams:    bad,
		TotalPackets: total,
	}
}

// Validate checks the configuration.
func (c AdaptiveConfig) Validate() error {
	if c.Epoch <= 0 || c.TotalPackets <= 0 {
		return fmt.Errorf("link: invalid adaptive config")
	}
	if err := c.GoodParams.Validate(); err != nil {
		return err
	}
	return c.BadParams.Validate()
}

// AdaptiveResult reports an adaptive transfer's outcome.
type AdaptiveResult struct {
	DeliveredBytes int
	LostPackets    int
	Transmissions  int
	Acks           int
	Duration       sim.Time
	EnergyJ        float64
	GoodputBps     float64
	EnergyPerBitJ  float64

	PredictorName  string
	Accuracy       float64
	PredictionCost float64
	EpochsGood     int
	EpochsBad      int
}

// RunAdaptive moves cfg.TotalPackets worth of payload, re-deciding link
// parameters every epoch from the predictor's forecast. Accuracy is scored
// against the channel state at each epoch's start; the Oracle predictor is
// primed with that state, making it the upper bound the paper's prediction
// trade-off is measured against.
func RunAdaptive(s *sim.Simulator, ch *channel.GilbertElliott, pred channel.Predictor, cfg AdaptiveConfig) AdaptiveResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var (
		acc         channel.Accuracy
		out         AdaptiveResult
		payloadLeft = cfg.TotalPackets * cfg.GoodParams.PacketBytes
	)
	for payloadLeft > 0 {
		actual := ch.State()
		if o, isOracle := pred.(*channel.Oracle); isOracle {
			o.Prime(actual)
		}
		forecast := pred.Predict()
		out.PredictionCost += pred.Cost()

		params := cfg.GoodParams
		if forecast == channel.Bad {
			params = cfg.BadParams
			out.EpochsBad++
		} else {
			out.EpochsGood++
		}

		// The epoch is time-bounded: the transfer stops opening new work at
		// the deadline so one bad epoch cannot drag the stale parameter set
		// across several channel periods. The packet quota merely caps the
		// epoch at the remaining payload.
		params.Deadline = s.Now() + cfg.Epoch
		remainingPkts := (payloadLeft + params.PacketBytes - 1) / params.PacketBytes

		r := Transfer(s, ch, params, remainingPkts)
		out.DeliveredBytes += r.DeliveredPackets * params.PacketBytes
		out.LostPackets += r.LostPackets
		out.Transmissions += r.Transmissions
		out.Acks += r.Acks
		out.Duration += r.Duration
		out.EnergyJ += r.EnergyJ
		processed := (r.DeliveredPackets + r.LostPackets) * params.PacketBytes
		if processed == 0 {
			// Guarantee progress even if a pathological epoch finished no
			// packet at all (e.g. a deadline shorter than one exchange).
			processed = params.PacketBytes
			out.LostPackets++
		}
		payloadLeft -= processed

		acc.Record(forecast, actual)
		pred.Observe(actual)
	}
	out.PredictorName = pred.Name()
	out.Accuracy = acc.Rate()
	bits := float64(out.DeliveredBytes * 8)
	if out.Duration > 0 {
		out.GoodputBps = bits / out.Duration.Seconds()
	}
	if bits > 0 {
		out.EnergyPerBitJ = out.EnergyJ / bits
	}
	return out
}
