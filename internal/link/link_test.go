package link

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/sim"
)

// uniformChannel builds a frozen channel with a fixed BER.
func uniformChannel(s *sim.Simulator, ber float64) *channel.GilbertElliott {
	badBer := ber * 10
	if badBer > 0.5 {
		badBer = 0.5
	}
	if badBer <= ber {
		badBer = ber + 1e-9
	}
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Hour, MeanBad: sim.Second,
		BERGood: ber, BERBad: badBer,
	})
	ch.Freeze()
	return ch
}

func TestCodeConstruction(t *testing.T) {
	c := NoCode(1400)
	if c.N != 1400 || c.T != 0 || c.Overhead() != 1 {
		t.Errorf("NoCode wrong: %+v", c)
	}
	b := NewBCHLike(256, 8)
	if b.N <= b.K {
		t.Error("BCH-like code has no parity")
	}
	if !b.Corrects(8) || b.Corrects(9) {
		t.Error("correction threshold wrong")
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewBCHLikePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid code accepted")
		}
	}()
	NewBCHLike(0, 3)
}

func TestBlockErrorProb(t *testing.T) {
	c := NoCode(1000)
	if got := c.BlockErrorProb(0); got != 0 {
		t.Errorf("BER 0 → %v", got)
	}
	if got := c.BlockErrorProb(1); got != 1 {
		t.Errorf("BER 1 → %v", got)
	}
	// With no correction, block error ≈ PER.
	got := c.BlockErrorProb(1e-6)
	want := channel.PERFromBER(1e-6, 1000)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("uncoded block error %v != PER %v", got, want)
	}
	// Stronger codes have strictly lower block error rates.
	weak := NewBCHLike(1000, 2)
	strong := NewBCHLike(1000, 16)
	ber := 1e-4
	if !(strong.BlockErrorProb(ber) < weak.BlockErrorProb(ber)) {
		t.Error("stronger code not better")
	}
}

// Property: BlockErrorProb is within [0,1] and decreasing in T.
func TestBlockErrorProbProperty(t *testing.T) {
	prop := func(berRaw uint16, tRaw uint8) bool {
		ber := float64(berRaw%1000)/1e6 + 1e-9 // up to 1e-3
		t1 := int(tRaw % 16)
		c1 := NewBCHLike(512, t1)
		c2 := NewBCHLike(512, t1+4)
		p1 := c1.BlockErrorProb(ber)
		p2 := c2.BlockErrorProb(ber)
		if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
			return false
		}
		return p2 <= p1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Code = NoCode(100) // mismatched block
	if err := p.Validate(); err == nil {
		t.Error("block/payload mismatch accepted")
	}
	p2 := DefaultParams()
	p2.ARQ = GoBackN
	p2.Window = 0
	if err := p2.Validate(); err == nil {
		t.Error("zero window accepted")
	}
}

func TestARQKindString(t *testing.T) {
	for _, k := range []ARQKind{NoARQ, StopAndWait, GoBackN, SelectiveRepeat} {
		if k.String() == "" {
			t.Error("missing name")
		}
	}
}

func transferOn(t *testing.T, seed int64, ber float64, mutate func(*Params), n int) Result {
	t.Helper()
	s := sim.New(seed)
	ch := uniformChannel(s, ber)
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	return Transfer(s, ch, p, n)
}

func TestCleanChannelAllSchemesDeliverAll(t *testing.T) {
	for _, arq := range []ARQKind{NoARQ, StopAndWait, GoBackN, SelectiveRepeat} {
		r := transferOn(t, 1, 1e-9, func(p *Params) { p.ARQ = arq }, 100)
		if r.DeliveredPackets != 100 || r.LostPackets != 0 {
			t.Errorf("%v: delivered %d lost %d, want 100/0", arq, r.DeliveredPackets, r.LostPackets)
		}
		if r.Transmissions != 100 {
			t.Errorf("%v: %d transmissions on a clean channel, want 100", arq, r.Transmissions)
		}
	}
}

func TestLossyChannelARQRecovers(t *testing.T) {
	// PER ≈ 11% at ber=1e-5 with 1416-byte frames.
	for _, arq := range []ARQKind{StopAndWait, GoBackN, SelectiveRepeat} {
		r := transferOn(t, 2, 1e-5, func(p *Params) { p.ARQ = arq }, 300)
		if r.DeliveredPackets != 300 {
			t.Errorf("%v: delivered %d, want 300", arq, r.DeliveredPackets)
		}
		if r.Transmissions <= 300 {
			t.Errorf("%v: no retransmissions on lossy channel", arq)
		}
	}
}

func TestNoARQHasResidualLoss(t *testing.T) {
	r := transferOn(t, 3, 1e-5, func(p *Params) { p.ARQ = NoARQ }, 500)
	if r.LostPackets == 0 {
		t.Error("NoARQ lost nothing on a lossy channel")
	}
	if r.DeliveredPackets+r.LostPackets != 500 {
		t.Error("packets unaccounted")
	}
	if r.Transmissions != 500 {
		t.Errorf("NoARQ transmissions = %d, want exactly 500", r.Transmissions)
	}
}

func TestFECMasksErrorsWithoutRetransmission(t *testing.T) {
	// At ber=1e-5, a t=16 code on 1400-byte blocks virtually eliminates
	// block errors (mean errors ≈ 0.11 per block).
	r := transferOn(t, 4, 1e-5, func(p *Params) {
		p.ARQ = NoARQ
		p.Code = NewBCHLike(1400, 16)
	}, 500)
	if r.LostPackets != 0 {
		t.Errorf("FEC-protected transfer lost %d packets", r.LostPackets)
	}
}

func TestGoBackNWastesMoreThanSelectiveRepeat(t *testing.T) {
	gbn := transferOn(t, 5, 2e-5, func(p *Params) { p.ARQ = GoBackN; p.Window = 8 }, 400)
	sr := transferOn(t, 5, 2e-5, func(p *Params) { p.ARQ = SelectiveRepeat; p.Window = 8 }, 400)
	if gbn.Transmissions <= sr.Transmissions {
		t.Errorf("GBN tx=%d should exceed SR tx=%d under loss (window rewind waste)",
			gbn.Transmissions, sr.Transmissions)
	}
}

func TestPipeliningBeatsStopAndWaitWithDelay(t *testing.T) {
	slow := func(p *Params) { p.PropDelay = 2 * sim.Millisecond }
	sw := transferOn(t, 6, 1e-9, func(p *Params) { slow(p); p.ARQ = StopAndWait }, 200)
	sr := transferOn(t, 6, 1e-9, func(p *Params) { slow(p); p.ARQ = SelectiveRepeat; p.Window = 8 }, 200)
	// Stop-and-wait pays the full RTT per packet (~9.7 ms/packet) while SR
	// keeps the pipe full, approaching link saturation (~2 Mb/s).
	if sr.GoodputBps <= sw.GoodputBps*1.5 {
		t.Errorf("SR goodput %.0f should be ≥1.5x stop-and-wait %.0f with 2ms RTT legs",
			sr.GoodputBps, sw.GoodputBps)
	}
	if sr.GoodputBps < 1.8e6 {
		t.Errorf("SR goodput %.0f should approach the 2 Mb/s link rate", sr.GoodputBps)
	}
}

func TestEnergyCrossoverARQvsFEC(t *testing.T) {
	// The paper's trade-off: at low BER plain ARQ is cheapest (no parity
	// overhead); at high BER FEC-protected transfer wins (retransmissions
	// explode).
	arqAt := func(ber float64) float64 {
		return transferOn(t, 7, ber, func(p *Params) { p.ARQ = SelectiveRepeat }, 200).EnergyPerBitJ
	}
	hybridAt := func(ber float64) float64 {
		return transferOn(t, 7, ber, func(p *Params) {
			p.ARQ = SelectiveRepeat
			p.Code = NewBCHLike(1400, 16)
		}, 200).EnergyPerBitJ
	}
	lowBer, highBer := 1e-7, 8e-5
	if !(arqAt(lowBer) < hybridAt(lowBer)) {
		t.Errorf("at BER %g plain ARQ (%.3e) should beat hybrid (%.3e)",
			lowBer, arqAt(lowBer), hybridAt(lowBer))
	}
	if !(hybridAt(highBer) < arqAt(highBer)) {
		t.Errorf("at BER %g hybrid (%.3e) should beat plain ARQ (%.3e)",
			highBer, hybridAt(highBer), arqAt(highBer))
	}
}

// Property: selective repeat delivers every packet exactly once across a
// range of loss rates and seeds.
func TestSelectiveRepeatExactlyOnceProperty(t *testing.T) {
	prop := func(seed int64, berRaw uint16) bool {
		ber := float64(berRaw%60) * 1e-6 // 0 .. 6e-5
		s := sim.New(seed)
		ch := uniformChannel(s, ber+1e-9)
		p := DefaultParams()
		p.ARQ = SelectiveRepeat
		r := Transfer(s, ch, p, 60)
		return r.DeliveredPackets == 60 && r.LostPackets == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveBeatsStaticOnBurstyChannel(t *testing.T) {
	run := func(pred channel.Predictor, static *Params) AdaptiveResult {
		s := sim.New(11)
		ch := channel.NewGilbertElliott(s, channel.GEParams{
			MeanGood: 2 * sim.Second, MeanBad: 700 * sim.Millisecond,
			BERGood: 1e-6, BERBad: 2e-4,
		})
		cfg := DefaultAdaptiveConfig(800)
		if static != nil {
			cfg.GoodParams = *static
			cfg.BadParams = *static
		}
		return RunAdaptive(s, ch, pred, cfg)
	}
	adaptive := run(channel.NewLastState(), nil)
	big := DefaultParams() // always large packets, no FEC
	staticBig := run(channel.NewLastState(), &big)
	if adaptive.EnergyPerBitJ >= staticBig.EnergyPerBitJ {
		t.Errorf("adaptive energy/bit %.3e should beat static-large %.3e on bursty channel",
			adaptive.EnergyPerBitJ, staticBig.EnergyPerBitJ)
	}
	if adaptive.Accuracy < 0.6 {
		t.Errorf("last-state accuracy %.2f unexpectedly low", adaptive.Accuracy)
	}
}

func TestOracleIsUpperBound(t *testing.T) {
	run := func(pred channel.Predictor) AdaptiveResult {
		s := sim.New(13)
		ch := channel.NewGilbertElliott(s, channel.GEParams{
			MeanGood: 2 * sim.Second, MeanBad: 700 * sim.Millisecond,
			BERGood: 1e-6, BERBad: 2e-4,
		})
		return RunAdaptive(s, ch, pred, DefaultAdaptiveConfig(600))
	}
	oracle := run(channel.NewOracle())
	if oracle.Accuracy != 1.0 {
		t.Errorf("oracle accuracy = %.3f, want 1.0", oracle.Accuracy)
	}
	if oracle.PredictionCost != 0 {
		t.Error("oracle should have zero prediction cost")
	}
	last := run(channel.NewLastState())
	// The oracle can only do as well or better on energy per bit (allow a
	// small tolerance for stochastic variation between runs).
	if oracle.EnergyPerBitJ > last.EnergyPerBitJ*1.10 {
		t.Errorf("oracle energy/bit %.3e noticeably worse than last-state %.3e",
			oracle.EnergyPerBitJ, last.EnergyPerBitJ)
	}
}

func TestAdaptiveDeliversEverything(t *testing.T) {
	s := sim.New(17)
	ch := channel.NewGilbertElliott(s, channel.GEParams{
		MeanGood: sim.Second, MeanBad: 300 * sim.Millisecond,
		BERGood: 1e-6, BERBad: 1e-4,
	})
	cfg := DefaultAdaptiveConfig(400)
	r := RunAdaptive(s, ch, channel.NewMarkov(), cfg)
	want := 400 * cfg.GoodParams.PacketBytes
	// SR with a generous retry limit recovers everything on this channel.
	// The final epoch's packet quota rounds the payload up, so delivery may
	// overshoot by up to one packet of either parameter set.
	slack := cfg.GoodParams.PacketBytes + cfg.BadParams.PacketBytes
	if r.DeliveredBytes < want || r.DeliveredBytes > want+slack {
		t.Errorf("delivered %d bytes, want %d (+%d slack)", r.DeliveredBytes, want, slack)
	}
	if r.EpochsGood+r.EpochsBad == 0 {
		t.Error("no epochs recorded")
	}
}
