package link

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
)

// ARQKind selects the retransmission discipline.
type ARQKind int

// Retransmission disciplines.
const (
	// NoARQ sends each packet once; uncorrectable packets are lost.
	NoARQ ARQKind = iota
	// StopAndWait waits for each packet's acknowledgement before the next.
	StopAndWait
	// GoBackN pipelines a window and rewinds to the first loss.
	GoBackN
	// SelectiveRepeat pipelines a window and retransmits only losses.
	SelectiveRepeat
)

// String names the discipline.
func (k ARQKind) String() string {
	switch k {
	case NoARQ:
		return "no-arq"
	case StopAndWait:
		return "stop-and-wait"
	case GoBackN:
		return "go-back-n"
	case SelectiveRepeat:
		return "selective-repeat"
	default:
		return fmt.Sprintf("arq(%d)", int(k))
	}
}

// Params configures a link-layer transfer.
type Params struct {
	// PacketBytes is the payload per packet before FEC expansion.
	PacketBytes int
	// HeaderBytes is the per-packet link header (not FEC protected, small
	// enough that we fold its errors into the coded block).
	HeaderBytes int
	// Code is the FEC applied to each packet.
	Code Code
	// ARQ is the retransmission discipline.
	ARQ ARQKind
	// Window is the pipeline depth for GoBackN/SelectiveRepeat.
	Window int
	// BitRate is the link rate in bits/second.
	BitRate float64
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Time
	// AckBytes is the acknowledgement size; ACKs are assumed error-free
	// (they are short and heavily protected), a standard modelling choice.
	AckBytes int
	// RetryLimit bounds per-packet retransmissions (ARQ modes). Exceeding
	// it counts the packet as lost.
	RetryLimit int

	// Deadline, when nonzero, is an absolute simulation time after which
	// the transfer stops starting new work and returns a partial result.
	// Adaptive ARQ uses it to keep adaptation epochs time-bounded.
	Deadline sim.Time

	// Radio power model (client-grade WNIC by default).
	TxPower, RxPower, IdlePower float64
}

// DefaultParams returns the E8/E9 baseline: 1400-byte packets over a
// 2 Mb/s link with an 802.11b-class power profile.
func DefaultParams() Params {
	return Params{
		PacketBytes: 1400,
		HeaderBytes: 16,
		Code:        NoCode(1400),
		ARQ:         SelectiveRepeat,
		Window:      8,
		BitRate:     2e6,
		PropDelay:   5 * sim.Microsecond,
		AckBytes:    16,
		RetryLimit:  16,
		TxPower:     1.65,
		RxPower:     1.40,
		IdlePower:   1.35,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.PacketBytes <= 0 || p.BitRate <= 0 {
		return fmt.Errorf("link: invalid packet/rate")
	}
	if err := p.Code.Validate(); err != nil {
		return err
	}
	if p.Code.K != p.PacketBytes {
		return fmt.Errorf("link: code block (%d) must equal packet payload (%d)", p.Code.K, p.PacketBytes)
	}
	if (p.ARQ == GoBackN || p.ARQ == SelectiveRepeat) && p.Window <= 0 {
		return fmt.Errorf("link: window must be positive for pipelined ARQ")
	}
	return nil
}

// wireBytes returns a packet's on-air size after FEC and header.
func (p Params) wireBytes() int { return p.Code.N + p.HeaderBytes }

// airTime returns the on-air time of one data packet.
func (p Params) airTime() sim.Time {
	return sim.FromSeconds(float64(p.wireBytes()*8) / p.BitRate)
}

// ackTime returns the on-air time of one acknowledgement.
func (p Params) ackTime() sim.Time {
	return sim.FromSeconds(float64(p.AckBytes*8) / p.BitRate)
}

// Result reports a transfer's outcome.
type Result struct {
	DeliveredPackets int
	LostPackets      int
	Transmissions    int // data packets put on the air, incl. retransmissions
	Acks             int
	Duration         sim.Time
	GoodputBps       float64
	EnergyJ          float64 // sender + receiver
	EnergyPerBitJ    float64 // per *delivered* payload bit
}

// Transfer moves totalPackets packets across the channel under the given
// parameters and returns the outcome. Energy combines both radios: TX/RX
// airtime at their respective powers plus idle listening for the rest of
// the transfer duration.
func Transfer(s *sim.Simulator, ch *channel.GilbertElliott, p Params, totalPackets int) Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if totalPackets <= 0 {
		panic("link: totalPackets must be positive")
	}
	// Reserve the transfer's concurrent event capacity up front so the
	// per-packet scheduling hot path never grows the slab mid-transfer.
	s.Reserve(window(p))
	eng := &engine{s: s, ch: ch, p: p, total: totalPackets}
	switch p.ARQ {
	case NoARQ:
		eng.runNoARQ()
	case StopAndWait:
		eng.runStopAndWait()
	case GoBackN:
		eng.runGoBackN()
	case SelectiveRepeat:
		eng.runSelectiveRepeat()
	}
	s.Run()
	return eng.result()
}

// window returns the number of concurrently outstanding events a transfer
// keeps in flight, used to size the engine's event batch up front.
func window(p Params) int {
	if p.ARQ == GoBackN || p.ARQ == SelectiveRepeat {
		return p.Window + 1 // pipelined data plus one ACK in flight
	}
	return 2
}

// engine holds shared transfer state. A finished engine deliberately never
// cancels its leftover queued events: their completions still draw from
// the channel's error process when they fire (the done-guards make them
// no-ops otherwise), and the adaptive-ARQ experiments run several
// transfers on one simulator — cancelling would shift every later RNG
// draw.
type engine struct {
	s     *sim.Simulator
	ch    *channel.GilbertElliott
	p     Params
	total int

	startAt   sim.Time
	endAt     sim.Time
	delivered int
	lost      int
	txCount   int
	ackCount  int
	started   bool
	done      bool
}

func (e *engine) begin() {
	if !e.started {
		e.started = true
		e.startAt = e.s.Now()
	}
}

// expired reports whether the transfer's deadline has passed.
func (e *engine) expired() bool {
	return e.p.Deadline > 0 && e.s.Now() >= e.p.Deadline
}

// finish stamps the transfer end and stops the simulator loop: the channel
// process schedules events forever, so Transfer's Run would never drain.
// Engines are reused never; the done flag also inert-izes any of this
// engine's events that remain queued when the same simulator hosts a
// subsequent transfer (adaptive ARQ runs one per epoch).
func (e *engine) finish() {
	if e.done {
		return
	}
	e.done = true
	e.endAt = e.s.Now()
	e.s.Stop()
}

// sendPacket models one data-packet transmission: occupies airtime, then
// samples the channel at completion. ok means the FEC decoded the block.
func (e *engine) sendPacket(done func(ok bool)) {
	e.begin()
	e.txCount++
	e.s.Schedule(e.p.airTime(), func() {
		errs := e.ch.SampleBitErrors(e.p.wireBytes())
		done(e.p.Code.Corrects(errs))
	})
}

// ackDelay is the time from data-packet completion to ACK receipt.
func (e *engine) ackDelay() sim.Time {
	return 2*e.p.PropDelay + e.p.ackTime()
}

func (e *engine) result() Result {
	dur := e.endAt - e.startAt
	r := Result{
		DeliveredPackets: e.delivered,
		LostPackets:      e.lost,
		Transmissions:    e.txCount,
		Acks:             e.ackCount,
		Duration:         dur,
	}
	if dur <= 0 {
		return r
	}
	payloadBits := float64(e.delivered * e.p.PacketBytes * 8)
	r.GoodputBps = payloadBits / dur.Seconds()

	air := e.p.airTime().Seconds()
	ack := e.p.ackTime().Seconds()
	txTime := float64(e.txCount) * air
	ackTime := float64(e.ackCount) * ack
	total := dur.Seconds()
	senderE := txTime*e.p.TxPower + ackTime*e.p.RxPower +
		(total-txTime-ackTime)*e.p.IdlePower
	receiverE := txTime*e.p.RxPower + ackTime*e.p.TxPower +
		(total-txTime-ackTime)*e.p.IdlePower
	r.EnergyJ = senderE + receiverE
	if payloadBits > 0 {
		r.EnergyPerBitJ = r.EnergyJ / payloadBits
	}
	return r
}

// --- NoARQ: fire and forget ---

func (e *engine) runNoARQ() {
	var sendNext func(i int)
	sendNext = func(i int) {
		if e.done {
			return
		}
		if i >= e.total || e.expired() {
			e.finish()
			return
		}
		e.sendPacket(func(ok bool) {
			if e.done {
				return
			}
			if ok {
				e.delivered++
			} else {
				e.lost++
			}
			sendNext(i + 1)
		})
	}
	sendNext(0)
}

// --- Stop-and-wait ---

func (e *engine) runStopAndWait() {
	var sendIdx func(i, attempt int)
	sendIdx = func(i, attempt int) {
		if e.done {
			return
		}
		if i >= e.total || e.expired() {
			e.finish()
			return
		}
		e.sendPacket(func(ok bool) {
			if e.done {
				return
			}
			// Receiver replies with an ACK/NACK after the round trip.
			e.ackCount++
			e.s.Schedule(e.ackDelay(), func() {
				if e.done {
					return
				}
				if ok {
					e.delivered++
					sendIdx(i+1, 0)
					return
				}
				if attempt+1 > e.p.RetryLimit {
					e.lost++
					sendIdx(i+1, 0)
					return
				}
				sendIdx(i, attempt+1)
			})
		})
	}
	sendIdx(0, 0)
}

// --- Go-back-N ---

func (e *engine) runGoBackN() {
	base, next := 0, 0
	expected := 0 // receiver's in-order expectation
	attempts := make(map[int]int)
	sending := false

	var pump func()
	var onDataArrival func(seq int, ok bool)

	pump = func() {
		if e.done || sending {
			return
		}
		if base >= e.total || (e.expired() && next <= base) {
			e.finish()
			return
		}
		if e.expired() || next >= base+e.p.Window || next >= e.total {
			return // window full or deadline passed; wait for ACK drainage
		}
		seq := next
		next++
		sending = true
		e.sendPacket(func(ok bool) {
			if e.done {
				return
			}
			sending = false
			e.s.Schedule(e.p.PropDelay, func() { onDataArrival(seq, ok) })
			pump()
		})
	}

	onDataArrival = func(seq int, ok bool) {
		if e.done {
			return
		}
		// Receiver: in-order acceptance only.
		if ok && seq == expected {
			expected++
			e.delivered++
		}
		// Cumulative ACK for everything below `expected`.
		e.ackCount++
		e.s.Schedule(e.p.PropDelay+e.p.ackTime(), func() {
			if e.done {
				return
			}
			if e.expired() {
				// Account the final in-flight state, then stop.
				if expected > base {
					base = expected
				}
				e.finish()
				return
			}
			if expected > base {
				base = expected
				for k := range attempts {
					if k < base {
						delete(attempts, k)
					}
				}
				pump()
				return
			}
			// Duplicate ACK: the window's head was lost — go back.
			if seq >= base {
				attempts[base]++
				if attempts[base] > e.p.RetryLimit {
					// Skip the poisoned head to avoid livelock; counts lost.
					e.lost++
					delete(attempts, base)
					base++
					if expected < base {
						expected = base
					}
				}
				next = base
				pump()
			}
		})
	}

	pump()
}

// --- Selective repeat ---

func (e *engine) runSelectiveRepeat() {
	acked := make([]bool, e.total)
	lostSet := make([]bool, e.total)
	attempts := make(map[int]int)
	base := 0
	sending := false
	var queue []int // retransmission queue
	nextFresh := 0

	var pump func()
	pump = func() {
		if e.done || sending {
			return
		}
		// Advance base past acked/lost packets.
		for base < e.total && (acked[base] || lostSet[base]) {
			base++
		}
		if base >= e.total || e.expired() {
			e.finish()
			return
		}
		// Pick retransmission first, else a fresh packet inside the window.
		seq := -1
		for len(queue) > 0 {
			cand := queue[0]
			queue = queue[1:]
			if !acked[cand] && !lostSet[cand] {
				seq = cand
				break
			}
		}
		if seq == -1 {
			if nextFresh < e.total && nextFresh < base+e.p.Window {
				seq = nextFresh
				nextFresh++
			} else {
				return // waiting for ACKs/NACKs
			}
		}
		sending = true
		e.sendPacket(func(ok bool) {
			if e.done {
				return
			}
			sending = false
			e.s.Schedule(e.ackDelay(), func() {
				if e.done {
					return
				}
				e.ackCount++
				if ok {
					if !acked[seq] {
						acked[seq] = true
						e.delivered++
					}
				} else {
					attempts[seq]++
					if attempts[seq] > e.p.RetryLimit {
						lostSet[seq] = true
						e.lost++
					} else {
						queue = append(queue, seq)
					}
				}
				pump()
			})
			pump()
		})
	}
	pump()
}
