package power

import (
	"math"
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

func TestLedgerAccounting(t *testing.T) {
	p := radio.WLAN80211b()
	l := NewLedger(p, 3)

	// Station 1: 2 s sleep, 10 ms idle, one Sleep→Idle transition.
	l.Dwell(1, radio.Sleep, 2*sim.Second)
	l.Dwell(1, radio.Idle, 10*sim.Millisecond)
	lat := l.Transition(1, radio.Sleep, radio.Idle)
	if lat != 2*sim.Millisecond {
		t.Fatalf("Sleep→Idle latency = %v, want 2ms", lat)
	}
	want := 2.0*p.Power[radio.Sleep] + 0.010*p.Power[radio.Idle] + 0.002
	if got := l.EnergyJ(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyJ(1) = %g, want %g", got, want)
	}

	// Station 0: never charged — zero energy.
	if got := l.EnergyJ(0); got != 0 {
		t.Fatalf("EnergyJ(0) = %g, want 0", got)
	}

	// TotalJ aggregates the population.
	l.Dwell(2, radio.RX, sim.Second)
	wantTotal := want + 1.0*p.Power[radio.RX]
	if got := l.TotalJ(); math.Abs(got-wantTotal) > 1e-12 {
		t.Fatalf("TotalJ = %g, want %g", got, wantTotal)
	}
	if got := l.TotalTimeIn(radio.Sleep); got != 2*sim.Second {
		t.Fatalf("TotalTimeIn(Sleep) = %v, want 2s", got)
	}
	if got := l.TimeIn(2, radio.RX); got != sim.Second {
		t.Fatalf("TimeIn(2, RX) = %v, want 1s", got)
	}
}

func TestLedgerEnsureAndReset(t *testing.T) {
	p := radio.WLAN80211b()
	l := NewLedger(p, 0)
	if l.Len() != 0 {
		t.Fatalf("empty ledger Len = %d", l.Len())
	}
	l.Ensure(10)
	if l.Len() != 10 {
		t.Fatalf("after Ensure(10) Len = %d", l.Len())
	}
	l.Ensure(4) // shrink request is a no-op
	if l.Len() != 10 {
		t.Fatalf("Ensure(4) shrank ledger to %d", l.Len())
	}

	l.Dwell(7, radio.TX, sim.Second)
	l.Transition(7, radio.Idle, radio.Sleep)
	l.Reset(7)
	if got := l.EnergyJ(7); got != 0 {
		t.Fatalf("after Reset, EnergyJ = %g, want 0", got)
	}
	if got := l.TimeIn(7, radio.TX); got != 0 {
		t.Fatalf("after Reset, TimeIn(TX) = %v, want 0", got)
	}
}

// TestLedgerChargeZeroAlloc pins the hot path: charging dwell time and
// transitions into an ensured ledger must not allocate.
func TestLedgerChargeZeroAlloc(t *testing.T) {
	l := NewLedger(radio.WLAN80211b(), 64)
	if a := testing.AllocsPerRun(100, func() {
		for id := int32(0); id < 64; id++ {
			l.Dwell(id, radio.Sleep, sim.Millisecond)
			l.Transition(id, radio.Sleep, radio.Idle)
		}
	}); a != 0 {
		t.Errorf("ledger charge path allocates %v per op, want 0", a)
	}
}
