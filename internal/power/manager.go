package power

import (
	"sort"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Request is one unit of work needing the device awake (e.g. an inbound
// packet to receive).
type Request struct {
	Arrival sim.Time
	Service sim.Time // time the device spends in RX serving it
}

// RunResult reports a DPM policy evaluation.
type RunResult struct {
	Policy        string
	EnergyJ       float64
	AvgPowerW     float64
	MeanDelay     sim.Time // added latency: service start − arrival
	MaxDelay      sim.Time
	Sleeps        int
	Served        int
	SleepFraction float64
}

// Manager drives one device through a request trace under a policy.
type Manager struct {
	sim    *sim.Simulator
	dev    *radio.Device
	policy Policy

	queue      []Request
	pending    []Request // arrived, waiting for the device
	serving    bool
	idleSince  sim.Time
	sleepTimer *sim.Timer
	totalDelay sim.Time
	maxDelay   sim.Time
	served     int
	sleeps     int
}

// Run evaluates a policy over a request trace on a fresh device built from
// the profile, returning energy and latency statistics. The trace must be
// sorted by arrival time.
func Run(s *sim.Simulator, profile *radio.Profile, policy Policy, trace []Request) RunResult {
	dev := radio.NewDeviceInState(s, profile, radio.Idle)
	m := &Manager{sim: s, dev: dev, policy: policy, queue: append([]Request(nil), trace...)}
	sort.Slice(m.queue, func(i, j int) bool { return m.queue[i].Arrival < m.queue[j].Arrival })
	m.sleepTimer = sim.NewTimer(s, m.onSleepTimeout)
	m.idleSince = s.Now()

	for _, r := range m.queue {
		r := r
		s.At(r.Arrival, func() { m.onArrival(r) })
	}
	m.armSleep()
	s.Run()

	meter := dev.Meter()
	res := RunResult{
		Policy:        policy.Name(),
		EnergyJ:       meter.TotalEnergy(),
		AvgPowerW:     meter.AveragePower(),
		Sleeps:        m.sleeps,
		Served:        m.served,
		SleepFraction: meter.StateFraction(radio.Sleep),
	}
	if m.served > 0 {
		res.MeanDelay = m.totalDelay / sim.Time(m.served)
		res.MaxDelay = m.maxDelay
	}
	return res
}

// nextArrivalAfter returns the next request arrival strictly after t, or
// sim.MaxTime. Only the oracle consults this.
func (m *Manager) nextArrivalAfter(t sim.Time) sim.Time {
	i := sort.Search(len(m.queue), func(i int) bool { return m.queue[i].Arrival > t })
	if i == len(m.queue) {
		return sim.MaxTime
	}
	return m.queue[i].Arrival
}

func (m *Manager) onArrival(r Request) {
	m.pending = append(m.pending, r)
	m.sleepTimer.Stop()
	switch {
	case m.serving:
		// Queued; will be served after the current request.
	case m.dev.State() == radio.Idle && !m.dev.Transitioning():
		// The idle period ends now without a sleep: adaptive policies still
		// need to observe its length.
		m.policy.ObserveIdle(m.sim.Now() - m.idleSince)
		m.serveNext()
	case m.dev.State() == radio.Sleep || m.dev.Transitioning():
		m.wake()
	}
}

func (m *Manager) wake() {
	if m.dev.Transitioning() {
		return // wake (or sleep) in flight; completion logic handles it
	}
	if m.dev.State() != radio.Sleep {
		return
	}
	m.policy.ObserveIdle(m.sim.Now() - m.idleSince)
	m.dev.SetState(radio.Idle, func() {
		if len(m.pending) > 0 && !m.serving {
			m.serveNext()
		}
	})
}

func (m *Manager) serveNext() {
	if len(m.pending) == 0 || m.serving {
		return
	}
	r := m.pending[0]
	m.pending = m.pending[1:]
	m.serving = true
	delay := m.sim.Now() - r.Arrival
	m.totalDelay += delay
	if delay > m.maxDelay {
		m.maxDelay = delay
	}
	m.served++
	m.dev.OccupyFor(radio.RX, r.Service, radio.Idle, func() {
		m.serving = false
		if len(m.pending) > 0 {
			m.serveNext()
			return
		}
		m.becameIdle()
	})
}

func (m *Manager) becameIdle() {
	m.idleSince = m.sim.Now()
	m.armSleep()
}

func (m *Manager) armSleep() {
	next := m.nextArrivalAfter(m.sim.Now())
	rel := sim.MaxTime
	if next != sim.MaxTime {
		rel = next - m.sim.Now()
	}
	delay := m.policy.SleepDelay(rel)
	if delay == sim.MaxTime {
		return
	}
	if delay == 0 {
		m.goToSleep()
		return
	}
	m.sleepTimer.Reset(delay)
}

func (m *Manager) onSleepTimeout() { m.goToSleep() }

func (m *Manager) goToSleep() {
	if m.serving || len(m.pending) > 0 {
		return
	}
	if m.dev.State() != radio.Idle || m.dev.Transitioning() {
		return
	}
	m.sleeps++
	m.dev.SetState(radio.Sleep, func() {
		// An arrival may have landed during the transition.
		if len(m.pending) > 0 {
			m.wake()
		}
	})
}
