package power

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

// burstyTrace builds a trace of request bursts separated by long idle gaps —
// the regime where DPM pays off.
func burstyTrace(nBursts, perBurst int, gap sim.Time) []Request {
	var tr []Request
	t := sim.Second
	for b := 0; b < nBursts; b++ {
		for i := 0; i < perBurst; i++ {
			tr = append(tr, Request{Arrival: t, Service: 2 * sim.Millisecond})
			t += 5 * sim.Millisecond
		}
		t += gap
	}
	return tr
}

func TestBreakeven(t *testing.T) {
	p := radio.WLAN80211b()
	be := Breakeven(p)
	// Transition energies 0.001+0.002 J over (1.35-0.045) W ≈ 2.3 ms, but
	// latency floor is 1+2 = 3 ms.
	if be != 3*sim.Millisecond {
		t.Errorf("breakeven = %v, want 3ms (latency floor)", be)
	}
}

func TestBreakevenNoSavings(t *testing.T) {
	p := radio.WLAN80211b()
	p.Power[radio.Sleep] = p.Power[radio.Idle] // sleep saves nothing
	if Breakeven(p) != sim.MaxTime {
		t.Error("breakeven should be infinite when sleep saves nothing")
	}
}

func TestAlwaysOnNeverSleeps(t *testing.T) {
	s := sim.New(1)
	res := Run(s, radio.WLAN80211b(), AlwaysOn{}, burstyTrace(5, 10, 2*sim.Second))
	if res.Sleeps != 0 {
		t.Errorf("always-on slept %d times", res.Sleeps)
	}
	if res.MeanDelay != 0 {
		t.Errorf("always-on added delay %v", res.MeanDelay)
	}
	if res.SleepFraction != 0 {
		t.Error("always-on sleep fraction nonzero")
	}
}

func TestTimeoutSavesEnergy(t *testing.T) {
	trace := burstyTrace(10, 20, 5*sim.Second)
	run := func(p Policy) RunResult {
		s := sim.New(2)
		return Run(s, radio.WLAN80211b(), p, trace)
	}
	on := run(AlwaysOn{})
	to := run(&FixedTimeout{Timeout: 100 * sim.Millisecond})
	if to.EnergyJ >= on.EnergyJ/2 {
		t.Errorf("timeout energy %.1f J should be well below always-on %.1f J", to.EnergyJ, on.EnergyJ)
	}
	if to.Sleeps == 0 {
		t.Error("timeout policy never slept")
	}
	if to.Served != on.Served {
		t.Errorf("served %d vs %d: policies must not lose work", to.Served, on.Served)
	}
}

func TestTimeoutAddsWakeLatency(t *testing.T) {
	trace := burstyTrace(10, 5, 5*sim.Second)
	s := sim.New(3)
	res := Run(s, radio.WLAN80211b(), &FixedTimeout{Timeout: 50 * sim.Millisecond}, trace)
	// First request of each burst pays the 2 ms sleep→idle wake.
	if res.MaxDelay < 2*sim.Millisecond {
		t.Errorf("max delay = %v, want ≥ 2ms wake latency", res.MaxDelay)
	}
}

func TestOracleBeatsRealizablePolicies(t *testing.T) {
	trace := burstyTrace(20, 10, 3*sim.Second)
	profile := radio.WLAN80211b()
	run := func(p Policy) RunResult {
		s := sim.New(4)
		return Run(s, profile, p, trace)
	}
	oracle := run(NewOracle(profile))
	timeout := run(&FixedTimeout{Timeout: 200 * sim.Millisecond})
	adaptive := run(NewAdaptiveTimeout(profile, 10*sim.Millisecond, sim.Second))
	pred := run(NewPredictive(profile, 0.3))
	for _, r := range []RunResult{timeout, adaptive, pred} {
		if oracle.EnergyJ > r.EnergyJ*1.02 {
			t.Errorf("oracle %.2f J worse than %s %.2f J", oracle.EnergyJ, r.Policy, r.EnergyJ)
		}
	}
	// And the oracle adds no unnecessary sleeps inside bursts.
	if oracle.MeanDelay > 3*sim.Millisecond {
		t.Errorf("oracle mean delay %v too high", oracle.MeanDelay)
	}
}

func TestAdaptiveTimeoutAdapts(t *testing.T) {
	profile := radio.WLAN80211b()
	p := NewAdaptiveTimeout(profile, 10*sim.Millisecond, sim.Second)
	start := p.Current()
	// Feed long idle periods: the timeout should shrink (sleep sooner).
	for i := 0; i < 10; i++ {
		p.ObserveIdle(10 * sim.Second)
	}
	if p.Current() >= start {
		t.Errorf("timeout did not shrink after long idles: %v -> %v", start, p.Current())
	}
	// Feed barely-past-timeout idles: it should grow back.
	shrunk := p.Current()
	for i := 0; i < 10; i++ {
		p.ObserveIdle(shrunk + sim.Millisecond)
	}
	if p.Current() <= shrunk {
		t.Errorf("timeout did not grow after premature sleeps: %v stayed", shrunk)
	}
}

func TestPredictiveSleepsImmediatelyOnLongIdlePattern(t *testing.T) {
	profile := radio.WLAN80211b()
	p := NewPredictive(profile, 0.5)
	for i := 0; i < 5; i++ {
		p.ObserveIdle(5 * sim.Second)
	}
	if d := p.SleepDelay(sim.MaxTime); d != 0 {
		t.Errorf("predictive should sleep immediately after long-idle history, got %v", d)
	}
}

func TestPredictiveHedgesOnShortIdlePattern(t *testing.T) {
	profile := radio.WLAN80211b()
	p := NewPredictive(profile, 0.5)
	for i := 0; i < 5; i++ {
		p.ObserveIdle(sim.Millisecond)
	}
	if d := p.SleepDelay(sim.MaxTime); d == 0 {
		t.Error("predictive should hedge when predicted idle is below breakeven")
	}
}

func TestOracleSkipsShortIdles(t *testing.T) {
	profile := radio.WLAN80211b()
	o := NewOracle(profile)
	if d := o.SleepDelay(sim.Millisecond); d != sim.MaxTime {
		t.Errorf("oracle slept for an idle below breakeven: %v", d)
	}
	if d := o.SleepDelay(10 * sim.Second); d != 0 {
		t.Errorf("oracle hesitated on a long idle: %v", d)
	}
}

func TestPoliciesServeAllRequests(t *testing.T) {
	trace := burstyTrace(15, 8, 2*sim.Second)
	profile := radio.WLAN80211b()
	policies := []Policy{
		AlwaysOn{},
		&FixedTimeout{Timeout: 20 * sim.Millisecond},
		NewAdaptiveTimeout(profile, 10*sim.Millisecond, sim.Second),
		NewPredictive(profile, 0.3),
		NewOracle(profile),
	}
	for _, p := range policies {
		s := sim.New(5)
		res := Run(s, profile, p, trace)
		if res.Served != len(trace) {
			t.Errorf("%s served %d of %d", p.Name(), res.Served, len(trace))
		}
	}
}

func TestEnergyDelayTradeoffAcrossTimeouts(t *testing.T) {
	// Smaller timeouts save more energy but add more delay.
	trace := burstyTrace(20, 10, 4*sim.Second)
	profile := radio.WLAN80211b()
	short := Run(sim.New(6), profile, &FixedTimeout{Timeout: 20 * sim.Millisecond}, trace)
	long := Run(sim.New(6), profile, &FixedTimeout{Timeout: 2 * sim.Second}, trace)
	if short.EnergyJ >= long.EnergyJ {
		t.Errorf("short timeout energy %.2f should beat long %.2f", short.EnergyJ, long.EnergyJ)
	}
	if short.MeanDelay < long.MeanDelay {
		t.Errorf("short timeout delay %v should exceed long %v", short.MeanDelay, long.MeanDelay)
	}
}
