// Package power implements OS-level dynamic power management for wireless
// devices: policies that decide when to put an idle WNIC to sleep without
// any application knowledge, relying — as the paper puts it — "on the
// quality of the predictive techniques". The experiment compares fixed
// timeouts, adaptive timeouts, exponential-average prediction and the
// clairvoyant oracle lower bound.
package power

import (
	"fmt"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Policy decides how long to remain idle before sleeping.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// SleepDelay is consulted when the device becomes idle. It returns how
	// long to wait before sleeping; 0 sleeps immediately, sim.MaxTime never
	// sleeps. nextArrival is sim.MaxTime except for the oracle.
	SleepDelay(nextArrival sim.Time) sim.Time
	// ObserveIdle reports the realized length of the idle period that just
	// ended, letting adaptive policies learn.
	ObserveIdle(idle sim.Time)
}

// Breakeven returns the minimum idle period worth sleeping through for a
// profile: below it, the transition energy exceeds what sleeping saves.
// Derivation: sleeping saves (Pidle - Psleep)·t but costs the two
// transition energies plus the wake latency spent at idle-equivalent power.
func Breakeven(p *radio.Profile) sim.Time {
	down := p.TransitionCost(radio.Idle, radio.Sleep)
	up := p.TransitionCost(radio.Sleep, radio.Idle)
	save := p.Power[radio.Idle] - p.Power[radio.Sleep]
	if save <= 0 {
		return sim.MaxTime
	}
	transJ := down.Energy + up.Energy
	t := sim.FromSeconds(transJ / save)
	lat := down.Latency + up.Latency
	return sim.Max(t, lat)
}

// AlwaysOn never sleeps: the baseline every DPM policy is measured against.
type AlwaysOn struct{}

// Name implements Policy.
func (AlwaysOn) Name() string { return "always-on" }

// SleepDelay implements Policy: never sleep.
func (AlwaysOn) SleepDelay(sim.Time) sim.Time { return sim.MaxTime }

// ObserveIdle implements Policy.
func (AlwaysOn) ObserveIdle(sim.Time) {}

// FixedTimeout sleeps after a constant idle timeout.
type FixedTimeout struct {
	Timeout sim.Time
}

// Name implements Policy.
func (p *FixedTimeout) Name() string { return fmt.Sprintf("timeout-%v", p.Timeout) }

// SleepDelay implements Policy.
func (p *FixedTimeout) SleepDelay(sim.Time) sim.Time { return p.Timeout }

// ObserveIdle implements Policy.
func (p *FixedTimeout) ObserveIdle(sim.Time) {}

// AdaptiveTimeout doubles its timeout when sleeping proved premature (the
// idle period barely exceeded the timeout) and shrinks it geometrically when
// idle periods run long — the classic Douglis-style adaptive disk policy
// applied to a WNIC.
type AdaptiveTimeout struct {
	Min, Max sim.Time
	cur      sim.Time
	breakevn sim.Time
}

// NewAdaptiveTimeout creates the policy with the given bounds, starting at
// the geometric midpoint, judging sleeps against the profile's breakeven.
func NewAdaptiveTimeout(profile *radio.Profile, min, max sim.Time) *AdaptiveTimeout {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("power: bad adaptive bounds [%v, %v]", min, max))
	}
	return &AdaptiveTimeout{Min: min, Max: max, cur: (min + max) / 2, breakevn: Breakeven(profile)}
}

// Name implements Policy.
func (p *AdaptiveTimeout) Name() string { return "adaptive-timeout" }

// SleepDelay implements Policy.
func (p *AdaptiveTimeout) SleepDelay(sim.Time) sim.Time { return p.cur }

// Current returns the present timeout value (for tests).
func (p *AdaptiveTimeout) Current() sim.Time { return p.cur }

// ObserveIdle implements Policy: a "bad sleep" is an idle period that
// exceeded the timeout by less than the breakeven (we paid the transition
// without amortizing it) — back off. Long idles mean we slept too late —
// lean in.
func (p *AdaptiveTimeout) ObserveIdle(idle sim.Time) {
	if idle > p.cur && idle-p.cur < p.breakevn {
		p.cur *= 2
		if p.cur > p.Max {
			p.cur = p.Max
		}
	} else if idle > 2*p.cur {
		p.cur = p.cur * 3 / 4
		if p.cur < p.Min {
			p.cur = p.Min
		}
	}
}

// Predictive keeps an exponential average of idle lengths and sleeps
// immediately when the prediction exceeds the breakeven point.
type Predictive struct {
	Alpha    float64
	pred     float64 // seconds
	breakevn sim.Time
	seeded   bool
}

// NewPredictive creates the policy with smoothing weight alpha.
func NewPredictive(profile *radio.Profile, alpha float64) *Predictive {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("power: alpha %g outside (0,1]", alpha))
	}
	return &Predictive{Alpha: alpha, breakevn: Breakeven(profile)}
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive" }

// SleepDelay implements Policy: sleep at once when the predicted idle pays
// for the transition, otherwise hold for the breakeven period as a hedge.
func (p *Predictive) SleepDelay(sim.Time) sim.Time {
	if p.seeded && sim.FromSeconds(p.pred) > p.breakevn {
		return 0
	}
	return p.breakevn
}

// ObserveIdle implements Policy.
func (p *Predictive) ObserveIdle(idle sim.Time) {
	if !p.seeded {
		p.pred = idle.Seconds()
		p.seeded = true
		return
	}
	p.pred = p.Alpha*idle.Seconds() + (1-p.Alpha)*p.pred
}

// Oracle knows the next arrival: it sleeps immediately exactly when the
// idle period exceeds breakeven. No realizable policy does better.
type Oracle struct {
	breakevn sim.Time
}

// NewOracle creates the clairvoyant policy for a profile.
func NewOracle(profile *radio.Profile) *Oracle {
	return &Oracle{breakevn: Breakeven(profile)}
}

// Name implements Policy.
func (p *Oracle) Name() string { return "oracle" }

// SleepDelay implements Policy.
func (p *Oracle) SleepDelay(nextArrival sim.Time) sim.Time {
	if nextArrival == sim.MaxTime {
		return 0 // no more work ever: sleep
	}
	if nextArrival > p.breakevn {
		return 0
	}
	return sim.MaxTime // not worth it; stay idle
}

// ObserveIdle implements Policy.
func (p *Oracle) ObserveIdle(sim.Time) {}
