package power

import (
	"repro/internal/radio"
	"repro/internal/sim"
)

// Ledger is a struct-of-arrays time-in-state account for a whole station
// population. Where radio.Device meters one station with its own struct,
// timer and callback plumbing, a Ledger holds one float64 column per power
// state indexed by station id — the representation metro-scale experiments
// need: attributing dwell time to 10⁵–10⁶ stations touches dense arrays
// sequentially instead of chasing a pointer per station, and recycling a
// churned-out station id is a constant-time row reset, not an allocation.
//
// The ledger is pure accounting: callers decide when a station changes
// state and for how long it dwelt; the ledger converts that to joules with
// the profile's calibration. This split keeps the hot path free of
// interface calls and lets closed-form models charge an entire association
// lifetime in one call.
type Ledger struct {
	profile *radio.Profile

	// dwell[st][id] is station id's cumulative time in state st. One slice
	// per state (columns), not one array per station (rows): experiments
	// aggregate over the population state-by-state, so the column layout is
	// the sequential-scan one.
	dwell [radio.NumStates][]sim.Time

	// transJ[id] is station id's cumulative state-transition energy.
	transJ []float64
}

// NewLedger creates a ledger for n stations, all columns zero. The ledger
// grows on Ensure, so n is just the initial population guess.
func NewLedger(p *radio.Profile, n int) *Ledger {
	l := &Ledger{profile: p}
	l.Ensure(n)
	return l
}

// Len returns the number of station rows currently allocated.
func (l *Ledger) Len() int { return len(l.transJ) }

// Ensure grows the ledger to cover station ids [0, n). Growth is geometric
// (power-of-two capacity via append), so attaching stations one at a time
// at metro scale performs O(log n) copies per column.
func (l *Ledger) Ensure(n int) {
	for len(l.transJ) < n {
		l.transJ = append(l.transJ, 0)
	}
	for st := range l.dwell {
		for len(l.dwell[st]) < n {
			l.dwell[st] = append(l.dwell[st], 0)
		}
	}
}

// Reset zeroes station id's row so a churn-recycled id starts a fresh
// account. O(NumStates), no allocation.
func (l *Ledger) Reset(id int32) {
	for st := range l.dwell {
		l.dwell[st][id] = 0
	}
	l.transJ[id] = 0
}

// Dwell charges station id with d time in state st.
func (l *Ledger) Dwell(id int32, st radio.State, d sim.Time) {
	l.dwell[st][id] += d
}

// Transition charges station id with the energy of a from→to state change
// and returns its latency, so callers can account the transition time to
// whichever state their model says the station occupies during it.
func (l *Ledger) Transition(id int32, from, to radio.State) sim.Time {
	t := l.profile.TransitionCost(from, to)
	l.transJ[id] += t.Energy
	return t.Latency
}

// TimeIn returns station id's cumulative time in state st.
func (l *Ledger) TimeIn(id int32, st radio.State) sim.Time {
	return l.dwell[st][id]
}

// EnergyJ returns station id's total energy: per-state dwell times the
// profile's state power, plus accumulated transition energy.
func (l *Ledger) EnergyJ(id int32) float64 {
	j := l.transJ[id]
	for st := range l.dwell {
		j += l.dwell[st][id].Seconds() * l.profile.Power[st]
	}
	return j
}

// TotalJ returns the population's total energy in joules, scanning each
// state column once.
func (l *Ledger) TotalJ() float64 {
	var j float64
	for _, t := range l.transJ {
		j += t
	}
	for st := range l.dwell {
		var sec float64
		for _, d := range l.dwell[st] {
			sec += d.Seconds()
		}
		j += sec * l.profile.Power[st]
	}
	return j
}

// TotalTimeIn returns the population's cumulative time in state st.
func (l *Ledger) TotalTimeIn(st radio.State) sim.Time {
	var d sim.Time
	for _, t := range l.dwell[st] {
		d += t
	}
	return d
}
