package dvs

import (
	"testing"

	"repro/internal/sim"
)

func taskSet(utilization, usage float64) []Task {
	// Three tasks sharing the utilization at fmax = 600 MHz.
	f := DefaultCPU().FMax()
	return []Task{
		{Name: "a", Period: 20 * sim.Millisecond, WCETCycles: utilization / 3 * 0.020 * f, UsageFactor: usage},
		{Name: "b", Period: 50 * sim.Millisecond, WCETCycles: utilization / 3 * 0.050 * f, UsageFactor: usage},
		{Name: "c", Period: 100 * sim.Millisecond, WCETCycles: utilization / 3 * 0.100 * f, UsageFactor: usage},
	}
}

func TestValidation(t *testing.T) {
	if err := DefaultCPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCPU()
	bad.Frequencies = []float64{600e6, 300e6}
	if err := bad.Validate(); err == nil {
		t.Error("descending ladder accepted")
	}
	if err := (Task{Name: "x", Period: 0}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
}

func TestPowerModelCubic(t *testing.T) {
	c := DefaultCPU()
	full := c.Power(c.FMax())
	half := c.Power(c.FMax() / 2)
	// Dynamic part should drop ~8x at half clock.
	dynFull := full - c.StaticW
	dynHalf := half - c.StaticW
	if dynHalf > dynFull/7 {
		t.Errorf("dynamic power at half clock = %v, want ≈ %v/8", dynHalf, dynFull)
	}
	if c.Power(0) != c.StaticW {
		t.Error("idle power should be the static floor")
	}
}

func TestStepFor(t *testing.T) {
	c := DefaultCPU()
	if got := c.StepFor(200e6); got != 300e6 {
		t.Errorf("StepFor(200M) = %v, want 300M", got)
	}
	if got := c.StepFor(700e6); got != 600e6 {
		t.Errorf("StepFor above ladder = %v, want fmax", got)
	}
}

func TestNoDVSMeetsAllDeadlinesFeasibleSet(t *testing.T) {
	s := sim.New(1)
	r := Run(s, DefaultCPU(), NoDVS, taskSet(0.6, 1.0), 10*sim.Second)
	if r.DeadlineMisses != 0 {
		t.Errorf("misses = %d on a feasible set at fmax", r.DeadlineMisses)
	}
	if r.Jobs == 0 {
		t.Fatal("no jobs released")
	}
}

func TestStaticDVSSavesEnergyMeetsDeadlines(t *testing.T) {
	full := Run(sim.New(1), DefaultCPU(), NoDVS, taskSet(0.45, 1.0), 10*sim.Second)
	static := Run(sim.New(1), DefaultCPU(), StaticDVS, taskSet(0.45, 1.0), 10*sim.Second)
	if static.DeadlineMisses != 0 {
		t.Errorf("static DVS missed %d deadlines at 45%% utilization", static.DeadlineMisses)
	}
	if static.EnergyJ >= full.EnergyJ {
		t.Errorf("static %.2f J should beat no-DVS %.2f J", static.EnergyJ, full.EnergyJ)
	}
}

func TestCycleConservingReclaimsSlack(t *testing.T) {
	// Jobs use only 40% of their WCET: cycle-conserving should beat static
	// (which provisions for WCET) while still meeting deadlines.
	set := taskSet(0.7, 0.4)
	static := Run(sim.New(1), DefaultCPU(), StaticDVS, set, 10*sim.Second)
	cc := Run(sim.New(1), DefaultCPU(), CycleConserving, set, 10*sim.Second)
	if cc.DeadlineMisses != 0 {
		t.Errorf("CC-EDF missed %d deadlines", cc.DeadlineMisses)
	}
	if cc.EnergyJ >= static.EnergyJ {
		t.Errorf("cycle-conserving %.2f J should beat static %.2f J with 40%% usage",
			cc.EnergyJ, static.EnergyJ)
	}
}

func TestEnergyOrderingAllPolicies(t *testing.T) {
	set := taskSet(0.5, 0.5)
	no := Run(sim.New(1), DefaultCPU(), NoDVS, set, 10*sim.Second)
	st := Run(sim.New(1), DefaultCPU(), StaticDVS, set, 10*sim.Second)
	cc := Run(sim.New(1), DefaultCPU(), CycleConserving, set, 10*sim.Second)
	if !(cc.EnergyJ <= st.EnergyJ && st.EnergyJ < no.EnergyJ) {
		t.Errorf("ordering broken: no=%.2f static=%.2f cc=%.2f", no.EnergyJ, st.EnergyJ, cc.EnergyJ)
	}
	for _, r := range []Result{no, st, cc} {
		if r.DeadlineMisses != 0 {
			t.Errorf("%s: %d misses on feasible set", r.Policy, r.DeadlineMisses)
		}
	}
}

func TestOverloadMissesDeadlines(t *testing.T) {
	s := sim.New(1)
	r := Run(s, DefaultCPU(), NoDVS, taskSet(1.4, 1.0), 5*sim.Second)
	if r.DeadlineMisses == 0 {
		t.Error("140% utilization met every deadline — scheduler too generous")
	}
}

func TestSlowdownIncreasesResponseTime(t *testing.T) {
	set := taskSet(0.4, 1.0)
	no := Run(sim.New(1), DefaultCPU(), NoDVS, set, 10*sim.Second)
	st := Run(sim.New(1), DefaultCPU(), StaticDVS, set, 10*sim.Second)
	if st.MeanResponse <= no.MeanResponse {
		t.Errorf("DVS response %v should exceed full-clock %v", st.MeanResponse, no.MeanResponse)
	}
}

func TestBusyFractionTracksSpeed(t *testing.T) {
	set := taskSet(0.3, 1.0)
	no := Run(sim.New(1), DefaultCPU(), NoDVS, set, 10*sim.Second)
	st := Run(sim.New(1), DefaultCPU(), StaticDVS, set, 10*sim.Second)
	if st.BusyFraction <= no.BusyFraction {
		t.Error("slower clock should be busy longer")
	}
	if no.BusyFraction < 0.25 || no.BusyFraction > 0.35 {
		t.Errorf("no-DVS busy fraction %.3f, want ≈ utilization 0.3", no.BusyFraction)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []PolicyKind{NoDVS, StaticDVS, CycleConserving} {
		if p.String() == "" {
			t.Error("missing name")
		}
	}
}
