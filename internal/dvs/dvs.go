// Package dvs implements CPU dynamic voltage scaling under real-time
// scheduling — the "more traditional CPU voltage scaling and scheduling"
// the paper lists among OS-level techniques. Periodic tasks run under EDF;
// DVS policies pick the clock frequency: none (always max), the static
// utilization-optimal setting, and cycle-conserving reclamation of unused
// worst-case budget (Pillai–Shin style).
//
// Power follows the classic model P(f) ∝ f³ (voltage tracks frequency)
// plus a static floor, so halving the clock cuts dynamic power ~8x while
// the work takes 2x longer — a net win whenever deadlines still hold.
package dvs

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Task is one periodic real-time task: a job is released every Period with
// WCETCycles of worst-case work due one Period later. Actual jobs consume
// UsageFactor×WCET cycles (real workloads rarely hit their WCET, which is
// exactly what cycle-conserving DVS reclaims).
type Task struct {
	Name        string
	Period      sim.Time
	WCETCycles  float64 // cycles at any frequency (cycles, not seconds)
	UsageFactor float64 // actual/WCET in (0, 1]
}

// Validate checks the task.
func (t Task) Validate() error {
	if t.Period <= 0 || t.WCETCycles <= 0 {
		return fmt.Errorf("dvs: task %q needs positive period and WCET", t.Name)
	}
	if t.UsageFactor <= 0 || t.UsageFactor > 1 {
		return fmt.Errorf("dvs: task %q usage factor outside (0,1]", t.Name)
	}
	return nil
}

// CPU describes the frequency ladder. Frequencies are in cycles/second,
// ascending; Power(f) = StaticW + DynCoeff·f³ (normalized).
type CPU struct {
	Frequencies []float64
	StaticW     float64
	DynCoeffW   float64 // watts at fmax: DynCoeffW·(f/fmax)³
}

// DefaultCPU returns a 4-step ladder patterned on an XScale-class part:
// 150–600 MHz, ~0.08 W static, ~0.9 W dynamic at full clock.
func DefaultCPU() CPU {
	return CPU{
		Frequencies: []float64{150e6, 300e6, 450e6, 600e6},
		StaticW:     0.08,
		DynCoeffW:   0.9,
	}
}

// Validate checks the ladder.
func (c CPU) Validate() error {
	if len(c.Frequencies) == 0 {
		return fmt.Errorf("dvs: empty frequency ladder")
	}
	for i, f := range c.Frequencies {
		if f <= 0 {
			return fmt.Errorf("dvs: non-positive frequency")
		}
		if i > 0 && f <= c.Frequencies[i-1] {
			return fmt.Errorf("dvs: ladder not ascending")
		}
	}
	return nil
}

// FMax returns the top frequency.
func (c CPU) FMax() float64 { return c.Frequencies[len(c.Frequencies)-1] }

// Power returns the draw when running at f (0 when idle-with-clock-gated,
// modelled as the static floor only).
func (c CPU) Power(f float64) float64 {
	if f <= 0 {
		return c.StaticW
	}
	r := f / c.FMax()
	return c.StaticW + c.DynCoeffW*r*r*r
}

// StepFor returns the lowest ladder frequency ≥ want (or FMax).
func (c CPU) StepFor(want float64) float64 {
	for _, f := range c.Frequencies {
		if f >= want {
			return f
		}
	}
	return c.FMax()
}

// PolicyKind selects the DVS discipline.
type PolicyKind int

// DVS policies.
const (
	// NoDVS runs every job at full clock.
	NoDVS PolicyKind = iota
	// StaticDVS sets the frequency to utilization·fmax once, up front.
	StaticDVS
	// CycleConserving reclaims unused WCET: when a job finishes early the
	// remaining jobs run slower until the next release (Pillai–Shin CC-EDF).
	CycleConserving
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case NoDVS:
		return "no-dvs"
	case StaticDVS:
		return "static"
	case CycleConserving:
		return "cycle-conserving"
	default:
		return fmt.Sprintf("dvs(%d)", int(p))
	}
}

// Result reports a schedule run.
type Result struct {
	Policy          string
	EnergyJ         float64
	AvgPowerW       float64
	Jobs            int
	DeadlineMisses  int
	MeanResponse    sim.Time
	UtilizationWCET float64 // Σ WCET/period at fmax
	BusyFraction    float64
}

// job is one released instance.
type job struct {
	task      int
	release   sim.Time
	deadline  sim.Time
	remaining float64 // cycles
	actual    float64 // cycles this instance really needs
}

// Run schedules the task set under EDF with the given DVS policy for the
// horizon and returns energy/deadline statistics.
func Run(s *sim.Simulator, cpu CPU, policy PolicyKind, tasks []Task, horizon sim.Time) Result {
	if err := cpu.Validate(); err != nil {
		panic(err)
	}
	util := 0.0
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		util += t.WCETCycles / (t.Period.Seconds() * cpu.FMax())
	}

	e := &engine{s: s, cpu: cpu, policy: policy, tasks: tasks, utilWCET: util}
	// Per-task reclaimable utilization for cycle-conserving EDF.
	e.ccUtil = make([]float64, len(tasks))
	for i, t := range tasks {
		e.ccUtil[i] = t.WCETCycles / (t.Period.Seconds() * cpu.FMax())
	}
	for i := range tasks {
		i := i
		s.At(0, func() { e.release(i) })
	}
	s.RunUntil(horizon)
	e.settle()

	res := Result{
		Policy:          policy.String(),
		EnergyJ:         e.energy,
		Jobs:            e.jobs,
		DeadlineMisses:  e.misses,
		UtilizationWCET: util,
	}
	if horizon > 0 {
		res.AvgPowerW = e.energy / horizon.Seconds()
		res.BusyFraction = e.busy.Seconds() / horizon.Seconds()
	}
	if e.completed > 0 {
		res.MeanResponse = e.totalResp / sim.Time(e.completed)
	}
	return res
}

// engine is the EDF+DVS executive.
type engine struct {
	s      *sim.Simulator
	cpu    CPU
	policy PolicyKind
	tasks  []Task

	ready    []*job
	running  *job
	runFreq  float64
	runStart sim.Time
	runEvent sim.Handle
	lastAt   sim.Time

	utilWCET float64
	ccUtil   []float64 // current per-task utilization view (CC-EDF)

	energy    float64
	busy      sim.Time
	jobs      int
	misses    int
	completed int
	totalResp sim.Time
}

// settle integrates power since the last state change.
func (e *engine) settle() {
	now := e.s.Now()
	dt := (now - e.lastAt).Seconds()
	if dt > 0 {
		f := 0.0
		if e.running != nil {
			f = e.runFreq
			e.busy += now - e.lastAt
		}
		e.energy += e.cpu.Power(f) * dt
	}
	e.lastAt = now
}

// release creates the next job of task i and re-arms its period.
func (e *engine) release(i int) {
	t := e.tasks[i]
	now := e.s.Now()
	j := &job{
		task:     i,
		release:  now,
		deadline: now + t.Period,
		actual:   t.WCETCycles * t.UsageFactor,
	}
	j.remaining = j.actual
	e.jobs++
	// CC-EDF: at release, the task's utilization reverts to its WCET view.
	e.ccUtil[i] = t.WCETCycles / (t.Period.Seconds() * e.cpu.FMax())
	e.ready = append(e.ready, j)
	e.s.Schedule(t.Period, func() { e.release(i) })
	e.reschedule()
}

// frequency picks the clock per policy given the current utilization view.
func (e *engine) frequency() float64 {
	switch e.policy {
	case NoDVS:
		return e.cpu.FMax()
	case StaticDVS:
		return e.cpu.StepFor(e.utilWCET * e.cpu.FMax())
	case CycleConserving:
		u := 0.0
		for _, x := range e.ccUtil {
			u += x
		}
		if u > 1 {
			u = 1
		}
		return e.cpu.StepFor(u * e.cpu.FMax())
	default:
		return e.cpu.FMax()
	}
}

// reschedule preempts as needed and (re)starts the earliest-deadline job.
func (e *engine) reschedule() {
	e.settle()
	// Preempt the running job, deducting the cycles it completed.
	if e.running != nil && e.runEvent.Pending() {
		e.s.Cancel(e.runEvent)
		e.runEvent = sim.Handle{}
		elapsed := (e.s.Now() - e.runStart).Seconds()
		e.running.remaining -= elapsed * e.runFreq
		if e.running.remaining < 0 {
			e.running.remaining = 0
		}
		e.ready = append(e.ready, e.running)
		e.running = nil
	}
	if len(e.ready) == 0 {
		return
	}
	sort.Slice(e.ready, func(a, b int) bool { return e.ready[a].deadline < e.ready[b].deadline })
	j := e.ready[0]
	e.ready = e.ready[1:]
	e.running = j
	e.runFreq = e.frequency()
	e.runStart = e.s.Now()
	dur := sim.FromSeconds(j.remaining / e.runFreq)
	if dur < sim.Microsecond {
		dur = sim.Microsecond
	}
	e.runEvent = e.s.Schedule(dur, func() {
		e.runEvent = sim.Handle{}
		e.complete(j)
	})
}

// complete retires the running job.
func (e *engine) complete(j *job) {
	e.settle()
	j.remaining = 0
	e.running = nil
	e.completed++
	resp := e.s.Now() - j.release
	e.totalResp += resp
	if e.s.Now() > j.deadline {
		e.misses++
	}
	if e.policy == CycleConserving {
		// The job used fewer cycles than its WCET: until its next release
		// this task only "occupies" its actual utilization.
		t := e.tasks[j.task]
		e.ccUtil[j.task] = j.actual / (t.Period.Seconds() * e.cpu.FMax())
	}
	e.reschedule()
}
