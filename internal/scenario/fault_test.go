package scenario

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("crash-after=3,delay-every=2,delay-ms=5,gens=2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CrashAfter != 3 || c.DelayEvery != 2 || c.Delay != 5*time.Millisecond || c.Gens != 2 {
		t.Errorf("flat clause parsed wrong: %+v", c)
	}
	if !c.active() {
		t.Error("configured chaos should be active")
	}

	// gens ages the faults out for later generations.
	if c, _ = ParseChaos("crash-after=3,gens=2", 2); c.active() {
		t.Errorf("gen 2 should run clean under gens=2, got %+v", c)
	}
	if c, _ = ParseChaos("crash-after=3,gens=2", 1); !c.active() {
		t.Error("gen 1 should still be faulty under gens=2")
	}

	// Generation schedules pick the matching clause; unmatched gens run clean.
	spec := "gen0:crash-after=1;gen1:corrupt-after=2,hang-ms=7"
	if c, _ = ParseChaos(spec, 0); c.CrashAfter != 1 || c.CorruptAfter != 0 {
		t.Errorf("gen 0 clause wrong: %+v", c)
	}
	if c, _ = ParseChaos(spec, 1); c.CorruptAfter != 2 || c.HangFor != 7*time.Millisecond || c.CrashAfter != 0 {
		t.Errorf("gen 1 clause wrong: %+v", c)
	}
	if c, _ = ParseChaos(spec, 5); c.active() {
		t.Errorf("unscheduled gen should run clean, got %+v", c)
	}

	// Defaults for the durations.
	if c, _ = ParseChaos("hang-after=1", 0); c.HangFor != time.Hour {
		t.Errorf("HangFor default = %v, want 1h", c.HangFor)
	}
	if c, _ = ParseChaos("delay-every=1", 0); c.Delay != 10*time.Millisecond {
		t.Errorf("Delay default = %v, want 10ms", c.Delay)
	}

	// Network verbs (TCP worker sessions).
	c, err = ParseChaos("drop-conn-after=2,blackhole-after=3,slowlink-ms=40,replay-after=5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.DropConnAfter != 2 || c.BlackholeAfter != 3 || c.SlowLink != 40*time.Millisecond || c.ReplayAfter != 5 {
		t.Errorf("network verbs parsed wrong: %+v", c)
	}
	if !c.active() {
		t.Error("network chaos should be active")
	}
	if c, _ = ParseChaos("slowlink-ms=0", 0); c.active() {
		t.Errorf("slowlink-ms=0 should be inactive, got %+v", c)
	}

	// The empty spec is no chaos.
	if c, err = ParseChaos("", 0); err != nil || c.active() {
		t.Errorf("empty spec: %+v / %v", c, err)
	}

	for _, bad := range []string{
		"crash-after",        // not key=value
		"crash-after=x",      // not an integer
		"crash-after=-1",     // negative
		"no-such-key=1",      // unknown key
		"gen:crash-after=1",  // bad generation label
		"genx:crash-after=1", // bad generation label
		"0:crash-after=1",    // clause without gen prefix
		"gen0:crash-after",   // bad body inside a schedule
	} {
		if _, err := ParseChaos(bad, 0); err == nil {
			t.Errorf("ParseChaos(%q) should fail", bad)
		}
	}
}

func TestChaosFromEnvRejectsBadSchedule(t *testing.T) {
	t.Setenv(chaosEnv, "definitely not a schedule")
	if _, err := ChaosFromEnv(); err == nil {
		t.Fatal("malformed REPRO_CHAOS should be an error")
	}
	var in, out bytes.Buffer
	if err := ServeWorker(&in, &out); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("ServeWorker should refuse to start under a malformed schedule, got %v", err)
	}
}

func TestFaultPolicyNormalize(t *testing.T) {
	def := DefaultFaultPolicy()
	if got := (FaultPolicy{}).normalized(); got != def {
		t.Errorf("zero policy should normalize to the defaults: %+v", got)
	}
	// Partial: zero fields take defaults, negatives disable, DegradeToLocal
	// is honoured as given.
	p := FaultPolicy{MaxRetries: -1, ChunkTimeout: -1, RestartBackoff: -1, DegradeToLocal: true}.normalized()
	if p.MaxRetries != 0 || p.ChunkTimeout != 0 || p.RestartBackoff != 0 {
		t.Errorf("negatives should disable: %+v", p)
	}
	if p.MaxBackoff != def.MaxBackoff || p.ChunkSeeds != def.ChunkSeeds {
		t.Errorf("unset fields should default: %+v", p)
	}
	p = FaultPolicy{MaxRetries: 7, DegradeToLocal: true}.normalized()
	if p.MaxRetries != 7 || p.ChunkTimeout != def.ChunkTimeout || !p.DegradeToLocal {
		t.Errorf("partial policy normalized wrong: %+v", p)
	}
}

// chaosShard builds a Shard on the test-binary worker with the given
// fault-injection schedule and test-speed supervision.
func chaosShard(workers int, chaos string, mutate func(*FaultPolicy)) *Shard {
	pol := fastPolicy()
	if mutate != nil {
		mutate(&pol)
	}
	return &Shard{
		Workers: workers,
		Argv:    []string{os.Args[0], workerSentinel},
		Chaos:   chaos,
		Policy:  pol,
	}
}

// requireShardMatchesLocal runs the registered shardable spec on sh and on
// the Local backend and demands bit-identical aggregates.
func requireShardMatchesLocal(t *testing.T, sh *Shard, seeds []int64) {
	t.Helper()
	spec, ok := Lookup("test-shardable")
	if !ok {
		t.Fatal("test-shardable not registered")
	}
	local := mustRun(t, &Runner{Parallel: 4, KeepPerSeed: true}, []Spec{spec}, seeds)
	sharded := mustRun(t, &Runner{KeepPerSeed: true, Executor: sh}, []Spec{spec}, seeds)
	if !metricsEqualBits(local[0].Metrics, sharded[0].Metrics) {
		t.Errorf("chaos changed the results:\nlocal %+v\nshard %+v",
			local[0].Metrics, sharded[0].Metrics)
	}
	if local[0].Table() != sharded[0].Table() {
		t.Error("rendered tables not byte-identical under chaos")
	}
}

// TestShardSurvivesCrashingWorkers injects "every worker's first two
// processes crash on their 2nd request" and demands a complete,
// bit-identical run with the failures visible in the health counters.
func TestShardSurvivesCrashingWorkers(t *testing.T) {
	sh := chaosShard(2, "crash-after=2,gens=2", nil)
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 8)) // includes 13, the NaN seed

	h := sh.Health()
	if h.Restarts() == 0 {
		t.Errorf("crashing fleet should have restarted workers: %s", h.Summary())
	}
	if h.Failures() == 0 || h.Retries == 0 {
		t.Errorf("crashes should be counted: %s", h.Summary())
	}
}

// TestShardRecoversFromCorruptFrames injects a well-framed garbage payload
// as each first-generation worker's first response: the decode detector,
// not the process watcher, must catch it, and the retry must keep the run
// bit-identical.
func TestShardRecoversFromCorruptFrames(t *testing.T) {
	sh := chaosShard(2, "corrupt-after=1,gens=1", nil)
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 6))

	h := sh.Health()
	var decodes int64
	for _, w := range h.Workers {
		decodes += w.DecodeErrs
	}
	if decodes == 0 {
		t.Errorf("corrupt frames should be classified as decode failures: %s", h.Summary())
	}
}

// TestShardRecoversFromTruncatedFrames injects a header promising more
// payload than the dying worker delivers.
func TestShardRecoversFromTruncatedFrames(t *testing.T) {
	sh := chaosShard(2, "trunc-after=1,gens=1", nil)
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 6))
	if h := sh.Health(); h.Failures() == 0 {
		t.Errorf("truncated frames should be counted as failures: %s", h.Summary())
	}
}

// TestShardReapsHungWorker injects an effectively infinite hang into each
// first-generation worker; the chunk deadline must kill and replace it.
func TestShardReapsHungWorker(t *testing.T) {
	sh := chaosShard(2, "hang-after=1,gens=1", func(p *FaultPolicy) {
		p.ChunkTimeout = 300 * time.Millisecond
	})
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 6))

	h := sh.Health()
	var timeouts int64
	for _, w := range h.Workers {
		timeouts += w.Timeouts
	}
	if timeouts == 0 {
		t.Errorf("hung workers should be reaped as timeouts: %s", h.Summary())
	}
}

// TestShardCleanRunHasZeroFailureCounters pins the converse: benign delays
// (or no chaos at all) must not trip any failure detector.
func TestShardCleanRunHasZeroFailureCounters(t *testing.T) {
	sh := chaosShard(2, "delay-every=3,delay-ms=1", nil)
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 6))

	h := sh.Health()
	if h.Failures() != 0 || h.Retries != 0 || h.Restarts() != 0 || h.Quarantined != 0 || h.DegradedSeeds != 0 {
		t.Errorf("benign delays tripped a failure detector: %s", h.Summary())
	}
	if h.Chunks() != 6 {
		t.Errorf("chunks ok = %d, want 6", h.Chunks())
	}
}

// TestShardChunkedLeases runs multiple seeds per lease and checks the
// results and accounting still line up.
func TestShardChunkedLeases(t *testing.T) {
	sh := chaosShard(2, "", func(p *FaultPolicy) { p.ChunkSeeds = 3 })
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(10, 8))

	h := sh.Health()
	if h.Chunks() != 3 { // 8 seeds in chunks of 3 → 3+3+2
		t.Errorf("chunks ok = %d, want 3", h.Chunks())
	}
	var seeds int64
	for _, w := range h.Workers {
		seeds += w.Seeds
	}
	if seeds != 8 {
		t.Errorf("seeds computed = %d, want 8", seeds)
	}
}

// TestShardQuarantinedPanicFailsLoudly: when the fleet is dead and the
// quarantined in-process execution itself panics, the run must fail with
// the real error — degradation never papers over an application bug.
func TestShardQuarantinedPanicFailsLoudly(t *testing.T) {
	sh := &Shard{Workers: 1, Argv: []string{os.Args[0], workerExitSentinel}, Policy: fastPolicy()}
	defer sh.Close()
	spec := Spec{Name: "test-quarantine-panic", Desc: "x",
		Run: func(int64) Result { panic("app bug") }}
	_, err := (&Runner{Executor: sh}).Run([]Spec{spec}, []int64{1})
	if err == nil || !strings.Contains(err.Error(), "app bug") {
		t.Errorf("quarantined panic should surface the real error, got %v", err)
	}
}

// syncBuffer is a goroutine-safe writer for capturing worker stderr.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestShardWorkerStderrPrefixed pins the satellite: worker stderr lines
// reach the shard's sink prefixed with the stable slot id.
func TestShardWorkerStderrPrefixed(t *testing.T) {
	var buf syncBuffer
	sh := &Shard{
		Workers: 1,
		Argv:    []string{os.Args[0], workerNoisySentinel},
		Policy:  fastPolicy(),
		Stderr:  &buf,
	}
	spec, _ := Lookup("test-shardable")
	mustRun(t, &Runner{Executor: sh}, []Spec{spec}, Seeds(1, 2))
	sh.Close()

	// The prefix goroutine drains the pipe after the process exits; give it
	// a moment before asserting.
	want := "[w0] noisy diagnostic line\n"
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("worker stderr not prefixed: %q", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackoffSchedule pins the restart pacing contract: capped
// exponential growth with full jitter on the upper half of the base
// delay, and negative-disables semantics.
func TestBackoffSchedule(t *testing.T) {
	p := FaultPolicy{RestartBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, DegradeToLocal: true}.normalized()
	low := func(n int64) int64 { return 0 }
	high := func(n int64) int64 { return n - 1 }

	cases := []struct {
		consecFails int
		base        time.Duration // expected pre-jitter delay
	}{
		{0, 100 * time.Millisecond}, // clamped like the first failure
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second},  // 1600ms capped by MaxBackoff
		{40, time.Second}, // shift clamp keeps huge counts from overflowing
	}
	for _, c := range cases {
		min, max := c.base/2, c.base
		if got := p.backoffDelay(c.consecFails, low); got != min {
			t.Errorf("fails=%d jitter floor: got %v, want %v", c.consecFails, got, min)
		}
		if got := p.backoffDelay(c.consecFails, high); got != max {
			t.Errorf("fails=%d jitter ceiling: got %v, want %v", c.consecFails, got, max)
		}
	}

	// The jitter draw spans exactly the upper half: rnd is asked for
	// [0, base/2] inclusive.
	var asked int64
	p.backoffDelay(3, func(n int64) int64 { asked = n; return 0 })
	if want := int64(200*time.Millisecond) + 1; asked != want {
		t.Errorf("jitter range = %d, want %d", asked, want)
	}

	// Negative disables (via normalized), and a never-normalized zero stays
	// zero — no jitter draw happens at all.
	off := FaultPolicy{RestartBackoff: -1, DegradeToLocal: true}.normalized()
	if got := off.backoffDelay(5, func(int64) int64 { t.Fatal("disabled backoff drew jitter"); return 0 }); got != 0 {
		t.Errorf("disabled backoff = %v, want 0", got)
	}
}

// TestShardDegradeSummaryLine pins the satellite: a fleet dead enough to
// quarantine chunks must say so once on the shard's stderr sink, and the
// count must land in health.
func TestShardDegradeSummaryLine(t *testing.T) {
	var buf syncBuffer
	sh := &Shard{
		Workers: 1,
		Argv:    []string{os.Args[0], workerExitSentinel},
		Policy:  fastPolicy(),
		Stderr:  &buf,
	}
	defer sh.Close()
	spec, _ := Lookup("test-shardable")
	mustRun(t, &Runner{Executor: sh}, []Spec{spec}, Seeds(1, 3))
	if want := "shard: 3 chunks degraded to local"; !strings.Contains(buf.String(), want) {
		t.Errorf("degrade summary line missing: want %q in %q", want, buf.String())
	}
	if h := sh.Health(); h.Quarantined != 3 || h.DegradedSeeds != 3 {
		t.Errorf("degrade counters: %s", h.Summary())
	}
}

// TestCacheCountsWriteErrors pins the cache write-error counter: an
// unwritable cache directory costs future hits, never correctness, and the
// failure is visible in the stats.
func TestCacheCountsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	c := &Cache{Inner: &Local{Parallel: 2}, Dir: dir}
	spec := syntheticSpec("test-cache-write-errs", nil)
	seeds := Seeds(1, 3)

	// Pre-create each entry path as a directory: load treats it as a miss
	// (unreadable) and store's rename onto a directory fails — so every
	// store fails while every Result still flows. Works at any uid, unlike
	// chmod tricks.
	for _, seed := range seeds {
		if err := os.MkdirAll(seedPath(c.specDir(spec), seed), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	aggs := mustRun(t, &Runner{Executor: c}, []Spec{spec}, seeds)
	if len(aggs) != 1 || aggs[0].Metrics[0].N != len(seeds) {
		t.Fatalf("run incomplete despite write errors: %+v", aggs)
	}
	s := c.Stats()
	if s.WriteErrs != int64(len(seeds)) || s.Misses != int64(len(seeds)) || s.Hits != 0 {
		t.Errorf("stats = %+v, want %d write errors / misses", s, len(seeds))
	}
	if !strings.Contains(s.String(), "3 write errors") {
		t.Errorf("stats line should carry write errors: %s", s)
	}
}
