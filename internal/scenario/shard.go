package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Shard executes seeds on a supervised pool of worker slots. A slot's
// transport is one of two interchangeable kinds speaking the same
// length-prefixed JSON frame protocol:
//
//   - subprocess (default): the current binary re-executed with the hidden
//     -worker flag (plus the original command line, so workers rebuild any
//     flag-parameterized specs identically) over stdin/stdout;
//   - remote TCP (Addrs set): a connection dialed to a worker serving the
//     same protocol over TCP (the hidden -serve addr mode, see ServeNet),
//     so the fleet leaves the box.
//
// Supervision. A coordinator leases (spec, seed-chunk) units to worker
// slots. A slot detects failure at the process level (exit, broken pipe),
// the connection level (dial timeout, dropped connection, per-frame read
// deadline with heartbeat keep-alive — a partitioned TCP worker stops
// heartbeating and is torn down), the time level (per-chunk deadline), and
// the stream level (frame/Result decode error); on any of them the dead
// transport is reaped, the slot reconnects or respawns on demand with
// capped exponential backoff plus jitter, and the chunk is reassigned.
// Every lease attempt carries a fresh epoch: responses are matched on
// (epoch, spec, seed), so a zombie or partitioned worker replaying a stale
// chunk after its lease was reassigned is discarded — counted, never
// double-emitted. A chunk that exhausts its retry budget is quarantined to
// in-process execution (graceful degradation to the Local path) when the
// policy allows, so a run only errors when every path is exhausted.
// Because every seed is deterministic and Results cross the boundary
// bit-exactly, a retried or degraded chunk is indistinguishable from a
// first-attempt one: the fabric tolerates crashes, hangs, partitions and
// corrupt frames without costing a single output bit (the chaos-injected
// cross-backend equivalence test pins exactly that). Worker-reported
// application errors (unknown spec, experiment panic) are terminal: the
// fleet is healthy, so retrying cannot fix the request.
//
// The pool starts lazily on the first Run and is shared across concurrent
// Run calls, so a Runner fanning the whole registry over one Shard keeps
// exactly Workers transports busy. Results are reordered into seed order
// before emission, so the aggregate is bit-identical to the Local
// backend's. Close shuts the workers down; callers that finished running
// should Close to reap subprocesses and connections. Health returns the
// supervision counters accumulated so far.
type Shard struct {
	Workers int         // slot count; values < 1 mean runtime.NumCPU() (or len(Addrs) for TCP)
	Argv    []string    // worker command; nil means {os.Executable(), "-worker", os.Args[1:]...}
	Env     []string    // extra KEY=VALUE pairs for worker subprocesses
	Addrs   []string    // remote TCP worker addresses; non-empty selects the TCP transport
	Chaos   string      // fault-injection schedule exported to subprocess workers as REPRO_CHAOS (see ParseChaos)
	Policy  FaultPolicy // supervision knobs; zero value means DefaultFaultPolicy
	Stderr  io.Writer   // sink for worker stderr and coordinator notices, worker lines prefixed "[wN] "; nil means os.Stderr

	once     sync.Once
	startErr error
	argv     []string
	pol      FaultPolicy
	jobs     chan *lease
	wg       sync.WaitGroup
	slots    []*workerSlot

	epochs       atomic.Int64 // lease-epoch allocator; every attempt gets a unique epoch
	retries      atomic.Int64
	quarantined  atomic.Int64
	degraded     atomic.Int64
	staleReplies atomic.Int64
}

// lease is one (spec, seed-chunk) unit of work: a run of consecutive
// seeds starting at index ki0 of the Run's seed slice, with its reply
// route, the coordinator-owned failed-attempt count and the epoch of the
// attempt currently in flight. Ownership alternates over the jobs/reply
// channels, so epoch and attempts are never accessed concurrently.
type lease struct {
	spec     Spec
	seeds    []int64
	ki0      int
	attempts int
	epoch    int64
	reply    chan<- leaseResult
}

type leaseResult struct {
	l      *lease
	epoch  int64    // the epoch this attempt ran under
	res    []Result // len(l.seeds) on success
	worker int      // slot id; -1 for quarantined in-process execution
	kind   failKind
	err    error
}

// slotConn is one live transport session filling a worker slot: a
// subprocess's stdio pipes or a dialed TCP connection. roundTrip performs
// one request/response exchange and classifies any failure; interrupt
// makes blocked I/O fail now (the chunk-deadline enforcement); abort is
// the hard teardown after a fault; shutdown the graceful close at pool
// shutdown.
type slotConn interface {
	roundTrip(req workerRequest) (Result, failKind, error)
	interrupt()
	abort()
	shutdown()
}

// workerSlot supervises one worker position in the pool: it owns at most
// one live transport session at a time, reopens it on demand after
// failures, and keeps the slot-stable health counters. The slot id is
// stable across restarts — it names the [wN] stderr prefix and the health
// row.
type workerSlot struct {
	id   int
	sh   *Shard
	open func() (slotConn, error) // transport factory: spawn subprocess or dial TCP

	conn slotConn
	gen  int // sessions opened in this slot so far

	consecFails int // consecutive failed leases/opens, drives the backoff

	restarts, chunks, seeds                      atomic.Int64
	spawnFails, exits, timeouts, decodes, stales atomic.Int64
}

// workerArgv builds the default worker command line. The -worker flag goes
// immediately after the program name — before any positional arguments —
// so flag parsing in the child is guaranteed to see it.
func workerArgv() ([]string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: resolve executable: %w", err)
	}
	return append([]string{exe, "-worker"}, os.Args[1:]...), nil
}

func (s *Shard) start() {
	s.pol = s.Policy.normalized()
	n := s.Workers
	if len(s.Addrs) > 0 {
		if n < 1 {
			n = len(s.Addrs)
		}
	} else {
		argv := s.Argv
		if argv == nil {
			argv, s.startErr = workerArgv()
			if s.startErr != nil {
				return
			}
		}
		s.argv = argv
		if n < 1 {
			n = runtime.NumCPU()
		}
	}
	s.jobs = make(chan *lease)
	s.slots = make([]*workerSlot, n)
	for i := 0; i < n; i++ {
		w := &workerSlot{id: i, sh: s}
		if len(s.Addrs) > 0 {
			addr := s.Addrs[i%len(s.Addrs)] // slots round-robin over the fleet
			w.open = func() (slotConn, error) { return dialWorker(addr, s.pol, &w.stales) }
		} else {
			w.open = w.spawnWorker
		}
		s.slots[i] = w
		s.wg.Add(1)
		go w.supervise()
	}
}

// supervise is one slot's loop: take a lease, make sure a transport
// session is live (opening is lazy and retried with backoff), run the
// chunk, report the outcome. Any fault tears the session down; the next
// lease opens a fresh one.
func (w *workerSlot) supervise() {
	defer w.sh.wg.Done()
	defer w.stop()
	for l := range w.sh.jobs {
		if err := w.ensureStarted(); err != nil {
			w.spawnFails.Add(1)
			w.consecFails++
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, kind: failSpawn,
				err: fmt.Errorf("shard: [w%d] open worker: %w", w.id, err)}
			w.backoff()
			continue
		}
		res, kind, err := w.runLease(l)
		if err != nil {
			switch kind {
			case failTimeout:
				w.timeouts.Add(1)
			case failDecode:
				w.decodes.Add(1)
			case failApp:
				// The worker answered; the request itself is broken. Keep
				// the session and report the terminal error.
				l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, kind: kind, err: err}
				continue
			default:
				w.exits.Add(1)
			}
			w.consecFails++
			w.kill()
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, kind: kind, err: err}
			w.backoff()
			continue
		}
		w.consecFails = 0
		w.chunks.Add(1)
		w.seeds.Add(int64(len(l.seeds)))
		l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, res: res}
	}
}

// ensureStarted opens the slot's transport session if none is live.
func (w *workerSlot) ensureStarted() error {
	if w.conn != nil {
		return nil
	}
	conn, err := w.open()
	if err != nil {
		return err
	}
	if w.gen > 0 {
		w.restarts.Add(1)
	}
	w.gen++
	w.conn = conn
	return nil
}

// spawnWorker starts one worker subprocess for the slot. The process gets
// the slot id and its generation in the environment (plus any chaos
// schedule), and its stderr is streamed to the shard's sink with a stable
// "[wN] " prefix so interleaved diagnostics from a restarted fleet stay
// attributable.
func (w *workerSlot) spawnWorker() (slotConn, error) {
	argv := w.sh.argv
	cmd := exec.Command(argv[0], argv[1:]...)
	env := append(os.Environ(),
		workerIDEnv+"="+strconv.Itoa(w.id),
		workerGenEnv+"="+strconv.Itoa(w.gen))
	if w.sh.Chaos != "" {
		env = append(env, chaosEnv+"="+w.sh.Chaos)
	}
	cmd.Env = append(env, w.sh.Env...)

	// A manual pipe (not cmd.StderrPipe) so our reader, not Wait, owns the
	// read end: Wait never races the prefix goroutine out of the tail of a
	// dying worker's diagnostics.
	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = stderrW
	stdin, err := cmd.StdinPipe()
	if err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, fmt.Errorf("start %q: %w", argv[0], err)
	}
	stderrW.Close() // child holds the write end now
	sink := w.sh.Stderr
	if sink == nil {
		sink = os.Stderr
	}
	go prefixLines(sink, stderrR, fmt.Sprintf("[w%d] ", w.id))
	return &procConn{cmd: cmd, in: stdin, out: bufio.NewReader(stdout)}, nil
}

// runLease exchanges the chunk's (request, response) frames with the live
// session under the chunk deadline. The deadline is enforced by
// interrupting the transport — the blocked exchange then fails and the
// failure is classified as a timeout.
func (w *workerSlot) runLease(l *lease) ([]Result, failKind, error) {
	var timedOut atomic.Bool
	if to := w.sh.pol.ChunkTimeout; to > 0 {
		conn := w.conn
		t := time.AfterFunc(to, func() {
			timedOut.Store(true)
			conn.interrupt()
		})
		defer t.Stop()
	}
	out := make([]Result, len(l.seeds))
	for i, seed := range l.seeds {
		res, kind, err := w.conn.roundTrip(workerRequest{Spec: l.spec.Name, Seed: seed, Epoch: l.epoch})
		if err != nil {
			if timedOut.Load() && kind != failApp {
				kind = failTimeout
				err = fmt.Errorf("shard: [w%d] %s seed %d: chunk deadline %s exceeded: %w",
					w.id, l.spec.Name, seed, w.sh.pol.ChunkTimeout, err)
			}
			return nil, kind, err
		}
		out[i] = res
	}
	return out, 0, nil
}

// kill reaps the slot's transport session after a fault.
func (w *workerSlot) kill() {
	if w.conn == nil {
		return
	}
	w.conn.abort()
	w.conn = nil
}

// stop shuts the slot's session down gracefully at Close.
func (w *workerSlot) stop() {
	if w.conn == nil {
		return
	}
	w.conn.shutdown()
	w.conn = nil
}

// backoff sleeps the capped exponential restart delay with full jitter
// (see FaultPolicy.backoffDelay) so a crashing fleet never restarts in
// lockstep. Timing-only — jitter cannot reach any result bit.
func (w *workerSlot) backoff() {
	if d := w.sh.pol.backoffDelay(w.consecFails, rand.Int63n); d > 0 {
		time.Sleep(d)
	}
}

// procConn is the subprocess transport: the worker's stdio pipes plus the
// process handle for teardown.
type procConn struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out *bufio.Reader
}

// roundTrip performs one request/response exchange with the subprocess
// and classifies any failure for the supervisor. The stdio stream is
// strictly ordered and private to this parent, so no stale-frame scan is
// needed: the next frame is the response (the worker echoes the epoch
// regardless, and the TCP transport checks it).
func (c *procConn) roundTrip(req workerRequest) (Result, failKind, error) {
	if err := writeFrame(c.in, req); err != nil {
		return Result{}, failExit, fmt.Errorf("shard: send %s seed %d: %w", req.Spec, req.Seed, err)
	}
	var resp workerResponse
	if err := readFrame(c.out, &resp); err != nil {
		kind := failExit
		if errors.Is(err, ErrDecode) {
			kind = failDecode
		}
		return Result{}, kind, fmt.Errorf("shard: %s seed %d: %w", req.Spec, req.Seed, err)
	}
	if resp.Err != "" {
		return Result{}, failApp, fmt.Errorf("shard: worker: %s", resp.Err)
	}
	res, err := DecodeResult(resp.Result)
	if err != nil {
		return Result{}, failDecode, fmt.Errorf("shard: %s seed %d: %w", req.Spec, req.Seed, err)
	}
	return res, 0, nil
}

func (c *procConn) interrupt() { c.cmd.Process.Kill() }

func (c *procConn) abort() {
	c.cmd.Process.Kill()
	c.in.Close()
	c.cmd.Wait()
}

// shutdown closes the worker gracefully: EOF on stdin asks it to exit; a
// wedged process is killed after a grace period.
func (c *procConn) shutdown() {
	c.in.Close()
	done := make(chan struct{})
	go func() {
		c.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		c.cmd.Process.Kill()
		<-done
	}
}

// prefixLines copies src to dst line by line with the given prefix.
func prefixLines(dst io.Writer, src io.Reader, prefix string) {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(dst, "%s%s\n", prefix, sc.Bytes())
	}
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// Run fans the seeds across the worker pool as (spec, seed-chunk) leases
// and emits the Results in seed order. Failed leases are retried up to
// the policy's budget — each retry under a fresh lease epoch, so a zombie
// attempt that outlived its reassignment is discarded rather than
// double-emitted — then quarantined to in-process execution when
// degradation is enabled; the call errors only when a chunk has exhausted
// every path (or a worker reports a terminal application error).
func (s *Shard) Run(spec Spec, seeds []int64, emit Emit) error {
	s.once.Do(s.start)
	if s.startErr != nil {
		return s.startErr
	}
	if s.jobs == nil {
		return errors.New("shard: executor is closed")
	}
	pol := s.pol
	numLeases := (len(seeds) + pol.ChunkSeeds - 1) / pol.ChunkSeeds
	// Buffered for the worst case — every attempt of every lease replies —
	// so no supervisor or quarantine goroutine ever blocks on the reply
	// route, whatever order the coordinator drains it in.
	reply := make(chan leaseResult, numLeases*(pol.MaxRetries+2))
	leases := make([]*lease, 0, numLeases)
	for i := 0; i < len(seeds); i += pol.ChunkSeeds {
		j := i + pol.ChunkSeeds
		if j > len(seeds) {
			j = len(seeds)
		}
		leases = append(leases, &lease{spec: spec, seeds: seeds[i:j], ki0: i,
			epoch: s.epochs.Add(1), reply: reply})
	}
	go func() {
		for _, l := range leases {
			s.jobs <- l
		}
	}()

	ord := newReorder(emit)
	var firstErr error
	degradedChunks := 0
	for outstanding := len(leases); outstanding > 0; {
		r := <-reply
		if r.epoch != r.l.epoch {
			// A reply from an attempt whose lease has since been reassigned
			// (a zombie worker past a partition): the live attempt owns the
			// lease now, so this one — success or failure — is void. Dropping
			// it is what makes reassignment safe: exactly one attempt per
			// lease can ever reach the emit path.
			s.staleReplies.Add(1)
			continue
		}
		switch {
		case r.err == nil:
			if firstErr == nil {
				for i, res := range r.res {
					ord.deliver(r.l.ki0+i, res)
				}
			}
			outstanding--
		case r.kind == failApp:
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
		case firstErr != nil:
			// The run is already failing; retrying surviving chunks would
			// only delay the error.
			outstanding--
		case r.l.attempts < pol.MaxRetries:
			r.l.attempts++
			r.l.epoch = s.epochs.Add(1)
			s.retries.Add(1)
			go func(l *lease) { s.jobs <- l }(r.l)
		case pol.DegradeToLocal:
			s.quarantined.Add(1)
			degradedChunks++
			go s.runQuarantined(r.l)
		default:
			firstErr = fmt.Errorf("shard: %s seeds %v: %d worker attempts exhausted and degrade-to-local disabled: %w",
				spec.Name, r.l.seeds, r.l.attempts+1, r.err)
			outstanding--
		}
	}
	if degradedChunks > 0 {
		// Degradation is graceful, not silent: one summary line per Run names
		// how much of the sweep the fleet failed to carry (the same count
		// lands in Health().Quarantined).
		sink := s.Stderr
		if sink == nil {
			sink = os.Stderr
		}
		fmt.Fprintf(sink, "shard: %d chunks degraded to local\n", degradedChunks)
	}
	return firstErr
}

// runQuarantined executes a chunk in-process after its worker retries are
// exhausted — the graceful-degradation path. The seeds are the same
// deterministic functions the workers would have run, so the emitted
// Results are bit-identical to a healthy worker's.
func (s *Shard) runQuarantined(l *lease) {
	res := make([]Result, len(l.seeds))
	for i, seed := range l.seeds {
		r, err := executeSafe(l.spec, seed)
		if err != nil {
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: -1, kind: failApp,
				err: fmt.Errorf("shard: quarantined chunk: %w", err)}
			return
		}
		res[i] = r
	}
	s.degraded.Add(int64(len(l.seeds)))
	l.reply <- leaseResult{l: l, epoch: l.epoch, worker: -1, res: res}
}

// Health snapshots the supervision counters: per-slot worker health plus
// the coordinator's retry/quarantine/stale totals. A Shard that never ran
// reports an empty fleet; a fault-free run reports all-zero counters.
func (s *Shard) Health() ShardHealth {
	h := ShardHealth{
		Retries:       s.retries.Load(),
		Quarantined:   s.quarantined.Load(),
		DegradedSeeds: s.degraded.Load(),
		StaleReplies:  s.staleReplies.Load(),
	}
	for _, w := range s.slots {
		h.Workers = append(h.Workers, WorkerHealth{
			ID:         w.id,
			Restarts:   w.restarts.Load(),
			Chunks:     w.chunks.Load(),
			Seeds:      w.seeds.Load(),
			SpawnFails: w.spawnFails.Load(),
			Exits:      w.exits.Load(),
			Timeouts:   w.timeouts.Load(),
			DecodeErrs: w.decodes.Load(),
			Stales:     w.stales.Load(),
		})
	}
	return h
}

// Close shuts down the worker pool and waits for the transports to close.
// It must not be called concurrently with Run.
func (s *Shard) Close() error {
	s.once.Do(func() {}) // a never-started Shard has nothing to reap
	if s.jobs != nil {
		close(s.jobs)
		s.wg.Wait()
		s.jobs = nil
	}
	return nil
}

// errExecutor is an Executor that always fails; the cache tests use it to
// prove warm runs never reach the inner backend.
type errExecutor struct{ err error }

func (e errExecutor) Run(Spec, []int64, Emit) error { return e.err }

// FailExecutor returns an Executor whose Run always returns an error with
// the given message. It exists for tests that must prove a decorator never
// delegates (e.g. a warm cache).
func FailExecutor(msg string) Executor { return errExecutor{errors.New(msg)} }
