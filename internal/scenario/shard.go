package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
)

// Shard executes seeds on a pool of worker subprocesses, each the current
// binary re-executed with the hidden -worker flag (plus the original
// command line, so workers rebuild any flag-parameterized specs
// identically) speaking the length-prefixed JSON protocol in worker.go.
//
// The pool starts lazily on the first Run and is shared across concurrent
// Run calls, so a Runner fanning the whole registry over one Shard keeps
// exactly Workers subprocesses busy. Results are reordered into seed order
// before emission, so the aggregate is bit-identical to the Local
// backend's. Close shuts the workers down; callers that finished running
// should Close to reap the subprocesses.
type Shard struct {
	Workers int      // subprocess count; values < 1 mean runtime.NumCPU()
	Argv    []string // worker command; nil means {os.Executable(), "-worker", os.Args[1:]...}

	once     sync.Once
	startErr error
	jobs     chan shardJob
	wg       sync.WaitGroup
}

// shardJob is one (spec, seed) request with its reply route. ki travels
// with the job so replies can arrive on one shared channel per Run call.
type shardJob struct {
	spec  string
	seed  int64
	ki    int
	reply chan<- shardReply
}

type shardReply struct {
	ki  int
	res Result
	err error
}

// workerArgv builds the default worker command line. The -worker flag goes
// immediately after the program name — before any positional arguments —
// so flag parsing in the child is guaranteed to see it.
func workerArgv() ([]string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: resolve executable: %w", err)
	}
	return append([]string{exe, "-worker"}, os.Args[1:]...), nil
}

func (s *Shard) start() {
	argv := s.Argv
	if argv == nil {
		argv, s.startErr = workerArgv()
		if s.startErr != nil {
			return
		}
	}
	n := s.Workers
	if n < 1 {
		n = runtime.NumCPU()
	}
	s.jobs = make(chan shardJob)
	for i := 0; i < n; i++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err == nil {
			var stdout io.ReadCloser
			stdout, err = cmd.StdoutPipe()
			if err == nil {
				err = cmd.Start()
				if err == nil {
					s.wg.Add(1)
					go s.serve(cmd, stdin, bufio.NewReader(stdout))
					continue
				}
			}
		}
		s.startErr = fmt.Errorf("shard: start worker %d (%q): %w", i, argv[0], err)
		break
	}
	if s.startErr != nil {
		// Reap whatever did start so a failed start leaks nothing.
		close(s.jobs)
		s.wg.Wait()
		s.jobs = nil
	}
}

// serve owns one worker subprocess: it forwards jobs from the shared
// channel and reads the matching responses. A worker that errors once is
// dead for good — every later job it picks up fails immediately with the
// original error, and the healthy workers absorb the rest of the queue.
func (s *Shard) serve(cmd *exec.Cmd, in io.WriteCloser, out *bufio.Reader) {
	defer s.wg.Done()
	var dead error
	for job := range s.jobs {
		if dead != nil {
			job.reply <- shardReply{ki: job.ki, err: dead}
			continue
		}
		res, err := roundTrip(in, out, job)
		if err != nil {
			dead = err
			job.reply <- shardReply{ki: job.ki, err: dead}
			continue
		}
		job.reply <- shardReply{ki: job.ki, res: res}
	}
	in.Close()
	cmd.Wait()
}

// roundTrip performs one request/response exchange with a worker.
func roundTrip(in io.Writer, out *bufio.Reader, job shardJob) (Result, error) {
	if err := writeFrame(in, workerRequest{Spec: job.spec, Seed: job.seed}); err != nil {
		return Result{}, fmt.Errorf("shard: send %s seed %d: %w", job.spec, job.seed, err)
	}
	var resp workerResponse
	if err := readFrame(out, &resp); err != nil {
		return Result{}, fmt.Errorf("shard: worker died on %s seed %d: %w", job.spec, job.seed, err)
	}
	if resp.Err != "" {
		return Result{}, fmt.Errorf("shard: worker: %s", resp.Err)
	}
	res, err := DecodeResult(resp.Result)
	if err != nil {
		return Result{}, fmt.Errorf("shard: %s seed %d: %w", job.spec, job.seed, err)
	}
	return res, nil
}

// Run fans the seeds across the worker pool and emits the Results in seed
// order. Any worker failure fails the whole call — partial aggregates are
// worse than loud errors.
func (s *Shard) Run(spec Spec, seeds []int64, emit Emit) error {
	s.once.Do(s.start)
	if s.startErr != nil {
		return s.startErr
	}
	if s.jobs == nil {
		return errors.New("shard: executor is closed")
	}
	reply := make(chan shardReply, len(seeds))
	go func() {
		for ki, seed := range seeds {
			s.jobs <- shardJob{spec: spec.Name, seed: seed, ki: ki, reply: reply}
		}
	}()
	ord := newReorder(emit)
	var firstErr error
	for range seeds {
		r := <-reply
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if firstErr == nil {
			ord.deliver(r.ki, r.res)
		}
	}
	return firstErr
}

// Close shuts down the worker pool and waits for the subprocesses to
// exit. It must not be called concurrently with Run.
func (s *Shard) Close() error {
	s.once.Do(func() {}) // a never-started Shard has nothing to reap
	if s.jobs != nil {
		close(s.jobs)
		s.wg.Wait()
		s.jobs = nil
	}
	return nil
}

// errExecutor is an Executor that always fails; the cache tests use it to
// prove warm runs never reach the inner backend.
type errExecutor struct{ err error }

func (e errExecutor) Run(Spec, []int64, Emit) error { return e.err }

// FailExecutor returns an Executor whose Run always returns an error with
// the given message. It exists for tests that must prove a decorator never
// delegates (e.g. a warm cache).
func FailExecutor(msg string) Executor { return errExecutor{errors.New(msg)} }
