package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Shard executes seeds on a supervised pool of worker slots. A slot's
// transport is one of two interchangeable kinds speaking the same binary
// frame protocol (versioned via the hello frame — see codec.go):
//
//   - subprocess (default): the current binary re-executed with the hidden
//     -worker flag (plus the original command line, so workers rebuild any
//     flag-parameterized specs identically) over stdin/stdout;
//   - remote TCP (Addrs set): a connection dialed to a worker serving the
//     same protocol over TCP (the hidden -serve addr mode, see ServeNet),
//     so the fleet leaves the box.
//
// Pipelining. Requests are chunk-granular — one frame carries a whole
// seed chunk, the worker streams one response frame per seed — so a lease
// costs one round trip however many seeds it holds. On top of that each
// slot keeps up to FaultPolicy.Window leases in flight on its connection:
// all requests of a batch are written before the first response is read,
// so transport latency is paid once per window, not once per seed.
// Responses arrive in request order (workers are serial), and every frame
// still echoes its (epoch, spec, seed) identity for stale matching.
//
// Supervision. A coordinator leases (spec, seed-chunk) units to worker
// slots. A slot detects failure at the process level (exit, broken pipe),
// the connection level (dial timeout, dropped connection, per-frame read
// deadline with heartbeat keep-alive — a partitioned TCP worker stops
// heartbeating and is torn down), the time level (per-chunk deadline), and
// the stream level (frame/Result decode error, protocol-version mismatch);
// on any of them the dead transport is reaped, the slot reconnects or
// respawns on demand with capped exponential backoff plus jitter, and the
// chunk is reassigned. Every lease attempt carries a fresh epoch:
// responses are matched on (epoch, spec, seed), so a zombie or partitioned
// worker replaying a stale chunk after its lease was reassigned is
// discarded — counted, never double-emitted. A chunk that exhausts its
// retry budget is quarantined to in-process execution (graceful
// degradation to the Local path) when the policy allows, so a run only
// errors when every path is exhausted. Because every seed is deterministic
// and Results cross the boundary bit-exactly, a retried or degraded chunk
// is indistinguishable from a first-attempt one: the fabric tolerates
// crashes, hangs, partitions and corrupt frames without costing a single
// output bit (the chaos-injected cross-backend equivalence test pins
// exactly that). Worker-reported application errors (unknown spec,
// experiment panic) are terminal: the fleet is healthy, so retrying
// cannot fix the request.
//
// The pool starts lazily on the first Run and is shared across concurrent
// Run calls, so a Runner fanning the whole registry over one Shard keeps
// exactly Workers transports busy. Results are reordered into seed order
// before emission, so the aggregate is bit-identical to the Local
// backend's. Close shuts the workers down; callers that finished running
// should Close to reap subprocesses and connections. Health returns the
// supervision counters accumulated so far, including fabric throughput
// (seeds/sec, protocol bytes moved).
type Shard struct {
	Workers int         // slot count; values < 1 mean runtime.NumCPU() (or len(Addrs) for TCP)
	Argv    []string    // worker command; nil means {os.Executable(), "-worker", os.Args[1:]...}
	Env     []string    // extra KEY=VALUE pairs for worker subprocesses
	Addrs   []string    // remote TCP worker addresses; non-empty selects the TCP transport
	Chaos   string      // fault-injection schedule exported to subprocess workers as REPRO_CHAOS (see ParseChaos)
	Policy  FaultPolicy // supervision knobs; zero value means DefaultFaultPolicy
	Stderr  io.Writer   // sink for worker stderr and coordinator notices, worker lines prefixed "[wN] "; nil means os.Stderr

	once     sync.Once
	startErr error
	argv     []string
	pol      FaultPolicy
	jobs     chan *lease
	wg       sync.WaitGroup
	slots    []*workerSlot

	epochs       atomic.Int64 // lease-epoch allocator; every attempt gets a unique epoch
	retries      atomic.Int64
	quarantined  atomic.Int64
	degraded     atomic.Int64
	staleReplies atomic.Int64

	bytesSent atomic.Int64 // protocol bytes written to worker transports
	bytesRecv atomic.Int64 // protocol bytes read from worker transports
	runStart  atomic.Int64 // UnixNano of the first Run; throughput clock start
	runEnd    atomic.Int64 // UnixNano of the latest Run completion
}

// lease is one (spec, seed-chunk) unit of work: a run of consecutive
// seeds starting at index ki0 of the Run's seed slice, with its reply
// route, the coordinator-owned failed-attempt count and the epoch of the
// attempt currently in flight. Ownership alternates over the jobs/reply
// channels, so epoch and attempts are never accessed concurrently.
type lease struct {
	spec     Spec
	seeds    []int64
	ki0      int
	attempts int
	epoch    int64
	reply    chan<- leaseResult
}

type leaseResult struct {
	l      *lease
	epoch  int64    // the epoch this attempt ran under
	res    []Result // len(l.seeds) on success
	worker int      // slot id; -1 for quarantined in-process execution
	kind   failKind
	err    error
}

// slotConn is one live transport session filling a worker slot: a
// subprocess's stdio pipes or a dialed TCP connection. send writes one
// chunk request; recv reads the response frame for one seed of it —
// splitting the exchange is what lets the supervisor pipeline a window of
// leases before reading anything back. interrupt makes blocked I/O fail
// now (the chunk-deadline enforcement); abort is the hard teardown after
// a fault; shutdown the graceful close at pool shutdown.
type slotConn interface {
	send(spec string, seeds []int64, epoch int64) (failKind, error)
	recv(spec string, seed, epoch int64) (Result, failKind, error)
	interrupt()
	abort()
	shutdown()
}

// connCore is the transport-independent half of a slot connection: binary
// frame encode/decode with reused scratch (the send path builds each
// frame in one buffer and writes it with a single Write; the recv path
// reads into one reused buffer and decodes Results through an interning
// decoder), hello/version validation, stale-frame matching and byte
// accounting. procConn and netConn embed it and add transport-specific
// teardown; the deadline hook and error classifier are the only behavior
// that differs between the two on the data path.
type connCore struct {
	w      io.Writer
	br     *bufio.Reader
	tag    string // error-message prefix: "shard" (subprocess) or "net" (TCP)
	stales *atomic.Int64
	sent   *atomic.Int64
	recvd  *atomic.Int64

	// arm arms the transport's per-frame deadline before a read or write;
	// nil for transports without deadlines (subprocess pipes — the chunk
	// timer is their only clock).
	arm func(read bool)
	// classify maps a raw transport error to the failure taxonomy.
	classify func(error) failKind

	fs      frameScratch
	inbuf   []byte
	dec     *resultDecoder
	helloOK bool
}

// send writes one chunk request as a single frame (header and payload in
// one Write — no torn-frame window, no per-seed round trips).
func (c *connCore) send(spec string, seeds []int64, epoch int64) (failKind, error) {
	frame := c.fs.requestFrame(spec, seeds, epoch)
	if c.arm != nil {
		c.arm(false)
	}
	if _, err := c.w.Write(frame); err != nil {
		return c.classify(err), fmt.Errorf("%s: send %s chunk: %w", c.tag, spec, err)
	}
	c.sent.Add(int64(len(frame)))
	return 0, nil
}

// recv reads frames until the response for (epoch, spec, seed) arrives.
// Heartbeats only prove liveness (they re-arm the per-frame deadline);
// the first non-heartbeat frame of a session must be a hello carrying
// protoVersion, so a build skew fails loudly as a decode fault instead of
// a misparse. Frames for any other (epoch, spec, seed) are stale — a
// zombie session's replays — and are skipped and counted, never surfaced.
func (c *connCore) recv(spec string, seed, epoch int64) (Result, failKind, error) {
	for {
		if c.arm != nil {
			c.arm(true)
		}
		payload, err := readRawFrame(c.br, &c.inbuf)
		if err != nil {
			kind := c.classify(err)
			if errors.Is(err, ErrDecode) {
				kind = failDecode
			}
			return Result{}, kind, fmt.Errorf("%s: %s seed %d: %w", c.tag, spec, seed, err)
		}
		c.recvd.Add(int64(4 + len(payload)))
		m, err := parseWireMsg(payload)
		if err != nil {
			return Result{}, failDecode, fmt.Errorf("%s: %s seed %d: %w", c.tag, spec, seed, err)
		}
		switch m.ftype {
		case frameHeartbeat:
			continue
		case frameHello:
			if c.helloOK {
				return Result{}, failDecode, fmt.Errorf("%s: %w: unexpected mid-session hello", c.tag, ErrDecode)
			}
			if m.version != protoVersion {
				return Result{}, failDecode, fmt.Errorf("%s: %w: worker speaks protocol version %d, want %d", c.tag, ErrDecode, m.version, protoVersion)
			}
			c.helloOK = true
			continue
		}
		if !c.helloOK {
			return Result{}, failDecode, fmt.Errorf("%s: %w: response before hello", c.tag, ErrDecode)
		}
		if m.epoch != epoch || string(m.spec) != spec || m.seed != seed {
			// A frame for some other attempt — a zombie session's replay.
			// Skipping (rather than failing) lets the live exchange on this
			// connection complete normally.
			c.stales.Add(1)
			continue
		}
		if m.ftype == frameError {
			return Result{}, failApp, fmt.Errorf("%s: worker: %s", c.tag, m.errMsg)
		}
		var res Result
		if err := c.dec.decode(m.result, &res, false); err != nil {
			return Result{}, failDecode, fmt.Errorf("%s: %s seed %d: %w", c.tag, spec, seed, err)
		}
		return res, 0, nil
	}
}

// workerSlot supervises one worker position in the pool: it owns at most
// one live transport session at a time, reopens it on demand after
// failures, and keeps the slot-stable health counters. The slot id is
// stable across restarts — it names the [wN] stderr prefix and the health
// row.
type workerSlot struct {
	id   int
	sh   *Shard
	open func() (slotConn, error) // transport factory: spawn subprocess or dial TCP

	conn slotConn
	gen  int // sessions opened in this slot so far

	consecFails int // consecutive failed batches/opens, drives the backoff

	restarts, chunks, seeds                      atomic.Int64
	spawnFails, exits, timeouts, decodes, stales atomic.Int64
}

// workerArgv builds the default worker command line. The -worker flag goes
// immediately after the program name — before any positional arguments —
// so flag parsing in the child is guaranteed to see it.
func workerArgv() ([]string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: resolve executable: %w", err)
	}
	return append([]string{exe, "-worker"}, os.Args[1:]...), nil
}

func (s *Shard) start() {
	s.pol = s.Policy.normalized()
	n := s.Workers
	if len(s.Addrs) > 0 {
		if n < 1 {
			n = len(s.Addrs)
		}
	} else {
		argv := s.Argv
		if argv == nil {
			argv, s.startErr = workerArgv()
			if s.startErr != nil {
				return
			}
		}
		s.argv = argv
		if n < 1 {
			n = runtime.NumCPU()
		}
	}
	// Buffered so a slot collecting its pipelining window finds queued
	// leases without blocking on the producer.
	s.jobs = make(chan *lease, n*s.pol.Window)
	s.slots = make([]*workerSlot, n)
	for i := 0; i < n; i++ {
		w := &workerSlot{id: i, sh: s}
		if len(s.Addrs) > 0 {
			addr := s.Addrs[i%len(s.Addrs)] // slots round-robin over the fleet
			w.open = func() (slotConn, error) { return dialWorker(addr, s.pol, w) }
		} else {
			w.open = w.spawnWorker
		}
		s.slots[i] = w
		s.wg.Add(1)
		go w.supervise()
	}
}

// supervise is one slot's loop: take a lease, opportunistically collect
// up to Window-1 more already-queued ones (never blocking for them), and
// run them as one pipelined batch on the slot's session.
func (w *workerSlot) supervise() {
	defer w.sh.wg.Done()
	defer w.stop()
	batch := make([]*lease, 0, w.sh.pol.Window)
	for l := range w.sh.jobs {
		batch = append(batch[:0], l)
	collect:
		for len(batch) < w.sh.pol.Window {
			select {
			case l2, ok := <-w.sh.jobs:
				if !ok {
					break collect
				}
				batch = append(batch, l2)
			default:
				break collect
			}
		}
		w.runBatch(batch)
	}
}

// ensureStarted opens the slot's transport session if none is live.
func (w *workerSlot) ensureStarted() error {
	if w.conn != nil {
		return nil
	}
	conn, err := w.open()
	if err != nil {
		return err
	}
	if w.gen > 0 {
		w.restarts.Add(1)
	}
	w.gen++
	w.conn = conn
	return nil
}

// spawnWorker starts one worker subprocess for the slot. The process gets
// the slot id and its generation in the environment (plus any chaos
// schedule), and its stderr is streamed to the shard's sink with a stable
// "[wN] " prefix so interleaved diagnostics from a restarted fleet stay
// attributable.
func (w *workerSlot) spawnWorker() (slotConn, error) {
	argv := w.sh.argv
	cmd := exec.Command(argv[0], argv[1:]...)
	env := append(os.Environ(),
		workerIDEnv+"="+strconv.Itoa(w.id),
		workerGenEnv+"="+strconv.Itoa(w.gen))
	if w.sh.Chaos != "" {
		env = append(env, chaosEnv+"="+w.sh.Chaos)
	}
	cmd.Env = append(env, w.sh.Env...)

	// A manual pipe (not cmd.StderrPipe) so our reader, not Wait, owns the
	// read end: Wait never races the prefix goroutine out of the tail of a
	// dying worker's diagnostics.
	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = stderrW
	stdin, err := cmd.StdinPipe()
	if err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stderrR.Close()
		stderrW.Close()
		return nil, fmt.Errorf("start %q: %w", argv[0], err)
	}
	stderrW.Close() // child holds the write end now
	sink := w.sh.Stderr
	if sink == nil {
		sink = os.Stderr
	}
	go prefixLines(sink, stderrR, fmt.Sprintf("[w%d] ", w.id))
	return &procConn{
		connCore: connCore{
			w:        stdin,
			br:       bufio.NewReader(stdout),
			tag:      "shard",
			stales:   &w.stales,
			sent:     &w.sh.bytesSent,
			recvd:    &w.sh.bytesRecv,
			classify: func(error) failKind { return failExit },
			dec:      newResultDecoder(),
		},
		cmd: cmd,
		in:  stdin,
	}, nil
}

// runBatch drives one pipelined batch: open the session if needed, write
// every lease's chunk request back-to-back, then read the streamed
// responses in the same order. The chunk deadline is per lease — the
// timer re-arms as each lease completes — enforced by interrupting the
// transport so the blocked exchange fails as a timeout.
func (w *workerSlot) runBatch(batch []*lease) {
	if err := w.ensureStarted(); err != nil {
		// The session never existed, so no lease was attempted: charge the
		// spawn failure to the first lease and put the rest back untouched.
		w.spawnFails.Add(1)
		w.consecFails++
		batch[0].reply <- leaseResult{l: batch[0], epoch: batch[0].epoch, worker: w.id, kind: failSpawn,
			err: fmt.Errorf("shard: [w%d] open worker: %w", w.id, err)}
		for _, l := range batch[1:] {
			go func(l *lease) { w.sh.jobs <- l }(l)
		}
		w.backoff()
		return
	}
	conn := w.conn
	var timedOut atomic.Bool
	var timer *time.Timer
	to := w.sh.pol.ChunkTimeout
	if to > 0 {
		timer = time.AfterFunc(to, func() {
			timedOut.Store(true)
			conn.interrupt()
		})
		defer timer.Stop()
	}
	fail := func(from int, kind failKind, err error) {
		if timedOut.Load() && kind != failApp {
			kind = failTimeout
			err = fmt.Errorf("shard: [w%d] chunk deadline %s exceeded: %w", w.id, to, err)
		}
		switch kind {
		case failTimeout:
			w.timeouts.Add(int64(len(batch) - from))
		case failDecode:
			w.decodes.Add(int64(len(batch) - from))
		default:
			w.exits.Add(int64(len(batch) - from))
		}
		w.consecFails++
		w.kill()
		for _, l := range batch[from:] {
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, kind: kind, err: err}
		}
		w.backoff()
	}
	for _, l := range batch {
		if kind, err := conn.send(l.spec.Name, l.seeds, l.epoch); err != nil {
			// Nothing was received yet, so no lease of this batch completed:
			// the dead transport fails them all.
			fail(0, kind, err)
			return
		}
	}
	for bi, l := range batch {
		out := make([]Result, len(l.seeds))
		var appErr error
		for si, seed := range l.seeds {
			res, kind, err := conn.recv(l.spec.Name, seed, l.epoch)
			if err != nil {
				if kind == failApp {
					// The worker answered: the request is broken but the session
					// — and the rest of the streamed chunk — is healthy. Keep
					// draining so later leases stay in sync.
					if appErr == nil {
						appErr = err
					}
					continue
				}
				fail(bi, kind, err)
				return
			}
			out[si] = res
		}
		if appErr != nil {
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, kind: failApp, err: appErr}
		} else {
			w.chunks.Add(1)
			w.seeds.Add(int64(len(l.seeds)))
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: w.id, res: out}
		}
		if timer != nil {
			timer.Reset(to)
		}
	}
	w.consecFails = 0
}

// kill reaps the slot's transport session after a fault.
func (w *workerSlot) kill() {
	if w.conn == nil {
		return
	}
	w.conn.abort()
	w.conn = nil
}

// stop shuts the slot's session down gracefully at Close.
func (w *workerSlot) stop() {
	if w.conn == nil {
		return
	}
	w.conn.shutdown()
	w.conn = nil
}

// backoff sleeps the capped exponential restart delay with full jitter
// (see FaultPolicy.backoffDelay) so a crashing fleet never restarts in
// lockstep. Timing-only — jitter cannot reach any result bit.
func (w *workerSlot) backoff() {
	if d := w.sh.pol.backoffDelay(w.consecFails, rand.Int63n); d > 0 {
		time.Sleep(d)
	}
}

// procConn is the subprocess transport: connCore over the worker's stdio
// pipes plus the process handle for teardown. The stdio stream has no
// per-frame deadline (arm is nil) — the chunk timer is its only clock —
// and every transport error is a process exit or broken pipe.
type procConn struct {
	connCore
	cmd *exec.Cmd
	in  io.WriteCloser
}

func (c *procConn) interrupt() { c.cmd.Process.Kill() }

func (c *procConn) abort() {
	c.cmd.Process.Kill()
	c.in.Close()
	c.cmd.Wait()
}

// shutdown closes the worker gracefully: EOF on stdin asks it to exit; a
// wedged process is killed after a grace period.
func (c *procConn) shutdown() {
	c.in.Close()
	done := make(chan struct{})
	go func() {
		c.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		c.cmd.Process.Kill()
		<-done
	}
}

// prefixLines copies src to dst line by line with the given prefix.
func prefixLines(dst io.Writer, src io.Reader, prefix string) {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(dst, "%s%s\n", prefix, sc.Bytes())
	}
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// Run fans the seeds across the worker pool as (spec, seed-chunk) leases
// and emits the Results in seed order. Failed leases are retried up to
// the policy's budget — each retry under a fresh lease epoch, so a zombie
// attempt that outlived its reassignment is discarded rather than
// double-emitted — then quarantined to in-process execution when
// degradation is enabled; the call errors only when a chunk has exhausted
// every path (or a worker reports a terminal application error).
func (s *Shard) Run(spec Spec, seeds []int64, emit Emit) error {
	s.once.Do(s.start)
	if s.startErr != nil {
		return s.startErr
	}
	if s.jobs == nil {
		return errors.New("shard: executor is closed")
	}
	s.runStart.CompareAndSwap(0, time.Now().UnixNano())
	defer func() { s.runEnd.Store(time.Now().UnixNano()) }()
	pol := s.pol
	numLeases := (len(seeds) + pol.ChunkSeeds - 1) / pol.ChunkSeeds
	// Buffered for the worst case — every attempt of every lease replies —
	// so no supervisor or quarantine goroutine ever blocks on the reply
	// route, whatever order the coordinator drains it in.
	reply := make(chan leaseResult, numLeases*(pol.MaxRetries+2))
	leases := make([]*lease, 0, numLeases)
	for i := 0; i < len(seeds); i += pol.ChunkSeeds {
		j := i + pol.ChunkSeeds
		if j > len(seeds) {
			j = len(seeds)
		}
		leases = append(leases, &lease{spec: spec, seeds: seeds[i:j], ki0: i,
			epoch: s.epochs.Add(1), reply: reply})
	}
	go func() {
		for _, l := range leases {
			s.jobs <- l
		}
	}()

	ord := newReorder(emit)
	var firstErr error
	degradedChunks := 0
	for outstanding := len(leases); outstanding > 0; {
		r := <-reply
		if r.epoch != r.l.epoch {
			// A reply from an attempt whose lease has since been reassigned
			// (a zombie worker past a partition): the live attempt owns the
			// lease now, so this one — success or failure — is void. Dropping
			// it is what makes reassignment safe: exactly one attempt per
			// lease can ever reach the emit path.
			s.staleReplies.Add(1)
			continue
		}
		switch {
		case r.err == nil:
			if firstErr == nil {
				for i, res := range r.res {
					ord.deliver(r.l.ki0+i, res)
				}
			}
			outstanding--
		case r.kind == failApp:
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
		case firstErr != nil:
			// The run is already failing; retrying surviving chunks would
			// only delay the error.
			outstanding--
		case r.l.attempts < pol.MaxRetries:
			r.l.attempts++
			r.l.epoch = s.epochs.Add(1)
			s.retries.Add(1)
			go func(l *lease) { s.jobs <- l }(r.l)
		case pol.DegradeToLocal:
			s.quarantined.Add(1)
			degradedChunks++
			go s.runQuarantined(r.l)
		default:
			firstErr = fmt.Errorf("shard: %s seeds %v: %d worker attempts exhausted and degrade-to-local disabled: %w",
				spec.Name, r.l.seeds, r.l.attempts+1, r.err)
			outstanding--
		}
	}
	if degradedChunks > 0 {
		// Degradation is graceful, not silent: one summary line per Run names
		// how much of the sweep the fleet failed to carry (the same count
		// lands in Health().Quarantined).
		sink := s.Stderr
		if sink == nil {
			sink = os.Stderr
		}
		fmt.Fprintf(sink, "shard: %d chunks degraded to local\n", degradedChunks)
	}
	return firstErr
}

// runQuarantined executes a chunk in-process after its worker retries are
// exhausted — the graceful-degradation path. The seeds are the same
// deterministic functions the workers would have run, so the emitted
// Results are bit-identical to a healthy worker's.
func (s *Shard) runQuarantined(l *lease) {
	res := make([]Result, len(l.seeds))
	for i, seed := range l.seeds {
		r, err := executeSafe(l.spec, seed)
		if err != nil {
			l.reply <- leaseResult{l: l, epoch: l.epoch, worker: -1, kind: failApp,
				err: fmt.Errorf("shard: quarantined chunk: %w", err)}
			return
		}
		res[i] = r
	}
	s.degraded.Add(int64(len(l.seeds)))
	l.reply <- leaseResult{l: l, epoch: l.epoch, worker: -1, res: res}
}

// Health snapshots the supervision counters: per-slot worker health plus
// the coordinator's retry/quarantine/stale totals and the fabric
// throughput (seeds/sec over the Run wall clock, protocol bytes moved). A
// Shard that never ran reports an empty fleet; a fault-free run reports
// all-zero failure counters.
func (s *Shard) Health() ShardHealth {
	h := ShardHealth{
		Retries:       s.retries.Load(),
		Quarantined:   s.quarantined.Load(),
		DegradedSeeds: s.degraded.Load(),
		StaleReplies:  s.staleReplies.Load(),
		BytesSent:     s.bytesSent.Load(),
		BytesRecv:     s.bytesRecv.Load(),
	}
	seeds := h.DegradedSeeds
	for _, w := range s.slots {
		wh := WorkerHealth{
			ID:         w.id,
			Restarts:   w.restarts.Load(),
			Chunks:     w.chunks.Load(),
			Seeds:      w.seeds.Load(),
			SpawnFails: w.spawnFails.Load(),
			Exits:      w.exits.Load(),
			Timeouts:   w.timeouts.Load(),
			DecodeErrs: w.decodes.Load(),
			Stales:     w.stales.Load(),
		}
		seeds += wh.Seeds
		h.Workers = append(h.Workers, wh)
	}
	if start, end := s.runStart.Load(), s.runEnd.Load(); start != 0 && end > start {
		h.ElapsedSec = float64(end-start) / 1e9
		h.SeedsPerSec = float64(seeds) / h.ElapsedSec
	}
	return h
}

// Close shuts down the worker pool and waits for the transports to close.
// It must not be called concurrently with Run.
func (s *Shard) Close() error {
	s.once.Do(func() {}) // a never-started Shard has nothing to reap
	if s.jobs != nil {
		close(s.jobs)
		s.wg.Wait()
		s.jobs = nil
	}
	return nil
}

// errExecutor is an Executor that always fails; the cache tests use it to
// prove warm runs never reach the inner backend.
type errExecutor struct{ err error }

func (e errExecutor) Run(Spec, []int64, Emit) error { return e.err }

// FailExecutor returns an Executor whose Run always returns an error with
// the given message. It exists for tests that must prove a decorator never
// delegates (e.g. a warm cache).
func FailExecutor(msg string) Executor { return errExecutor{errors.New(msg)} }
