package scenario

import (
	"fmt"
	"strings"
	"time"
)

// FaultPolicy configures the Shard executor's supervision layer: how many
// times a failed (spec, seed-chunk) lease is reassigned, how long a worker
// may hold a lease before it is declared hung, how worker restarts are
// paced, and whether an exhausted chunk degrades to in-process execution
// instead of failing the run.
//
// The zero value means DefaultFaultPolicy. In a partially filled policy,
// zero counts/durations are replaced by their defaults and negative values
// disable the knob (MaxRetries < 0: never reassign; ChunkTimeout < 0: no
// deadline; RestartBackoff < 0: restart immediately); DegradeToLocal is
// honoured as given. Retries are semantically free: every seed is
// deterministic and Results cross the worker boundary bit-exactly, so a
// recomputed chunk is indistinguishable from the first attempt.
type FaultPolicy struct {
	// MaxRetries is the number of times a failed chunk is reassigned to a
	// (possibly restarted) worker after its first failed attempt. A chunk
	// that fails 1+MaxRetries worker attempts is quarantined.
	MaxRetries int
	// ChunkTimeout bounds one lease: a worker that has not finished its
	// chunk within the deadline is killed and the chunk fails as a timeout.
	ChunkTimeout time.Duration
	// RestartBackoff is the base delay before a failed worker slot takes
	// its next lease; consecutive failures back off exponentially (capped
	// by MaxBackoff) with jitter so a crashing fleet never restarts in
	// lockstep.
	RestartBackoff time.Duration
	// MaxBackoff caps the exponential restart backoff.
	MaxBackoff time.Duration
	// DegradeToLocal runs a quarantined chunk in-process on the coordinator
	// (the Local path every worker wraps anyway) instead of failing the
	// run, so a run only errors once every path is exhausted.
	DegradeToLocal bool
	// ChunkSeeds is the number of consecutive seeds per lease. One lease is
	// one request frame: the worker streams one response frame per seed, so
	// larger chunks amortize the request round trip across more seeds (at
	// the cost of coarser retry units — a failed chunk recomputes all its
	// seeds).
	ChunkSeeds int
	// Window is the number of leases a worker slot keeps in flight on its
	// connection: all requests of a window are written before the first
	// response is read, so transport latency is paid once per window.
	// Negative disables pipelining (one lease at a time).
	Window int

	// DialTimeout bounds one connection attempt to a remote TCP worker
	// (Shard.Addrs). Connection-level failure detection starts here: an
	// unreachable host fails the attempt instead of hanging the slot.
	DialTimeout time.Duration
	// FrameTimeout is the per-frame read deadline on a TCP worker
	// connection: if no frame (response or heartbeat) arrives within it,
	// the worker is declared partitioned and the connection is torn down.
	// Healthy remote workers heartbeat every heartbeatEvery, far inside
	// this deadline, so a long-running seed never trips it.
	FrameTimeout time.Duration
}

// DefaultFaultPolicy returns the repository-wide supervision defaults:
// three reassignments per chunk, a two-minute chunk deadline (every
// registered experiment finishes a seed in well under a second), 100 ms
// base restart backoff capped at 5 s, degradation to local execution
// enabled, one seed per lease, four leases pipelined per connection, a
// 5 s dial timeout and a 5 s per-frame read deadline (heartbeats arrive
// every second, so only a partition — never a slow seed — can exhaust
// it).
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		MaxRetries:     3,
		ChunkTimeout:   2 * time.Minute,
		RestartBackoff: 100 * time.Millisecond,
		MaxBackoff:     5 * time.Second,
		DegradeToLocal: true,
		ChunkSeeds:     1,
		Window:         4,
		DialTimeout:    5 * time.Second,
		FrameTimeout:   5 * time.Second,
	}
}

// normalized resolves the zero-value and partially-filled conventions
// documented on FaultPolicy.
func (p FaultPolicy) normalized() FaultPolicy {
	def := DefaultFaultPolicy()
	if p == (FaultPolicy{}) {
		return def
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = def.MaxRetries
	} else if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.ChunkTimeout == 0 {
		p.ChunkTimeout = def.ChunkTimeout
	} else if p.ChunkTimeout < 0 {
		p.ChunkTimeout = 0
	}
	if p.RestartBackoff == 0 {
		p.RestartBackoff = def.RestartBackoff
	} else if p.RestartBackoff < 0 {
		p.RestartBackoff = 0
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.ChunkSeeds < 1 {
		p.ChunkSeeds = def.ChunkSeeds
	}
	if p.Window == 0 {
		p.Window = def.Window
	} else if p.Window < 0 {
		p.Window = 1
	}
	if p.DialTimeout == 0 {
		p.DialTimeout = def.DialTimeout
	} else if p.DialTimeout < 0 {
		p.DialTimeout = 0
	}
	if p.FrameTimeout == 0 {
		p.FrameTimeout = def.FrameTimeout
	} else if p.FrameTimeout < 0 {
		p.FrameTimeout = 0
	}
	return p
}

// backoffDelay is the restart pacing schedule: capped exponential with
// full jitter on the upper half. For the k-th consecutive failure (k ≥ 1)
// the base delay is RestartBackoff << (k-1), capped by MaxBackoff, and
// the slept delay is uniformly drawn from [base/2, base] — so a crashing
// fleet never restarts in lockstep. rnd supplies the jitter draw
// (rand.Int63n-shaped); a disabled backoff (RestartBackoff ≤ 0 after
// normalization) is always zero. Timing-only — jitter cannot reach any
// result bit.
func (p FaultPolicy) backoffDelay(consecFails int, rnd func(n int64) int64) time.Duration {
	if p.RestartBackoff <= 0 {
		return 0
	}
	shift := consecFails - 1
	if shift < 0 {
		shift = 0
	} else if shift > 16 {
		shift = 16
	}
	d := p.RestartBackoff << uint(shift)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(rnd(int64(half)+1))
}

// failKind classifies one failed lease attempt. The supervisor detects
// worker failure three ways — process exit (or broken pipe), per-chunk
// deadline timeout, and frame/result decode error — and failApp marks
// worker-reported application errors (unknown spec, experiment panic)
// that retrying a healthy fleet cannot fix.
type failKind int

const (
	failExit    failKind = iota // process died / pipe broke / connection dropped mid-exchange
	failSpawn                   // worker process could not be started / connection could not be dialed
	failTimeout                 // chunk deadline or per-frame read deadline exceeded; worker killed
	failDecode                  // corrupt frame or undecodable Result
	failApp                     // worker-reported error; terminal, never retried
)

func (k failKind) String() string {
	switch k {
	case failExit:
		return "exit"
	case failSpawn:
		return "spawn"
	case failTimeout:
		return "timeout"
	case failDecode:
		return "decode"
	case failApp:
		return "app"
	}
	return "unknown"
}

// WorkerHealth is one worker slot's counters. A slot keeps its id across
// restarts — the [wN] stderr prefix and these counters describe the slot,
// however many subprocesses have filled it.
type WorkerHealth struct {
	ID         int
	Restarts   int64 // process starts / reconnects beyond the slot's first
	Chunks     int64 // leases completed
	Seeds      int64 // seeds computed
	SpawnFails int64 // failed process starts / failed dials
	Exits      int64 // leases failed by process exit / broken pipe / dropped connection
	Timeouts   int64 // leases failed by chunk deadline or per-frame read deadline
	DecodeErrs int64 // leases failed by corrupt frames / undecodable Results
	Stales     int64 // stale frames discarded (wrong epoch/seed — zombie replays)
}

// Failures sums the slot's failed lease attempts across all detection
// paths.
func (w WorkerHealth) Failures() int64 {
	return w.SpawnFails + w.Exits + w.Timeouts + w.DecodeErrs
}

func (w WorkerHealth) String() string {
	return fmt.Sprintf("[w%d] restarts %d, chunks %d (%d seeds), failures %d (%d exit, %d spawn, %d timeout, %d decode), %d stale frames dropped",
		w.ID, w.Restarts, w.Chunks, w.Seeds, w.Failures(), w.Exits, w.SpawnFails, w.Timeouts, w.DecodeErrs, w.Stales)
}

// ShardHealth is a snapshot of the supervision counters for one Shard:
// per-worker slot health plus the coordinator's retry/quarantine totals.
// A fault-free run reports all zeros (the cross-backend equivalence test
// pins exactly that).
type ShardHealth struct {
	Workers       []WorkerHealth
	Retries       int64 // chunk reassignments after a failed attempt
	Quarantined   int64 // chunks degraded to in-process execution
	DegradedSeeds int64 // seeds computed in-process by quarantined chunks
	StaleReplies  int64 // lease replies discarded for a superseded epoch (zombie workers)

	// Fabric throughput: how fast seeds moved through the wire protocol.
	BytesSent   int64   // protocol bytes the coordinator wrote (chunk requests)
	BytesRecv   int64   // protocol bytes the coordinator read (responses, heartbeats)
	ElapsedSec  float64 // wall clock from the first Run's start to the latest Run's end
	SeedsPerSec float64 // seeds emitted per second of that wall clock (worker + degraded)
}

// Stales sums the stale frames discarded across every worker slot.
func (h ShardHealth) Stales() int64 {
	var n int64
	for _, w := range h.Workers {
		n += w.Stales
	}
	return n
}

// Failures sums failed lease attempts across every worker slot.
func (h ShardHealth) Failures() int64 {
	var n int64
	for _, w := range h.Workers {
		n += w.Failures()
	}
	return n
}

// Restarts sums worker restarts across every slot.
func (h ShardHealth) Restarts() int64 {
	var n int64
	for _, w := range h.Workers {
		n += w.Restarts
	}
	return n
}

// Chunks sums completed leases across every slot.
func (h ShardHealth) Chunks() int64 {
	var n int64
	for _, w := range h.Workers {
		n += w.Chunks
	}
	return n
}

// String renders the fleet-level line the CLIs report on stderr. The
// throughput tail appears once a Run has finished (ElapsedSec > 0);
// before that the line matches earlier releases byte for byte.
func (h ShardHealth) String() string {
	s := fmt.Sprintf("shard: %d workers, %d chunks ok, %d failures, %d retries, %d restarts, %d quarantined (%d seeds degraded to local), %d stale drops",
		len(h.Workers), h.Chunks(), h.Failures(), h.Retries, h.Restarts(), h.Quarantined, h.DegradedSeeds, h.Stales()+h.StaleReplies)
	if h.ElapsedSec > 0 {
		s += fmt.Sprintf(", %.0f seeds/s (%d B sent, %d B recvd)", h.SeedsPerSec, h.BytesSent, h.BytesRecv)
	}
	return s
}

// WorkerLines renders one line per worker slot for run summaries.
func (h ShardHealth) WorkerLines() []string {
	out := make([]string, len(h.Workers))
	for i, w := range h.Workers {
		out[i] = w.String()
	}
	return out
}

// Summary renders the fleet line plus per-worker lines, for frontends
// that print the full health block.
func (h ShardHealth) Summary() string {
	var b strings.Builder
	b.WriteString(h.String())
	for _, l := range h.WorkerLines() {
		b.WriteString("\n  ")
		b.WriteString(l)
	}
	return b.String()
}
