package scenario

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// The global registry. Experiment packages add themselves from init(), so
// any program that imports the experiment package sees its catalogue; the
// mutex makes concurrent registration (and test-local registration) safe.
var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
	order    []string
)

// Register adds a spec to the global registry. Registering an empty name,
// a missing (or ambiguous) run function or a duplicate name panics: these
// are programming errors in the experiment catalogue, not runtime
// conditions.
func Register(s Spec) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if !s.Runnable() {
		panic(fmt.Sprintf("scenario: Register %q with no run function", s.Name))
	}
	if s.Run != nil && s.RunTuned != nil {
		panic(fmt.Sprintf("scenario: Register %q with both Run and RunTuned", s.Name))
	}
	if s.Run != nil && s.Tuning != nil {
		panic(fmt.Sprintf("scenario: Register %q with Tuning but plain Run; only RunTuned receives a tuning", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
	order = append(order, s.Name)
}

// All returns every registered spec in registration order, which the
// experiment packages arrange to be catalogue order (figures first, then
// the survey experiments, then ablations).
func All() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}

// Tags returns the sorted union of all tags in the registry.
func Tags() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	seen := map[string]bool{}
	for _, s := range registry {
		for _, t := range s.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Match selects specs from the registry, preserving registration order.
// pattern is an anchored regular expression over names ("" matches all);
// tags keeps only specs carrying at least one of the given tags (empty
// keeps all); names keeps only exact names (empty keeps all). An exact
// name that resolves nothing is an error so CLI typos fail loudly.
func Match(pattern string, tags []string, names []string) ([]Spec, error) {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		re, err = regexp.Compile("^(?:" + pattern + ")$")
		if err != nil {
			return nil, fmt.Errorf("scenario: bad pattern %q: %v", pattern, err)
		}
	}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			return nil, fmt.Errorf("scenario: unknown experiment %q", n)
		}
	}
	wantName := map[string]bool{}
	for _, n := range names {
		wantName[n] = true
	}
	var out []Spec
	for _, s := range All() {
		if re != nil && !re.MatchString(s.Name) {
			continue
		}
		if len(wantName) > 0 && !wantName[s.Name] {
			continue
		}
		if len(tags) > 0 {
			hit := false
			for _, t := range tags {
				if s.HasTag(t) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		out = append(out, s)
	}
	return out, nil
}
