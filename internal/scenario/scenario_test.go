package scenario

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// Worker sentinels for the shard tests: the shard executor re-executes
// this test binary with one of these as its sole argument. TestMain
// intercepts them before the testing framework parses flags.
const (
	workerSentinel      = "-run-as-scenario-worker"
	workerExitSentinel  = "-run-as-scenario-worker-exit"
	workerNoisySentinel = "-run-as-scenario-worker-noisy"
)

func TestMain(m *testing.M) {
	// Registered up front so parent and worker processes share it.
	Register(shardableSpec())
	for _, a := range os.Args[1:] {
		switch a {
		case workerSentinel:
			if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			os.Exit(0)
		case workerExitSentinel: // simulates a worker that dies immediately
			os.Exit(0)
		case workerNoisySentinel: // a worker that writes diagnostics to stderr
			fmt.Fprintln(os.Stderr, "noisy diagnostic line")
			if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

// shardableSpec is a registered deterministic spec cheap enough to fan
// across subprocesses in tests. It exercises the full float path,
// including values JSON cannot carry (±Inf, NaN at seed 13).
func shardableSpec() Spec {
	return Spec{
		Name: "test-shardable", Desc: "registered spec for shard tests",
		Tags: []string{"synthetic"},
		Run: func(seed int64) Result {
			v := map[string]float64{
				"seed":  float64(seed),
				"root":  math.Sqrt(float64(seed)),
				"third": float64(seed) / 3,
				"inf":   math.Inf(1),
			}
			if seed == 13 {
				v["nan"] = math.NaN()
			}
			return Result{
				Name:   "test-shardable",
				Table:  fmt.Sprintf("shardable seed=%d\n±µ┌─┐", seed),
				Values: v,
			}
		},
	}
}

// mustRun fails the test on a backend error — most tests exercise the
// aggregate, not the error path.
func mustRun(t *testing.T, r *Runner, specs []Spec, seeds []int64) []AggResult {
	t.Helper()
	aggs, err := r.Run(specs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return aggs
}

// syntheticSpec builds a cheap deterministic spec whose metrics are simple
// functions of the seed, so aggregation is verifiable in closed form.
func syntheticSpec(name string, calls *atomic.Int64) Spec {
	return Spec{
		Name: name,
		Desc: "synthetic " + name,
		Tags: []string{"synthetic"},
		Run: func(seed int64) Result {
			if calls != nil {
				calls.Add(1)
			}
			return Result{
				Name:  name,
				Table: fmt.Sprintf("%s table seed=%d", name, seed),
				Values: map[string]float64{
					"seed":   float64(seed),
					"square": float64(seed * seed),
				},
			}
		},
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty name", Spec{Run: func(int64) Result { return Result{} }})
	mustPanic("nil run", Spec{Name: "test-nil-run"})
	mustPanic("both run forms", Spec{
		Name:     "test-both-runs",
		Run:      func(int64) Result { return Result{} },
		RunTuned: func(int64, sim.Tuning) Result { return Result{} },
	})
	tun := sim.DefaultTuning()
	mustPanic("tuning without RunTuned", Spec{
		Name:   "test-tuning-plain-run",
		Run:    func(int64) Result { return Result{} },
		Tuning: &tun,
	})

	Register(syntheticSpec("test-dup", nil))
	mustPanic("duplicate", syntheticSpec("test-dup", nil))
	if _, ok := Lookup("test-dup"); !ok {
		t.Error("registered spec not found")
	}
}

func TestMatchSelection(t *testing.T) {
	Register(syntheticSpec("test-match-a", nil))
	Register(syntheticSpec("test-match-b", nil))

	got, err := Match("test-match-[ab]", nil, nil)
	if err != nil || len(got) != 2 {
		t.Fatalf("regex match: got %d specs, err %v", len(got), err)
	}
	// The pattern is anchored: a bare prefix must not match.
	got, err = Match("test-match", nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("unanchored prefix matched %d specs", len(got))
	}
	got, err = Match("", []string{"synthetic"}, []string{"test-match-a"})
	if err != nil || len(got) != 1 || got[0].Name != "test-match-a" {
		t.Errorf("tag+name match: got %v, err %v", got, err)
	}
	if _, err = Match("", nil, []string{"test-no-such"}); err == nil {
		t.Error("unknown exact name should be an error")
	}
	if _, err = Match("(", nil, nil); err == nil {
		t.Error("invalid regexp should be an error")
	}
}

func TestRunnerAggregatesAcrossSeeds(t *testing.T) {
	var calls atomic.Int64
	spec := syntheticSpec("test-agg", &calls)
	seeds := []int64{1, 2, 3, 4, 5}
	r := &Runner{Parallel: 2, KeepPerSeed: true}
	aggs := mustRun(t, r, []Spec{spec}, seeds)
	if len(aggs) != 1 {
		t.Fatalf("got %d aggregates", len(aggs))
	}
	a := aggs[0]
	if calls.Load() != int64(len(seeds)) {
		t.Errorf("run called %d times, want %d", calls.Load(), len(seeds))
	}
	if len(a.PerSeed) != len(seeds) {
		t.Fatalf("PerSeed has %d entries", len(a.PerSeed))
	}
	for i, res := range a.PerSeed {
		if res.Values["seed"] != float64(seeds[i]) {
			t.Errorf("PerSeed[%d] out of order: %v", i, res.Values)
		}
	}
	if len(a.Metrics) != 2 || a.Metrics[0].Name != "seed" || a.Metrics[1].Name != "square" {
		t.Fatalf("metrics not sorted by name: %+v", a.Metrics)
	}
	seedM := a.Metrics[0]
	if seedM.Mean != 3 || seedM.Min != 1 || seedM.Max != 5 || seedM.N != 5 {
		t.Errorf("seed metric wrong: %+v", seedM)
	}
	// mean(1,2,3,4,5)=3, sd=sqrt(2.5), t(4)=2.776 → half ≈ 1.963
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(seedM.CI95-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", seedM.CI95, want)
	}
}

func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	specs := []Spec{syntheticSpec("test-det-a", nil), syntheticSpec("test-det-b", nil)}
	seeds := Seeds(10, 8)
	var base []AggResult
	for _, parallel := range []int{1, 2, 8, 0 /* clamps to 1 */} {
		r := &Runner{Parallel: parallel}
		got := mustRun(t, r, specs, seeds)
		if base == nil {
			base = got
			continue
		}
		if !aggEqual(base, got) {
			t.Errorf("parallel=%d changed aggregated results", parallel)
		}
	}
	var tables []string
	for _, a := range base {
		tables = append(tables, a.Table())
	}
	r := &Runner{Parallel: 8}
	for i, a := range mustRun(t, r, specs, seeds) {
		if a.Table() != tables[i] {
			t.Errorf("rendered table for %s not byte-identical across runs", a.Spec.Name)
		}
	}
}

// aggEqual compares aggregates including every per-seed result, demanding
// bit-identical floats: determinism, not approximation.
func aggEqual(a, b []AggResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Spec.Name != b[i].Spec.Name ||
			!reflect.DeepEqual(a[i].Seeds, b[i].Seeds) ||
			!reflect.DeepEqual(a[i].PerSeed, b[i].PerSeed) ||
			!reflect.DeepEqual(a[i].Metrics, b[i].Metrics) {
			return false
		}
	}
	return true
}

// TestRunnerStreamsByDefault pins the streaming contract: without
// KeepPerSeed the Runner folds results into accumulators and retains no
// per-seed Results, and the aggregate it reports is bit-identical to the
// retaining mode's.
func TestRunnerStreamsByDefault(t *testing.T) {
	spec := syntheticSpec("test-stream", nil)
	seeds := Seeds(1, 16)
	lean := mustRun(t, &Runner{Parallel: 4}, []Spec{spec}, seeds)[0]
	if lean.PerSeed != nil {
		t.Errorf("streaming Runner retained %d per-seed results", len(lean.PerSeed))
	}
	full := mustRun(t, &Runner{Parallel: 4, KeepPerSeed: true}, []Spec{spec}, seeds)[0]
	if len(full.PerSeed) != len(seeds) {
		t.Errorf("KeepPerSeed retained %d results, want %d", len(full.PerSeed), len(seeds))
	}
	if !reflect.DeepEqual(lean.Metrics, full.Metrics) {
		t.Errorf("streaming changed the aggregate:\n%+v\n%+v", lean.Metrics, full.Metrics)
	}
}

func TestSeeds(t *testing.T) {
	if got := Seeds(5, 3); !reflect.DeepEqual(got, []int64{5, 6, 7}) {
		t.Errorf("Seeds(5,3) = %v", got)
	}
	if got := Seeds(9, 0); !reflect.DeepEqual(got, []int64{9}) {
		t.Errorf("Seeds(9,0) = %v, want one seed", got)
	}
}

func TestMetricUnionAcrossSeeds(t *testing.T) {
	// An experiment may emit a metric only for some seeds; the aggregate
	// must carry the union with per-metric sample counts.
	spec := Spec{
		Name: "test-union", Desc: "union", Run: func(seed int64) Result {
			v := map[string]float64{"always": float64(seed)}
			if seed%2 == 0 {
				v["even-only"] = 1
			}
			return Result{Name: "test-union", Values: v}
		},
	}
	a := mustRun(t, &Runner{Parallel: 3}, []Spec{spec}, []int64{1, 2, 3, 4})[0]
	if len(a.Metrics) != 2 {
		t.Fatalf("want 2 metrics, got %+v", a.Metrics)
	}
	if a.Metrics[0].Name != "always" || a.Metrics[0].N != 4 {
		t.Errorf("always metric: %+v", a.Metrics[0])
	}
	if a.Metrics[1].Name != "even-only" || a.Metrics[1].N != 2 {
		t.Errorf("even-only metric: %+v", a.Metrics[1])
	}
}
