package scenario

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// The worker side of the shard protocol. A worker is the same binary as
// the parent, re-executed with the hidden -worker flag: it parses the same
// command line (so ad-hoc specs built from CLI parameters are
// reconstructed identically), then serves (spec-name, seed) requests over
// stdin/stdout as length-prefixed JSON frames until EOF. The protocol is
// internal — both ends are always the same build, so there is no version
// negotiation, and the code-version question is moot by construction.

// workerRequest asks the worker to run one seed of one experiment,
// resolved by name against the registry (plus any extra specs the serving
// command supplied). Epoch is the coordinator's lease epoch for this
// attempt: workers echo it verbatim, and the coordinator discards any
// response whose (epoch, spec, seed) does not match the request in flight
// — so a zombie or partitioned worker replaying a stale chunk after its
// lease was reassigned can never double-emit a seed.
type workerRequest struct {
	Spec  string `json:"spec"`
	Seed  int64  `json:"seed"`
	Epoch int64  `json:"epoch,omitempty"`
}

// workerResponse carries the codec-encoded Result, or the error that
// prevented one. Heartbeat frames (TCP transport only) carry neither:
// they exist so the coordinator's per-frame read deadline distinguishes
// "computing a long seed" from "partitioned".
type workerResponse struct {
	Spec      string `json:"spec,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Epoch     int64  `json:"epoch,omitempty"`
	Result    []byte `json:"result,omitempty"` // EncodeResult bytes
	Err       string `json:"err,omitempty"`
	Heartbeat bool   `json:"hb,omitempty"` // liveness-only frame; no payload
}

// ServeWorker runs the shard worker loop: read a request frame, resolve
// the spec (extra specs take precedence over the registry, mirroring how
// macbench/hotspotsim layer their flag-built specs over the catalogue),
// execute the seed, write a response frame. It returns nil on clean EOF.
//
// If the REPRO_CHAOS environment variable is set (the parent Shard
// exports its -chaos schedule there), the worker misbehaves on the
// configured schedule — the fault-injection half of the supervision
// layer. A malformed schedule is a startup error.
//
// Nothing but protocol frames may be written to w — a worker whose
// experiments print to stdout would corrupt the stream — which holds
// because experiments return rendered tables instead of printing them.
func ServeWorker(r io.Reader, w io.Writer, extra ...Spec) error {
	chaos, err := ChaosFromEnv()
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	return serveWorker(r, w, chaos, extra...)
}

func serveWorker(r io.Reader, w io.Writer, chaos Chaos, extra ...Spec) error {
	byName := specIndex(extra)
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for n := 1; ; n++ {
		var req workerRequest
		if err := readFrame(br, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker: read request: %w", err)
		}
		// Pre-response faults: the parent sees a dead process or a request
		// that never completes.
		if chaos.DelayEvery > 0 && n%chaos.DelayEvery == 0 {
			time.Sleep(chaos.Delay)
		}
		if chaos.CrashAfter > 0 && n == chaos.CrashAfter {
			fmt.Fprintf(os.Stderr, "chaos: crashing on request %d\n", n)
			os.Exit(3)
		}
		if chaos.HangAfter > 0 && n == chaos.HangAfter {
			fmt.Fprintf(os.Stderr, "chaos: hanging on request %d\n", n)
			time.Sleep(chaos.HangFor)
		}
		resp := handleRequest(req, byName)
		// Response-stream faults: the parent's decoder, not its process
		// watcher, must catch these.
		if chaos.TruncateAfter > 0 && n == chaos.TruncateAfter {
			fmt.Fprintf(os.Stderr, "chaos: truncating response %d\n", n)
			writeTruncatedFrame(bw)
			bw.Flush()
			os.Exit(3)
		}
		if chaos.CorruptAfter > 0 && n == chaos.CorruptAfter {
			fmt.Fprintf(os.Stderr, "chaos: corrupting response %d\n", n)
			if err := writeCorruptFrame(bw); err != nil {
				return fmt.Errorf("worker: write response: %w", err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("worker: write response: %w", err)
			}
			continue
		}
		if err := writeFrame(bw, resp); err != nil {
			return fmt.Errorf("worker: write response: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("worker: write response: %w", err)
		}
	}
}

// writeTruncatedFrame writes a header promising more payload than follows,
// so the parent's frame reader fails with an unexpected EOF once the
// process exits.
func writeTruncatedFrame(w io.Writer) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1024)
	w.Write(hdr[:])
	w.Write([]byte("chaos"))
}

// writeCorruptFrame writes a well-framed payload that is not a protocol
// message, so the parent's JSON decode fails while the stream framing
// stays intact.
func writeCorruptFrame(w io.Writer) error {
	payload := []byte("chaos! not json {{{")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// handleRequest resolves and executes one request, echoing its (spec,
// seed, epoch) identity so the requester can match — and stale-check —
// the response. Shared by the stdio worker loop and TCP sessions.
func handleRequest(req workerRequest, byName map[string]Spec) workerResponse {
	resp := workerResponse{Spec: req.Spec, Seed: req.Seed, Epoch: req.Epoch}
	spec, ok := byName[req.Spec]
	if !ok {
		spec, ok = Lookup(req.Spec)
	}
	if !ok {
		resp.Err = fmt.Sprintf("unknown experiment %q", req.Spec)
		return resp
	}
	res, err := executeSafe(spec, req.Seed)
	if err == nil {
		resp.Result, err = EncodeResult(res)
	}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// specIndex builds the extra-spec precedence map worker loops resolve
// requests against.
func specIndex(extra []Spec) map[string]Spec {
	byName := make(map[string]Spec, len(extra))
	for _, s := range extra {
		byName[s.Name] = s
	}
	return byName
}

// executeSafe converts a panicking experiment into a protocol error, so
// the parent reports the real failure instead of an opaque broken pipe.
func executeSafe(spec Spec, seed int64) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s seed %d panicked: %v", spec.Name, seed, p)
		}
	}()
	return spec.Execute(seed), nil
}
