package scenario

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// The worker side of the shard protocol. A worker is the same binary as
// the parent, re-executed with the hidden -worker flag: it parses the same
// command line (so ad-hoc specs built from CLI parameters are
// reconstructed identically), then serves chunk requests over stdin/stdout
// as binary frames until EOF. The session opens with a hello frame
// announcing protoVersion — both ends are normally the same build, but the
// TCP transport can connect across builds, so the version byte turns a
// protocol skew into a loud decode fault instead of a misparse.
//
// One request frame carries a whole seed chunk; the worker streams one
// result or error frame back per seed, each echoing the request's (epoch,
// spec, seed) identity. The coordinator discards any response whose
// identity does not match a lease in flight — so a zombie or partitioned
// worker replaying a stale chunk after its lease was reassigned can never
// double-emit a seed.

// ServeWorker runs the shard worker loop: read a chunk request, resolve
// the spec (extra specs take precedence over the registry, mirroring how
// macbench/hotspotsim layer their flag-built specs over the catalogue),
// execute each seed, stream one response frame per seed. It returns nil on
// clean EOF.
//
// If the REPRO_CHAOS environment variable is set (the parent Shard
// exports its -chaos schedule there), the worker misbehaves on the
// configured schedule — the fault-injection half of the supervision
// layer. Chaos triggers count executed seeds, not request frames, so a
// schedule keeps its meaning whatever the chunk size. A malformed
// schedule is a startup error.
//
// Nothing but protocol frames may be written to w — a worker whose
// experiments print to stdout would corrupt the stream — which holds
// because experiments return rendered tables instead of printing them.
func ServeWorker(r io.Reader, w io.Writer, extra ...Spec) error {
	chaos, err := ChaosFromEnv()
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	return serveWorker(r, w, chaos, extra...)
}

func serveWorker(r io.Reader, w io.Writer, chaos Chaos, extra ...Spec) error {
	byName := specIndex(extra)
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var fs frameScratch
	if _, err := bw.Write(fs.helloFrame()); err != nil {
		return fmt.Errorf("worker: write hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("worker: write hello: %w", err)
	}
	var inbuf []byte
	var seeds []int64
	n := 0 // executed-seed counter: the chaos schedule's clock
	for {
		payload, err := readRawFrame(br, &inbuf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker: read request: %w", err)
		}
		req, err := parseWireRequest(payload, seeds[:0])
		if err != nil {
			return fmt.Errorf("worker: read request: %w", err)
		}
		seeds = req.seeds
		spec, ok := byName[string(req.spec)]
		if !ok {
			spec, ok = Lookup(string(req.spec))
		}
		for _, seed := range req.seeds {
			n++
			// Pre-response faults: the parent sees a dead process or a seed
			// that never completes.
			if chaos.DelayEvery > 0 && n%chaos.DelayEvery == 0 {
				time.Sleep(chaos.Delay)
			}
			if chaos.CrashAfter > 0 && n == chaos.CrashAfter {
				fmt.Fprintf(os.Stderr, "chaos: crashing on seed %d\n", n)
				os.Exit(3)
			}
			if chaos.HangAfter > 0 && n == chaos.HangAfter {
				fmt.Fprintf(os.Stderr, "chaos: hanging on seed %d\n", n)
				time.Sleep(chaos.HangFor)
			}
			var frame []byte
			if !ok {
				frame = fs.errorFrame(req.spec, seed, req.epoch, fmt.Sprintf("unknown experiment %q", req.spec))
			} else if res, err := executeSafe(spec, seed); err != nil {
				frame = fs.errorFrame(req.spec, seed, req.epoch, err.Error())
			} else {
				frame = fs.resultFrame(req.spec, seed, req.epoch, res)
			}
			// Response-stream faults: the parent's decoder, not its process
			// watcher, must catch these.
			if chaos.TruncateAfter > 0 && n == chaos.TruncateAfter {
				fmt.Fprintf(os.Stderr, "chaos: truncating response %d\n", n)
				writeTruncatedFrame(bw)
				bw.Flush()
				os.Exit(3)
			}
			if chaos.CorruptAfter > 0 && n == chaos.CorruptAfter {
				fmt.Fprintf(os.Stderr, "chaos: corrupting response %d\n", n)
				if err := writeCorruptFrame(bw); err != nil {
					return fmt.Errorf("worker: write response: %w", err)
				}
				if err := bw.Flush(); err != nil {
					return fmt.Errorf("worker: write response: %w", err)
				}
				continue
			}
			if _, err := bw.Write(frame); err != nil {
				return fmt.Errorf("worker: write response: %w", err)
			}
			// Flush per frame, not per chunk: the parent's per-frame read
			// deadline times the gap between responses, so a buffered chunk
			// behind one slow seed must not look like a hung worker.
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("worker: write response: %w", err)
			}
		}
	}
}

// writeTruncatedFrame writes a header promising more payload than follows,
// so the parent's frame reader fails with an unexpected EOF once the
// process exits.
func writeTruncatedFrame(w io.Writer) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1024)
	w.Write(hdr[:])
	w.Write([]byte("chaos"))
}

// writeCorruptFrame writes a well-framed payload that is not a protocol
// message ('c' is no frame type), so the parent's message parse fails with
// ErrDecode while the stream framing stays intact.
func writeCorruptFrame(w io.Writer) error {
	payload := []byte("chaos! not a frame {{{")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// specIndex builds the extra-spec precedence map worker loops resolve
// requests against.
func specIndex(extra []Spec) map[string]Spec {
	byName := make(map[string]Spec, len(extra))
	for _, s := range extra {
		byName[s.Name] = s
	}
	return byName
}

// executeSafe converts a panicking experiment into a protocol error, so
// the parent reports the real failure instead of an opaque broken pipe.
func executeSafe(spec Spec, seed int64) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s seed %d panicked: %v", spec.Name, seed, p)
		}
	}()
	return spec.Execute(seed), nil
}
