package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// The worker side of the shard protocol. A worker is the same binary as
// the parent, re-executed with the hidden -worker flag: it parses the same
// command line (so ad-hoc specs built from CLI parameters are
// reconstructed identically), then serves (spec-name, seed) requests over
// stdin/stdout as length-prefixed JSON frames until EOF. The protocol is
// internal — both ends are always the same build, so there is no version
// negotiation, and the code-version question is moot by construction.

// workerRequest asks the worker to run one seed of one experiment,
// resolved by name against the registry (plus any extra specs the serving
// command supplied).
type workerRequest struct {
	Spec string `json:"spec"`
	Seed int64  `json:"seed"`
}

// workerResponse carries the codec-encoded Result, or the error that
// prevented one.
type workerResponse struct {
	Spec   string `json:"spec"`
	Seed   int64  `json:"seed"`
	Result []byte `json:"result,omitempty"` // EncodeResult bytes
	Err    string `json:"err,omitempty"`
}

// ServeWorker runs the shard worker loop: read a request frame, resolve
// the spec (extra specs take precedence over the registry, mirroring how
// macbench/hotspotsim layer their flag-built specs over the catalogue),
// execute the seed, write a response frame. It returns nil on clean EOF.
//
// Nothing but protocol frames may be written to w — a worker whose
// experiments print to stdout would corrupt the stream — which holds
// because experiments return rendered tables instead of printing them.
func ServeWorker(r io.Reader, w io.Writer, extra ...Spec) error {
	byName := make(map[string]Spec, len(extra))
	for _, s := range extra {
		byName[s.Name] = s
	}
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		var req workerRequest
		if err := readFrame(br, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker: read request: %w", err)
		}
		resp := workerResponse{Spec: req.Spec, Seed: req.Seed}
		spec, ok := byName[req.Spec]
		if !ok {
			spec, ok = Lookup(req.Spec)
		}
		switch {
		case !ok:
			resp.Err = fmt.Sprintf("unknown experiment %q", req.Spec)
		default:
			res, err := executeSafe(spec, req.Seed)
			if err == nil {
				resp.Result, err = EncodeResult(res)
			}
			if err != nil {
				resp.Err = err.Error()
			}
		}
		if err := writeFrame(bw, resp); err != nil {
			return fmt.Errorf("worker: write response: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("worker: write response: %w", err)
		}
	}
}

// executeSafe converts a panicking experiment into a protocol error, so
// the parent reports the real failure instead of an opaque broken pipe.
func executeSafe(spec Spec, seed int64) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s seed %d panicked: %v", spec.Name, seed, p)
		}
	}()
	return spec.Execute(seed), nil
}
