package scenario

import "math"

// CodecBenchmark is one wire-codec benchmark, exported so the figgen
// fabric suite (-fabricjson) can time the Result codec without reaching
// into package internals — the same pattern sim.KernelBenchmarks uses for
// the kernel suite.
type CodecBenchmark struct {
	Name string
	Doc  string
	Run  func(n int)
}

// codecBenchResult is a realistic codec workload: a metro-experiment-sized
// Result with a rendered table and a dozen metrics, including the float
// specials the codec must carry bit-exactly.
func codecBenchResult() Result {
	table := "metric                         value\n"
	for i := 0; i < 12; i++ {
		table += "  some-metric-name-goes-here   123456.789012\n"
	}
	return Result{
		Name:  "codec-bench",
		Table: table,
		Values: map[string]float64{
			"energy_mj":       1234.5678,
			"throughput_mbps": 42.125,
			"latency_ms":      -0.0,
			"drop_rate":       math.NaN(),
			"sleep_frac":      0.9999999999999999,
			"wake_count":      81920,
			"beacon_misses":   math.Inf(1),
			"queue_peak":      math.Inf(-1),
			"airtime_frac":    0.3333333333333333,
			"retries":         17,
			"goodput_mbps":    41.875,
			"idle_mj":         5e-324,
		},
	}
}

// CodecBenchmarks returns the wire-codec benchmark suite in a fixed
// order. Both benchmarks run the codec the way a shard connection does at
// steady state — reused encode scratch, per-connection decoder with
// interned strings and a reused Values map — which is the configuration
// the zero-alloc fabric gate pins.
func CodecBenchmarks() []CodecBenchmark {
	res := codecBenchResult()
	enc, err := EncodeResult(res)
	if err != nil {
		panic(err)
	}
	return []CodecBenchmark{
		{
			Name: "CodecEncode",
			Doc:  "encode one realistic 12-metric Result to wire bytes (reused scratch)",
			Run: func(n int) {
				var e resultEncoder
				buf := make([]byte, 0, 2*len(enc))
				for i := 0; i < n; i++ {
					buf = e.appendResult(buf[:0], res)
				}
			},
		},
		{
			Name: "CodecDecode",
			Doc:  "decode the same wire bytes back to a Result (interning decoder)",
			Run: func(n int) {
				d := newResultDecoder()
				var out Result
				for i := 0; i < n; i++ {
					if err := d.decode(enc, &out, true); err != nil {
						panic(err)
					}
				}
			},
		},
	}
}
