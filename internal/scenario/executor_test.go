package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TestReorderedMergeBitIdentical is the property test behind the
// cross-backend determinism claim: folding shard partials in seed order
// must equal sequential accumulation bit-for-bit, for any partition of the
// seeds across shards and any interleaving of their completions. The
// reorder component is what every backend funnels completions through, so
// this pins the merge path itself, not one backend's scheduling.
func TestReorderedMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(48)
		values := make([]float64, n)
		for i := range values {
			// Mixed magnitudes make float addition order-sensitive, so an
			// ordering bug cannot hide behind benign inputs.
			values[i] = (rng.Float64() - 0.5) * math.Exp(rng.Float64()*40-20)
		}

		// Sequential baseline: one Summary fed in seed order.
		var seq stats.Summary
		for _, v := range values {
			seq.Add(v)
		}

		// Partition the seeds across a random number of shards, then let the
		// shards complete in a random global interleaving (each shard's own
		// results stay in its local order, like a real worker's stream).
		shards := 1 + rng.Intn(5)
		parts := make([][]int, shards)
		for i := 0; i < n; i++ {
			s := rng.Intn(shards)
			parts[s] = append(parts[s], i)
		}
		var merged stats.Summary
		ord := newReorder(func(ki int, r Result) { merged.Add(r.Values["x"]) })
		cursors := make([]int, shards)
		for delivered := 0; delivered < n; {
			s := rng.Intn(shards)
			if cursors[s] >= len(parts[s]) {
				continue
			}
			i := parts[s][cursors[s]]
			cursors[s]++
			delivered++
			ord.deliver(i, Result{Values: map[string]float64{"x": values[i]}})
		}

		for name, pair := range map[string][2]float64{
			"mean": {seq.Mean(), merged.Mean()},
			"ci95": {seq.CI95(), merged.CI95()},
			"min":  {seq.Min(), merged.Min()},
			"max":  {seq.Max(), merged.Max()},
			"var":  {seq.Variance(), merged.Variance()},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("trial %d (%d seeds, %d shards): %s diverged: %v (bits %#x) vs %v (bits %#x)",
					trial, n, shards, name, pair[0], math.Float64bits(pair[0]), pair[1], math.Float64bits(pair[1]))
			}
		}
		if seq.N() != merged.N() {
			t.Fatalf("trial %d: N %d vs %d", trial, seq.N(), merged.N())
		}
	}
}

// TestLocalEmitsInSeedOrder hammers the Local executor with a spec whose
// per-seed runtime is adversarial (later seeds finish first) and checks
// the emit sequence is exactly seed order.
func TestLocalEmitsInSeedOrder(t *testing.T) {
	var mu sync.Mutex
	started := make(chan struct{})
	spec := Spec{
		Name: "test-order", Desc: "ordering",
		Run: func(seed int64) Result {
			if seed == 1 {
				<-started // seed 1 cannot finish until every other seed has
			}
			return Result{Values: map[string]float64{"seed": float64(seed)}}
		},
	}
	seeds := Seeds(1, 16)
	var got []int
	l := &Local{Parallel: 8}
	done := make(chan error, 1)
	go func() {
		done <- l.Run(spec, seeds, func(ki int, res Result) {
			mu.Lock()
			got = append(got, ki)
			mu.Unlock()
		})
	}()
	close(started)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seeds) {
		t.Fatalf("emitted %d results, want %d", len(got), len(seeds))
	}
	for i, ki := range got {
		if ki != i {
			t.Fatalf("emit order %v not seed order", got)
		}
	}
}

// TestLocalSharedPoolAcrossRuns checks the capacity contract: concurrent
// Run calls on one Local never exceed Parallel simulations in flight.
func TestLocalSharedPoolAcrossRuns(t *testing.T) {
	var inFlight, peak, mu = 0, 0, sync.Mutex{}
	spec := func(name string) Spec {
		return Spec{Name: name, Desc: name, Run: func(seed int64) Result {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			x := 0.0
			for i := 0; i < 2000; i++ {
				x += math.Sqrt(float64(i))
			}
			mu.Lock()
			inFlight--
			mu.Unlock()
			return Result{Values: map[string]float64{"x": x}}
		}}
	}
	l := &Local{Parallel: 3}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Run(spec(fmt.Sprintf("s%d", i)), Seeds(1, 10), func(int, Result) {})
		}(i)
	}
	wg.Wait()
	if peak > 3 {
		t.Errorf("peak in-flight %d exceeds Parallel=3", peak)
	}
	if peak == 0 {
		t.Error("nothing ran")
	}
}

// TestExecuteAppliesTuning checks the Spec.Execute contract: RunTuned
// receives the spec's tuning override, or the default when none is set.
func TestExecuteAppliesTuning(t *testing.T) {
	var got sim.Tuning
	spec := Spec{
		Name: "test-tuned", Desc: "tuned",
		RunTuned: func(seed int64, tun sim.Tuning) Result {
			got = tun
			return Result{Values: map[string]float64{"seed": float64(seed)}}
		},
	}
	spec.Execute(1)
	if got != sim.DefaultTuning() {
		t.Errorf("nil Tuning: RunTuned got %+v, want default", got)
	}
	override := sim.Tuning{TickShift: 0, WheelBits: 10, CompactMinDead: 64, WheelMinPending: 1 << 20}
	spec.Tuning = &override
	res := spec.Execute(7)
	if got != override {
		t.Errorf("RunTuned got %+v, want override %+v", got, override)
	}
	if res.Values["seed"] != 7 {
		t.Errorf("seed not threaded: %v", res.Values)
	}
}
