package scenario

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startNetServer runs an in-process TCP worker server for the test and
// returns its address. Heartbeats default to a test-speed interval.
func startNetServer(t *testing.T, o NetServeOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 25 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	go ServeNet(ln, o)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// netShard builds a TCP-transport Shard against addr with test-speed
// supervision knobs.
func netShard(workers int, addr string, mutate func(*FaultPolicy)) *Shard {
	pol := fastPolicy()
	if mutate != nil {
		mutate(&pol)
	}
	return &Shard{Workers: workers, Addrs: []string{addr}, Policy: pol}
}

// runCounted drives sh.Run directly and asserts the exactly-once emission
// contract: every seed index emitted exactly once, in order, with the
// bit-exact Result the spec computes locally.
func runCounted(t *testing.T, sh *Shard, seeds []int64) {
	t.Helper()
	spec, ok := Lookup("test-shardable")
	if !ok {
		t.Fatal("test-shardable not registered")
	}
	var mu sync.Mutex
	emitted := make(map[int]int)
	next := 0
	err := sh.Run(spec, seeds, func(ki int, res Result) {
		mu.Lock()
		defer mu.Unlock()
		emitted[ki]++
		if ki != next {
			t.Errorf("emit out of order: got index %d, want %d", ki, next)
		}
		next++
		want, _ := EncodeResult(spec.Execute(seeds[ki]))
		got, _ := EncodeResult(res)
		if string(want) != string(got) {
			t.Errorf("seed %d: result differs from local execution", seeds[ki])
		}
	})
	if err != nil {
		t.Fatalf("shard run: %v", err)
	}
	for ki := range seeds {
		if emitted[ki] != 1 {
			t.Errorf("seed index %d emitted %d times, want exactly once", ki, emitted[ki])
		}
	}
}

func TestNetShardMatchesLocalClean(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{})
	sh := netShard(2, addr, nil)
	defer sh.Close()
	requireShardMatchesLocal(t, sh, Seeds(1, 16))
	h := sh.Health()
	if h.Failures() != 0 || h.Retries != 0 || h.Quarantined != 0 || h.Stales() != 0 || h.StaleReplies != 0 {
		t.Errorf("clean TCP run should have all-zero failure counters: %s", h)
	}
	if h.Chunks() == 0 {
		t.Error("no chunks recorded — did the TCP transport actually run?")
	}
}

// TestNetShardDropConnReconnects: the server drops each of the first two
// connections mid-sweep; the slots must reconnect (next generation runs
// clean) and the sweep must stay lossless and bit-identical.
func TestNetShardDropConnReconnects(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{
		ChaosSpec: "gen0:drop-conn-after=2;gen1:drop-conn-after=3",
	})
	sh := netShard(2, addr, nil)
	defer sh.Close()
	runCounted(t, sh, Seeds(1, 12))
	h := sh.Health()
	if h.Failures() == 0 || h.Retries == 0 {
		t.Errorf("expected dropped-connection failures and retries, got %s", h)
	}
	if h.Restarts() == 0 {
		t.Errorf("expected reconnects after dropped connections, got %s", h)
	}
}

// TestNetShardPartitionNoDuplicateOrLoss is the lease-epoch acceptance
// test: a blackholed (partitioned) worker holds a lease past the frame
// deadline; the chunk is reassigned, and whatever the zombie session left
// in flight must never surface — every seed is emitted exactly once with
// the locally computed bits.
func TestNetShardPartitionNoDuplicateOrLoss(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{
		ChaosSpec: "gen0:blackhole-after=2;gen1:blackhole-after=3",
		Heartbeat: 20 * time.Millisecond,
	})
	sh := netShard(2, addr, func(p *FaultPolicy) {
		p.FrameTimeout = 250 * time.Millisecond
	})
	defer sh.Close()
	runCounted(t, sh, Seeds(1, 12))
	h := sh.Health()
	var timeouts int64
	for _, w := range h.Workers {
		timeouts += w.Timeouts
	}
	if timeouts == 0 {
		t.Errorf("expected frame-deadline timeouts from the partitioned sessions, got %s", h)
	}
}

// TestNetShardStaleReplayDiscarded: the server replays a stale frame
// (previous response — wrong epoch and seed) ahead of a real one; the
// transport must skip it, count it, and complete the exchange with the
// correct response.
func TestNetShardStaleReplayDiscarded(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{
		ChaosSpec: "gen0:replay-after=2;gen1:replay-after=3",
	})
	sh := netShard(2, addr, nil)
	defer sh.Close()
	runCounted(t, sh, Seeds(1, 12))
	h := sh.Health()
	if h.Stales() == 0 {
		t.Errorf("expected stale replayed frames to be counted, got %s", h)
	}
	if h.Failures() != 0 {
		t.Errorf("a discarded stale frame is not a failure, got %s", h)
	}
}

// TestNetShardSlowLinkHeartbeatsKeepAlive: responses are delayed well past
// the frame deadline, but heartbeats keep flowing — the deadline machinery
// must not declare a partition.
func TestNetShardSlowLinkHeartbeatsKeepAlive(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{
		ChaosSpec: "slowlink-ms=300",
		Heartbeat: 25 * time.Millisecond,
	})
	sh := netShard(1, addr, func(p *FaultPolicy) {
		p.FrameTimeout = 150 * time.Millisecond
	})
	defer sh.Close()
	runCounted(t, sh, Seeds(1, 3))
	if h := sh.Health(); h.Failures() != 0 {
		t.Errorf("slow link with live heartbeats must not trip the deadline: %s", h)
	}
}

// TestNetShardDialFailureDegrades: an unreachable fleet exhausts retries
// and the whole sweep degrades to in-process execution, losslessly.
func TestNetShardDialFailureDegrades(t *testing.T) {
	// A listener that is immediately closed: connection refused, instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	sh := netShard(2, addr, func(p *FaultPolicy) {
		p.MaxRetries = 1
		p.DialTimeout = 500 * time.Millisecond
	})
	defer sh.Close()
	seeds := Seeds(1, 4)
	runCounted(t, sh, seeds)
	h := sh.Health()
	if h.DegradedSeeds != int64(len(seeds)) {
		t.Errorf("want all %d seeds degraded to local, got %s", len(seeds), h)
	}
	var spawnFails int64
	for _, w := range h.Workers {
		spawnFails += w.SpawnFails
	}
	if spawnFails == 0 {
		t.Errorf("expected dial failures to be counted as spawn failures: %s", h)
	}
}

func TestNetShardDefaultsSlotsToFleetSize(t *testing.T) {
	addr := startNetServer(t, NetServeOptions{})
	sh := &Shard{Addrs: []string{addr, addr, addr}, Policy: fastPolicy()}
	defer sh.Close()
	runCounted(t, sh, Seeds(1, 6))
	if got := len(sh.Health().Workers); got != 3 {
		t.Errorf("Workers<1 with 3 addrs should open 3 slots, got %d", got)
	}
}

func TestServeNetRejectsBadChaos(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = ServeNet(ln, NetServeOptions{ChaosSpec: "not-a-key=1"})
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("want chaos parse error, got %v", err)
	}
}
