package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport of the sweep fabric: the same length-prefixed JSON
// frame protocol the stdio shard workers speak, lifted onto a network
// connection so the fleet leaves the box. The coordinator side is
// dialWorker/netConn (a slotConn the Shard supervisor drives exactly like
// a subprocess); the worker side is ServeNet (the hidden -serve addr mode
// of every frontend). Failure detection is connection-level: dial
// timeouts, per-frame read deadlines kept alive by heartbeat frames, and
// (epoch, spec, seed) matching that discards stale frames from zombie
// sessions. Both ends are always the same build — exactly like the
// subprocess transport — so there is still no version negotiation.

// heartbeatEvery is the default interval at which a TCP worker session
// emits liveness frames. It must sit far inside FaultPolicy.FrameTimeout:
// the heartbeat is what lets the coordinator's per-frame read deadline
// distinguish "computing a long seed" from "partitioned".
const heartbeatEvery = 1 * time.Second

// dialWorker opens one coordinator→worker TCP session. stales is the
// owning slot's stale-frame counter.
func dialWorker(addr string, pol FaultPolicy, stales *atomic.Int64) (slotConn, error) {
	d := net.Dialer{Timeout: pol.DialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return &netConn{conn: conn, br: bufio.NewReader(conn), pol: pol, stales: stales}, nil
}

// netConn is the TCP slot transport. Unlike a subprocess's private stdio
// stream, a TCP stream can carry frames a dead attempt left behind
// (replays after a partition heals), so every response is matched on
// (epoch, spec, seed) and mismatches are skipped — counted, never
// surfaced as results.
type netConn struct {
	conn   net.Conn
	br     *bufio.Reader
	pol    FaultPolicy
	stales *atomic.Int64
}

func (c *netConn) roundTrip(req workerRequest) (Result, failKind, error) {
	if to := c.pol.FrameTimeout; to > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(to))
	}
	if err := writeFrame(c.conn, req); err != nil {
		return Result{}, classifyNetErr(err), fmt.Errorf("net: send %s seed %d: %w", req.Spec, req.Seed, err)
	}
	for {
		// The deadline re-arms per frame: any frame — heartbeat or response —
		// proves the worker is alive, so only silence trips it.
		if to := c.pol.FrameTimeout; to > 0 {
			c.conn.SetReadDeadline(time.Now().Add(to))
		}
		var resp workerResponse
		if err := readFrame(c.br, &resp); err != nil {
			kind := classifyNetErr(err)
			if errors.Is(err, ErrDecode) {
				kind = failDecode
			}
			return Result{}, kind, fmt.Errorf("net: %s seed %d: %w", req.Spec, req.Seed, err)
		}
		if resp.Heartbeat {
			continue
		}
		if resp.Epoch != req.Epoch || resp.Spec != req.Spec || resp.Seed != req.Seed {
			// A frame for some other attempt — a zombie session's replay.
			// Skipping (rather than failing) lets the live exchange on this
			// connection complete normally.
			c.stales.Add(1)
			continue
		}
		if resp.Err != "" {
			return Result{}, failApp, fmt.Errorf("net: worker: %s", resp.Err)
		}
		res, err := DecodeResult(resp.Result)
		if err != nil {
			return Result{}, failDecode, fmt.Errorf("net: %s seed %d: %w", req.Spec, req.Seed, err)
		}
		return res, 0, nil
	}
}

func (c *netConn) interrupt() { c.conn.Close() }
func (c *netConn) abort()     { c.conn.Close() }
func (c *netConn) shutdown()  { c.conn.Close() }

// classifyNetErr maps a transport error to the supervisor's failure
// taxonomy: a network timeout (per-frame deadline — i.e. a partition) is
// failTimeout, anything else is the connection-dropped analogue of a
// process exit.
func classifyNetErr(err error) failKind {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return failTimeout
	}
	return failExit
}

// NetServeOptions configures a TCP worker server (ServeNet).
type NetServeOptions struct {
	// ChaosSpec is the raw fault-injection schedule (ParseChaos grammar).
	// It is resolved per connection: a session's generation is the
	// accept-order index of its connection on the listener, so "genN:"
	// clauses target the N-th accepted connection — a dropped connection's
	// replacement is the next generation, mirroring subprocess restarts.
	ChaosSpec string
	// Extra specs are resolvable by name ahead of the registry, mirroring
	// ServeWorker — frontends pass their flag-built ad-hoc specs here.
	Extra []Spec
	// Heartbeat is the liveness-frame interval; 0 means heartbeatEvery,
	// negative disables heartbeats (tests only — a real worker without
	// heartbeats is indistinguishable from a partitioned one on long seeds).
	Heartbeat time.Duration
	// Log is the diagnostics sink; nil means os.Stderr.
	Log io.Writer
}

// ServeNet serves the shard worker protocol on ln until the listener
// closes. Each accepted connection is one independent worker session,
// served concurrently; a malformed chaos schedule is a startup error.
func ServeNet(ln net.Listener, o NetServeOptions) error {
	if _, err := ParseChaos(o.ChaosSpec, 0); err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	hb := o.Heartbeat
	if hb == 0 {
		hb = heartbeatEvery
	}
	logw := o.Log
	if logw == nil {
		logw = os.Stderr
	}
	byName := specIndex(o.Extra)
	for gen := 0; ; gen++ {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("worker: accept: %w", err)
		}
		chaos, _ := ParseChaos(o.ChaosSpec, gen) // validated above
		go serveNetSession(conn, hb, chaos, byName, logw, gen)
	}
}

// ListenAndServeNet listens on addr and serves the worker protocol — the
// body of the hidden -serve flag.
func ListenAndServeNet(addr string, o NetServeOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	logw := o.Log
	if logw == nil {
		logw = os.Stderr
	}
	fmt.Fprintf(logw, "worker: serving on %s\n", ln.Addr())
	return ServeNet(ln, o)
}

// serveNetSession is the per-connection loop: requests in, heartbeats and
// responses out (serialized by a write mutex so a heartbeat can never
// split a response frame). Responses come from the same handleRequest the
// stdio worker uses, so the two transports cannot diverge semantically.
func serveNetSession(conn net.Conn, hb time.Duration, chaos Chaos, byName map[string]Spec, logw io.Writer, gen int) {
	defer conn.Close()
	var wmu sync.Mutex
	write := func(resp workerResponse) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, resp)
	}
	var hbOff atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	if hb > 0 {
		go func() {
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if hbOff.Load() {
						continue
					}
					if write(workerResponse{Heartbeat: true}) != nil {
						return
					}
				}
			}
		}()
	}
	br := bufio.NewReader(conn)
	var prev *workerResponse
	blackholed := false
	for n := 1; ; n++ {
		var req workerRequest
		if err := readFrame(br, &req); err != nil {
			return // coordinator closed (or broke) the connection
		}
		if blackholed {
			continue // swallow everything; the coordinator's deadline reaps us
		}
		if chaos.SlowLink > 0 {
			time.Sleep(chaos.SlowLink)
		}
		if chaos.DelayEvery > 0 && n%chaos.DelayEvery == 0 {
			time.Sleep(chaos.Delay)
		}
		if chaos.DropConnAfter > 0 && n == chaos.DropConnAfter {
			fmt.Fprintf(logw, "chaos: dropping connection on request %d (gen %d)\n", n, gen)
			return
		}
		if chaos.BlackholeAfter > 0 && n == chaos.BlackholeAfter {
			fmt.Fprintf(logw, "chaos: blackholing connection from request %d (gen %d)\n", n, gen)
			hbOff.Store(true)
			blackholed = true
			continue
		}
		resp := handleRequest(req, byName)
		if chaos.ReplayAfter > 0 && n == chaos.ReplayAfter && prev != nil {
			// A stale frame ahead of the real response: the coordinator must
			// discard it on (epoch, spec, seed) and still complete cleanly.
			fmt.Fprintf(logw, "chaos: replaying stale frame before response %d (gen %d)\n", n, gen)
			if write(*prev) != nil {
				return
			}
		}
		if write(resp) != nil {
			return
		}
		prev = &resp
	}
}
