package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport of the sweep fabric: the same binary frame protocol
// the stdio shard workers speak, lifted onto a network connection so the
// fleet leaves the box. The coordinator side is dialWorker/netConn (a
// slotConn the Shard supervisor drives exactly like a subprocess); the
// worker side is ServeNet (the hidden -serve addr mode of every
// frontend). Failure detection is connection-level: dial timeouts,
// per-frame read deadlines kept alive by heartbeat frames, and (epoch,
// spec, seed) matching that discards stale frames from zombie sessions.
// Unlike subprocess workers, a TCP fleet can mix builds — which is why
// every session opens with a hello frame carrying protoVersion, turning a
// protocol skew into a loud decode fault instead of a misparse.

// heartbeatEvery is the default interval at which a TCP worker session
// emits liveness frames. It must sit far inside FaultPolicy.FrameTimeout:
// the heartbeat is what lets the coordinator's per-frame read deadline
// distinguish "computing a long seed" from "partitioned".
const heartbeatEvery = 1 * time.Second

// dialWorker opens one coordinator→worker TCP session for slot w.
func dialWorker(addr string, pol FaultPolicy, w *workerSlot) (slotConn, error) {
	d := net.Dialer{Timeout: pol.DialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return newNetConn(conn, pol, &w.stales, &w.sh.bytesSent, &w.sh.bytesRecv), nil
}

// newNetConn wraps an established connection as a TCP slot transport.
func newNetConn(conn net.Conn, pol FaultPolicy, stales, sent, recvd *atomic.Int64) *netConn {
	c := &netConn{conn: conn, pol: pol}
	c.connCore = connCore{
		w:        conn,
		br:       bufio.NewReader(conn),
		tag:      "net",
		stales:   stales,
		sent:     sent,
		recvd:    recvd,
		classify: classifyNetErr,
		dec:      newResultDecoder(),
	}
	// The per-frame deadline re-arms before every read: any frame —
	// heartbeat or response — proves the worker is alive, so only silence
	// trips it.
	c.arm = func(read bool) {
		if to := pol.FrameTimeout; to > 0 {
			if read {
				conn.SetReadDeadline(time.Now().Add(to))
			} else {
				conn.SetWriteDeadline(time.Now().Add(to))
			}
		}
	}
	return c
}

// netConn is the TCP slot transport: connCore over a dialed connection,
// with per-frame deadlines as the liveness clock.
type netConn struct {
	connCore
	conn net.Conn
	pol  FaultPolicy
}

func (c *netConn) interrupt() { c.conn.Close() }
func (c *netConn) abort()     { c.conn.Close() }
func (c *netConn) shutdown()  { c.conn.Close() }

// classifyNetErr maps a transport error to the supervisor's failure
// taxonomy: a network timeout (per-frame deadline — i.e. a partition) is
// failTimeout, anything else is the connection-dropped analogue of a
// process exit.
func classifyNetErr(err error) failKind {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return failTimeout
	}
	return failExit
}

// NetServeOptions configures a TCP worker server (ServeNet).
type NetServeOptions struct {
	// ChaosSpec is the raw fault-injection schedule (ParseChaos grammar).
	// It is resolved per connection: a session's generation is the
	// accept-order index of its connection on the listener, so "genN:"
	// clauses target the N-th accepted connection — a dropped connection's
	// replacement is the next generation, mirroring subprocess restarts.
	ChaosSpec string
	// Extra specs are resolvable by name ahead of the registry, mirroring
	// ServeWorker — frontends pass their flag-built ad-hoc specs here.
	Extra []Spec
	// Heartbeat is the liveness-frame interval; 0 means heartbeatEvery,
	// negative disables heartbeats (tests only — a real worker without
	// heartbeats is indistinguishable from a partitioned one on long seeds).
	Heartbeat time.Duration
	// Log is the diagnostics sink; nil means os.Stderr.
	Log io.Writer
}

// ServeNet serves the shard worker protocol on ln until the listener
// closes. Each accepted connection is one independent worker session,
// served concurrently; a malformed chaos schedule is a startup error.
func ServeNet(ln net.Listener, o NetServeOptions) error {
	if _, err := ParseChaos(o.ChaosSpec, 0); err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	hb := o.Heartbeat
	if hb == 0 {
		hb = heartbeatEvery
	}
	logw := o.Log
	if logw == nil {
		logw = os.Stderr
	}
	byName := specIndex(o.Extra)
	for gen := 0; ; gen++ {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("worker: accept: %w", err)
		}
		chaos, _ := ParseChaos(o.ChaosSpec, gen) // validated above
		go serveNetSession(conn, hb, chaos, byName, logw, gen)
	}
}

// ListenAndServeNet listens on addr and serves the worker protocol — the
// body of the hidden -serve flag.
func ListenAndServeNet(addr string, o NetServeOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	logw := o.Log
	if logw == nil {
		logw = os.Stderr
	}
	fmt.Fprintf(logw, "worker: serving on %s\n", ln.Addr())
	return ServeNet(ln, o)
}

// serveNetSession is the per-connection loop: hello first, then chunk
// requests in, heartbeats and per-seed responses out (serialized by a
// write mutex so a heartbeat can never split a response frame). Seed
// execution and response framing mirror serveWorker exactly, so the two
// transports cannot diverge semantically; like the stdio worker, chaos
// triggers count executed seeds, not frames.
func serveNetSession(conn net.Conn, hb time.Duration, chaos Chaos, byName map[string]Spec, logw io.Writer, gen int) {
	defer conn.Close()
	var wmu sync.Mutex
	write := func(frame []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := conn.Write(frame)
		return err
	}
	var fs frameScratch
	if write(fs.helloFrame()) != nil {
		return
	}
	var hbOff atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	if hb > 0 {
		hbFrame := (&frameScratch{}).heartbeatFrame() // own buffer: never races fs
		go func() {
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if hbOff.Load() {
						continue
					}
					if write(hbFrame) != nil {
						return
					}
				}
			}
		}()
	}
	br := bufio.NewReader(conn)
	var inbuf []byte
	var seeds []int64
	var prev []byte // copy of the previous response frame, for replay chaos
	blackholed := false
	n := 0 // executed-seed counter: the chaos schedule's clock
	for {
		payload, err := readRawFrame(br, &inbuf)
		if err != nil {
			return // coordinator closed (or broke) the connection
		}
		req, err := parseWireRequest(payload, seeds[:0])
		if err != nil {
			return
		}
		seeds = req.seeds
		if blackholed {
			continue // swallow everything; the coordinator's deadline reaps us
		}
		spec, ok := byName[string(req.spec)]
		if !ok {
			spec, ok = Lookup(string(req.spec))
		}
		for _, seed := range req.seeds {
			n++
			if chaos.SlowLink > 0 {
				time.Sleep(chaos.SlowLink)
			}
			if chaos.DelayEvery > 0 && n%chaos.DelayEvery == 0 {
				time.Sleep(chaos.Delay)
			}
			if chaos.DropConnAfter > 0 && n == chaos.DropConnAfter {
				fmt.Fprintf(logw, "chaos: dropping connection on seed %d (gen %d)\n", n, gen)
				return
			}
			if chaos.BlackholeAfter > 0 && n == chaos.BlackholeAfter {
				fmt.Fprintf(logw, "chaos: blackholing connection from seed %d (gen %d)\n", n, gen)
				hbOff.Store(true)
				blackholed = true
				break // the rest of the chunk vanishes too
			}
			var frame []byte
			if !ok {
				frame = fs.errorFrame(req.spec, seed, req.epoch, fmt.Sprintf("unknown experiment %q", req.spec))
			} else if res, err := executeSafe(spec, seed); err != nil {
				frame = fs.errorFrame(req.spec, seed, req.epoch, err.Error())
			} else {
				frame = fs.resultFrame(req.spec, seed, req.epoch, res)
			}
			if chaos.ReplayAfter > 0 && n == chaos.ReplayAfter && prev != nil {
				// A stale frame ahead of the real response: the coordinator must
				// discard it on (epoch, spec, seed) and still complete cleanly.
				fmt.Fprintf(logw, "chaos: replaying stale frame before response %d (gen %d)\n", n, gen)
				if write(prev) != nil {
					return
				}
			}
			if write(frame) != nil {
				return
			}
			prev = append(prev[:0], frame...)
		}
	}
}
