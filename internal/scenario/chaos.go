package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Chaos is the fault-injection configuration for a shard worker: the
// testable half of the fault-tolerant fabric. A worker with an active
// Chaos misbehaves on schedule — crashes after N seeds, hangs mid-chunk,
// emits a truncated or corrupt frame, or delays responses — so the
// supervisor's three failure detectors and the retry/degrade machinery
// can be exercised deterministically, in tests and from the CLI (-chaos).
//
// The configuration travels to workers via the REPRO_CHAOS environment
// variable; the parent Shard also exports each worker's slot id and
// process generation (REPRO_WORKER_ID / REPRO_WORKER_GEN), so a schedule
// can target specific generations — e.g. "every worker's first process
// crashes, its replacement runs clean", which is exactly the shape the
// chaos-injected equivalence test uses.
//
// All counts are 1-based indices into the stream of seeds one worker
// process executes — per seed, not per frame, so a schedule keeps its
// meaning whatever ChunkSeeds batches requests into; zero disables that
// fault. For a TCP worker
// (ServeNet) a "generation" is the accept-order index of the connection on
// the listener — a dropped or blackholed connection's replacement is the
// next generation, exactly like a crashed subprocess's restart.
//
// The first six verbs are the process faults stdio workers inject; the
// network verbs (drop-conn-after, blackhole-after, slowlink-ms,
// replay-after) apply to TCP sessions and are ignored by stdio workers,
// whose transport cannot express them.
type Chaos struct {
	CrashAfter    int           // exit(3) when asked for seed N, before responding
	HangAfter     int           // sleep HangFor before responding to seed N
	HangFor       time.Duration // hang duration; defaults to an hour (the chunk deadline reaps the worker first)
	CorruptAfter  int           // respond to seed N with a well-framed garbage payload
	TruncateAfter int           // respond to seed N with a truncated frame, then exit(3)
	DelayEvery    int           // sleep Delay before every Nth response
	Delay         time.Duration // benign delay; defaults to 10ms
	Gens          int           // apply faults only to worker generations < Gens; 0 means every generation

	// Network verbs, for TCP worker sessions (ServeNet).
	DropConnAfter  int           // close the connection on seed N without responding
	BlackholeAfter int           // from seed N on: keep the connection, stop responding and heartbeating (rest of the chunk vanishes too)
	SlowLink       time.Duration // delay every response by this much while heartbeats keep flowing (benign)
	ReplayAfter    int           // before responding to seed N, replay the previous response frame (stale epoch)
}

// active reports whether any fault is configured.
func (c Chaos) active() bool {
	return c.CrashAfter > 0 || c.HangAfter > 0 || c.CorruptAfter > 0 ||
		c.TruncateAfter > 0 || c.DelayEvery > 0 ||
		c.DropConnAfter > 0 || c.BlackholeAfter > 0 || c.SlowLink > 0 || c.ReplayAfter > 0
}

// Environment variables of the shard worker protocol. The parent sets all
// three on every worker it spawns; ServeWorker reads them.
const (
	chaosEnv     = "REPRO_CHAOS"      // fault-injection schedule (ParseChaos grammar)
	workerIDEnv  = "REPRO_WORKER_ID"  // stable worker slot id, 0-based
	workerGenEnv = "REPRO_WORKER_GEN" // process generation within the slot, 0-based
)

// ParseChaos parses a fault-injection schedule for a worker of the given
// generation. Two grammars are accepted:
//
// A flat clause applies to every generation (optionally aged out by gens):
//
//	crash-after=3,gens=2
//
// A generation schedule is ";"-separated "genN:" clauses; the clause
// matching the worker's generation applies and generations with no clause
// run clean:
//
//	gen0:crash-after=3;gen1:corrupt-after=2;gen2:hang-after=1
//
// Keys: crash-after, hang-after, hang-ms, corrupt-after, trunc-after,
// delay-every, delay-ms, gens, and the network verbs drop-conn-after,
// blackhole-after, slowlink-ms, replay-after. The empty spec is no chaos.
func ParseChaos(spec string, gen int) (Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Chaos{}, nil
	}
	clause := spec
	if strings.Contains(spec, ":") || strings.Contains(spec, ";") {
		clause = ""
		for _, part := range strings.Split(spec, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			label, body, ok := strings.Cut(part, ":")
			if !ok || !strings.HasPrefix(label, "gen") {
				return Chaos{}, fmt.Errorf("chaos: clause %q is not \"genN:k=v,...\"", part)
			}
			n, err := strconv.Atoi(strings.TrimPrefix(label, "gen"))
			if err != nil || n < 0 {
				return Chaos{}, fmt.Errorf("chaos: bad generation label %q", label)
			}
			if n == gen {
				clause = body
			}
		}
		if clause == "" {
			return Chaos{}, nil // this generation runs clean
		}
	}
	c, err := parseChaosClause(clause)
	if err != nil {
		return Chaos{}, err
	}
	if c.Gens > 0 && gen >= c.Gens {
		return Chaos{}, nil // faults aged out for this generation
	}
	return c, nil
}

func parseChaosClause(clause string) (Chaos, error) {
	var c Chaos
	hangMS, delayMS, slowMS := -1, -1, -1
	for _, kv := range strings.Split(clause, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Chaos{}, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return Chaos{}, fmt.Errorf("chaos: %s=%q is not a non-negative integer", k, v)
		}
		switch k {
		case "crash-after":
			c.CrashAfter = n
		case "hang-after":
			c.HangAfter = n
		case "hang-ms":
			hangMS = n
		case "corrupt-after":
			c.CorruptAfter = n
		case "trunc-after":
			c.TruncateAfter = n
		case "delay-every":
			c.DelayEvery = n
		case "delay-ms":
			delayMS = n
		case "gens":
			c.Gens = n
		case "drop-conn-after":
			c.DropConnAfter = n
		case "blackhole-after":
			c.BlackholeAfter = n
		case "slowlink-ms":
			slowMS = n
		case "replay-after":
			c.ReplayAfter = n
		default:
			return Chaos{}, fmt.Errorf("chaos: unknown key %q", k)
		}
	}
	c.HangFor = time.Hour
	if hangMS >= 0 {
		c.HangFor = time.Duration(hangMS) * time.Millisecond
	}
	c.Delay = 10 * time.Millisecond
	if delayMS >= 0 {
		c.Delay = time.Duration(delayMS) * time.Millisecond
	}
	if slowMS >= 0 {
		c.SlowLink = time.Duration(slowMS) * time.Millisecond
	}
	return c, nil
}

// ChaosFromEnv builds the worker's fault-injection configuration from
// REPRO_CHAOS and REPRO_WORKER_GEN. No environment means no chaos.
func ChaosFromEnv() (Chaos, error) {
	spec := os.Getenv(chaosEnv)
	if spec == "" {
		return Chaos{}, nil
	}
	gen, _ := strconv.Atoi(os.Getenv(workerGenEnv))
	return ParseChaos(spec, gen)
}
