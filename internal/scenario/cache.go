package scenario

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache decorates an Executor with a content-keyed on-disk result cache:
// each (spec name, params digest, seed) maps to one file holding the
// codec-encoded Result, nested under the code-version digest — so a
// repeated sweep (figgen reruns, macro benchmarking, CI) recomputes only
// the seeds it has never seen on this exact build, and a code change
// silently starts a fresh keyspace instead of serving stale numbers.
//
// Layout: Dir/<code-digest>/<spec-name>-<params-digest>/seed<N>.json.
// Wiping the cache is `rm -rf Dir`; old code versions are just dead
// subtrees. Because the codec round-trips bit-exactly and emission stays
// in seed order, a warm run's aggregate is bit-identical to a cold run's —
// the cross-backend equivalence test pins exactly that.
//
// Kernel tuning (Spec.Tuning) is deliberately not part of the key: every
// tuning produces the identical event order (the reference-model test
// sweeps hostile tunings to prove it), so results cached under one tuning
// are valid under any other.
type Cache struct {
	Inner Executor // backend that computes misses
	Dir   string   // cache root

	hits, misses, writeErrs atomic.Int64
}

// CacheStats reports cache effectiveness for one process. WriteErrs counts
// entries that could not be written back — each one costs future hits, not
// correctness, since the run used the freshly computed Result.
type CacheStats struct {
	Hits, Misses, WriteErrs int64
	Dir                     string
}

func (s CacheStats) String() string {
	return fmt.Sprintf("cache: %d hits, %d misses, %d write errors (dir %s)", s.Hits, s.Misses, s.WriteErrs, s.Dir)
}

// Stats returns the hit/miss/write-error counters accumulated so far.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), WriteErrs: c.writeErrs.Load(), Dir: c.Dir}
}

// Run serves every cached seed from disk, delegates only the misses to the
// inner backend, writes their results back, and emits the full seed-ordered
// stream. Emission is progressive: hits are loaded only when their
// seed-ordered turn comes up (a classification pass decides hit/miss up
// front, but discards the decoded Result), so a sweep over thousands of
// seeds holds the inner backend's out-of-order window — never the whole
// result set — matching the Runner's streaming contract.
func (c *Cache) Run(spec Spec, seeds []int64, emit Emit) error {
	dir := c.specDir(spec)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	var missKI []int
	for ki, seed := range seeds {
		if _, ok := load(seedPath(dir, seed)); ok {
			c.hits.Add(1)
		} else {
			missKI = append(missKI, ki)
		}
	}

	// emitHitsThrough replays the cached seeds in [cursor, limit) — the
	// hit run between two misses. The entry was decodable moments ago and
	// store never leaves torn files, so a failure here means the cache was
	// wiped mid-run: fail loudly rather than emit a gap.
	cursor := 0
	emitHitsThrough := func(limit int) error {
		for ; cursor < limit; cursor++ {
			res, ok := load(seedPath(dir, seeds[cursor]))
			if !ok {
				return fmt.Errorf("cache: %s seed %d: entry vanished mid-run (cache wiped?)", spec.Name, seeds[cursor])
			}
			emit(cursor, res)
		}
		return nil
	}

	if len(missKI) > 0 {
		missSeeds := make([]int64, len(missKI))
		for i, ki := range missKI {
			missSeeds[i] = seeds[ki]
		}
		var emitErr, storeErr error
		err := c.Inner.Run(spec, missSeeds, func(mi int, res Result) {
			c.misses.Add(1)
			if err := store(seedPath(dir, missSeeds[mi]), res); err != nil {
				c.writeErrs.Add(1)
				if storeErr == nil {
					storeErr = err
				}
			}
			if emitErr != nil {
				return
			}
			// The inner backend emits misses in seed order, so the hits
			// before this miss are exactly [cursor, missKI[mi]).
			if emitErr = emitHitsThrough(missKI[mi]); emitErr == nil {
				emit(missKI[mi], res)
				cursor = missKI[mi] + 1
			}
		})
		if err != nil {
			return err
		}
		if emitErr != nil {
			return emitErr
		}
		if storeErr != nil {
			// A write failure costs future hits, not correctness: the run
			// itself used the freshly computed results.
			fmt.Fprintf(os.Stderr, "scenario: cache write failed: %v\n", storeErr)
		}
	}
	return emitHitsThrough(len(seeds))
}

// Close closes the inner backend if it holds resources.
func (c *Cache) Close() error {
	if cl, ok := c.Inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// specDir is the directory holding one spec's entries for the running
// code version: the readable spec name plus a digest of (name, params),
// so ad-hoc specs with equal names but different CLI parameters never
// collide.
func (c *Cache) specDir(spec Spec) string {
	sum := sha256.Sum256([]byte(spec.Name + "\x00" + spec.Params))
	return filepath.Join(c.Dir, CodeVersion()[:16], fmt.Sprintf("%s-%x", spec.Name, sum[:6]))
}

func seedPath(dir string, seed int64) string {
	return filepath.Join(dir, fmt.Sprintf("seed%d.json", seed))
}

// load reads one cached Result; any failure (missing, unreadable,
// corrupt) is a miss, never an error — the backend recomputes.
func load(path string) (Result, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, false
	}
	res, err := DecodeResult(data)
	if err != nil {
		return Result{}, false
	}
	return res, true
}

// store writes one Result atomically (temp file + rename), so a crashed
// or concurrent run never leaves a torn entry for load to trip on.
func store(path string, res Result) error {
	data, err := EncodeResult(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
