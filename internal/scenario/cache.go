package scenario

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache decorates an Executor with a content-keyed result cache: each
// (spec name, params digest, seed) maps to one entry holding the
// codec-encoded Result, nested under the code-version digest — so a
// repeated sweep (figgen reruns, macro benchmarking, CI) recomputes only
// the seeds it has never seen on this exact build, and a code change
// silently starts a fresh keyspace instead of serving stale numbers.
//
// Entries live in the local directory Dir, or — when Addr is set — in a
// shared remote store speaking GET/PUT over the same frame codec the
// shard workers use (ServeStore), so a whole fleet fills one cache. The
// remote store is an optimization, never a dependency: on any store
// outage the process degrades to Dir for the rest of its life, counting
// the outage in Stats, and the run completes on recomputed (and locally
// cached) results.
//
// Layout: <root>/<code-digest>/<spec-name>-<params-digest>/seed<N>.json —
// identical locally and remotely, so a store directory can be seeded
// from, or inspected as, an ordinary cache dir. Wiping the cache is
// `rm -rf`; old code versions are just dead subtrees. Because the codec
// round-trips bit-exactly and emission stays in seed order, a warm run's
// aggregate is bit-identical to a cold run's — the cross-backend
// equivalence test pins exactly that.
//
// Kernel tuning (Spec.Tuning) is deliberately not part of the key: every
// tuning produces the identical event order (the reference-model test
// sweeps hostile tunings to prove it), so results cached under one tuning
// are valid under any other.
type Cache struct {
	Inner Executor // backend that computes misses
	Dir   string   // local cache root; the fallback when Addr is set
	Addr  string   // remote result store address (host:port); empty means local-only

	once sync.Once
	st   entryStore

	hits, misses, writeErrs, outages atomic.Int64
}

// CacheStats reports cache effectiveness for one process. WriteErrs counts
// entries that could not be written back — each one costs future hits, not
// correctness, since the run used the freshly computed Result. Outages
// counts remote-store failures that switched the process to its local
// fallback dir (at most one per Cache: the first failure latches).
type CacheStats struct {
	Hits, Misses, WriteErrs, Outages int64
	Dir                              string
	Addr                             string
}

func (s CacheStats) String() string {
	suffix := fmt.Sprintf("(dir %s)", s.Dir)
	if s.Addr != "" {
		suffix = fmt.Sprintf("%d store outages (store %s, dir %s)", s.Outages, s.Addr, s.Dir)
	}
	return fmt.Sprintf("cache: %d hits, %d misses, %d write errors %s", s.Hits, s.Misses, s.WriteErrs, suffix)
}

// Stats returns the counters accumulated so far.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), WriteErrs: c.writeErrs.Load(),
		Outages: c.outages.Load(), Dir: c.Dir, Addr: c.Addr}
}

// entryStore is where cache entries live: the local directory, or the
// remote store client (which itself falls back to the local directory on
// outage). Keys are entryRel-shaped slash-separated relative paths; load
// treats every failure as a miss.
type entryStore interface {
	load(rel string) (Result, bool)
	store(rel string, res Result) error
}

// entries resolves the configured entry store once per Cache.
func (c *Cache) entries() entryStore {
	c.once.Do(func() {
		disk := diskStore{root: c.Dir}
		if c.Addr == "" {
			c.st = disk
			return
		}
		c.st = &remoteStore{addr: c.Addr, fallback: disk, outages: &c.outages}
	})
	return c.st
}

// Run serves every cached seed from the store, delegates only the misses
// to the inner backend, writes their results back, and emits the full
// seed-ordered stream. Emission is progressive: hits are loaded only when
// their seed-ordered turn comes up (a classification pass decides
// hit/miss up front, but discards the decoded Result), so a sweep over
// thousands of seeds holds the inner backend's out-of-order window —
// never the whole result set — matching the Runner's streaming contract.
func (c *Cache) Run(spec Spec, seeds []int64, emit Emit) error {
	st := c.entries()
	var missKI []int
	for ki, seed := range seeds {
		if _, ok := st.load(entryRel(spec, seed)); ok {
			c.hits.Add(1)
		} else {
			missKI = append(missKI, ki)
		}
	}

	// emitHitsThrough replays the cached seeds in [cursor, limit) — the
	// hit run between two misses. The entry was decodable moments ago and
	// store never leaves torn files, so a failure here means the cache was
	// wiped mid-run: fail loudly rather than emit a gap.
	cursor := 0
	emitHitsThrough := func(limit int) error {
		for ; cursor < limit; cursor++ {
			res, ok := st.load(entryRel(spec, seeds[cursor]))
			if !ok {
				return fmt.Errorf("cache: %s seed %d: entry vanished mid-run (cache wiped?)", spec.Name, seeds[cursor])
			}
			emit(cursor, res)
		}
		return nil
	}

	if len(missKI) > 0 {
		missSeeds := make([]int64, len(missKI))
		for i, ki := range missKI {
			missSeeds[i] = seeds[ki]
		}
		var emitErr, storeErr error
		err := c.Inner.Run(spec, missSeeds, func(mi int, res Result) {
			c.misses.Add(1)
			if err := st.store(entryRel(spec, missSeeds[mi]), res); err != nil {
				c.writeErrs.Add(1)
				if storeErr == nil {
					storeErr = err
				}
			}
			if emitErr != nil {
				return
			}
			// The inner backend emits misses in seed order, so the hits
			// before this miss are exactly [cursor, missKI[mi]).
			if emitErr = emitHitsThrough(missKI[mi]); emitErr == nil {
				emit(missKI[mi], res)
				cursor = missKI[mi] + 1
			}
		})
		if err != nil {
			return err
		}
		if emitErr != nil {
			return emitErr
		}
		if storeErr != nil {
			// A write failure costs future hits, not correctness: the run
			// itself used the freshly computed results.
			fmt.Fprintf(os.Stderr, "scenario: cache write failed: %v\n", storeErr)
		}
	}
	return emitHitsThrough(len(seeds))
}

// Close releases the store connection (if remote) and closes the inner
// backend if it holds resources.
func (c *Cache) Close() error {
	if rs, ok := c.st.(*remoteStore); ok {
		rs.close()
	}
	if cl, ok := c.Inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// entryRel is one entry's store key: a slash-separated relative path,
// identical in the local directory layout and the remote store. The spec
// component pairs the readable name with a digest of (name, params), so
// ad-hoc specs with equal names but different CLI parameters never
// collide; the leading component keys the whole space by code version.
func entryRel(spec Spec, seed int64) string {
	sum := sha256.Sum256([]byte(spec.Name + "\x00" + spec.Params))
	return fmt.Sprintf("%s/%s-%x/seed%d.json", CodeVersion()[:16], spec.Name, sum[:6], seed)
}

// specDir is the local directory holding one spec's entries for the
// running code version.
func (c *Cache) specDir(spec Spec) string {
	return filepath.Dir(diskStore{root: c.Dir}.path(entryRel(spec, 0)))
}

func seedPath(dir string, seed int64) string {
	return filepath.Join(dir, fmt.Sprintf("seed%d.json", seed))
}

// diskStore is the local-directory entry store.
type diskStore struct{ root string }

func (d diskStore) path(rel string) string {
	return filepath.Join(d.root, filepath.FromSlash(rel))
}

// load reads one cached Result; any failure (missing, unreadable,
// corrupt) is a miss, never an error — the backend recomputes.
func (d diskStore) load(rel string) (Result, bool) {
	data, err := os.ReadFile(d.path(rel))
	if err != nil {
		return Result{}, false
	}
	res, err := DecodeResult(data)
	if err != nil {
		return Result{}, false
	}
	return res, true
}

// store writes one Result atomically (temp file + rename), so a crashed
// or concurrent run never leaves a torn entry for load to trip on.
func (d diskStore) store(rel string, res Result) error {
	data, err := EncodeResult(res)
	if err != nil {
		return err
	}
	path := d.path(rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
