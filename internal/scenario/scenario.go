// Package scenario is the registry-driven experiment engine behind every
// frontend in this repository. Each experiment package registers its
// runnable scenarios as Specs (name, description, tags, and a seeded run
// function); cmd/figgen, cmd/macbench, cmd/hotspotsim and the benchmark
// harness all draw from the same registry, so an experiment is declared in
// exactly one place.
//
// The Runner executes (experiment × seed) jobs on a bounded worker pool and
// aggregates per-experiment metrics across seeds into mean ± 95% confidence
// intervals. Aggregation merges per-seed results in seed order regardless
// of worker interleaving, so changing the parallelism changes only the wall
// clock, never the numbers.
package scenario

// Result bundles an experiment's rendered table with machine-readable key
// figures. It is the canonical result type for the whole experiment layer;
// internal/exp aliases it so existing experiment functions register
// directly as Spec run functions.
type Result struct {
	Name   string
	Table  string
	Values map[string]float64
}

// Spec describes one registered experiment: a stable name (the CLI
// identifier), a one-line description, classification tags used for
// filtering, and the seeded run function that produces its Result.
type Spec struct {
	Name string
	Desc string
	Tags []string
	Run  func(seed int64) Result
}

// HasTag reports whether the spec carries the given tag.
func (s Spec) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}
