// Package scenario is the registry-driven experiment engine behind every
// frontend in this repository. Each experiment package registers its
// runnable scenarios as Specs (name, description, tags, and a seeded run
// function); cmd/figgen, cmd/macbench, cmd/hotspotsim and the benchmark
// harness all draw from the same registry, so an experiment is declared in
// exactly one place.
//
// Execution is layered: an Executor turns (spec, seeds) into per-seed
// Results — in-process on a bounded worker pool (Local), fanned across
// worker subprocesses (Shard), or memoized on disk keyed by a code-version
// digest (Cache) — and the Runner aggregates whatever an Executor emits
// into mean ± 95% confidence intervals. Every executor delivers results in
// seed order, so changing the backend or the parallelism changes only the
// wall clock, never a single output bit.
package scenario

import "repro/internal/sim"

// Result bundles an experiment's rendered table with machine-readable key
// figures. It is the canonical result type for the whole experiment layer;
// internal/exp aliases it so existing experiment functions register
// directly as Spec run functions. Results cross process boundaries through
// the codec in codec.go, which round-trips every field bit-exactly.
type Result struct {
	Name   string
	Table  string
	Values map[string]float64
}

// Spec describes one registered experiment: a stable name (the CLI
// identifier), a one-line description, classification tags used for
// filtering, and the seeded run function that produces its Result.
//
// Exactly one of Run and RunTuned must be set. RunTuned is for experiments
// whose event mix wants a non-default kernel tuning (sim.Tuning trades
// only constant factors, never event order, so the override cannot change
// results); the Tuning field supplies it and Execute threads it through.
//
// Params is an optional canonical description of any runtime parameters
// baked into the run closure (ad-hoc specs built from CLI flags set it;
// registry specs have their parameters in code and leave it empty). It is
// part of the result-cache key, so two invocations with different
// parameters never share cache entries.
type Spec struct {
	Name     string
	Desc     string
	Tags     []string
	Params   string
	Run      func(seed int64) Result
	RunTuned func(seed int64, tun sim.Tuning) Result
	Tuning   *sim.Tuning // kernel tuning passed to RunTuned; nil means sim.DefaultTuning
}

// Execute runs the spec on one seed. It is the single entry point every
// executor, benchmark and test uses, so the tuning override is applied
// uniformly no matter which backend runs the seed.
func (s Spec) Execute(seed int64) Result {
	if s.RunTuned != nil {
		tun := sim.DefaultTuning()
		if s.Tuning != nil {
			tun = *s.Tuning
		}
		return s.RunTuned(seed, tun)
	}
	return s.Run(seed)
}

// Runnable reports whether the spec carries a run function.
func (s Spec) Runnable() bool { return s.Run != nil || s.RunTuned != nil }

// HasTag reports whether the spec carries the given tag.
func (s Spec) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}
