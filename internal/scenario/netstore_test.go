package scenario

import (
	"bufio"
	"math"
	"net"
	"reflect"
	"testing"
)

// startStoreServer runs an in-process result store for the test and
// returns its address plus the backing directory.
func startStoreServer(t *testing.T) (addr, dir string) {
	t.Helper()
	dir = t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeStore(ln, dir)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), dir
}

// TestRemoteStoreColdThenWarm: a cold run fills the remote store; a second
// process (fresh local dir, dead inner backend) must serve every seed from
// the remote store, bit-identically.
func TestRemoteStoreColdThenWarm(t *testing.T) {
	addr, _ := startStoreServer(t)
	spec := cacheSpec()
	seeds := Seeds(1, 6)

	cold := &Cache{Inner: &Local{Parallel: 2}, Dir: t.TempDir(), Addr: addr}
	coldAggs := mustRun(t, &Runner{KeepPerSeed: true, Executor: cold}, []Spec{spec}, seeds)
	cold.Close()
	if s := cold.Stats(); s.Hits != 0 || s.Misses != int64(len(seeds)) || s.Outages != 0 {
		t.Errorf("cold stats %+v, want 0 hits / %d misses / 0 outages", s, len(seeds))
	}

	// A different "host": separate (empty) local dir, same store. Hits can
	// only come over the wire.
	warm := &Cache{Inner: FailExecutor("remote store missed on a warm run"), Dir: t.TempDir(), Addr: addr}
	warmAggs := mustRun(t, &Runner{KeepPerSeed: true, Executor: warm}, []Spec{spec}, seeds)
	warm.Close()
	if s := warm.Stats(); s.Hits != int64(len(seeds)) || s.Misses != 0 || s.Outages != 0 {
		t.Errorf("warm stats %+v, want %d hits / 0 misses / 0 outages", s, len(seeds))
	}
	if !reflect.DeepEqual(coldAggs[0].Metrics, warmAggs[0].Metrics) {
		t.Errorf("remote warm aggregate differs:\ncold %+v\nwarm %+v", coldAggs[0].Metrics, warmAggs[0].Metrics)
	}
	if !reflect.DeepEqual(coldAggs[0].PerSeed, warmAggs[0].PerSeed) {
		t.Errorf("remote warm per-seed results differ")
	}
}

// TestStoreOutageDegradesToLocalDir is the store-outage acceptance test:
// with the store unreachable the run must complete on recomputed results,
// count the outage and the misses, and leave the local fallback dir warm
// enough that a later run hits without the store.
func TestStoreOutageDegradesToLocalDir(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // connection refused from here on

	dir := t.TempDir()
	spec := cacheSpec()
	seeds := Seeds(1, 4)
	c := &Cache{Inner: &Local{Parallel: 2}, Dir: dir, Addr: deadAddr}
	mustRun(t, &Runner{Executor: c}, []Spec{spec}, seeds)
	c.Close()
	s := c.Stats()
	if s.Outages == 0 {
		t.Errorf("store outage not counted: %+v", s)
	}
	if s.Misses != int64(len(seeds)) {
		t.Errorf("outage run should miss (and recompute) every seed: %+v", s)
	}
	if s.WriteErrs != 0 {
		t.Errorf("outage writes must fall back to the local dir, not fail: %+v", s)
	}

	// The fallback dir absorbed the writes: a second outage run hits locally.
	again := &Cache{Inner: FailExecutor("local fallback missed"), Dir: dir, Addr: deadAddr}
	mustRun(t, &Runner{Executor: again}, []Spec{spec}, seeds)
	again.Close()
	if s := again.Stats(); s.Hits != int64(len(seeds)) {
		t.Errorf("fallback dir not warm after outage run: %+v", s)
	}
}

// TestStoreRejectsEscapingKeys: the store must refuse any key that could
// leave its root.
func TestStoreRejectsEscapingKeys(t *testing.T) {
	addr, dir := startStoreServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for _, key := range []string{"", "/abs/path", "../escape", "a/../../b", "a//b", "a/./b", `a\b`} {
		if err := writeFrame(conn, storeRequest{Op: "get", Key: key}); err != nil {
			t.Fatal(err)
		}
		var resp storeResponse
		if err := readFrame(br, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err == "" || resp.Found {
			t.Errorf("key %q was not rejected: %+v", key, resp)
		}
	}
	// And a valid key still works end to end on the same connection.
	res := Result{Name: "x", Values: map[string]float64{"v": 1}}
	data, _ := EncodeResult(res)
	if err := writeFrame(conn, storeRequest{Op: "put", Key: "ok/entry.json", Data: data}); err != nil {
		t.Fatal(err)
	}
	var putResp storeResponse
	if err := readFrame(br, &putResp); err != nil {
		t.Fatal(err)
	}
	if putResp.Err != "" {
		t.Fatalf("valid put rejected: %+v", putResp)
	}
	if _, ok := (diskStore{root: dir}).load("ok/entry.json"); !ok {
		t.Error("valid put did not land in the store dir")
	}
}

// TestStoreUndecodablePutRejected: a put whose payload is not a valid
// encoded Result must be refused, never stored.
func TestStoreUndecodablePutRejected(t *testing.T) {
	addr, dir := startStoreServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if err := writeFrame(conn, storeRequest{Op: "put", Key: "bad/entry.json", Data: []byte("{torn")}); err != nil {
		t.Fatal(err)
	}
	var resp storeResponse
	if err := readFrame(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("undecodable put was accepted")
	}
	if _, ok := (diskStore{root: dir}).load("bad/entry.json"); ok {
		t.Error("undecodable put landed in the store dir")
	}
}

// TestStoreBinaryRoundTripsOverWire: a binary-codec entry survives the
// store protocol end to end — PUT re-encodes it to disk, GET returns
// bytes that decode bit-identically, hostile floats included.
func TestStoreBinaryRoundTripsOverWire(t *testing.T) {
	addr, _ := startStoreServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	res := Result{
		Name:  "bin",
		Table: "t",
		Values: map[string]float64{
			"nan":     math.NaN(),
			"neginf":  math.Inf(-1),
			"negzero": math.Copysign(0, -1),
		},
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != resultMagic {
		t.Fatalf("EncodeResult is not the binary codec (first byte %#x)", data[0])
	}
	const key = "v1/bin-000000/seed1.json"
	if err := writeFrame(conn, storeRequest{Op: "put", Key: key, Data: data}); err != nil {
		t.Fatal(err)
	}
	var putResp storeResponse
	if err := readFrame(br, &putResp); err != nil {
		t.Fatal(err)
	}
	if putResp.Err != "" {
		t.Fatalf("binary put rejected: %+v", putResp)
	}

	if err := writeFrame(conn, storeRequest{Op: "get", Key: key}); err != nil {
		t.Fatal(err)
	}
	var getResp storeResponse
	if err := readFrame(br, &getResp); err != nil {
		t.Fatal(err)
	}
	if getResp.Err != "" || !getResp.Found {
		t.Fatalf("binary get failed: %+v", getResp)
	}
	got, err := DecodeResult(getResp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != res.Name || got.Table != res.Table || len(got.Values) != len(res.Values) {
		t.Fatalf("round trip changed shape: %+v vs %+v", got, res)
	}
	for k, want := range res.Values {
		if math.Float64bits(got.Values[k]) != math.Float64bits(want) {
			t.Errorf("%s: %#x, want %#x", k, math.Float64bits(got.Values[k]), math.Float64bits(want))
		}
	}
}
