package scenario

import (
	"sync"
)

// Emit receives one seed's Result. Executors call it with the index into
// the seeds slice they were given.
type Emit func(seedIdx int, res Result)

// Executor is a pluggable execution backend: it runs one spec across a
// set of seeds and streams the per-seed Results back.
//
// The contract every backend honours — and the cross-backend equivalence
// test pins — is that emit is called exactly once per seed, sequentially,
// in seed order. That makes downstream aggregation (the Runner's streaming
// stats.Summary folds) bit-identical across backends: the fold sequence is
// always seed order, however the work was scheduled, sharded or cached.
//
// Implementations may be used by several Runner goroutines concurrently
// (one Run call per spec); any internal capacity limit must therefore be
// shared across Run calls, not per call. Backends holding external
// resources additionally implement io.Closer.
type Executor interface {
	Run(spec Spec, seeds []int64, emit Emit) error
}

// Local executes seeds in-process on a bounded goroutine pool. It is the
// default backend and the innermost rung of the others: Shard runs one
// Local per worker subprocess, Cache usually decorates a Local.
//
// The pool is shared across concurrent Run calls, so a Runner fanning many
// specs over one Local never exceeds Parallel simulations in flight.
type Local struct {
	Parallel int // pool size; values < 1 mean 1

	once sync.Once
	sem  chan struct{}
}

func (l *Local) init() {
	p := l.Parallel
	if p < 1 {
		p = 1
	}
	l.sem = make(chan struct{}, p)
}

// Run executes spec on every seed, at most Parallel at a time, and emits
// the Results in seed order regardless of completion order.
func (l *Local) Run(spec Spec, seeds []int64, emit Emit) error {
	l.once.Do(l.init)
	ord := newReorder(emit)
	var wg sync.WaitGroup
	for ki := range seeds {
		l.sem <- struct{}{} // bounds in-flight goroutines, not just running ones
		wg.Add(1)
		go func(ki int) {
			defer wg.Done()
			res := spec.Execute(seeds[ki])
			<-l.sem
			ord.deliver(ki, res)
		}(ki)
	}
	wg.Wait()
	return nil
}

// reorder turns out-of-order (index, Result) completions into in-order
// emit calls. It buffers only the completions that arrived ahead of their
// turn, so a sweep over thousands of seeds holds the out-of-order window,
// not every Result. Because each emit sequence it produces is exactly
// index order, the Summary folds downstream see the same Add sequence as
// a fully sequential run — the merge is bit-exact by construction, which
// TestReorderedMergeBitIdentical pins over random partitions.
type reorder struct {
	mu      sync.Mutex
	next    int
	pending map[int]Result
	emit    Emit
}

func newReorder(emit Emit) *reorder {
	return &reorder{pending: make(map[int]Result), emit: emit}
}

// deliver hands over one completion; any emits it unblocks run on the
// calling goroutine, serialized by the internal lock.
func (o *reorder) deliver(i int, res Result) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending[i] = res
	for {
		res, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.emit(o.next, res)
		o.next++
	}
}
