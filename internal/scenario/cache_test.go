package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// countingExecutor wraps Local and counts how many seeds it computed.
type countingExecutor struct {
	Local
	computed []int64
}

func (c *countingExecutor) Run(spec Spec, seeds []int64, emit Emit) error {
	c.computed = append(c.computed, seeds...)
	return c.Local.Run(spec, seeds, emit)
}

func cacheSpec() Spec {
	return Spec{
		Name: "test-cache", Desc: "cache spec", Params: "p=1",
		Run: func(seed int64) Result {
			return Result{
				Name:  "test-cache",
				Table: "cache table",
				Values: map[string]float64{
					"seed": float64(seed),
					"inv":  1 / float64(seed),
				},
			}
		},
	}
}

func TestCacheColdThenWarmBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec()
	seeds := Seeds(1, 6)

	inner := &countingExecutor{Local: Local{Parallel: 2}}
	cold := &Cache{Inner: inner, Dir: dir}
	coldAggs := mustRun(t, &Runner{KeepPerSeed: true, Executor: cold}, []Spec{spec}, seeds)
	if s := cold.Stats(); s.Hits != 0 || s.Misses != int64(len(seeds)) {
		t.Errorf("cold stats %+v, want 0 hits / %d misses", s, len(seeds))
	}
	if len(inner.computed) != len(seeds) {
		t.Errorf("inner computed %v, want all %d seeds", inner.computed, len(seeds))
	}

	// Warm run: the inner backend must never be reached, and the merged
	// aggregate must be bit-identical to the cold run's.
	warm := &Cache{Inner: FailExecutor("cache missed on a warm run"), Dir: dir}
	warmAggs := mustRun(t, &Runner{KeepPerSeed: true, Executor: warm}, []Spec{spec}, seeds)
	if s := warm.Stats(); s.Hits != int64(len(seeds)) || s.Misses != 0 {
		t.Errorf("warm stats %+v, want %d hits / 0 misses", s, len(seeds))
	}
	if !reflect.DeepEqual(coldAggs[0].Metrics, warmAggs[0].Metrics) {
		t.Errorf("warm aggregate differs:\ncold %+v\nwarm %+v", coldAggs[0].Metrics, warmAggs[0].Metrics)
	}
	if !reflect.DeepEqual(coldAggs[0].PerSeed, warmAggs[0].PerSeed) {
		t.Errorf("warm per-seed results differ:\ncold %+v\nwarm %+v", coldAggs[0].PerSeed, warmAggs[0].PerSeed)
	}
}

func TestCachePartialHitComputesOnlyMisses(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec()
	first := &Cache{Inner: &Local{Parallel: 2}, Dir: dir}
	mustRun(t, &Runner{Executor: first}, []Spec{spec}, []int64{2, 4})

	inner := &countingExecutor{Local: Local{Parallel: 2}}
	second := &Cache{Inner: inner, Dir: dir}
	aggs := mustRun(t, &Runner{Executor: second}, []Spec{spec}, Seeds(1, 5))
	if !reflect.DeepEqual(inner.computed, []int64{1, 3, 5}) {
		t.Errorf("recomputed %v, want only the misses [1 3 5]", inner.computed)
	}
	if s := second.Stats(); s.Hits != 2 || s.Misses != 3 {
		t.Errorf("stats %+v, want 2 hits / 3 misses", s)
	}
	if m := aggs[0].Metrics[1]; m.Name != "seed" || m.Mean != 3 || m.N != 5 {
		t.Errorf("merged hit+miss aggregate wrong: %+v", aggs[0].Metrics)
	}
}

// TestCacheEmitsInSeedOrderAcrossHitsAndMisses pins the progressive
// emission contract on a hit/miss interleaving: hit, miss, hit, miss, hit.
func TestCacheEmitsInSeedOrderAcrossHitsAndMisses(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec()
	warmup := &Cache{Inner: &Local{Parallel: 1}, Dir: dir}
	mustRun(t, &Runner{Executor: warmup}, []Spec{spec}, []int64{1, 3, 5})

	c := &Cache{Inner: &Local{Parallel: 2}, Dir: dir}
	var order []int
	if err := c.Run(spec, []int64{1, 2, 3, 4, 5}, func(ki int, res Result) {
		order = append(order, ki)
		if want := float64(ki + 1); res.Values["seed"] != want {
			t.Errorf("emit %d carried seed %v, want %v", ki, res.Values["seed"], want)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, ki := range order {
		if ki != i {
			t.Fatalf("emit order %v not seed order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("emitted %d results, want 5", len(order))
	}
}

func TestCacheKeySeparatesParamsAndSpecs(t *testing.T) {
	dir := t.TempDir()
	a := cacheSpec()
	b := cacheSpec()
	b.Params = "p=2"
	c := &Cache{Inner: &Local{Parallel: 1}, Dir: dir}
	mustRun(t, &Runner{Executor: c}, []Spec{a}, []int64{1})
	mustRun(t, &Runner{Executor: c}, []Spec{b}, []int64{1})
	if s := c.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("different Params shared an entry: %+v", s)
	}
	// Same spec+params again: a hit, proving the miss above was key
	// separation rather than a broken store.
	mustRun(t, &Runner{Executor: c}, []Spec{a}, []int64{1})
	if s := c.Stats(); s.Hits != 1 {
		t.Errorf("identical spec did not hit: %+v", s)
	}
}

func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec()
	c := &Cache{Inner: &Local{Parallel: 1}, Dir: dir}
	mustRun(t, &Runner{Executor: c}, []Spec{spec}, []int64{3})

	// Truncate every cache file to garbage.
	var files []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("expected 1 cache file, found %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	inner := &countingExecutor{Local: Local{Parallel: 1}}
	again := &Cache{Inner: inner, Dir: dir}
	aggs := mustRun(t, &Runner{Executor: again}, []Spec{spec}, []int64{3})
	if len(inner.computed) != 1 {
		t.Errorf("corrupt entry was not recomputed: %v", inner.computed)
	}
	if got := aggs[0].Metrics[1].Mean; got != 3 {
		t.Errorf("recomputed value %v, want 3", got)
	}
}

// TestCacheRoundTripsHostileFloats: a spec emitting NaN/Inf must cache and
// replay without bit damage (the codec test covers the encoding; this
// covers the file path).
func TestCacheRoundTripsHostileFloats(t *testing.T) {
	dir := t.TempDir()
	spec, _ := Lookup("test-shardable")
	seeds := []int64{13} // the NaN seed
	cold := &Cache{Inner: &Local{Parallel: 1}, Dir: dir}
	a := mustRun(t, &Runner{KeepPerSeed: true, Executor: cold}, []Spec{spec}, seeds)
	warm := &Cache{Inner: FailExecutor("missed"), Dir: dir}
	b := mustRun(t, &Runner{KeepPerSeed: true, Executor: warm}, []Spec{spec}, seeds)
	av, bv := a[0].PerSeed[0].Values, b[0].PerSeed[0].Values
	if len(av) != len(bv) {
		t.Fatalf("value sets differ: %v vs %v", av, bv)
	}
	for k := range av {
		if math.Float64bits(av[k]) != math.Float64bits(bv[k]) {
			t.Errorf("%s: %#x vs %#x", k, math.Float64bits(av[k]), math.Float64bits(bv[k]))
		}
	}
}

// legacyJSONEntry renders a Result in the pre-binary cache entry format
// (a wireResult JSON document with hex Float64bits), byte-compatible with
// what older builds wrote to disk.
func legacyJSONEntry(t *testing.T, res Result) []byte {
	t.Helper()
	wr := wireResult{Name: res.Name, Table: res.Table}
	names := make([]string, 0, len(res.Values))
	for k := range res.Values {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := res.Values[k]
		wr.Values = append(wr.Values, wireValue{
			Name:  k,
			Bits:  fmt.Sprintf("%016x", math.Float64bits(v)),
			Human: fmt.Sprintf("%g", v),
		})
	}
	data, err := json.Marshal(wr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCacheLegacyJSONEntriesWarmHit: a cache directory populated by an
// older build (JSON entries) must warm-hit under the binary codec —
// DecodeResult sniffs per entry, so switching codecs never invalidates a
// cache or forces recomputation.
func TestCacheLegacyJSONEntriesWarmHit(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec()
	seeds := []int64{1, 2, 3}
	hostile := Result{
		Name:  "test-cache",
		Table: "cache table",
		Values: map[string]float64{
			"nan":     math.NaN(),
			"negzero": math.Copysign(0, -1),
			"seed":    7,
		},
	}

	store := diskStore{root: dir}
	for _, seed := range seeds {
		res := spec.Run(seed)
		if seed == 3 {
			res = hostile // one entry carrying the specials the hex form encodes
		}
		path := store.path(entryRel(spec, seed))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, legacyJSONEntry(t, res), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := &Cache{Inner: FailExecutor("legacy entry missed"), Dir: dir}
	aggs := mustRun(t, &Runner{KeepPerSeed: true, Executor: warm}, []Spec{spec}, seeds)
	if s := warm.Stats(); s.Hits != int64(len(seeds)) || s.Misses != 0 {
		t.Fatalf("legacy warm stats %+v, want %d hits / 0 misses", s, len(seeds))
	}
	for i, seed := range seeds {
		want := spec.Run(seed)
		if seed == 3 {
			want = hostile
		}
		got := aggs[0].PerSeed[i]
		if got.Name != want.Name || got.Table != want.Table || len(got.Values) != len(want.Values) {
			t.Fatalf("seed %d: legacy entry decoded as %+v, want %+v", seed, got, want)
		}
		for k, v := range want.Values {
			if math.Float64bits(got.Values[k]) != math.Float64bits(v) {
				t.Errorf("seed %d %s: %#x, want %#x", seed, k,
					math.Float64bits(got.Values[k]), math.Float64bits(v))
			}
		}
	}
}
