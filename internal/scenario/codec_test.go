package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// TestCodecRoundTripBitExact pins the codec contract the shard protocol
// and result cache rely on: every float64 — including the values plain
// JSON cannot carry — survives encode/decode with its exact bit pattern,
// and tables round-trip byte-for-byte.
func TestCodecRoundTripBitExact(t *testing.T) {
	in := Result{
		Name:  "codec",
		Table: "line1\nµ ± ┌─┐ \"quoted\" \\backslash\ttab",
		Values: map[string]float64{
			"plain":   3.25,
			"tiny":    5e-324, // smallest denormal
			"huge":    math.MaxFloat64,
			"negzero": math.Copysign(0, -1),
			"posinf":  math.Inf(1),
			"neginf":  math.Inf(-1),
			"nan":     math.NaN(),
			"pi":      math.Pi,
		},
	}
	data, err := EncodeResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Table != in.Table {
		t.Errorf("name/table changed: %+v", out)
	}
	if len(out.Values) != len(in.Values) {
		t.Fatalf("value count %d, want %d", len(out.Values), len(in.Values))
	}
	for k, want := range in.Values {
		got, ok := out.Values[k]
		if !ok {
			t.Errorf("value %q missing", k)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: bits %#x, want %#x", k, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestCodecDeterministicBytes: equal Results must encode to identical
// bytes (the cache compares freshness by file content identity across
// processes, and map iteration order must not leak in).
func TestCodecDeterministicBytes(t *testing.T) {
	mk := func() Result {
		return Result{Name: "d", Table: "t", Values: map[string]float64{
			"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6, "g": 7, "h": 8,
		}}
	}
	first, err := EncodeResult(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := EncodeResult(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding not deterministic:\n%s\n%s", first, again)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeResult([]byte("not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
	if _, err := DecodeResult([]byte(`{"name":"x","values":[{"name":"v","bits":"zz"}]}`)); err == nil {
		t.Error("bad bit pattern accepted")
	}
}

// TestDecodeErrorsAreLoudAndTotal pins the codec error contract the
// supervisor's decode detector depends on: truncated frames, oversized
// length prefixes and garbage-hex Float64bits all fail with an error the
// caller can classify via errors.Is(err, ErrDecode) where the stream (not
// the transport) is at fault — and the failed decode returns the zero
// Result, never a partial one.
func TestDecodeErrorsAreLoudAndTotal(t *testing.T) {
	// Garbage-hex bits inside otherwise valid JSON: ErrDecode, zero Result
	// even though the first value was decodable.
	res, err := DecodeResult([]byte(`{"name":"x","table":"t","values":[` +
		`{"name":"good","bits":"3ff0000000000000"},{"name":"bad","bits":"zz"}]}`))
	if !errors.Is(err, ErrDecode) {
		t.Errorf("garbage bits: err = %v, want ErrDecode", err)
	}
	if res.Name != "" || res.Table != "" || res.Values != nil {
		t.Errorf("partial Result leaked from failed decode: %+v", res)
	}

	// Non-JSON payload: ErrDecode.
	if res, err = DecodeResult([]byte("chaos! not json")); !errors.Is(err, ErrDecode) {
		t.Errorf("non-JSON payload: err = %v, want ErrDecode", err)
	} else if res.Name != "" || res.Table != "" || res.Values != nil {
		t.Errorf("partial Result from non-JSON payload: %+v", res)
	}

	// Oversized length prefix: ErrDecode from the frame reader (the stream
	// is corrupt, not merely closed).
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], maxFrame+1)
	var v workerResponse
	if err := readFrame(bytes.NewReader(huge[:]), &v); !errors.Is(err, ErrDecode) {
		t.Errorf("oversized prefix: err = %v, want ErrDecode", err)
	}

	// Well-framed garbage payload (what the chaos corrupt mode emits):
	// ErrDecode from the frame reader.
	var buf bytes.Buffer
	payload := []byte("chaos! not json {{{")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if err := readFrame(&buf, &v); !errors.Is(err, ErrDecode) {
		t.Errorf("garbage payload: err = %v, want ErrDecode", err)
	}

	// Truncation inside a frame is a transport fault, not stream corruption:
	// unexpected EOF, and NOT ErrDecode (the supervisor classifies it as a
	// process death).
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 1024)
	buf.Write(hdr[:])
	buf.WriteString("short")
	err = readFrame(&buf, &v)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame: err = %v, want unexpected EOF", err)
	}
	if errors.Is(err, ErrDecode) {
		t.Error("truncated frame misclassified as stream corruption")
	}
}

// TestFrameRoundTrip checks the length-prefixed framing, including clean
// EOF at a boundary vs. truncation inside a frame.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []workerRequest{{Spec: "a", Seed: 1}, {Spec: "b", Seed: -7}}
	for _, r := range reqs {
		if err := writeFrame(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	for i := range reqs {
		var got workerRequest
		if err := readFrame(r, &got); err != nil {
			t.Fatal(err)
		}
		if got != reqs[i] {
			t.Errorf("frame %d = %+v, want %+v", i, got, reqs[i])
		}
	}
	var end workerRequest
	if err := readFrame(r, &end); err != io.EOF {
		t.Errorf("end of stream: %v, want io.EOF", err)
	}
	short := bytes.NewReader(stream[:len(stream)-3]) // second frame loses its tail
	var trunc workerRequest
	if err := readFrame(short, &trunc); err != nil {
		t.Fatalf("intact first frame: %v", err)
	}
	if err := readFrame(short, &trunc); err == nil || err == io.EOF {
		t.Errorf("truncated frame: %v, want unexpected-EOF error", err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if err := readFrame(bytes.NewReader(huge), &trunc); err == nil {
		t.Error("oversized frame header accepted")
	}
}
