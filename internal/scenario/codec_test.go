package scenario

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// TestCodecRoundTripBitExact pins the codec contract the shard protocol
// and result cache rely on: every float64 — including the values plain
// JSON cannot carry — survives encode/decode with its exact bit pattern,
// and tables round-trip byte-for-byte.
func TestCodecRoundTripBitExact(t *testing.T) {
	in := Result{
		Name:  "codec",
		Table: "line1\nµ ± ┌─┐ \"quoted\" \\backslash\ttab",
		Values: map[string]float64{
			"plain":   3.25,
			"tiny":    5e-324, // smallest denormal
			"huge":    math.MaxFloat64,
			"negzero": math.Copysign(0, -1),
			"posinf":  math.Inf(1),
			"neginf":  math.Inf(-1),
			"nan":     math.NaN(),
			"pi":      math.Pi,
		},
	}
	data, err := EncodeResult(in)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != resultMagic || data[1] != resultVersion {
		t.Fatalf("encoding header = %#x %#x, want magic %#x version %d", data[0], data[1], resultMagic, resultVersion)
	}
	out, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Table != in.Table {
		t.Errorf("name/table changed: %+v", out)
	}
	if len(out.Values) != len(in.Values) {
		t.Fatalf("value count %d, want %d", len(out.Values), len(in.Values))
	}
	for k, want := range in.Values {
		got, ok := out.Values[k]
		if !ok {
			t.Errorf("value %q missing", k)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: bits %#x, want %#x", k, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestCodecDeterministicBytes: equal Results must encode to identical
// bytes (the cache compares freshness by file content identity across
// processes, and map iteration order must not leak in).
func TestCodecDeterministicBytes(t *testing.T) {
	mk := func() Result {
		return Result{Name: "d", Table: "t", Values: map[string]float64{
			"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6, "g": 7, "h": 8,
		}}
	}
	first, err := EncodeResult(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := EncodeResult(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding not deterministic:\n%x\n%x", first, again)
		}
	}
}

// TestDecodeLegacyJSON pins cache back-compat at the codec level:
// DecodeResult still reads the hex-bits JSON documents every build
// through PR 8 wrote, bit-exactly.
func TestDecodeLegacyJSON(t *testing.T) {
	legacy := `{"name":"legacy","table":"t\n","values":[` +
		`{"name":"nan","bits":"7ff8000000000001","human":"NaN"},` +
		`{"name":"negzero","bits":"8000000000000000","human":"-0"},` +
		`{"name":"pi","bits":"400921fb54442d18","human":"3.141592653589793"}]}`
	res, err := DecodeResult([]byte(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "legacy" || res.Table != "t\n" || len(res.Values) != 3 {
		t.Fatalf("legacy decode = %+v", res)
	}
	if !math.IsNaN(res.Values["nan"]) {
		t.Errorf("nan = %v", res.Values["nan"])
	}
	if math.Float64bits(res.Values["negzero"]) != 0x8000000000000000 {
		t.Errorf("negzero bits = %#x", math.Float64bits(res.Values["negzero"]))
	}
	if res.Values["pi"] != math.Pi {
		t.Errorf("pi = %v", res.Values["pi"])
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeResult([]byte("not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
	if _, err := DecodeResult([]byte(`{"name":"x","values":[{"name":"v","bits":"zz"}]}`)); err == nil {
		t.Error("bad bit pattern accepted")
	}
}

// TestDecodeErrorsAreLoudAndTotal pins the codec error contract the
// supervisor's decode detector depends on: truncated encodings, version
// skew, trailing garbage, oversized length prefixes and malformed legacy
// JSON all fail with an error the caller can classify via
// errors.Is(err, ErrDecode) where the stream (not the transport) is at
// fault — and the failed decode returns the zero Result, never a partial
// one.
func TestDecodeErrorsAreLoudAndTotal(t *testing.T) {
	// Garbage-hex bits inside otherwise valid legacy JSON: ErrDecode, zero
	// Result even though the first value was decodable.
	res, err := DecodeResult([]byte(`{"name":"x","table":"t","values":[` +
		`{"name":"good","bits":"3ff0000000000000"},{"name":"bad","bits":"zz"}]}`))
	if !errors.Is(err, ErrDecode) {
		t.Errorf("garbage bits: err = %v, want ErrDecode", err)
	}
	if res.Name != "" || res.Table != "" || res.Values != nil {
		t.Errorf("partial Result leaked from failed decode: %+v", res)
	}

	// Non-JSON, non-binary payload: ErrDecode.
	if res, err = DecodeResult([]byte("chaos! not json")); !errors.Is(err, ErrDecode) {
		t.Errorf("non-JSON payload: err = %v, want ErrDecode", err)
	} else if res.Name != "" || res.Table != "" || res.Values != nil {
		t.Errorf("partial Result from non-JSON payload: %+v", res)
	}

	// Every proper prefix of a binary encoding is a truncation: ErrDecode,
	// zero Result, no panic.
	enc, err := EncodeResult(Result{Name: "n", Table: "t", Values: map[string]float64{
		"a": 1, "nan": math.NaN(), "inf": math.Inf(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(enc); i++ {
		res, err := DecodeResult(enc[:i])
		if !errors.Is(err, ErrDecode) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrDecode", i, len(enc), err)
		}
		if res.Name != "" || res.Table != "" || res.Values != nil {
			t.Fatalf("prefix %d/%d leaked a partial Result: %+v", i, len(enc), res)
		}
	}

	// A future version byte: ErrDecode naming the version, not a misparse.
	skew := append([]byte(nil), enc...)
	skew[1] = resultVersion + 1
	if _, err := DecodeResult(skew); !errors.Is(err, ErrDecode) || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew: err = %v, want ErrDecode naming the version", err)
	}

	// Trailing bytes after the last value: the encoding is length-framed by
	// its frame, so slack means corruption.
	if _, err := DecodeResult(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrDecode) {
		t.Errorf("trailing byte: err = %v, want ErrDecode", err)
	}

	// Oversized length prefix: ErrDecode from the frame reader (the stream
	// is corrupt, not merely closed).
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], maxFrame+1)
	var buf []byte
	if _, err := readRawFrame(bytes.NewReader(huge[:]), &buf); !errors.Is(err, ErrDecode) {
		t.Errorf("oversized prefix: err = %v, want ErrDecode", err)
	}

	// Well-framed garbage payload (what the chaos corrupt mode emits): the
	// frame reads fine, the message parse fails with ErrDecode.
	var stream bytes.Buffer
	payload := []byte("chaos! not a frame {{{")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	stream.Write(hdr[:])
	stream.Write(payload)
	p, err := readRawFrame(&stream, &buf)
	if err != nil {
		t.Fatalf("well-framed garbage must read as a frame: %v", err)
	}
	if _, err := parseWireMsg(p); !errors.Is(err, ErrDecode) {
		t.Errorf("garbage payload: err = %v, want ErrDecode", err)
	}

	// Truncation inside a frame is a transport fault, not stream corruption:
	// unexpected EOF, and NOT ErrDecode (the supervisor classifies it as a
	// process death).
	stream.Reset()
	binary.BigEndian.PutUint32(hdr[:], 1024)
	stream.Write(hdr[:])
	stream.WriteString("short")
	_, err = readRawFrame(&stream, &buf)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame: err = %v, want unexpected EOF", err)
	}
	if errors.Is(err, ErrDecode) {
		t.Error("truncated frame misclassified as stream corruption")
	}
}

// TestFrameRoundTrip checks the binary framing layer: request frames,
// per-seed response frames, hello/heartbeat, clean EOF at a boundary vs.
// truncation inside a frame — plus the JSON framing the store protocol
// still speaks.
func TestFrameRoundTrip(t *testing.T) {
	var fs frameScratch
	var stream bytes.Buffer
	stream.Write(fs.helloFrame())
	stream.Write(fs.heartbeatFrame())
	res := Result{Name: "r", Table: "t", Values: map[string]float64{"nan": math.NaN(), "v": 2.5}}
	stream.Write(fs.resultFrame([]byte("spec-a"), 7, 3, res))
	stream.Write(fs.errorFrame([]byte("spec-b"), -7, 4, "boom"))

	var buf []byte
	read := func() wireMsg {
		t.Helper()
		p, err := readRawFrame(&stream, &buf)
		if err != nil {
			t.Fatal(err)
		}
		m, err := parseWireMsg(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := read(); m.ftype != frameHello || m.version != protoVersion {
		t.Fatalf("hello = %+v", m)
	}
	if m := read(); m.ftype != frameHeartbeat {
		t.Fatalf("heartbeat = %+v", m)
	}
	m := read()
	if m.ftype != frameResult || string(m.spec) != "spec-a" || m.seed != 7 || m.epoch != 3 {
		t.Fatalf("result frame = %+v", m)
	}
	got, err := DecodeResult(m.result)
	if err != nil || got.Name != "r" || !math.IsNaN(got.Values["nan"]) || got.Values["v"] != 2.5 {
		t.Fatalf("embedded result = %+v / %v", got, err)
	}
	m = read()
	if m.ftype != frameError || string(m.spec) != "spec-b" || m.seed != -7 || m.epoch != 4 || string(m.errMsg) != "boom" {
		t.Fatalf("error frame = %+v", m)
	}
	if _, err := readRawFrame(&stream, &buf); err != io.EOF {
		t.Errorf("end of stream: %v, want io.EOF", err)
	}

	// Request frames: the chunk-granular coordinator→worker direction.
	seeds := []int64{1, -7, 1 << 40}
	full := append([]byte(nil), fs.requestFrame("spec-c", seeds, 9)...)
	req, err := parseWireRequest(full[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(req.spec) != "spec-c" || req.epoch != 9 || len(req.seeds) != 3 ||
		req.seeds[0] != 1 || req.seeds[1] != -7 || req.seeds[2] != 1<<40 {
		t.Fatalf("request = %+v", req)
	}
	for i := 1; i < len(full)-4; i++ {
		if _, err := parseWireRequest(full[4:4+i], nil); !errors.Is(err, ErrDecode) {
			t.Fatalf("truncated request %d: err = %v, want ErrDecode", i, err)
		}
	}

	// A stream that loses its tail mid-frame: unexpected EOF, not io.EOF.
	short := bytes.NewReader(full[:len(full)-2])
	if _, err := readRawFrame(short, &buf); err == nil || err == io.EOF {
		t.Errorf("truncated frame: %v, want unexpected-EOF error", err)
	}

	// The store protocol still frames JSON: round-trip one request.
	var jbuf bytes.Buffer
	want := storeRequest{Op: "get", Key: "a/b.json"}
	if err := writeFrame(&jbuf, want); err != nil {
		t.Fatal(err)
	}
	var gotReq storeRequest
	if err := readFrame(&jbuf, &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.Op != want.Op || gotReq.Key != want.Key {
		t.Errorf("JSON frame round trip = %+v, want %+v", gotReq, want)
	}
}

// newTestConnCore wraps a canned byte stream as a coordinator-side
// connection core, for driving recv against synthetic worker output.
func newTestConnCore(stream []byte) *connCore {
	return &connCore{
		br:       bufio.NewReader(bytes.NewReader(stream)),
		tag:      "test",
		stales:   new(atomic.Int64),
		sent:     new(atomic.Int64),
		recvd:    new(atomic.Int64),
		classify: func(error) failKind { return failExit },
		dec:      newResultDecoder(),
	}
}

// TestRecvHelloNegotiation pins the version handshake: a worker
// announcing a different protocol version is a decode fault (the
// supervisor kills and retries elsewhere, never misparses), as is any
// response arriving before the hello.
func TestRecvHelloNegotiation(t *testing.T) {
	var fs frameScratch
	res := Result{Name: "r", Values: map[string]float64{"v": 1}}

	// Healthy session: hello, heartbeat noise, then the response.
	var ok bytes.Buffer
	ok.Write(fs.helloFrame())
	ok.Write(fs.heartbeatFrame())
	ok.Write(fs.resultFrame([]byte("s"), 1, 10, res))
	c := newTestConnCore(ok.Bytes())
	got, kind, err := c.recv("s", 1, 10)
	if err != nil || kind != 0 || got.Values["v"] != 1 {
		t.Fatalf("healthy recv = %+v, %v, %v", got, kind, err)
	}

	// Version skew: ErrDecode, classified failDecode.
	bad := append([]byte(nil), fs.helloFrame()...)
	bad[len(bad)-1] = protoVersion + 1
	c = newTestConnCore(bad)
	if _, kind, err := c.recv("s", 1, 10); kind != failDecode || !errors.Is(err, ErrDecode) {
		t.Errorf("version skew: kind %v err %v, want failDecode/ErrDecode", kind, err)
	}

	// A response with no hello first: same fault class.
	c = newTestConnCore(append([]byte(nil), fs.resultFrame([]byte("s"), 1, 10, res)...))
	if _, kind, err := c.recv("s", 1, 10); kind != failDecode || !errors.Is(err, ErrDecode) {
		t.Errorf("response before hello: kind %v err %v, want failDecode/ErrDecode", kind, err)
	}
}

// TestRecvSkipsStaleFrames: frames whose (epoch, spec, seed) does not
// match the expected response are counted and skipped — the zombie-replay
// defense — and the live exchange still completes.
func TestRecvSkipsStaleFrames(t *testing.T) {
	var fs frameScratch
	res := Result{Name: "r", Values: map[string]float64{"v": 42}}
	var stream bytes.Buffer
	stream.Write(fs.helloFrame())
	stream.Write(fs.resultFrame([]byte("s"), 1, 9, res))  // stale epoch
	stream.Write(fs.errorFrame([]byte("s"), 2, 10, "x"))  // stale seed
	stream.Write(fs.resultFrame([]byte("t"), 1, 10, res)) // stale spec
	stream.Write(fs.resultFrame([]byte("s"), 1, 10, res)) // the live one
	c := newTestConnCore(stream.Bytes())
	got, kind, err := c.recv("s", 1, 10)
	if err != nil || kind != 0 || got.Values["v"] != 42 {
		t.Fatalf("recv = %+v, %v, %v", got, kind, err)
	}
	if n := c.stales.Load(); n != 3 {
		t.Errorf("stale frames counted = %d, want 3", n)
	}
}
