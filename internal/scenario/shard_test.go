package scenario

import (
	"bytes"
	"io"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

// TestServeWorkerProtocol drives the worker loop over in-memory pipes —
// no subprocess — checking the hello handshake, chunk-request framing
// with per-seed streamed responses, extra-spec precedence, unknown names
// and panic conversion.
func TestServeWorkerProtocol(t *testing.T) {
	extra := Spec{
		Name: "test-extra", Desc: "extra",
		Run: func(seed int64) Result {
			if seed == 99 {
				panic("boom")
			}
			return Result{Name: "extra", Table: "x", Values: map[string]float64{"v": float64(seed) * 2}}
		},
	}
	var in, out bytes.Buffer
	var fs frameScratch
	in.Write(fs.requestFrame("test-extra", []int64{4, 6}, 41)) // one chunk, two seeds
	in.Write(fs.requestFrame("test-shardable", []int64{13}, 42))
	in.Write(fs.requestFrame("test-no-such-spec", []int64{1}, 43))
	in.Write(fs.requestFrame("test-extra", []int64{99}, 44))
	if err := ServeWorker(&in, &out, extra); err != nil {
		t.Fatal(err)
	}

	var buf []byte
	read := func() wireMsg {
		t.Helper()
		p, err := readRawFrame(&out, &buf)
		if err != nil {
			t.Fatal(err)
		}
		m, err := parseWireMsg(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := read(); m.ftype != frameHello || m.version != protoVersion {
		t.Fatalf("first frame = %+v, want hello v%d", m, protoVersion)
	}
	readResult := func(spec string, seed, epoch int64) Result {
		t.Helper()
		m := read()
		if m.ftype != frameResult || string(m.spec) != spec || m.seed != seed || m.epoch != epoch {
			t.Fatalf("frame = %+v, want result for %s seed %d epoch %d", m, spec, seed, epoch)
		}
		res, err := DecodeResult(m.result)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := readResult("test-extra", 4, 41); res.Values["v"] != 8 {
		t.Errorf("extra spec seed 4: %+v", res)
	}
	if res := readResult("test-extra", 6, 41); res.Values["v"] != 12 {
		t.Errorf("extra spec seed 6 (same chunk): %+v", res)
	}
	if res := readResult("test-shardable", 13, 42); !math.IsNaN(res.Values["nan"]) {
		t.Errorf("registry spec seed 13: %+v", res)
	}
	if m := read(); m.ftype != frameError || !strings.Contains(string(m.errMsg), "test-no-such-spec") {
		t.Errorf("unknown spec frame = %+v", m)
	}
	if m := read(); m.ftype != frameError || !strings.Contains(string(m.errMsg), "boom") {
		t.Errorf("panic not converted to error frame: %+v", m)
	}
	if _, err := readRawFrame(&out, &buf); err != io.EOF {
		t.Errorf("worker wrote extra frames: %v", err)
	}
}

// shardForTest returns a Shard whose workers are this test binary serving
// ServeWorker (see TestMain), with restart pacing tightened so failure
// tests spend milliseconds, not the production backoff, between retries.
func shardForTest(workers int) *Shard {
	return &Shard{
		Workers: workers,
		Argv:    []string{os.Args[0], workerSentinel},
		Policy:  fastPolicy(),
	}
}

// fastPolicy is the production default with test-speed restart pacing.
func fastPolicy() FaultPolicy {
	p := DefaultFaultPolicy()
	p.ChunkTimeout = 30 * time.Second
	p.RestartBackoff = time.Millisecond
	p.MaxBackoff = 5 * time.Millisecond
	return p
}

// metricsEqualBits compares metric slices demanding bit-identical floats;
// reflect.DeepEqual would reject identical NaNs.
func metricsEqualBits(a, b []Metric) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].N != b[i].N ||
			math.Float64bits(a[i].Mean) != math.Float64bits(b[i].Mean) ||
			math.Float64bits(a[i].CI95) != math.Float64bits(b[i].CI95) ||
			math.Float64bits(a[i].Min) != math.Float64bits(b[i].Min) ||
			math.Float64bits(a[i].Max) != math.Float64bits(b[i].Max) {
			return false
		}
	}
	return true
}

// TestShardMatchesLocal is the scenario-level equivalence check on a
// registered synthetic spec: the subprocess backend must reproduce the
// Local backend bit-for-bit, per seed and in aggregate, including the
// NaN/Inf seeds the codec exists for.
func TestShardMatchesLocal(t *testing.T) {
	spec, ok := Lookup("test-shardable")
	if !ok {
		t.Fatal("test-shardable not registered")
	}
	seeds := Seeds(10, 8) // includes 13, the NaN seed

	local := mustRun(t, &Runner{Parallel: 4, KeepPerSeed: true}, []Spec{spec}, seeds)
	sh := shardForTest(2)
	defer sh.Close()
	sharded := mustRun(t, &Runner{KeepPerSeed: true, Executor: sh}, []Spec{spec}, seeds)

	a, b := local[0], sharded[0]
	if !metricsEqualBits(a.Metrics, b.Metrics) {
		t.Errorf("metrics diverged:\nlocal %+v\nshard %+v", a.Metrics, b.Metrics)
	}
	for i := range a.PerSeed {
		pa, pb := a.PerSeed[i], b.PerSeed[i]
		if pa.Name != pb.Name || pa.Table != pb.Table {
			t.Errorf("seed %d: name/table diverged", seeds[i])
		}
		if len(pa.Values) != len(pb.Values) {
			t.Fatalf("seed %d: value sets differ", seeds[i])
		}
		for k := range pa.Values {
			if math.Float64bits(pa.Values[k]) != math.Float64bits(pb.Values[k]) {
				t.Errorf("seed %d %s: %#x vs %#x", seeds[i], k,
					math.Float64bits(pa.Values[k]), math.Float64bits(pb.Values[k]))
			}
		}
	}
	if a.Table() != b.Table() {
		t.Error("rendered aggregate tables not byte-identical")
	}
}

// TestShardPoolSharedAcrossSpecs runs several specs concurrently through
// one 2-worker Shard (the Runner fans specs out) — exercising the shared
// job channel under contention.
func TestShardPoolSharedAcrossSpecs(t *testing.T) {
	spec, _ := Lookup("test-shardable")
	// The same registered spec under several concurrent Run calls.
	specs := []Spec{spec, spec, spec}
	sh := shardForTest(2)
	defer sh.Close()
	aggs := mustRun(t, &Runner{Executor: sh}, specs, Seeds(1, 6))
	for i, a := range aggs {
		if len(a.Metrics) == 0 || a.Metrics[len(a.Metrics)-1].N != 6 {
			t.Errorf("spec %d aggregate incomplete: %+v", i, a.Metrics)
		}
	}
}

func TestShardUnknownSpecFails(t *testing.T) {
	sh := shardForTest(1)
	defer sh.Close()
	spec := Spec{Name: "test-not-registered-anywhere", Desc: "x",
		Run: func(int64) Result { return Result{} }}
	_, err := (&Runner{Executor: sh}).Run([]Spec{spec}, []int64{1})
	if err == nil || !strings.Contains(err.Error(), "test-not-registered-anywhere") {
		t.Errorf("unknown spec in worker should fail loudly, got %v", err)
	}
}

// noDegradePolicy exhausts quickly and forbids the in-process fallback, so
// unrecoverable-fleet tests assert the error path rather than the (default)
// graceful degradation.
func noDegradePolicy() FaultPolicy {
	p := fastPolicy()
	p.MaxRetries = 1
	p.DegradeToLocal = false
	return p
}

func TestShardWorkerDeathFailsWithoutDegrade(t *testing.T) {
	sh := &Shard{Workers: 2, Argv: []string{os.Args[0], workerExitSentinel}, Policy: noDegradePolicy()}
	defer sh.Close()
	spec, _ := Lookup("test-shardable")
	_, err := (&Runner{Executor: sh}).Run([]Spec{spec}, Seeds(1, 4))
	if err == nil {
		t.Fatal("dead workers with degradation disabled should fail the run")
	}
	if !strings.Contains(err.Error(), "degrade-to-local disabled") {
		t.Errorf("error should name the exhausted path, got %v", err)
	}
}

// TestShardWorkerDeathDegradesToLocal is the graceful-degradation
// guarantee: a fleet whose every process dies instantly still completes
// the run bit-identically via quarantined in-process execution.
func TestShardWorkerDeathDegradesToLocal(t *testing.T) {
	sh := &Shard{Workers: 2, Argv: []string{os.Args[0], workerExitSentinel}, Policy: fastPolicy()}
	defer sh.Close()
	spec, _ := Lookup("test-shardable")
	seeds := Seeds(10, 6) // includes 13, the NaN seed

	local := mustRun(t, &Runner{Parallel: 4, KeepPerSeed: true}, []Spec{spec}, seeds)
	degraded := mustRun(t, &Runner{KeepPerSeed: true, Executor: sh}, []Spec{spec}, seeds)
	if !metricsEqualBits(local[0].Metrics, degraded[0].Metrics) {
		t.Errorf("degraded metrics diverged:\nlocal %+v\ndegraded %+v", local[0].Metrics, degraded[0].Metrics)
	}

	h := sh.Health()
	if h.DegradedSeeds != int64(len(seeds)) {
		t.Errorf("DegradedSeeds = %d, want %d (every seed quarantined)", h.DegradedSeeds, len(seeds))
	}
	if h.Quarantined == 0 || h.Retries == 0 || h.Failures() == 0 {
		t.Errorf("health should record the failure storm: %s", h)
	}
}

func TestShardBadBinaryFailsWithoutDegrade(t *testing.T) {
	sh := &Shard{Workers: 1, Argv: []string{"/no/such/binary/exists"}, Policy: noDegradePolicy()}
	defer sh.Close()
	spec, _ := Lookup("test-shardable")
	if _, err := (&Runner{Executor: sh}).Run([]Spec{spec}, []int64{1}); err == nil {
		t.Fatal("unstartable worker binary with degradation disabled should fail the run")
	}
}

func TestShardBadBinaryDegradesToLocal(t *testing.T) {
	sh := &Shard{Workers: 1, Argv: []string{"/no/such/binary/exists"}, Policy: fastPolicy()}
	defer sh.Close()
	spec, _ := Lookup("test-shardable")
	aggs := mustRun(t, &Runner{Executor: sh}, []Spec{spec}, Seeds(1, 3))
	if len(aggs) != 1 || aggs[0].Metrics[len(aggs[0].Metrics)-1].N != 3 {
		t.Errorf("degraded run incomplete: %+v", aggs)
	}
	if h := sh.Health(); h.DegradedSeeds != 3 {
		t.Errorf("DegradedSeeds = %d, want 3", h.DegradedSeeds)
	}
}
