package scenario

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
)

// ErrDecode marks stream-corruption failures: an oversized frame header,
// a frame whose payload is not a protocol message, a protocol-version
// mismatch in a worker hello, or a Result whose encoding does not parse.
// The shard supervisor classifies lease failures wrapping ErrDecode as
// corrupt-frame faults (the worker is killed and the chunk retried)
// rather than process deaths. It is never returned for plain transport
// errors (EOF, broken pipe).
var ErrDecode = errors.New("decode error")

// The result codec. Results cross two boundaries that must not change a
// single bit: the shard worker protocol (subprocess stdout / TCP → parent)
// and the on-disk result cache (cold write → warm read). The wire form is
// a compact binary encoding: length-delimited name/table strings and
// name-sorted values carried as raw math.Float64bits — so bit-exactness
// (NaN, the infinities, signed zero, denormals) is trivially true, with no
// hex round trip and no fmt in the hot path. Encoding the same Result
// twice yields identical bytes, and decode(encode(r)) reproduces every
// float bit-for-bit. The only normalization is that an empty Values map
// decodes as nil.
//
// DecodeResult also keeps reading the legacy JSON form (PRs 4–8 cache
// entries: a wireResult document with hex Float64bits), sniffed on the
// first byte — binary encodings start with resultMagic, JSON with '{' —
// so a cache directory written by an older build's keyspace stays
// readable and a mixed fleet's shared store never goes dark.

// Binary Result layout (after the two-byte magic/version header): each
// string is uvarint length + bytes, each value is its uvarint-length name
// followed by 8 bytes of big-endian Float64bits, values name-sorted:
//
//	[resultMagic][resultVersion]
//	[name][table][uvarint count]([valueName][8-byte bits])*
const (
	resultMagic   = 0xF5 // never '{' (0x7b): the legacy-JSON sniff byte
	resultVersion = 1
)

// protoVersion is the worker wire-protocol version. A worker announces it
// in the hello frame that opens every session (subprocess and TCP alike);
// the coordinator rejects a mismatch as a decode fault instead of
// misparsing frames from an incompatible build.
const protoVersion = 1

// Worker-protocol frame types: the first payload byte of every binary
// frame. Requests are chunk-granular (one frame carries a whole seed
// chunk); the worker streams one result or error frame per seed back.
const (
	frameHello     = 0x01 // worker → coordinator: [type][protoVersion]
	frameRequest   = 0x02 // coordinator → worker: [type][epoch][spec][uvarint n]([varint seed])*
	frameResult    = 0x03 // worker → coordinator: [type][epoch][spec][varint seed][binary Result]
	frameError     = 0x04 // worker → coordinator: [type][epoch][spec][varint seed][msg]
	frameHeartbeat = 0x05 // worker → coordinator: [type] — liveness only
)

// resultEncoder appends binary Result encodings, reusing its name-sort
// scratch so steady-state encoding does not allocate.
type resultEncoder struct {
	names []string
}

// appendResult appends the binary encoding of r to dst and returns the
// extended slice.
func (e *resultEncoder) appendResult(dst []byte, r Result) []byte {
	dst = append(dst, resultMagic, resultVersion)
	dst = appendLenBytes(dst, r.Name)
	dst = appendLenBytes(dst, r.Table)
	e.names = e.names[:0]
	for k := range r.Values {
		e.names = append(e.names, k)
	}
	slices.Sort(e.names)
	dst = binary.AppendUvarint(dst, uint64(len(e.names)))
	for _, k := range e.names {
		dst = appendLenBytes(dst, k)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Values[k]))
	}
	return dst
}

// maxIntern caps a decoder's string-intern table. Metric and spec names
// repeat across every seed of a sweep, so interning makes steady-state
// decoding allocation-free; the cap keeps a hostile or pathological
// stream from growing the table without bound.
const maxIntern = 4096

// resultDecoder decodes binary Results. A zero-value decoder works and
// allocates its strings fresh; newResultDecoder returns one with a string
// intern table, the per-connection form whose steady-state decodes reuse
// every repeated name.
type resultDecoder struct {
	tab map[string]string
}

func newResultDecoder() *resultDecoder {
	return &resultDecoder{tab: make(map[string]string, 64)}
}

// intern returns b as a string, reusing a previously seen allocation when
// the decoder interns. The map lookup with a []byte-to-string conversion
// key is allocation-free; only first sightings pay.
func (d *resultDecoder) intern(b []byte) string {
	if d.tab == nil {
		return string(b)
	}
	if s, ok := d.tab[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.tab) < maxIntern {
		d.tab[s] = s
	}
	return s
}

// decode parses a binary Result encoding into res. With reuse set, the
// existing res.Values map is cleared and refilled and the table string is
// interned too — the zero-allocation steady state the codec benchmarks
// pin; callers own the aliasing. Without reuse, res gets a fresh map and
// an owned table string (names and keys still intern: they are immutable
// and shared by design). Every malformed input fails with ErrDecode and
// leaves *res zero.
func (d *resultDecoder) decode(data []byte, res *Result, reuse bool) error {
	fail := func(msg string) error {
		*res = Result{}
		return fmt.Errorf("result codec: %w: %s", ErrDecode, msg)
	}
	if len(data) < 2 || data[0] != resultMagic {
		return fail("not a binary result encoding")
	}
	if data[1] != resultVersion {
		return fail(fmt.Sprintf("binary result version %d, want %d", data[1], resultVersion))
	}
	b := data[2:]
	name, b, ok := getLenBytes(b)
	if !ok {
		return fail("truncated name")
	}
	table, b, ok := getLenBytes(b)
	if !ok {
		return fail("truncated table")
	}
	count, b, ok := getUvarint(b)
	if !ok || count > uint64(len(b)) {
		// Every value costs ≥ 9 bytes, so count can never exceed the
		// remaining payload — reject before allocating a bogus-sized map.
		return fail("bad value count")
	}
	out := Result{Name: d.intern(name)}
	if reuse {
		out.Table = d.intern(table)
		out.Values = res.Values
		if out.Values == nil {
			out.Values = make(map[string]float64, count)
		}
		clear(out.Values)
	} else {
		out.Table = string(table)
		if count > 0 {
			out.Values = make(map[string]float64, count)
		}
	}
	for i := uint64(0); i < count; i++ {
		var key []byte
		key, b, ok = getLenBytes(b)
		if !ok || len(b) < 8 {
			return fail("truncated value")
		}
		out.Values[d.intern(key)] = math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
		b = b[8:]
	}
	if len(b) != 0 {
		return fail("trailing bytes after values")
	}
	*res = out
	return nil
}

// EncodeResult serializes a Result deterministically: identical Results
// produce identical bytes.
func EncodeResult(r Result) ([]byte, error) {
	var enc resultEncoder
	return enc.appendResult(nil, r), nil
}

// DecodeResult reverses EncodeResult bit-exactly. It also accepts the
// legacy JSON wire form, so cache entries written by pre-binary builds
// keep warm-hitting.
func DecodeResult(data []byte) (Result, error) {
	if len(data) > 0 && data[0] == resultMagic {
		var d resultDecoder
		var res Result
		if err := d.decode(data, &res, false); err != nil {
			return Result{}, err
		}
		return res, nil
	}
	return decodeResultJSON(data)
}

// wireResult is the legacy JSON codec form (the wire and cache format
// through PR 8), kept so DecodeResult reads old cache entries.
type wireResult struct {
	Name   string      `json:"name"`
	Table  string      `json:"table"`
	Values []wireValue `json:"values,omitempty"` // name-sorted
}

// wireValue is one legacy key figure: Bits (hex of math.Float64bits) is
// the authoritative value; Human is informational.
type wireValue struct {
	Name  string `json:"name"`
	Bits  string `json:"bits"`
	Human string `json:"human"`
}

func decodeResultJSON(data []byte) (Result, error) {
	var wr wireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return Result{}, fmt.Errorf("result codec: %w: %v", ErrDecode, err)
	}
	res := Result{Name: wr.Name, Table: wr.Table}
	if len(wr.Values) > 0 {
		res.Values = make(map[string]float64, len(wr.Values))
	}
	for _, v := range wr.Values {
		bits, err := strconv.ParseUint(v.Bits, 16, 64)
		if err != nil {
			return Result{}, fmt.Errorf("result codec: %w: value %q has bad bits %q: %v", ErrDecode, v.Name, v.Bits, err)
		}
		res.Values[v.Name] = math.Float64frombits(bits)
	}
	return res, nil
}

// appendLenBytes appends a length-delimited string: uvarint length, then
// the bytes.
func appendLenBytes(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// getUvarint consumes one uvarint from b.
func getUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// getVarint consumes one signed varint from b.
func getVarint(b []byte) (int64, []byte, bool) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// getLenBytes consumes one length-delimited byte string from b. The
// returned slice aliases b.
func getLenBytes(b []byte) ([]byte, []byte, bool) {
	n, b, ok := getUvarint(b)
	if !ok || n > uint64(len(b)) {
		return nil, nil, false
	}
	return b[:n], b[n:], true
}

// maxFrame bounds a protocol frame. A Result is a table string plus a few
// dozen floats — far below this; a larger header means the stream is
// corrupt (e.g. a worker wrote something other than protocol frames to
// stdout), and failing fast beats allocating garbage.
const maxFrame = 64 << 20

// frameScratch assembles binary protocol frames: the 4-byte big-endian
// length header and the payload are built in one reusable buffer, so a
// frame is always emitted with a single Write (no header/payload segment
// split, no torn-frame window between two writes) and steady-state
// encoding never allocates. Each writer (a connection's send path, a
// worker loop, a heartbeat goroutine) owns its own scratch.
type frameScratch struct {
	buf []byte
	enc resultEncoder
}

// begin starts a frame of the given type; finish patches the length
// header and returns the complete frame, valid until the next begin.
func (f *frameScratch) begin(ftype byte) {
	f.buf = append(f.buf[:0], 0, 0, 0, 0, ftype)
}

func (f *frameScratch) finish() []byte {
	binary.BigEndian.PutUint32(f.buf[:4], uint32(len(f.buf)-4))
	return f.buf
}

// helloFrame announces the wire-protocol version — the first frame of
// every worker session, on both transports.
func (f *frameScratch) helloFrame() []byte {
	f.begin(frameHello)
	f.buf = append(f.buf, protoVersion)
	return f.finish()
}

func (f *frameScratch) heartbeatFrame() []byte {
	f.begin(frameHeartbeat)
	return f.finish()
}

// requestFrame is one chunk-granular work order: every seed of the lease
// in a single frame, so a lease costs one coordinator→worker round trip
// however many seeds it carries.
func (f *frameScratch) requestFrame(spec string, seeds []int64, epoch int64) []byte {
	f.begin(frameRequest)
	f.buf = binary.AppendVarint(f.buf, epoch)
	f.buf = appendLenBytes(f.buf, spec)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(seeds)))
	for _, s := range seeds {
		f.buf = binary.AppendVarint(f.buf, s)
	}
	return f.finish()
}

// respHeader appends the (epoch, spec, seed) identity every response
// frame echoes for stale-frame matching.
func (f *frameScratch) respHeader(ftype byte, spec []byte, seed, epoch int64) {
	f.begin(ftype)
	f.buf = binary.AppendVarint(f.buf, epoch)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(spec)))
	f.buf = append(f.buf, spec...)
	f.buf = binary.AppendVarint(f.buf, seed)
}

// resultFrame carries one seed's Result, encoded directly into the frame
// buffer — no intermediate Result byte slice.
func (f *frameScratch) resultFrame(spec []byte, seed, epoch int64, res Result) []byte {
	f.respHeader(frameResult, spec, seed, epoch)
	f.buf = f.enc.appendResult(f.buf, res)
	return f.finish()
}

func (f *frameScratch) errorFrame(spec []byte, seed, epoch int64, msg string) []byte {
	f.respHeader(frameError, spec, seed, epoch)
	f.buf = appendLenBytes(f.buf, msg)
	return f.finish()
}

// readRawFrame reads one length-prefixed frame into *buf (grown on
// demand, reused across calls) and returns the payload, which aliases
// *buf until the next call. A clean EOF at a frame boundary is io.EOF;
// EOF inside a frame is io.ErrUnexpectedEOF; an oversized header is
// ErrDecode.
func readRawFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: protocol frame of %d bytes exceeds the %d-byte limit (corrupt stream?)", ErrDecode, n, maxFrame)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}

// wireMsg is one parsed worker→coordinator frame. Byte-slice fields alias
// the frame buffer and are valid until the next read.
type wireMsg struct {
	ftype   byte
	version byte   // frameHello
	epoch   int64  // response frames
	spec    []byte // response frames
	seed    int64  // response frames
	result  []byte // frameResult: binary Result encoding
	errMsg  []byte // frameError
}

// parseWireMsg decodes a worker→coordinator frame payload. Every
// malformed payload — unknown type, truncation, trailing bytes — fails
// with ErrDecode (the fuzz target pins the EOF-or-ErrDecode totality of
// the whole read path).
func parseWireMsg(p []byte) (wireMsg, error) {
	fail := func(msg string) (wireMsg, error) {
		return wireMsg{}, fmt.Errorf("%w: frame payload: %s", ErrDecode, msg)
	}
	if len(p) == 0 {
		return fail("empty frame")
	}
	m := wireMsg{ftype: p[0]}
	b := p[1:]
	switch m.ftype {
	case frameHello:
		if len(b) != 1 {
			return fail("malformed hello")
		}
		m.version = b[0]
		return m, nil
	case frameHeartbeat:
		if len(b) != 0 {
			return fail("malformed heartbeat")
		}
		return m, nil
	case frameResult, frameError:
		var ok bool
		if m.epoch, b, ok = getVarint(b); !ok {
			return fail("truncated epoch")
		}
		if m.spec, b, ok = getLenBytes(b); !ok {
			return fail("truncated spec")
		}
		if m.seed, b, ok = getVarint(b); !ok {
			return fail("truncated seed")
		}
		if m.ftype == frameResult {
			if len(b) == 0 {
				return fail("empty result")
			}
			m.result = b
			return m, nil
		}
		if m.errMsg, b, ok = getLenBytes(b); !ok || len(b) != 0 {
			return fail("malformed error message")
		}
		return m, nil
	default:
		return fail(fmt.Sprintf("unknown frame type 0x%02x", m.ftype))
	}
}

// wireRequest is one parsed coordinator→worker chunk request. spec
// aliases the frame buffer; seeds alias the caller's scratch.
type wireRequest struct {
	epoch int64
	spec  []byte
	seeds []int64
}

// parseWireRequest decodes a chunk request payload, appending the seeds
// to the scratch slice (pass a reused seeds[:0]).
func parseWireRequest(p []byte, scratch []int64) (wireRequest, error) {
	fail := func(msg string) (wireRequest, error) {
		return wireRequest{}, fmt.Errorf("%w: request frame: %s", ErrDecode, msg)
	}
	if len(p) == 0 || p[0] != frameRequest {
		return fail("not a request frame")
	}
	var req wireRequest
	b := p[1:]
	var ok bool
	if req.epoch, b, ok = getVarint(b); !ok {
		return fail("truncated epoch")
	}
	if req.spec, b, ok = getLenBytes(b); !ok {
		return fail("truncated spec")
	}
	count, b, ok := getUvarint(b)
	if !ok || count > uint64(len(b))+1 {
		// Every seed costs ≥ 1 byte (count may be 0): bound before growing
		// the scratch from a hostile header.
		return fail("bad seed count")
	}
	req.seeds = scratch
	for i := uint64(0); i < count; i++ {
		var s int64
		if s, b, ok = getVarint(b); !ok {
			return fail("truncated seed")
		}
		req.seeds = append(req.seeds, s)
	}
	if len(b) != 0 {
		return fail("trailing bytes after seeds")
	}
	return req, nil
}

// writeFrame emits v as one length-prefixed JSON frame — header and
// payload coalesced into a single Write. The JSON framing remains the
// result-store protocol (GET/PUT are rare, store-sized exchanges); the
// worker fabric speaks the binary frames above.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed JSON frame into v. A clean EOF at a
// frame boundary is returned as io.EOF; EOF inside a frame is
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader, v any) error {
	var buf []byte
	payload, err := readRawFrame(r, &buf)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: frame payload: %v", ErrDecode, err)
	}
	return nil
}
