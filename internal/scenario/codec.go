package scenario

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// ErrDecode marks stream-corruption failures: an oversized frame header,
// a frame whose payload is not the expected JSON, or a Result whose
// Float64bits hex does not parse. The shard supervisor classifies lease
// failures wrapping ErrDecode as corrupt-frame faults (the worker is
// killed and the chunk retried) rather than process deaths. It is never
// returned for plain transport errors (EOF, broken pipe).
var ErrDecode = errors.New("decode error")

// The result codec. Results cross two boundaries that must not change a
// single bit: the shard worker protocol (subprocess stdout → parent) and
// the on-disk result cache (cold write → warm read). Ad-hoc JSON of the
// Values map would be deterministic but lossy at the edges (NaN and ±Inf
// do not survive encoding/json at all), so the wire form is explicit:
// values are name-sorted and each float64 is carried as its exact bit
// pattern, with a human-readable rendering alongside for people reading
// cache files. Encoding the same Result twice yields identical bytes, and
// decode(encode(r)) reproduces every float bit-for-bit — including NaN,
// the infinities and signed zero. The only normalization is that an empty
// Values map decodes as nil.

// wireResult is the codec-stable form of a Result.
type wireResult struct {
	Name   string      `json:"name"`
	Table  string      `json:"table"`
	Values []wireValue `json:"values,omitempty"` // name-sorted
}

// wireValue is one key figure: Bits (hex of math.Float64bits) is the
// authoritative value; Human is informational.
type wireValue struct {
	Name  string `json:"name"`
	Bits  string `json:"bits"`
	Human string `json:"human"`
}

// EncodeResult serializes a Result deterministically: identical Results
// produce identical bytes.
func EncodeResult(r Result) ([]byte, error) {
	wr := wireResult{Name: r.Name, Table: r.Table}
	names := make([]string, 0, len(r.Values))
	for k := range r.Values {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := r.Values[k]
		wr.Values = append(wr.Values, wireValue{
			Name:  k,
			Bits:  fmt.Sprintf("%016x", math.Float64bits(v)),
			Human: strconv.FormatFloat(v, 'g', -1, 64),
		})
	}
	return json.Marshal(wr)
}

// DecodeResult reverses EncodeResult bit-exactly.
func DecodeResult(data []byte) (Result, error) {
	var wr wireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return Result{}, fmt.Errorf("result codec: %w: %v", ErrDecode, err)
	}
	res := Result{Name: wr.Name, Table: wr.Table}
	if len(wr.Values) > 0 {
		res.Values = make(map[string]float64, len(wr.Values))
	}
	for _, v := range wr.Values {
		bits, err := strconv.ParseUint(v.Bits, 16, 64)
		if err != nil {
			return Result{}, fmt.Errorf("result codec: %w: value %q has bad bits %q: %v", ErrDecode, v.Name, v.Bits, err)
		}
		res.Values[v.Name] = math.Float64frombits(bits)
	}
	return res, nil
}

// maxFrame bounds a protocol frame. A Result is a table string plus a few
// dozen floats — far below this; a larger header means the stream is
// corrupt (e.g. a worker wrote something other than protocol frames to
// stdout), and failing fast beats allocating garbage.
const maxFrame = 64 << 20

// writeFrame emits v as one length-prefixed JSON frame: a 4-byte big-endian
// payload length followed by the payload.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON frame into v. A clean EOF at a
// frame boundary is returned as io.EOF; EOF inside a frame is
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("%w: protocol frame of %d bytes exceeds the %d-byte limit (corrupt stream?)", ErrDecode, n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%w: frame payload: %v", ErrDecode, err)
	}
	return nil
}
