package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Metric is one aggregated key figure: the across-seed mean of a Values
// entry with the half-width of its 95% confidence interval and the
// observed range.
type Metric struct {
	Name     string
	Mean     float64
	CI95     float64
	Min, Max float64
	N        int
}

// AggResult is the multi-seed outcome of one experiment: the per-seed
// results in seed order plus the across-seed aggregate of every metric.
type AggResult struct {
	Spec    Spec
	Seeds   []int64
	PerSeed []Result // PerSeed[i] is the run with Seeds[i]
	Metrics []Metric // sorted by metric name
}

// Table renders the aggregate as a plain-text table in the same style as
// the single-seed experiment tables.
func (a AggResult) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("%s — %s (%d seeds, mean ± 95%% CI)", a.Spec.Name, a.Spec.Desc, len(a.Seeds)),
		"metric", "mean", "±95% CI", "min", "max")
	for _, m := range a.Metrics {
		t.AddRow(m.Name, fmt.Sprintf("%.6g", m.Mean), fmt.Sprintf("%.3g", m.CI95),
			fmt.Sprintf("%.6g", m.Min), fmt.Sprintf("%.6g", m.Max))
	}
	return t.String()
}

// Runner executes (experiment × seed) jobs on a bounded worker pool.
// Parallel is the pool size (values < 1 mean 1). Results are merged in
// (spec, seed) order no matter how workers interleave, so Parallel only
// affects wall-clock time, never output.
type Runner struct {
	Parallel int
}

// Seeds returns the canonical seed set used by the CLIs: n consecutive
// seeds starting at base.
func Seeds(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Run executes every spec with every seed and aggregates each experiment's
// metrics across seeds. The returned slice is ordered like specs; each
// AggResult's PerSeed is ordered like seeds.
func (r *Runner) Run(specs []Spec, seeds []int64) []AggResult {
	workers := r.Parallel
	if workers < 1 {
		workers = 1
	}

	type job struct{ si, ki int }
	jobs := make(chan job)
	perSeed := make([][]Result, len(specs))
	for i := range perSeed {
		perSeed[i] = make([]Result, len(seeds))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				perSeed[j.si][j.ki] = specs[j.si].Run(seeds[j.ki])
			}
		}()
	}
	for si := range specs {
		for ki := range seeds {
			jobs <- job{si, ki}
		}
	}
	close(jobs)
	wg.Wait()

	out := make([]AggResult, len(specs))
	for si, spec := range specs {
		out[si] = aggregate(spec, seeds, perSeed[si])
	}
	return out
}

// aggregate folds seed-ordered per-seed results into per-metric summaries.
// The metric set is the union across seeds (an experiment may emit a
// metric only in some regimes), iterated in sorted order so the output is
// deterministic.
func aggregate(spec Spec, seeds []int64, results []Result) AggResult {
	keys := map[string]bool{}
	for _, res := range results {
		for k := range res.Values {
			keys[k] = true
		}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)

	metrics := make([]Metric, 0, len(names))
	for _, name := range names {
		var s stats.Summary
		for _, res := range results {
			if v, ok := res.Values[name]; ok {
				s.Add(v)
			}
		}
		metrics = append(metrics, Metric{
			Name: name,
			Mean: s.Mean(),
			CI95: s.CI95(),
			Min:  s.Min(),
			Max:  s.Max(),
			N:    int(s.N()),
		})
	}
	return AggResult{
		Spec:    spec,
		Seeds:   append([]int64(nil), seeds...),
		PerSeed: results,
		Metrics: metrics,
	}
}
