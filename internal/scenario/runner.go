package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Metric is one aggregated key figure: the across-seed mean of a Values
// entry with the half-width of its 95% confidence interval and the
// observed range.
type Metric struct {
	Name     string
	Mean     float64
	CI95     float64
	Min, Max float64
	N        int
}

// AggResult is the multi-seed outcome of one experiment: the across-seed
// aggregate of every metric, plus the per-seed results when the Runner was
// asked to keep them.
type AggResult struct {
	Spec    Spec
	Seeds   []int64
	PerSeed []Result // seed-ordered; nil unless Runner.KeepPerSeed is set
	Metrics []Metric // sorted by metric name
}

// Table renders the aggregate as a plain-text table in the same style as
// the single-seed experiment tables.
func (a AggResult) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("%s — %s (%d seeds, mean ± 95%% CI)", a.Spec.Name, a.Spec.Desc, len(a.Seeds)),
		"metric", "mean", "±95% CI", "min", "max")
	for _, m := range a.Metrics {
		t.AddRow(m.Name, fmt.Sprintf("%.6g", m.Mean), fmt.Sprintf("%.3g", m.CI95),
			fmt.Sprintf("%.6g", m.Min), fmt.Sprintf("%.6g", m.Max))
	}
	return t.String()
}

// Runner drives an Executor over a (specs × seeds) job matrix and
// aggregates each experiment's metrics across seeds.
//
// Per-seed results are streamed into per-metric stats.Summary accumulators
// as the backend emits them — and every backend emits in seed order, so
// each metric's accumulator always folds seeds in order and the reported
// digits are bit-identical whatever the backend or pool size. Set
// KeepPerSeed to additionally retain the raw per-seed Results (the
// single-seed table/JSON frontends need the lone Result; aggregate-only
// callers should leave it off).
type Runner struct {
	Parallel    int
	KeepPerSeed bool
	Executor    Executor // nil means an in-process Local pool of size Parallel
}

// HealthReporter is implemented by executors that keep supervision
// counters (the Shard backend, whatever its transport).
type HealthReporter interface {
	Health() ShardHealth
}

// Health returns the supervision counters of the configured backend, or
// of the backend it decorates (a Cache over a Shard), when one reports
// them — the structured alternative to grepping the stderr health block.
func (r *Runner) Health() (ShardHealth, bool) {
	for e := r.Executor; e != nil; {
		switch x := e.(type) {
		case HealthReporter:
			return x.Health(), true
		case *Cache:
			e = x.Inner
		default:
			return ShardHealth{}, false
		}
	}
	return ShardHealth{}, false
}

// Seeds returns the canonical seed set used by the CLIs: n consecutive
// seeds starting at base.
func Seeds(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// specAcc accumulates one experiment's seed-ordered result stream.
type specAcc struct {
	sums    map[string]*stats.Summary
	perSeed []Result // only when KeepPerSeed
}

// fold streams one seed's values into the per-metric accumulators. Each
// metric's Add sequence is ordered by seed (executors emit in seed order),
// which is exactly the fold order a sequential run uses — the Welford
// state, and therefore every reported digit, is bit-identical.
func (a *specAcc) fold(res Result) {
	for k, v := range res.Values {
		s := a.sums[k]
		if s == nil {
			s = &stats.Summary{}
			a.sums[k] = s
		}
		s.Add(v)
	}
}

// Run executes every spec with every seed on the configured backend and
// aggregates each experiment's metrics across seeds. The returned slice is
// ordered like specs. Specs fan out concurrently (one backend Run call
// each); the backend's shared capacity limit governs how much actually
// runs at once.
func (r *Runner) Run(specs []Spec, seeds []int64) ([]AggResult, error) {
	exec := r.Executor
	if exec == nil {
		exec = &Local{Parallel: r.Parallel}
	}

	accs := make([]specAcc, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for si := range specs {
		accs[si] = specAcc{sums: make(map[string]*stats.Summary)}
		if r.KeepPerSeed {
			accs[si].perSeed = make([]Result, len(seeds))
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			a := &accs[si]
			errs[si] = exec.Run(specs[si], seeds, func(ki int, res Result) {
				if a.perSeed != nil {
					a.perSeed[ki] = res
				}
				a.fold(res)
			})
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", specs[si].Name, err)
		}
	}

	out := make([]AggResult, len(specs))
	for si, spec := range specs {
		out[si] = AggResult{
			Spec:    spec,
			Seeds:   append([]int64(nil), seeds...),
			PerSeed: accs[si].perSeed,
			Metrics: metrics(accs[si].sums),
		}
	}
	return out, nil
}

// metrics flattens the per-metric accumulators into name-sorted summaries.
// The metric set is the union across seeds (an experiment may emit a metric
// only in some regimes).
func metrics(sums map[string]*stats.Summary) []Metric {
	names := make([]string, 0, len(sums))
	for k := range sums {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]Metric, 0, len(names))
	for _, name := range names {
		s := sums[name]
		out = append(out, Metric{
			Name: name,
			Mean: s.Mean(),
			CI95: s.CI95(),
			Min:  s.Min(),
			Max:  s.Max(),
			N:    int(s.N()),
		})
	}
	return out
}
