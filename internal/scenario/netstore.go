package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The shared remote result store: cache.go's content-addressed entry
// space lifted onto TCP so a whole worker fleet fills one cache. The
// protocol is GET/PUT over the same length-prefixed frame codec the shard
// workers speak; keys are the same entryRel paths the local layout uses
// (code-version digest and all), so remote entries are exactly as
// collision-safe and staleness-safe as local ones, and a store directory
// is interchangeable with a cache directory.

// storeTimeout bounds one store operation end to end (dial, frame write,
// frame read). The store is an optimization: a slow store is an outage,
// and outages degrade to the local dir rather than stall the sweep.
const storeTimeout = 5 * time.Second

// storeRequest is one client→store operation.
type storeRequest struct {
	Op   string `json:"op"`             // "get" | "put"
	Key  string `json:"key"`            // entryRel-shaped relative path
	Data []byte `json:"data,omitempty"` // put: EncodeResult bytes
}

// storeResponse answers one operation. A get for an absent entry is
// Found=false with no Err — absence is a cache miss, not a failure.
type storeResponse struct {
	Found bool   `json:"found,omitempty"` // get: entry exists; Data carries it
	Data  []byte `json:"data,omitempty"`  // get: EncodeResult bytes
	Err   string `json:"err,omitempty"`   // per-request error (bad key, undecodable put, failed write)
}

// ServeStore serves the result-store protocol on ln, backed by dir (the
// same on-disk layout as a local Cache), until the listener closes. Every
// put is decoded and atomically re-encoded to disk, so a malicious or
// torn payload can never become a stored entry; every key is validated
// against path escapes.
func ServeStore(ln net.Listener, dir string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("store: accept: %w", err)
		}
		go serveStoreConn(conn, diskStore{root: dir})
	}
}

// ListenAndServeStore listens on addr and serves the result store — the
// body of the -serve-store flag.
func ListenAndServeStore(addr, dir string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fmt.Fprintf(os.Stderr, "store: serving %s on %s\n", dir, ln.Addr())
	return ServeStore(ln, dir)
}

func serveStoreConn(conn net.Conn, disk diskStore) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		var req storeRequest
		if err := readFrame(br, &req); err != nil {
			return
		}
		var resp storeResponse
		switch {
		case !validStoreKey(req.Key):
			resp.Err = fmt.Sprintf("bad key %q", req.Key)
		case req.Op == "get":
			if res, ok := disk.load(req.Key); ok {
				data, err := EncodeResult(res)
				if err == nil {
					resp.Found, resp.Data = true, data
				}
			}
		case req.Op == "put":
			res, err := DecodeResult(req.Data)
			if err == nil {
				err = disk.store(req.Key, res)
			}
			if err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// validStoreKey admits exactly the entryRel shape: a relative
// slash-separated path with no empty, ".", ".." or backslashed segments —
// so no request can read or write outside the store root.
func validStoreKey(key string) bool {
	if key == "" || path.IsAbs(key) || strings.Contains(key, "\\") {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// remoteStore is the client side: an entryStore over one lazily dialed,
// mutex-serialized connection. The first transport failure latches the
// store down for the rest of the process — counted as an outage — and
// every subsequent operation goes to the local fallback dir, so a store
// outage costs hits, never correctness and never a stalled sweep.
type remoteStore struct {
	addr     string
	fallback diskStore
	outages  *atomic.Int64

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	down bool
}

func (r *remoteStore) load(rel string) (Result, bool) {
	resp, ok := r.exchange(storeRequest{Op: "get", Key: rel})
	if !ok {
		return r.fallback.load(rel)
	}
	if !resp.Found {
		return Result{}, false // healthy store, genuine miss
	}
	res, err := DecodeResult(resp.Data)
	if err != nil {
		return Result{}, false // corrupt entry is a miss, mirroring diskStore
	}
	return res, true
}

func (r *remoteStore) store(rel string, res Result) error {
	data, err := EncodeResult(res)
	if err != nil {
		return err
	}
	resp, ok := r.exchange(storeRequest{Op: "put", Key: rel, Data: data})
	if !ok {
		return r.fallback.store(rel, res)
	}
	if resp.Err != "" {
		return fmt.Errorf("store: %s", resp.Err)
	}
	return nil
}

// exchange performs one store round trip; ok=false means the store is
// (now) down and the caller must use the fallback.
func (r *remoteStore) exchange(req storeRequest) (storeResponse, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return storeResponse{}, false
	}
	if r.conn == nil {
		conn, err := net.DialTimeout("tcp", r.addr, storeTimeout)
		if err != nil {
			r.fail(err)
			return storeResponse{}, false
		}
		r.conn, r.br = conn, bufio.NewReader(conn)
	}
	r.conn.SetDeadline(time.Now().Add(storeTimeout))
	if err := writeFrame(r.conn, req); err != nil {
		r.fail(err)
		return storeResponse{}, false
	}
	var resp storeResponse
	if err := readFrame(r.br, &resp); err != nil {
		r.fail(err)
		return storeResponse{}, false
	}
	return resp, true
}

// fail latches the store down after a transport error.
func (r *remoteStore) fail(err error) {
	r.down = true
	r.outages.Add(1)
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	fmt.Fprintf(os.Stderr, "scenario: result store %s unreachable, degrading to local cache dir: %v\n", r.addr, err)
}

func (r *remoteStore) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}
