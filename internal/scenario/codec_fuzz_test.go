package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzDecodeFrame fuzzes the codec layers every transport shares — the
// length-prefixed frame reader, the frame-payload parsers for both
// directions, and the binary Result codec — with the totality contract
// the supervisor depends on: any mutation of the byte stream yields
// ErrDecode (corruption, including a version-byte mismatch) or
// io.EOF/io.ErrUnexpectedEOF (truncation), a zero Result, and never a
// panic or a partially decoded value surfacing as data.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: the codec_test.go shapes — hostile floats, empty values,
	// framed streams, version skew, truncations, garbage, an oversized
	// header — plus a legacy JSON document for the back-compat path.
	hostile := Result{
		Name:  "hostile",
		Table: "t",
		Values: map[string]float64{
			"nan":     math.NaN(),
			"posinf":  math.Inf(1),
			"neginf":  math.Inf(-1),
			"negzero": math.Copysign(0, -1),
			"tiny":    5e-324,
		},
	}
	enc, err := EncodeResult(hostile)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	empty, _ := EncodeResult(Result{Name: "empty"})
	f.Add(empty)
	skew := append([]byte(nil), enc...)
	skew[1] = resultVersion + 1
	f.Add(skew)
	f.Add([]byte(`{"name":"legacy","table":"t","values":[{"name":"v","bits":"3ff0000000000000","human":"1"}]}`))

	var fs frameScratch
	resp := append([]byte(nil), fs.resultFrame([]byte("s"), 7, 3, hostile)...)
	f.Add(resp)
	stream := append(append([]byte(nil), fs.helloFrame()...), resp...)
	stream = append(stream, fs.heartbeatFrame()...)
	stream = append(stream, fs.errorFrame([]byte("s"), 8, 3, "boom")...)
	f.Add(stream)
	badHello := append([]byte(nil), fs.helloFrame()...)
	badHello[len(badHello)-1] = protoVersion + 1 // version-byte mismatch
	f.Add(badHello)
	f.Add(append([]byte(nil), fs.requestFrame("spec", []int64{1, -7, 1 << 40}, 5)...))
	f.Add(resp[:len(resp)-3])                        // truncated mid-payload
	f.Add(resp[:2])                                  // truncated mid-header
	f.Add([]byte("chaos! not a frame {{{"))          // garbage
	f.Add(append([]byte{0xff, 0xff, 0xff, 0xff}, 1)) // oversized header

	f.Fuzz(func(t *testing.T, data []byte) {
		// Result codec (binary + legacy JSON): total, loud, all-or-nothing.
		if res, err := DecodeResult(data); err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Errorf("DecodeResult error %v does not wrap ErrDecode", err)
			}
			if res.Name != "" || res.Table != "" || res.Values != nil {
				t.Errorf("DecodeResult leaked a partial Result on error: %+v", res)
			}
		}

		// Frame stream, response direction: drain frames until the stream
		// ends; every failure must be a known truncation/corruption class,
		// and any embedded Result payload must itself decode totally.
		r := bytes.NewReader(data)
		var buf []byte
		dec := newResultDecoder()
		for {
			payload, err := readRawFrame(r, &buf)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrDecode) {
					t.Errorf("readRawFrame error %v is neither EOF-family nor ErrDecode", err)
				}
				break
			}
			m, err := parseWireMsg(payload)
			if err != nil {
				if !errors.Is(err, ErrDecode) {
					t.Errorf("parseWireMsg error %v does not wrap ErrDecode", err)
				}
			} else if m.ftype == frameResult {
				var res Result
				if derr := dec.decode(m.result, &res, false); derr != nil {
					if !errors.Is(derr, ErrDecode) {
						t.Errorf("embedded Result error %v does not wrap ErrDecode", derr)
					}
					if res.Values != nil {
						t.Errorf("embedded Result leaked values on error")
					}
				}
			}
			// Request direction: the worker-side parser must be just as total.
			if _, err := parseWireRequest(payload, nil); err != nil && !errors.Is(err, ErrDecode) {
				t.Errorf("parseWireRequest error %v does not wrap ErrDecode", err)
			}
		}
	})
}

// FuzzResultRoundTrip is the codec round-trip property test: any Result —
// any names, any table, any float bit patterns, specials included —
// encodes to bytes that decode back bit-identically, through both the
// owned and the scratch-reuse decode paths.
func FuzzResultRoundTrip(f *testing.F) {
	f.Add("r", "table\n", "a", math.Float64bits(math.NaN()), "b", math.Float64bits(math.Inf(-1)))
	f.Add("", "", "negzero", uint64(0x8000000000000000), "posinf", math.Float64bits(math.Inf(1)))
	f.Add("µ", "┌─┐", "tiny", math.Float64bits(5e-324), "", uint64(0))
	f.Fuzz(func(t *testing.T, name, table, k1 string, bits1 uint64, k2 string, bits2 uint64) {
		in := Result{Name: name, Table: table, Values: map[string]float64{
			k1: math.Float64frombits(bits1),
			k2: math.Float64frombits(bits2),
		}}
		enc, err := EncodeResult(in)
		if err != nil {
			t.Fatal(err)
		}
		check := func(out Result, path string) {
			t.Helper()
			if out.Name != in.Name || out.Table != in.Table || len(out.Values) != len(in.Values) {
				t.Fatalf("%s: round trip changed shape: %+v vs %+v", path, out, in)
			}
			for k, want := range in.Values {
				if math.Float64bits(out.Values[k]) != math.Float64bits(want) {
					t.Errorf("%s: %q bits %#x, want %#x", path, k, math.Float64bits(out.Values[k]), math.Float64bits(want))
				}
			}
		}
		out, err := DecodeResult(enc)
		if err != nil {
			t.Fatal(err)
		}
		check(out, "owned")
		d := newResultDecoder()
		var reused Result
		for i := 0; i < 2; i++ { // twice: the second pass hits the warm intern/reuse path
			if err := d.decode(enc, &reused, true); err != nil {
				t.Fatal(err)
			}
			check(reused, "reuse")
		}
	})
}

// TestFuzzSeedHeaderGuard pins the oversized-header seed case outside the
// fuzzer: a 4 GiB header must fail as ErrDecode before any allocation.
func TestFuzzSeedHeaderGuard(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 0xffffffff)
	var buf []byte
	if _, err := readRawFrame(bytes.NewReader(hdr[:]), &buf); !errors.Is(err, ErrDecode) {
		t.Errorf("oversized header error = %v, want ErrDecode", err)
	}
}
