package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzDecodeFrame fuzzes the two codec layers every transport shares —
// the length-prefixed frame reader and the Result codec — with the
// totality contract the supervisor depends on: any mutation of the byte
// stream yields ErrDecode (corruption) or io.EOF/io.ErrUnexpectedEOF
// (truncation), a zero Result, and never a panic or a partially decoded
// value surfacing as data.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: the codec_test.go shapes — hostile floats, empty values,
	// framed streams, truncations, garbage, an oversized header.
	hostile := Result{
		Name:  "hostile",
		Table: "t",
		Values: map[string]float64{
			"nan":     math.NaN(),
			"posinf":  math.Inf(1),
			"neginf":  math.Inf(-1),
			"negzero": math.Copysign(0, -1),
			"tiny":    5e-324,
		},
	}
	enc, err := EncodeResult(hostile)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	empty, _ := EncodeResult(Result{Name: "empty"})
	f.Add(empty)

	frame := func(v any) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	resp := frame(workerResponse{Spec: "s", Seed: 7, Epoch: 3, Result: enc})
	f.Add(resp)
	f.Add(bytes.Join([][]byte{resp, frame(workerResponse{Heartbeat: true})}, nil))
	f.Add(resp[:len(resp)-3])                        // truncated mid-payload
	f.Add(resp[:2])                                  // truncated mid-header
	f.Add([]byte("chaos! not json {{{"))             // garbage
	f.Add(append([]byte{0xff, 0xff, 0xff, 0xff}, 1)) // oversized header

	f.Fuzz(func(t *testing.T, data []byte) {
		// Result codec: total, loud, and all-or-nothing.
		if res, err := DecodeResult(data); err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Errorf("DecodeResult error %v does not wrap ErrDecode", err)
			}
			if res.Name != "" || res.Table != "" || res.Values != nil {
				t.Errorf("DecodeResult leaked a partial Result on error: %+v", res)
			}
		}

		// Frame stream: drain frames until the stream ends; every failure
		// must be a known truncation/corruption class, and any embedded
		// Result payload must itself decode totally.
		r := bytes.NewReader(data)
		for {
			var resp workerResponse
			err := readFrame(r, &resp)
			if err == nil {
				if res, derr := DecodeResult(resp.Result); derr != nil {
					if !errors.Is(derr, ErrDecode) {
						t.Errorf("embedded Result error %v does not wrap ErrDecode", derr)
					}
					if res.Values != nil {
						t.Errorf("embedded Result leaked values on error")
					}
				}
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrDecode) {
				t.Errorf("readFrame error %v is neither EOF-family nor ErrDecode", err)
			}
			break
		}
	})
}

// TestFuzzSeedHeaderGuard pins the oversized-header seed case outside the
// fuzzer: a 4 GiB header must fail as ErrDecode before any allocation.
func TestFuzzSeedHeaderGuard(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 0xffffffff)
	var v workerResponse
	if err := readFrame(bytes.NewReader(hdr[:]), &v); !errors.Is(err, ErrDecode) {
		t.Errorf("oversized header error = %v, want ErrDecode", err)
	}
}
