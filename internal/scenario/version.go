package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"
	"sync"
)

// The code-version digest behind the result cache. A cached Result is only
// reusable while the code that produced it is byte-for-byte the code that
// would reproduce it, so the cache keys every entry under a digest of:
//
//   - the running executable's contents — the strongest signal: any code
//     change relinks the binary (Go builds are content-addressed, so an
//     unchanged tree keeps an identical binary across `go run`s);
//   - the module build info (path, version, vcs.revision/vcs.modified when
//     stamped) — a fallback signal for environments where the executable
//     cannot be read back;
//   - the registry fingerprint — names, descriptions, tags and params of
//     every registered spec, so catalogue edits invalidate even if the
//     binary hash is unavailable.
//
// The digest is computed once per process, at first use — after all
// init-time registration, before any test-local registration could skew it.

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion returns the hex digest identifying the running code.
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		h := sha256.New()
		if exe, err := os.Executable(); err == nil {
			if f, err := os.Open(exe); err == nil {
				io.Copy(h, f)
				f.Close()
			}
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprintf(h, "%s@%s\n", bi.Main.Path, bi.Main.Version)
			for _, set := range bi.Settings {
				if set.Key == "vcs.revision" || set.Key == "vcs.modified" {
					fmt.Fprintf(h, "%s=%s\n", set.Key, set.Value)
				}
			}
		}
		io.WriteString(h, registryFingerprint())
		codeVersion = hex.EncodeToString(h.Sum(nil))
	})
	return codeVersion
}

// registryFingerprint hashes the registered catalogue in registration
// order.
func registryFingerprint() string {
	h := sha256.New()
	for _, s := range All() {
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\n", s.Name, s.Desc, strings.Join(s.Tags, ","), s.Params)
	}
	return hex.EncodeToString(h.Sum(nil))
}
