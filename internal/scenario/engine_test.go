// Engine-level tests against the real experiment catalogue: the external
// test package imports internal/exp for its registration side effect, the
// same way the frontends do.
package scenario_test

import (
	"reflect"
	"testing"

	_ "repro/internal/exp" // register the experiment catalogue
	"repro/internal/scenario"
)

func TestRealCatalogueRegistered(t *testing.T) {
	specs := scenario.All()
	if len(specs) < 20 {
		t.Fatalf("registry has %d specs, want ≥ 20 (figs + E3..E17 + ablations)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Desc == "" || !s.Runnable() {
			t.Errorf("malformed spec %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
	}
	if tags := scenario.Tags(); len(tags) < 4 {
		t.Errorf("tag union %v suspiciously small", tags)
	}
}

func TestRealExperimentDeterministicAcrossParallelism(t *testing.T) {
	// A real simulation experiment (not a synthetic stub) must aggregate
	// byte-identically whatever the worker-pool size.
	spec, ok := scenario.Lookup("e17")
	if !ok {
		t.Fatal("e17 not registered")
	}
	seeds := scenario.Seeds(1, 4)
	seq, err := (&scenario.Runner{Parallel: 1}).Run([]scenario.Spec{spec}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&scenario.Runner{Parallel: 8}).Run([]scenario.Spec{spec}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq[0].Metrics, par[0].Metrics) {
		t.Errorf("e17 metrics differ between parallel 1 and 8:\n%v\n%v",
			seq[0].Metrics, par[0].Metrics)
	}
	if seq[0].Table() != par[0].Table() {
		t.Error("rendered aggregate table not byte-identical")
	}
	if len(seq[0].Metrics) == 0 {
		t.Error("e17 aggregate has no metrics")
	}
}
