// Package proxy implements the application-level proxy of the Hotspot
// architecture: client registration (the paper: "when a new client enters
// the Hotspot environment it registers via an application level proxy"),
// proxy-based content adaptation (dropping the video layer and keeping
// audio in adverse conditions) and the load-partitioning decision model
// (execute work locally or remotely depending on energy).
package proxy

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
)

// Registration is a client's record at the proxy.
type Registration struct {
	ClientID   int
	RegisterAt sim.Time
	// QoSRateBps is the client's declared stream rate.
	QoSRateBps float64
	// BatteryLevel is the last reported battery fraction.
	BatteryLevel float64
}

// Registrar tracks clients present in the Hotspot environment.
type Registrar struct {
	sim     *sim.Simulator
	clients map[int]*Registration
}

// NewRegistrar creates an empty registrar.
func NewRegistrar(s *sim.Simulator) *Registrar {
	return &Registrar{sim: s, clients: make(map[int]*Registration)}
}

// Register admits a client; re-registration updates the record.
func (r *Registrar) Register(id int, qosRateBps, batteryLevel float64) *Registration {
	if qosRateBps < 0 || batteryLevel < 0 || batteryLevel > 1 {
		panic(fmt.Sprintf("proxy: invalid registration id=%d rate=%g battery=%g",
			id, qosRateBps, batteryLevel))
	}
	reg := &Registration{
		ClientID:     id,
		RegisterAt:   r.sim.Now(),
		QoSRateBps:   qosRateBps,
		BatteryLevel: batteryLevel,
	}
	r.clients[id] = reg
	return reg
}

// Deregister removes a client.
func (r *Registrar) Deregister(id int) { delete(r.clients, id) }

// Lookup returns a client's registration, or nil.
func (r *Registrar) Lookup(id int) *Registration { return r.clients[id] }

// Count returns the number of registered clients.
func (r *Registrar) Count() int { return len(r.clients) }

// UpdateBattery refreshes a client's reported battery level.
func (r *Registrar) UpdateBattery(id int, level float64) {
	if reg := r.clients[id]; reg != nil {
		reg.BatteryLevel = level
	}
}

// AdaptDecision is the content adapter's output.
type AdaptDecision struct {
	DeliverVideo bool
	Reason       string
}

// ContentAdapter drops a stream's enhancement (video) layer when the link is
// in adverse condition or the client's battery is low — exactly the simple
// proxy adaptation the paper describes.
type ContentAdapter struct {
	// BatteryFloor is the level below which video is dropped.
	BatteryFloor float64
}

// NewContentAdapter creates an adapter with the given battery floor.
func NewContentAdapter(batteryFloor float64) *ContentAdapter {
	if batteryFloor < 0 || batteryFloor > 1 {
		panic(fmt.Sprintf("proxy: battery floor %g outside [0,1]", batteryFloor))
	}
	return &ContentAdapter{BatteryFloor: batteryFloor}
}

// Decide returns whether the video layer should be delivered given the
// link quality and the client's battery level.
func (a *ContentAdapter) Decide(q channel.Quality, batteryLevel float64) AdaptDecision {
	switch {
	case q == channel.QualityUnusable:
		return AdaptDecision{DeliverVideo: false, Reason: "link unusable: audio only"}
	case q == channel.QualityDegraded:
		return AdaptDecision{DeliverVideo: false, Reason: "link degraded: audio only"}
	case batteryLevel < a.BatteryFloor:
		return AdaptDecision{DeliverVideo: false, Reason: "battery low: audio only"}
	default:
		return AdaptDecision{DeliverVideo: true, Reason: "conditions good: full stream"}
	}
}

// Task describes a unit of client work eligible for load partitioning.
type Task struct {
	// LocalComputeJ is the energy of executing locally.
	LocalComputeJ float64
	// InputBytes and OutputBytes must cross the network if offloaded.
	InputBytes, OutputBytes int
}

// PartitionDecision is the load partitioner's output.
type PartitionDecision struct {
	Offload  bool
	LocalJ   float64
	OffloadJ float64
	SavingJ  float64 // positive when the chosen option saves energy
}

// LoadPartitioner decides where to run a task: the paper's "load
// partitioning executes portions of mobile's software on more than one
// device depending on energy and performance needs". The model charges the
// radio's transfer energy per byte against the local compute energy.
type LoadPartitioner struct {
	// TxJPerByte and RxJPerByte are the client radio's marginal transfer
	// costs (airtime × power / bytes at the effective goodput).
	TxJPerByte, RxJPerByte float64
	// RemoteLatencyJ is the fixed radio cost of an offload round trip
	// (wake-up, association, idle waiting).
	RemoteLatencyJ float64
}

// NewLoadPartitioner derives marginal costs from a goodput and radio powers.
func NewLoadPartitioner(goodputBps, txPowerW, rxPowerW, fixedJ float64) *LoadPartitioner {
	if goodputBps <= 0 {
		panic("proxy: goodput must be positive")
	}
	perByte := 8.0 / goodputBps // seconds per byte
	return &LoadPartitioner{
		TxJPerByte:     perByte * txPowerW,
		RxJPerByte:     perByte * rxPowerW,
		RemoteLatencyJ: fixedJ,
	}
}

// Decide compares local and offloaded energy for the task.
func (l *LoadPartitioner) Decide(t Task) PartitionDecision {
	offload := float64(t.InputBytes)*l.TxJPerByte +
		float64(t.OutputBytes)*l.RxJPerByte + l.RemoteLatencyJ
	d := PartitionDecision{LocalJ: t.LocalComputeJ, OffloadJ: offload}
	if offload < t.LocalComputeJ {
		d.Offload = true
		d.SavingJ = t.LocalComputeJ - offload
	} else {
		d.SavingJ = offload - t.LocalComputeJ
	}
	return d
}

// BreakevenBytes returns the transfer size at which offloading a task with
// the given local cost stops paying (assuming all bytes are input).
func (l *LoadPartitioner) BreakevenBytes(localJ float64) int {
	if l.TxJPerByte <= 0 {
		return 0
	}
	b := (localJ - l.RemoteLatencyJ) / l.TxJPerByte
	if b < 0 {
		return 0
	}
	return int(b)
}
