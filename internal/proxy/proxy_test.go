package proxy

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

func TestRegistrarLifecycle(t *testing.T) {
	s := sim.New(1)
	r := NewRegistrar(s)
	s.RunUntil(5 * sim.Second)
	reg := r.Register(7, 128e3, 0.8)
	if r.Count() != 1 {
		t.Errorf("count = %d, want 1", r.Count())
	}
	if reg.RegisterAt != 5*sim.Second {
		t.Errorf("registered at %v, want 5s", reg.RegisterAt)
	}
	if got := r.Lookup(7); got == nil || got.QoSRateBps != 128e3 {
		t.Error("lookup failed")
	}
	r.UpdateBattery(7, 0.3)
	if r.Lookup(7).BatteryLevel != 0.3 {
		t.Error("battery update lost")
	}
	r.Deregister(7)
	if r.Lookup(7) != nil || r.Count() != 0 {
		t.Error("deregister failed")
	}
}

func TestRegistrarValidation(t *testing.T) {
	s := sim.New(2)
	r := NewRegistrar(s)
	defer func() {
		if recover() == nil {
			t.Error("invalid registration accepted")
		}
	}()
	r.Register(1, 128e3, 1.5)
}

func TestContentAdapterDecisions(t *testing.T) {
	a := NewContentAdapter(0.2)
	cases := []struct {
		q       channel.Quality
		battery float64
		video   bool
	}{
		{channel.QualityGood, 0.9, true},
		{channel.QualityGood, 0.1, false},     // battery floor
		{channel.QualityDegraded, 0.9, false}, // adverse link
		{channel.QualityUnusable, 0.9, false},
	}
	for i, c := range cases {
		d := a.Decide(c.q, c.battery)
		if d.DeliverVideo != c.video {
			t.Errorf("case %d: video=%v, want %v (%s)", i, d.DeliverVideo, c.video, d.Reason)
		}
		if d.Reason == "" {
			t.Errorf("case %d: missing reason", i)
		}
	}
}

func TestContentAdapterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad floor accepted")
		}
	}()
	NewContentAdapter(-0.1)
}

func TestLoadPartitionerOffloadsExpensiveCompute(t *testing.T) {
	// 5.8 Mb/s WLAN: ~2.3 µJ/byte TX.
	lp := NewLoadPartitioner(5.8e6, 1.65, 1.40, 0.05)
	// Heavy compute, tiny data: offload.
	d := lp.Decide(Task{LocalComputeJ: 5, InputBytes: 10_000, OutputBytes: 1_000})
	if !d.Offload {
		t.Errorf("should offload: local %.2f J vs offload %.2f J", d.LocalJ, d.OffloadJ)
	}
	if d.SavingJ <= 0 {
		t.Error("saving should be positive")
	}
}

func TestLoadPartitionerKeepsDataHeavyLocal(t *testing.T) {
	lp := NewLoadPartitioner(5.8e6, 1.65, 1.40, 0.05)
	// Light compute, megabytes of data: stay local.
	d := lp.Decide(Task{LocalComputeJ: 0.5, InputBytes: 5_000_000, OutputBytes: 0})
	if d.Offload {
		t.Errorf("should stay local: local %.2f J vs offload %.2f J", d.LocalJ, d.OffloadJ)
	}
}

func TestBreakevenBytes(t *testing.T) {
	lp := NewLoadPartitioner(5.8e6, 1.65, 1.40, 0.05)
	be := lp.BreakevenBytes(1.0)
	// At the breakeven size the two options should roughly tie.
	d := lp.Decide(Task{LocalComputeJ: 1.0, InputBytes: be})
	diff := d.OffloadJ - d.LocalJ
	if diff < -0.01 || diff > 0.01 {
		t.Errorf("breakeven not a tie: local %.3f offload %.3f", d.LocalJ, d.OffloadJ)
	}
	if lp.BreakevenBytes(0.01) != 0 {
		t.Error("breakeven below fixed cost should clamp to 0")
	}
}
